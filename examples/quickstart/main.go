// Quickstart: run one in-network join query over a simulated 100-node
// sensor network and print where the traffic went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	aspen "repro"
)

func main() {
	// Query 1 (Table 2 of the paper): sensors with id<25 join sensors
	// with id>50 on a static attribute equality (S.x = T.y+5) and a
	// dynamic reading equality (S.u = T.u), over a 3-tuple window.
	report, err := aspen.Run(aspen.Config{
		Topology:  aspen.ModerateRandom,
		Nodes:     100,
		Query:     aspen.Query1,
		Algorithm: aspen.InnetCMG, // in-network join + multicast + group opt
		Rates:     aspen.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1},
		Cycles:    100,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Aspen sensor join — quickstart")
	fmt.Printf("  algorithm:       %s\n", report.Algorithm)
	fmt.Printf("  join results:    %d delivered to the base station\n", report.Results)
	fmt.Printf("  total traffic:   %.1f KB across the network\n", float64(report.TotalBytes)/1024)
	fmt.Printf("  base station:    %.1f KB (the congestion hot spot)\n", float64(report.BaseBytes)/1024)
	fmt.Printf("  placement:       %d pairs joined in-network, %d at the base\n",
		report.InNetPairs, report.AtBasePairs)

	// Compare against the naive strategy: ship everything to the base.
	naive, err := aspen.Run(aspen.Config{
		Topology:  aspen.ModerateRandom,
		Nodes:     100,
		Query:     aspen.Query1,
		Algorithm: aspen.Naive,
		Rates:     aspen.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1},
		Cycles:    100,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  vs Naive:        %.1f KB total — in-network optimization saved %.0f%%\n",
		float64(naive.TotalBytes)/1024,
		100*(1-float64(report.TotalBytes)/float64(naive.TotalBytes)))
}

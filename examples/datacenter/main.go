// Datacenter monitoring — the paper's motivating Query R: wireless
// temperature/energy sensors in an instrumented data center pair up
// readings from adjacent sensors when they diverge, so the base station
// can shed load from overheating machines.
//
// We run the region join (Query 3: pairs within 5 m whose readings differ
// by more than 1000 counts) on the Intel Research-Berkeley lab layout —
// the paper's stand-in for an instrumented machine room — and show why
// the adaptive strategy is the one you would deploy: it starts with no
// knowledge of selectivities (joining at the base) and migrates join
// nodes into the network as estimates firm up.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	aspen "repro"
)

func main() {
	fmt.Println("Query R: event pairing in an instrumented data center (Intel lab layout)")
	fmt.Println()
	fmt.Printf("%-14s %12s %12s %12s %10s\n", "strategy", "total KB", "base KB", "max-node KB", "events")

	pessimistic := aspen.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 1} // "assume everything joins"
	for _, alg := range []aspen.Algorithm{aspen.Naive, aspen.Yang07, aspen.GHT, aspen.Innet, aspen.InnetLearn} {
		cfg := aspen.Config{
			Topology:  aspen.Intel,
			Query:     aspen.Query3,
			Algorithm: alg,
			Rates:     aspen.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2},
			Cycles:    200,
			Seed:      1,
		}
		if alg == aspen.InnetLearn {
			// The deployed scenario: no prior selectivity knowledge.
			cfg.OptimizerRates = &pessimistic
		}
		rep, err := aspen.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.1f %12.1f %12.1f %10d\n",
			alg,
			float64(rep.TotalBytes)/1024,
			float64(rep.BaseBytes)/1024,
			float64(rep.MaxNodeBytes)/1024,
			rep.Results)
	}
	fmt.Println()
	fmt.Println("The learning run starts with every join at the base (zero knowledge)")
	fmt.Println("and converges toward the full-knowledge In-Net placement — the")
	fmt.Println("behaviour the paper reports in Figure 13.")
}

// Multiquery: run four concurrent continuous queries — two submitted as
// StreamSQL text, two as Table 2 queries — over ONE shared 100-node
// deployment, with staggered admissions, and show the traffic-sharing win
// over running each query on its own deployment.
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"

	aspen "repro"
)

func main() {
	// One deployment; its routing trees and index dissemination are paid
	// once, by the engine, not once per query.
	e, err := aspen.NewEngine(aspen.EngineConfig{
		Topology: aspen.ModerateRandom,
		Nodes:    100,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	jobs := []aspen.QueryJob{
		// A StreamSQL query posed at the base station: the engine compiles
		// it through the full parse/CNF/classify pipeline.
		{ID: "sql-join", SQL: `SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u`},
		// The perimeter query as SQL, on the strongest MPO variant.
		{ID: "perimeter", SQL: `SELECT S.id, T.id
FROM S, T [windowsize=1 sampleinterval=100]
WHERE S.rid = 0 AND T.rid = 3 AND S.cid = T.cid
AND S.id % 4 = T.id % 4 AND S.u = T.u`,
			Algorithm: aspen.InnetCMPG},
		// Table 2's region join (programmatic: its geometric predicate has
		// no SQL form), admitted 20 epochs in.
		{ID: "humidity", Query: aspen.Query3, AdmitAt: 20},
		// A short-lived join-at-base query: admitted at 40, retired at 90.
		{ID: "burst", Query: aspen.Query0, Pairs: 5, Algorithm: aspen.Base,
			AdmitAt: 40, Cycles: 50},
	}
	for _, job := range jobs {
		if _, err := e.Submit(job); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := e.Run(120)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Aspen multi-query engine — 4 concurrent queries, 1 deployment")
	for _, q := range rep.Queries {
		fmt.Printf("  %-10s %-10s epochs %3d..%3d  %7.1f KB  %4d results\n",
			q.ID, q.Algorithm, q.AdmitEpoch, q.RetireEpoch,
			float64(q.TotalBytes)/1024, q.Results)
	}
	fmt.Printf("  shared infrastructure: %.1f KB charged once\n", float64(rep.SharedBytes)/1024)
	fmt.Printf("  aggregate:             %.1f KB (%.2f KB/node)\n",
		float64(rep.AggregateBytes)/1024, rep.AggregateBytesPerNode/1024)

	// The unshared alternative: every query brings up its own network.
	var unshared int64
	for _, job := range jobs {
		solo, err := aspen.NewEngine(aspen.EngineConfig{
			Topology: aspen.ModerateRandom, Nodes: 100, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := solo.Submit(job); err != nil {
			log.Fatal(err)
		}
		r, err := solo.Run(120)
		if err != nil {
			log.Fatal(err)
		}
		unshared += r.AggregateBytes
	}
	fmt.Printf("\n  vs 4 separate deployments: %.1f KB — sharing saved %.0f%%\n",
		float64(unshared)/1024,
		100*(1-float64(rep.AggregateBytes)/float64(unshared)))
}

// Perimeter monitoring — the paper's Query P: sensors in different regions
// of a mesh (here: opposite rows of the deployment field) produce an event
// whenever their readings coincide. This is Table 2's Query 2, and the
// workload where in-network join placement shines: producer pairs span the
// field, so shipping both sides to the base wastes the most traffic.
//
// The example sweeps the relative selectivity stages of Figures 2-3 and
// prints which algorithm wins each stage.
//
//	go run ./examples/perimeter
package main

import (
	"fmt"
	"log"

	aspen "repro"
)

func main() {
	stages := []struct {
		name   string
		sS, sT float64
	}{
		{"1/10:1", 0.1, 1},
		{"1/2:1/2", 0.5, 0.5},
		{"1:1/10", 1, 0.1},
	}
	algorithms := []aspen.Algorithm{aspen.Naive, aspen.Base, aspen.GHT, aspen.Innet, aspen.InnetCMG}

	fmt.Println("Query P: perimeter join across the deployment field (Query 2, w=1)")
	fmt.Println()
	header := fmt.Sprintf("%-10s", "stage")
	for _, a := range algorithms {
		header += fmt.Sprintf("%12s", a)
	}
	fmt.Println(header + "      winner")

	for _, st := range stages {
		row := fmt.Sprintf("%-10s", st.name)
		best, bestKB := aspen.Algorithm(""), 0.0
		for _, alg := range algorithms {
			rep, err := aspen.Run(aspen.Config{
				Query:     aspen.Query2,
				Algorithm: alg,
				Rates:     aspen.Rates{SigmaS: st.sS, SigmaT: st.sT, SigmaST: 0.1},
				Cycles:    100,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			kb := float64(rep.TotalBytes) / 1024
			row += fmt.Sprintf("%10.1fK", kb)
			if best == "" || kb < bestKB {
				best, bestKB = alg, kb
			}
		}
		fmt.Printf("%s      %s\n", row, best)
	}
	fmt.Println()
	fmt.Println("Totals are KB of radio traffic over 100 sampling cycles; the MPO")
	fmt.Println("variant (Innet-cmg) should match or beat every basic algorithm.")
}

// Adaptive re-optimization demo (section 6 of the paper): start a join
// with badly wrong selectivity estimates and watch learning recover.
//
// Three runs of the same workload (a 1:1 join whose S side is quiet and T
// side chatty):
//
//  1. an oracle given the true selectivities,
//  2. a static optimizer given inverted (wrong) selectivities,
//  3. the same wrong start, but with adaptive learning enabled.
//
// The learning run should land between the other two, with join-node
// migrations doing the work.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	aspen "repro"
)

func main() {
	truth := aspen.Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2}
	wrong := aspen.Rates{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2}

	run := func(name string, opt *aspen.Rates, alg aspen.Algorithm) *aspen.Report {
		rep, err := aspen.Run(aspen.Config{
			Query:          aspen.Query0,
			Pairs:          10,
			Rates:          truth,
			OptimizerRates: opt,
			Algorithm:      alg,
			Cycles:         400,
			Seed:           3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10.1f KB   %3d migrations   %d results\n",
			name, float64(rep.TotalBytes)/1024, rep.Migrations, rep.Results)
		return rep
	}

	fmt.Println("Adaptive join optimization (Query 0, sigma_s=0.1 sigma_t=1.0 sigma_st=0.2)")
	fmt.Println()
	oracle := run("oracle (true sigmas)", nil, aspen.Innet)
	static := run("wrong sigmas, static", &wrong, aspen.Innet)
	learned := run("wrong sigmas, learning", &wrong, aspen.InnetLearn)

	fmt.Println()
	if static.TotalBytes > oracle.TotalBytes {
		gap := float64(static.TotalBytes - oracle.TotalBytes)
		closed := float64(static.TotalBytes-learned.TotalBytes) / gap * 100
		fmt.Printf("Wrong estimates cost %.1f KB extra; learning clawed back %.0f%% of it.\n",
			gap/1024, closed)
	} else {
		fmt.Println("The wrong estimates happened to be harmless on this seed.")
	}
}

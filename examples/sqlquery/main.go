// SQL pipeline demo: take the StreamSQL query text of the paper's
// Appendix B, push it through the full pre-processing pipeline — parsing,
// CNF conversion, static/dynamic clause classification, and the pattern
// matcher that extracts routable join predicates — and show what the
// optimizer learns about the query before a single packet is sent.
//
//	go run ./examples/sqlquery
package main

import (
	"fmt"
	"log"

	"repro/internal/query"
)

const src = `
SELECT S.id, T.id, S.local_time
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND hash(S.u) % 2 = 0
AND T.id > 50 AND hash(T.u) % 2 = 0
AND S.x = T.y + 5 AND S.u = T.u`

func main() {
	schema := query.DefaultSchema()
	c, err := query.Compile(src, schema)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Query (Appendix B / Table 2 Query 1):")
	fmt.Println(src)
	fmt.Println()
	fmt.Printf("window size      %d tuples per producer pair\n", c.WindowSize)
	fmt.Printf("sample interval  %d transmission cycles\n", c.SampleInterval)
	fmt.Println()

	section := func(name string, f query.CNF) {
		fmt.Printf("%s (%d clause(s)):\n", name, len(f))
		for _, clause := range f {
			fmt.Printf("    %s\n", clause)
		}
	}
	section("static selections on S  — pre-evaluated: decides node eligibility", c.Parts.SelS)
	section("static selections on T", c.Parts.SelT)
	section("dynamic selections on S — evaluated per cycle: defines sigma_s", c.Parts.DynSelS)
	section("dynamic selections on T — defines sigma_t", c.Parts.DynSelT)
	section("dynamic join clauses    — evaluated at the join node: defines sigma_st", c.Parts.JoinDynamic)
	fmt.Println()

	fmt.Println("pattern matcher (primary vs secondary join predicates):")
	for _, r := range c.Primary {
		fmt.Printf("    ROUTABLE on T.%s — each S node searches the substrate for\n", r.TargetAttr)
		fmt.Printf("    nodes whose %s equals %s evaluated over its own statics\n", r.TargetAttr, r.SourceTerm)
	}
	for _, clause := range c.Secondary {
		fmt.Printf("    secondary (checked after routing): %s\n", clause)
	}
	fmt.Println()

	// Show the routing key a concrete node would search for.
	b := query.MapBinding{query.S: {"x": 12}}
	fmt.Printf("example: an S node with x=12 searches for T nodes with y = %d\n",
		c.Primary[0].SourceTerm.Eval(b))
}

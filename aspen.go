// Package aspen is the public API of this reproduction of "Dynamic Join
// Optimization in Multi-Hop Wireless Sensor Networks" (Mihaylov, Jacob,
// Ives, Guha — VLDB 2010): the sensor-network join subsystem of the Aspen
// data integration system, rebuilt as a Go library over a deterministic
// network simulator.
//
// The facade covers the common cases — build a deployment, pick one of the
// paper's queries and algorithms, run it, and read the traffic/result
// report — and exposes the full experiment registry that regenerates every
// table and figure of the paper. Lower-level building blocks (the routing
// substrate, cost model, window engine, MPO machinery) live in the
// internal packages and are documented in DESIGN.md.
package aspen

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/dht"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/ght"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TopologyKind names a deployment class from the paper's evaluation.
type TopologyKind string

// Deployment classes (section 4.1, Appendix C).
const (
	SparseRandom   TopologyKind = "sparse"   // ~6 neighbours/node
	ModerateRandom TopologyKind = "moderate" // ~7 neighbours/node (default)
	MediumRandom   TopologyKind = "medium"   // ~8 neighbours/node
	DenseRandom    TopologyKind = "dense"    // ~13 neighbours/node
	Grid           TopologyKind = "grid"     // regular grid, ~7 neighbours
	Intel          TopologyKind = "intel"    // 54-mote Intel-Berkeley lab
)

func (k TopologyKind) kind() (topology.Kind, error) {
	switch k {
	case SparseRandom:
		return topology.SparseRandom, nil
	case ModerateRandom, "":
		return topology.ModerateRandom, nil
	case MediumRandom:
		return topology.MediumRandom, nil
	case DenseRandom:
		return topology.DenseRandom, nil
	case Grid:
		return topology.Grid, nil
	case Intel:
		return topology.Intel, nil
	default:
		return 0, fmt.Errorf("aspen: unknown topology kind %q", k)
	}
}

// Query names one of Table 2's workload queries.
type Query string

// The paper's four evaluation queries.
const (
	// Query0 is the 1:1 join with random endpoints (S.u = T.u).
	Query0 Query = "Q0"
	// Query1 is the m:n join with uniform endpoints
	// (S.id<25, T.id>50, S.x=T.y+5, S.u=T.u).
	Query1 Query = "Q1"
	// Query2 is the perimeter join
	// (S.rid=0, T.rid=3, S.cid=T.cid, S.id%4=T.id%4, S.u=T.u).
	Query2 Query = "Q2"
	// Query3 is the region join over humidity readings
	// (Dst<5m, s.id<t.id, |s.v-t.v|>1000).
	Query3 Query = "Q3"
)

// Algorithm names a join strategy.
type Algorithm string

// The paper's join algorithms and the MPO/learning variants.
const (
	Naive      Algorithm = "Naive"
	Base       Algorithm = "Base"
	Yang07     Algorithm = "Yang+07"
	GHT        Algorithm = "GHT"
	DHT        Algorithm = "DHT"
	Innet      Algorithm = "Innet"
	InnetCM    Algorithm = "Innet-cm"
	InnetCMG   Algorithm = "Innet-cmg"
	InnetCMPG  Algorithm = "Innet-cmpg"
	InnetLearn Algorithm = "Innet learn"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{Naive, Base, Yang07, GHT, DHT, Innet, InnetCM, InnetCMG, InnetCMPG, InnetLearn}
}

// Rates are the workload selectivities: SigmaS/SigmaT are producer send
// probabilities per sampling cycle, SigmaST the pairwise join selectivity.
type Rates struct {
	SigmaS, SigmaT, SigmaST float64
}

// Config describes one simulation run.
type Config struct {
	// Topology selects the deployment (default ModerateRandom).
	Topology TopologyKind
	// Nodes is the deployment size (default 100; fixed at 54 for Intel).
	Nodes int
	// Query selects the workload (default Query1).
	Query Query
	// Pairs is Query0's random pair count (default 10).
	Pairs int
	// Rates are the data-generation ground truth (default the paper's
	// 1/2:1/2 stage with sigma_st = 10%).
	Rates Rates
	// OptimizerRates, when non-nil, feeds the optimizer different
	// (possibly wrong) estimates than the ground truth — the setting of
	// the paper's cost-model validation and learning experiments.
	OptimizerRates *Rates
	// Algorithm selects the join strategy (default InnetCMG).
	Algorithm Algorithm
	// Cycles is the number of sampling cycles (default 100).
	Cycles int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// LossProb is the per-hop packet loss probability (default 5%, the
	// mote setting; use 0 for mesh-style runs).
	LossProb *float64
	// Trees is the number of routing trees in the substrate (default 3).
	Trees int
	// FailJoinNode, when set, permanently fails the first pair's join
	// node at FailCycle (section 7's experiment).
	FailJoinNode bool
	FailCycle    int
	// Merge enables Appendix E's opportunistic packet merging on the
	// join-at-base data path (Naive and Base only).
	Merge bool
}

// Report is what a run produces.
type Report struct {
	// Algorithm echoes the strategy that ran.
	Algorithm Algorithm
	// TotalBytes / TotalMessages are network-wide transmission totals,
	// including retransmissions and initiation.
	TotalBytes, TotalMessages int64
	// InitBytes is the initiation-phase share of TotalBytes.
	InitBytes int64
	// BaseBytes is traffic sent or received by the base station.
	BaseBytes int64
	// MaxNodeBytes is the heaviest per-node transmit load.
	MaxNodeBytes int64
	// Results counts join results delivered to the base station.
	Results int
	// MeanDelay is the average gap between delivered results, in cycles.
	MeanDelay float64
	// Migrations counts adaptive join-node moves (learning variants).
	Migrations int
	// InNetPairs / AtBasePairs report where producer pairs ended up.
	InNetPairs, AtBasePairs int
}

// Run executes one simulation.
func Run(cfg Config) (*Report, error) {
	kind, err := cfg.Topology.kind()
	if err != nil {
		return nil, err
	}
	n := cfg.Nodes
	if n == 0 {
		n = 100
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Trees == 0 {
		cfg.Trees = 3
	}
	if cfg.Rates == (Rates{}) {
		cfg.Rates = Rates(defaultRates)
	}
	topo := topology.Generate(kind, n, 1)
	nodes := workload.BuildNodes(topo, 1)
	rates := workload.Rates(cfg.Rates)
	spec, err := specFor(cfg.Query, topo, nodes, cfg.Pairs, rates, cfg.Seed)
	if err != nil {
		return nil, err
	}
	loss := 0.05
	if cfg.LossProb != nil {
		loss = *cfg.LossProb
	}
	net := sim.NewNetwork(topo, loss, cfg.Seed^0x105E)
	sub := routing.NewSubstrate(topo, routing.Options{
		NumTrees:       cfg.Trees,
		Indexes:        spec.Indexes,
		IndexPositions: spec.IndexPositions,
	}, nil)
	var sampler workload.Sampler
	if cfg.Query == Query3 {
		sampler = workload.HumiditySampler{H: workload.NewHumidity(topo, cfg.Seed)}
	} else {
		sampler = workload.NewGenerator(rates, cfg.Seed)
	}
	opt := costmodel.Params{
		SigmaS: rates.SigmaS, SigmaT: rates.SigmaT, SigmaST: rates.SigmaST, W: spec.W,
	}
	if cfg.OptimizerRates != nil {
		opt.SigmaS = cfg.OptimizerRates.SigmaS
		opt.SigmaT = cfg.OptimizerRates.SigmaT
		opt.SigmaST = cfg.OptimizerRates.SigmaST
	}
	jc := join.NewConfig(topo, net, sub, spec, sampler, opt, cfg.Cycles)
	jc.Merge = cfg.Merge
	alg, err := algorithmFor(cfg.Algorithm, topo)
	if err != nil {
		return nil, err
	}
	if cfg.FailJoinNode {
		// Locate a victim join node with a dry run, then re-run with the
		// failure injected.
		probe := alg.Run(jc)
		if len(probe.PairJoinNodes) == 0 {
			return nil, fmt.Errorf("aspen: no in-network join node to fail")
		}
		net = sim.NewNetwork(topo, loss, cfg.Seed^0x105E)
		if cfg.Query != Query3 {
			sampler = workload.NewGenerator(rates, cfg.Seed)
		} else {
			sampler = workload.HumiditySampler{H: workload.NewHumidity(topo, cfg.Seed)}
		}
		jc = join.NewConfig(topo, net, sub, spec, sampler, opt, cfg.Cycles)
		jc.Merge = cfg.Merge
		jc.FailNode = probe.PairJoinNodes[0]
		jc.FailCycle = cfg.FailCycle
		if jc.FailCycle == 0 {
			jc.FailCycle = cfg.Cycles / 2
		}
	}
	res := alg.Run(jc)
	return &Report{
		Algorithm:     Algorithm(res.Algorithm),
		TotalBytes:    res.TotalBytes,
		TotalMessages: res.TotalMessages,
		InitBytes:     res.InitBytes,
		BaseBytes:     res.BaseBytes,
		MaxNodeBytes:  res.MaxNodeBytes,
		Results:       res.Results,
		MeanDelay:     res.MeanDelay(),
		Migrations:    res.Migrations,
		InNetPairs:    res.InNetPairs,
		AtBasePairs:   res.AtBasePairs,
	}, nil
}

// defaultRates is the paper's 1/2:1/2 stage with sigma_st = 10%.
var defaultRates = workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}

// specFor compiles a Table 2 query name into an executable spec — the one
// place the name→constructor mapping lives, shared by Run and
// Engine.Submit. Query 0's random endpoints derive from the run seed.
func specFor(q Query, topo *topology.Topology, nodes []workload.NodeInfo, pairs int, rates workload.Rates, seed uint64) (*workload.Spec, error) {
	switch q {
	case Query0:
		if pairs == 0 {
			pairs = 10
		}
		return workload.Query0(topo, nodes, pairs, rates, seed^7), nil
	case Query1, "":
		return workload.Query1(topo, nodes, rates), nil
	case Query2:
		return workload.Query2(topo, nodes, rates), nil
	case Query3:
		return workload.Query3(topo, nodes, rates), nil
	default:
		return nil, fmt.Errorf("aspen: unknown query %q", q)
	}
}

func algorithmFor(name Algorithm, topo *topology.Topology) (join.Continuous, error) {
	switch name {
	case Naive:
		return join.Naive{}, nil
	case Base:
		return join.Base{}, nil
	case Yang07:
		return join.Yang07{}, nil
	case GHT:
		return join.Hashed{Label: "GHT", Router: ght.NewRouter(topo)}, nil
	case DHT:
		return join.Hashed{Label: "DHT", Router: dht.NewRing(topo)}, nil
	case Innet:
		return join.Innet{}, nil
	case InnetCM:
		return join.Innet{Opts: join.InnetOptions{Multicast: true}}, nil
	case InnetCMG, "":
		return join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}}, nil
	case InnetCMPG:
		return join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}}, nil
	case InnetLearn:
		return join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true, Learn: true}}, nil
	default:
		return nil, fmt.Errorf("aspen: unknown algorithm %q", name)
	}
}

// --- Continuous multi-query execution (internal/engine) ---------------------

// ChurnEvent schedules one node failure or revival in an Engine's shared
// deployment (section 7 as a workload axis). Events apply at the top of
// their epoch, before any query runs its sampling cycle; a failed node is
// dead in the shared substrate and in every query's network at once, and
// each failure triggers engine-wide recovery (path repair, tree rebuilds,
// base-station fallback).
type ChurnEvent struct {
	// Epoch is the scheduler epoch the event applies at.
	Epoch int
	// Node is the affected node ID. The base station (node 0) may not
	// churn.
	Node int
	// Revive restores the node instead of failing it.
	Revive bool
}

// SeededChurn derives a deterministic churn schedule: each epoch in
// [0, epochs), every alive non-base node of an n-node deployment fails
// with probability rate; with reviveAfter > 0 a failed node revives that
// many epochs later (0 = permanent failures).
func SeededChurn(seed uint64, nodes, epochs int, rate float64, reviveAfter int) []ChurnEvent {
	evs := engine.SeededChurn(seed, nodes, epochs, rate, reviveAfter)
	out := make([]ChurnEvent, len(evs))
	for i, ev := range evs {
		out[i] = ChurnEvent{Epoch: ev.Epoch, Node: int(ev.Node), Revive: ev.Revive}
	}
	return out
}

// RetryPolicy configures the per-hop ARQ model every transfer in the
// deployment pays: how many retransmissions a hop attempts before the
// message is dropped, optionally per traffic class, and a linear backoff
// byte cost per retransmission. Build one with NewRetryPolicy and override
// fields — the zero value means "no retries for any class", which is
// expressible but rarely wanted.
type RetryPolicy struct {
	// MaxRetries bounds retransmissions per hop after the first attempt
	// for classes without an override (the paper's mote setting is 3).
	MaxRetries int
	// Control / Data / Result / Migration override MaxRetries for one
	// traffic class when >= 0; negative values (what NewRetryPolicy sets)
	// inherit MaxRetries.
	Control, Data, Result, Migration int
	// BackoffBytes charges this many extra bytes per retransmission to
	// the transmitting node — radio listen/backoff energy, not frames, so
	// it never adds messages. 0 disables the backoff cost model.
	BackoffBytes int
}

// NewRetryPolicy returns a policy retrying every class maxRetries times
// with no backoff cost; NewRetryPolicy(3) is the engine default.
func NewRetryPolicy(maxRetries int) RetryPolicy {
	return RetryPolicy{MaxRetries: maxRetries, Control: -1, Data: -1, Result: -1, Migration: -1}
}

func (p RetryPolicy) policy() sim.RetryPolicy {
	return sim.RetryPolicy{
		MaxRetries:   p.MaxRetries,
		PerKind:      [4]int{p.Control, p.Data, p.Result, p.Migration},
		BackoffBytes: p.BackoffBytes,
	}
}

// PartitionWindow schedules one network partition in a FaultConfig: for
// epochs in [From, Until) a set of radio links is cut, splitting the
// deployment. Region < 0 bisects the field at the median x coordinate;
// Region 0..3 severs the workload's horizontal region band from the rest
// (the bands Query 2 joins across).
type PartitionWindow struct {
	From, Until int
	Region      int
}

// FaultConfig describes a deterministic link-fault plan for an Engine's
// deployment: a seeded layer of per-link loss, transient link failures,
// duplication, bounded delay, and scheduled partitions, drawn once from
// Seed so every run of the same config injects the identical fault
// sequence at any worker count. The zero value injects nothing.
type FaultConfig struct {
	// Seed derives the whole plan (0 uses the engine seed).
	Seed uint64
	// LinkLoss adds heterogeneous per-link loss on top of the uniform
	// LossProb: each link draws extra loss in [0.5, 1.5) x LinkLoss.
	LinkLoss float64
	// LinkFailRate fails each healthy link per epoch with this
	// probability; LinkReviveAfter revives a failed link that many epochs
	// later (0 = permanent link failures).
	LinkFailRate    float64
	LinkReviveAfter int
	// DupProb delivers a duplicate copy of a delivered message with this
	// per-link probability (charged, counted, discarded by the receiver).
	DupProb float64
	// DelayMax assigns each link a fixed delivery delay in [0, DelayMax]
	// transmission slots (accounted, never reordering).
	DelayMax int
	// Partitions schedules network splits (see PartitionWindow).
	Partitions []PartitionWindow
}

func (c *FaultConfig) config(seed uint64) *faults.Config {
	if c == nil {
		return nil
	}
	out := &faults.Config{
		Seed:            c.Seed,
		LinkLoss:        c.LinkLoss,
		LinkFailRate:    c.LinkFailRate,
		LinkReviveAfter: c.LinkReviveAfter,
		DupProb:         c.DupProb,
		DelayMax:        c.DelayMax,
	}
	if out.Seed == 0 {
		out.Seed = seed
	}
	for _, p := range c.Partitions {
		fp := faults.Partition{From: p.From, Until: p.Until, Kind: faults.Bisect}
		if p.Region >= 0 {
			fp.Kind, fp.Region = faults.Region, p.Region
		}
		out.Partitions = append(out.Partitions, fp)
	}
	return out
}

// EngineConfig describes the shared deployment a multi-query Engine
// schedules over.
type EngineConfig struct {
	// Topology selects the deployment (default ModerateRandom).
	Topology TopologyKind
	// Nodes is the deployment size (default 100).
	Nodes int
	// Trees is the routing-substrate tree count (default 3).
	Trees int
	// Seed makes every run of the engine reproducible (default 1).
	Seed uint64
	// LossProb is the per-hop loss probability (default 5%).
	LossProb *float64
	// MaxRetries bounds per-hop retransmissions for every traffic class:
	// 0 means the default (3, the paper's mote setting), a negative value
	// disables retries entirely. Ignored when Retry is set.
	MaxRetries int
	// Retry, when non-nil, installs a full per-class retry/backoff policy
	// (see RetryPolicy); it takes precedence over MaxRetries.
	Retry *RetryPolicy
	// Faults, when non-nil, installs a deterministic link-fault plan —
	// lossy links, transient link failures, duplication, delay, scheduled
	// partitions — on the shared deployment (see FaultConfig).
	Faults *FaultConfig
	// Churn is the deployment's fail/revive schedule (empty = no churn).
	Churn []ChurnEvent
	// Adapt enables the engine's adaptivity phase: each epoch, after churn
	// recovery and before query stepping, join nodes re-estimate their
	// pairs' selectivities from observed traffic and migrate join windows
	// when the estimates diverge ≥33% from what the current placement was
	// optimized for (the paper's section 6, run at deployment scope). A
	// migration whose target node died aborts into the base-station
	// fallback instead.
	Adapt bool
	// Workers is the number of goroutines the scheduler uses to step live
	// queries concurrently within an epoch: 0 or 1 runs sequentially, a
	// negative value uses every CPU core. Reports are byte-identical at
	// any worker count; only wall-clock time changes.
	Workers int
	// Metrics enables the engine's metrics registry: lifecycle counters,
	// churn recovery tallies, per-traffic-class byte gauges, join-state
	// sizes and epoch/phase wall-time histograms, readable at any time via
	// Engine.Snapshot. Observation never feeds back into execution — a
	// metered run's report is byte-identical to an unmetered one.
	Metrics bool
	// Trace enables the epoch trace recorder: scheduler-phase and
	// per-query spans exportable with Engine.WriteTrace (Chrome
	// trace_event form, loadable in chrome://tracing) or
	// Engine.WriteTraceJSONL. Same non-interference guarantee as Metrics.
	Trace bool
}

// DeploymentNodes returns the node count an engine built from this config
// will deploy — the default of 100, and Intel's fixed 54 motes (for which
// Nodes is ignored). Seeded churn schedules must be materialized against
// this count, not the raw Nodes field.
func (c EngineConfig) DeploymentNodes() (int, error) {
	kind, err := c.Topology.kind()
	if err != nil {
		return 0, err
	}
	return engine.EffectiveNodes(kind, c.Nodes), nil
}

// QueryJob describes one continuous query submitted to an Engine: either
// StreamSQL text or one of Table 2's named queries, plus its strategy and
// lifetime.
type QueryJob struct {
	// ID labels the query in reports (default "q<n>"); must be unique.
	ID string
	// SQL is StreamSQL query text, compiled against the deployment.
	// Exactly one of SQL and Query must be set.
	SQL string
	// Query names a Table 2 query (Query0..Query3) to run programmatically.
	Query Query
	// Pairs is Query0's random pair count (default 10).
	Pairs int
	// Algorithm selects the join strategy (default InnetCMG).
	Algorithm Algorithm
	// Rates are the query's data-generation ground truth (default the
	// paper's 1/2:1/2 stage with sigma_st = 10%).
	Rates Rates
	// OptimizerRates, when non-nil, feeds the optimizer wrong estimates.
	OptimizerRates *Rates
	// Cycles is the query lifetime in epochs (0 = until the run's horizon).
	Cycles int
	// AdmitAt is the epoch at which the query enters the network.
	AdmitAt int
}

// Engine runs many continuous queries concurrently over ONE shared
// deployment, epoch by epoch, charging shared infrastructure traffic
// (routing-tree construction, summary dissemination) once per network
// instead of once per query. Create with NewEngine, add queries with
// Submit, execute with Run, inspect with Report.
type Engine struct {
	eng    *engine.Engine
	seed   uint64
	reg    *obs.Registry
	tracer *obs.Tracer
}

// NewEngine builds the shared deployment and its routing substrate; the
// substrate construction traffic is charged once to the engine's shared
// metrics stream.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	kind, err := cfg.Topology.kind()
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	opts := engine.Options{
		Kind:    kind,
		Nodes:   cfg.Nodes,
		Trees:   cfg.Trees,
		Seed:    seed,
		Adapt:   cfg.Adapt,
		Workers: cfg.Workers,
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if cfg.Metrics {
		reg = obs.NewRegistry()
		opts.Obs = reg
	}
	if cfg.Trace {
		tracer = obs.NewTracer()
		opts.Trace = tracer
	}
	if cfg.LossProb != nil {
		opts.LossProb = *cfg.LossProb
		opts.Lossless = *cfg.LossProb == 0
	}
	opts.Faults = cfg.Faults.config(seed)
	switch {
	case cfg.Retry != nil:
		p := cfg.Retry.policy()
		opts.Retry = &p
	case cfg.MaxRetries != 0:
		p := sim.DefaultRetryPolicy()
		p.MaxRetries = cfg.MaxRetries
		if p.MaxRetries < 0 {
			p.MaxRetries = 0
		}
		opts.Retry = &p
	}
	nodes := engine.EffectiveNodes(kind, cfg.Nodes)
	for _, ev := range cfg.Churn {
		if ev.Node <= 0 || ev.Node >= nodes {
			return nil, fmt.Errorf("aspen: churn event names node %d outside the deployment (1..%d; the base station never churns)", ev.Node, nodes-1)
		}
		opts.Churn = append(opts.Churn, engine.ChurnEvent{
			Epoch: ev.Epoch, Node: topology.NodeID(ev.Node), Revive: ev.Revive,
		})
	}
	return &Engine{eng: engine.New(opts), seed: seed, reg: reg, tracer: tracer}, nil
}

// Submit compiles and registers a query, returning its report ID. It may
// be called before Run and between Run calls; admission happens at the
// query's AdmitAt epoch.
func (e *Engine) Submit(job QueryJob) (string, error) {
	if (job.SQL == "") == (job.Query == "") {
		return "", fmt.Errorf("aspen: job must set exactly one of SQL and Query")
	}
	alg, err := algorithmFor(job.Algorithm, e.eng.Topo)
	if err != nil {
		return "", err
	}
	rates := workload.Rates(job.Rates)
	if rates == (workload.Rates{}) {
		rates = defaultRates
	}
	qc := engine.QueryConfig{
		ID:        job.ID,
		SQL:       job.SQL,
		Algorithm: alg,
		Rates:     rates,
		Cycles:    job.Cycles,
		AdmitAt:   job.AdmitAt,
	}
	if job.Query != "" {
		spec, err := specFor(job.Query, e.eng.Topo, e.eng.Nodes, job.Pairs, rates, e.seed)
		if err != nil {
			return "", err
		}
		qc.Spec = spec
		if job.Query == Query3 {
			qc.Sampler = workload.HumiditySampler{H: workload.NewHumidity(e.eng.Topo, e.seed)}
		}
	}
	if job.OptimizerRates != nil {
		qc.Opt = &costmodel.Params{
			SigmaS:  job.OptimizerRates.SigmaS,
			SigmaT:  job.OptimizerRates.SigmaT,
			SigmaST: job.OptimizerRates.SigmaST,
		}
	}
	q, err := e.eng.Submit(qc)
	if err != nil {
		return "", err
	}
	return q.ID, nil
}

// EpochStats streams one scheduler epoch's events to an OnEpoch hook.
//
// The NewResults map is only valid during the callback — the engine
// reuses it across epochs. Hooks that retain stats must clone it.
type EpochStats struct {
	// Epoch is the epoch that just ran; Live the number of queries that
	// stepped.
	Epoch, Live int
	// Admitted / Retired list query IDs that changed state this epoch.
	Admitted, Retired []string
	// NewResults maps query ID to join results delivered this epoch
	// (queries with no new results are absent). Valid only during the
	// callback — see the struct comment.
	NewResults map[string]int
	// Failed lists node IDs the churn schedule failed this epoch;
	// Repaired / Fallbacks count paths rerouted in-network vs pairs
	// switched to the base station by the recovery pass, and TreesRebuilt
	// the substrate routing trees rebuilt around the failures.
	Failed                            []int
	Repaired, Fallbacks, TreesRebuilt int
	// Migrations / MigrationsAborted count the adaptivity phase's window
	// migrations this epoch: committed moves vs moves abandoned because
	// the target node was dead (zero unless EngineConfig.Adapt).
	Migrations, MigrationsAborted int
	// LinkRerouted / LinkFallbacks count the link-fault recovery pass's
	// outcomes this epoch — paths detoured around cut links vs pairs moved
	// to the base station; ResultsLost counts join results whose delivery
	// exhausted the retry policy this epoch (zero without
	// EngineConfig.Faults).
	LinkRerouted, LinkFallbacks, ResultsLost int
}

// OnEpoch registers a hook streamed after every scheduler epoch (nil
// disables). Register before Run.
func (e *Engine) OnEpoch(fn func(EpochStats)) {
	if fn == nil {
		e.eng.OnEpoch = nil
		return
	}
	e.eng.OnEpoch = func(s engine.EpochStats) {
		out := EpochStats{
			Epoch:             s.Epoch,
			Live:              s.Live,
			Admitted:          s.Admitted,
			Retired:           s.Retired,
			NewResults:        s.NewResults,
			Repaired:          s.Repaired,
			Fallbacks:         s.Fallbacks,
			TreesRebuilt:      s.TreesRebuilt,
			Migrations:        s.Migrations,
			MigrationsAborted: s.MigrationsAborted,
			LinkRerouted:      s.LinkRerouted,
			LinkFallbacks:     s.LinkFallbacks,
			ResultsLost:       s.ResultsLost,
		}
		for _, id := range s.Failed {
			out.Failed = append(out.Failed, int(id))
		}
		fn(out)
	}
}

// Metric is one counter or gauge reading in a MetricsSnapshot.
type Metric struct {
	Name  string
	Value int64
}

// HistogramMetric is one histogram's state in a MetricsSnapshot: Counts
// has one entry per Bounds bound plus a final overflow bucket.
type HistogramMetric struct {
	Name     string
	Bounds   []int64
	Counts   []int64
	Count    int64
	Sum      int64
	Min, Max int64
}

// Mean returns the average observation (0 when empty).
func (h HistogramMetric) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// MetricsSnapshot is a point-in-time copy of every engine instrument,
// sorted by name. See DESIGN.md's "Observability model" for the
// instrument taxonomy (engine.*, churn.*, sim.*, join.*, epoch.*,
// worker.*).
type MetricsSnapshot struct {
	Counters   []Metric
	Gauges     []Metric
	Histograms []HistogramMetric
}

// Value looks a counter or gauge up by name.
func (s *MetricsSnapshot) Value(name string) (int64, bool) {
	for _, m := range s.Counters {
		if m.Name == name {
			return m.Value, true
		}
	}
	for _, m := range s.Gauges {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot as a /metricz-style text dump.
func (s *MetricsSnapshot) WriteText(w io.Writer) error {
	var os obs.Snapshot
	for _, m := range s.Counters {
		os.Counters = append(os.Counters, obs.Metric(m))
	}
	for _, m := range s.Gauges {
		os.Gauges = append(os.Gauges, obs.Metric(m))
	}
	for _, h := range s.Histograms {
		os.Histograms = append(os.Histograms, obs.HistogramMetric{
			Name: h.Name, Bounds: h.Bounds, Counts: h.Counts,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
		})
	}
	return os.WriteText(w)
}

// Snapshot copies the engine's current metrics. Safe to call from any
// goroutine at any time, including while Run executes on another — the
// live-introspection pattern cmd/aspen-engine's -metrics-addr endpoint
// uses. Returns an empty snapshot when EngineConfig.Metrics was false.
func (e *Engine) Snapshot() *MetricsSnapshot {
	src := e.reg.Snapshot()
	out := &MetricsSnapshot{}
	for _, m := range src.Counters {
		out.Counters = append(out.Counters, Metric(m))
	}
	for _, m := range src.Gauges {
		out.Gauges = append(out.Gauges, Metric(m))
	}
	for _, h := range src.Histograms {
		out.Histograms = append(out.Histograms, HistogramMetric{
			Name: h.Name, Bounds: h.Bounds, Counts: h.Counts,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
		})
	}
	return out
}

// WriteTrace emits the recorded epoch trace in Chrome trace_event form —
// load the file in chrome://tracing or ui.perfetto.dev. Call after Run
// (lanes must be quiescent). Writes an empty trace document when
// EngineConfig.Trace was false.
func (e *Engine) WriteTrace(w io.Writer) error {
	return e.tracer.WriteChrome(w)
}

// WriteTraceJSONL emits the trace as one JSON event per line — the
// grep/jq-friendly form. Same quiescence requirement as WriteTrace.
func (e *Engine) WriteTraceJSONL(w io.Writer) error {
	return e.tracer.WriteJSONL(w)
}

// Run executes `epochs` scheduler epochs — admitting, stepping and
// retiring queries — and returns the traffic/result report.
func (e *Engine) Run(epochs int) (*EngineReport, error) {
	if len(e.eng.Queries()) == 0 {
		return nil, fmt.Errorf("aspen: no queries submitted")
	}
	return engineReport(e.eng.Run(epochs)), nil
}

// Report snapshots the engine's current accounting: retired queries report
// their frozen results, live ones their traffic so far, pending ones
// zeroes.
func (e *Engine) Report() *EngineReport {
	return engineReport(e.eng.Report())
}

// QueryEngineReport is one query's slice of an EngineReport. Traffic here
// is the query's own (initiation, data, results); shared infrastructure
// lives in EngineReport.SharedBytes.
type QueryEngineReport struct {
	ID        string
	Algorithm Algorithm
	State     string
	// AdmitEpoch / RetireEpoch bound the live interval [admit, retire).
	AdmitEpoch, RetireEpoch int
	TotalBytes              int64
	InitBytes               int64
	BaseBytes               int64
	MaxNodeBytes            int64
	BytesPerNode            float64
	Results                 int
	// ResultsLost counts join results the query computed whose delivery
	// exhausted the retry policy — explicit observable loss, never silent.
	ResultsLost             int
	MeanDelay               float64
	InNetPairs, AtBasePairs int
}

// EngineReport is the engine's traffic accounting: shared infrastructure
// charged once, per-query traffic per stream, and their sum. N independent
// single-query deployments would have paid roughly SharedBytes*N +
// QueryBytes; the engine pays SharedBytes + QueryBytes.
type EngineReport struct {
	Epochs                int
	Nodes                 int
	SharedBytes           int64
	QueryBytes            int64
	AggregateBytes        int64
	AggregateBytesPerNode float64
	Results               int
	// FailedNodes counts nodes the churn schedule failed over the run;
	// PathsRepaired / BaseFallbacks are the section 7 recovery outcomes
	// and TreesRebuilt the substrate's tree-rebuild fallbacks.
	FailedNodes, PathsRepaired, BaseFallbacks, TreesRebuilt int
	// Migrations / MigrationsAborted total the adaptivity phase's window
	// migrations over the run (zero unless EngineConfig.Adapt).
	Migrations, MigrationsAborted int
	// ResultsLost totals policy-exhausted result losses across queries;
	// LinkRerouted / LinkFallbacks are the link-fault recovery pass's
	// cumulative outcomes and PartitionEpochs counts epochs a scheduled
	// partition was active (all zero unless EngineConfig.Faults).
	ResultsLost, LinkRerouted, LinkFallbacks, PartitionEpochs int
	Queries                                                   []QueryEngineReport
}

func engineReport(r *engine.Report) *EngineReport {
	out := &EngineReport{
		Epochs:                r.Epochs,
		Nodes:                 r.Nodes,
		SharedBytes:           r.SharedBytes,
		QueryBytes:            r.QueryBytes,
		AggregateBytes:        r.AggregateBytes,
		AggregateBytesPerNode: r.AggregateBytesPerNode,
		Results:               r.Results,
		FailedNodes:           r.FailedNodes,
		PathsRepaired:         r.PathsRepaired,
		BaseFallbacks:         r.BaseFallbacks,
		TreesRebuilt:          r.TreesRebuilt,
		Migrations:            r.Migrations,
		MigrationsAborted:     r.MigrationsAborted,
		ResultsLost:           r.ResultsLost,
		LinkRerouted:          r.LinkRerouted,
		LinkFallbacks:         r.LinkFallbacks,
		PartitionEpochs:       r.PartitionEpochs,
	}
	for _, q := range r.Queries {
		out.Queries = append(out.Queries, QueryEngineReport{
			ID:           q.ID,
			Algorithm:    Algorithm(q.Algorithm),
			State:        q.State,
			AdmitEpoch:   q.AdmitEpoch,
			RetireEpoch:  q.RetireEpoch,
			TotalBytes:   q.TotalBytes,
			InitBytes:    q.InitBytes,
			BaseBytes:    q.BaseBytes,
			MaxNodeBytes: q.MaxNodeBytes,
			BytesPerNode: q.BytesPerNode,
			Results:      q.Results,
			ResultsLost:  q.ResultsLost,
			MeanDelay:    q.MeanDelay,
			InNetPairs:   q.InNetPairs,
			AtBasePairs:  q.AtBasePairs,
		})
	}
	return out
}

// Experiments lists the registered paper artifacts (fig2..fig20, tab3,
// mobility, ablation).
func Experiments() []string {
	ids := experiments.IDs()
	sort.Strings(ids)
	return ids
}

// ExperimentTitle returns the description of an experiment ID.
func ExperimentTitle(id string) (string, error) {
	e := experiments.Lookup(id)
	if e == nil {
		return "", fmt.Errorf("aspen: unknown experiment %q", id)
	}
	return e.Title, nil
}

// RunExperiment regenerates one paper artifact and returns its table as
// formatted text. quick trims the sweeps for fast runs; full mode uses the
// paper's parameters (9 runs, full stage grids).
func RunExperiment(id string, quick bool) (string, error) {
	e := experiments.Lookup(id)
	if e == nil {
		return "", fmt.Errorf("aspen: unknown experiment %q (known: %v)", id, Experiments())
	}
	cfg := experiments.DefaultConfig()
	if quick {
		cfg = experiments.QuickConfig()
	}
	return experiments.Render(e, e.Run(cfg)), nil
}

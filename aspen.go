// Package aspen is the public API of this reproduction of "Dynamic Join
// Optimization in Multi-Hop Wireless Sensor Networks" (Mihaylov, Jacob,
// Ives, Guha — VLDB 2010): the sensor-network join subsystem of the Aspen
// data integration system, rebuilt as a Go library over a deterministic
// network simulator.
//
// The facade covers the common cases — build a deployment, pick one of the
// paper's queries and algorithms, run it, and read the traffic/result
// report — and exposes the full experiment registry that regenerates every
// table and figure of the paper. Lower-level building blocks (the routing
// substrate, cost model, window engine, MPO machinery) live in the
// internal packages and are documented in DESIGN.md.
package aspen

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/ght"
	"repro/internal/join"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TopologyKind names a deployment class from the paper's evaluation.
type TopologyKind string

// Deployment classes (section 4.1, Appendix C).
const (
	SparseRandom   TopologyKind = "sparse"   // ~6 neighbours/node
	ModerateRandom TopologyKind = "moderate" // ~7 neighbours/node (default)
	MediumRandom   TopologyKind = "medium"   // ~8 neighbours/node
	DenseRandom    TopologyKind = "dense"    // ~13 neighbours/node
	Grid           TopologyKind = "grid"     // regular grid, ~7 neighbours
	Intel          TopologyKind = "intel"    // 54-mote Intel-Berkeley lab
)

func (k TopologyKind) kind() (topology.Kind, error) {
	switch k {
	case SparseRandom:
		return topology.SparseRandom, nil
	case ModerateRandom, "":
		return topology.ModerateRandom, nil
	case MediumRandom:
		return topology.MediumRandom, nil
	case DenseRandom:
		return topology.DenseRandom, nil
	case Grid:
		return topology.Grid, nil
	case Intel:
		return topology.Intel, nil
	default:
		return 0, fmt.Errorf("aspen: unknown topology kind %q", k)
	}
}

// Query names one of Table 2's workload queries.
type Query string

// The paper's four evaluation queries.
const (
	// Query0 is the 1:1 join with random endpoints (S.u = T.u).
	Query0 Query = "Q0"
	// Query1 is the m:n join with uniform endpoints
	// (S.id<25, T.id>50, S.x=T.y+5, S.u=T.u).
	Query1 Query = "Q1"
	// Query2 is the perimeter join
	// (S.rid=0, T.rid=3, S.cid=T.cid, S.id%4=T.id%4, S.u=T.u).
	Query2 Query = "Q2"
	// Query3 is the region join over humidity readings
	// (Dst<5m, s.id<t.id, |s.v-t.v|>1000).
	Query3 Query = "Q3"
)

// Algorithm names a join strategy.
type Algorithm string

// The paper's join algorithms and the MPO/learning variants.
const (
	Naive      Algorithm = "Naive"
	Base       Algorithm = "Base"
	Yang07     Algorithm = "Yang+07"
	GHT        Algorithm = "GHT"
	DHT        Algorithm = "DHT"
	Innet      Algorithm = "Innet"
	InnetCM    Algorithm = "Innet-cm"
	InnetCMG   Algorithm = "Innet-cmg"
	InnetCMPG  Algorithm = "Innet-cmpg"
	InnetLearn Algorithm = "Innet learn"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{Naive, Base, Yang07, GHT, DHT, Innet, InnetCM, InnetCMG, InnetCMPG, InnetLearn}
}

// Rates are the workload selectivities: SigmaS/SigmaT are producer send
// probabilities per sampling cycle, SigmaST the pairwise join selectivity.
type Rates struct {
	SigmaS, SigmaT, SigmaST float64
}

// Config describes one simulation run.
type Config struct {
	// Topology selects the deployment (default ModerateRandom).
	Topology TopologyKind
	// Nodes is the deployment size (default 100; fixed at 54 for Intel).
	Nodes int
	// Query selects the workload (default Query1).
	Query Query
	// Pairs is Query0's random pair count (default 10).
	Pairs int
	// Rates are the data-generation ground truth (default the paper's
	// 1/2:1/2 stage with sigma_st = 10%).
	Rates Rates
	// OptimizerRates, when non-nil, feeds the optimizer different
	// (possibly wrong) estimates than the ground truth — the setting of
	// the paper's cost-model validation and learning experiments.
	OptimizerRates *Rates
	// Algorithm selects the join strategy (default InnetCMG).
	Algorithm Algorithm
	// Cycles is the number of sampling cycles (default 100).
	Cycles int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// LossProb is the per-hop packet loss probability (default 5%, the
	// mote setting; use 0 for mesh-style runs).
	LossProb *float64
	// Trees is the number of routing trees in the substrate (default 3).
	Trees int
	// FailJoinNode, when set, permanently fails the first pair's join
	// node at FailCycle (section 7's experiment).
	FailJoinNode bool
	FailCycle    int
	// Merge enables Appendix E's opportunistic packet merging on the
	// join-at-base data path (Naive and Base only).
	Merge bool
}

// Report is what a run produces.
type Report struct {
	// Algorithm echoes the strategy that ran.
	Algorithm Algorithm
	// TotalBytes / TotalMessages are network-wide transmission totals,
	// including retransmissions and initiation.
	TotalBytes, TotalMessages int64
	// InitBytes is the initiation-phase share of TotalBytes.
	InitBytes int64
	// BaseBytes is traffic sent or received by the base station.
	BaseBytes int64
	// MaxNodeBytes is the heaviest per-node transmit load.
	MaxNodeBytes int64
	// Results counts join results delivered to the base station.
	Results int
	// MeanDelay is the average gap between delivered results, in cycles.
	MeanDelay float64
	// Migrations counts adaptive join-node moves (learning variants).
	Migrations int
	// InNetPairs / AtBasePairs report where producer pairs ended up.
	InNetPairs, AtBasePairs int
}

// Run executes one simulation.
func Run(cfg Config) (*Report, error) {
	kind, err := cfg.Topology.kind()
	if err != nil {
		return nil, err
	}
	n := cfg.Nodes
	if n == 0 {
		n = 100
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Trees == 0 {
		cfg.Trees = 3
	}
	if cfg.Rates == (Rates{}) {
		cfg.Rates = Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
	}
	topo := topology.Generate(kind, n, 1)
	nodes := workload.BuildNodes(topo, 1)
	rates := workload.Rates(cfg.Rates)
	var spec *workload.Spec
	switch cfg.Query {
	case Query0:
		pairs := cfg.Pairs
		if pairs == 0 {
			pairs = 10
		}
		spec = workload.Query0(topo, nodes, pairs, rates, 7)
	case Query1, "":
		spec = workload.Query1(topo, nodes, rates)
	case Query2:
		spec = workload.Query2(topo, nodes, rates)
	case Query3:
		spec = workload.Query3(topo, nodes, rates)
	default:
		return nil, fmt.Errorf("aspen: unknown query %q", cfg.Query)
	}
	loss := 0.05
	if cfg.LossProb != nil {
		loss = *cfg.LossProb
	}
	net := sim.NewNetwork(topo, loss, cfg.Seed^0x105E)
	sub := routing.NewSubstrate(topo, routing.Options{
		NumTrees:       cfg.Trees,
		Indexes:        spec.Indexes,
		IndexPositions: spec.IndexPositions,
	}, nil)
	var sampler workload.Sampler
	if cfg.Query == Query3 {
		sampler = workload.HumiditySampler{H: workload.NewHumidity(topo, cfg.Seed)}
	} else {
		sampler = workload.NewGenerator(rates, cfg.Seed)
	}
	opt := costmodel.Params{
		SigmaS: rates.SigmaS, SigmaT: rates.SigmaT, SigmaST: rates.SigmaST, W: spec.W,
	}
	if cfg.OptimizerRates != nil {
		opt.SigmaS = cfg.OptimizerRates.SigmaS
		opt.SigmaT = cfg.OptimizerRates.SigmaT
		opt.SigmaST = cfg.OptimizerRates.SigmaST
	}
	jc := join.NewConfig(topo, net, sub, spec, sampler, opt, cfg.Cycles)
	jc.Merge = cfg.Merge
	alg, err := algorithmFor(cfg.Algorithm, topo)
	if err != nil {
		return nil, err
	}
	if cfg.FailJoinNode {
		// Locate a victim join node with a dry run, then re-run with the
		// failure injected.
		probe := alg.Run(jc)
		if len(probe.PairJoinNodes) == 0 {
			return nil, fmt.Errorf("aspen: no in-network join node to fail")
		}
		net = sim.NewNetwork(topo, loss, cfg.Seed^0x105E)
		if cfg.Query != Query3 {
			sampler = workload.NewGenerator(rates, cfg.Seed)
		} else {
			sampler = workload.HumiditySampler{H: workload.NewHumidity(topo, cfg.Seed)}
		}
		jc = join.NewConfig(topo, net, sub, spec, sampler, opt, cfg.Cycles)
		jc.Merge = cfg.Merge
		jc.FailNode = probe.PairJoinNodes[0]
		jc.FailCycle = cfg.FailCycle
		if jc.FailCycle == 0 {
			jc.FailCycle = cfg.Cycles / 2
		}
	}
	res := alg.Run(jc)
	return &Report{
		Algorithm:     Algorithm(res.Algorithm),
		TotalBytes:    res.TotalBytes,
		TotalMessages: res.TotalMessages,
		InitBytes:     res.InitBytes,
		BaseBytes:     res.BaseBytes,
		MaxNodeBytes:  res.MaxNodeBytes,
		Results:       res.Results,
		MeanDelay:     res.MeanDelay(),
		Migrations:    res.Migrations,
		InNetPairs:    res.InNetPairs,
		AtBasePairs:   res.AtBasePairs,
	}, nil
}

func algorithmFor(name Algorithm, topo *topology.Topology) (join.Algorithm, error) {
	switch name {
	case Naive:
		return join.Naive{}, nil
	case Base:
		return join.Base{}, nil
	case Yang07:
		return join.Yang07{}, nil
	case GHT:
		return join.Hashed{Label: "GHT", Router: ght.NewRouter(topo)}, nil
	case DHT:
		return join.Hashed{Label: "DHT", Router: dht.NewRing(topo)}, nil
	case Innet:
		return join.Innet{}, nil
	case InnetCM:
		return join.Innet{Opts: join.InnetOptions{Multicast: true}}, nil
	case InnetCMG, "":
		return join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}}, nil
	case InnetCMPG:
		return join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}}, nil
	case InnetLearn:
		return join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true, Learn: true}}, nil
	default:
		return nil, fmt.Errorf("aspen: unknown algorithm %q", name)
	}
}

// Experiments lists the registered paper artifacts (fig2..fig20, tab3,
// mobility, ablation).
func Experiments() []string {
	ids := experiments.IDs()
	sort.Strings(ids)
	return ids
}

// ExperimentTitle returns the description of an experiment ID.
func ExperimentTitle(id string) (string, error) {
	e := experiments.Lookup(id)
	if e == nil {
		return "", fmt.Errorf("aspen: unknown experiment %q", id)
	}
	return e.Title, nil
}

// RunExperiment regenerates one paper artifact and returns its table as
// formatted text. quick trims the sweeps for fast runs; full mode uses the
// paper's parameters (9 runs, full stage grids).
func RunExperiment(id string, quick bool) (string, error) {
	e := experiments.Lookup(id)
	if e == nil {
		return "", fmt.Errorf("aspen: unknown experiment %q (known: %v)", id, Experiments())
	}
	cfg := experiments.DefaultConfig()
	if quick {
		cfg = experiments.QuickConfig()
	}
	return experiments.Render(e, e.Run(cfg)), nil
}

package aspen

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchExperiment runs one registered experiment per iteration in quick
// mode. Every table and figure of the paper has a bench target here; the
// aspen-exp CLI regenerates the same artifacts at full fidelity.
func benchExperiment(b *testing.B, id string) {
	e := experiments.Lookup(id)
	if e == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.QuickConfig()
	cfg.Runs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := e.Run(cfg)
		if len(rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig16(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)    { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "tab3") }
func BenchmarkMobility(b *testing.B) { benchExperiment(b, "mobility") }

// --- Ablation benches (DESIGN.md, "Design choices called out for ablation")

// ablationSetup builds one Query 0 run for micro-ablations.
func ablationSetup(opt *costmodel.Params, cycles int) *join.Config {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := workload.BuildNodes(topo, 1)
	rates := workload.Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2}
	spec := workload.Query0(topo, nodes, 10, rates, 7)
	net := sim.NewNetwork(topo, 0.05, 1)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: spec.Indexes}, nil)
	gen := workload.NewGenerator(rates, 42)
	p := costmodel.Params{SigmaS: rates.SigmaS, SigmaT: rates.SigmaT, SigmaST: rates.SigmaST, W: spec.W}
	if opt != nil {
		p = *opt
		p.W = spec.W
	}
	return join.NewConfig(topo, net, sub, spec, gen, p, cycles)
}

// BenchmarkAblationPlacement compares the section 3.1 cost-model placement
// against naive placements; reported metric is traffic KB per op.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, bench := range []struct {
		name string
		f    func(p costmodel.Params, depths []int) costmodel.Placement
	}{
		{"cost-model", nil},
		{"midpoint", func(p costmodel.Params, d []int) costmodel.Placement {
			return costmodel.Placement{Index: len(d) / 2}
		}},
		{"at-s", func(p costmodel.Params, d []int) costmodel.Placement {
			return costmodel.Placement{Index: 0}
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				cfg := ablationSetup(nil, 50)
				res := join.Innet{Opts: join.InnetOptions{PlacementOverride: bench.f}}.Run(cfg)
				bytes += res.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
		})
	}
}

// BenchmarkAblationTrigger varies the adaptivity trigger ratio under wrong
// initial estimates (the paper picked 33%).
func BenchmarkAblationTrigger(b *testing.B) {
	wrong := &costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2}
	for _, bench := range []struct {
		name    string
		trigger float64
		learn   bool
	}{
		{"never", 0, false},
		{"10pct", 0.10, true},
		{"33pct", 0.33, true},
		{"66pct", 0.66, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				cfg := ablationSetup(wrong, 150)
				res := join.Innet{Opts: join.InnetOptions{Learn: bench.learn, Trigger: bench.trigger}}.Run(cfg)
				bytes += res.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
		})
	}
}

// BenchmarkAblationMulticast measures the interior-state-cached multicast
// tree against pairwise unicast on the m:n Query 1.
func BenchmarkAblationMulticast(b *testing.B) {
	mk := func() *join.Config {
		topo := topology.Generate(topology.ModerateRandom, 100, 1)
		nodes := workload.BuildNodes(topo, 1)
		rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.05}
		spec := workload.Query1(topo, nodes, rates)
		net := sim.NewNetwork(topo, 0.05, 1)
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: spec.Indexes}, nil)
		gen := workload.NewGenerator(rates, 42)
		p := costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.05, W: spec.W}
		return join.NewConfig(topo, net, sub, spec, gen, p, 50)
	}
	for _, bench := range []struct {
		name string
		opts join.InnetOptions
	}{
		{"unicast", join.InnetOptions{}},
		{"multicast", join.InnetOptions{Multicast: true}},
		{"multicast+collapse", join.InnetOptions{Multicast: true, PathCollapse: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res := join.Innet{Opts: bench.opts}.Run(mk())
				bytes += res.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
		})
	}
}

// BenchmarkAblationCollapse isolates the path-collapse hysteresis choice:
// with collapsing on vs off at the m:n perimeter query.
func BenchmarkAblationCollapse(b *testing.B) {
	mk := func() *join.Config {
		topo := topology.Generate(topology.ModerateRandom, 100, 1)
		nodes := workload.BuildNodes(topo, 1)
		rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
		spec := workload.Query2(topo, nodes, rates)
		net := sim.NewNetwork(topo, 0.05, 1)
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: spec.Indexes}, nil)
		gen := workload.NewGenerator(rates, 42)
		p := costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1, W: spec.W}
		return join.NewConfig(topo, net, sub, spec, gen, p, 100)
	}
	for _, bench := range []struct {
		name string
		opts join.InnetOptions
	}{
		{"cmg", join.InnetOptions{Multicast: true, GroupOpt: true}},
		{"cmpg", join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res := join.Innet{Opts: bench.opts}.Run(mk())
				bytes += res.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
		})
	}
}

// BenchmarkAblationMerge quantifies Appendix E's opportunistic packet
// merging on the join-at-base data path.
func BenchmarkAblationMerge(b *testing.B) {
	mk := func(merge bool) *join.Config {
		topo := topology.Generate(topology.ModerateRandom, 100, 1)
		nodes := workload.BuildNodes(topo, 1)
		rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
		spec := workload.Query1(topo, nodes, rates)
		net := sim.NewNetwork(topo, 0.05, 1)
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 1, Indexes: spec.Indexes}, nil)
		gen := workload.NewGenerator(rates, 42)
		p := costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1, W: spec.W}
		cfg := join.NewConfig(topo, net, sub, spec, gen, p, 100)
		cfg.Merge = merge
		return cfg
	}
	for _, bench := range []struct {
		name  string
		merge bool
	}{{"unmerged", false}, {"merged", true}} {
		b.Run(bench.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res := join.Base{}.Run(mk(bench.merge))
				bytes += res.TotalBytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
		})
	}
}

// BenchmarkSingleRun measures one full simulation end to end (substrate
// construction + initiation + 100 cycles) — the unit everything above
// composes.
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Cycles: 100, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Multi-query engine benches (internal/engine) ---------------------------

// engineQueries is a pool of distinct SQL queries the concurrency benches
// draw from round-robin.
var engineQueries = []string{
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=1 sampleinterval=100]
WHERE S.rid = 0 AND T.rid = 3 AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 10 AND T.id > 80 AND S.x = T.y + 5 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 40 AND T.id > 60 AND S.x = T.y + 5 AND S.u = T.u`,
}

// benchEngine runs nq concurrent queries for 30 epochs per iteration on
// the given worker count and reports aggregate traffic, so the perf
// trajectory of the scheduler and the shared substrate is on record at 1,
// 4, 16 and 64 live queries — and the Engine16Workers/Engine16 timing
// ratio is the measured intra-epoch parallel speedup (traffic and results
// are byte-identical at any worker count; see
// engine.TestWorkersByteIdentical).
func benchEngine(b *testing.B, nq, workers int) {
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Options{Seed: uint64(i) + 1, Workers: workers})
		for q := 0; q < nq; q++ {
			if _, err := e.Submit(engine.QueryConfig{SQL: engineQueries[q%len(engineQueries)]}); err != nil {
				b.Fatal(err)
			}
		}
		bytes += e.Run(30).AggregateBytes
	}
	b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
}

func BenchmarkEngine1(b *testing.B)  { benchEngine(b, 1, 1) }
func BenchmarkEngine4(b *testing.B)  { benchEngine(b, 4, 1) }
func BenchmarkEngine16(b *testing.B) { benchEngine(b, 16, 1) }
func BenchmarkEngine64(b *testing.B) { benchEngine(b, 64, 1) }

// BenchmarkEngine16Workers is BenchmarkEngine16 stepped on a worker pool:
// workers=1 pays only the sequential path, higher counts fan the 16 live
// queries across goroutines with per-query traffic ledgers.
func BenchmarkEngine16Workers(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchEngine(b, 16, workers)
		})
	}
}

// BenchmarkEngine16Observed is BenchmarkEngine16 with the observability
// layer attached, so the enabled-path cost is a recorded number instead
// of a claim: "bare" is the baseline, "metrics" adds a registry (sampled
// once per epoch at the barrier), "metrics+trace" also records per-query
// and per-phase spans. The disabled path is pinned alloc-identical to
// bare by engine.TestObsDisabledAddsNoAllocs; the enabled deltas measured
// here are documented in DESIGN.md ("Observability model"). The registry
// is shared across iterations — instruments re-register idempotently —
// while the tracer is fresh per iteration, since its span log grows with
// every epoch and a shared one would turn the bench into an append
// benchmark.
func BenchmarkEngine16Observed(b *testing.B) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"bare", "metrics", "metrics+trace"} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				var reg *obs.Registry
				if mode != "bare" {
					reg = obs.NewRegistry()
				}
				b.ReportAllocs()
				var bytes int64
				for i := 0; i < b.N; i++ {
					var tr *obs.Tracer
					if mode == "metrics+trace" {
						tr = obs.NewTracer()
					}
					e := engine.New(engine.Options{Seed: uint64(i) + 1, Workers: workers, Obs: reg, Trace: tr})
					for q := 0; q < 16; q++ {
						if _, err := e.Submit(engine.QueryConfig{SQL: engineQueries[q%len(engineQueries)]}); err != nil {
							b.Fatal(err)
						}
					}
					bytes += e.Run(30).AggregateBytes
				}
				b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
			})
		}
	}
}

// BenchmarkEngine16Hooked is BenchmarkEngine16 with an OnEpoch hook that
// reads the per-epoch stats — the path that exercises the engine's reused
// NewResults map (cleared each epoch instead of reallocated). The delta
// against BenchmarkEngine16 is the whole cost of per-epoch stats
// delivery.
func BenchmarkEngine16Hooked(b *testing.B) {
	b.ReportAllocs()
	var bytes, results int64
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Options{Seed: uint64(i) + 1})
		for q := 0; q < 16; q++ {
			if _, err := e.Submit(engine.QueryConfig{SQL: engineQueries[q%len(engineQueries)]}); err != nil {
				b.Fatal(err)
			}
		}
		e.OnEpoch = func(s engine.EpochStats) {
			for _, n := range s.NewResults {
				results += int64(n)
			}
		}
		bytes += e.Run(30).AggregateBytes
	}
	b.ReportMetric(float64(bytes)/float64(b.N)/1024, "trafficKB/op")
}

// BenchmarkSweepWorkers measures the parallel sweep runner on a
// multi-figure experiment sweep at 1 worker vs every core: the ratio of
// the two timings is the recorded parallel speedup (identical results —
// see experiments.TestWorkerCountInvariance).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.QuickConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				for _, id := range []string{"fig2", "fig4", "fig7"} {
					e := experiments.Lookup(id)
					if rows := e.Run(cfg); len(rows) == 0 {
						b.Fatalf("%s produced no rows", id)
					}
				}
			}
		})
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestListNamesEverything pins that -list advertises the full suite plus
// the allocfree gate, and exits 0.
func TestListNamesEverything(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, stderr %q", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"detrand", "maporder", "obsfeedback", "steplock", "allocfree"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestUsageErrors pins exit status 2 for bad flags and unknown analyzers.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-run", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-run nosuch exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not explain the unknown analyzer: %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exit = %d, want 2", code)
	}
}

// TestCleanPackageExitsZero runs the suite over a package with no
// violations.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"repro/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// vetDiag mirrors the JSON shape of analysis.Diagnostic as consumers see
// it, so a field rename breaks this test rather than downstream tooling.
type vetDiag struct {
	Position struct {
		Filename string `json:"Filename"`
		Line     int    `json:"Line"`
	} `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// TestJSONFindings runs one analyzer over its golden fixture: findings
// exit 1 and decode as a JSON array of position/analyzer/message.
func TestJSONFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-run", "detrand", "repro/internal/analysis/testdata/src/detrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings); stderr %q", code, stderr.String())
	}
	var diags []vetDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output decoded to zero findings")
	}
	for _, d := range diags {
		if d.Analyzer != "detrand" {
			t.Errorf("analyzer = %q, want detrand", d.Analyzer)
		}
		if d.Position.Filename == "" || d.Position.Line == 0 || d.Message == "" {
			t.Errorf("finding missing fields: %+v", d)
		}
	}
}

// TestJSONCleanEmitsEmptyArray pins that -json always emits valid JSON,
// even with nothing to report.
func TestJSONCleanEmitsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "repro/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr.String())
	}
	var diags []vetDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("clean -json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean -json decoded %d findings", len(diags))
	}
}

// TestAllocFreeFlag routes -allocfree to the escape gate: a package with
// no annotations is trivially clean.
func TestAllocFreeFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-allocfree", "repro/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-allocfree exit = %d, stderr %q", code, stderr.String())
	}
}

// Command aspen-vet runs the repo's invariant-enforcing static analyzers
// (internal/analysis) over the given packages, the way go vet runs its
// suite. The analyzers mechanize the engine's correctness invariants —
// all randomness through internal/rng (detrand), no map-iteration order
// leaking into byte-identical output (maporder), observation never
// feeding back into execution (obsfeedback), and the join stepper
// concurrency contract (steplock).
//
// Usage:
//
//	aspen-vet ./...                    # run the full suite
//	aspen-vet -run detrand,maporder ./internal/engine
//	aspen-vet -list                    # list analyzers
//	aspen-vet -json ./...              # machine-readable diagnostics
//	aspen-vet -allocfree ./...         # escape-analysis alloc gate only
//
// With -allocfree the AST analyzers are skipped and the //aspen:allocfree
// escape-analysis gate runs instead: annotated hot-path functions are
// checked against go build -gcflags=-m and any heap allocation inside an
// annotated body is a finding.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code surfaced for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aspen-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	allocFree := fs.Bool("allocfree", false, "run the //aspen:allocfree escape-analysis gate instead of the AST analyzers")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: aspen-vet [-list] [-run a,b] [-json] [-allocfree] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", "allocfree", "escape-analysis gate over //aspen:allocfree functions (-allocfree)")
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []analysis.Diagnostic
	var err error
	if *allocFree {
		diags, err = analysis.CheckAllocFree(".", patterns...)
	} else {
		var analyzers []*analysis.Analyzer
		analyzers, err = analysis.ByName(*runNames)
		if err == nil {
			var pkgs []*analysis.Package
			pkgs, err = analysis.Load(".", patterns...)
			if err == nil {
				diags, err = analysis.Run(pkgs, analyzers)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "aspen-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "aspen-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

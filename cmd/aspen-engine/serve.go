// Live introspection endpoints for -metrics-addr: the engine's metrics as
// a /metricz text dump and as expvar JSON under /debug/vars, plus the
// standard pprof handlers. Snapshots are taken while the scheduler runs —
// the registry's atomic instruments make that race-free — so a long run
// can be inspected mid-flight:
//
//	aspen-engine -metrics-addr localhost:8080 -epochs 100000 &
//	curl localhost:8080/metricz
//	go tool pprof localhost:8080/debug/pprof/profile
package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	aspen "repro"
)

// metricsEngine is the engine the expvar publication reads. expvar's
// registry is process-global and rejects duplicate names, so the variable
// is published once and indirects through this pointer (tests start
// several servers in one process).
var (
	metricsEngine atomic.Pointer[aspen.Engine]
	publishOnce   sync.Once
)

// serveMetrics starts the introspection server on addr and returns its
// listener (close it to stop). Endpoints: /metricz (text dump),
// /debug/vars (expvar JSON, engine metrics under "aspen"), /debug/pprof/.
func serveMetrics(addr string, e *aspen.Engine) (net.Listener, error) {
	metricsEngine.Store(e)
	publishOnce.Do(func() {
		expvar.Publish("aspen", expvar.Func(func() any {
			if cur := metricsEngine.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cur := metricsEngine.Load(); cur != nil {
			_ = cur.Snapshot().WriteText(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}

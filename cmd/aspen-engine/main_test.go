package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	aspen "repro"
)

// TestParseWorkloadDemo parses the built-in demo workload: 4 blocks with
// the directives the usage text documents.
func TestParseWorkloadDemo(t *testing.T) {
	jobs, _, _, err := parseWorkload(demoWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expected 4 jobs, got %d", len(jobs))
	}
	if jobs[0].ID != "m2n-join" || jobs[0].Algorithm != aspen.Algorithm("Innet-cmg") {
		t.Errorf("job 0 directives not applied: %+v", jobs[0])
	}
	if jobs[2].AdmitAt != 10 || jobs[2].Rates.SigmaS != 0.1 || jobs[2].Rates.SigmaST != 0.2 {
		t.Errorf("job 2 admit/rates not applied: %+v", jobs[2])
	}
	// sigma-t untouched by the block, so the directive default kicks in.
	if jobs[2].Rates.SigmaT != 0.5 {
		t.Errorf("job 2 sigma-t default wrong: %+v", jobs[2].Rates)
	}
	if jobs[3].Cycles != 50 || jobs[3].AdmitAt != 20 {
		t.Errorf("job 3 cycles/admit not applied: %+v", jobs[3])
	}
	for i, job := range jobs {
		if job.SQL == "" {
			t.Errorf("job %d lost its SQL", i)
		}
		if strings.HasSuffix(job.SQL, ";") {
			t.Errorf("job %d kept trailing semicolon", i)
		}
	}
}

// TestParseWorkloadEmpty covers empty and whitespace-only files.
func TestParseWorkloadEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n\n", "   \n\t\n"} {
		jobs, _, _, err := parseWorkload(src)
		if err != nil {
			t.Errorf("empty input %q: unexpected error %v", src, err)
		}
		if len(jobs) != 0 {
			t.Errorf("empty input %q: got %d jobs", src, len(jobs))
		}
	}
}

// TestParseWorkloadMalformed covers the documented error cases.
func TestParseWorkloadMalformed(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"directive-only block", "-- id: lonely\n", "no SQL statement"},
		{"both sql and query", "-- query: Q1\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n", "both SQL text and a 'query:' directive"},
		{"unknown directive", "-- frobnicate: yes\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n", `unknown directive "frobnicate"`},
		{"bad cycles", "-- cycles: soon\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n", "cycles"},
		{"bad admit", "-- admit: later\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n", "admit"},
		{"bad sigma", "-- sigma-s: lots\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n", "sigma-s"},
		{"bad pairs", "-- pairs: few\n-- query: Q0\n", "pairs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := parseWorkload(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseWorkloadCommentsAndBareDirectives: '#' lines and bare "--"
// comments (no colon) are ignored, not errors.
func TestParseWorkloadComments(t *testing.T) {
	src := "# a file comment\n-- the fast half\n-- id: q\nSELECT S.id, T.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n"
	jobs, _, _, err := parseWorkload(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "q" {
		t.Fatalf("unexpected jobs: %+v", jobs)
	}
}

// TestParseWorkloadWhitespaceSeparator: a "blank" separator line that
// contains stray spaces or tabs still splits blocks.
func TestParseWorkloadWhitespaceSeparator(t *testing.T) {
	src := "-- id: a\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n \t \n-- id: b\n-- query: Q1\n"
	jobs, _, _, err := parseWorkload(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("whitespace separator did not split blocks: %+v", jobs)
	}
}

// TestParseWorkloadCRLF: Windows line endings parse identically.
func TestParseWorkloadCRLF(t *testing.T) {
	unix := "-- id: a\nSELECT S.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n\n-- id: b\n-- query: Q1\n"
	dos := strings.ReplaceAll(unix, "\n", "\r\n")
	ju, _, _, err := parseWorkload(unix)
	if err != nil {
		t.Fatal(err)
	}
	jd, _, _, err := parseWorkload(dos)
	if err != nil {
		t.Fatal(err)
	}
	if len(ju) != 2 || len(jd) != 2 || ju[0].ID != jd[0].ID || ju[1].Query != jd[1].Query {
		t.Fatalf("CRLF parse differs: %+v vs %+v", ju, jd)
	}
}

// TestRunAllAndBaseline exercises the engine driver the -baseline flag
// uses: a shared run over two queries must cost less than the sum of the
// two queries run alone (the sharing inequality the flag reports).
func TestRunAllAndBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run in -short mode")
	}
	jobs, _, _, err := parseWorkload("-- id: left\nSELECT S.id, T.id FROM S, T [windowsize=3 sampleinterval=100] WHERE S.id < 10 AND T.id > 80 AND S.x = T.y + 5 AND S.u = T.u\n\n-- id: right\n-- query: Q1\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := aspen.EngineConfig{Seed: 1}
	shared, err := runAll(cfg, jobs, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Queries) != 2 || shared.AggregateBytes <= 0 {
		t.Fatalf("implausible shared report: %+v", shared)
	}
	var sum int64
	for i := range jobs {
		one, err := runAll(cfg, jobs[i:i+1], 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += one.AggregateBytes
	}
	if shared.AggregateBytes >= sum {
		t.Errorf("sharing saved nothing: shared=%d unshared-sum=%d", shared.AggregateBytes, sum)
	}
}

// TestParseWorkloadChurnDirectives: churn directives are deployment-level,
// may form pure churn blocks, and materialize against the run's node count
// and horizon.
func TestParseWorkloadChurnDirectives(t *testing.T) {
	src := "-- fail: 17 @ 5\n-- revive: 17 @ 9\n-- churn: 0.01 @ 42\n\n-- id: q\nSELECT S.id, T.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n"
	jobs, churn, _, err := parseWorkload(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "q" {
		t.Fatalf("churn block leaked into jobs: %+v", jobs)
	}
	if len(churn.events) != 2 || churn.events[0] != (aspen.ChurnEvent{Epoch: 5, Node: 17}) ||
		churn.events[1] != (aspen.ChurnEvent{Epoch: 9, Node: 17, Revive: true}) {
		t.Fatalf("explicit events wrong: %+v", churn.events)
	}
	if len(churn.seeded) != 1 || churn.seeded[0] != (seededChurn{rate: 0.01, seed: 42}) {
		t.Fatalf("seeded spec wrong: %+v", churn.seeded)
	}
	sched := churn.schedule(100, 20)
	if len(sched) < 2 {
		t.Fatalf("schedule too short: %d events", len(sched))
	}
	if !reflect.DeepEqual(sched, churn.schedule(100, 20)) {
		t.Fatal("schedule not deterministic")
	}
	// A churn directive inside a query block attaches to the deployment,
	// not the query.
	_, c2, _, err := parseWorkload("-- id: q\n-- fail: 3 @ 1\nSELECT S.id, T.id FROM S, T [windowsize=1 sampleinterval=100] WHERE S.u = T.u\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.events) != 1 {
		t.Fatalf("in-block churn directive lost: %+v", c2.events)
	}
}

// TestParseWorkloadChurnErrors: malformed churn directives are reported,
// and a block mixing churn with query directives but no SQL still errors.
func TestParseWorkloadChurnErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, wantErr string }{
		{"bad fail", "-- fail: soonish\n", "fail"},
		{"bad revive epoch", "-- revive: 4 @ later\n", "epoch"},
		{"bad churn rate", "-- churn: lots\n", "churn rate"},
		{"bad churn seed", "-- churn: 0.1 @ x\n", "churn seed"},
		{"churn plus id but no sql", "-- id: broken\n-- fail: 3 @ 1\n", "no SQL statement"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := parseWorkload(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestVerboseStreamsToWriterNotStdout is the stdout-hygiene regression
// test: per-epoch progress lines go only to the writer buildEngine is
// handed (main passes stderr), so stdout remains a clean report that
// pipelines can parse.
func TestVerboseStreamsToWriterNotStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run in -short mode")
	}
	jobs, _, _, err := parseWorkload("-- id: left\n-- cycles: 5\nSELECT S.id, T.id FROM S, T [windowsize=3 sampleinterval=100] WHERE S.id < 10 AND T.id > 80 AND S.x = T.y + 5 AND S.u = T.u\n")
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	if _, err := runAll(aspen.EngineConfig{Seed: 1}, jobs, 10, &progress); err != nil {
		t.Fatal(err)
	}
	out := progress.String()
	for _, want := range []string{"+ left admitted", "- left retired"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress stream missing %q:\n%s", want, out)
		}
	}
	// The same run with a nil writer registers no hook at all.
	if _, err := runAll(aspen.EngineConfig{Seed: 1}, jobs, 10, nil); err != nil {
		t.Fatal(err)
	}
}

// TestServeMetricsEndpoints: -metrics-addr's server answers /metricz with
// the text dump and /debug/vars with expvar JSON carrying the engine
// snapshot under "aspen".
func TestServeMetricsEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run in -short mode")
	}
	jobs, _, _, err := parseWorkload("-- id: q\n-- query: Q1\n")
	if err != nil {
		t.Fatal(err)
	}
	e, err := buildEngine(aspen.EngineConfig{Seed: 1, Metrics: true}, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := serveMetrics("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ln.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metricz := get("/metricz")
	if !strings.Contains(metricz, "counter engine.epochs") || !strings.Contains(metricz, "hist    epoch.wall_us") {
		t.Fatalf("/metricz malformed:\n%s", metricz)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["aspen"]; !ok {
		t.Fatal("/debug/vars missing the aspen snapshot")
	}
	var snap struct {
		Counters []struct {
			Name  string
			Value int64
		}
	}
	if err := json.Unmarshal(vars["aspen"], &snap); err != nil {
		t.Fatalf("aspen expvar not a snapshot: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "engine.epochs" && c.Value == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("aspen expvar snapshot missing engine.epochs=10: %+v", snap.Counters)
	}
}

// Command aspen-engine runs a mixed multi-query workload — many continuous
// queries over ONE shared sensor deployment — and reports per-query and
// aggregate traffic, separating the shared infrastructure cost (routing
// trees, index dissemination; charged once per network) from each query's
// own initiation/data/result traffic. With -baseline it also runs every
// query alone on its own deployment and prints the traffic-sharing win.
//
// Usage:
//
//	aspen-engine                          # built-in 4-query demo workload
//	aspen-engine -f workload.sql -epochs 200 -topo dense
//	aspen-engine -v                       # stream per-epoch progress
//
// Workload file format: query blocks separated by blank lines. Inside a
// block, lines starting with "--" are directives ("-- key: value"); the
// remaining lines are one StreamSQL statement (trailing ";" optional).
// Directives:
//
//	-- id: <label>            report label (default q<n>)
//	-- alg: <algorithm>       join strategy (default Innet-cmg)
//	-- query: <Q0..Q3>        run a built-in Table 2 query instead of SQL
//	-- cycles: <n>            lifetime in epochs (default: whole run)
//	-- admit: <epoch>         admission epoch (default 0)
//	-- sigma-s / sigma-t / sigma-st: <float>   workload rates
//
// Churn directives describe the DEPLOYMENT, not one query: they may appear
// in any block (including a block of nothing but directives) and are
// collected into one engine-wide schedule:
//
//	-- fail: <node> @ <epoch>      fail a node at an epoch
//	-- revive: <node> @ <epoch>    revive it again later
//	-- churn: <rate> @ <seed>      seeded random churn (per-epoch fail
//	                               probability; failures permanent)
//
// Fault directives (also deployment-level) build a deterministic
// link-fault plan — lossy links, transient link failures, partitions:
//
//	-- loss: <rate> [@ <seed>]               heterogeneous per-link loss
//	-- link-fail: <rate> [@ <revive>]        per-epoch link failures
//	-- partition: [bisect|region <k> @] <from>..<until>   scheduled split
//	-- max-retries: <n>                      per-hop retry bound (<0 = none)
//
// Example block (one directive per line):
//
//	-- id: left-half
//	-- alg: Innet-cmg
//	-- cycles: 80
//	SELECT S.id, T.id
//	FROM S, T [windowsize=3 sampleinterval=100]
//	WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u;
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	aspen "repro"
)

// demoWorkload is the built-in mixed workload: four concurrent SQL queries
// with staggered admissions over one deployment.
const demoWorkload = `-- id: m2n-join
-- alg: Innet-cmg
SELECT S.id, T.id, S.local_time
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND hash(S.u) % 2 = 0
AND T.id > 50 AND hash(T.u) % 2 = 0
AND S.x = T.y + 5 AND S.u = T.u;

-- id: perimeter
-- alg: Innet-cmpg
SELECT S.id, T.id
FROM S, T [windowsize=1 sampleinterval=100]
WHERE S.rid = 0 AND T.rid = 3
AND S.cid = T.cid AND S.id % 4 = T.id % 4
AND S.u = T.u;

-- id: sparse-pairs
-- alg: Innet
-- admit: 10
-- sigma-s: 0.1
-- sigma-st: 0.2
SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 10 AND T.id > 80 AND S.x = T.y + 5 AND S.u = T.u;

-- id: at-base
-- alg: Base
-- admit: 20
-- cycles: 50
SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 40 AND T.id > 60 AND S.x = T.y + 5 AND S.u = T.u;
`

func main() {
	var (
		file     = flag.String("f", "", "workload file (default: built-in 4-query demo)")
		topo     = flag.String("topo", "moderate", "topology: sparse|moderate|medium|dense|grid|intel")
		nodes    = flag.Int("nodes", 100, "node count (ignored for intel)")
		trees    = flag.Int("trees", 3, "routing trees in the shared substrate")
		epochs   = flag.Int("epochs", 100, "scheduler epochs (sampling cycles) to run")
		workers  = flag.Int("workers", 1, "goroutines stepping live queries per epoch (1 = sequential, -1 = all cores; output is byte-identical at any setting)")
		adapt    = flag.Bool("adapt", false, "enable section-6 adaptivity: re-estimate selectivities each epoch and migrate join windows on >=33% divergence")
		loss     = flag.Float64("loss", -1, "uniform per-hop loss probability (default: the engine's 5%; 0 = lossless)")
		maxRetry = flag.Int("max-retries", 0, "per-hop retransmission bound for every traffic class (0 = engine default of 3, negative = no retries)")
		retryPol = flag.String("retry-policy", "", "full retry/backoff policy, e.g. \"max=3,control=5,data=2,backoff=8\" (keys: max, control, data, result, migration, backoff); overrides -max-retries")
		seed     = flag.Uint64("seed", 1, "engine seed")
		baseline = flag.Bool("baseline", true, "also run each query alone and report the sharing win")
		verbose  = flag.Bool("v", false, "stream per-epoch admissions/retirements/results to stderr")
		addr     = flag.String("metrics-addr", "", "serve live introspection endpoints on this address while the run executes (/metricz, /debug/vars, /debug/pprof/)")
		trace    = flag.String("trace", "", "write the epoch trace to this file after the run (Chrome trace_event JSON; a .jsonl suffix selects JSONL)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `aspen-engine: run a mixed multi-query workload over ONE shared deployment.

Shared infrastructure traffic (routing trees, index dissemination) is
charged once per network; each query's initiation/data/result traffic is
accounted on its own stream. Reports per-query and aggregate bytes/node.

usage: aspen-engine [flags]

flags:
`)
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
workload file format (-f): query blocks separated by blank lines. Lines
starting with "--" are directives; the rest is one StreamSQL statement
(trailing ";" optional). Directives:

  -- id: <label>           report label (default q<n>)
  -- alg: <algorithm>      Naive|Base|Yang+07|GHT|DHT|Innet|Innet-cm|
                           Innet-cmg|Innet-cmpg|"Innet learn" (default Innet-cmg)
  -- query: <Q0..Q3>       run a built-in Table 2 query instead of SQL
  -- pairs: <n>            Q0 random pair count
  -- cycles: <n>           lifetime in epochs (default: whole run)
  -- admit: <epoch>        admission epoch (default 0)
  -- sigma-s: <f>          producer send probability for S (likewise
                           sigma-t, sigma-st)

deployment churn directives (allowed in any block, or a block of their
own; collected into one engine-wide schedule):

  -- fail: <node> @ <epoch>     fail a node at an epoch
  -- revive: <node> @ <epoch>   revive it again later
  -- churn: <rate> @ <seed>     seeded random churn (per-epoch fail
                                probability; @ <seed> optional)

deployment fault directives (same scoping; build one link-fault plan):

  -- loss: <rate> [@ <seed>]    heterogeneous per-link loss layer
  -- link-fail: <rate> [@ <n>]  per-epoch link failures (revive after n)
  -- partition: [bisect|region <k> @] <from>..<until>
                                cut the field in two for epochs from..until
  -- max-retries: <n>           per-hop retry bound (negative = none)

example block:

  -- id: left-right
  -- alg: Innet-cmg
  -- admit: 10
  SELECT S.id, T.id
  FROM S, T [windowsize=3 sampleinterval=100]
  WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u;

With no -f, a built-in 4-query demo workload runs.
`)
	}
	flag.Parse()

	src := demoWorkload
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	jobs, churn, fault, err := parseWorkload(src)
	if err != nil {
		fatal(err)
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("workload contains no queries"))
	}

	cfg := aspen.EngineConfig{
		Topology: aspen.TopologyKind(*topo),
		Nodes:    *nodes,
		Trees:    *trees,
		Seed:     *seed,
		Adapt:    *adapt,
		Workers:  *workers,
	}
	if *loss >= 0 {
		cfg.LossProb = loss
	}
	cfg.MaxRetries = *maxRetry
	if fault.maxRetries != 0 {
		cfg.MaxRetries = fault.maxRetries
	}
	if *retryPol != "" {
		p, err := parseRetryPolicy(*retryPol)
		if err != nil {
			fatal(err)
		}
		cfg.Retry = p
	}
	if fault.set {
		cfg.Faults = &fault.cfg
	}
	// Seeded churn materializes against the EFFECTIVE deployment size
	// (Intel pins 54 motes regardless of -nodes).
	deployNodes, err := cfg.DeploymentNodes()
	if err != nil {
		fatal(err)
	}
	cfg.Churn = churn.schedule(deployNodes, *epochs)
	cfg.Metrics = *addr != ""
	cfg.Trace = *trace != ""

	// Per-epoch progress goes to STDERR: stdout carries only the final
	// report, so `aspen-engine -v | tee report.txt` and downstream parsers
	// see a clean machine-readable document.
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	e, err := buildEngine(cfg, jobs, progress)
	if err != nil {
		fatal(err)
	}
	if *addr != "" {
		ln, err := serveMetrics(*addr, e)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metricz (also /debug/vars, /debug/pprof/)\n", ln.Addr())
	}
	rep, err := e.Run(*epochs)
	if err != nil {
		fatal(err)
	}
	if *trace != "" {
		if err := writeTraceFile(e, *trace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *trace)
	}

	fmt.Printf("aspen-engine — %d queries over one %s deployment (%d nodes, %d epochs)\n\n",
		len(jobs), *topo, rep.Nodes, rep.Epochs)
	fmt.Printf("%-14s %-11s %-8s %10s %12s %12s %8s %8s\n",
		"query", "algorithm", "state", "live", "traffic KB", "KB/node", "results", "delay")
	for _, q := range rep.Queries {
		live := fmt.Sprintf("%d..%d", q.AdmitEpoch, q.RetireEpoch)
		if q.AdmitEpoch < 0 {
			live = "-"
		}
		fmt.Printf("%-14s %-11s %-8s %10s %12.1f %12.3f %8d %8.2f\n",
			q.ID, q.Algorithm, q.State, live,
			float64(q.TotalBytes)/1024, q.BytesPerNode/1024, q.Results, q.MeanDelay)
	}
	fmt.Printf("\nshared infrastructure  %8.1f KB   (routing trees + index dissemination + repair, charged once)\n",
		float64(rep.SharedBytes)/1024)
	fmt.Printf("per-query traffic      %8.1f KB\n", float64(rep.QueryBytes)/1024)
	fmt.Printf("aggregate              %8.1f KB   (%.3f KB/node, %d results)\n",
		float64(rep.AggregateBytes)/1024, rep.AggregateBytesPerNode/1024, rep.Results)
	if rep.FailedNodes > 0 {
		fmt.Printf("node churn             %d failed, %d paths repaired in-network, %d base fallbacks, %d trees rebuilt\n",
			rep.FailedNodes, rep.PathsRepaired, rep.BaseFallbacks, rep.TreesRebuilt)
	}
	if rep.ResultsLost > 0 || rep.LinkRerouted > 0 || rep.LinkFallbacks > 0 || rep.PartitionEpochs > 0 {
		fmt.Printf("link faults            %d result(s) lost, %d path(s) rerouted, %d base fallback(s), %d partition epoch(s)\n",
			rep.ResultsLost, rep.LinkRerouted, rep.LinkFallbacks, rep.PartitionEpochs)
	}
	if *adapt {
		fmt.Printf("adaptivity             %d window migration(s), %d aborted to base\n",
			rep.Migrations, rep.MigrationsAborted)
	}

	if *baseline {
		// Baselines measure traffic only: no per-run metrics or tracing.
		cfgBase := cfg
		cfgBase.Metrics, cfgBase.Trace = false, false
		var sum int64
		for i, job := range jobs {
			one, err := runAll(cfgBase, jobs[i:i+1], *epochs, nil)
			if err != nil {
				fatal(fmt.Errorf("baseline %s: %w", job.ID, err))
			}
			sum += one.AggregateBytes
		}
		fmt.Printf("\nunshared baseline      %8.1f KB   (each query on its own deployment)\n",
			float64(sum)/1024)
		fmt.Printf("sharing saved          %8.1f KB   (%.1f%%)\n",
			float64(sum-rep.AggregateBytes)/1024,
			100*(1-float64(rep.AggregateBytes)/float64(sum)))
	}
}

// buildEngine constructs an engine and submits jobs. When progress is
// non-nil, per-epoch admissions/failures/results/retirements stream to it
// (main passes os.Stderr so stdout stays a clean report).
func buildEngine(cfg aspen.EngineConfig, jobs []aspen.QueryJob, progress io.Writer) (*aspen.Engine, error) {
	e, err := aspen.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	for _, job := range jobs {
		if _, err := e.Submit(job); err != nil {
			return nil, err
		}
	}
	if progress != nil {
		e.OnEpoch(func(s aspen.EpochStats) {
			for _, id := range s.Admitted {
				fmt.Fprintf(progress, "epoch %4d  + %s admitted (%d live)\n", s.Epoch, id, s.Live)
			}
			for _, id := range s.Failed {
				fmt.Fprintf(progress, "epoch %4d  ! node %d failed\n", s.Epoch, id)
			}
			if s.Repaired > 0 || s.Fallbacks > 0 {
				fmt.Fprintf(progress, "epoch %4d    recovery: %d path(s) repaired, %d base fallback(s)\n",
					s.Epoch, s.Repaired, s.Fallbacks)
			}
			if s.Migrations > 0 || s.MigrationsAborted > 0 {
				fmt.Fprintf(progress, "epoch %4d    adaptivity: %d window migration(s), %d aborted to base\n",
					s.Epoch, s.Migrations, s.MigrationsAborted)
			}
			if s.LinkRerouted > 0 || s.LinkFallbacks > 0 {
				fmt.Fprintf(progress, "epoch %4d    link faults: %d path(s) rerouted, %d base fallback(s)\n",
					s.Epoch, s.LinkRerouted, s.LinkFallbacks)
			}
			if s.ResultsLost > 0 {
				fmt.Fprintf(progress, "epoch %4d    %d result(s) lost to link faults\n", s.Epoch, s.ResultsLost)
			}
			ids := make([]string, 0, len(s.NewResults))
			for id := range s.NewResults {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				fmt.Fprintf(progress, "epoch %4d    %s delivered %d result(s)\n", s.Epoch, id, s.NewResults[id])
			}
			for _, id := range s.Retired {
				fmt.Fprintf(progress, "epoch %4d  - %s retired\n", s.Epoch, id)
			}
		})
	}
	return e, nil
}

// runAll builds an engine, submits jobs, and runs it.
func runAll(cfg aspen.EngineConfig, jobs []aspen.QueryJob, epochs int, progress io.Writer) (*aspen.EngineReport, error) {
	e, err := buildEngine(cfg, jobs, progress)
	if err != nil {
		return nil, err
	}
	return e.Run(epochs)
}

// writeTraceFile exports the engine's epoch trace: Chrome trace_event JSON
// by default, JSONL when the path ends in .jsonl.
func writeTraceFile(e *aspen.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = e.WriteTraceJSONL(f)
	} else {
		err = e.WriteTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// splitBlocks cuts src at blank separator lines (lines empty after
// trimming, so a stray space or tab on a "blank" line still separates).
func splitBlocks(src string) []string {
	var blocks []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, strings.Join(cur, "\n"))
			cur = cur[:0]
		}
	}
	for _, line := range strings.Split(strings.ReplaceAll(src, "\r\n", "\n"), "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return blocks
}

// churnSpec collects the deployment-level churn directives of a workload
// file: explicit fail/revive events plus seeded random-churn requests,
// which need the run's node count and horizon to materialize.
type churnSpec struct {
	events []aspen.ChurnEvent
	seeded []seededChurn
}

type seededChurn struct {
	rate float64
	seed uint64
}

// schedule materializes the full churn schedule for a deployment of
// `nodes` nodes run for `epochs` epochs.
func (c churnSpec) schedule(nodes, epochs int) []aspen.ChurnEvent {
	out := append([]aspen.ChurnEvent(nil), c.events...)
	for _, s := range c.seeded {
		out = append(out, aspen.SeededChurn(s.seed, nodes, epochs, s.rate, 0)...)
	}
	return out
}

// faultSpec collects the deployment-level fault directives of a workload
// file: the link-fault plan plus a retry-bound override.
type faultSpec struct {
	cfg aspen.FaultConfig
	// maxRetries mirrors the max-retries directive (0 = unset).
	maxRetries int
	// set reports whether any fault-plan directive appeared.
	set bool
}

// parseWorkload splits src into blank-line-separated blocks and parses
// each into a QueryJob, collecting deployment-level churn and fault
// directives (which may form blocks of their own) into the returned specs.
func parseWorkload(src string) ([]aspen.QueryJob, churnSpec, faultSpec, error) {
	var jobs []aspen.QueryJob
	var churn churnSpec
	var fault faultSpec
	for bi, block := range splitBlocks(src) {
		var job aspen.QueryJob
		var sqlLines []string
		deployDirectives := 0
		for _, line := range strings.Split(block, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "#") {
				continue
			}
			if strings.HasPrefix(trimmed, "--") {
				n, err := applyDirective(&job, &churn, &fault, strings.TrimSpace(strings.TrimPrefix(trimmed, "--")))
				if err != nil {
					return nil, churnSpec{}, faultSpec{}, fmt.Errorf("block %d: %w", bi+1, err)
				}
				deployDirectives += n
				continue
			}
			if trimmed != "" {
				sqlLines = append(sqlLines, trimmed)
			}
		}
		sql := strings.TrimSuffix(strings.Join(sqlLines, "\n"), ";")
		if sql != "" && job.Query != "" {
			return nil, churnSpec{}, faultSpec{}, fmt.Errorf("block %d: has both SQL text and a 'query:' directive", bi+1)
		}
		job.SQL = sql
		if job.SQL == "" && job.Query == "" {
			if deployDirectives > 0 && job == (aspen.QueryJob{}) {
				continue // a pure churn/fault block describes the deployment, not a query
			}
			return nil, churnSpec{}, faultSpec{}, fmt.Errorf("block %d: no SQL statement and no 'query:' directive", bi+1)
		}
		jobs = append(jobs, job)
	}
	return jobs, churn, fault, nil
}

// parsePartition parses a partition directive value: "<from>..<until>"
// or "bisect @ <from>..<until>" splits the field at the median x;
// "region <k> @ <from>..<until>" severs region band k (0..3).
func parsePartition(value string) (aspen.PartitionWindow, error) {
	p := aspen.PartitionWindow{Region: -1}
	window := value
	if kindStr, winStr, hasKind := strings.Cut(value, "@"); hasKind {
		window = strings.TrimSpace(winStr)
		kind := strings.Fields(strings.ToLower(strings.TrimSpace(kindStr)))
		switch {
		case len(kind) == 1 && kind[0] == "bisect":
		case len(kind) == 2 && kind[0] == "region":
			n, err := strconv.Atoi(kind[1])
			if err != nil || n < 0 || n > 3 {
				return p, fmt.Errorf("partition region: want 0..3, got %q", kind[1])
			}
			p.Region = n
		default:
			return p, fmt.Errorf("partition: want \"bisect\" or \"region <0..3>\", got %q", strings.TrimSpace(kindStr))
		}
	}
	fromStr, untilStr, ok := strings.Cut(window, "..")
	if !ok {
		return p, fmt.Errorf("partition window: want \"<from>..<until>\", got %q", window)
	}
	var err error
	if p.From, err = strconv.Atoi(strings.TrimSpace(fromStr)); err != nil {
		return p, fmt.Errorf("partition from: %w", err)
	}
	if p.Until, err = strconv.Atoi(strings.TrimSpace(untilStr)); err != nil {
		return p, fmt.Errorf("partition until: %w", err)
	}
	return p, nil
}

// parseRetryPolicy parses the -retry-policy flag: comma-separated
// key=value pairs over max, control, data, result, migration, backoff.
func parseRetryPolicy(s string) (*aspen.RetryPolicy, error) {
	p := aspen.NewRetryPolicy(3)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("retry-policy: want key=value, got %q", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("retry-policy %s: %w", strings.TrimSpace(k), err)
		}
		switch strings.TrimSpace(strings.ToLower(k)) {
		case "max":
			p.MaxRetries = n
		case "control":
			p.Control = n
		case "data":
			p.Data = n
		case "result":
			p.Result = n
		case "migration":
			p.Migration = n
		case "backoff":
			p.BackoffBytes = n
		default:
			return nil, fmt.Errorf("retry-policy: unknown key %q (want max, control, data, result, migration, backoff)", strings.TrimSpace(k))
		}
	}
	return &p, nil
}

// parseNodeAtEpoch parses "<node> @ <epoch>" (spaces optional).
func parseNodeAtEpoch(value string) (node, epoch int, err error) {
	left, right, ok := strings.Cut(value, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want \"<node> @ <epoch>\", got %q", value)
	}
	if node, err = strconv.Atoi(strings.TrimSpace(left)); err != nil {
		return 0, 0, fmt.Errorf("node: %w", err)
	}
	if epoch, err = strconv.Atoi(strings.TrimSpace(right)); err != nil {
		return 0, 0, fmt.Errorf("epoch: %w", err)
	}
	return node, epoch, nil
}

// applyDirective parses one "key: value" directive into job, churn or
// fault, reporting how many deployment-level directives it consumed (0 or
// 1).
func applyDirective(job *aspen.QueryJob, churn *churnSpec, fault *faultSpec, d string) (int, error) {
	key, value, ok := strings.Cut(d, ":")
	if !ok {
		// A bare comment, e.g. "-- the fast half"; ignore.
		return 0, nil
	}
	key = strings.TrimSpace(strings.ToLower(key))
	value = strings.TrimSpace(value)
	switch key {
	case "loss":
		// "<link-loss> [@ <seed>]": heterogeneous per-link loss layer.
		rateStr, seedStr, hasSeed := strings.Cut(value, "@")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return 0, fmt.Errorf("loss rate: %w", err)
		}
		fault.cfg.LinkLoss = rate
		if hasSeed {
			if fault.cfg.Seed, err = strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64); err != nil {
				return 0, fmt.Errorf("loss seed: %w", err)
			}
		}
		fault.set = true
		return 1, nil
	case "link-fail":
		// "<rate> [@ <revive-after>]": transient per-epoch link failures.
		rateStr, revStr, hasRev := strings.Cut(value, "@")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return 0, fmt.Errorf("link-fail rate: %w", err)
		}
		fault.cfg.LinkFailRate = rate
		if hasRev {
			if fault.cfg.LinkReviveAfter, err = strconv.Atoi(strings.TrimSpace(revStr)); err != nil {
				return 0, fmt.Errorf("link-fail revive: %w", err)
			}
		}
		fault.set = true
		return 1, nil
	case "partition":
		p, err := parsePartition(value)
		if err != nil {
			return 0, err
		}
		fault.cfg.Partitions = append(fault.cfg.Partitions, p)
		fault.set = true
		return 1, nil
	case "max-retries":
		n, err := strconv.Atoi(value)
		if err != nil {
			return 0, fmt.Errorf("max-retries: %w", err)
		}
		fault.maxRetries = n
		return 1, nil
	case "fail", "revive":
		node, epoch, err := parseNodeAtEpoch(value)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", key, err)
		}
		churn.events = append(churn.events, aspen.ChurnEvent{
			Epoch: epoch, Node: node, Revive: key == "revive",
		})
		return 1, nil
	case "churn":
		// "<rate> @ <seed>"; seed optional (default 1).
		rateStr, seedStr, hasSeed := strings.Cut(value, "@")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return 0, fmt.Errorf("churn rate: %w", err)
		}
		sc := seededChurn{rate: rate, seed: 1}
		if hasSeed {
			if sc.seed, err = strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64); err != nil {
				return 0, fmt.Errorf("churn seed: %w", err)
			}
		}
		churn.seeded = append(churn.seeded, sc)
		return 1, nil
	}
	return 0, applyQueryDirective(job, key, value)
}

// applyQueryDirective handles the per-query directives.
func applyQueryDirective(job *aspen.QueryJob, key, value string) error {
	switch key {
	case "id":
		job.ID = value
	case "alg", "algorithm":
		job.Algorithm = aspen.Algorithm(value)
	case "query":
		job.Query = aspen.Query(value)
	case "cycles":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("cycles: %w", err)
		}
		job.Cycles = n
	case "admit":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("admit: %w", err)
		}
		job.AdmitAt = n
	case "pairs":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("pairs: %w", err)
		}
		job.Pairs = n
	case "sigma-s", "sigma-t", "sigma-st":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		if job.Rates == (aspen.Rates{}) {
			job.Rates = aspen.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
		}
		switch key {
		case "sigma-s":
			job.Rates.SigmaS = f
		case "sigma-t":
			job.Rates.SigmaT = f
		default:
			job.Rates.SigmaST = f
		}
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Command aspen-topo inspects the routing substrate's path quality — the
// Appendix C properties behind Figures 16-18: average path length and
// maximum node load per scheme (1-3 trees, GPSR, DHT, full graph) on any
// of the evaluated deployments.
//
// Usage:
//
//	aspen-topo -topo moderate -nodes 100
//	aspen-topo -topo grid -mesh
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dht"
	"repro/internal/ght"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	var (
		topoName = flag.String("topo", "moderate", "topology: sparse|moderate|medium|dense|grid|intel")
		nodes    = flag.Int("nodes", 100, "node count")
		mesh     = flag.Bool("mesh", false, "mesh mode: DHT instead of GPSR")
		seed     = flag.Uint64("seed", 1, "layout seed")
	)
	flag.Parse()

	kind, ok := map[string]topology.Kind{
		"sparse": topology.SparseRandom, "moderate": topology.ModerateRandom,
		"medium": topology.MediumRandom, "dense": topology.DenseRandom,
		"grid": topology.Grid, "intel": topology.Intel,
	}[*topoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	topo := topology.Generate(kind, *nodes, *seed)
	fmt.Printf("topology %s: %d nodes, avg degree %.1f, radio %.1fm\n\n",
		kind, topo.N(), topo.AvgDegree(), topo.RadioRange())
	fmt.Printf("%-12s %-18s %-18s\n", "scheme", "avg path (hops)", "max load (paths)")

	type pathFn func(a, b topology.NodeID) routing.Path
	schemes := []struct {
		name string
		f    pathFn
	}{}
	for trees := 1; trees <= 3; trees++ {
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: trees}, nil)
		name := fmt.Sprintf("%d tree", trees)
		if trees > 1 {
			name += "s"
		}
		schemes = append(schemes, struct {
			name string
			f    pathFn
		}{name, sub.BestTreePath})
	}
	if *mesh {
		ring := dht.NewRing(topo)
		schemes = append(schemes, struct {
			name string
			f    pathFn
		}{"DHT", func(a, b topology.NodeID) routing.Path {
			home := ring.HomeNode(int32(b))
			return ring.Route(a, home).Concat(ring.Route(home, b))
		}})
	} else {
		r := ght.NewRouter(topo)
		schemes = append(schemes, struct {
			name string
			f    pathFn
		}{"GPSR", r.Route})
	}
	// Full-graph shortest paths: one memoized BFS parent vector per
	// destination, so the all-pairs loop below runs n traversals instead
	// of one per ordered pair.
	parents := topology.NewParentCache(topo)
	schemes = append(schemes, struct {
		name string
		f    pathFn
	}{"full graph", func(a, b topology.NodeID) routing.Path {
		parent := parents.Parents(b)
		p := routing.Path{a}
		for at := a; at != b; {
			at = parent[at]
			p = append(p, at)
		}
		return p
	}})

	for _, s := range schemes {
		load := make([]int, topo.N())
		total, count := 0, 0
		for a := 0; a < topo.N(); a++ {
			for b := 0; b < topo.N(); b++ {
				if a == b {
					continue
				}
				p := s.f(topology.NodeID(a), topology.NodeID(b))
				total += p.Hops()
				count++
				for _, n := range p {
					load[n]++
				}
			}
		}
		maxL := 0
		for _, l := range load {
			if l > maxL {
				maxL = l
			}
		}
		fmt.Printf("%-12s %-18.2f %-18d\n", s.name, float64(total)/float64(count), maxL)
	}
}

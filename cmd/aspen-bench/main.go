// Command aspen-bench runs the repo's named performance scenarios from
// fixed seeds, prints a table of wall time, allocator pressure and
// simulated throughput, and writes BENCH_engine.json in a stable schema
// so successive PRs record a performance trajectory. With -compare it
// diffs the fresh run against a previously committed report and flags
// both speed regressions and determinism drift (checksum changes).
//
// Usage:
//
//	aspen-bench                          # full run, writes BENCH_engine.json
//	aspen-bench -quick                   # one iteration per scenario (CI)
//	aspen-bench -run engine-16,transfer  # a subset
//	aspen-bench -compare BENCH_engine.json   # diff against the last report
//	aspen-bench -compare BENCH_engine.json -fail-on-drift  # CI determinism gate
//	aspen-bench -workers 4               # step engine scenarios on 4 workers
//	aspen-bench -max-heap-bytes 400000000    # gate heap-measuring scenarios
//	aspen-bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	aspen-bench -quick -trace trace.json # Chrome trace of the measured run
//	aspen-bench -list                    # scenario names and descriptions
//
// Reports record runtime.NumCPU() and a per-scenario workers field;
// -compare warns when either differs between the two reports (timing
// ratios then reflect hardware or parallelism, not the code) instead of
// presenting the delta as a regression. Determinism checksums are
// worker-invariant, so the drift gate stays exact across any mismatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// stopCPUProfile finalizes a -cpuprofile in flight; a no-op until main
// starts one. Every os.Exit path must call it, since exits skip defers.
var stopCPUProfile = func() {}

func main() {
	var (
		out         = flag.String("out", "BENCH_engine.json", "report path ('' disables writing)")
		quick       = flag.Bool("quick", false, "one iteration per scenario (CI smoke mode)")
		run         = flag.String("run", "", "comma-separated scenario names (default: all)")
		compare     = flag.String("compare", "", "previous report to diff against (after measuring)")
		failOnDrift = flag.Bool("fail-on-drift", false, "exit non-zero when -compare detects a determinism-checksum change (CI gate)")
		workers     = flag.Int("workers", 0, "engine worker override for the sequential engine scenarios (0 = committed defaults; pinned -wN scenarios keep their counts)")
		maxHeap     = flag.Int64("max-heap-bytes", 0, "fail when a heap-measuring scenario exceeds its committed ceiling or this global cap (0 = report heap without gating)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the measured run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile taken after the measured run to this file")
		tracePath   = flag.String("trace", "", "write a chrome://tracing file of the measured run to this path (.jsonl suffix selects JSONL; best with -quick)")
		list        = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range bench.Scenarios() {
			fmt.Printf("%-14s %s\n", s.Name, s.Desc)
		}
		return
	}

	var names []string
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Workers = *workers
	if *tracePath != "" {
		opts.Trace = obs.NewTracer()
	}

	var prev *bench.Report
	if *compare != "" {
		var err error
		if prev, err = bench.ReadFile(*compare); err != nil {
			fatal(err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Exit paths (fatal, the -fail-on-drift os.Exit) skip deferred
		// calls, so they finalize the profile through this hook — the CI
		// artifact must parse exactly when the run fails.
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopCPUProfile = func() {}
		}
		defer func() { stopCPUProfile() }()
	}

	rep, err := bench.Run(names, opts)
	if err != nil {
		fatal(err)
	}

	// The trace is written before the -compare gate so a drift failure
	// still leaves the artifact on disk for inspection (CI uploads it).
	if *tracePath != "" {
		if err := writeTrace(opts.Trace, *tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	fmt.Printf("aspen-bench — %s %s/%s, %d CPUs, quick=%v\n\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.NumCPU, rep.Quick)
	fmt.Printf("%-14s %3s %6s %12s %12s %14s %16s\n",
		"scenario", "w", "iters", "ms/op", "allocs/op", "traffic KB/op", "sim MB/wall-sec")
	for _, r := range rep.Results {
		fmt.Printf("%-14s %3d %6d %12.2f %12d %14.1f %16.1f\n",
			r.Name, r.Workers, r.Iterations, float64(r.NsPerOp)/1e6, r.AllocsPerOp,
			float64(r.TrafficBytesPerOp)/1024, r.SimBytesPerWallSecond/(1024*1024))
		if r.HeapBytes > 0 {
			fmt.Printf("%-14s     live heap %.1f MB (ceiling %.1f MB)\n",
				"", float64(r.HeapBytes)/(1024*1024), float64(r.HeapCeilingBytes)/(1024*1024))
		}
	}

	// The heap gate runs before -compare so an over-ceiling run fails even
	// when its checksums are clean: memory scale is part of the contract.
	if *maxHeap > 0 {
		over := false
		for _, r := range rep.Results {
			if r.HeapBytes == 0 {
				continue
			}
			if r.HeapCeilingBytes > 0 && r.HeapBytes > r.HeapCeilingBytes {
				fmt.Fprintf(os.Stderr, "heap gate: %s live heap %d bytes exceeds its committed ceiling %d\n",
					r.Name, r.HeapBytes, r.HeapCeilingBytes)
				over = true
			}
			if r.HeapBytes > *maxHeap {
				fmt.Fprintf(os.Stderr, "heap gate: %s live heap %d bytes exceeds -max-heap-bytes %d\n",
					r.Name, r.HeapBytes, *maxHeap)
				over = true
			}
		}
		if over {
			if *out != "" {
				if err := rep.WriteFile(*out); err != nil {
					fatal(err)
				}
			}
			stopCPUProfile()
			os.Exit(1)
		}
	}

	if prev != nil {
		deltas, err := bench.Compare(prev, rep)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nvs %s:\n", *compare)
		if msg := bench.EnvMismatch(prev, rep); msg != "" {
			fmt.Printf("warning: %s\n", msg)
		}
		drift := false
		for _, d := range deltas {
			switch {
			case d.Old == nil:
				fmt.Printf("%-14s scenario missing from baseline %s (new since that report; re-record to compare)\n", d.Name, *compare)
			case d.New == nil:
				fmt.Printf("%-14s removed\n", d.Name)
				// A baseline scenario vanishing is determinism drift too —
				// but only on a full run; with -run a subset, unselected
				// scenarios are expected to be absent.
				if *run == "" {
					drift = true
				}
			default:
				note := ""
				if d.WorkersMismatch {
					note = fmt.Sprintf("  workers %d vs %d (timing not comparable)", d.Old.Workers, d.New.Workers)
				}
				if d.ChecksumDrift {
					note += "  CHECKSUM DRIFT (simulated outcome changed)"
					drift = true
				}
				fmt.Printf("%-14s time x%.2f   allocs x%.2f%s\n", d.Name, d.NsRatio, d.AllocsRatio, note)
			}
		}
		if drift {
			fmt.Fprintln(os.Stderr, "warning: checksum drift detected — the change is semantic, not just performance")
			if *failOnDrift {
				// Write the report first so the drifted artifact can be
				// inspected, then fail the run (CI gates on this).
				if *out != "" {
					if err := rep.WriteFile(*out); err != nil {
						fatal(err)
					}
				}
				stopCPUProfile()
				os.Exit(1)
			}
		}
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

// writeTrace serializes the recorded spans to path — Chrome trace_event
// JSON by default, one-event-per-line JSONL when the path ends in .jsonl.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	stopCPUProfile()
	os.Exit(1)
}

// Command aspen-sim runs a single join query simulation and prints the
// traffic/result report — the quickest way to poke at the system.
//
// Usage:
//
//	aspen-sim -query Q2 -alg Innet-cmg -cycles 200
//	aspen-sim -query Q3 -topo intel -alg "Innet learn"
//	aspen-sim -query Q0 -pairs 1 -alg Innet -fail
package main

import (
	"flag"
	"fmt"
	"os"

	aspen "repro"
)

func main() {
	var (
		topo   = flag.String("topo", "moderate", "topology: sparse|moderate|medium|dense|grid|intel")
		nodes  = flag.Int("nodes", 100, "node count (ignored for intel)")
		query  = flag.String("query", "Q1", "query: Q0|Q1|Q2|Q3")
		pairs  = flag.Int("pairs", 10, "Q0 random pair count")
		alg    = flag.String("alg", "Innet-cmg", "algorithm (see aspen.Algorithms)")
		cycles = flag.Int("cycles", 100, "sampling cycles")
		seed   = flag.Uint64("seed", 1, "run seed")
		sS     = flag.Float64("sigma-s", 0.5, "sigma_s producer rate")
		sT     = flag.Float64("sigma-t", 0.5, "sigma_t producer rate")
		sST    = flag.Float64("sigma-st", 0.1, "sigma_st join selectivity")
		fail   = flag.Bool("fail", false, "fail the first pair's join node mid-run")
	)
	flag.Parse()

	rep, err := aspen.Run(aspen.Config{
		Topology:     aspen.TopologyKind(*topo),
		Nodes:        *nodes,
		Query:        aspen.Query(*query),
		Pairs:        *pairs,
		Algorithm:    aspen.Algorithm(*alg),
		Cycles:       *cycles,
		Seed:         *seed,
		Rates:        aspen.Rates{SigmaS: *sS, SigmaT: *sT, SigmaST: *sST},
		FailJoinNode: *fail,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm      %s\n", rep.Algorithm)
	fmt.Printf("total traffic  %.1f KB (%d messages, init %.1f KB)\n",
		float64(rep.TotalBytes)/1024, rep.TotalMessages, float64(rep.InitBytes)/1024)
	fmt.Printf("base traffic   %.1f KB\n", float64(rep.BaseBytes)/1024)
	fmt.Printf("max node load  %.1f KB\n", float64(rep.MaxNodeBytes)/1024)
	fmt.Printf("results        %d (mean inter-result delay %.2f cycles)\n", rep.Results, rep.MeanDelay)
	fmt.Printf("pairs          %d in-network, %d at base, %d migrations\n",
		rep.InNetPairs, rep.AtBasePairs, rep.Migrations)
}

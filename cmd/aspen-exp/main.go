// Command aspen-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	aspen-exp -list
//	aspen-exp -run fig2            # full fidelity (9 runs, all stages)
//	aspen-exp -run fig13 -quick    # trimmed sweeps for a fast look
//	aspen-exp -all -quick          # every artifact, quick mode
//
// Output is an aligned text table per artifact; EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	aspen "repro"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment IDs and titles")
		run   = flag.String("run", "", "experiment ID to run (fig2..fig20, tab3, mobility, ablation)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "trimmed sweeps (3 runs, fewer stages/cycles)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range aspen.Experiments() {
			title, _ := aspen.ExperimentTitle(id)
			fmt.Printf("%-10s %s\n", id, title)
		}
	case *all:
		for _, id := range aspen.Experiments() {
			if err := runOne(id, *quick); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case *run != "":
		if err := runOne(*run, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, quick bool) error {
	start := time.Now()
	out, err := aspen.RunExperiment(id, quick)
	if err != nil {
		return err
	}
	fmt.Println(out)
	fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	return nil
}

package aspen

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocPresence walks every Go package in the repo — the facade,
// internal/, cmd/ and examples/ — and asserts each has a package-level doc
// comment of substance on at least one non-test file. This pins the godoc
// audit: a new package (or a stripped comment) fails the build rather than
// silently shipping undocumented.
func TestPackageDocPresence(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			if name == "testdata" {
				// Analyzer golden fixtures are not real packages; the go
				// tool ignores testdata and so does the doc audit.
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The walk is derived from the filesystem, so a package silently
	// dropped from the tree would pass vacuously; pin that the packages
	// this audit exists for are actually in the set.
	for _, must := range []string{"internal/obs", "internal/engine", "internal/bench", "internal/analysis", "cmd/aspen-vet"} {
		found := false
		for _, dir := range pkgDirs {
			if rel, _ := filepath.Rel(root, dir); rel == filepath.FromSlash(must) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("doc audit did not visit %s — package missing or walk broken", must)
		}
	}
	for _, dir := range pkgDirs {
		rel, _ := filepath.Rel(root, dir)
		if rel == "" {
			rel = "."
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: parse: %v", rel, err)
			continue
		}
		for name, pkg := range pkgs {
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil {
					doc = strings.TrimSpace(f.Doc.Text())
					break
				}
			}
			switch {
			case doc == "":
				t.Errorf("package %s (%s): no package-level doc comment on any file", name, rel)
			case len(doc) < 40:
				t.Errorf("package %s (%s): package doc comment too thin (%d chars): %q", name, rel, len(doc), doc)
			}
		}
	}
}

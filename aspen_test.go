package aspen

import (
	"reflect"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	rep, err := Run(Config{Cycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != InnetCMG {
		t.Fatalf("default algorithm = %q", rep.Algorithm)
	}
	if rep.TotalBytes == 0 || rep.Results == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, alg := range Algorithms() {
		rep, err := Run(Config{Algorithm: alg, Query: Query1, Cycles: 20})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.TotalBytes == 0 {
			t.Fatalf("%s: no traffic", alg)
		}
	}
}

func TestRunEveryQuery(t *testing.T) {
	for _, q := range []Query{Query0, Query1, Query2} {
		rep, err := Run(Config{Query: q, Cycles: 20, Algorithm: Innet})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if rep.Results == 0 {
			t.Fatalf("%s: no results", q)
		}
	}
	// Query 3 needs the Intel topology to have adjacent pairs.
	rep, err := Run(Config{Query: Query3, Topology: Intel, Cycles: 20, Algorithm: Innet})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes == 0 {
		t.Fatal("Q3: no traffic")
	}
}

func TestRunEveryTopology(t *testing.T) {
	for _, k := range []TopologyKind{SparseRandom, ModerateRandom, MediumRandom, DenseRandom, Grid, Intel} {
		if _, err := Run(Config{Topology: k, Query: Query0, Pairs: 5, Cycles: 10, Algorithm: Innet}); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestRunReproducible(t *testing.T) {
	a, err := Run(Config{Seed: 42, Cycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 42, Cycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if _, err := Run(Config{Topology: "blimp"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := Run(Config{Query: "Q9"}); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := Run(Config{Algorithm: "bogosort"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestLearningRun(t *testing.T) {
	wrong := Rates{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2}
	rep, err := Run(Config{
		Query:          Query0,
		Rates:          Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2},
		OptimizerRates: &wrong,
		Algorithm:      InnetLearn,
		Cycles:         150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations == 0 {
		t.Fatal("learning run never migrated despite wrong estimates")
	}
}

func TestFailureRun(t *testing.T) {
	rep, err := Run(Config{
		Query:        Query0,
		Pairs:        1,
		Rates:        Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2},
		Algorithm:    Innet,
		Cycles:       60,
		FailJoinNode: true,
	})
	if err != nil {
		// The single pair may legitimately join at the base on this
		// seed, making failure injection impossible.
		t.Skip(err)
	}
	if rep.Results == 0 {
		t.Fatal("no results despite failover")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	title, err := ExperimentTitle("fig13")
	if err != nil || !strings.Contains(title, "Intel") {
		t.Fatalf("fig13 title = %q, err %v", title, err)
	}
	if _, err := ExperimentTitle("nope"); err == nil {
		t.Fatal("unknown experiment title accepted")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	out, err := RunExperiment("mobility", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "update traffic") {
		t.Fatalf("experiment output malformed:\n%s", out)
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// engineJobs is the facade test workload: two SQL queries and two Table 2
// queries over one deployment.
func engineJobs() []QueryJob {
	return []QueryJob{
		{ID: "sql", SQL: `SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u`},
		{ID: "perim", Query: Query2, Algorithm: InnetCMPG},
		{ID: "pairs", Query: Query0, Pairs: 5, AdmitAt: 5},
		{ID: "base", Query: Query1, Algorithm: Base, Cycles: 20, AdmitAt: 10},
	}
}

func TestEngineFacade(t *testing.T) {
	e, err := NewEngine(EngineConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range engineJobs() {
		if _, err := e.Submit(job); err != nil {
			t.Fatalf("%s: %v", job.ID, err)
		}
	}
	var epochs int
	e.OnEpoch(func(s EpochStats) { epochs++ })
	rep, err := e.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 40 || rep.Epochs != 40 {
		t.Fatalf("ran %d/%d epochs", epochs, rep.Epochs)
	}
	if rep.SharedBytes <= 0 {
		t.Fatal("no shared infrastructure traffic")
	}
	var sum int64
	for _, q := range rep.Queries {
		if q.State != "retired" {
			t.Fatalf("query %s state %s", q.ID, q.State)
		}
		if q.TotalBytes <= 0 || q.BytesPerNode <= 0 {
			t.Fatalf("query %s reports no traffic", q.ID)
		}
		sum += q.TotalBytes
	}
	if rep.AggregateBytes != rep.SharedBytes+sum {
		t.Fatalf("aggregate %d != %d + %d", rep.AggregateBytes, rep.SharedBytes, sum)
	}
	if e.Report() == nil {
		t.Fatal("Report() nil after Run")
	}
}

// TestEngineObservabilityFacade: EngineConfig.Metrics/Trace expose the
// observability layer without perturbing the run — the metered report is
// byte-identical to TestEngineFacade's unmetered one, the snapshot agrees
// with the report, and both trace export forms produce valid output.
func TestEngineObservabilityFacade(t *testing.T) {
	run := func(cfg EngineConfig) (*Engine, *EngineReport) {
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, job := range engineJobs() {
			if _, err := e.Submit(job); err != nil {
				t.Fatalf("%s: %v", job.ID, err)
			}
		}
		rep, err := e.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return e, rep
	}
	_, bare := run(EngineConfig{Seed: 2})
	e, rep := run(EngineConfig{Seed: 2, Metrics: true, Trace: true})
	if !reflect.DeepEqual(bare, rep) {
		t.Fatal("metered run's report differs from unmetered")
	}
	snap := e.Snapshot()
	if v, ok := snap.Value("engine.epochs"); !ok || v != int64(rep.Epochs) {
		t.Fatalf("engine.epochs = %d,%v want %d", v, ok, rep.Epochs)
	}
	if v, _ := snap.Value("sim.shared.bytes"); v != rep.SharedBytes {
		t.Fatalf("sim.shared.bytes = %d, want %d", v, rep.SharedBytes)
	}
	if len(snap.Histograms) == 0 {
		t.Fatal("snapshot has no histograms")
	}
	var text strings.Builder
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "counter engine.epochs") {
		t.Fatalf("text dump malformed:\n%s", text.String())
	}
	var chrome strings.Builder
	if err := e.WriteTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Fatal("Chrome trace missing envelope")
	}
	var jsonl strings.Builder
	if err := e.WriteTraceJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"ph":"X"`) {
		t.Fatal("JSONL trace has no spans")
	}

	// Disabled engines answer the same calls with empty output.
	off, _ := run(EngineConfig{Seed: 2})
	if s := off.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("unmetered engine returned metrics")
	}
	var offTrace strings.Builder
	if err := off.WriteTrace(&offTrace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(offTrace.String(), "[]") {
		t.Fatal("untraced engine's trace not empty")
	}
}

// TestEngineWorkersFacade: the facade-level worker knob preserves the
// byte-identical guarantee — the same workload at Workers 1, 4 and -1
// (all cores) yields identical reports.
func TestEngineWorkersFacade(t *testing.T) {
	run := func(workers int) *EngineReport {
		e, err := NewEngine(EngineConfig{Seed: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, job := range engineJobs() {
			if _, err := e.Submit(job); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := e.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1)
	for _, w := range []int{4, -1} {
		if rep := run(w); !reflect.DeepEqual(base, rep) {
			t.Fatalf("Workers=%d report differs from sequential:\n%+v\n%+v", w, base, rep)
		}
	}
}

// TestEngineSharingBeatsSeparateRuns is the tentpole acceptance property
// at the facade level: one deployment serving N queries transmits less
// than N single-query deployments.
func TestEngineSharingBeatsSeparateRuns(t *testing.T) {
	jobs := engineJobs()
	shared, err := NewEngine(EngineConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		if _, err := shared.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := shared.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	var separate int64
	for _, job := range jobs {
		solo, err := NewEngine(EngineConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := solo.Submit(job); err != nil {
			t.Fatal(err)
		}
		r, err := solo.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		separate += r.AggregateBytes
	}
	if rep.AggregateBytes >= separate {
		t.Fatalf("sharing did not win: together %d >= separate %d", rep.AggregateBytes, separate)
	}
}

func TestEngineRejects(t *testing.T) {
	e, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err == nil {
		t.Fatal("empty engine ran")
	}
	if _, err := e.Submit(QueryJob{}); err == nil {
		t.Fatal("job with neither SQL nor Query accepted")
	}
	if _, err := e.Submit(QueryJob{SQL: "x", Query: Query1}); err == nil {
		t.Fatal("job with both SQL and Query accepted")
	}
	if _, err := e.Submit(QueryJob{Query: "Q9"}); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := e.Submit(QueryJob{Query: Query1, Algorithm: "bogosort"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewEngine(EngineConfig{Topology: "blimp"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestMergeFlag(t *testing.T) {
	plain, err := Run(Config{Algorithm: Base, Query: Query1, Cycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(Config{Algorithm: Base, Query: Query1, Cycles: 30, Merge: true})
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalBytes >= plain.TotalBytes {
		t.Fatalf("merge did not reduce traffic: %d vs %d", merged.TotalBytes, plain.TotalBytes)
	}
}

// TestEngineChurnFacade drives the churn schedule through the public API:
// the failure counters surface in the report, the per-epoch stream sees
// the failure, and a base-station event is rejected up front.
func TestEngineChurnFacade(t *testing.T) {
	e, err := NewEngine(EngineConfig{Seed: 1, Churn: []ChurnEvent{{Epoch: 2, Node: 21}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryJob{Query: Query2}); err != nil {
		t.Fatal(err)
	}
	var failed []int
	e.OnEpoch(func(s EpochStats) { failed = append(failed, s.Failed...) })
	rep, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedNodes != 1 || len(failed) != 1 || failed[0] != 21 {
		t.Fatalf("failure not surfaced: report=%d stream=%v", rep.FailedNodes, failed)
	}
	if rep.PathsRepaired+rep.BaseFallbacks+rep.TreesRebuilt == 0 {
		t.Fatal("recovery counters all zero after a churn failure")
	}
	if rep.Results == 0 {
		t.Fatal("no results delivered under churn")
	}
	if _, err := NewEngine(EngineConfig{Churn: []ChurnEvent{{Epoch: 0, Node: 0}}}); err == nil {
		t.Fatal("base-station churn accepted")
	}
	if _, err := NewEngine(EngineConfig{Nodes: 50, Churn: []ChurnEvent{{Epoch: 0, Node: 50}}}); err == nil {
		t.Fatal("out-of-range churn node accepted")
	}
	if len(SeededChurn(3, 100, 30, 0.02, 5)) == 0 {
		t.Fatal("facade SeededChurn produced no events")
	}
}

// Package geom provides the small amount of 2-D geometry the routing
// substrates and region queries need: points, Euclidean distance, and
// axis-aligned rectangles (the building block of the R-tree summaries and
// of GPSR's planar forwarding decisions).
//
// The paper deploys sensors on a 256 m x 256 m grid (Table 1, attribute
// pos); all coordinates here are float64 metres in that frame.
package geom

import "math"

// Point is a position in the deployment plane, in metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance, avoiding the sqrt when only
// comparisons are needed (GPSR greedy forwarding compares millions of
// candidate distances).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a valid Rect has Min.X <= Max.X and Min.Y <= Max.Y.
// The zero Rect is the empty rectangle at the origin.
type Rect struct {
	Min, Max Point
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect { return Rect{Min: p, Max: p} }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Area returns the area of r in square metres.
func (r Rect) Area() float64 {
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Enlargement returns how much r's area grows if extended to cover s.
// R-tree insertion picks the child with minimum enlargement.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Expand returns r grown by d on every side (used for "within distance d"
// region predicates such as Query 3's Dst < 5m).
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// zero when p is inside r. Used to prune R-tree traversal for region joins.
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(b); d2 != 25 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 5}}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},
		{Point{10, 5}, true},
		{Point{11, 2}, false},
		{Point{5, -1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{5, 5}}
	b := Rect{Min: Point{4, 4}, Max: Point{9, 9}}
	c := Rect{Min: Point{6, 6}, Max: Point{9, 9}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects reported intersecting")
	}
	// Touching at a corner counts as intersecting.
	d := Rect{Min: Point{5, 5}, Max: Point{7, 7}}
	if !a.Intersects(d) {
		t.Fatal("corner-touching rects reported disjoint")
	}
}

func TestUnionCoversBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := Rect{Min: Point{math.Min(ax, bx), math.Min(ay, by)}, Max: Point{math.Max(ax, bx), math.Max(ay, by)}}
		s := Rect{Min: Point{math.Min(cx, dx), math.Min(cy, dy)}, Max: Point{math.Max(cx, dx), math.Max(cy, dy)}}
		u := r.Union(s)
		return u.Contains(r.Min) && u.Contains(r.Max) && u.Contains(s.Min) && u.Contains(s.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnlargement(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	s := Rect{Min: Point{1, 1}, Max: Point{2, 2}}
	if e := r.Enlargement(s); e != 0 {
		t.Fatalf("contained rect enlarged by %v, want 0", e)
	}
	u := Rect{Min: Point{0, 0}, Max: Point{4, 2}}
	if e := r.Enlargement(u); e != 4 {
		t.Fatalf("Enlargement = %v, want 4", e)
	}
}

func TestExpand(t *testing.T) {
	r := RectFromPoint(Point{5, 5}).Expand(2)
	if !r.Contains(Point{3, 3}) || !r.Contains(Point{7, 7}) {
		t.Fatal("Expand did not grow rect symmetrically")
	}
	if r.Contains(Point{7.1, 5}) {
		t.Fatal("Expand grew rect too much")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	if d := r.MinDist(Point{5, 5}); d != 0 {
		t.Fatalf("MinDist inside = %v, want 0", d)
	}
	if d := r.MinDist(Point{13, 14}); d != 5 {
		t.Fatalf("MinDist corner = %v, want 5", d)
	}
	if d := r.MinDist(Point{-3, 5}); d != 3 {
		t.Fatalf("MinDist edge = %v, want 3", d)
	}
}

func TestMinDistLowerBoundsPointDist(t *testing.T) {
	// MinDist(p) must never exceed the distance from p to any point in r —
	// the property R-tree pruning relies on.
	f := func(px, py, qx, qy float64) bool {
		for _, v := range []float64{px, py, qx, qy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := RectFromPoint(Point{qx, qy}).Expand(1)
		p := Point{px, py}
		return r.MinDist(p) <= p.Dist(Point{qx, qy})+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

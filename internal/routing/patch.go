package routing

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Incremental tree maintenance (the deployment-scale complement to section
// 7's path repair): when nodes fail, only the orphaned region — the union of
// the failed nodes' old subtrees — can change. Everything outside keeps its
// parent, depth, root path and deepest-first position byte-for-byte, which
// is provable from the BFS tie-breaking discipline: BFSLive dequeues each
// depth level in lexicographic root-path order, so a node's parent is its
// lexicographically-least alive neighbour one level up; under failures every
// candidate's key only worsens, so the argmin never switches toward a node
// whose subtree did not lose its anchor. PatchTreeLive exploits this to
// re-derive just the orphaned region with a level-synchronous local frontier
// and splice the result into the tree in place, falling back to a full
// RebuildTreeLive when the region exceeds its budget or an assumption (live
// root, no revivals) fails.

// Per-node planning states during a patch.
const (
	psOut     uint8 = iota // outside the orphaned region
	psWait                 // alive region node, not yet settled
	psSettled              // alive region node with final new parent + depth
	psDead                 // dead region node, depth not yet finalized
	psCut                  // region node left unreachable; depth finalized along its stale chain
)

// PatchScratch holds the reusable planning state for PatchTreeLive so
// repeated repairs allocate nothing beyond each tree's replacement path
// slab. One scratch serves any number of trees of the same deployment;
// Substrate owns one and reuses it across every repair epoch.
type PatchScratch struct {
	n        int
	state    []uint8
	dist     []int             // new depth per region node (-1 until known)
	par      []topology.NodeID // working parent per region node
	planPath []Path            // materialized new root path per settled node
	pathBuf  []topology.NodeID // stable slab the plan paths are carved from
	mOld     []bool            // summary-dirty via an old ancestor chain
	mNew     []bool            // summary-dirty via a new ancestor chain

	buckets   [][]topology.NodeID // level-indexed settle frontier
	region    []topology.NodeID
	seeds     []topology.NodeID
	stack     []topology.NodeID
	changed   []topology.NodeID
	ins       []topology.NodeID // region nodes in (new depth desc, id asc) order
	win       []topology.NodeID // deepest-first window being re-merged
	dirtyList []topology.NodeID
	byDepth   []topology.NodeID // region nodes in new-depth-ascending order
}

// NewPatchScratch returns an empty scratch; it sizes itself to the first
// tree it patches.
func NewPatchScratch() *PatchScratch { return &PatchScratch{} }

func (s *PatchScratch) ensure(n int) {
	if s.n >= n {
		return
	}
	s.n = n
	s.state = make([]uint8, n)
	s.dist = make([]int, n)
	s.par = make([]topology.NodeID, n)
	s.planPath = make([]Path, n)
	s.mOld = make([]bool, n)
	s.mNew = make([]bool, n)
	budget := n
	if budget < 1024 {
		budget = 1024
	}
	s.pathBuf = make([]topology.NodeID, 0, budget)
}

// cleanup restores the scratch to all-zero using the touched-node lists, so
// the next patch starts clean without O(n) clearing.
func (s *PatchScratch) cleanup() {
	for _, v := range s.region {
		s.state[v] = psOut
		s.dist[v] = 0
		s.par[v] = 0
		s.planPath[v] = nil
	}
	for _, v := range s.dirtyList {
		s.mOld[v] = false
		s.mNew[v] = false
	}
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.pathBuf = s.pathBuf[:0]
	s.region = s.region[:0]
	s.seeds = s.seeds[:0]
	s.stack = s.stack[:0]
	s.changed = s.changed[:0]
	s.ins = s.ins[:0]
	s.win = s.win[:0]
	s.byDepth = s.byDepth[:0]
	// dirtyList is the caller-visible result; leave its contents readable
	// until the next call truncates it.
	s.dirtyList = s.dirtyList[:0]
}

func (s *PatchScratch) push(level int, v topology.NodeID) {
	for len(s.buckets) <= level {
		s.buckets = append(s.buckets, nil)
	}
	s.buckets[level] = append(s.buckets[level], v)
}

// PatchResult reports what an in-place repair touched.
type PatchResult struct {
	Seeds   int // dead anchors the orphaned region grew from
	Region  int // nodes in the orphaned region
	Changed int // nodes whose parent edge moved
	// Dirty lists the nodes whose subtree summaries must be recomputed, in
	// (new depth descending, id ascending) order — the bottom-up order a
	// column rebuild needs. The slice aliases the scratch and is valid
	// until the next PatchTreeLive call with the same scratch.
	Dirty []topology.NodeID
}

// PatchTreeLive repairs t in place around the currently-dead nodes,
// producing exactly the tree RebuildTreeLive(topo, t, t.Root, net, live)
// would build — same parents, depths, root paths, deepest-first order,
// stale-chain semantics and charged beacons — while touching only the
// orphaned region. It returns ok=false (and leaves t untouched, nothing
// charged) when the incremental assumptions do not hold: the root is dead
// (re-rooting changes every path), a recorded-stale node has been revived
// (reachability is no longer monotone), or the orphaned region or its path
// work exceeds the patch budget. Callers fall back to RebuildTreeLive.
func PatchTreeLive(topo *topology.Topology, t *Tree, net *sim.Network, live *topology.Liveness, s *PatchScratch) (PatchResult, bool) {
	n := topo.N()
	if s == nil {
		s = NewPatchScratch()
	}
	s.ensure(n)
	if !live.Alive(t.Root) {
		return PatchResult{}, false
	}
	// Revived nodes break the deletion-only monotonicity the region
	// confinement proof needs; seeds are every currently-dead node the tree
	// still believes reachable (leaf failures leave no other trace).
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if t.staleSet[i] {
			if live.Alive(id) {
				s.cleanup()
				return PatchResult{}, false
			}
		} else if !live.Alive(id) {
			s.seeds = append(s.seeds, id)
		}
	}
	maxRegion := n / 8
	if maxRegion < 64 {
		maxRegion = 64
	}
	// Orphaned region R: the old subtrees (stale children included) of
	// every seed. Only R can change — see the package comment.
	for _, sd := range s.seeds {
		if s.state[sd] != psOut {
			continue // nested under an earlier seed
		}
		s.stack = append(s.stack[:0], sd)
		for len(s.stack) > 0 {
			v := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			if s.state[v] != psOut {
				continue
			}
			if live.Alive(v) {
				s.state[v] = psWait
			} else {
				s.state[v] = psDead
			}
			s.dist[v] = -1
			s.par[v] = t.Parent[v]
			s.region = append(s.region, v)
			if len(s.region) > maxRegion {
				s.cleanup()
				return PatchResult{}, false
			}
			s.stack = append(s.stack, t.Children[v]...)
		}
	}
	if !s.settle(topo, t, live) {
		s.cleanup()
		return PatchResult{}, false
	}
	s.cutDepths(t)
	s.planDirty(t)

	// Plan complete — apply. From here on nothing can fail, so the tree is
	// never left half-patched.
	s.patchDeepFirst(t)
	for _, v := range s.changed {
		old := t.Parent[v]
		t.Children[old] = removeChild(t.Children[old], v)
	}
	for _, v := range s.changed {
		np := s.par[v]
		t.Children[np] = insertChild(t.Children[np], v)
		t.Parent[v] = np
	}
	for _, v := range s.region {
		t.Depth[v] = s.dist[v]
	}
	s.patchPaths(t)
	for _, v := range s.region {
		t.staleSet[v] = s.state[v] != psSettled
	}
	if net != nil {
		beacon := 2 * sim.ValueBytes // root id + depth, as assembleTree charges
		for i := 0; i < n; i++ {
			net.Broadcast(topology.NodeID(i), beacon, sim.Control)
		}
	}
	res := PatchResult{
		Seeds:   len(s.seeds),
		Region:  len(s.region),
		Changed: len(s.changed),
		Dirty:   s.dirtyList,
	}
	// Sort the dirty set bottom-up over the NEW depths (applied above).
	sort.Slice(res.Dirty, func(a, b int) bool {
		da, db := t.Depth[res.Dirty[a]], t.Depth[res.Dirty[b]]
		if da != db {
			return da > db
		}
		return res.Dirty[a] < res.Dirty[b]
	})
	s.partialCleanup()
	return res, true
}

// partialCleanup is cleanup minus truncating dirtyList contents readably —
// identical effect, kept separate so a successful return documents that
// res.Dirty stays valid until the next call.
func (s *PatchScratch) partialCleanup() {
	dirty := s.dirtyList
	s.cleanup()
	s.dirtyList = dirty[:0]
}

// settle runs the level-synchronous frontier over the alive region nodes,
// assigning each its BFS depth and lexicographically-correct parent. It
// reports false when the plan-path budget is exhausted.
func (s *PatchScratch) settle(topo *topology.Topology, t *Tree, live *topology.Liveness) bool {
	lo := -1
	for _, v := range s.region {
		if s.state[v] != psWait {
			continue
		}
		for _, u := range topo.Neighbors(v) {
			if s.state[u] != psOut || !live.Alive(u) || t.staleSet[u] {
				continue
			}
			d := t.Depth[u] + 1
			if s.dist[v] < 0 || d < s.dist[v] {
				s.dist[v] = d
				s.push(d, v)
				if lo < 0 || d < lo {
					lo = d
				}
			}
		}
	}
	if lo < 0 {
		return true // nothing settles; every alive region node is cut off
	}
	for lvl := lo; lvl < len(s.buckets); lvl++ {
		for qi := 0; qi < len(s.buckets[lvl]); qi++ {
			v := s.buckets[lvl][qi]
			if s.state[v] != psWait || s.dist[v] != lvl {
				continue
			}
			best := topology.NodeID(-1)
			var bestPath Path
			for _, u := range topo.Neighbors(v) {
				if !live.Alive(u) {
					continue
				}
				var up Path
				if s.state[u] == psOut {
					if t.staleSet[u] || t.Depth[u] != lvl-1 {
						continue
					}
					up = t.rootPaths[u]
				} else if s.state[u] == psSettled && s.dist[u] == lvl-1 {
					up = s.planPath[u]
				} else {
					continue
				}
				if best < 0 || lexPathLess(up, bestPath) {
					best, bestPath = u, up
				}
			}
			if best < 0 {
				continue // defensive; a queued node always has a candidate
			}
			if len(s.pathBuf)+lvl+1 > cap(s.pathBuf) {
				return false // path-work budget exhausted
			}
			np := s.pathBuf[len(s.pathBuf) : len(s.pathBuf) : len(s.pathBuf)+lvl+1]
			np = append(np, v)
			np = append(np, bestPath...)
			s.pathBuf = s.pathBuf[:len(s.pathBuf)+lvl+1]
			s.planPath[v] = Path(np)
			s.par[v] = best
			s.state[v] = psSettled
			if best != t.Parent[v] {
				s.changed = append(s.changed, v)
			}
			for _, w := range topo.Neighbors(v) {
				if s.state[w] == psWait && (s.dist[w] < 0 || s.dist[w] > lvl+1) {
					s.dist[w] = lvl + 1
					s.push(lvl+1, w)
				}
			}
		}
		s.buckets[lvl] = s.buckets[lvl][:0]
	}
	return true
}

// cutDepths finalizes the depths of region nodes left unreachable (dead
// seeds and cut-off alive nodes): they keep their current parent edge, and
// their depth is the chain length to the nearest depth-final anchor —
// exactly the merged-depth semantics of RebuildTreeLive, iteratively.
func (s *PatchScratch) cutDepths(t *Tree) {
	for _, v := range s.region {
		st := s.state[v]
		if st == psSettled || st == psCut {
			continue
		}
		s.stack = s.stack[:0]
		id := v
		for {
			st := s.state[id]
			if st != psWait && st != psDead {
				break // depth-final: outside the region, settled, or already cut
			}
			s.stack = append(s.stack, id)
			if s.par[id] < 0 {
				id = -1
				break
			}
			id = s.par[id]
		}
		d := -1
		if id >= 0 {
			if s.state[id] == psOut {
				d = t.Depth[id]
			} else {
				d = s.dist[id]
			}
		}
		for j := len(s.stack) - 1; j >= 0; j-- {
			d++
			w := s.stack[j]
			s.dist[w] = d
			s.state[w] = psCut
		}
	}
}

// planDirty marks every node whose subtree summary can change: the old and
// new ancestor chains of each reparented node. Chains stop at an
// already-marked node of the same kind, so total work is linear in the
// marked set. Runs before any mutation: old chains walk t.Parent, new
// chains walk the planned parent function.
func (s *PatchScratch) planDirty(t *Tree) {
	for _, v := range s.changed {
		for u := t.Parent[v]; u >= 0 && !s.mOld[u]; u = t.Parent[u] {
			if !s.mNew[u] {
				s.dirtyList = append(s.dirtyList, u)
			}
			s.mOld[u] = true
		}
		for u := s.par[v]; u >= 0 && !s.mNew[u]; {
			if !s.mOld[u] {
				s.dirtyList = append(s.dirtyList, u)
			}
			s.mNew[u] = true
			if s.state[u] != psOut {
				u = s.par[u]
			} else {
				u = t.Parent[u]
			}
		}
	}
}

// patchDeepFirst re-merges the region nodes into the deepest-first order in
// place. Only the window between the earliest and latest affected key can
// change; it is copied out once and merged back with the region's new keys.
// Runs before depths are applied, so t.Depth still carries the old keys the
// window search needs.
func (s *PatchScratch) patchDeepFirst(t *Tree) {
	if len(s.region) == 0 {
		return
	}
	// Earliest (kd,ki) and latest key over every old and new position.
	kdF, kiF := t.Depth[s.region[0]], s.region[0]
	kdL, kiL := kdF, kiF
	consider := func(d int, id topology.NodeID) {
		if d > kdF || (d == kdF && id < kiF) {
			kdF, kiF = d, id
		}
		if d < kdL || (d == kdL && id > kiL) {
			kdL, kiL = d, id
		}
	}
	for _, v := range s.region {
		consider(t.Depth[v], v)
		consider(s.dist[v], v)
	}
	lo := searchDeepFirst(t, kdF, kiF, false)
	hi := searchDeepFirst(t, kdL, kiL, true)
	s.win = append(s.win[:0], t.deepFirst[lo:hi]...)
	s.ins = append(s.ins[:0], s.region...)
	sort.Slice(s.ins, func(a, b int) bool {
		da, db := s.dist[s.ins[a]], s.dist[s.ins[b]]
		if da != db {
			return da > db
		}
		return s.ins[a] < s.ins[b]
	})
	mergeDeepFirst(t.deepFirst[lo:hi], s.win, s.ins, t.Depth, s.dist, s.state)
}

// searchDeepFirst binary-searches the (depth desc, id asc) deepest-first
// order: with after=false it returns the first index at or past key (kd,ki);
// with after=true the first index strictly past it.
//
//aspen:allocfree
func searchDeepFirst(t *Tree, kd int, ki topology.NodeID, after bool) int {
	lo, hi := 0, len(t.deepFirst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		id := t.deepFirst[mid]
		d := t.Depth[id]
		before := d > kd || (d == kd && (id < ki || (after && id == ki)))
		if before {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeDeepFirst writes the window back: surviving entries (win minus
// region nodes, keyed by their unchanged old depths) merged with the region
// nodes at their new keys.
//
//aspen:allocfree
func mergeDeepFirst(dst, win, ins []topology.NodeID, oldDepth, newDepth []int, state []uint8) {
	w := 0
	i, j := 0, 0
	for i < len(win) || j < len(ins) {
		if i < len(win) && state[win[i]] != psOut {
			i++ // a region node's old slot: it re-enters from ins
			continue
		}
		takeWin := false
		if j >= len(ins) {
			takeWin = true
		} else if i < len(win) {
			a, b := win[i], ins[j]
			da, db := oldDepth[a], newDepth[b]
			takeWin = da > db || (da == db && a < b)
		}
		if takeWin {
			dst[w] = win[i]
			i++
		} else {
			dst[w] = ins[j]
			j++
		}
		w++
	}
}

// patchPaths carves replacement root paths for every region node from one
// fresh slab, new-depth ascending so each node's parent path is already
// final (a parent is always exactly one level up, settled or kept). Old
// path bytes are never overwritten: readers holding a pre-repair Path keep
// a consistent snapshot, exactly as a full rebuild leaves the old tree's
// backing intact.
func (s *PatchScratch) patchPaths(t *Tree) {
	slabLen := 0
	for _, v := range s.region {
		slabLen += s.dist[v] + 1
	}
	slab := make([]topology.NodeID, 0, slabLen)
	s.byDepth = append(s.byDepth[:0], s.region...)
	sort.Slice(s.byDepth, func(a, b int) bool {
		da, db := s.dist[s.byDepth[a]], s.dist[s.byDepth[b]]
		if da != db {
			return da < db
		}
		return s.byDepth[a] < s.byDepth[b]
	})
	for _, v := range s.byDepth {
		start := len(slab)
		slab = append(slab, v)
		if p := t.Parent[v]; p >= 0 {
			slab = append(slab, t.rootPaths[p]...)
		}
		t.rootPaths[v] = Path(slab[start:len(slab):len(slab)])
	}
}

// lexPathLess compares two equal-length root paths in downpath
// (root-to-node) lexicographic order — the BFS dequeue order within a depth
// level, and therefore the parent tie-break order.
//
//aspen:allocfree
func lexPathLess(a, b Path) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// removeChild deletes c from the sorted child list in place.
//
//aspen:allocfree
func removeChild(cs []topology.NodeID, c topology.NodeID) []topology.NodeID {
	i := childPos(cs, c)
	copy(cs[i:], cs[i+1:])
	return cs[:len(cs)-1]
}

// insertChild adds c to the sorted child list, spilling that one list onto
// the heap only when its CSR carve is full.
func insertChild(cs []topology.NodeID, c topology.NodeID) []topology.NodeID {
	i := childPos(cs, c)
	cs = append(cs, 0)
	copy(cs[i+1:], cs[i:])
	cs[i] = c
	return cs
}

//aspen:allocfree
func childPos(cs []topology.NodeID, c topology.NodeID) int {
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

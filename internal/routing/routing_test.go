package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/summary"
	"repro/internal/topology"
)

func moderate(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Generate(topology.ModerateRandom, 100, 1)
}

func TestPathHelpers(t *testing.T) {
	p := Path{1, 2, 3}
	if p.Hops() != 2 {
		t.Fatal("Hops")
	}
	if (Path{5}).Hops() != 0 || Path(nil).Hops() != 0 {
		t.Fatal("degenerate Hops")
	}
	r := p.Reverse()
	if r[0] != 3 || r[2] != 1 {
		t.Fatalf("Reverse = %v", r)
	}
	if !p.Contains(2) || p.Contains(9) {
		t.Fatal("Contains")
	}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases")
	}
	c := Path{1, 2}.Concat(Path{2, 3, 4})
	if len(c) != 4 || c[3] != 4 {
		t.Fatalf("Concat = %v", c)
	}
}

func TestConcatPanicsOnGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Concat with gap did not panic")
		}
	}()
	Path{1, 2}.Concat(Path{3, 4})
}

func TestBuildTreeStructure(t *testing.T) {
	topo := moderate(t)
	tree := BuildTree(topo, topology.Base, nil)
	if tree.Parent[topology.Base] != -1 || tree.Depth[topology.Base] != 0 {
		t.Fatal("root malformed")
	}
	for i := 1; i < topo.N(); i++ {
		id := topology.NodeID(i)
		p := tree.Parent[id]
		if !topo.IsNeighbor(id, p) {
			t.Fatalf("parent of %d is not a neighbour", i)
		}
		if tree.Depth[id] != tree.Depth[p]+1 {
			t.Fatalf("depth inconsistency at %d", i)
		}
	}
}

func TestBuildTreeChargesBeacons(t *testing.T) {
	topo := moderate(t)
	net := sim.NewNetwork(topo, 0, 1)
	BuildTree(topo, topology.Base, net)
	if net.Metrics().TotalMessages != int64(topo.N()) {
		t.Fatalf("beacons = %d, want %d", net.Metrics().TotalMessages, topo.N())
	}
}

func TestPathToRoot(t *testing.T) {
	topo := moderate(t)
	tree := BuildTree(topo, topology.Base, nil)
	for i := 0; i < topo.N(); i++ {
		p := tree.PathToRoot(topology.NodeID(i))
		if p[0] != topology.NodeID(i) || p[len(p)-1] != topology.Base {
			t.Fatalf("PathToRoot(%d) endpoints wrong: %v", i, p)
		}
		if p.Hops() != tree.Depth[i] {
			t.Fatalf("PathToRoot(%d) hops %d != depth %d", i, p.Hops(), tree.Depth[i])
		}
	}
}

func TestTreePathValid(t *testing.T) {
	topo := moderate(t)
	tree := BuildTree(topo, topology.Base, nil)
	f := func(aRaw, bRaw uint8) bool {
		a := topology.NodeID(int(aRaw) % topo.N())
		b := topology.NodeID(int(bRaw) % topo.N())
		p := tree.TreePath(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !topo.IsNeighbor(p[i], p[i+1]) {
				return false
			}
		}
		// A tree path never exceeds up-to-root-and-down.
		return p.Hops() <= tree.Depth[a]+tree.Depth[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreePartition(t *testing.T) {
	topo := moderate(t)
	tree := BuildTree(topo, topology.Base, nil)
	all := tree.Subtree(topology.Base)
	if len(all) != topo.N() {
		t.Fatalf("root subtree has %d nodes, want %d", len(all), topo.N())
	}
	seen := make(map[topology.NodeID]bool)
	for _, id := range all {
		if seen[id] {
			t.Fatalf("node %d appears twice in preorder", id)
		}
		seen[id] = true
	}
}

func TestMultiTreeRootsSpread(t *testing.T) {
	topo := moderate(t)
	s := NewSubstrate(topo, Options{NumTrees: 3}, nil)
	if len(s.Trees) != 3 {
		t.Fatalf("tree count = %d", len(s.Trees))
	}
	if s.Trees[0].Root != topology.Base {
		t.Fatal("tree 0 not rooted at base")
	}
	// Roots must be pairwise distinct and far apart.
	r1, r2 := s.Trees[1].Root, s.Trees[2].Root
	if r1 == topology.Base || r2 == topology.Base || r1 == r2 {
		t.Fatalf("roots not distinct: %v %v", r1, r2)
	}
	if topo.Hops(topology.Base, r1) < 3 {
		t.Fatalf("second root only %d hops from base", topo.Hops(topology.Base, r1))
	}
}

func TestMoreTreesShortenPaths(t *testing.T) {
	// The headline substrate property (Fig 16a): average best-tree path
	// length decreases as trees are added.
	topo := moderate(t)
	avg := func(k int) float64 {
		s := NewSubstrate(topo, Options{NumTrees: k}, nil)
		total, count := 0, 0
		for a := 0; a < topo.N(); a += 7 {
			for b := 0; b < topo.N(); b += 11 {
				if a == b {
					continue
				}
				total += s.BestTreePath(topology.NodeID(a), topology.NodeID(b)).Hops()
				count++
			}
		}
		return float64(total) / float64(count)
	}
	a1, a3 := avg(1), avg(3)
	if a3 >= a1 {
		t.Fatalf("3 trees (%v hops) not shorter than 1 tree (%v hops)", a3, a1)
	}
}

func TestSubstrateIndexedSearch(t *testing.T) {
	topo := moderate(t)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32(i % 10)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 2,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, nil)
	// Search for nodes with k == 4 from node 1.
	m := &keyMatcher{attr: "k", key: 4, vals: vals}
	found := s.FindTargets(1, m, nil)
	want := 0
	for i, v := range vals {
		if v == 4 && i != 1 {
			want++
		}
	}
	if len(found) != want {
		t.Fatalf("found %d targets, want %d", len(found), want)
	}
	for target, p := range found {
		if vals[target] != 4 {
			t.Fatalf("non-matching target %d", target)
		}
		if p[0] != 1 || p[len(p)-1] != target {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if !topo.IsNeighbor(p[i], p[i+1]) {
				t.Fatalf("path not link-valid: %v", p)
			}
		}
	}
}

// keyMatcher matches nodes whose static attribute equals key, pruning with
// the attribute summary.
type keyMatcher struct {
	attr string
	key  int32
	vals []int32
}

func (m *keyMatcher) MatchNode(id topology.NodeID) bool { return m.vals[id] == m.key }
func (m *keyMatcher) MayMatchSubtree(e Entry) bool {
	return e.ScalarByName(m.attr).MayContain(m.key)
}

func TestSearchFindsAllDespiteSummaryPruning(t *testing.T) {
	// No-false-negative end-to-end: pruned search must find exactly the
	// same target set as unpruned search.
	topo := moderate(t)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32((i * 7) % 23)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 3,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, nil)
	for key := int32(0); key < 23; key++ {
		pruned := s.FindTargets(5, &keyMatcher{attr: "k", key: key, vals: vals}, nil)
		targets := map[topology.NodeID]bool{}
		for i, v := range vals {
			if v == key {
				targets[topology.NodeID(i)] = true
			}
		}
		unpruned := s.FindTargets(5, MatchAll{Targets: targets}, nil)
		if len(pruned) != len(unpruned) {
			t.Fatalf("key %d: pruned found %d, unpruned %d", key, len(pruned), len(unpruned))
		}
	}
}

func TestSearchChargesTraffic(t *testing.T) {
	topo := moderate(t)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32(i % 50)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 2,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, nil)
	netPruned := sim.NewNetwork(topo, 0, 1)
	s.FindTargets(1, &keyMatcher{attr: "k", key: 3, vals: vals}, netPruned)
	netFlood := sim.NewNetwork(topo, 0, 1)
	targets := map[topology.NodeID]bool{}
	for i, v := range vals {
		if v == 3 {
			targets[topology.NodeID(i)] = true
		}
	}
	s.FindTargets(1, MatchAll{Targets: targets}, netFlood)
	if netPruned.Metrics().TotalBytes == 0 {
		t.Fatal("search charged no traffic")
	}
	if netPruned.Metrics().TotalBytes >= netFlood.Metrics().TotalBytes {
		t.Fatalf("pruned search (%d B) not cheaper than flooding (%d B)",
			netPruned.Metrics().TotalBytes, netFlood.Metrics().TotalBytes)
	}
}

func TestSubstrateConstructionCharged(t *testing.T) {
	topo := moderate(t)
	vals := make([]int32, topo.N())
	net := sim.NewNetwork(topo, 0, 1)
	NewSubstrate(topo, Options{
		NumTrees: 2,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, net)
	m := net.Metrics()
	// 2 trees x (100 beacons + 99 summary ships).
	if m.TotalMessages != 2*int64(topo.N()+topo.N()-1) {
		t.Fatalf("construction messages = %d", m.TotalMessages)
	}
}

func TestEntrySummaryKinds(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32(i)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 1,
		Indexes: []IndexSpec{
			{Attr: "b", Kind: BloomSummary, Values: vals},
			{Attr: "i", Kind: IntervalSummary, Values: vals},
			{Attr: "h", Kind: HistogramSummary, Values: vals, Lo: 0, Hi: 15},
		},
		IndexPositions: true,
	}, nil)
	root := s.Entry(0, topology.Base)
	if _, ok := root.ScalarByName("b").(*summary.Bloom); !ok {
		t.Fatal("b not a bloom")
	}
	iv, ok := root.ScalarByName("i").(*summary.Interval)
	if !ok {
		t.Fatal("i not an interval")
	}
	min, max, _ := iv.Bounds()
	if min != 0 || max != int32(topo.N()-1) {
		t.Fatalf("root interval (%d,%d)", min, max)
	}
	if root.Region() == nil {
		t.Fatal("positions not indexed")
	}
	if !root.Region().MayContainWithin(topo.Pos(5), 0.1) {
		t.Fatal("root region missing node position")
	}
}

func TestRepairPathDetours(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	net := sim.NewNetwork(topo, 0, 1)
	tree := BuildTree(topo, topology.Base, nil)
	// A path through the grid interior.
	var victim topology.NodeID = -1
	var path Path
	for i := topo.N() - 1; i > 0; i-- {
		p := tree.PathToRoot(topology.NodeID(i))
		if p.Hops() >= 4 {
			path = p
			victim = p[2]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no long path found")
	}
	net.Fail(victim)
	repaired, ok := RepairPath(topo, net, path, DefaultRepairLimit)
	if !ok {
		t.Fatal("repair failed on a grid (detour always exists)")
	}
	if repaired.Contains(victim) {
		t.Fatal("repaired path still uses failed node")
	}
	if repaired[0] != path[0] || repaired[len(repaired)-1] != path[len(path)-1] {
		t.Fatal("repair changed endpoints")
	}
	for i := 0; i+1 < len(repaired); i++ {
		if !topo.IsNeighbor(repaired[i], repaired[i+1]) {
			t.Fatalf("repaired path not link-valid: %v", repaired)
		}
	}
	if net.Metrics().TotalBytes == 0 {
		t.Fatal("repair exploration was free")
	}
}

func TestRepairEndpointFailureUnrepairable(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	net := sim.NewNetwork(topo, 0, 1)
	tree := BuildTree(topo, topology.Base, nil)
	path := tree.PathToRoot(topology.NodeID(topo.N() - 1))
	net.Fail(path[len(path)-1])
	if _, ok := RepairPath(topo, net, path, 2); ok {
		t.Fatal("repaired a path whose endpoint failed")
	}
}

func TestRepairNoopOnHealthyPath(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	net := sim.NewNetwork(topo, 0, 1)
	tree := BuildTree(topo, topology.Base, nil)
	path := tree.PathToRoot(topology.NodeID(topo.N() - 1))
	repaired, ok := RepairPath(topo, net, path, 2)
	if !ok || repaired.Hops() != path.Hops() {
		t.Fatal("healthy path was altered")
	}
	if net.Metrics().TotalBytes != 0 {
		t.Fatal("healthy repair charged traffic")
	}
}

func TestDedupeLoops(t *testing.T) {
	p := dedupeLoops(Path{1, 2, 3, 2, 4})
	want := Path{1, 2, 4}
	if len(p) != len(want) {
		t.Fatalf("dedupeLoops = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("dedupeLoops = %v, want %v", p, want)
		}
	}
}

func TestFloodUpdateReachesOnlyAddressedSubtrees(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	tree := BuildTree(topo, topology.Base, nil)
	net := sim.NewNetwork(topo, 0, 1)
	// Address two leaves.
	var leaves []topology.NodeID
	for i := topo.N() - 1; i > 0 && len(leaves) < 2; i-- {
		if len(tree.Children[topology.NodeID(i)]) == 0 {
			leaves = append(leaves, topology.NodeID(i))
		}
	}
	addressed := map[topology.NodeID]bool{leaves[0]: true, leaves[1]: true}
	depth := FloodUpdate(net, tree, 4, addressed)
	if depth <= 0 {
		t.Fatal("flood reported zero depth for leaf targets")
	}
	m := net.Metrics()
	if m.TotalMessages == 0 {
		t.Fatal("flood charged nothing")
	}
	// Directed flooding must touch far fewer edges than a full flood
	// (n-1 edges): at most the two root-to-leaf chains.
	maxEdges := int64(tree.Depth[leaves[0]] + tree.Depth[leaves[1]])
	if m.TotalMessages > maxEdges {
		t.Fatalf("flood used %d messages, want <= %d (directed)", m.TotalMessages, maxEdges)
	}
}

func TestFloodUpdateRootOnly(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	tree := BuildTree(topo, topology.Base, nil)
	net := sim.NewNetwork(topo, 0, 1)
	depth := FloodUpdate(net, tree, 4, map[topology.NodeID]bool{topology.Base: true})
	if depth != 0 || net.Metrics().TotalMessages != 0 {
		t.Fatal("self-addressed flood should be free")
	}
}

func TestUpdateAttributeRefreshesSummaries(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32(i % 10)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 2,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, nil)
	net := sim.NewNetwork(topo, 0, 1)
	// Assign a brand-new value 77 to node 42.
	delay := s.UpdateAttribute(net, "k", map[topology.NodeID]int32{42: 77})
	if delay <= 0 {
		t.Fatal("update reported no propagation delay")
	}
	if net.Metrics().TotalBytes == 0 {
		t.Fatal("update charged no traffic")
	}
	// Search for 77 from an arbitrary node must now find node 42.
	found := s.FindTargets(3, &keyMatcher{attr: "k", key: 77, vals: vals}, nil)
	// keyMatcher reads the ground-truth vals slice, which UpdateAttribute
	// mutated through the spec — confirm.
	if vals[42] != 77 {
		t.Fatal("UpdateAttribute did not write through to the index values")
	}
	if _, ok := found[42]; !ok || len(found) != 1 {
		t.Fatalf("post-update search found %v, want node 42 only", found)
	}
}

func TestUpdateAttributePanicsOnUnindexed(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	s := NewSubstrate(topo, Options{NumTrees: 1}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unindexed attribute")
		}
	}()
	s.UpdateAttribute(nil, "nope", map[topology.NodeID]int32{1: 2})
}

func TestShortcutNeverLengthens(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 80, 3)
	tree := BuildTree(topo, topology.Base, nil)
	for i := 1; i < topo.N(); i += 7 {
		for j := 2; j < topo.N(); j += 11 {
			p := tree.TreePath(topology.NodeID(i), topology.NodeID(j))
			sc := Shortcut(topo, p)
			if sc.Hops() > p.Hops() {
				t.Fatalf("shortcut lengthened path: %d -> %d", p.Hops(), sc.Hops())
			}
			if sc[0] != p[0] || sc[len(sc)-1] != p[len(p)-1] {
				t.Fatal("shortcut changed endpoints")
			}
			for k := 1; k < len(sc); k++ {
				if !topo.IsNeighbor(sc[k-1], sc[k]) {
					t.Fatalf("shortcut not link-valid: %v", sc)
				}
			}
		}
	}
}

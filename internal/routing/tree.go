// Package routing implements the paper's communication substrate
// (section 2.2, Appendix C): standard routing-tree construction [10],
// the multi-tree extension of [11] (successive roots chosen farthest from
// existing roots), semantic routing tables holding attribute summaries per
// subtree, the down-then-up pruned path search used by In-Net join
// initiation, parent routing to the base station, and the
// limited-exploration path repair of section 7.
package routing

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Path is a hop-by-hop node sequence; consecutive entries are radio
// neighbours. Path[0] is the source and Path[len-1] the destination.
type Path []topology.NodeID

// Clone returns an independent copy.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Reverse returns the path traversed backwards (links are symmetric,
// section 3: "We assume symmetric communication links").
func (p Path) Reverse() Path {
	q := make(Path, len(p))
	for i, n := range p {
		q[len(p)-1-i] = n
	}
	return q
}

// ReverseOf fills the receiver's storage with src reversed and returns
// the result, growing only when capacity is short — the allocation-free
// variant of Reverse for hot loops that reuse one scratch path across
// cycles. The returned path aliases the receiver's array, never src's.
func (p Path) ReverseOf(src Path) Path {
	q := append(p[:0], src...)
	for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
		q[i], q[j] = q[j], q[i]
	}
	return q
}

// Hops returns the hop count (len-1, or 0 for degenerate paths).
func (p Path) Hops() int {
	if len(p) < 2 {
		return 0
	}
	return len(p) - 1
}

// Contains reports whether id appears on the path.
func (p Path) Contains(id topology.NodeID) bool {
	for _, n := range p {
		if n == id {
			return true
		}
	}
	return false
}

// ContainsAny reports whether any of ids appears on the path — the
// affected-path test every FailureRecoverer runs against the epoch's
// failed-node list.
func (p Path) ContainsAny(ids []topology.NodeID) bool {
	for _, id := range ids {
		if p.Contains(id) {
			return true
		}
	}
	return false
}

// Concat joins p with q where p ends at q's first node.
func (p Path) Concat(q Path) Path {
	if len(p) == 0 {
		return q.Clone()
	}
	if len(q) == 0 {
		return p.Clone()
	}
	if p[len(p)-1] != q[0] {
		panic("routing: Concat endpoints do not meet")
	}
	out := make(Path, 0, len(p)+len(q)-1)
	out = append(out, p...)
	out = append(out, q[1:]...)
	return out
}

// Tree is one rooted routing tree: the standard TinyDB-style construction
// (BFS from the root over radio links, ties broken to the lowest node ID so
// construction is deterministic).
//
// A Tree is immutable after construction (repair builds a replacement via
// RebuildTreeLive), so all reads — Parent/Depth/Children, the cached
// PathToRoot slices, DeepFirst — are safe from concurrent goroutines; the
// engine's parallel query stepping relies on this.
type Tree struct {
	Root     topology.NodeID
	Parent   []topology.NodeID // -1 at the root
	Depth    []int
	Children [][]topology.NodeID

	// rootPaths[id] is the cached parent-chain path id -> Root. Trees are
	// immutable after construction, so the paths are computed once and
	// shared by every PathToRoot call (hot path: every tuple routed to the
	// base walks one).
	rootPaths []Path
	// deepFirst is the cached deepest-first node order (depth descending,
	// node ID ascending within a depth): the order every bottom-up summary
	// pass over the tree walks. Computed once per tree by counting sort
	// instead of re-sorting on every routing-table (re)build.
	deepFirst []topology.NodeID
}

// BuildTree constructs a routing tree rooted at root. When net is non-nil,
// construction traffic is charged: each node broadcasts one beacon while
// the tree forms (the flooding construction of [10]).
func BuildTree(topo *topology.Topology, root topology.NodeID, net *sim.Network) *Tree {
	depth, parent := topo.BFS(root)
	return assembleTree(topo, root, net, depth, parent)
}

// RebuildTreeLive rebuilds old around failed nodes — the engine's
// tree-rebuild fallback (section 7 applied to shared infrastructure). The
// parent structure is re-derived by a BFS over the surviving subgraph from
// root; nodes that BFS cannot reach (the failed nodes themselves and alive
// nodes cut off behind them) keep their STALE parent edge from old: they
// keep transmitting toward their previous parent, and sim.Transfer charges
// the hop into the dead region without delivering it. Stale chains are
// never rewired into phantom connectivity — a cut node's traffic is paid
// and lost, exactly as on a real deployment. Depths are recomputed from
// the merged parent vector so bottom-up summary passes still see children
// strictly deeper than parents. Construction beacons are re-charged when
// net is non-nil (failed nodes broadcast nothing).
func RebuildTreeLive(topo *topology.Topology, old *Tree, root topology.NodeID, net *sim.Network, live *topology.Liveness) *Tree {
	n := topo.N()
	depth, parent := topo.BFSLive(root, live)
	for i := 0; i < n; i++ {
		if depth[i] < 0 && topology.NodeID(i) != root {
			parent[i] = old.Parent[i]
		}
	}
	// Merged depths: reachable nodes get their BFS depth back; stale
	// chains are measured along the merged parent vector (a chain ending
	// at a dead former root counts from that local root). The merge is
	// acyclic — stale edges follow the old tree until they meet a
	// reachable node, whose new chain stays within reachable nodes.
	for i := range depth {
		depth[i] = -1
	}
	var walk func(id topology.NodeID) int
	walk = func(id topology.NodeID) int {
		if depth[id] >= 0 {
			return depth[id]
		}
		if parent[id] < 0 {
			depth[id] = 0
		} else {
			depth[id] = walk(parent[id]) + 1
		}
		return depth[id]
	}
	for i := 0; i < n; i++ {
		walk(topology.NodeID(i))
	}
	return assembleTree(topo, root, net, depth, parent)
}

// assembleTree builds the derived tree structure (children, beacons, root
// paths, deepest-first order) from a parent/depth vector.
func assembleTree(topo *topology.Topology, root topology.NodeID, net *sim.Network, depth []int, parent []topology.NodeID) *Tree {
	n := topo.N()
	t := &Tree{
		Root:     root,
		Parent:   parent,
		Depth:    depth,
		Children: make([][]topology.NodeID, n),
	}
	for i := 0; i < n; i++ {
		if p := parent[i]; p >= 0 {
			t.Children[p] = append(t.Children[p], topology.NodeID(i))
		}
	}
	for i := range t.Children {
		sort.Slice(t.Children[i], func(a, b int) bool { return t.Children[i][a] < t.Children[i][b] })
	}
	if net != nil {
		beacon := 2 * sim.ValueBytes // root id + depth
		for i := 0; i < n; i++ {
			net.Broadcast(topology.NodeID(i), beacon, sim.Control)
		}
	}
	t.rootPaths = make([]Path, n)
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		p := make(Path, 0, depth[id]+1)
		p = append(p, id)
		for parent[id] >= 0 {
			id = parent[id]
			p = append(p, id)
		}
		t.rootPaths[i] = p
	}
	// Counting sort by depth: appending node IDs in ascending order keeps
	// each depth bucket ascending, and concatenating buckets deepest-first
	// yields exactly the (depth desc, id asc) order a comparison sort
	// produces.
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	// Bucket index d+1 holds depth d; unreachable nodes (depth -1) land in
	// bucket 0, emitted last, matching a (depth desc, id asc) sort exactly.
	buckets := make([][]topology.NodeID, maxDepth+2)
	for i := 0; i < n; i++ {
		buckets[depth[i]+1] = append(buckets[depth[i]+1], topology.NodeID(i))
	}
	t.deepFirst = make([]topology.NodeID, 0, n)
	for b := maxDepth + 1; b >= 0; b-- {
		t.deepFirst = append(t.deepFirst, buckets[b]...)
	}
	return t
}

// DeepFirst returns the tree's nodes deepest-first (ties broken to the
// lowest node ID), the order bottom-up summary passes use so children are
// processed before parents. The slice is owned by the tree; treat it as
// read-only.
func (t *Tree) DeepFirst() []topology.NodeID { return t.deepFirst }

// PathToRoot returns the parent-chain path from id to the root. The
// returned path is a shared, cached slice: callers must treat it as
// read-only (Reverse/Clone/Concat all copy).
func (t *Tree) PathToRoot(id topology.NodeID) Path {
	return t.rootPaths[id]
}

// TreePath returns the unique tree path between a and b (up to the lowest
// common ancestor, then down).
func (t *Tree) TreePath(a, b topology.NodeID) Path {
	up := t.PathToRoot(a)
	down := t.PathToRoot(b)
	// Find the LCA: strip the common suffix.
	i, j := len(up)-1, len(down)-1
	for i > 0 && j > 0 && up[i-1] == down[j-1] {
		i--
		j--
	}
	p := make(Path, 0, i+1+j)
	p = append(p, up[:i+1]...)
	for k := j - 1; k >= 0; k-- {
		p = append(p, down[k])
	}
	return p
}

// Subtree returns all nodes in the subtree rooted at id, in deterministic
// preorder.
func (t *Tree) Subtree(id topology.NodeID) []topology.NodeID {
	out := []topology.NodeID{id}
	for _, c := range t.Children[id] {
		out = append(out, t.Subtree(c)...)
	}
	return out
}

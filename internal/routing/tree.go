// Package routing implements the paper's communication substrate
// (section 2.2, Appendix C): standard routing-tree construction [10],
// the multi-tree extension of [11] (successive roots chosen farthest from
// existing roots), semantic routing tables holding attribute summaries per
// subtree, the down-then-up pruned path search used by In-Net join
// initiation, parent routing to the base station, and the
// limited-exploration path repair of section 7.
package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Path is a hop-by-hop node sequence; consecutive entries are radio
// neighbours. Path[0] is the source and Path[len-1] the destination.
type Path []topology.NodeID

// Clone returns an independent copy.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Reverse returns the path traversed backwards (links are symmetric,
// section 3: "We assume symmetric communication links").
func (p Path) Reverse() Path {
	q := make(Path, len(p))
	for i, n := range p {
		q[len(p)-1-i] = n
	}
	return q
}

// ReverseOf fills the receiver's storage with src reversed and returns
// the result, growing only when capacity is short — the allocation-free
// variant of Reverse for hot loops that reuse one scratch path across
// cycles. The returned path aliases the receiver's array, never src's.
func (p Path) ReverseOf(src Path) Path {
	q := append(p[:0], src...)
	for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
		q[i], q[j] = q[j], q[i]
	}
	return q
}

// Hops returns the hop count (len-1, or 0 for degenerate paths).
func (p Path) Hops() int {
	if len(p) < 2 {
		return 0
	}
	return len(p) - 1
}

// Contains reports whether id appears on the path.
func (p Path) Contains(id topology.NodeID) bool {
	for _, n := range p {
		if n == id {
			return true
		}
	}
	return false
}

// ContainsAny reports whether any of ids appears on the path — the
// affected-path test every FailureRecoverer runs against the epoch's
// failed-node list.
func (p Path) ContainsAny(ids []topology.NodeID) bool {
	for _, id := range ids {
		if p.Contains(id) {
			return true
		}
	}
	return false
}

// Concat joins p with q where p ends at q's first node.
func (p Path) Concat(q Path) Path {
	if len(p) == 0 {
		return q.Clone()
	}
	if len(q) == 0 {
		return p.Clone()
	}
	if p[len(p)-1] != q[0] {
		panic("routing: Concat endpoints do not meet")
	}
	out := make(Path, 0, len(p)+len(q)-1)
	out = append(out, p...)
	out = append(out, q[1:]...)
	return out
}

// Tree is one rooted routing tree: the standard TinyDB-style construction
// (BFS from the root over radio links, ties broken to the lowest node ID so
// construction is deterministic).
//
// A Tree is only mutated at the epoch barrier (by RebuildTreeLive building a
// replacement, or by PatchTreeLive splicing the orphaned region in place), so
// all reads — Parent/Depth/Children, the cached PathToRoot slices, DeepFirst
// — are safe from concurrent goroutines during query stepping; the engine's
// parallel query stepping relies on this. PatchTreeLive never overwrites path
// bytes a stale reader could hold: changed root paths are written into a
// fresh slab and only the per-node Path headers are swapped.
type Tree struct {
	Root     topology.NodeID
	Parent   []topology.NodeID // -1 at the root
	Depth    []int
	Children [][]topology.NodeID

	// rootPaths[id] is the cached parent-chain path id -> Root, carved out
	// of one flat slab (pathSlab) so a 100k-node tree costs one backing
	// allocation, not one per node. Shared by every PathToRoot call (hot
	// path: every tuple routed to the base walks one).
	rootPaths []Path
	// pathSlab is the backing array the rootPaths are carved from. Repairs
	// that change paths carve replacements from fresh per-repair slabs
	// (never overwriting these bytes), so the field only tracks the
	// dominant allocation for MemBytes accounting.
	pathSlab []topology.NodeID
	// childSlab is the CSR backing array for Children: per-parent slices
	// carved cap-clamped from one allocation. A patch inserting a child
	// into a full slice spills just that parent's slice onto the heap.
	childSlab []topology.NodeID
	// deepFirst is the cached deepest-first node order (depth descending,
	// node ID ascending within a depth): the order every bottom-up summary
	// pass over the tree walks. Computed once per tree by counting sort
	// instead of re-sorting on every routing-table (re)build.
	deepFirst []topology.NodeID
	// staleSet[id] reports whether id's parent edge is a stale leftover: id
	// was unreachable by the live BFS that (re)built this tree, so it kept
	// transmitting toward its previous parent. PatchTreeLive uses the set
	// to find the currently-dead region and to detect revivals (a recorded
	// stale node now alive forces a full rebuild).
	staleSet []bool
}

// BuildTree constructs a routing tree rooted at root. When net is non-nil,
// construction traffic is charged: each node broadcasts one beacon while
// the tree forms (the flooding construction of [10]).
func BuildTree(topo *topology.Topology, root topology.NodeID, net *sim.Network) *Tree {
	depth, parent := topo.BFS(root)
	stale := make([]bool, topo.N())
	for i, d := range depth {
		if d < 0 && topology.NodeID(i) != root {
			stale[i] = true
		}
	}
	return assembleTree(topo, root, net, depth, parent, stale)
}

// RebuildTreeLive rebuilds old around failed nodes — the engine's
// tree-rebuild fallback (section 7 applied to shared infrastructure). The
// parent structure is re-derived by a BFS over the surviving subgraph from
// root; nodes that BFS cannot reach (the failed nodes themselves and alive
// nodes cut off behind them) keep their STALE parent edge from old: they
// keep transmitting toward their previous parent, and sim.Transfer charges
// the hop into the dead region without delivering it. Stale chains are
// never rewired into phantom connectivity — a cut node's traffic is paid
// and lost, exactly as on a real deployment. Depths are recomputed from
// the merged parent vector so bottom-up summary passes still see children
// strictly deeper than parents. Construction beacons are re-charged when
// net is non-nil (failed nodes broadcast nothing).
func RebuildTreeLive(topo *topology.Topology, old *Tree, root topology.NodeID, net *sim.Network, live *topology.Liveness) *Tree {
	n := topo.N()
	depth, parent := topo.BFSLive(root, live)
	stale := make([]bool, n)
	for i := 0; i < n; i++ {
		if depth[i] < 0 && topology.NodeID(i) != root {
			parent[i] = old.Parent[i]
			stale[i] = true
		}
	}
	// Merged depths: reachable nodes get their BFS depth back; stale
	// chains are measured along the merged parent vector (a chain ending
	// at a dead former root counts from that local root). The merge is
	// acyclic — stale edges follow the old tree until they meet a
	// reachable node, whose new chain stays within reachable nodes.
	for i := range depth {
		depth[i] = -1
	}
	mergedDepths(depth, parent)
	return assembleTree(topo, root, net, depth, parent, stale)
}

// mergedDepths fills depth (all -1 on entry) with chain lengths along the
// merged parent vector. Iterative on purpose: a long stale parent chain at
// 100k nodes would overflow the goroutine stack if walked recursively, so
// each node first climbs to the nearest already-measured ancestor (or a
// chain end) and then unwinds the visited prefix. The climb path is kept in
// a reusable stack slice; total work is O(n) since every node is measured
// exactly once.
func mergedDepths(depth []int, parent []topology.NodeID) {
	var stack []topology.NodeID
	for i := range depth {
		if depth[i] >= 0 {
			continue
		}
		stack = stack[:0]
		id := topology.NodeID(i)
		for depth[id] < 0 && parent[id] >= 0 {
			stack = append(stack, id)
			id = parent[id]
		}
		d := 0
		if depth[id] >= 0 {
			d = depth[id]
		} else {
			depth[id] = 0 // chain end: a root (local or global)
		}
		for j := len(stack) - 1; j >= 0; j-- {
			d++
			depth[stack[j]] = d
		}
	}
}

// assembleTree builds the derived tree structure (children, beacons, root
// paths, deepest-first order) from a parent/depth vector. All per-node
// derived slices are carved out of flat slabs — three backing allocations
// (children CSR, path slab, deepest-first order) regardless of n — so the
// 100k-node deployment does not pay 100k tiny allocations per tree.
func assembleTree(topo *topology.Topology, root topology.NodeID, net *sim.Network, depth []int, parent []topology.NodeID, stale []bool) *Tree {
	n := topo.N()
	t := &Tree{
		Root:     root,
		Parent:   parent,
		Depth:    depth,
		Children: make([][]topology.NodeID, n),
		staleSet: stale,
	}
	// Children as CSR: count, carve cap-clamped slices, then fill by
	// ascending node ID — which leaves every child list ascending without a
	// sort (the order the previous sort.Slice produced).
	counts := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		if p := parent[i]; p >= 0 {
			counts[p]++
			total++
		}
	}
	t.childSlab = make([]topology.NodeID, total)
	off := 0
	for i := 0; i < n; i++ {
		t.Children[i] = t.childSlab[off : off : off+counts[i]]
		off += counts[i]
	}
	for i := 0; i < n; i++ {
		if p := parent[i]; p >= 0 {
			t.Children[p] = append(t.Children[p], topology.NodeID(i))
		}
	}
	if net != nil {
		beacon := 2 * sim.ValueBytes // root id + depth
		for i := 0; i < n; i++ {
			net.Broadcast(topology.NodeID(i), beacon, sim.Control)
		}
	}
	// Root paths carved from one slab. Merged depths equal chain lengths
	// minus one (unreachable nodes in a from-scratch build have depth -1
	// and a one-entry path), so the slab size is exact.
	slabLen := 0
	for i := 0; i < n; i++ {
		if depth[i] >= 0 {
			slabLen += depth[i] + 1
		} else {
			slabLen++
		}
	}
	t.pathSlab = make([]topology.NodeID, 0, slabLen)
	t.rootPaths = make([]Path, n)
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		start := len(t.pathSlab)
		t.pathSlab = append(t.pathSlab, id)
		for parent[id] >= 0 {
			id = parent[id]
			t.pathSlab = append(t.pathSlab, id)
		}
		t.rootPaths[i] = Path(t.pathSlab[start:len(t.pathSlab):len(t.pathSlab)])
	}
	// Counting sort by depth: placing node IDs in ascending order keeps
	// each depth bucket ascending, and concatenating buckets deepest-first
	// yields exactly the (depth desc, id asc) order a comparison sort
	// produces. Bucket index d+1 holds depth d; unreachable nodes (depth
	// -1) land in bucket 0, emitted last.
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	bucketOff := make([]int, maxDepth+2)
	for i := 0; i < n; i++ {
		bucketOff[depth[i]+1]++
	}
	// Prefix offsets in emission order (deepest bucket first, bucket 0 last).
	pos := 0
	for b := maxDepth + 1; b >= 0; b-- {
		c := bucketOff[b]
		bucketOff[b] = pos
		pos += c
	}
	t.deepFirst = make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		b := depth[i] + 1
		t.deepFirst[bucketOff[b]] = topology.NodeID(i)
		bucketOff[b]++
	}
	return t
}

// Stale reports whether id's parent edge is a stale leftover from before the
// last (re)build: the node was unreachable over live links, so it keeps
// transmitting toward its previous parent (section 7 semantics — the hop is
// charged and lost).
func (t *Tree) Stale(id topology.NodeID) bool { return t.staleSet[id] }

// MemBytes reports the tree's resident derived-structure footprint: the
// parent/depth columns, the children CSR, the root-path slab and headers,
// the deepest-first order, and the stale set. Spilled per-parent child
// slices and superseded path slabs from in-place patches are not tracked —
// they are small and die with the next full rebuild.
func (t *Tree) MemBytes() int64 {
	const idBytes = 8  // topology.NodeID is an int
	const intBytes = 8 // []int depth entries
	b := int64(len(t.Parent)) * idBytes
	b += int64(len(t.Depth)) * intBytes
	b += int64(len(t.Children)) * 24 // slice headers
	b += int64(len(t.childSlab)) * idBytes
	b += int64(len(t.rootPaths)) * 24 // Path headers
	b += int64(cap(t.pathSlab)) * idBytes
	b += int64(len(t.deepFirst)) * idBytes
	b += int64(len(t.staleSet))
	return b
}

// DeepFirst returns the tree's nodes deepest-first (ties broken to the
// lowest node ID), the order bottom-up summary passes use so children are
// processed before parents. The slice is owned by the tree; treat it as
// read-only.
func (t *Tree) DeepFirst() []topology.NodeID { return t.deepFirst }

// PathToRoot returns the parent-chain path from id to the root. The
// returned path is a shared, cached slice: callers must treat it as
// read-only (Reverse/Clone/Concat all copy).
func (t *Tree) PathToRoot(id topology.NodeID) Path {
	return t.rootPaths[id]
}

// TreePath returns the unique tree path between a and b (up to the lowest
// common ancestor, then down).
func (t *Tree) TreePath(a, b topology.NodeID) Path {
	up := t.PathToRoot(a)
	down := t.PathToRoot(b)
	// Find the LCA: strip the common suffix.
	i, j := len(up)-1, len(down)-1
	for i > 0 && j > 0 && up[i-1] == down[j-1] {
		i--
		j--
	}
	p := make(Path, 0, i+1+j)
	p = append(p, up[:i+1]...)
	for k := j - 1; k >= 0; k-- {
		p = append(p, down[k])
	}
	return p
}

// Subtree returns all nodes in the subtree rooted at id, in deterministic
// preorder.
func (t *Tree) Subtree(id topology.NodeID) []topology.NodeID {
	out := []topology.NodeID{id}
	for _, c := range t.Children[id] {
		out = append(out, t.Subtree(c)...)
	}
	return out
}

package routing

import (
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/summary"
	"repro/internal/topology"
)

// SummaryKind selects which summary structure indexes a static attribute
// in the routing tables (Appendix C: intervals as in TinyDB, Bloom filters,
// or histograms, "each of these structures may be useful for particular
// datatypes and value ranges").
type SummaryKind int

const (
	// BloomSummary indexes discrete identifiers (id, cid, rid, x, y).
	BloomSummary SummaryKind = iota
	// IntervalSummary indexes ordered ranges.
	IntervalSummary
	// HistogramSummary indexes dense low-cardinality domains.
	HistogramSummary
)

// IndexSpec declares one indexed static attribute: its name, per-node
// values, and the summary structure to use.
type IndexSpec struct {
	Attr   string
	Kind   SummaryKind
	Values []int32 // Values[node] is the node's static attribute value
	// Lo, Hi bound the domain for HistogramSummary.
	Lo, Hi int32
	// Buckets is the histogram bucket count (default 16).
	Buckets int
}

// Entry is a lightweight view of one (tree, node) routing-table entry over
// the substrate's columnar storage. It is passed by value on the path-
// search hot path, so resolving a summary is three slice indexes — no map
// lookups, no per-entry allocation.
type Entry struct {
	s  *Substrate
	ti int
	id topology.NodeID
}

// Scalar returns the subtree summary for the attribute column col (as
// resolved once by Substrate.ColumnIndex). It panics on out-of-range
// columns, including the -1 ColumnIndex returns for unindexed attributes.
func (e Entry) Scalar(col int) summary.Summary {
	return e.s.cols[e.ti][col][e.id]
}

// ScalarByName returns the subtree summary for attr, or nil when attr is
// not indexed. Matchers on the search hot path should resolve the column
// once with ColumnIndex and use Scalar instead.
func (e Entry) ScalarByName(attr string) summary.Summary {
	col, ok := e.s.colOf[attr]
	if !ok {
		return nil
	}
	return e.s.cols[e.ti][col][e.id]
}

// Region returns the subtree position summary (Query 3's R-tree), or nil
// when positions are not indexed.
func (e Entry) Region() *summary.Region {
	if !e.s.indexPos {
		return nil
	}
	return e.s.regions[e.ti][e.id]
}

// ScalarSizeBytes sums the wire sizes of every scalar summary in the entry
// — the payload a node ships when refreshing its whole table row.
func (e Entry) ScalarSizeBytes() int {
	size := 0
	for _, col := range e.s.cols[e.ti] {
		size += col[e.id].SizeBytes()
	}
	return size
}

// Substrate is the multi-tree semantic routing substrate of [11]: one or
// more routing trees over the same nodes, with per-subtree attribute
// summaries at every node enabling content-addressed path search.
//
// Routing tables are stored columnar — cols[tree][attr][node] — rather
// than as a per-(tree, node) map keyed by attribute name: at thousands of
// nodes the per-entry maps dominate construction time and memory, and the
// path search's subtree pruning becomes a hash lookup per visited edge.
// With columns, construction appends n summaries per indexed attribute and
// pruning indexes a slice.
//
// Concurrency: reads (PathToBase, DepthToBase, BestTreePath, FindTargets,
// Entry lookups) are safe from concurrent goroutines as long as no
// mutation — ExtendIndexes, ExtendPositionIndex, RepairTrees — runs at the
// same time. internal/engine upholds this by confining every mutation to
// its sequential admission/churn phases while parallel workers only read.
type Substrate struct {
	Topo  *topology.Topology
	Trees []*Tree
	// cols[tree][col][node] is the summary of node's subtree in tree for
	// the attribute at column col (column order == specs order).
	cols [][][]summary.Summary
	// regions[tree][node] is the subtree position summary, when position
	// indexing is enabled (Query 3's R-tree).
	regions [][]*summary.Region
	specs   []IndexSpec
	colOf   map[string]int // attribute name -> column index
	// indexPos records whether positions are indexed with R-trees.
	indexPos bool
	pos      []geom.Point

	// patch is the reusable planning scratch for in-place tree repair.
	patch *PatchScratch
	// regional is the two-level region index used to re-pick roots without
	// an O(n) scan; built lazily on the first dead-root repair.
	regional *RegionalIndex
	// baseGen counts mutations of the base tree (tree 0), so the regional
	// index knows when its depth ordering is out of date.
	baseGen uint64
	stats   RepairStats
}

// RepairStats accumulates what churn-time maintenance has done over the
// substrate's lifetime — the observability counters behind the patched-vs-
// rebuilt split and the region-size claim (repair cost tracks the orphaned
// region, not the deployment).
type RepairStats struct {
	Patched        int // trees repaired in place by PatchTreeLive
	Rebuilt        int // trees repaired by full RebuildTreeLive
	RegionNodes    int // cumulative orphaned-region size across patches
	ChangedParents int // cumulative reparented nodes across patches
}

// Stats returns the cumulative repair counters.
func (s *Substrate) Stats() RepairStats { return s.stats }

// MemBytes estimates the substrate's resident footprint: the per-tree
// derived structures plus the columnar routing tables (summary payload
// bytes plus a fixed per-object overhead for headers and size-class
// slack). It feeds the engine's mem.routing.bytes gauge.
func (s *Substrate) MemBytes() int64 {
	var b int64
	for _, t := range s.Trees {
		b += t.MemBytes()
	}
	const objOverhead = 48
	for _, cols := range s.cols {
		for _, col := range cols {
			b += int64(len(col)) * 16 // interface slots
			for _, sm := range col {
				if sm != nil {
					b += int64(sm.SizeBytes()) + objOverhead
				}
			}
		}
	}
	for _, regs := range s.regions {
		b += int64(len(regs)) * 8
		for _, r := range regs {
			if r != nil {
				b += int64(r.SizeBytes()) + objOverhead
			}
		}
	}
	return b
}

// Options configures substrate construction.
type Options struct {
	// NumTrees is how many overlapping routing trees to build (the paper
	// evaluates 1-3; 3 is the substrate default in [11]).
	NumTrees int
	// Indexes are the static attributes to index.
	Indexes []IndexSpec
	// IndexPositions adds an R-tree region summary per table entry.
	IndexPositions bool
}

// NewSubstrate builds the substrate over topo. Tree 0 is rooted at the
// base station; each successive root is the node maximizing the minimum
// hop distance to all existing roots ("choose a new root node furthest
// from any existing roots"). When net is non-nil, construction and summary
// dissemination traffic is charged as control traffic.
func NewSubstrate(topo *topology.Topology, opts Options, net *sim.Network) *Substrate {
	if opts.NumTrees < 1 {
		opts.NumTrees = 1
	}
	s := &Substrate{
		Topo:     topo,
		specs:    opts.Indexes,
		indexPos: opts.IndexPositions,
		colOf:    make(map[string]int, len(opts.Indexes)),
	}
	for i, spec := range s.specs {
		s.colOf[spec.Attr] = i
	}
	if opts.IndexPositions {
		s.pos = make([]geom.Point, topo.N())
		for i := range s.pos {
			s.pos[i] = topo.Pos(topology.NodeID(i))
		}
	}
	roots := []topology.NodeID{topology.Base}
	depths := make([][]int, 0, opts.NumTrees)
	d0, _ := topo.BFS(topology.Base)
	depths = append(depths, d0)
	for len(roots) < opts.NumTrees {
		// Farthest-point selection on hop distance.
		best, bestMin := topology.NodeID(-1), -1
		for i := 0; i < topo.N(); i++ {
			id := topology.NodeID(i)
			minD := 1 << 30
			for _, dd := range depths {
				if dd[id] < minD {
					minD = dd[id]
				}
			}
			if minD > bestMin {
				best, bestMin = id, minD
			}
		}
		roots = append(roots, best)
		db, _ := topo.BFS(best)
		depths = append(depths, db)
	}
	for _, r := range roots {
		s.Trees = append(s.Trees, BuildTree(topo, r, net))
	}
	s.buildTables(net)
	return s
}

// buildColumn computes one attribute's summary column for tree, bottom-up:
// each node's summary folds its own value and merges its children's
// (children precede parents in deepest-first order).
func (s *Substrate) buildColumn(tree *Tree, spec IndexSpec) []summary.Summary {
	col := make([]summary.Summary, s.Topo.N())
	for _, id := range tree.DeepFirst() {
		sm := s.newSummary(spec)
		sm.AddValue(spec.Values[id])
		for _, c := range tree.Children[id] {
			sm.Merge(col[c])
		}
		col[id] = sm
	}
	return col
}

// buildRegions computes the position-summary column for tree, bottom-up.
func (s *Substrate) buildRegions(tree *Tree) []*summary.Region {
	col := make([]*summary.Region, s.Topo.N())
	for _, id := range tree.DeepFirst() {
		r := summary.NewRegion()
		r.AddPoint(s.pos[id])
		for _, c := range tree.Children[id] {
			r.Merge(col[c])
		}
		col[id] = r
	}
	return col
}

// buildTables computes, bottom-up per tree, the subtree summaries for every
// node, charging the summary bytes shipped from each child to its parent.
func (s *Substrate) buildTables(net *sim.Network) {
	s.cols = make([][][]summary.Summary, len(s.Trees))
	if s.indexPos {
		s.regions = make([][]*summary.Region, len(s.Trees))
	}
	for ti, tree := range s.Trees {
		s.cols[ti] = make([][]summary.Summary, len(s.specs))
		for ci, spec := range s.specs {
			s.cols[ti][ci] = s.buildColumn(tree, spec)
		}
		if s.indexPos {
			s.regions[ti] = s.buildRegions(tree)
		}
		if net != nil {
			s.chargeTableShip(ti, tree, net)
		}
	}
}

// chargeTableShip charges one full routing-table row shipped from every
// non-root node to its parent in tree ti: the dissemination cost of a
// (re)built table. Transfers from failed nodes abort unpaid, so a rebuild
// only charges the surviving nodes.
func (s *Substrate) chargeTableShip(ti int, tree *Tree, net *sim.Network) {
	for i := 0; i < s.Topo.N(); i++ {
		id := topology.NodeID(i)
		if p := tree.Parent[id]; p >= 0 {
			size := 0
			for _, col := range s.cols[ti] {
				size += col[id].SizeBytes()
			}
			if s.indexPos {
				size += s.regions[ti][id].SizeBytes()
			}
			net.Transfer(Path{id, p}, size, sim.Control, sim.Flow{})
		}
	}
}

// RepairTrees is the tree-maintenance pass the engine runs after node
// failures: every routing tree in which some failed node is INTERIOR (has
// children — a failed leaf breaks no one's route) is repaired around the
// failure, its summary columns recomputed bottom-up, and the fresh beacons
// plus table dissemination charged to net (the engine's shared stream;
// failed nodes transmit nothing). Repair is incremental first: when the
// root survives, PatchTreeLive re-parents only the orphaned region in
// place and only the summaries along dirtied root paths are recomputed —
// the charged traffic is identical to a full rebuild, the saved work is
// CPU and allocation. When the patch declines (dead root, revival, region
// over budget) the tree falls back to the full RebuildTreeLive path. A
// tree whose root died is re-rooted at the alive node deepest in the base
// tree (ties to the lowest ID) — the same "far from the base" intent as
// construction, found via the two-level regional index instead of an O(n)
// scan. Callers holding paths from the old trees (PathToBase results etc.)
// observe the repaired routes on their next lookup. Returns the number of
// trees repaired (patched or rebuilt).
func (s *Substrate) RepairTrees(net *sim.Network, live *topology.Liveness, failed []topology.NodeID) int {
	repaired := 0
	for ti, tree := range s.Trees {
		needs := !live.Alive(tree.Root)
		for _, id := range failed {
			if needs || len(tree.Children[id]) > 0 {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		root := tree.Root
		if !live.Alive(root) {
			root = s.regionalRoot(live)
			if root < 0 {
				continue // no alive replacement; leave the tree stale
			}
		}
		if root == tree.Root {
			if s.patch == nil {
				s.patch = NewPatchScratch()
			}
			if res, ok := PatchTreeLive(s.Topo, tree, net, live, s.patch); ok {
				s.patchColumns(ti, tree, res.Dirty)
				if net != nil {
					s.chargeTableShip(ti, tree, net)
				}
				if ti == 0 {
					s.baseGen++
				}
				s.stats.Patched++
				s.stats.RegionNodes += res.Region
				s.stats.ChangedParents += res.Changed
				repaired++
				continue
			}
		}
		nt := RebuildTreeLive(s.Topo, tree, root, net, live)
		s.Trees[ti] = nt
		for ci, spec := range s.specs {
			s.cols[ti][ci] = s.buildColumn(nt, spec)
		}
		if s.indexPos {
			s.regions[ti] = s.buildRegions(nt)
		}
		if net != nil {
			s.chargeTableShip(ti, nt, net)
		}
		if ti == 0 {
			s.baseGen++
		}
		s.stats.Rebuilt++
		repaired++
	}
	return repaired
}

// patchColumns recomputes the summary columns for just the dirty nodes of
// a patched tree. dirty arrives (new depth descending, id ascending), so a
// dirty node's dirty children are recomputed before it; clean children
// keep summaries whose content is provably unchanged (their subtrees did
// not change membership), making the resulting columns value-identical to
// a full bottom-up rebuild.
func (s *Substrate) patchColumns(ti int, tree *Tree, dirty []topology.NodeID) {
	for _, id := range dirty {
		for ci, spec := range s.specs {
			sm := s.newSummary(spec)
			sm.AddValue(spec.Values[id])
			for _, c := range tree.Children[id] {
				sm.Merge(s.cols[ti][ci][c])
			}
			s.cols[ti][ci][id] = sm
		}
		if s.indexPos {
			r := summary.NewRegion()
			r.AddPoint(s.pos[id])
			for _, c := range tree.Children[id] {
				r.Merge(s.regions[ti][c])
			}
			s.regions[ti][id] = r
		}
	}
}

// regionalRoot picks the replacement root through the two-level regional
// index: one cursor per region skips its dead prefix, and only the 16
// region heads are compared — cross-region repair never walks intra-region
// structure. Returns exactly the node farthestAliveRoot would.
func (s *Substrate) regionalRoot(live *topology.Liveness) topology.NodeID {
	if s.regional == nil {
		s.regional = NewRegionalIndex(s.Topo)
	}
	s.regional.Refresh(s.Trees[0], s.baseGen)
	return s.regional.FarthestAliveRoot(live)
}

// farthestAliveRoot picks the replacement root for a tree whose root died:
// the alive node deepest in the base tree, ties to the lowest node ID.
// Returns -1 when no node is alive (not reachable in practice: the base
// station never churns).
func (s *Substrate) farthestAliveRoot(live *topology.Liveness) topology.NodeID {
	best, bestDepth := topology.NodeID(-1), -1
	base := s.Trees[0]
	for i := 0; i < s.Topo.N(); i++ {
		id := topology.NodeID(i)
		if live.Alive(id) && base.Depth[id] > bestDepth {
			best, bestDepth = id, base.Depth[id]
		}
	}
	return best
}

func (s *Substrate) newSummary(spec IndexSpec) summary.Summary {
	switch spec.Kind {
	case IntervalSummary:
		return summary.NewInterval()
	case HistogramSummary:
		b := spec.Buckets
		if b <= 0 {
			b = 16
		}
		return summary.NewHistogram(spec.Lo, spec.Hi, b)
	default:
		return summary.DefaultBloom()
	}
}

// ColumnIndex returns the column of an indexed attribute, or -1 when attr
// is not indexed. Matchers resolve their attributes once at construction
// so subtree pruning during path search is a pure slice index.
func (s *Substrate) ColumnIndex(attr string) int {
	if col, ok := s.colOf[attr]; ok {
		return col
	}
	return -1
}

// HasIndex reports whether attr is already indexed in the routing tables.
func (s *Substrate) HasIndex(attr string) bool {
	_, ok := s.colOf[attr]
	return ok
}

// HasPositionIndex reports whether R-tree region summaries are present.
func (s *Substrate) HasPositionIndex() bool { return s.indexPos }

// ExtendIndexes adds any not-yet-indexed attributes from specs to every
// tree's routing tables, charging the incremental dissemination — each
// non-root node ships only the NEW summaries to its parent — as control
// traffic when net is non-nil. A static attribute's values are a property
// of the deployment, not of any one query, so attributes already indexed
// are skipped entirely: the first query to index an attribute pays its
// dissemination, later queries share the table for free. This is the
// multi-query traffic-sharing path used by internal/engine; the routing
// trees themselves are never rebuilt. In the columnar layout an extension
// is a column append per tree — existing columns are untouched.
func (s *Substrate) ExtendIndexes(specs []IndexSpec, net *sim.Network) {
	var fresh []IndexSpec
	for _, spec := range specs {
		if !s.HasIndex(spec.Attr) {
			fresh = append(fresh, spec)
			s.colOf[spec.Attr] = len(s.specs)
			s.specs = append(s.specs, spec)
		}
	}
	if len(fresh) == 0 {
		return
	}
	for ti, tree := range s.Trees {
		firstNew := len(s.cols[ti])
		for _, spec := range fresh {
			s.cols[ti] = append(s.cols[ti], s.buildColumn(tree, spec))
		}
		if net != nil {
			for i := 0; i < s.Topo.N(); i++ {
				id := topology.NodeID(i)
				if p := tree.Parent[id]; p >= 0 {
					size := 0
					for _, col := range s.cols[ti][firstNew:] {
						size += col[id].SizeBytes()
					}
					net.Transfer(Path{id, p}, size, sim.Control, sim.Flow{})
				}
			}
		}
	}
}

// ExtendPositionIndex adds the R-tree region summaries to every table
// entry (Query 3's geometric search), charging their dissemination like
// ExtendIndexes. A no-op when positions are already indexed.
func (s *Substrate) ExtendPositionIndex(net *sim.Network) {
	if s.indexPos {
		return
	}
	s.indexPos = true
	s.pos = make([]geom.Point, s.Topo.N())
	for i := range s.pos {
		s.pos[i] = s.Topo.Pos(topology.NodeID(i))
	}
	s.regions = make([][]*summary.Region, len(s.Trees))
	for ti, tree := range s.Trees {
		s.regions[ti] = s.buildRegions(tree)
		if net != nil {
			for i := 0; i < s.Topo.N(); i++ {
				id := topology.NodeID(i)
				if p := tree.Parent[id]; p >= 0 {
					net.Transfer(Path{id, p}, s.regions[ti][id].SizeBytes(), sim.Control, sim.Flow{})
				}
			}
		}
	}
}

// Entry returns the routing-table entry view for node id in tree ti.
func (s *Substrate) Entry(ti int, id topology.NodeID) Entry {
	return Entry{s: s, ti: ti, id: id}
}

// Pos returns node positions when position indexing is on (nil otherwise).
func (s *Substrate) Pos(id topology.NodeID) geom.Point {
	if s.pos != nil {
		return s.pos[id]
	}
	return s.Topo.Pos(id)
}

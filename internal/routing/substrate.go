package routing

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/summary"
	"repro/internal/topology"
)

// SummaryKind selects which summary structure indexes a static attribute
// in the routing tables (Appendix C: intervals as in TinyDB, Bloom filters,
// or histograms, "each of these structures may be useful for particular
// datatypes and value ranges").
type SummaryKind int

const (
	// BloomSummary indexes discrete identifiers (id, cid, rid, x, y).
	BloomSummary SummaryKind = iota
	// IntervalSummary indexes ordered ranges.
	IntervalSummary
	// HistogramSummary indexes dense low-cardinality domains.
	HistogramSummary
)

// IndexSpec declares one indexed static attribute: its name, per-node
// values, and the summary structure to use.
type IndexSpec struct {
	Attr   string
	Kind   SummaryKind
	Values []int32 // Values[node] is the node's static attribute value
	// Lo, Hi bound the domain for HistogramSummary.
	Lo, Hi int32
	// Buckets is the histogram bucket count (default 16).
	Buckets int
}

// Entry is one routing-table entry: the summaries describing the subtree
// below a (tree, node) pair. Path search consults it to prune descent.
type Entry struct {
	// Scalars maps attribute name to that attribute's subtree summary.
	Scalars map[string]summary.Summary
	// Region summarizes subtree node positions, when position indexing is
	// enabled (Query 3's R-tree).
	Region *summary.Region
}

// Substrate is the multi-tree semantic routing substrate of [11]: one or
// more routing trees over the same nodes, with per-subtree attribute
// summaries at every node enabling content-addressed path search.
type Substrate struct {
	Topo  *topology.Topology
	Trees []*Tree
	// tables[tree][node] is the summary entry for node's subtree in tree.
	tables [][]Entry
	specs  []IndexSpec
	// indexPos records whether positions are indexed with R-trees.
	indexPos bool
	pos      []geom.Point
}

// Options configures substrate construction.
type Options struct {
	// NumTrees is how many overlapping routing trees to build (the paper
	// evaluates 1-3; 3 is the substrate default in [11]).
	NumTrees int
	// Indexes are the static attributes to index.
	Indexes []IndexSpec
	// IndexPositions adds an R-tree region summary per table entry.
	IndexPositions bool
}

// NewSubstrate builds the substrate over topo. Tree 0 is rooted at the
// base station; each successive root is the node maximizing the minimum
// hop distance to all existing roots ("choose a new root node furthest
// from any existing roots"). When net is non-nil, construction and summary
// dissemination traffic is charged as control traffic.
func NewSubstrate(topo *topology.Topology, opts Options, net *sim.Network) *Substrate {
	if opts.NumTrees < 1 {
		opts.NumTrees = 1
	}
	s := &Substrate{
		Topo:     topo,
		specs:    opts.Indexes,
		indexPos: opts.IndexPositions,
	}
	if opts.IndexPositions {
		s.pos = make([]geom.Point, topo.N())
		for i := range s.pos {
			s.pos[i] = topo.Pos(topology.NodeID(i))
		}
	}
	roots := []topology.NodeID{topology.Base}
	depths := make([][]int, 0, opts.NumTrees)
	d0, _ := topo.BFS(topology.Base)
	depths = append(depths, d0)
	for len(roots) < opts.NumTrees {
		// Farthest-point selection on hop distance.
		best, bestMin := topology.NodeID(-1), -1
		for i := 0; i < topo.N(); i++ {
			id := topology.NodeID(i)
			minD := 1 << 30
			for _, dd := range depths {
				if dd[id] < minD {
					minD = dd[id]
				}
			}
			if minD > bestMin {
				best, bestMin = id, minD
			}
		}
		roots = append(roots, best)
		db, _ := topo.BFS(best)
		depths = append(depths, db)
	}
	for _, r := range roots {
		s.Trees = append(s.Trees, BuildTree(topo, r, net))
	}
	s.buildTables(net)
	return s
}

// depthOrder returns the tree's nodes deepest-first, so children are
// summarized before parents in a single pass.
func (s *Substrate) depthOrder(tree *Tree) []topology.NodeID {
	order := make([]topology.NodeID, s.Topo.N())
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := tree.Depth[order[a]], tree.Depth[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// buildTables computes, bottom-up per tree, the subtree summaries for every
// node, charging the summary bytes shipped from each child to its parent.
func (s *Substrate) buildTables(net *sim.Network) {
	s.tables = make([][]Entry, len(s.Trees))
	for ti, tree := range s.Trees {
		tbl := make([]Entry, s.Topo.N())
		// Process nodes deepest-first so children are summarized before
		// parents.
		order := s.depthOrder(tree)
		for _, id := range order {
			e := Entry{Scalars: make(map[string]summary.Summary, len(s.specs))}
			for _, spec := range s.specs {
				sm := s.newSummary(spec)
				sm.AddValue(spec.Values[id])
				e.Scalars[spec.Attr] = sm
			}
			if s.indexPos {
				e.Region = summary.NewRegion()
				e.Region.AddPoint(s.pos[id])
			}
			for _, c := range tree.Children[id] {
				child := tbl[c]
				for attr, sm := range e.Scalars {
					sm.Merge(child.Scalars[attr])
				}
				if s.indexPos {
					e.Region.Merge(child.Region)
				}
			}
			tbl[id] = e
		}
		s.tables[ti] = tbl
		if net != nil {
			// Each non-root node ships its summary entry to its parent
			// once during construction.
			for i := 0; i < s.Topo.N(); i++ {
				id := topology.NodeID(i)
				if p := tree.Parent[id]; p >= 0 {
					size := 0
					for _, sm := range tbl[id].Scalars {
						size += sm.SizeBytes()
					}
					if s.indexPos {
						size += tbl[id].Region.SizeBytes()
					}
					net.Transfer(Path{id, p}, size, sim.Control, sim.Flow{})
				}
			}
		}
	}
}

func (s *Substrate) newSummary(spec IndexSpec) summary.Summary {
	switch spec.Kind {
	case IntervalSummary:
		return summary.NewInterval()
	case HistogramSummary:
		b := spec.Buckets
		if b <= 0 {
			b = 16
		}
		return summary.NewHistogram(spec.Lo, spec.Hi, b)
	default:
		return summary.DefaultBloom()
	}
}

// HasIndex reports whether attr is already indexed in the routing tables.
func (s *Substrate) HasIndex(attr string) bool {
	for _, spec := range s.specs {
		if spec.Attr == attr {
			return true
		}
	}
	return false
}

// HasPositionIndex reports whether R-tree region summaries are present.
func (s *Substrate) HasPositionIndex() bool { return s.indexPos }

// ExtendIndexes adds any not-yet-indexed attributes from specs to every
// tree's routing tables, charging the incremental dissemination — each
// non-root node ships only the NEW summaries to its parent — as control
// traffic when net is non-nil. A static attribute's values are a property
// of the deployment, not of any one query, so attributes already indexed
// are skipped entirely: the first query to index an attribute pays its
// dissemination, later queries share the table for free. This is the
// multi-query traffic-sharing path used by internal/engine; the routing
// trees themselves are never rebuilt.
func (s *Substrate) ExtendIndexes(specs []IndexSpec, net *sim.Network) {
	var fresh []IndexSpec
	for _, spec := range specs {
		if !s.HasIndex(spec.Attr) {
			fresh = append(fresh, spec)
			s.specs = append(s.specs, spec)
		}
	}
	if len(fresh) == 0 {
		return
	}
	for ti, tree := range s.Trees {
		tbl := s.tables[ti]
		for _, id := range s.depthOrder(tree) {
			e := &tbl[id]
			if e.Scalars == nil {
				e.Scalars = make(map[string]summary.Summary, len(fresh))
			}
			for _, spec := range fresh {
				sm := s.newSummary(spec)
				sm.AddValue(spec.Values[id])
				for _, c := range tree.Children[id] {
					sm.Merge(tbl[c].Scalars[spec.Attr])
				}
				e.Scalars[spec.Attr] = sm
			}
		}
		if net != nil {
			for i := 0; i < s.Topo.N(); i++ {
				id := topology.NodeID(i)
				if p := tree.Parent[id]; p >= 0 {
					size := 0
					for _, spec := range fresh {
						size += tbl[id].Scalars[spec.Attr].SizeBytes()
					}
					net.Transfer(Path{id, p}, size, sim.Control, sim.Flow{})
				}
			}
		}
	}
}

// ExtendPositionIndex adds the R-tree region summaries to every table
// entry (Query 3's geometric search), charging their dissemination like
// ExtendIndexes. A no-op when positions are already indexed.
func (s *Substrate) ExtendPositionIndex(net *sim.Network) {
	if s.indexPos {
		return
	}
	s.indexPos = true
	s.pos = make([]geom.Point, s.Topo.N())
	for i := range s.pos {
		s.pos[i] = s.Topo.Pos(topology.NodeID(i))
	}
	for ti, tree := range s.Trees {
		tbl := s.tables[ti]
		for _, id := range s.depthOrder(tree) {
			r := summary.NewRegion()
			r.AddPoint(s.pos[id])
			for _, c := range tree.Children[id] {
				r.Merge(tbl[c].Region)
			}
			tbl[id].Region = r
		}
		if net != nil {
			for i := 0; i < s.Topo.N(); i++ {
				id := topology.NodeID(i)
				if p := tree.Parent[id]; p >= 0 {
					net.Transfer(Path{id, p}, tbl[id].Region.SizeBytes(), sim.Control, sim.Flow{})
				}
			}
		}
	}
}

// Entry returns the routing-table entry for node id in tree ti.
func (s *Substrate) Entry(ti int, id topology.NodeID) *Entry { return &s.tables[ti][id] }

// Pos returns node positions when position indexing is on (nil otherwise).
func (s *Substrate) Pos(id topology.NodeID) geom.Point {
	if s.pos != nil {
		return s.pos[id]
	}
	return s.Topo.Pos(id)
}

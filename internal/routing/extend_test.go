package routing

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// extendSpecs builds two small index specs over deterministic per-node
// values.
func extendSpecs(n int) []IndexSpec {
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 13)
		b[i] = int32((i * 7) % 29)
	}
	return []IndexSpec{
		{Attr: "alpha", Kind: BloomSummary, Values: a},
		{Attr: "beta", Kind: BloomSummary, Values: b},
	}
}

// TestExtendIndexesMatchesConstruction: extending an index-less substrate
// must produce exactly the routing tables a substrate built with those
// indexes up front has — same summaries, same membership answers.
func TestExtendIndexesMatchesConstruction(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 80, 1)
	specs := extendSpecs(topo.N())

	upfront := NewSubstrate(topo, Options{NumTrees: 3, Indexes: specs}, nil)
	extended := NewSubstrate(topo, Options{NumTrees: 3}, nil)
	extended.ExtendIndexes(specs, nil)

	for _, spec := range specs {
		if !extended.HasIndex(spec.Attr) {
			t.Fatalf("attr %s not indexed after extension", spec.Attr)
		}
		for ti := range upfront.Trees {
			for i := 0; i < topo.N(); i++ {
				id := topology.NodeID(i)
				a := upfront.Entry(ti, id).ScalarByName(spec.Attr)
				b := extended.Entry(ti, id).ScalarByName(spec.Attr)
				if a.SizeBytes() != b.SizeBytes() {
					t.Fatalf("tree %d node %d attr %s: size %d != %d", ti, id, spec.Attr, a.SizeBytes(), b.SizeBytes())
				}
				for v := int32(0); v < 32; v++ {
					if a.MayContain(v) != b.MayContain(v) {
						t.Fatalf("tree %d node %d attr %s value %d: membership differs", ti, id, spec.Attr, v)
					}
				}
			}
		}
	}
}

// TestExtendIndexesCharges: extension ships each new summary to the parent
// once per tree; re-extending the same attribute is free.
func TestExtendIndexesCharges(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 60, 1)
	specs := extendSpecs(topo.N())
	net := sim.NewNetwork(topo, 0, 1)
	s := NewSubstrate(topo, Options{NumTrees: 2}, nil)

	s.ExtendIndexes(specs[:1], net)
	first := net.Metrics().TotalBytes
	if first <= 0 {
		t.Fatal("extension charged nothing")
	}
	s.ExtendIndexes(specs[:1], net)
	if net.Metrics().TotalBytes != first {
		t.Fatal("re-extending an indexed attribute charged traffic")
	}
	s.ExtendIndexes(specs, net)
	second := net.Metrics().TotalBytes
	if second <= first {
		t.Fatal("new attribute charged nothing")
	}
	// Dissemination is incremental: adding beta after alpha costs no more
	// headers than adding beta alone would.
	net2 := sim.NewNetwork(topo, 0, 1)
	s2 := NewSubstrate(topo, Options{NumTrees: 2}, nil)
	s2.ExtendIndexes(specs[1:], net2)
	if got, want := second-first, net2.Metrics().TotalBytes; got != want {
		t.Fatalf("incremental beta cost %d, standalone %d", got, want)
	}
}

// TestExtendPositionIndex: extension adds region summaries identical to
// construction-time indexing and is idempotent.
func TestExtendPositionIndex(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 60, 1)
	upfront := NewSubstrate(topo, Options{NumTrees: 2, IndexPositions: true}, nil)
	net := sim.NewNetwork(topo, 0, 1)
	ext := NewSubstrate(topo, Options{NumTrees: 2}, nil)
	ext.ExtendPositionIndex(net)
	if !ext.HasPositionIndex() {
		t.Fatal("positions not indexed")
	}
	charged := net.Metrics().TotalBytes
	if charged <= 0 {
		t.Fatal("position extension charged nothing")
	}
	ext.ExtendPositionIndex(net)
	if net.Metrics().TotalBytes != charged {
		t.Fatal("re-extending positions charged traffic")
	}
	for ti := range upfront.Trees {
		for i := 0; i < topo.N(); i++ {
			id := topology.NodeID(i)
			a, b := upfront.Entry(ti, id).Region(), ext.Entry(ti, id).Region()
			if a.SizeBytes() != b.SizeBytes() {
				t.Fatalf("tree %d node %d: region size %d != %d", ti, id, a.SizeBytes(), b.SizeBytes())
			}
			if !a.MayContainWithin(topo.Pos(id), 0.01) || !b.MayContainWithin(topo.Pos(id), 0.01) {
				t.Fatalf("tree %d node %d: region misses own position", ti, id)
			}
		}
	}
}

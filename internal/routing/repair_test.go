package routing

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// forkTopology builds a 5-node layout where the path 0-1-2 has a one-hop
// detour through 3, and 4 is an extra neighbour of 0 and 3:
//
//	0 —— 1 —— 2      0-3, 3-2, 3-1 links exist; 4 links to 0 and 3.
//	  \   |  /
//	    \ 3 /
//	4 —— /
func forkTopology(t *testing.T) *topology.Topology {
	t.Helper()
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 0.8}, {X: 0, Y: 1.2}}
	topo := topology.FromPositions(pos, 1.3)
	for _, link := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 3}, {3, 2}, {3, 1}, {0, 4}, {3, 4}} {
		if !topo.IsNeighbor(link[0], link[1]) {
			t.Fatalf("expected link %v missing", link)
		}
	}
	if topo.IsNeighbor(0, 2) {
		t.Fatal("unexpected 0-2 link")
	}
	return topo
}

// TestRepairProbesToDeadNeighboursCharged is the traffic-accounting
// regression for boundedDetour: an exploration probe toward a failed node
// is a real transmission (it just gets no ack), so it must be charged with
// the full retry bundle, not silently skipped.
func TestRepairProbesToDeadNeighboursCharged(t *testing.T) {
	topo := forkTopology(t)
	net := sim.NewNetwork(topo, 0, 1)
	net.Fail(1)
	net.Fail(4)
	repaired, ok := RepairPath(topo, net, Path{0, 1, 2}, DefaultRepairLimit)
	if !ok {
		t.Fatal("detour through 3 exists but repair failed")
	}
	if repaired.Contains(1) || repaired.Contains(4) {
		t.Fatalf("repaired path %v uses a failed node", repaired)
	}
	m := net.Metrics()
	// The BFS from 0 probes, in neighbour order: 0->1 (dead), 0->3 (live),
	// 0->4 (dead), then from 3: 3->1 (dead, never marked seen), 3->2
	// (found). Dead probes burn 1+MaxRetries attempts each; live probes
	// one (lossless run).
	deadProbes, liveProbes := int64(3), int64(2)
	wantMsgs := deadProbes*int64(1+net.MaxRetries) + liveProbes
	if m.TotalMessages != wantMsgs {
		t.Fatalf("TotalMessages = %d, want %d (dead probes must be charged)", m.TotalMessages, wantMsgs)
	}
	if m.Drops != deadProbes {
		t.Fatalf("Drops = %d, want %d", m.Drops, deadProbes)
	}
}

func TestRepairMultipleFailuresOnOnePath(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	tree := BuildTree(topo, topology.Base, nil)
	var path Path
	for i := topo.N() - 1; i > 0; i-- {
		if p := tree.PathToRoot(topology.NodeID(i)); p.Hops() >= 6 {
			path = p
			break
		}
	}
	if path == nil {
		t.Fatal("no long path found")
	}
	net := sim.NewNetwork(topo, 0, 1)
	victims := []topology.NodeID{path[1], path[3], path[len(path)-2]}
	for _, v := range victims {
		net.Fail(v)
	}
	repaired, ok := RepairPath(topo, net, path, DefaultRepairLimit)
	if !ok {
		t.Fatal("multi-failure repair failed on a grid")
	}
	assertPathClean(t, topo, net, repaired, path[0], path[len(path)-1])
}

func TestRepairBothEndpointsFailed(t *testing.T) {
	topo := forkTopology(t)
	net := sim.NewNetwork(topo, 0, 1)
	net.Fail(0)
	net.Fail(2)
	if _, ok := RepairPath(topo, net, Path{0, 1, 2}, DefaultRepairLimit); ok {
		t.Fatal("repaired a path with both endpoints failed")
	}
	net2 := sim.NewNetwork(topo, 0, 1)
	net2.Fail(0)
	if _, ok := RepairPath(topo, net2, Path{0, 1, 2}, DefaultRepairLimit); ok {
		t.Fatal("repaired a path whose source endpoint failed")
	}
}

// assertPathClean checks link-validity, loop-freedom, endpoint
// preservation and dead-node avoidance.
func assertPathClean(t *testing.T, topo *topology.Topology, net *sim.Network, p Path, src, dst topology.NodeID) {
	t.Helper()
	if len(p) == 0 || p[0] != src || p[len(p)-1] != dst {
		t.Fatalf("path %v endpoints != (%d,%d)", p, src, dst)
	}
	seen := map[topology.NodeID]bool{}
	for i, id := range p {
		if seen[id] {
			t.Fatalf("path %v revisits node %d", p, id)
		}
		seen[id] = true
		if !net.Alive(id) {
			t.Fatalf("path %v uses failed node %d", p, id)
		}
		if i > 0 && !topo.IsNeighbor(p[i-1], id) {
			t.Fatalf("path %v not link-valid at hop %d", p, i)
		}
	}
}

// TestRepairThenShortcutProperty: under randomized failures, every
// successful repair — and its Shortcut compression — must be link-valid,
// loop-free, endpoint-preserving and dead-node-free.
func TestRepairThenShortcutProperty(t *testing.T) {
	for _, kind := range []topology.Kind{topology.Grid, topology.ModerateRandom} {
		topo := topology.Generate(kind, 100, 5)
		tree := BuildTree(topo, topology.Base, nil)
		src := rng.New(99).Split(uint64(kind))
		repairs := 0
		for trial := 0; trial < 60; trial++ {
			a := topology.NodeID(1 + src.Intn(topo.N()-1))
			b := topology.NodeID(1 + src.Intn(topo.N()-1))
			if a == b {
				continue
			}
			path := tree.TreePath(a, b)
			if path.Hops() < 3 {
				continue
			}
			net := sim.NewNetwork(topo, 0, uint64(trial)+1)
			// Fail 1-3 random nodes, possibly on the path, never endpoints.
			for k := src.Intn(3) + 1; k > 0; k-- {
				v := path[1+src.Intn(len(path)-2)]
				if src.Bool(0.5) {
					v = topology.NodeID(src.Intn(topo.N()))
				}
				if v != a && v != b {
					net.Fail(v)
				}
			}
			repaired, ok := RepairPath(topo, net, path, DefaultRepairLimit)
			if !ok {
				continue
			}
			repairs++
			assertPathClean(t, topo, net, repaired, a, b)
			sc := Shortcut(topo, repaired)
			assertPathClean(t, topo, net, sc, a, b)
			if sc.Hops() > repaired.Hops() {
				t.Fatalf("shortcut lengthened repaired path: %d -> %d", repaired.Hops(), sc.Hops())
			}
		}
		if repairs == 0 {
			t.Fatalf("%v: property test exercised no successful repairs", kind)
		}
	}
}

// TestRepairerMatchesRepairPath: the memoizing Repairer must produce the
// exact paths RepairPath produces.
func TestRepairerMatchesRepairPath(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	tree := BuildTree(topo, topology.Base, nil)
	net := sim.NewNetwork(topo, 0, 1)
	var victim topology.NodeID = -1
	var paths []Path
	for i := topo.N() - 1; i > 0; i-- {
		p := tree.PathToRoot(topology.NodeID(i))
		if p.Hops() < 4 {
			continue
		}
		if victim < 0 {
			victim = p[2]
		}
		if p.Contains(victim) && p[0] != victim {
			paths = append(paths, p)
		}
		if len(paths) == 3 {
			break
		}
	}
	if victim < 0 || len(paths) == 0 {
		t.Fatal("no usable paths")
	}
	net.Fail(victim)
	rp := NewRepairer(topo, net, DefaultRepairLimit)
	for _, p := range paths {
		// Run the reference on a private network with the same failure.
		failedNet := sim.NewNetwork(topo, 0, 1)
		failedNet.Fail(victim)
		want, wantOK := RepairPath(topo, failedNet, p, DefaultRepairLimit)
		got, gotOK := rp.Repair(p)
		if wantOK != gotOK {
			t.Fatalf("Repairer ok=%v, RepairPath ok=%v", gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		if len(want) != len(got) {
			t.Fatalf("Repairer path %v != RepairPath %v", got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("Repairer path %v != RepairPath %v", got, want)
			}
		}
	}
}

// TestRepairerChargesExplorationOnce: two paths broken at the same gap
// explore once; the second repair reuses the memoized detour for free.
func TestRepairerChargesExplorationOnce(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	tree := BuildTree(topo, topology.Base, nil)
	// Find two distinct deep nodes routing through a common grandparent
	// chain so both paths contain the same (pred, victim, succ) triple.
	var p1, p2 Path
	var victim topology.NodeID = -1
	for i := topo.N() - 1; i > 0 && p2 == nil; i-- {
		p := tree.PathToRoot(topology.NodeID(i))
		if p.Hops() < 4 {
			continue
		}
		if victim < 0 {
			p1, victim = p, p[len(p)-3]
			continue
		}
		if p[0] != p1[0] && p.Contains(victim) && p[len(p)-1] == p1[len(p1)-1] {
			p2 = p
		}
	}
	if p2 == nil {
		t.Skip("grid produced no two paths sharing the victim hop")
	}
	net := sim.NewNetwork(topo, 0, 1)
	net.Fail(victim)
	rp := NewRepairer(topo, net, DefaultRepairLimit)
	if _, ok := rp.Repair(p1); !ok {
		t.Fatal("first repair failed")
	}
	after1 := net.Metrics().TotalBytes
	if after1 == 0 {
		t.Fatal("first repair charged nothing")
	}
	if _, ok := rp.Repair(p2); !ok {
		t.Fatal("second repair failed")
	}
	if got := net.Metrics().TotalBytes; got != after1 {
		t.Fatalf("second repair over the same gap re-charged exploration: %d -> %d bytes", after1, got)
	}
	rp.Reset()
	if _, ok := rp.Repair(p2); !ok {
		t.Fatal("post-Reset repair failed")
	}
	if got := net.Metrics().TotalBytes; got == after1 {
		t.Fatal("Reset did not drop the memoized detours")
	}
}

// TestRebuildTreeLiveRoutesAroundFailure: after an interior failure the
// rebuilt tree routes every still-reachable node around the dead one, and
// cut-off nodes keep their stale (charged-but-dropped) parent edge.
func TestRebuildTreeLiveRoutesAroundFailure(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	old := BuildTree(topo, topology.Base, nil)
	live := topology.NewLiveness(topo.N())
	// Fail an interior node with children.
	var victim topology.NodeID = -1
	for i := 1; i < topo.N(); i++ {
		if len(old.Children[i]) > 0 && old.Depth[i] >= 2 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no interior node")
	}
	live.Fail(victim)
	nt := RebuildTreeLive(topo, old, old.Root, nil, live)
	reachable, _ := topo.BFSLive(topology.Base, live)
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		p := nt.PathToRoot(id)
		if reachable[id] >= 0 {
			if p[len(p)-1] != topology.Base {
				t.Fatalf("reachable node %d path %v does not end at base", id, p)
			}
			if p.Contains(victim) && id != victim {
				t.Fatalf("reachable node %d still routes through failed %d: %v", id, victim, p)
			}
			for k := 1; k < len(p); k++ {
				if !topo.IsNeighbor(p[k-1], p[k]) {
					t.Fatalf("rebuilt path %v not link-valid", p)
				}
			}
		} else if id != victim && nt.Parent[id] != old.Parent[id] {
			t.Fatalf("cut node %d was rewired (%d -> %d) instead of keeping its stale parent",
				id, old.Parent[id], nt.Parent[id])
		}
		// Depth invariant bottom-up passes rely on.
		if pa := nt.Parent[id]; pa >= 0 && nt.Depth[id] != nt.Depth[pa]+1 {
			t.Fatalf("depth inconsistency at %d: %d vs parent %d", id, nt.Depth[id], nt.Depth[pa])
		}
	}
}

// TestRepairTreesRebuildsAffectedTreesOnly: a failed leaf forces no
// rebuild; a failed interior node rebuilds the trees it serves, charges
// shared traffic, and heals PathToBase for the failed node's subtree.
func TestRepairTreesRebuildsAffectedTreesOnly(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	live := topology.NewLiveness(topo.N())
	net := sim.NewSharedNetwork(topo, 0, 1, live)
	vals := make([]int32, topo.N())
	for i := range vals {
		vals[i] = int32(i % 10)
	}
	s := NewSubstrate(topo, Options{
		NumTrees: 2,
		Indexes:  []IndexSpec{{Attr: "k", Kind: BloomSummary, Values: vals}},
	}, nil)
	// A leaf in every tree: no rebuild needed.
	var leaf topology.NodeID = -1
	for i := 1; i < topo.N(); i++ {
		if len(s.Trees[0].Children[i]) == 0 && len(s.Trees[1].Children[i]) == 0 {
			leaf = topology.NodeID(i)
			break
		}
	}
	if leaf >= 0 {
		live.Fail(leaf)
		if got := s.RepairTrees(net, live, []topology.NodeID{leaf}); got != 0 {
			t.Fatalf("leaf failure rebuilt %d trees, want 0", got)
		}
		live.Revive(leaf)
	}
	// An interior node of tree 0 with a subtree behind it.
	var victim, probe topology.NodeID = -1, -1
	for i := 1; i < topo.N(); i++ {
		if cs := s.Trees[0].Children[i]; len(cs) > 0 && s.Trees[0].Depth[i] >= 1 {
			victim, probe = topology.NodeID(i), cs[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no interior node in tree 0")
	}
	live.Fail(victim)
	before := net.Metrics().TotalBytes
	if got := s.RepairTrees(net, live, []topology.NodeID{victim}); got < 1 {
		t.Fatalf("interior failure rebuilt %d trees, want >= 1", got)
	}
	if net.Metrics().TotalBytes <= before {
		t.Fatal("tree rebuild charged no shared traffic")
	}
	reachable, _ := topo.BFSLive(topology.Base, live)
	if reachable[probe] >= 0 {
		p := s.PathToBase(probe)
		if p.Contains(victim) {
			t.Fatalf("post-rebuild PathToBase(%d) still routes through failed %d: %v", probe, victim, p)
		}
		if p[len(p)-1] != topology.Base {
			t.Fatalf("post-rebuild PathToBase(%d) = %v does not reach the base", probe, p)
		}
	}
}

package routing

import (
	"sort"

	"repro/internal/topology"
)

// RegionalIndex is the second level of the two-level regional substrate:
// over the topology's 4x4 region grid it keeps each region's members in
// (base-tree depth descending, id ascending) order — the exact priority
// farthestAliveRoot scans for. Re-picking a root after a dead-root failure
// then compares at most one cursor per region (each cursor skipping only
// its region's dead prefix) instead of walking all n nodes: cross-region
// repair never descends into intra-region structure. The ordering is
// refreshed lazily when the base tree's generation moves, so steady-state
// repairs pay nothing.
type RegionalIndex struct {
	grid *topology.RegionGrid
	// order[r] holds region r's members, (base depth desc, id asc).
	order [topology.NumRegions][]topology.NodeID
	gen   uint64
	built bool
	base  *Tree
}

// NewRegionalIndex builds the region partition for topo; the per-region
// depth ordering is filled by Refresh.
func NewRegionalIndex(topo *topology.Topology) *RegionalIndex {
	return &RegionalIndex{grid: topology.NewRegionGrid(topo)}
}

// Grid exposes the underlying region partition.
func (ri *RegionalIndex) Grid() *topology.RegionGrid { return ri.grid }

// Refresh re-sorts the per-region member lists against base's current
// depths when gen has moved past the generation last sorted (or the base
// tree was swapped by a full rebuild). Sorting is per-region, so the work
// parallels the region sizes, and it only runs when churn actually changed
// the base tree since the last dead-root repair.
func (ri *RegionalIndex) Refresh(base *Tree, gen uint64) {
	if ri.built && ri.gen == gen && ri.base == base {
		return
	}
	for r := 0; r < topology.NumRegions; r++ {
		m := ri.grid.Members(r)
		ord := ri.order[r]
		if cap(ord) < len(m) {
			ord = make([]topology.NodeID, len(m))
		}
		ord = ord[:len(m)]
		copy(ord, m)
		sort.Slice(ord, func(a, b int) bool {
			da, db := base.Depth[ord[a]], base.Depth[ord[b]]
			if da != db {
				return da > db
			}
			return ord[a] < ord[b]
		})
		ri.order[r] = ord
	}
	ri.gen = gen
	ri.base = base
	ri.built = true
}

// FarthestAliveRoot returns the alive node deepest in the base tree (ties
// to the lowest node ID) — byte-identical to the O(n) reference scan — by
// comparing each region's head: the first alive member in its depth order.
func (ri *RegionalIndex) FarthestAliveRoot(live *topology.Liveness) topology.NodeID {
	best, bestDepth := topology.NodeID(-1), -1
	for r := 0; r < topology.NumRegions; r++ {
		for _, id := range ri.order[r] {
			if !live.Alive(id) {
				continue
			}
			d := ri.base.Depth[id]
			if d > bestDepth || (d == bestDepth && id < best) {
				best, bestDepth = id, d
			}
			break
		}
	}
	return best
}

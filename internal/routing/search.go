package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Matcher guides the content-addressed path search. MatchNode decides
// whether a visited node is a sought target; MayMatchSubtree consults a
// routing-table entry to decide whether the subtree below it could contain
// targets (pruning). MayMatchSubtree must never return false for a subtree
// containing a matching node — summaries guarantee no false negatives.
type Matcher interface {
	MatchNode(id topology.NodeID) bool
	MayMatchSubtree(e *Entry) bool
}

// MatchAll is a Matcher that matches a fixed target set with no pruning —
// used to model substrates without semantic summaries (e.g. single-tree
// flooding baselines) and in tests.
type MatchAll struct{ Targets map[topology.NodeID]bool }

// MatchNode implements Matcher.
func (m MatchAll) MatchNode(id topology.NodeID) bool { return m.Targets[id] }

// MayMatchSubtree implements Matcher.
func (m MatchAll) MayMatchSubtree(*Entry) bool { return true }

// probeKeyBytes is the fixed part of an exploration probe: query id plus
// the join-key value being sought.
const probeKeyBytes = 2 * sim.ValueBytes

// FindTargets runs the paper's exploration from src: in every tree, search
// downward through src's subtree, then ascend hop by hop toward the root,
// searching downward through each ancestor's other subtrees ("it emphasizes
// exploring from a node down its subtrees, but for completeness also
// searches up each subtree. A search ascending a subtree can then search
// downwards from each node, but never go upwards again").
//
// It returns, per discovered target, the fewest-hop path found across all
// trees. When net is non-nil every probe hop and every response (reversed
// path vector back to src) is charged as control traffic, and failed nodes
// are not traversed.
func (s *Substrate) FindTargets(src topology.NodeID, m Matcher, net *sim.Network) map[topology.NodeID]Path {
	found := make(map[topology.NodeID]Path)
	record := func(target topology.NodeID, p Path) {
		if target == src {
			return
		}
		if prev, ok := found[target]; !ok || p.Hops() < prev.Hops() {
			found[target] = p.Clone()
		}
	}
	for ti, tree := range s.Trees {
		s.searchTree(ti, tree, src, m, net, record)
	}
	// Charge one response per found target: the reversed path vector sent
	// back to src so it can route directly afterwards. Iterate in sorted
	// order so the loss process consumes draws deterministically.
	if net != nil {
		targets := make([]topology.NodeID, 0, len(found))
		for target := range found {
			targets = append(targets, target)
		}
		sortNodeIDs(targets)
		for _, target := range targets {
			p := found[target]
			net.Transfer(p.Reverse(), probeKeyBytes+p.Hops()*sim.PathEntryBytes, sim.Control,
				sim.Flow{Src: target, Dst: src})
		}
	}
	return found
}

func (s *Substrate) searchTree(ti int, tree *Tree, src topology.NodeID, m Matcher, net *sim.Network, record func(topology.NodeID, Path)) {
	alive := func(id topology.NodeID) bool { return net == nil || net.Alive(id) }
	if !alive(src) {
		return
	}
	// Phase 1: descend through src's own subtree.
	s.descend(ti, tree, src, Path{src}, m, net, record, alive)
	// Phase 2: ascend toward the root, descending into each ancestor's
	// other subtrees.
	up := Path{src}
	cur := src
	for tree.Parent[cur] >= 0 {
		parent := tree.Parent[cur]
		if !alive(parent) {
			break
		}
		if net != nil {
			net.Transfer(Path{cur, parent}, probeKeyBytes+up.Hops()*sim.PathEntryBytes, sim.Control, sim.Flow{})
		}
		up = append(up, parent)
		if m.MatchNode(parent) {
			record(parent, up)
		}
		for _, sib := range tree.Children[parent] {
			if sib == cur {
				continue
			}
			if !m.MayMatchSubtree(s.Entry(ti, sib)) {
				continue
			}
			if !alive(sib) {
				continue
			}
			if net != nil {
				net.Transfer(Path{parent, sib}, probeKeyBytes+up.Hops()*sim.PathEntryBytes, sim.Control, sim.Flow{})
			}
			branch := append(up.Clone(), sib)
			if m.MatchNode(sib) {
				record(sib, branch)
			}
			s.descend(ti, tree, sib, branch, m, net, record, alive)
		}
		cur = parent
	}
}

// descend explores the subtree below node along tree edges, pruning with
// routing-table summaries, extending prefix (which ends at node).
func (s *Substrate) descend(ti int, tree *Tree, node topology.NodeID, prefix Path, m Matcher, net *sim.Network, record func(topology.NodeID, Path), alive func(topology.NodeID) bool) {
	for _, c := range tree.Children[node] {
		if !m.MayMatchSubtree(s.Entry(ti, c)) {
			continue
		}
		if !alive(c) {
			continue
		}
		if net != nil {
			net.Transfer(Path{node, c}, probeKeyBytes+prefix.Hops()*sim.PathEntryBytes, sim.Control, sim.Flow{})
		}
		p := append(prefix.Clone(), c)
		if m.MatchNode(c) {
			record(c, p)
		}
		s.descend(ti, tree, c, p, m, net, record, alive)
	}
}

func sortNodeIDs(xs []topology.NodeID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BestTreePath returns the fewest-hop tree path between a and b across the
// substrate's trees — the path-quality primitive behind Figures 16-18.
func (s *Substrate) BestTreePath(a, b topology.NodeID) Path {
	var best Path
	for _, tree := range s.Trees {
		p := tree.TreePath(a, b)
		if best == nil || p.Hops() < best.Hops() {
			best = p
		}
	}
	return best
}

// PathToBase returns the parent chain in tree 0 (the base-rooted tree) —
// how every algorithm routes to the base station.
func (s *Substrate) PathToBase(id topology.NodeID) Path {
	return s.Trees[0].PathToRoot(id)
}

// DepthToBase returns the hop distance to the base station in tree 0 — the
// quantity every node is assumed to know (Appendix C).
func (s *Substrate) DepthToBase(id topology.NodeID) int {
	return s.Trees[0].Depth[id]
}

package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Matcher guides the content-addressed path search. MatchNode decides
// whether a visited node is a sought target; MayMatchSubtree consults a
// routing-table entry view to decide whether the subtree below it could
// contain targets (pruning). MayMatchSubtree must never return false for a
// subtree containing a matching node — summaries guarantee no false
// negatives. Matchers should resolve attribute columns once at
// construction (Substrate.ColumnIndex) so the per-edge pruning test is a
// slice index, not a name lookup.
type Matcher interface {
	MatchNode(id topology.NodeID) bool
	MayMatchSubtree(e Entry) bool
}

// MatchAll is a Matcher that matches a fixed target set with no pruning —
// used to model substrates without semantic summaries (e.g. single-tree
// flooding baselines) and in tests.
type MatchAll struct{ Targets map[topology.NodeID]bool }

// MatchNode implements Matcher.
func (m MatchAll) MatchNode(id topology.NodeID) bool { return m.Targets[id] }

// MayMatchSubtree implements Matcher.
func (m MatchAll) MayMatchSubtree(Entry) bool { return true }

// probeKeyBytes is the fixed part of an exploration probe: query id plus
// the join-key value being sought.
const probeKeyBytes = 2 * sim.ValueBytes

// FindTargets runs the paper's exploration from src: in every tree, search
// downward through src's subtree, then ascend hop by hop toward the root,
// searching downward through each ancestor's other subtrees ("it emphasizes
// exploring from a node down its subtrees, but for completeness also
// searches up each subtree. A search ascending a subtree can then search
// downwards from each node, but never go upwards again").
//
// It returns, per discovered target, the fewest-hop path found across all
// trees. When net is non-nil every probe hop and every response (reversed
// path vector back to src) is charged as control traffic, and failed nodes
// are not traversed.
func (s *Substrate) FindTargets(src topology.NodeID, m Matcher, net *sim.Network) map[topology.NodeID]Path {
	found := make(map[topology.NodeID]Path)
	record := func(target topology.NodeID, p Path) {
		if target == src {
			return
		}
		if prev, ok := found[target]; !ok || p.Hops() < prev.Hops() {
			found[target] = p.Clone()
		}
	}
	for ti, tree := range s.Trees {
		s.searchTree(ti, tree, src, m, net, record)
	}
	// Charge one response per found target: the reversed path vector sent
	// back to src so it can route directly afterwards. Iterate in sorted
	// order so the loss process consumes draws deterministically.
	if net != nil {
		targets := make([]topology.NodeID, 0, len(found))
		//aspen:orderinvariant keys collected then sorted before use
		for target := range found {
			targets = append(targets, target)
		}
		SortNodeIDs(targets)
		for _, target := range targets {
			p := found[target]
			net.Transfer(p.Reverse(), probeKeyBytes+p.Hops()*sim.PathEntryBytes, sim.Control,
				sim.Flow{Src: target, Dst: src})
		}
	}
	return found
}

// search is the per-FindTargets scratch state: one growable path buffer
// shared by the whole traversal (record clones before retaining, so pushing
// and popping hops on the shared buffer is safe) and one 2-element hop
// buffer for probe charges. Both exist so a search allocates O(found)
// instead of O(visited).
type search struct {
	s      *Substrate
	ti     int
	tree   *Tree
	m      Matcher
	net    *sim.Network
	record func(topology.NodeID, Path)
	buf    Path
	hop    [2]topology.NodeID
}

func (w *search) alive(id topology.NodeID) bool { return w.net == nil || w.net.Alive(id) }

// charge accounts one probe hop from -> to carrying the current path vector.
func (w *search) charge(from, to topology.NodeID) {
	if w.net != nil {
		w.hop[0], w.hop[1] = from, to
		w.net.Transfer(w.hop[:], probeKeyBytes+w.buf.Hops()*sim.PathEntryBytes, sim.Control, sim.Flow{})
	}
}

func (s *Substrate) searchTree(ti int, tree *Tree, src topology.NodeID, m Matcher, net *sim.Network, record func(topology.NodeID, Path)) {
	w := &search{s: s, ti: ti, tree: tree, m: m, net: net, record: record, buf: Path{src}}
	if !w.alive(src) {
		return
	}
	// Phase 1: descend through src's own subtree.
	w.descend(src)
	// Phase 2: ascend toward the root, descending into each ancestor's
	// other subtrees.
	cur := src
	for tree.Parent[cur] >= 0 {
		parent := tree.Parent[cur]
		if !w.alive(parent) {
			break
		}
		w.charge(cur, parent)
		w.buf = append(w.buf, parent)
		if m.MatchNode(parent) {
			record(parent, w.buf)
		}
		for _, sib := range tree.Children[parent] {
			if sib == cur {
				continue
			}
			if !m.MayMatchSubtree(s.Entry(ti, sib)) {
				continue
			}
			if !w.alive(sib) {
				continue
			}
			w.charge(parent, sib)
			w.buf = append(w.buf, sib)
			if m.MatchNode(sib) {
				record(sib, w.buf)
			}
			w.descend(sib)
			w.buf = w.buf[:len(w.buf)-1]
		}
		cur = parent
	}
}

// descend explores the subtree below node (the last element of w.buf) along
// tree edges, pruning with routing-table summaries.
func (w *search) descend(node topology.NodeID) {
	for _, c := range w.tree.Children[node] {
		if !w.m.MayMatchSubtree(w.s.Entry(w.ti, c)) {
			continue
		}
		if !w.alive(c) {
			continue
		}
		w.charge(node, c)
		w.buf = append(w.buf, c)
		if w.m.MatchNode(c) {
			w.record(c, w.buf)
		}
		w.descend(c)
		w.buf = w.buf[:len(w.buf)-1]
	}
}

// SortNodeIDs sorts ascending in place without the per-call allocations
// of sort.Slice — shared by the hot loops that order small node lists
// every cycle (exploration responses here, join-node fan-out in
// internal/join).
func SortNodeIDs(xs []topology.NodeID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BestTreePath returns the fewest-hop tree path between a and b across the
// substrate's trees — the path-quality primitive behind Figures 16-18.
func (s *Substrate) BestTreePath(a, b topology.NodeID) Path {
	var best Path
	for _, tree := range s.Trees {
		p := tree.TreePath(a, b)
		if best == nil || p.Hops() < best.Hops() {
			best = p
		}
	}
	return best
}

// PathToBase returns the parent chain in tree 0 (the base-rooted tree) —
// how every algorithm routes to the base station.
func (s *Substrate) PathToBase(id topology.NodeID) Path {
	return s.Trees[0].PathToRoot(id)
}

// DepthToBase returns the hop distance to the base station in tree 0 — the
// quantity every node is assumed to know (Appendix C).
func (s *Substrate) DepthToBase(id topology.NodeID) int {
	return s.Trees[0].Depth[id]
}

package routing

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// FloodUpdate models the base station's directed multi-hop flooding used
// to assign static attributes to nodes (Appendix B: "each mote can be
// assigned a role, room number, or 3D location ... using directed
// multi-hop flooding"). The update travels down the base-rooted tree,
// pruned to subtrees containing addressed nodes; every traversed edge is
// charged. It returns the hop depth of the deepest addressed node (the
// propagation latency in transmission cycles).
func FloodUpdate(net *sim.Network, tree *Tree, payloadBytes int, addressed map[topology.NodeID]bool) (maxDepth int) {
	// Mark subtrees containing addressed nodes.
	wanted := map[topology.NodeID]bool{}
	var mark func(topology.NodeID) bool
	mark = func(n topology.NodeID) bool {
		hit := addressed[n]
		for _, c := range tree.Children[n] {
			if mark(c) {
				hit = true
			}
		}
		if hit {
			wanted[n] = true
		}
		return hit
	}
	mark(tree.Root)
	// Flood: forward into marked subtrees only.
	var walk func(topology.NodeID)
	walk = func(n topology.NodeID) {
		for _, c := range tree.Children[n] {
			if !wanted[c] {
				continue
			}
			if net != nil {
				net.Transfer(Path{n, c}, payloadBytes, sim.Control, sim.Flow{})
			}
			if addressed[c] && tree.Depth[c] > maxDepth {
				maxDepth = tree.Depth[c]
			}
			walk(c)
		}
	}
	if addressed[tree.Root] {
		maxDepth = 0
	}
	walk(tree.Root)
	return maxDepth
}

// UpdateAttribute applies a base-station attribute update: the new values
// are flooded to the addressed nodes (FloodUpdate on tree 0), the indexed
// summaries are rebuilt, and each affected node refreshes its ancestor
// chain's routing tables in every tree (charged per hop, as in the
// Appendix G mobility measurement). It returns the total propagation
// delay in transmission cycles (flood depth plus the longest refresh
// chain).
//
// The attribute must be one of the substrate's indexed attributes; the
// update panics otherwise — assigning an unindexed attribute is a plain
// flood with no routing-table consequences, which callers can do with
// FloodUpdate directly.
func (s *Substrate) UpdateAttribute(net *sim.Network, attr string, assign map[topology.NodeID]int32) int {
	idx := -1
	for i := range s.specs {
		if s.specs[i].Attr == attr {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("routing: UpdateAttribute on unindexed attribute " + attr)
	}
	addressed := map[topology.NodeID]bool{}
	ids := make([]topology.NodeID, 0, len(assign))
	//aspen:orderinvariant set-build plus keys collected then sorted before use
	for id := range assign {
		addressed[id] = true
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	// One (id, value) pair per addressed node rides the flood.
	payload := 2 * sim.ValueBytes * len(assign)
	delay := FloodUpdate(net, s.Trees[0], payload, addressed)
	// Apply the new values.
	for _, id := range ids {
		s.specs[idx].Values[id] = assign[id]
	}
	// Refresh summaries: rebuild tables (they are derived state), then
	// charge the ancestor-chain updates each affected node ships in each
	// tree.
	s.buildTables(nil)
	maxChain := 0
	for _, tree := range s.Trees {
		for _, id := range ids {
			up := tree.PathToRoot(id)
			size := s.Entry(0, id).ScalarSizeBytes()
			for i := 0; i+1 < len(up); i++ {
				if net != nil {
					net.Transfer(Path{up[i], up[i+1]}, size, sim.Control, sim.Flow{})
				}
			}
			if up.Hops() > maxChain {
				maxChain = up.Hops()
			}
		}
	}
	return delay + maxChain
}

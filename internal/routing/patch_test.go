package routing

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// xorshift is the deterministic rng the differential tests use for failure
// patterns (seeded per case, independent of the global rng discipline).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

func cloneTree(t *Tree) *Tree {
	n := len(t.Parent)
	c := &Tree{
		Root:      t.Root,
		Parent:    append([]topology.NodeID(nil), t.Parent...),
		Depth:     append([]int(nil), t.Depth...),
		Children:  make([][]topology.NodeID, n),
		rootPaths: make([]Path, n),
		deepFirst: append([]topology.NodeID(nil), t.deepFirst...),
		staleSet:  append([]bool(nil), t.staleSet...),
	}
	for i := range t.Children {
		c.Children[i] = append([]topology.NodeID(nil), t.Children[i]...)
	}
	for i := range t.rootPaths {
		c.rootPaths[i] = t.rootPaths[i].Clone()
	}
	return c
}

// requireTreesEqual asserts byte-identical derived structure: parents,
// depths, children, root paths, deepest-first order and stale sets.
func requireTreesEqual(t *testing.T, got, want *Tree, ctx string) {
	t.Helper()
	if got.Root != want.Root {
		t.Fatalf("%s: root %d != %d", ctx, got.Root, want.Root)
	}
	for i := range want.Parent {
		if got.Parent[i] != want.Parent[i] {
			t.Fatalf("%s: parent[%d] = %d, want %d", ctx, i, got.Parent[i], want.Parent[i])
		}
		if got.Depth[i] != want.Depth[i] {
			t.Fatalf("%s: depth[%d] = %d, want %d", ctx, i, got.Depth[i], want.Depth[i])
		}
		if got.staleSet[i] != want.staleSet[i] {
			t.Fatalf("%s: stale[%d] = %v, want %v", ctx, i, got.staleSet[i], want.staleSet[i])
		}
		if !reflect.DeepEqual(pathOrEmpty(got.Children[i]), pathOrEmpty(want.Children[i])) {
			t.Fatalf("%s: children[%d] = %v, want %v", ctx, i, got.Children[i], want.Children[i])
		}
		if !reflect.DeepEqual(pathOrEmpty(got.rootPaths[i]), pathOrEmpty(want.rootPaths[i])) {
			t.Fatalf("%s: rootPath[%d] = %v, want %v", ctx, i, got.rootPaths[i], want.rootPaths[i])
		}
	}
	if !reflect.DeepEqual(got.deepFirst, want.deepFirst) {
		t.Fatalf("%s: deepFirst order differs\n got %v\nwant %v", ctx, got.deepFirst, want.deepFirst)
	}
}

func pathOrEmpty(p []topology.NodeID) []topology.NodeID {
	if len(p) == 0 {
		return nil
	}
	return p
}

// TestPatchMatchesRebuildRandom is the differential oracle for the
// incremental repair: across 120 seeded multi-failure churn histories on
// mixed topologies, every accepted PatchTreeLive must leave the tree
// byte-identical to what a full RebuildTreeLive produces from the same
// state — parents, depths, children, root paths, deepest-first order and
// stale-chain semantics. Failed leaves are left unrepaired (exactly the
// RepairTrees policy) so patches must also absorb seeds accumulated from
// earlier epochs that never triggered a repair.
func TestPatchMatchesRebuildRandom(t *testing.T) {
	kinds := []topology.Kind{topology.DenseRandom, topology.Grid, topology.SparseRandom}
	patched, bailed := 0, 0
	for seed := uint64(1); seed <= 120; seed++ {
		n := 80 + int(seed%5)*40
		topo := topology.Generate(kinds[int(seed)%len(kinds)], n, seed)
		live := topology.NewLiveness(n)
		ref := BuildTree(topo, topology.Base, nil)
		cur := cloneTree(ref)
		scratch := NewPatchScratch()
		rng := xorshift(seed*2654435761 + 1)
		for epoch := 0; epoch < 6; epoch++ {
			// Kill 1-3 alive non-root nodes.
			interior := false
			for k := 0; k < 1+rng.intn(3); k++ {
				id := topology.NodeID(1 + rng.intn(n-1))
				if !live.Alive(id) {
					continue
				}
				live.Fail(id)
				if len(cur.Children[id]) > 0 {
					interior = true
				}
			}
			if !interior {
				continue // RepairTrees would skip: failed leaves only
			}
			want := RebuildTreeLive(topo, ref, ref.Root, nil, live)
			res, ok := PatchTreeLive(topo, cur, nil, live, scratch)
			if ok {
				patched++
				requireTreesEqual(t, cur, want, fmt.Sprintf("seed %d epoch %d (region %d changed %d)", seed, epoch, res.Region, res.Changed))
			} else {
				bailed++
				cur = cloneTree(want)
			}
			ref = want
		}
	}
	if patched < 100 {
		t.Fatalf("only %d patches engaged across the battery (want >= 100; %d bailed)", patched, bailed)
	}
	if bailed == 0 {
		t.Fatalf("no patch ever fell back to a full rebuild; budget path untested")
	}
}

// TestPatchDeclinesDeadRootAndRevival pins the two hard bail conditions:
// a dead root (re-rooting moves every path) and a revived stale node
// (reachability is no longer monotone) must both refuse the patch and
// leave the tree untouched.
func TestPatchDeclinesDeadRootAndRevival(t *testing.T) {
	topo := topology.Generate(topology.DenseRandom, 120, 3)
	live := topology.NewLiveness(120)
	tree := BuildTree(topo, topology.Base, nil)

	// Dead root.
	live.Fail(topology.Base)
	before := cloneTree(tree)
	if _, ok := PatchTreeLive(topo, tree, nil, live, nil); ok {
		t.Fatalf("patch accepted a dead root")
	}
	requireTreesEqual(t, tree, before, "dead-root decline mutated the tree")
	live.Revive(topology.Base)

	// Revived stale node: fail an interior node, repair, revive it.
	var victim topology.NodeID = -1
	for _, id := range tree.DeepFirst() {
		if id != tree.Root && len(tree.Children[id]) > 0 {
			victim = id
		}
	}
	if victim < 0 {
		t.Fatalf("no interior victim")
	}
	live.Fail(victim)
	if _, ok := PatchTreeLive(topo, tree, nil, live, nil); !ok {
		t.Fatalf("interior-failure patch unexpectedly bailed")
	}
	if !tree.Stale(victim) {
		t.Fatalf("victim not recorded stale after patch")
	}
	live.Revive(victim)
	before = cloneTree(tree)
	if _, ok := PatchTreeLive(topo, tree, nil, live, nil); ok {
		t.Fatalf("patch accepted a revived stale node")
	}
	requireTreesEqual(t, tree, before, "revival decline mutated the tree")
}

// fullRepairReference replicates the pre-incremental RepairTrees: always a
// full RebuildTreeLive plus whole-column rebuilds, with the O(n) reference
// root scan. The charging-equality test runs it against a twin substrate.
func fullRepairReference(s *Substrate, net *sim.Network, live *topology.Liveness, failed []topology.NodeID) int {
	rebuilt := 0
	for ti, tree := range s.Trees {
		needs := !live.Alive(tree.Root)
		for _, id := range failed {
			if needs || len(tree.Children[id]) > 0 {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		root := tree.Root
		if !live.Alive(root) {
			root = s.farthestAliveRoot(live)
			if root < 0 {
				continue
			}
		}
		nt := RebuildTreeLive(s.Topo, tree, root, net, live)
		s.Trees[ti] = nt
		for ci, spec := range s.specs {
			s.cols[ti][ci] = s.buildColumn(nt, spec)
		}
		if s.indexPos {
			s.regions[ti] = s.buildRegions(nt)
		}
		if net != nil {
			s.chargeTableShip(ti, nt, net)
		}
		rebuilt++
	}
	return rebuilt
}

// TestRepairChargesMatchFullRebuild drives twin substrates — one through
// the incremental RepairTrees, one through the full-rebuild reference —
// over identical seeded churn and same-seed networks, asserting the trees,
// every summary column, and the complete network metrics (bytes, messages,
// per-node loads, drops) stay identical. The traffic a repair charges is
// part of the paper's figures, so the patch may only save CPU, never
// change a single charged byte.
func TestRepairChargesMatchFullRebuild(t *testing.T) {
	n := 200
	topo := topology.Generate(topology.DenseRandom, n, 11)
	live := topology.NewLiveness(n)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i % 37)
	}
	specs := []IndexSpec{
		{Attr: "id", Kind: BloomSummary, Values: vals},
		{Attr: "band", Kind: HistogramSummary, Values: vals, Lo: 0, Hi: 37},
	}
	netA := sim.NewSharedNetwork(topo, 0.05, 99, live)
	netB := sim.NewSharedNetwork(topo, 0.05, 99, live)
	subA := NewSubstrate(topo, Options{NumTrees: 2, Indexes: specs, IndexPositions: true}, netA)
	subB := NewSubstrate(topo, Options{NumTrees: 2, Indexes: specs, IndexPositions: true}, netB)

	rng := xorshift(77)
	for epoch := 0; epoch < 8; epoch++ {
		var failed []topology.NodeID
		for k := 0; k < 1+rng.intn(2); k++ {
			id := topology.NodeID(1 + rng.intn(n-1))
			if live.Alive(id) {
				live.Fail(id)
				failed = append(failed, id)
			}
		}
		ra := subA.RepairTrees(netA, live, failed)
		rb := fullRepairReference(subB, netB, live, failed)
		if ra != rb {
			t.Fatalf("epoch %d: repaired %d trees, reference %d", epoch, ra, rb)
		}
		for ti := range subA.Trees {
			requireTreesEqual(t, subA.Trees[ti], subB.Trees[ti], fmt.Sprintf("epoch %d tree %d", epoch, ti))
		}
		if !reflect.DeepEqual(subA.cols, subB.cols) {
			t.Fatalf("epoch %d: summary columns diverged", epoch)
		}
		if !reflect.DeepEqual(subA.regions, subB.regions) {
			t.Fatalf("epoch %d: region columns diverged", epoch)
		}
		if !reflect.DeepEqual(netA.Metrics(), netB.Metrics()) {
			t.Fatalf("epoch %d: network metrics diverged:\n%+v\n%+v", epoch, *netA.Metrics(), *netB.Metrics())
		}
	}
	if subA.Stats().Patched == 0 {
		t.Fatalf("incremental path never engaged: %+v", subA.Stats())
	}
}

// TestRegionalRootMatchesReference churns the substrate and asserts the
// two-level regional root pick returns exactly the node the O(n) scan
// picks, including after base-tree repairs invalidate the region ordering.
func TestRegionalRootMatchesReference(t *testing.T) {
	n := 300
	topo := topology.Generate(topology.DenseRandom, n, 5)
	live := topology.NewLiveness(n)
	sub := NewSubstrate(topo, Options{NumTrees: 2}, nil)
	rng := xorshift(13)
	for epoch := 0; epoch < 30; epoch++ {
		id := topology.NodeID(1 + rng.intn(n-1))
		if live.Alive(id) {
			live.Fail(id)
			sub.RepairTrees(nil, live, []topology.NodeID{id})
		}
		got := sub.regionalRoot(live)
		want := sub.farthestAliveRoot(live)
		if got != want {
			t.Fatalf("epoch %d: regional root %d, reference %d", epoch, got, want)
		}
	}
}

// restoreTree copies pristine's structure back into work between benchmark
// iterations. Sharing path backing with pristine is safe: a patch never
// overwrites old path bytes, it carves replacements from fresh slabs.
func restoreTree(work, pristine *Tree) {
	copy(work.Parent, pristine.Parent)
	copy(work.Depth, pristine.Depth)
	copy(work.staleSet, pristine.staleSet)
	copy(work.deepFirst, pristine.deepFirst)
	copy(work.rootPaths, pristine.rootPaths)
	for i := range pristine.Children {
		work.Children[i] = append(work.Children[i][:0], pristine.Children[i]...)
	}
}

// benchVictim picks the parent of the deepest node: an interior node whose
// death orphans a small subtree — the single-node failure shape of the
// churn-10k acceptance claim.
func benchVictim(t *Tree) topology.NodeID {
	return t.Parent[t.DeepFirst()[0]]
}

func benchmarkPatchRepair(b *testing.B, n int) {
	topo := topology.Generate(topology.DenseRandom, n, 1)
	live := topology.NewLiveness(n)
	pristine := BuildTree(topo, topology.Base, nil)
	work := cloneTree(pristine)
	live.Fail(benchVictim(pristine))
	scratch := NewPatchScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		restoreTree(work, pristine)
		b.StartTimer()
		if _, ok := PatchTreeLive(topo, work, nil, live, scratch); !ok {
			b.Fatal("patch bailed")
		}
	}
}

func benchmarkFullRebuild(b *testing.B, n int) {
	topo := topology.Generate(topology.DenseRandom, n, 1)
	live := topology.NewLiveness(n)
	pristine := BuildTree(topo, topology.Base, nil)
	live.Fail(benchVictim(pristine))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RebuildTreeLive(topo, pristine, pristine.Root, nil, live)
	}
}

func BenchmarkPatchRepair1k(b *testing.B)   { benchmarkPatchRepair(b, 1000) }
func BenchmarkFullRebuild1k(b *testing.B)   { benchmarkFullRebuild(b, 1000) }
func BenchmarkPatchRepair10k(b *testing.B)  { benchmarkPatchRepair(b, 10000) }
func BenchmarkFullRebuild10k(b *testing.B)  { benchmarkFullRebuild(b, 10000) }
func BenchmarkPatchRepair100k(b *testing.B) { benchmarkPatchRepair(b, 100000) }
func BenchmarkFullRebuild100k(b *testing.B) { benchmarkFullRebuild(b, 100000) }

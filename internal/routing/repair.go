package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// DefaultRepairLimit bounds the limited-exploration repair to a small
// neighbourhood, per [11]: repair is local or it is abandoned in favour of
// falling back to the base station (section 7).
const DefaultRepairLimit = 3

// LinkCheck reports whether the directed hop from -> to is usable. The
// fault-injection layer supplies one (faults.Plan.LinkUsable) so repair can
// route around cut links and partition edges, which are invisible to node
// liveness; nil means every link between live nodes is usable.
type LinkCheck func(from, to topology.NodeID) bool

// RepairPath attempts the limited-exploration repair of section 7: for each
// failed node on path, the preceding live node searches its bounded
// neighbourhood (at most limit hops, avoiding failed nodes) for a detour to
// the following live node. Exploration traffic (one probe per edge
// examined) is charged to net. It returns the repaired path and whether
// repair succeeded; failure of an endpoint is never repairable.
func RepairPath(topo *topology.Topology, net *sim.Network, path Path, limit int) (Path, bool) {
	if limit <= 0 {
		limit = DefaultRepairLimit
	}
	detour := func(pred, succ topology.NodeID) (Path, bool) {
		return boundedDetour(topo, net, nil, pred, succ, limit)
	}
	return repairWith(net, nil, path, detour)
}

// repairWith is the repair loop shared by RepairPath and Repairer: it
// splices detours (from the given finder) around every failed node — and,
// with a LinkCheck, around every cut link — until the path is clean or some
// gap is unbridgeable. A dead node is bridged pred..succ around the node; a
// cut link is bridged between its own endpoints, which both stay on the
// path.
func repairWith(net *sim.Network, links LinkCheck, path Path, detour func(pred, succ topology.NodeID) (Path, bool)) (Path, bool) {
	out := path.Clone()
	for {
		nodeIdx, linkIdx := -1, -1
		for idx, id := range out {
			if !net.Alive(id) {
				nodeIdx = idx
				break
			}
			if links != nil && idx+1 < len(out) && !links(id, out[idx+1]) {
				linkIdx = idx
				break
			}
		}
		// spliceAt is the first index the detour replaces; tail resumes the
		// original path after the bridged segment (pred, gap, succ).
		var pred, succ topology.NodeID
		var spliceAt, tail int
		switch {
		case nodeIdx == -1 && linkIdx == -1:
			return out, true
		case nodeIdx >= 0:
			if nodeIdx == 0 || nodeIdx == len(out)-1 {
				return nil, false // endpoint failed; cannot repair
			}
			pred, succ = out[nodeIdx-1], out[nodeIdx+1]
			spliceAt, tail = nodeIdx-1, nodeIdx+2
		default:
			pred, succ = out[linkIdx], out[linkIdx+1]
			spliceAt, tail = linkIdx, linkIdx+2
		}
		d, ok := detour(pred, succ)
		if !ok {
			return nil, false
		}
		repaired := make(Path, 0, len(out)+len(d))
		repaired = append(repaired, out[:spliceAt]...)
		repaired = append(repaired, d...)
		repaired = append(repaired, out[tail:]...)
		out = dedupeLoops(repaired)
	}
}

// boundedDetour BFS-searches from pred for succ within limit hops, charging
// one probe per explored edge — including probes toward failed neighbours
// and across cut links, which are transmitted and simply never acked
// (section 7: the explorer only learns a neighbour is gone by paying for
// the probe). Failed nodes and unusable links are never traversed. Ties
// break toward lower node IDs for determinism.
func boundedDetour(topo *topology.Topology, net *sim.Network, links LinkCheck, pred, succ topology.NodeID, limit int) (Path, bool) {
	type state struct {
		id   topology.NodeID
		hops int
	}
	parent := map[topology.NodeID]topology.NodeID{pred: -1}
	queue := []state{{pred, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops == limit {
			continue
		}
		for _, nb := range topo.Neighbors(cur.id) {
			if _, seen := parent[nb]; seen {
				continue
			}
			// One probe transmission per explored edge; a probe into a
			// failed node is charged (1+MaxRetries unacked attempts, see
			// sim.Transfer) but yields no frontier to expand.
			net.Transfer(Path{cur.id, nb}, probeKeyBytes, sim.Control, sim.Flow{})
			if !net.Alive(nb) {
				continue
			}
			if links != nil && !links(cur.id, nb) {
				continue
			}
			parent[nb] = cur.id
			if nb == succ {
				var detour Path
				for at := succ; at != -1; at = parent[at] {
					detour = append(detour, at)
				}
				return detour.Reverse(), true
			}
			queue = append(queue, state{nb, cur.hops + 1})
		}
	}
	return nil, false
}

// detourKey identifies one broken gap a detour bridges.
type detourKey struct{ pred, succ topology.NodeID }

// Repairer memoizes bounded-detour searches so a deployment-wide recovery
// pass (internal/engine) explores each broken link neighbourhood once no
// matter how many query paths route through it: the first repair of a
// (pred, succ) gap charges the exploration probes to the Repairer's
// network — the engine points it at the SHARED metrics stream — and later
// paths broken at the same gap reuse the detour for free. Repaired paths
// are identical to RepairPath's with the same limit; only the duplicate
// probe traffic is deduplicated. A Repairer is valid for one liveness
// state: build a fresh one (or Reset) after further failures or revivals.
type Repairer struct {
	topo    *topology.Topology
	net     *sim.Network
	limit   int
	links   LinkCheck
	detours map[detourKey]Path // nil entry = known-unbridgeable gap
}

// NewRepairer returns a Repairer charging exploration to net (limit <= 0
// uses DefaultRepairLimit).
func NewRepairer(topo *topology.Topology, net *sim.Network, limit int) *Repairer {
	if limit <= 0 {
		limit = DefaultRepairLimit
	}
	return &Repairer{topo: topo, net: net, limit: limit, detours: map[detourKey]Path{}}
}

// SetLinkCheck makes the repairer link-aware: repairs detour around hops
// the check rejects as well as around dead nodes. Installing a check drops
// the memoized detours — they were computed for a different link state.
func (r *Repairer) SetLinkCheck(lc LinkCheck) {
	r.links = lc
	r.Reset()
}

// Repair runs the section 7 limited-exploration repair of path, reusing
// memoized detours. It returns the repaired path and whether it succeeded.
func (r *Repairer) Repair(path Path) (Path, bool) {
	return repairWith(r.net, r.links, path, func(pred, succ topology.NodeID) (Path, bool) {
		key := detourKey{pred, succ}
		if d, seen := r.detours[key]; seen {
			return d, d != nil
		}
		d, ok := boundedDetour(r.topo, r.net, r.links, pred, succ, r.limit)
		if !ok {
			d = nil
		}
		r.detours[key] = d
		return d, ok
	})
}

// Reset drops the memoized detours; call it when liveness changes again.
func (r *Repairer) Reset() { r.detours = map[detourKey]Path{} }

// Shortcut compresses a discovered path by skipping ahead whenever a later
// path node is a direct radio neighbour of an earlier one. The multi-tree
// substrate applies this as the response path vector travels back to the
// initiator: every node on the path knows its one-hop neighbourhood, so a
// detour through the tree structure that re-enters the neighbourhood is
// cut out. The result is link-valid, loop-free, and never longer.
func Shortcut(topo *topology.Topology, p Path) Path {
	if len(p) < 3 {
		return p.Clone()
	}
	out := Path{p[0]}
	i := 0
	for i < len(p)-1 {
		// Jump to the farthest later node directly reachable from p[i].
		next := i + 1
		for j := len(p) - 1; j > i+1; j-- {
			if topo.IsNeighbor(p[i], p[j]) {
				next = j
				break
			}
		}
		out = append(out, p[next])
		i = next
	}
	return out
}

// dedupeLoops removes any cycle introduced by splicing a detour that
// rejoins the original path early: if a node appears twice, the segment
// between occurrences is cut.
func dedupeLoops(p Path) Path {
	last := make(map[topology.NodeID]int, len(p))
	for i, id := range p {
		last[id] = i
	}
	out := make(Path, 0, len(p))
	for i := 0; i < len(p); i++ {
		out = append(out, p[i])
		if j := last[p[i]]; j > i {
			i = j // skip ahead to the final occurrence
		}
	}
	return out
}

package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// DefaultRepairLimit bounds the limited-exploration repair to a small
// neighbourhood, per [11]: repair is local or it is abandoned in favour of
// falling back to the base station (section 7).
const DefaultRepairLimit = 3

// RepairPath attempts the limited-exploration repair of section 7: for each
// failed node on path, the preceding live node searches its bounded
// neighbourhood (at most limit hops, avoiding failed nodes) for a detour to
// the following live node. Exploration traffic (one probe per edge
// examined) is charged to net. It returns the repaired path and whether
// repair succeeded; failure of an endpoint is never repairable.
func RepairPath(topo *topology.Topology, net *sim.Network, path Path, limit int) (Path, bool) {
	if limit <= 0 {
		limit = DefaultRepairLimit
	}
	out := path.Clone()
	for {
		i := -1
		for idx, id := range out {
			if !net.Alive(id) {
				i = idx
				break
			}
		}
		if i == -1 {
			return out, true
		}
		if i == 0 || i == len(out)-1 {
			return nil, false // endpoint failed; cannot repair
		}
		pred, succ := out[i-1], out[i+1]
		detour, ok := boundedDetour(topo, net, pred, succ, limit)
		if !ok {
			return nil, false
		}
		repaired := make(Path, 0, len(out)+len(detour))
		repaired = append(repaired, out[:i]...)
		repaired = append(repaired, detour[1:]...)
		repaired = append(repaired, out[i+2:]...)
		out = dedupeLoops(repaired)
	}
}

// boundedDetour BFS-searches from pred for succ within limit hops, skipping
// failed nodes, charging one probe per explored edge. Ties break toward
// lower node IDs for determinism.
func boundedDetour(topo *topology.Topology, net *sim.Network, pred, succ topology.NodeID, limit int) (Path, bool) {
	type state struct {
		id   topology.NodeID
		hops int
	}
	parent := map[topology.NodeID]topology.NodeID{pred: -1}
	queue := []state{{pred, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops == limit {
			continue
		}
		for _, nb := range topo.Neighbors(cur.id) {
			if _, seen := parent[nb]; seen {
				continue
			}
			if !net.Alive(nb) {
				continue
			}
			// One probe transmission per explored edge.
			net.Transfer(Path{cur.id, nb}, probeKeyBytes, sim.Control, sim.Flow{})
			parent[nb] = cur.id
			if nb == succ {
				var detour Path
				for at := succ; at != -1; at = parent[at] {
					detour = append(detour, at)
				}
				return detour.Reverse(), true
			}
			queue = append(queue, state{nb, cur.hops + 1})
		}
	}
	return nil, false
}

// Shortcut compresses a discovered path by skipping ahead whenever a later
// path node is a direct radio neighbour of an earlier one. The multi-tree
// substrate applies this as the response path vector travels back to the
// initiator: every node on the path knows its one-hop neighbourhood, so a
// detour through the tree structure that re-enters the neighbourhood is
// cut out. The result is link-valid, loop-free, and never longer.
func Shortcut(topo *topology.Topology, p Path) Path {
	if len(p) < 3 {
		return p.Clone()
	}
	out := Path{p[0]}
	i := 0
	for i < len(p)-1 {
		// Jump to the farthest later node directly reachable from p[i].
		next := i + 1
		for j := len(p) - 1; j > i+1; j-- {
			if topo.IsNeighbor(p[i], p[j]) {
				next = j
				break
			}
		}
		out = append(out, p[next])
		i = next
	}
	return out
}

// dedupeLoops removes any cycle introduced by splicing a detour that
// rejoins the original path early: if a node appears twice, the segment
// between occurrences is cut.
func dedupeLoops(p Path) Path {
	last := make(map[topology.NodeID]int, len(p))
	for i, id := range p {
		last[id] = i
	}
	out := make(Path, 0, len(p))
	for i := 0; i < len(p); i++ {
		out = append(out, p[i])
		if j := last[p[i]]; j > i {
			i = j // skip ahead to the final occurrence
		}
	}
	return out
}

package workload

import "repro/internal/query"

// QueryText returns the StreamSQL text of a Table 2 query, as the base
// station would receive it (Appendix B). Query 0's random id pairing and
// Query 3's geometric Dst predicate are expressed through placeholders the
// text cannot capture exactly — Q0's pairing is drawn at runtime, and Dst
// is evaluated by the region matcher — so their texts carry the remaining
// clauses; Q1 and Q2 are complete.
func QueryText(name string) (string, bool) {
	switch name {
	case "Q0":
		return `SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.u = T.u`, true
	case "Q1":
		return `SELECT S.id, T.id, S.local_time
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND hash(S.u) % 2 = 0
AND T.id > 50 AND hash(T.u) % 2 = 0
AND S.x = T.y + 5 AND S.u = T.u`, true
	case "Q2":
		return `SELECT S.id, T.id
FROM S, T [windowsize=1 sampleinterval=100]
WHERE S.rid = 0 AND T.rid = 3
AND S.cid = T.cid AND S.id % 4 = T.id % 4
AND S.u = T.u`, true
	case "Q3":
		return `SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < T.id AND abs(S.v - T.v) > 1000`, true
	default:
		return "", false
	}
}

// CompileText parses and pre-processes one of the Table 2 query texts
// against the default sensor schema.
func CompileText(name string) (*query.Compiled, error) {
	src, ok := QueryText(name)
	if !ok {
		return nil, errUnknownQuery(name)
	}
	return query.Compile(src, query.DefaultSchema())
}

type errUnknownQuery string

func (e errUnknownQuery) Error() string { return "workload: unknown query " + string(e) }

package workload

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/topology"
)

func setup(t *testing.T) (*topology.Topology, []NodeInfo) {
	t.Helper()
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	return topo, BuildNodes(topo, 1)
}

func TestBuildNodesAttributes(t *testing.T) {
	topo, nodes := setup(t)
	if len(nodes) != topo.N() {
		t.Fatal("node count mismatch")
	}
	for i, n := range nodes {
		if n.ID != int32(i) {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if n.X < 7 || n.X > 60 {
			t.Fatalf("x = %d outside [7,60]", n.X)
		}
		if n.Y < 0 || n.Y >= 10 {
			t.Fatalf("y = %d outside [0,10)", n.Y)
		}
		if n.Cid < 0 || n.Cid > 3 || n.Rid < 0 || n.Rid > 3 {
			t.Fatalf("grid cell (%d,%d) outside 4x4", n.Cid, n.Rid)
		}
	}
}

func TestBuildNodesXSpatialSkew(t *testing.T) {
	// Table 1: "center has higher values". Compare mean x near centre vs
	// near the border.
	topo, nodes := setup(t)
	centre := topology.Field / 2.0
	var inSum, inN, outSum, outN float64
	for _, n := range nodes {
		d := math.Hypot(n.Pos.X-centre, n.Pos.Y-centre)
		if d < topology.Field/4 {
			inSum += float64(n.X)
			inN++
		} else if d > topology.Field/2.5 {
			outSum += float64(n.X)
			outN++
		}
	}
	if inN == 0 || outN == 0 {
		t.Skip("degenerate layout")
	}
	if inSum/inN <= outSum/outN {
		t.Fatalf("central mean x %.1f not above border mean %.1f", inSum/inN, outSum/outN)
	}
	_ = topo
}

func TestBuildNodesDeterministic(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	a := BuildNodes(topo, 5)
	b := BuildNodes(topo, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BuildNodes not deterministic")
		}
	}
}

func TestPairBinding(t *testing.T) {
	_, nodes := setup(t)
	b := PairBinding{S: &nodes[1], T: &nodes[2], SU: 7, TU: 9, HasDyn: true}
	if b.Value(query.S, "id") != nodes[1].ID || b.Value(query.T, "id") != nodes[2].ID {
		t.Fatal("id binding wrong")
	}
	if b.Value(query.S, "u") != 7 || b.Value(query.T, "u") != 9 {
		t.Fatal("dynamic binding wrong")
	}
	if b.Value(query.S, "cid") != nodes[1].Cid {
		t.Fatal("cid binding wrong")
	}
}

func TestPairBindingPanicsWithoutDyn(t *testing.T) {
	_, nodes := setup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic reading u without dynamic binding")
		}
	}()
	PairBinding{S: &nodes[1], T: &nodes[2]}.Value(query.S, "u")
}

func TestGeneratorSelectivities(t *testing.T) {
	g := NewGenerator(Rates{SigmaS: 0.5, SigmaT: 0.1, SigmaST: 0.2}, 3)
	const cycles = 20000
	var sends, tsends int
	for c := 0; c < cycles; c++ {
		if _, ok := g.Sample(5, query.S, c); ok {
			sends++
		}
		if _, ok := g.Sample(5, query.T, c); ok {
			tsends++
		}
	}
	if r := float64(sends) / cycles; math.Abs(r-0.5) > 0.02 {
		t.Fatalf("sigma_s measured %.3f, want 0.5", r)
	}
	if r := float64(tsends) / cycles; math.Abs(r-0.1) > 0.02 {
		t.Fatalf("sigma_t measured %.3f, want 0.1", r)
	}
}

func TestGeneratorJoinSelectivity(t *testing.T) {
	for _, sst := range JoinSelectivities {
		g := NewGenerator(Rates{SigmaS: 1, SigmaT: 1, SigmaST: sst}, 9)
		matches := 0
		const n = 30000
		for c := 0; c < n; c++ {
			sv, _ := g.Sample(1, query.S, c)
			tv, _ := g.Sample(2, query.T, c)
			if sv == tv {
				matches++
			}
		}
		got := float64(matches) / n
		if math.Abs(got-sst) > 0.02 {
			t.Fatalf("sigma_st measured %.3f, want %.2f", got, sst)
		}
	}
}

func TestGeneratorDeterministicPerCycle(t *testing.T) {
	g := NewGenerator(Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2}, 7)
	v1, s1 := g.Sample(3, query.S, 10)
	v2, s2 := g.Sample(3, query.S, 10)
	if v1 != v2 || s1 != s2 {
		t.Fatal("re-sampling the same (node,cycle) differed")
	}
}

func TestGeneratorPerNodeOverride(t *testing.T) {
	g := NewGenerator(Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2}, 7)
	g.SetNodeRates(4, Rates{SigmaS: 0, SigmaT: 0, SigmaST: 0.2})
	for c := 0; c < 100; c++ {
		if _, send := g.Sample(4, query.S, c); send {
			t.Fatal("overridden node sent despite sigma_s = 0")
		}
		if _, send := g.Sample(5, query.S, c); !send {
			t.Fatal("default node silent despite sigma_s = 1")
		}
	}
}

func TestGeneratorTemporalSwitch(t *testing.T) {
	g := NewGenerator(Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2}, 7)
	g.SetSwitch(50, Rates{SigmaS: 0, SigmaT: 0, SigmaST: 0.2})
	if _, send := g.Sample(3, query.S, 49); !send {
		t.Fatal("pre-switch rate not in effect")
	}
	for c := 50; c < 150; c++ {
		if _, send := g.Sample(3, query.S, c); send {
			t.Fatal("post-switch rate not in effect")
		}
	}
	r := g.RatesAt(3, 50)
	if r.SigmaS != 0 {
		t.Fatal("RatesAt ignores switch")
	}
}

func TestUDomain(t *testing.T) {
	cases := []struct {
		sst  float64
		want int
	}{{0.2, 5}, {0.1, 10}, {0.05, 20}, {1, 1}, {1.5, 1}}
	for _, c := range cases {
		if got := uDomain(c.sst); got != c.want {
			t.Fatalf("uDomain(%v) = %d, want %d", c.sst, got, c.want)
		}
	}
	if uDomain(0) != math.MaxInt32 {
		t.Fatal("uDomain(0) must make joins impossible")
	}
}

func TestHumiditySpatialCorrelation(t *testing.T) {
	topo := topology.Generate(topology.Intel, 0, 0)
	h := NewHumidity(topo, 1)
	// Average |v_a - v_b| for adjacent nodes must be well below that of
	// distant nodes — the property Query 3 depends on.
	var nearSum, nearN, farSum, farN float64
	for c := 0; c < 200; c++ {
		for a := 0; a < topo.N(); a++ {
			va := h.Value(topology.NodeID(a), c)
			for b := a + 1; b < topo.N(); b += 5 {
				vb := h.Value(topology.NodeID(b), c)
				d := topo.Dist(topology.NodeID(a), topology.NodeID(b))
				diff := math.Abs(float64(va - vb))
				if d < 7 {
					nearSum += diff
					nearN++
				} else if d > 25 {
					farSum += diff
					farN++
				}
			}
		}
	}
	near, far := nearSum/nearN, farSum/farN
	if near >= far {
		t.Fatalf("near diff %.0f not below far diff %.0f — no spatial correlation", near, far)
	}
}

func TestHumidityEventRate(t *testing.T) {
	// |v_s - v_t| > 1000 between nearby nodes should fire on a minority
	// of cycles but not never (the paper measures sigma_st ~ 20%).
	topo := topology.Generate(topology.Intel, 0, 0)
	h := NewHumidity(topo, 1)
	events, total := 0, 0
	for c := 0; c < 500; c++ {
		for a := 0; a < topo.N(); a++ {
			for _, b := range topo.Neighbors(topology.NodeID(a)) {
				if topology.NodeID(a) >= b {
					continue
				}
				total++
				if d := h.Value(topology.NodeID(a), c) - h.Value(b, c); d > 1000 || d < -1000 {
					events++
				}
			}
		}
	}
	rate := float64(events) / float64(total)
	if rate < 0.03 || rate > 0.60 {
		t.Fatalf("event rate %.3f outside plausible range", rate)
	}
}

func TestHumidityRange(t *testing.T) {
	topo := topology.Generate(topology.Intel, 0, 0)
	h := NewHumidity(topo, 2)
	for c := 0; c < 300; c++ {
		v := h.Value(5, c)
		if v < 0 || v > 65535 {
			t.Fatalf("humidity %d outside 16-bit range", v)
		}
	}
}

func TestQuery0Pairs(t *testing.T) {
	topo, nodes := setup(t)
	spec := Query0(topo, nodes, 10, Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2}, 7)
	groups := spec.Groups()
	if len(groups) != 10 {
		t.Fatalf("Q0 has %d groups, want 10", len(groups))
	}
	seen := map[topology.NodeID]bool{}
	for _, g := range groups {
		if len(g.Pairs) != 1 {
			t.Fatalf("Q0 group has %d pairs, want 1", len(g.Pairs))
		}
		s, tt := g.Pairs[0][0], g.Pairs[0][1]
		if seen[s] || seen[tt] {
			t.Fatal("Q0 endpoints overlap across pairs")
		}
		seen[s], seen[tt] = true, true
		if s == topology.Base || tt == topology.Base {
			t.Fatal("base station selected as producer")
		}
		if !spec.PairMatch(s, tt) || spec.PairMatch(tt, s) {
			t.Fatal("PairMatch asymmetric pairing broken")
		}
	}
}

func TestQuery0SearchFindsPartner(t *testing.T) {
	topo, nodes := setup(t)
	spec := Query0(topo, nodes, 10, Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2}, 7)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 2, Indexes: spec.Indexes}, nil)
	for _, g := range spec.Groups() {
		s, want := g.Pairs[0][0], g.Pairs[0][1]
		found := sub.FindTargets(s, spec.SearchMatcher(s, sub), nil)
		if len(found) != 1 {
			t.Fatalf("search from %d found %d targets, want 1", s, len(found))
		}
		if _, ok := found[want]; !ok {
			t.Fatalf("search from %d missed partner %d", s, want)
		}
	}
}

func TestQuery1Semantics(t *testing.T) {
	topo, nodes := setup(t)
	spec := Query1(topo, nodes, Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.05})
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		if spec.EligibleS(id) && nodes[i].ID >= 25 {
			t.Fatal("EligibleS violates id<25")
		}
		if spec.EligibleT(id) && nodes[i].ID <= 50 {
			t.Fatal("EligibleT violates id>50")
		}
	}
	groups := spec.Groups()
	for _, g := range groups {
		for _, p := range g.Pairs {
			if nodes[p[0]].X != nodes[p[1]].Y+5 {
				t.Fatal("pair violates S.x = T.y+5")
			}
		}
		// Complete bipartite: every s x t combination in a group joins.
		if len(g.Pairs) != len(g.S)*len(g.T) {
			t.Fatalf("group not complete bipartite: %d pairs for %dx%d", len(g.Pairs), len(g.S), len(g.T))
		}
	}
}

func TestQuery1SearchMatchesGroundTruth(t *testing.T) {
	topo, nodes := setup(t)
	spec := Query1(topo, nodes, Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.05})
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: spec.Indexes}, nil)
	for i := 0; i < topo.N(); i++ {
		s := topology.NodeID(i)
		if !spec.EligibleS(s) {
			continue
		}
		found := sub.FindTargets(s, spec.SearchMatcher(s, sub), nil)
		want := 0
		for j := 0; j < topo.N(); j++ {
			t2 := topology.NodeID(j)
			if t2 != s && spec.EligibleT(t2) && spec.PairMatch(s, t2) {
				want++
			}
		}
		if len(found) != want {
			t.Fatalf("search from %d found %d targets, want %d", s, len(found), want)
		}
	}
}

func TestQuery2Semantics(t *testing.T) {
	topo, nodes := setup(t)
	spec := Query2(topo, nodes, Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	groups := spec.Groups()
	for _, g := range groups {
		for _, p := range g.Pairs {
			s, tt := nodes[p[0]], nodes[p[1]]
			if s.Rid != 0 || tt.Rid != 3 {
				t.Fatal("perimeter selection violated")
			}
			if s.Cid != tt.Cid || s.ID%4 != tt.ID%4 {
				t.Fatal("join predicate violated")
			}
		}
	}
}

func TestQuery3Semantics(t *testing.T) {
	topo := topology.Generate(topology.Intel, 0, 0)
	nodes := BuildNodes(topo, 1)
	spec := Query3(topo, nodes, Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	groups := spec.Groups()
	if len(groups) == 0 {
		t.Fatal("Q3 found no adjacent pairs on the Intel layout")
	}
	for _, g := range groups {
		if len(g.Pairs) != 1 {
			t.Fatal("region join must be pairwise groups")
		}
		p := g.Pairs[0]
		if nodes[p[0]].ID >= nodes[p[1]].ID {
			t.Fatal("s.id < t.id violated")
		}
		if nodes[p[0]].Pos.Dist(nodes[p[1]].Pos) >= Query3Radius {
			t.Fatal("distance predicate violated")
		}
	}
	// Dynamic predicate.
	if spec.DynJoin(1000, 2500) != true || spec.DynJoin(1000, 1900) != false {
		t.Fatal("Q3 dynamic predicate wrong")
	}
}

func TestQuery3SearchUsesRegion(t *testing.T) {
	topo := topology.Generate(topology.Intel, 0, 0)
	nodes := BuildNodes(topo, 1)
	spec := Query3(topo, nodes, Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	sub := routing.NewSubstrate(topo, routing.Options{
		NumTrees: 2, IndexPositions: true,
	}, nil)
	for i := 1; i < topo.N(); i++ {
		s := topology.NodeID(i)
		found := sub.FindTargets(s, spec.SearchMatcher(s, sub), nil)
		want := 0
		for j := 1; j < topo.N(); j++ {
			t2 := topology.NodeID(j)
			if t2 != s && spec.PairMatch(s, t2) {
				want++
			}
		}
		if len(found) != want {
			t.Fatalf("region search from %d found %d, want %d", s, len(found), want)
		}
	}
}

func TestRatioStagesShape(t *testing.T) {
	if len(RatioStages) != 5 {
		t.Fatal("paper sweeps five ratio stages")
	}
	if RatioStages[0].S != 0.1 || RatioStages[0].T != 1 {
		t.Fatal("first stage must be 1/10:1")
	}
	if RatioStages[4].S != 1 || RatioStages[4].T != 0.1 {
		t.Fatal("last stage must be 1:1/10")
	}
}

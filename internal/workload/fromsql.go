package workload

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/topology"
)

// SpecFromSQL builds an executable Spec from a StreamSQL query text: the
// full Appendix B pipeline — parse, CNF, classify, pattern-match — wired
// to the node attributes, with the primary routable predicate driving both
// the substrate index and the exploration matcher. This is the path a
// query posed at the base station takes; the hand-built constructors
// (Query1, Query2, ...) are its pre-compiled equivalents, and the tests
// assert they agree.
//
// Requirements: the query's dynamic join must be the single-attribute u
// equality or an abs-difference threshold (the forms Queries 0-3 use), and
// at least one primary routable predicate must exist — otherwise only the
// grouped algorithms could run it, and the caller should say so explicitly
// rather than silently flooding.
func SpecFromSQL(src string, topo *topology.Topology, nodes []NodeInfo, rates Rates) (*Spec, error) {
	schema := query.DefaultSchema()
	c, err := query.Compile(src, schema)
	if err != nil {
		return nil, err
	}
	if len(c.Primary) == 0 {
		return nil, fmt.Errorf("workload: query has no routable join predicate; only join-at-base strategies apply")
	}
	primary := c.Primary[0]

	// The compiled predicates are evaluated once per node or per candidate
	// pair on every exploration probe, so the bindings are two reusable
	// heap cells mutated in place rather than fresh values boxed into the
	// Binding interface on every call. Specs are driven by one goroutine
	// per run (the engine steps queries sequentially; sweep workers build
	// their own specs), which makes the reuse safe.
	pairCell := &PairBinding{}
	bindingFor := func(s, t topology.NodeID) query.Binding {
		pairCell.S, pairCell.T = &nodes[s], &nodes[t]
		return pairCell
	}
	selfCell := &PairBinding{}
	selfBinding := func(id topology.NodeID) query.Binding {
		selfCell.S, selfCell.T = &nodes[id], &nodes[id]
		return selfCell
	}
	dynCell := &dynBinding{}

	// The substrate indexes the primary target attribute; values come from
	// the node statics through the same binding the evaluator uses.
	values := make([]int32, topo.N())
	for i := range values {
		values[i] = PairBinding{S: &nodes[i], T: &nodes[i]}.Value(query.T, primary.TargetAttr)
	}

	spec := &Spec{
		Name:  "SQL",
		W:     c.WindowSize,
		Nodes: nodes,
		EligibleS: func(id topology.NodeID) bool {
			return id != topology.Base && c.Parts.SelS.Eval(selfBinding(id))
		},
		EligibleT: func(id topology.NodeID) bool {
			return id != topology.Base && c.Parts.SelT.Eval(selfBinding(id))
		},
		PairMatch: func(s, t topology.NodeID) bool {
			return c.Parts.JoinStatic.Eval(bindingFor(s, t))
		},
		DynJoin: func(sv, tv int32) bool {
			dynCell.sv, dynCell.tv = sv, tv
			return c.Parts.JoinDynamic.Eval(dynCell)
		},
		Indexes: []routing.IndexSpec{{
			Attr:   primary.TargetAttr,
			Kind:   routing.BloomSummary,
			Values: values,
		}},
		Rates: rates,
	}
	// Grouping: with a single primary equality the join groups are keyed
	// by the routing key; secondary clauses break transitivity, so
	// grouping is only exposed when none exist.
	if len(c.Secondary) == 0 && len(c.Parts.JoinStatic) == 1 {
		spec.GroupKeyS = func(id topology.NodeID) (int64, bool) {
			return int64(primary.SourceTerm.Eval(selfBinding(id))), true
		}
		spec.GroupKeyT = func(id topology.NodeID) (int64, bool) {
			return int64(values[id]), true
		}
	} else {
		spec.GroupKeyS = func(topology.NodeID) (int64, bool) { return 0, false }
		spec.GroupKeyT = func(topology.NodeID) (int64, bool) { return 0, false }
	}
	spec.SearchMatcher = func(s topology.NodeID, sub *routing.Substrate) routing.Matcher {
		key := primary.SourceTerm.Eval(selfBinding(s))
		col := sub.ColumnIndex(primary.TargetAttr)
		return &specMatcher{spec: spec, s: s, mayMatch: func(e routing.Entry) bool {
			return e.Scalar(col).MayContain(key)
		}}
	}
	return spec, nil
}

// dynBinding binds only the dynamic reading attributes (u, v) for
// evaluating dynamic join clauses at a join node.
type dynBinding struct {
	sv, tv int32
}

// Value implements query.Binding.
func (b dynBinding) Value(rel query.Rel, attr string) int32 {
	switch attr {
	case "u", "v":
		if rel == query.S {
			return b.sv
		}
		return b.tv
	default:
		panic("workload: dynamic join clause references non-reading attribute " + attr)
	}
}

package workload

import (
	"repro/internal/query"
	"repro/internal/topology"
)

// Sampler yields each producer's per-cycle reading and send decision. The
// join engines consume data exclusively through this interface so the same
// engine runs the synthetic u workload (Generator) and the humidity
// workload (HumiditySampler).
type Sampler interface {
	Sample(id topology.NodeID, role query.Rel, cycle int) (value int32, send bool)
}

// HumiditySampler adapts the humidity process to the Sampler interface:
// every node reads every cycle (Query 3 runs with sigma_s = sigma_t =
// 100%), and a node's reading is role-independent — a sensor has one
// physical humidity value per cycle regardless of which side of the join
// it serves.
type HumiditySampler struct {
	H *Humidity
}

// Sample implements Sampler.
func (h HumiditySampler) Sample(id topology.NodeID, _ query.Rel, cycle int) (int32, bool) {
	return h.H.Value(id, cycle), true
}

var _ Sampler = (*Generator)(nil)
var _ Sampler = HumiditySampler{}

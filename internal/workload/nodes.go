// Package workload builds the paper's experimental workload (section 4.1):
// the Table 1 static attributes, the four queries of Table 2 in compiled
// form, selectivity-controlled dynamic value generation for u, and the
// synthetic humidity process standing in for the Intel Research-Berkeley
// trace (attribute v).
package workload

import (
	"math"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/topology"
)

// NodeInfo carries one node's static attributes (Table 1).
type NodeInfo struct {
	// ID is the unique identifier.
	ID int32
	// X is drawn from [7, 60] with an exponential spatial distribution —
	// nodes near the field centre receive higher values.
	X int32
	// Y is uniform over [0, 10).
	Y int32
	// Cid and Rid are the column and row of the node's cell in a 4x4
	// partition of the deployment field.
	Cid, Rid int32
	// Pos is the real position on the 256m x 256m field.
	Pos geom.Point
}

// BuildNodes derives the static attributes for every node of topo,
// deterministically from seed.
func BuildNodes(topo *topology.Topology, seed uint64) []NodeInfo {
	src := rng.New(seed).Split(0xA77)
	nodes := make([]NodeInfo, topo.N())
	centre := geom.Point{X: topology.Field / 2, Y: topology.Field / 2}
	maxDist := centre.Dist(geom.Point{})
	for i := range nodes {
		id := topology.NodeID(i)
		p := topo.Pos(id)
		nrng := src.Split(uint64(i))
		// x: exponential spatial skew. The mean decreases with distance
		// from the centre; values clamp into [7, 60].
		rel := p.Dist(centre) / maxDist // 0 at centre, 1 at corner
		mean := 53 * math.Exp(-2.5*rel)
		x := 7 + int32(math.Min(53, mean*nrng.ExpFloat64()))
		if x > 60 {
			x = 60
		}
		cell := topology.Field / 4
		nodes[i] = NodeInfo{
			ID:  int32(i),
			X:   x,
			Y:   int32(nrng.Intn(10)),
			Cid: int32(math.Min(3, p.X/cell)),
			Rid: int32(math.Min(3, p.Y/cell)),
			Pos: p,
		}
	}
	return nodes
}

// PairBinding adapts a node pair (plus optional dynamic u/v readings) to
// the query.Binding interface so predicates can be evaluated directly over
// workload state.
type PairBinding struct {
	S, T *NodeInfo
	// SU, TU are the current dynamic readings (u for Queries 0-2, v for
	// Query 3); only consulted when HasDyn is set.
	SU, TU int32
	HasDyn bool
}

// Value implements query.Binding.
func (b PairBinding) Value(rel query.Rel, attr string) int32 {
	n := b.S
	dyn := b.SU
	if rel == query.T {
		n = b.T
		dyn = b.TU
	}
	switch attr {
	case "id":
		return n.ID
	case "x":
		return n.X
	case "y":
		return n.Y
	case "cid":
		return n.Cid
	case "rid":
		return n.Rid
	case "posx":
		return int32(n.Pos.X)
	case "posy":
		return int32(n.Pos.Y)
	case "u", "v":
		if !b.HasDyn {
			panic("workload: dynamic attribute read without dynamic binding")
		}
		return dyn
	default:
		panic("workload: unbound attribute " + attr)
	}
}

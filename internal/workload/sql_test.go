package workload

import (
	"testing"

	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestQueryTextsParse(t *testing.T) {
	for _, name := range []string{"Q0", "Q1", "Q2", "Q3"} {
		c, err := CompileText(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c == nil {
			t.Fatalf("%s: nil compilation", name)
		}
	}
	if _, err := CompileText("Q9"); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, ok := QueryText("Q9"); ok {
		t.Fatal("QueryText claims Q9 exists")
	}
}

func TestQ1TextMatchesCompiledSpec(t *testing.T) {
	// The SQL pipeline and the hand-built Spec must agree on (a) window
	// size, (b) eligibility, (c) the static pair predicate, and (d) the
	// routing key — i.e. the text IS the query the engines run.
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := BuildNodes(topo, 1)
	spec := Query1(topo, nodes, Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	c, err := CompileText("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowSize != spec.W {
		t.Fatalf("window %d vs spec %d", c.WindowSize, spec.W)
	}
	if len(c.Primary) != 1 || c.Primary[0].TargetAttr != "y" {
		t.Fatalf("primary = %+v", c.Primary)
	}
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		b := PairBinding{S: &nodes[id], T: &nodes[id]}
		// (b) static selections agree with Spec eligibility (modulo the
		// Spec's extra base-station exclusion on the S side).
		selS := c.Parts.SelS.Eval(b)
		if id != topology.Base && selS != spec.EligibleS(id) {
			t.Fatalf("node %d: SQL SelS=%v, spec=%v", i, selS, spec.EligibleS(id))
		}
		if c.Parts.SelT.Eval(b) != spec.EligibleT(id) {
			t.Fatalf("node %d: SelT disagrees", i)
		}
	}
	// (c) pair predicate and (d) routing key on sampled pairs.
	for s := 1; s < topo.N(); s += 3 {
		for tt := 1; tt < topo.N(); tt += 7 {
			if s == tt {
				continue
			}
			b := PairBinding{S: &nodes[s], T: &nodes[tt]}
			if c.Parts.JoinStatic.Eval(b) != spec.PairMatch(topology.NodeID(s), topology.NodeID(tt)) {
				t.Fatalf("pair (%d,%d): static join disagrees", s, tt)
			}
		}
		key := c.Primary[0].SourceTerm.Eval(PairBinding{S: &nodes[s], T: &nodes[s]})
		if key != nodes[s].X-5 {
			t.Fatalf("node %d: SQL routing key %d, spec key %d", s, key, nodes[s].X-5)
		}
	}
}

func TestQ2TextMatchesCompiledSpec(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := BuildNodes(topo, 1)
	spec := Query2(topo, nodes, Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	c, err := CompileText("Q2")
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowSize != 1 || c.WindowSize != spec.W {
		t.Fatal("window size")
	}
	if len(c.Primary) != 1 || c.Primary[0].TargetAttr != "cid" {
		t.Fatalf("primary = %+v", c.Primary)
	}
	if len(c.Secondary) != 1 {
		t.Fatalf("secondary = %v", c.Secondary)
	}
	full := append(query.CNF{}, c.Parts.JoinStatic...)
	for s := 1; s < topo.N(); s += 2 {
		for tt := 2; tt < topo.N(); tt += 5 {
			if s == tt {
				continue
			}
			b := PairBinding{S: &nodes[s], T: &nodes[tt]}
			if full.Eval(b) != spec.PairMatch(topology.NodeID(s), topology.NodeID(tt)) {
				t.Fatalf("pair (%d,%d): join disagrees", s, tt)
			}
		}
	}
}

func TestQ3TextDynamicPredicateMatchesSpec(t *testing.T) {
	topo := topology.Generate(topology.Intel, 0, 0)
	nodes := BuildNodes(topo, 1)
	spec := Query3(topo, nodes, Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	c, err := CompileText("Q3")
	if err != nil {
		t.Fatal(err)
	}
	for _, vals := range [][2]int32{{0, 500}, {0, 1000}, {0, 1001}, {5000, 3999}, {3000, 3000}} {
		b := PairBinding{S: &nodes[1], T: &nodes[2], SU: vals[0], TU: vals[1], HasDyn: true}
		if c.Parts.JoinDynamic.Eval(b) != spec.DynJoin(vals[0], vals[1]) {
			t.Fatalf("dyn join disagrees at %v", vals)
		}
	}
}

func TestSpecFromSQLMatchesQuery1(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := BuildNodes(topo, 1)
	rates := Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
	hand := Query1(topo, nodes, rates)
	src, _ := QueryText("Q1")
	sql, err := SpecFromSQL(src, topo, nodes, rates)
	if err != nil {
		t.Fatal(err)
	}
	if sql.W != hand.W {
		t.Fatalf("W: %d vs %d", sql.W, hand.W)
	}
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		if sql.EligibleS(id) != hand.EligibleS(id) || sql.EligibleT(id) != hand.EligibleT(id) {
			t.Fatalf("eligibility differs at node %d", i)
		}
	}
	// Groups must be identical pair sets.
	pairSet := func(s *Spec) map[[2]topology.NodeID]bool {
		out := map[[2]topology.NodeID]bool{}
		for _, g := range s.Groups() {
			for _, p := range g.Pairs {
				out[p] = true
			}
		}
		return out
	}
	hp, sp := pairSet(hand), pairSet(sql)
	if len(hp) != len(sp) {
		t.Fatalf("pair count: hand %d vs sql %d", len(hp), len(sp))
	}
	for p := range hp {
		if !sp[p] {
			t.Fatalf("sql spec missing pair %v", p)
		}
	}
	// Dynamic join agreement.
	for _, v := range [][2]int32{{1, 1}, {1, 2}, {0, 0}} {
		if sql.DynJoin(v[0], v[1]) != hand.DynJoin(v[0], v[1]) {
			t.Fatalf("dyn join differs at %v", v)
		}
	}
}

func TestSpecFromSQLRunsEndToEnd(t *testing.T) {
	// The SQL-built spec must execute and deliver the same results as the
	// hand-built spec under every shared-order engine.
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := BuildNodes(topo, 1)
	rates := Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.2}
	src, _ := QueryText("Q1")
	sql, err := SpecFromSQL(src, topo, nodes, rates)
	if err != nil {
		t.Fatal(err)
	}
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: sql.Indexes}, nil)
	for i := 0; i < topo.N(); i++ {
		s := topology.NodeID(i)
		if !sql.EligibleS(s) {
			continue
		}
		found := sub.FindTargets(s, sql.SearchMatcher(s, sub), nil)
		want := 0
		for j := 0; j < topo.N(); j++ {
			tt := topology.NodeID(j)
			if tt != s && sql.EligibleT(tt) && sql.PairMatch(s, tt) {
				want++
			}
		}
		if len(found) != want {
			t.Fatalf("sql spec search from %d found %d, want %d", s, len(found), want)
		}
	}
}

func TestSpecFromSQLRejectsUnroutable(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	nodes := BuildNodes(topo, 1)
	// Inequality join: no routable primary.
	if _, err := SpecFromSQL("SELECT S.id FROM S, T WHERE S.id < T.id AND S.u = T.u",
		topo, nodes, Rates{}); err == nil {
		t.Fatal("unroutable query accepted")
	}
	// Syntax error propagates.
	if _, err := SpecFromSQL("SELEC", topo, nodes, Rates{}); err == nil {
		t.Fatal("syntax error swallowed")
	}
}

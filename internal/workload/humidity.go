package workload

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Humidity is the synthetic stand-in for the Intel Research-Berkeley
// humidity trace (attribute v, Table 1). The real trace is unavailable
// offline; what Query 3 depends on is that v is (a) scaled into the 16-bit
// ADC range, (b) spatially correlated — nearby motes read similar values,
// so the region join's |s.v - t.v| > 1000 clause fires on a minority of
// cycles — and (c) temporally smooth with occasional excursions (doors
// opening, HVAC cycles) that produce events.
//
// The process is: v_i(t) = field(pos_i) + season(t) + ar_i(t), where field
// is a smooth spatial gradient across the lab, season is a shared slow
// sinusoid, and ar_i is a per-node mean-reverting AR(1) with heavy-ish
// shocks. All terms are deterministic in the seed.
type Humidity struct {
	topo *topology.Topology
	seed uint64
	// ar state, advanced lazily per node up to lastCycle.
	state     []float64
	lastCycle []int
	streams   []*rng.Source
}

// NewHumidity returns a humidity process over topo.
func NewHumidity(topo *topology.Topology, seed uint64) *Humidity {
	n := topo.N()
	h := &Humidity{
		topo:      topo,
		seed:      seed,
		state:     make([]float64, n),
		lastCycle: make([]int, n),
		streams:   make([]*rng.Source, n),
	}
	root := rng.New(seed).Split(0x481D)
	for i := 0; i < n; i++ {
		h.streams[i] = root.Split(uint64(i))
		h.lastCycle[i] = -1
	}
	return h
}

// field is the static spatial component: a smooth gradient plus a bump,
// spanning ~6000 ADC counts across the lab so that distant motes differ by
// more than the 1000-count event threshold while neighbours differ by less.
func (h *Humidity) field(p geom.Point) float64 {
	// Normalize into [0,1] using the topology's bounding extent.
	nx := p.X / topology.Field
	ny := p.Y / topology.Field
	if h.topo.Kind() == topology.Intel {
		nx = p.X / 42
		ny = p.Y / 30
	}
	return 20000 + 2000*nx + 1250*ny + 600*math.Sin(3*nx*math.Pi)*math.Cos(2*ny*math.Pi)
}

// Value returns node id's humidity reading (16-bit scaled) at cycle.
// Cycles must be queried in non-decreasing order per node, which matches
// how the sampling loop consumes them.
func (h *Humidity) Value(id topology.NodeID, cycle int) int32 {
	// Advance the AR(1) state to the requested cycle.
	const (
		phi   = 0.9 // mean reversion
		sigma = 130 // shock scale (ADC counts)
	)
	for h.lastCycle[id] < cycle {
		h.lastCycle[id]++
		shock := h.streams[id].NormFloat64() * sigma
		// Occasional excursions: ~1.5% of cycles get a large disturbance
		// (a door opens near the mote). Together with the spatial
		// gradient this puts the adjacent-pair event rate (|dv| > 1000)
		// around 10% — events are "relatively rare" (section 1) but
		// frequent enough to exercise every result path.
		if h.streams[id].Bool(0.015) {
			shock += h.streams[id].NormFloat64() * 1100
		}
		h.state[id] = phi*h.state[id] + shock
	}
	season := 800 * math.Sin(2*math.Pi*float64(cycle)/400)
	v := h.field(h.topo.Pos(id)) + season + h.state[id]
	if v < 0 {
		v = 0
	}
	if v > 65535 {
		v = 65535
	}
	return int32(v)
}

package workload

import (
	"math"

	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Rates bundles the three selectivities of the cost model (Appendix D):
// SigmaS and SigmaT are the probabilities that an eligible s / t node sends
// a reading in a given sampling cycle; SigmaST is the probability that a
// pair of sent readings satisfies the dynamic join predicate.
type Rates struct {
	SigmaS, SigmaT, SigmaST float64
}

// RatioStages are the five relative selectivity stages every bar-group
// figure sweeps: 1/10:1, 1/6:1/2, 1/2:1/2, 1/2:1/6, 1:1/10.
var RatioStages = []struct {
	Name string
	S, T float64
}{
	{"1/10:1", 1.0 / 10, 1},
	{"1/6:1/2", 1.0 / 6, 1.0 / 2},
	{"1/2:1/2", 1.0 / 2, 1.0 / 2},
	{"1/2:1/6", 1.0 / 2, 1.0 / 6},
	{"1:1/10", 1, 1.0 / 10},
}

// JoinSelectivities are the sigma_st values swept within each stage.
var JoinSelectivities = []float64{0.20, 0.10, 0.05}

// uDomain returns the size of u's uniform domain for a join selectivity:
// u ~ U[0, ceil(1/sigma_st)) makes Prob[u1 = u2] = sigma_st for integer
// 1/sigma_st (Table 1's construction).
func uDomain(sigmaST float64) int {
	if sigmaST <= 0 {
		return math.MaxInt32 // joins never match
	}
	if sigmaST >= 1 {
		return 1
	}
	return int(math.Ceil(1 / sigmaST))
}

// Generator produces each producer's per-cycle reading and send decision.
// It supports the adaptivity experiments' two skew modes (section 6.1):
// per-node rate overrides (spatial skew) and a mid-run switch of all rates
// (temporal change).
type Generator struct {
	defaults Rates
	perNode  map[topology.NodeID]Rates
	// switchCycle, when >= 0, swaps in switched (globally) from that
	// sampling cycle on.
	switchCycle int
	switched    Rates
	src         *rng.Source
}

// NewGenerator returns a generator with uniform rates, seeded for exact
// reproducibility.
func NewGenerator(defaults Rates, seed uint64) *Generator {
	return &Generator{
		defaults:    defaults,
		perNode:     map[topology.NodeID]Rates{},
		switchCycle: -1,
		src:         rng.New(seed).Split(0xDA7A),
	}
}

// SetNodeRates overrides the rates for one node (spatial skew, Fig 12a).
func (g *Generator) SetNodeRates(id topology.NodeID, r Rates) { g.perNode[id] = r }

// SetSwitch changes all rates to r from sampling cycle c (temporal change,
// Fig 12b). Per-node overrides are ignored after the switch.
func (g *Generator) SetSwitch(c int, r Rates) {
	g.switchCycle = c
	g.switched = r
}

// RatesAt returns the rates governing node id at cycle.
func (g *Generator) RatesAt(id topology.NodeID, cycle int) Rates {
	if g.switchCycle >= 0 && cycle >= g.switchCycle {
		return g.switched
	}
	if r, ok := g.perNode[id]; ok {
		return r
	}
	return g.defaults
}

// Sample returns node id's reading for the cycle and whether the node's
// dynamic selection admits it (i.e. whether it sends). role selects the
// sigma_s or sigma_t rate. Draws are a pure function of (seed, id, cycle,
// role) so algorithms compared on the same seed see identical data.
func (g *Generator) Sample(id topology.NodeID, role query.Rel, cycle int) (value int32, send bool) {
	r := g.RatesAt(id, cycle)
	stream := g.src.Split(uint64(id)<<20 ^ uint64(cycle)<<1 ^ uint64(role))
	value = int32(stream.Intn(uDomain(r.SigmaST)))
	p := r.SigmaS
	if role == query.T {
		p = r.SigmaT
	}
	return value, stream.Bool(p)
}

package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/summary"
	"repro/internal/topology"
)

// Spec is a compiled query ready for execution by the join engines: the
// Table 2 predicates pre-processed per section 2 into eligibility tests,
// the static pair predicate, a substrate search matcher, the dynamic join
// predicate, and grouping/hash keys for the grouped algorithms.
type Spec struct {
	// Name labels the query ("Q0".."Q3").
	Name string
	// W is the join window size in tuples per producer pair.
	W int
	// Nodes carries every node's static attributes.
	Nodes []NodeInfo

	// EligibleS / EligibleT are the pre-evaluated static selections: may
	// this node produce for S (resp. T)?
	EligibleS, EligibleT func(id topology.NodeID) bool
	// PairMatch is the full static join predicate over a candidate pair
	// (primary + secondary clauses, including region predicates).
	PairMatch func(s, t topology.NodeID) bool
	// SearchMatcher builds the substrate matcher that discovers s's join
	// candidates during initiation.
	SearchMatcher func(s topology.NodeID, sub *routing.Substrate) routing.Matcher
	// DynJoin is the compiled dynamic join predicate over two readings.
	DynJoin func(sv, tv int32) bool

	// GroupKeyS / GroupKeyT map producers to join-group keys. ok is false
	// when the query's join predicate is not commutative-transitive
	// (section 5.2) and no grouping beyond single pairs exists.
	GroupKeyS, GroupKeyT func(id topology.NodeID) (int64, bool)

	// Indexes and IndexPositions describe the substrate the query needs.
	Indexes        []routing.IndexSpec
	IndexPositions bool

	// Rates are the data-generation ground truth (what an oracle
	// optimizer would be told).
	Rates Rates

	// pairs, when non-nil, fixes the matching pairs explicitly (Query 0's
	// random endpoints).
	pairs map[[2]topology.NodeID]bool
}

// Group is one join group: a maximal set of producers joining on the same
// key (a complete bipartite subgraph for transitive predicates, or a
// single pair otherwise).
type Group struct {
	Key   int64
	S, T  []topology.NodeID
	Pairs [][2]topology.NodeID
}

// Groups enumerates the query's join groups in deterministic key order.
func (q *Spec) Groups() []Group {
	type bucket struct {
		s, t []topology.NodeID
	}
	n := len(q.Nodes)
	byKey := map[int64]*bucket{}
	var keys []int64
	add := func(key int64, id topology.NodeID, isS bool) {
		b, ok := byKey[key]
		if !ok {
			b = &bucket{}
			byKey[key] = b
			keys = append(keys, key)
		}
		if isS {
			b.s = append(b.s, id)
		} else {
			b.t = append(b.t, id)
		}
	}
	grouped := true
	for i := 0; i < n && grouped; i++ {
		id := topology.NodeID(i)
		if q.EligibleS(id) {
			if key, ok := q.GroupKeyS(id); ok {
				add(key, id, true)
			} else {
				grouped = false
			}
		}
		if q.EligibleT(id) {
			if key, ok := q.GroupKeyT(id); ok {
				add(key, id, false)
			} else {
				grouped = false
			}
		}
	}
	if grouped {
		out := make([]Group, 0, len(keys))
		sortInt64(keys)
		for _, key := range keys {
			b := byKey[key]
			if len(b.s) == 0 || len(b.t) == 0 {
				continue
			}
			g := Group{Key: key, S: b.s, T: b.t}
			for _, s := range b.s {
				for _, t := range b.t {
					if q.PairMatch(s, t) {
						g.Pairs = append(g.Pairs, [2]topology.NodeID{s, t})
					}
				}
			}
			if len(g.Pairs) > 0 {
				out = append(out, g)
			}
		}
		return out
	}
	// Non-transitive predicate: every matching pair is its own group.
	var out []Group
	for i := 0; i < n; i++ {
		s := topology.NodeID(i)
		if !q.EligibleS(s) {
			continue
		}
		for j := 0; j < n; j++ {
			t := topology.NodeID(j)
			if s == t || !q.EligibleT(t) || !q.PairMatch(s, t) {
				continue
			}
			out = append(out, Group{
				Key:   int64(i)<<20 | int64(j),
				S:     []topology.NodeID{s},
				T:     []topology.NodeID{t},
				Pairs: [][2]topology.NodeID{{s, t}},
			})
		}
	}
	return out
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// equalityDyn is the u-equality dynamic join of Queries 0-2.
func equalityDyn(sv, tv int32) bool { return sv == tv }

// specMatcher adapts a Spec to routing.Matcher for one source node: the
// subtree test prunes on the primary predicate's summary, the node test
// applies the full static join predicate plus target eligibility. The
// mayMatch closures resolve their attribute columns once at matcher
// construction (routing.Substrate.ColumnIndex), so the per-edge pruning
// test inside FindTargets is a slice index into the columnar tables.
type specMatcher struct {
	spec       *Spec
	s          topology.NodeID
	mayMatch   func(e routing.Entry) bool
	matchesAll bool
}

func (m *specMatcher) MatchNode(id topology.NodeID) bool {
	return m.spec.EligibleT(id) && id != m.s && m.spec.PairMatch(m.s, id)
}

func (m *specMatcher) MayMatchSubtree(e routing.Entry) bool {
	if m.matchesAll || m.mayMatch == nil {
		return true
	}
	return m.mayMatch(e)
}

// Query0 is Table 2's 1:1 join with random endpoints: nPairs disjoint
// (s, t) pairs drawn uniformly, joining on S.u = T.u. The static pairing is
// imposed through the id attribute (sigma_{id=random}), so routing searches
// for the partner's id.
func Query0(topo *topology.Topology, nodes []NodeInfo, nPairs int, rates Rates, seed uint64) *Spec {
	src := rng.New(seed).Split(0x40)
	perm := src.Perm(topo.N() - 1) // exclude the base station (node 0)
	if 2*nPairs > len(perm) {
		panic(fmt.Sprintf("workload: %d pairs need %d nodes, have %d", nPairs, 2*nPairs, len(perm)))
	}
	pairs := map[[2]topology.NodeID]bool{}
	partner := map[topology.NodeID]topology.NodeID{}
	sSet := map[topology.NodeID]bool{}
	tSet := map[topology.NodeID]bool{}
	for i := 0; i < nPairs; i++ {
		s := topology.NodeID(perm[2*i] + 1)
		t := topology.NodeID(perm[2*i+1] + 1)
		pairs[[2]topology.NodeID{s, t}] = true
		partner[s], partner[t] = t, s
		sSet[s], tSet[t] = true, true
	}
	ids := make([]int32, topo.N())
	for i := range ids {
		ids[i] = int32(i)
	}
	spec := &Spec{
		Name:      "Q0",
		W:         3,
		Nodes:     nodes,
		EligibleS: func(id topology.NodeID) bool { return sSet[id] },
		EligibleT: func(id topology.NodeID) bool { return tSet[id] },
		PairMatch: func(s, t topology.NodeID) bool { return pairs[[2]topology.NodeID{s, t}] },
		DynJoin:   equalityDyn,
		// 1:1 pairing is not transitive in any useful sense, but every
		// pair is trivially a group keyed by its S endpoint.
		GroupKeyS: func(id topology.NodeID) (int64, bool) { return int64(id), true },
		GroupKeyT: func(id topology.NodeID) (int64, bool) { return int64(partner[id]), true },
		Indexes:   []routing.IndexSpec{{Attr: "id", Kind: routing.BloomSummary, Values: ids}},
		Rates:     rates,
		pairs:     pairs,
	}
	spec.SearchMatcher = func(s topology.NodeID, sub *routing.Substrate) routing.Matcher {
		want := partner[s]
		idCol := sub.ColumnIndex("id")
		return &specMatcher{spec: spec, s: s, mayMatch: func(e routing.Entry) bool {
			return e.Scalar(idCol).MayContain(int32(want))
		}}
	}
	return spec
}

// Query1 is Table 2's non-1:1 join with uniform endpoints:
// S.id < 25, T.id > 50, S.x = T.y + 5, S.u = T.u.
func Query1(topo *topology.Topology, nodes []NodeInfo, rates Rates) *Spec {
	ys := make([]int32, topo.N())
	ids := make([]int32, topo.N())
	for i := range ys {
		ys[i] = nodes[i].Y
		ids[i] = nodes[i].ID
	}
	spec := &Spec{
		Name:      "Q1",
		W:         3,
		Nodes:     nodes,
		EligibleS: func(id topology.NodeID) bool { return nodes[id].ID < 25 && id != topology.Base },
		EligibleT: func(id topology.NodeID) bool { return nodes[id].ID > 50 },
		PairMatch: func(s, t topology.NodeID) bool { return nodes[s].X == nodes[t].Y+5 },
		DynJoin:   equalityDyn,
		GroupKeyS: func(id topology.NodeID) (int64, bool) { return int64(nodes[id].X) - 5, true },
		GroupKeyT: func(id topology.NodeID) (int64, bool) { return int64(nodes[id].Y), true },
		Indexes: []routing.IndexSpec{
			{Attr: "y", Kind: routing.BloomSummary, Values: ys},
			{Attr: "id", Kind: routing.IntervalSummary, Values: ids},
		},
		Rates: rates,
	}
	spec.SearchMatcher = func(s topology.NodeID, sub *routing.Substrate) routing.Matcher {
		key := nodes[s].X - 5 // pattern matcher inversion of S.x = T.y+5
		yCol, idCol := sub.ColumnIndex("y"), sub.ColumnIndex("id")
		return &specMatcher{spec: spec, s: s, mayMatch: func(e routing.Entry) bool {
			// Prune by the join key AND by the target selection
			// (T.id > 50): a subtree with no eligible targets is skipped.
			iv := e.Scalar(idCol).(*summary.Interval)
			return e.Scalar(yCol).MayContain(key) && iv.Overlaps(51, 1<<15)
		}}
	}
	return spec
}

// Query2 is Table 2's perimeter join (Query P): S.rid = 0, T.rid = 3,
// S.cid = T.cid, S.id % 4 = T.id % 4, S.u = T.u. The cid equality is the
// primary (routable) clause; the id-residue equality is secondary.
func Query2(topo *topology.Topology, nodes []NodeInfo, rates Rates) *Spec {
	cids := make([]int32, topo.N())
	rids := make([]int32, topo.N())
	for i := range cids {
		cids[i] = nodes[i].Cid
		rids[i] = nodes[i].Rid
	}
	match := func(s, t topology.NodeID) bool {
		return nodes[s].Cid == nodes[t].Cid && nodes[s].ID%4 == nodes[t].ID%4
	}
	spec := &Spec{
		Name:      "Q2",
		W:         1,
		Nodes:     nodes,
		EligibleS: func(id topology.NodeID) bool { return nodes[id].Rid == 0 && id != topology.Base },
		EligibleT: func(id topology.NodeID) bool { return nodes[id].Rid == 3 && id != topology.Base },
		PairMatch: match,
		DynJoin:   equalityDyn,
		GroupKeyS: func(id topology.NodeID) (int64, bool) {
			return int64(nodes[id].Cid)<<8 | int64(nodes[id].ID%4), true
		},
		GroupKeyT: func(id topology.NodeID) (int64, bool) {
			return int64(nodes[id].Cid)<<8 | int64(nodes[id].ID%4), true
		},
		Indexes: []routing.IndexSpec{
			{Attr: "cid", Kind: routing.BloomSummary, Values: cids},
			{Attr: "rid", Kind: routing.BloomSummary, Values: rids},
		},
		Rates: rates,
	}
	spec.SearchMatcher = func(s topology.NodeID, sub *routing.Substrate) routing.Matcher {
		key := nodes[s].Cid
		cidCol, ridCol := sub.ColumnIndex("cid"), sub.ColumnIndex("rid")
		return &specMatcher{spec: spec, s: s, mayMatch: func(e routing.Entry) bool {
			// Prune by the join key AND the target selection (T.rid = 3).
			return e.Scalar(cidCol).MayContain(key) && e.Scalar(ridCol).MayContain(3)
		}}
	}
	return spec
}

// Query3Radius is the region join's distance threshold (Query R: readings
// from adjacent sensors; Table 2 uses Dst < 5m).
const Query3Radius = 5.0

// Query3EventThreshold is the dynamic event condition |s.v-t.v| > 1000.
const Query3EventThreshold = 1000

// Query3 is Table 2's region-based join (Query R): every pair of distinct
// nodes within 5 metres with s.id < t.id, joining when their humidity
// readings differ by more than 1000 counts. The region predicate is
// primary (routed via the R-tree); the id ordering is secondary. The
// predicate is not transitive, so no grouping applies.
func Query3(topo *topology.Topology, nodes []NodeInfo, rates Rates) *Spec {
	spec := &Spec{
		Name:      "Q3",
		W:         3,
		Nodes:     nodes,
		EligibleS: func(id topology.NodeID) bool { return id != topology.Base },
		EligibleT: func(id topology.NodeID) bool { return id != topology.Base },
		PairMatch: func(s, t topology.NodeID) bool {
			return nodes[s].ID < nodes[t].ID && nodes[s].Pos.Dist(nodes[t].Pos) < Query3Radius
		},
		DynJoin: func(sv, tv int32) bool {
			d := sv - tv
			if d < 0 {
				d = -d
			}
			return d > Query3EventThreshold
		},
		GroupKeyS:      func(topology.NodeID) (int64, bool) { return 0, false },
		GroupKeyT:      func(topology.NodeID) (int64, bool) { return 0, false },
		IndexPositions: true,
		Rates:          rates,
	}
	spec.SearchMatcher = func(s topology.NodeID, sub *routing.Substrate) routing.Matcher {
		pos := nodes[s].Pos
		return &specMatcher{spec: spec, s: s, mayMatch: func(e routing.Entry) bool {
			r := e.Region()
			return r != nil && r.MayContainWithin(pos, Query3Radius)
		}}
	}
	return spec
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided %d/1000 times", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.2) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("Bool(0.2) rate = %v", got)
	}
}

func TestBoolDegenerate(t *testing.T) {
	s := New(1)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if s.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !s.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(17)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(19)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make(map[int]bool, n)
		for _, v := range xs {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

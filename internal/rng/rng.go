// Package rng provides a small, deterministic pseudo-random number
// generator with cheap stream splitting.
//
// Every experiment in this repository must be exactly reproducible from a
// single run seed: the paper averages each data point across 9 runs with
// 95% confidence intervals, and regenerating a figure must not depend on
// global state or map iteration order. math/rand's global source is
// therefore never used; instead each component (topology generator, per-node
// sampler, loss model, ...) derives its own independent stream from the run
// seed via Split, so adding a consumer never perturbs the draws seen by
// another.
//
// The core generator is SplitMix64 (Steele, Lea & Flood 2014), which is
// statistically strong for simulation purposes, allocation free, and — being
// a pure 64-bit permutation of a counter — trivially splittable.
package rng

import "math"

// golden is the 64-bit golden ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Source is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New or Split for independent streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream keyed by label. Two children of
// the same parent with different labels produce uncorrelated sequences, and
// the parent's own sequence is not advanced.
func (s *Source) Split(label uint64) *Source {
	// Mix the label through one SplitMix64 round so adjacent labels
	// (0, 1, 2, ...) land far apart in state space.
	z := s.state + golden + mix(label)
	return &Source{state: mix(z)}
}

// mix is the SplitMix64 output permutation.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (s *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with non-positive n")
	}
	return int32(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits, the standard conversion.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inversion. Used for the spatially skewed attribute x (Table 1).
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal variate using the polar
// Box-Muller method. Used by the synthetic humidity process.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice
// (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

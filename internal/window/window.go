// Package window implements the windowed join state a join node maintains
// (sections 2 and 3.2): per-producer sliding windows of the last w tuples,
// probe-on-arrival join computation against the opposite relation's
// windows, and snapshot/restore used when adaptivity migrates a join
// window to a new join node ("the tuples in the old join window are
// transferred to the one in the new join node, resuming query computation
// seamlessly without loss of results").
package window

import (
	"sort"

	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Tuple is one buffered reading.
type Tuple struct {
	Producer topology.NodeID
	Value    int32
	Cycle    int
}

// ring is a fixed-capacity FIFO of the last w tuples.
type ring struct {
	buf   []Tuple
	start int
	n     int
}

func newRing(w int) *ring { return &ring{buf: make([]Tuple, w)} }

func (r *ring) push(t Tuple) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = t
		r.n++
		return
	}
	// Evict the oldest.
	r.buf[r.start] = t
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring) each(f func(Tuple)) {
	for i := 0; i < r.n; i++ {
		f(r.buf[(r.start+i)%len(r.buf)])
	}
}

func (r *ring) len() int { return r.n }

// Match is one join result: the two producers and the two joined readings.
type Match struct {
	S, T   topology.NodeID
	SV, TV int32
	// Cycle is the arrival cycle of the newer tuple; OldCycle that of the
	// buffered one (their difference is the result's intrinsic delay).
	Cycle    int
	OldCycle int
}

// State is the join state for a set of (s,t) producer pairs colocated at
// one join node. Each producer has one physical window shared by all its
// pairs (the paper's storage model: "window of values from each
// producer").
type State struct {
	w       int
	dyn     func(sv, tv int32) bool
	windows map[topology.NodeID]*ring
	// partners[s] lists t's joined with s, and vice versa; pair (s,t) is
	// stored on the S side only for iteration.
	partnersS map[topology.NodeID][]topology.NodeID // s -> ts
	partnersT map[topology.NodeID][]topology.NodeID // t -> ss
}

// NewState returns join state with window size w and the given dynamic
// join predicate.
func NewState(w int, dyn func(sv, tv int32) bool) *State {
	if w <= 0 {
		panic("window: window size must be positive")
	}
	return &State{
		w:         w,
		dyn:       dyn,
		windows:   map[topology.NodeID]*ring{},
		partnersS: map[topology.NodeID][]topology.NodeID{},
		partnersT: map[topology.NodeID][]topology.NodeID{},
	}
}

// AddPair registers a producer pair handled at this join node. Duplicate
// registrations are ignored.
func (st *State) AddPair(s, t topology.NodeID) {
	for _, x := range st.partnersS[s] {
		if x == t {
			return
		}
	}
	st.partnersS[s] = append(st.partnersS[s], t)
	st.partnersT[t] = append(st.partnersT[t], s)
}

// RemovePair unregisters a pair (join node migration moves pairs away).
func (st *State) RemovePair(s, t topology.NodeID) {
	st.partnersS[s] = remove(st.partnersS[s], t)
	st.partnersT[t] = remove(st.partnersT[t], s)
	if len(st.partnersS[s]) == 0 {
		delete(st.partnersS, s)
	}
	if len(st.partnersT[t]) == 0 {
		delete(st.partnersT, t)
	}
}

func remove(xs []topology.NodeID, v topology.NodeID) []topology.NodeID {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// Pairs returns the registered pair count.
func (st *State) Pairs() int {
	n := 0
	for _, ts := range st.partnersS {
		n += len(ts)
	}
	return n
}

// PairsFor returns how many pairs producer p participates in here (the
// N_pj of the group cost expression).
func (st *State) PairsFor(p topology.NodeID, role query.Rel) int {
	if role == query.S {
		return len(st.partnersS[p])
	}
	return len(st.partnersT[p])
}

// Arrive processes a new tuple from producer p acting in role: it is
// joined against the buffered windows of every partner, then enqueued into
// p's own window (evicting the expired tuple). Matches are returned in
// deterministic partner order.
func (st *State) Arrive(p topology.NodeID, role query.Rel, value int32, cycle int) []Match {
	return st.ArriveAppend(nil, p, role, value, cycle)
}

// ArriveAppend is Arrive with a caller-supplied result buffer: matches are
// appended to dst and the extended slice returned, so a hot loop that
// reuses its buffer across cycles joins without allocating. Ring iteration
// is by index (no callback) for the same reason.
//
//aspen:allocfree
func (st *State) ArriveAppend(dst []Match, p topology.NodeID, role query.Rel, value int32, cycle int) []Match {
	if role == query.S {
		dst = st.probeAsS(dst, p, value, cycle)
	} else {
		dst = st.probeAsT(dst, p, value, cycle)
	}
	st.buffer(p, value, cycle)
	return dst
}

// probeAsS joins value (from producer p acting as S) against the buffered
// windows of p's T partners.
//
//aspen:allocfree
func (st *State) probeAsS(dst []Match, p topology.NodeID, value int32, cycle int) []Match {
	for _, t := range st.partnersS[p] {
		win, ok := st.windows[t]
		if !ok {
			continue
		}
		for i := 0; i < win.n; i++ {
			old := &win.buf[(win.start+i)%len(win.buf)]
			if st.dyn(value, old.Value) {
				dst = append(dst, Match{S: p, T: t, SV: value, TV: old.Value, Cycle: cycle, OldCycle: old.Cycle})
			}
		}
	}
	return dst
}

// probeAsT joins value (from producer p acting as T) against the buffered
// windows of p's S partners.
//
//aspen:allocfree
func (st *State) probeAsT(dst []Match, p topology.NodeID, value int32, cycle int) []Match {
	for _, s := range st.partnersT[p] {
		win, ok := st.windows[s]
		if !ok {
			continue
		}
		for i := 0; i < win.n; i++ {
			old := &win.buf[(win.start+i)%len(win.buf)]
			if st.dyn(old.Value, value) {
				dst = append(dst, Match{S: s, T: p, SV: old.Value, TV: value, Cycle: cycle, OldCycle: old.Cycle})
			}
		}
	}
	return dst
}

// buffer enqueues the tuple into p's own window, creating it on first use.
func (st *State) buffer(p topology.NodeID, value int32, cycle int) {
	win, ok := st.windows[p]
	if !ok {
		win = newRing(st.w)
		st.windows[p] = win
	}
	win.push(Tuple{Producer: p, Value: value, Cycle: cycle})
}

// ArriveBoth processes a tuple from a producer that participates in both
// relations (Query 3's symmetric region join): the value joins as S
// against its t-partners and as T against its s-partners, but is buffered
// exactly once — a sensor has one physical window per reading stream.
func (st *State) ArriveBoth(p topology.NodeID, value int32, cycle int) []Match {
	return st.ArriveBothAppend(nil, p, value, cycle)
}

// ArriveBothAppend is ArriveBoth with a caller-supplied result buffer,
// mirroring ArriveAppend.
//
//aspen:allocfree
func (st *State) ArriveBothAppend(dst []Match, p topology.NodeID, value int32, cycle int) []Match {
	dst = st.probeAsS(dst, p, value, cycle)
	dst = st.probeAsT(dst, p, value, cycle)
	st.buffer(p, value, cycle)
	return dst
}

// Snapshot extracts the windows of the given producers, ordered for
// deterministic transfer, along with their wire size in bytes (what a
// migration transfer costs).
func (st *State) Snapshot(producers ...topology.NodeID) (tuples []Tuple, bytes int) {
	sort.Slice(producers, func(i, j int) bool { return producers[i] < producers[j] })
	for _, p := range producers {
		if win, ok := st.windows[p]; ok {
			win.each(func(t Tuple) { tuples = append(tuples, t) })
		}
	}
	return tuples, len(tuples) * sim.TupleBytes
}

// Restore loads transferred tuples into this state's windows, preserving
// arrival order.
func (st *State) Restore(tuples []Tuple) {
	for _, t := range tuples {
		win, ok := st.windows[t.Producer]
		if !ok {
			win = newRing(st.w)
			st.windows[t.Producer] = win
		}
		win.push(t)
	}
}

// Tuples returns the total buffered tuple count across every producer
// window — the join-state size the engine's observability layer samples
// per query at the epoch barrier.
func (st *State) Tuples() int {
	n := 0
	//aspen:orderinvariant commutative integer sum (ring length getter)
	for _, r := range st.windows {
		n += r.len()
	}
	return n
}

// WindowLen returns the buffered tuple count for producer p.
func (st *State) WindowLen(p topology.NodeID) int {
	if win, ok := st.windows[p]; ok {
		return win.len()
	}
	return 0
}

// DropProducer discards producer p's window (used when a pair leaves).
func (st *State) DropProducer(p topology.NodeID) { delete(st.windows, p) }

package window

import (
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/topology"
)

func eq(sv, tv int32) bool { return sv == tv }

func TestArriveJoinsAgainstOppositeWindow(t *testing.T) {
	st := NewState(3, eq)
	st.AddPair(1, 2)
	if m := st.Arrive(1, query.S, 7, 0); len(m) != 0 {
		t.Fatal("match against empty window")
	}
	m := st.Arrive(2, query.T, 7, 1)
	if len(m) != 1 {
		t.Fatalf("got %d matches, want 1", len(m))
	}
	if m[0].S != 1 || m[0].T != 2 || m[0].SV != 7 || m[0].TV != 7 {
		t.Fatalf("match = %+v", m[0])
	}
	if m[0].Cycle != 1 || m[0].OldCycle != 0 {
		t.Fatalf("match cycles = %d/%d", m[0].Cycle, m[0].OldCycle)
	}
}

func TestWindowEviction(t *testing.T) {
	st := NewState(2, eq)
	st.AddPair(1, 2)
	st.Arrive(1, query.S, 10, 0)
	st.Arrive(1, query.S, 11, 1)
	st.Arrive(1, query.S, 12, 2) // evicts 10
	if st.WindowLen(1) != 2 {
		t.Fatalf("window len = %d, want 2", st.WindowLen(1))
	}
	if m := st.Arrive(2, query.T, 10, 3); len(m) != 0 {
		t.Fatal("matched an evicted tuple")
	}
	if m := st.Arrive(2, query.T, 11, 4); len(m) != 1 {
		t.Fatal("missed a buffered tuple")
	}
}

func TestMultiplePartnersShareWindow(t *testing.T) {
	st := NewState(3, eq)
	st.AddPair(1, 2)
	st.AddPair(1, 3)
	st.Arrive(2, query.T, 5, 0)
	st.Arrive(3, query.T, 5, 0)
	m := st.Arrive(1, query.S, 5, 1)
	if len(m) != 2 {
		t.Fatalf("s joined %d partners, want 2", len(m))
	}
}

func TestAddPairIdempotent(t *testing.T) {
	st := NewState(2, eq)
	st.AddPair(1, 2)
	st.AddPair(1, 2)
	if st.Pairs() != 1 {
		t.Fatalf("Pairs = %d, want 1", st.Pairs())
	}
	st.Arrive(2, query.T, 5, 0)
	if m := st.Arrive(1, query.S, 5, 1); len(m) != 1 {
		t.Fatalf("duplicate pair produced %d matches", len(m))
	}
}

func TestRemovePair(t *testing.T) {
	st := NewState(2, eq)
	st.AddPair(1, 2)
	st.AddPair(1, 3)
	st.RemovePair(1, 2)
	st.Arrive(2, query.T, 5, 0)
	st.Arrive(3, query.T, 5, 0)
	m := st.Arrive(1, query.S, 5, 1)
	if len(m) != 1 || m[0].T != 3 {
		t.Fatalf("RemovePair left stale pair: %+v", m)
	}
	if st.PairsFor(1, query.S) != 1 || st.PairsFor(3, query.T) != 1 || st.PairsFor(2, query.T) != 0 {
		t.Fatal("PairsFor wrong after removal")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := NewState(3, eq)
	a.AddPair(1, 2)
	a.Arrive(1, query.S, 10, 0)
	a.Arrive(1, query.S, 11, 1)
	a.Arrive(2, query.T, 99, 1)
	tuples, bytes := a.Snapshot(1, 2)
	if len(tuples) != 3 {
		t.Fatalf("snapshot has %d tuples, want 3", len(tuples))
	}
	if bytes != 3*6 {
		t.Fatalf("snapshot bytes = %d", bytes)
	}
	b := NewState(3, eq)
	b.AddPair(1, 2)
	b.Restore(tuples)
	if b.WindowLen(1) != 2 || b.WindowLen(2) != 1 {
		t.Fatal("restored window sizes wrong")
	}
	// The migrated state must produce the same joins the old one would.
	m := b.Arrive(2, query.T, 11, 2)
	if len(m) != 1 || m[0].SV != 11 {
		t.Fatalf("restored state missed join: %+v", m)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	st := NewState(2, eq)
	st.AddPair(5, 9)
	st.Arrive(9, query.T, 1, 0)
	st.Arrive(5, query.S, 2, 0)
	t1, _ := st.Snapshot(9, 5)
	t2, _ := st.Snapshot(5, 9)
	if len(t1) != len(t2) {
		t.Fatal("snapshot lengths differ")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("snapshot order depends on argument order")
		}
	}
}

func TestMatchCountMatchesSelectivityProperty(t *testing.T) {
	// Property: with equality join over domain d and full windows of w
	// values, a new tuple matches each buffered tuple independently with
	// probability 1/d. Verify exact counting against a brute-force oracle.
	f := func(vals []uint8, w uint8) bool {
		width := int(w%4) + 1
		st := NewState(width, eq)
		st.AddPair(1, 2)
		var tWindow []int32
		for i, v := range vals {
			val := int32(v % 8)
			if i%2 == 0 {
				got := st.Arrive(2, query.T, val, i)
				// t joining against s windows — oracle not tracked here;
				// just maintain t's window.
				_ = got
				tWindow = append(tWindow, val)
				if len(tWindow) > width {
					tWindow = tWindow[1:]
				}
				continue
			}
			got := len(st.Arrive(1, query.S, val, i))
			want := 0
			for _, tv := range tWindow {
				if tv == val {
					want++
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDropProducer(t *testing.T) {
	st := NewState(2, eq)
	st.AddPair(1, 2)
	st.Arrive(1, query.S, 5, 0)
	st.DropProducer(1)
	if st.WindowLen(1) != 0 {
		t.Fatal("window survived drop")
	}
}

func TestNewStatePanicsOnZeroWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for w=0")
		}
	}()
	NewState(0, eq)
}

func TestCustomPredicate(t *testing.T) {
	// Query 3 style: |sv - tv| > 2.
	st := NewState(2, func(sv, tv int32) bool {
		d := sv - tv
		if d < 0 {
			d = -d
		}
		return d > 2
	})
	st.AddPair(1, 2)
	st.Arrive(2, query.T, 10, 0)
	if m := st.Arrive(1, query.S, 11, 1); len(m) != 0 {
		t.Fatal("close values joined")
	}
	if m := st.Arrive(1, query.S, 20, 2); len(m) != 1 {
		t.Fatal("distant values did not join")
	}
}

// TestMigrationMidStreamProperty is the adaptivity satellite's round-trip
// property: for an arbitrary interleaved arrival sequence split at an
// arbitrary point, processing the prefix at one join node, migrating
// (Snapshot + Restore at a fresh node), and processing the suffix there
// must deliver exactly the match stream an unmigrated node would — no
// match lost, duplicated, reordered or invented by the move.
func TestMigrationMidStreamProperty(t *testing.T) {
	prop := func(vals []uint8, roles []bool, split uint8) bool {
		// Normalize the generated sequence: match roles to values, small
		// value domain (so joins actually occur), arbitrary split point.
		n := len(vals)
		if len(roles) < n {
			n = len(roles)
		}
		if n == 0 {
			return true
		}
		cut := int(split) % (n + 1)
		arrive := func(st *State, dst []Match, from, to int) []Match {
			for i := from; i < to; i++ {
				p, role := topology.NodeID(1), query.S
				if roles[i] {
					p, role = 2, query.T
				}
				dst = st.ArriveAppend(dst, p, role, int32(vals[i]%4), i)
			}
			return dst
		}
		// Oracle: the whole stream at a single node.
		oracle := NewState(3, eq)
		oracle.AddPair(1, 2)
		want := arrive(oracle, nil, 0, n)
		// Migrated: prefix at a, move the window, suffix at b.
		a := NewState(3, eq)
		a.AddPair(1, 2)
		got := arrive(a, nil, 0, cut)
		tuples, _ := a.Snapshot(1, 2)
		a.RemovePair(1, 2)
		b := NewState(3, eq)
		b.AddPair(1, 2)
		b.Restore(tuples)
		got = arrive(b, got, cut, n)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

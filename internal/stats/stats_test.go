package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Known sample stddev ~2.138.
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestCI95NineRuns(t *testing.T) {
	// The paper's 9-run setting: t(8) = 2.306.
	xs := []float64{10, 11, 9, 10, 12, 8, 10, 11, 9}
	want := 2.306 * StdDev(xs) / math.Sqrt(9)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestTCritical(t *testing.T) {
	if TCritical(8) != 2.306 {
		t.Fatal("t(8)")
	}
	if TCritical(1000) != 1.96 {
		t.Fatal("t large")
	}
	if TCritical(0) != 0 {
		t.Fatal("t(0)")
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	f := func(base uint8) bool {
		small := []float64{float64(base), float64(base) + 2, float64(base) + 4}
		big := append(append([]float64{}, small...), small...)
		big = append(big, small...)
		return CI95(big) <= CI95(small)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 || s.CI <= 0 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !strings.Contains(s.String(), "+-") {
		t.Fatal("Summary.String format")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("stage", "alg", "traffic")
	tb.Add("1/2:1/2", "Naive", "123.0")
	tb.AddRow([]string{"1/2:1/2", "Innet"}, Summarize([]float64{10, 12}))
	if tb.Len() != 2 {
		t.Fatal("row count")
	}
	out := tb.String()
	for _, want := range []string{"stage", "Naive", "Innet", "123.0", "+-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
}

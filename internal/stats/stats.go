// Package stats provides the small statistical toolkit the evaluation
// needs: sample mean, standard deviation, and the 95% confidence interval
// the paper reports ("Experiments are averaged across 9 runs and 95%
// confidence intervals are provided"), plus tabular formatting for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable holds two-sided 95% Student-t critical values for small degrees
// of freedom (the paper averages 9 runs: df = 8 -> 2.306).
var tTable = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
}

// TCritical returns the two-sided 95% t value for df degrees of freedom,
// falling back to the normal 1.96 for large df.
func TCritical(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df < len(tTable) {
		return tTable[df]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// of xs.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCritical(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary bundles mean and CI half-width.
type Summary struct {
	Mean float64
	CI   float64
	N    int
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), CI: CI95(xs), N: len(xs)}
}

// String renders "mean +- ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f +- %.1f", s.Mean, s.CI)
}

// Table accumulates rows and renders them with aligned columns, for the
// experiment CLI output.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// AddRow appends a row of label cells plus a Summary rendered as
// "mean +- ci".
func (t *Table) AddRow(labels []string, s Summary) {
	t.Add(append(append([]string{}, labels...), s.String())...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		b.WriteString(strings.Repeat("-", w))
		if i < len(widths)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

package dht

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestHomeNodeStable(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRing(topo)
	for key := int32(-50); key < 50; key++ {
		h := r.HomeNode(key)
		if h < 0 || int(h) >= topo.N() {
			t.Fatalf("HomeNode(%d) = %d out of range", key, h)
		}
		if h != r.HomeNode(key) {
			t.Fatal("HomeNode not deterministic")
		}
	}
}

func TestHomeNodeBalance(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRing(topo)
	counts := map[topology.NodeID]int{}
	for key := int32(0); key < 2000; key++ {
		counts[r.HomeNode(key)]++
	}
	if len(counts) < 30 {
		t.Fatalf("2000 keys landed on only %d nodes", len(counts))
	}
}

func TestHomeNodeSuccessorProperty(t *testing.T) {
	topo := topology.Generate(topology.Grid, 25, 1)
	r := NewRing(topo)
	f := func(key int32) bool {
		home := r.HomeNode(key)
		h := mix(uint64(uint32(key)))
		pos := r.ids[home]
		// No other node position lies strictly between h and pos on the
		// ring (in successor order).
		for i, p := range r.ids {
			if topology.NodeID(i) == home {
				continue
			}
			if pos >= h { // non-wrapping successor
				if p >= h && p < pos {
					return false
				}
			} else { // wrapped: home is the global minimum
				if p >= h || p < pos {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteIsShortestPath(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 80, 3)
	r := NewRing(topo)
	f := func(aRaw, bRaw uint8) bool {
		a := topology.NodeID(int(aRaw) % topo.N())
		b := topology.NodeID(int(bRaw) % topo.N())
		p := r.Route(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 1; i < len(p); i++ {
			if !topo.IsNeighbor(p[i-1], p[i]) {
				return false
			}
		}
		return p.Hops() == topo.Hops(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteSelf(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	r := NewRing(topo)
	p := r.Route(4, 4)
	if len(p) != 1 || p[0] != 4 {
		t.Fatalf("self route = %v", p)
	}
}

// TestRingRouteConcurrent pins the sharing contract: one Ring is shared
// across parallel sweep workers (meshAlgorithms), so the lazy per-
// destination route memoization must be race-free. Run with -race.
func TestRingRouteConcurrent(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 60, 1)
	r := NewRing(topo)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < topo.N(); a++ {
				for b := 0; b < topo.N(); b++ {
					if p := r.Route(topology.NodeID(a), topology.NodeID(b)); len(p) == 0 {
						t.Errorf("no route %d -> %d", a, b)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestObserveFailuresReroutes: memoized route vectors must be dropped and
// recomputed around failed nodes after ObserveFailures.
func TestObserveFailuresReroutes(t *testing.T) {
	topo := topology.Generate(topology.Grid, 100, 1)
	r := NewRing(topo)
	live := topology.NewLiveness(topo.N())
	// Find a route with an interior node, memoize it, then fail that node.
	var src, dst, victim topology.NodeID = -1, -1, -1
	for a := 0; a < topo.N() && victim < 0; a++ {
		for b := 0; b < topo.N(); b++ {
			if p := r.Route(topology.NodeID(a), topology.NodeID(b)); len(p) >= 4 {
				src, dst, victim = topology.NodeID(a), topology.NodeID(b), p[1]
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no multi-hop route found")
	}
	live.Fail(victim)
	// Without invalidation the stale vector still routes through the
	// failure (the bug the engine recovery fixes).
	if p := r.Route(src, dst); !p.Contains(victim) {
		t.Fatalf("precondition: stale route %v should still use %d", p, victim)
	}
	r.ObserveFailures(live)
	p := r.Route(src, dst)
	if p == nil {
		t.Fatal("no route after invalidation (grid stays connected)")
	}
	if p.Contains(victim) {
		t.Fatalf("post-invalidation route %v still uses failed node %d", p, victim)
	}
	for i := 1; i < len(p); i++ {
		if !topo.IsNeighbor(p[i-1], p[i]) {
			t.Fatalf("rerouted path %v not link-valid", p)
		}
	}
}

// Package dht implements the distributed-hash-table substrate used for the
// 802.11 mesh experiments (Appendix C and F): keys and node IDs hash onto
// a ring; a key's home node is the node whose hashed ID is the key's
// clockwise successor, as in Pastry/Chord [14].
//
// Underlay routing is modelled as the shortest hop-path to the home node:
// unlike GPSR, a DHT overlay does not traverse the boundary of physical
// connectivity gaps (the lookup is resolved in the overlay), which is
// exactly why the paper observes DHT paths slightly shorter than GPSR but
// with higher maximum node load (Fig 17 vs Fig 16) — hashing ignores
// locality, so central nodes relay disproportionately many paths.
package dht

import (
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Ring is a consistent-hashing ring over a topology's nodes. Per-
// destination routing state is memoized in a concurrency-safe
// topology.ParentCache, so one Ring may be shared across parallel
// experiment workers.
type Ring struct {
	topo *topology.Topology
	// ids[i] is the ring position of node i.
	ids []uint64
	// order holds node indices sorted by ring position, so HomeNode is a
	// binary search instead of a full successor scan per key.
	order []topology.NodeID
	// parents memoizes the BFS parent vector toward each routed
	// destination: Route answers from it instead of re-running a full
	// BFS (two O(n) allocations) per routed message.
	parents *topology.ParentCache
}

// NewRing builds the ring for topo. Ring positions derive from node IDs by
// hashing, so the assignment is deterministic and locality-free.
func NewRing(topo *topology.Topology) *Ring {
	r := &Ring{
		topo:    topo,
		ids:     make([]uint64, topo.N()),
		parents: topology.NewParentCache(topo),
	}
	r.order = make([]topology.NodeID, topo.N())
	for i := range r.ids {
		r.ids[i] = mix(uint64(i) + 1)
		r.order[i] = topology.NodeID(i)
	}
	// Ring positions are distinct (mix is a bijection over distinct
	// inputs), so this order is unambiguous.
	sort.Slice(r.order, func(a, b int) bool { return r.ids[r.order[a]] < r.ids[r.order[b]] })
	return r
}

func mix(z uint64) uint64 {
	z = (z + 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HomeNode returns the node owning key: the node whose ring position is
// the smallest position >= hash(key), wrapping around. Binary search over
// the sorted ring, identical result to a full successor scan.
func (r *Ring) HomeNode(key int32) topology.NodeID {
	h := mix(uint64(uint32(key)))
	at := sort.Search(len(r.order), func(i int) bool { return r.ids[r.order[i]] >= h })
	if at == len(r.order) {
		at = 0 // wrap: smallest position overall
	}
	return r.order[at]
}

// ObserveFailures rebinds the ring's route memoization to the deployment
// liveness view and drops every cached parent vector: stale vectors would
// keep routing through dead nodes forever. Subsequent Route calls traverse
// only surviving nodes. Call it after every liveness change (the engine
// does, through the stepper failure hooks).
func (r *Ring) ObserveFailures(live *topology.Liveness) {
	r.parents = topology.NewLiveParentCache(r.topo, live)
}

// Route returns the underlay path from src to dst: the shortest hop-path
// in the physical topology (BFS, deterministic tie-breaking). The BFS
// parent vector toward each destination is computed once per Ring and
// memoized, so routing many messages to the same home node costs one
// traversal, not one per message.
func (r *Ring) Route(src, dst topology.NodeID) routing.Path {
	if src == dst {
		return routing.Path{src}
	}
	parent := r.parents.Parents(dst) // entries point one hop closer to dst
	if parent[src] < 0 && src != dst {
		return nil // disconnected (not produced by our generators)
	}
	p := routing.Path{src}
	for at := src; at != dst; {
		at = parent[at]
		p = append(p, at)
	}
	return p
}

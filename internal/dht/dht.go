// Package dht implements the distributed-hash-table substrate used for the
// 802.11 mesh experiments (Appendix C and F): keys and node IDs hash onto
// a ring; a key's home node is the node whose hashed ID is the key's
// clockwise successor, as in Pastry/Chord [14].
//
// Underlay routing is modelled as the shortest hop-path to the home node:
// unlike GPSR, a DHT overlay does not traverse the boundary of physical
// connectivity gaps (the lookup is resolved in the overlay), which is
// exactly why the paper observes DHT paths slightly shorter than GPSR but
// with higher maximum node load (Fig 17 vs Fig 16) — hashing ignores
// locality, so central nodes relay disproportionately many paths.
package dht

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// Ring is a consistent-hashing ring over a topology's nodes.
type Ring struct {
	topo *topology.Topology
	// ids[i] is the ring position of node i.
	ids []uint64
}

// NewRing builds the ring for topo. Ring positions derive from node IDs by
// hashing, so the assignment is deterministic and locality-free.
func NewRing(topo *topology.Topology) *Ring {
	r := &Ring{topo: topo, ids: make([]uint64, topo.N())}
	for i := range r.ids {
		r.ids[i] = mix(uint64(i) + 1)
	}
	return r
}

func mix(z uint64) uint64 {
	z = (z + 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HomeNode returns the node owning key: the node whose ring position is
// the smallest position >= hash(key), wrapping around.
func (r *Ring) HomeNode(key int32) topology.NodeID {
	h := mix(uint64(uint32(key)))
	best := topology.NodeID(-1)
	var bestPos uint64
	// Successor scan; n is small (<= a few hundred nodes).
	for i, pos := range r.ids {
		if pos >= h && (best < 0 || pos < bestPos) {
			best, bestPos = topology.NodeID(i), pos
		}
	}
	if best >= 0 {
		return best
	}
	// Wrap: smallest position overall.
	best, bestPos = 0, r.ids[0]
	for i, pos := range r.ids[1:] {
		if pos < bestPos {
			best, bestPos = topology.NodeID(i+1), pos
		}
	}
	return best
}

// Route returns the underlay path from src to dst: the shortest hop-path
// in the physical topology (BFS, deterministic tie-breaking).
func (r *Ring) Route(src, dst topology.NodeID) routing.Path {
	if src == dst {
		return routing.Path{src}
	}
	_, parent := r.topo.BFS(dst) // parents point one hop closer to dst
	if parent[src] < 0 && src != dst {
		return nil // disconnected (not produced by our generators)
	}
	p := routing.Path{src}
	for at := src; at != dst; {
		at = parent[at]
		p = append(p, at)
	}
	return p
}

package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsRun executes the mixed workload with a registry and tracer attached
// and returns the report plus the registry.
func obsRun(t *testing.T, workers int) (*Report, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg, tr := obs.NewRegistry(), obs.NewTracer()
	e := New(Options{Seed: 7, Workers: workers, Obs: reg, Trace: tr})
	for _, qc := range []QueryConfig{
		{ID: "innet", SQL: q1SQL(t), Cycles: 18},
		{ID: "plain", SQL: q2SQL(t), AdmitAt: 2},
	} {
		if _, err := e.Submit(qc); err != nil {
			t.Fatal(err)
		}
	}
	return e.Run(20), reg, tr
}

// TestObsDoesNotChangeOutput is the non-interference invariant: a run with
// metrics and tracing enabled produces a byte-identical report to the same
// run with observability disabled, at sequential and parallel worker
// counts. This is what keeps every committed BENCH_engine.json determinism
// fingerprint valid whether or not the run was observed.
func TestObsDoesNotChangeOutput(t *testing.T) {
	plain := func(workers int) *Report {
		e := New(Options{Seed: 7, Workers: workers})
		for _, qc := range []QueryConfig{
			{ID: "innet", SQL: q1SQL(t), Cycles: 18},
			{ID: "plain", SQL: q2SQL(t), AdmitAt: 2},
		} {
			if _, err := e.Submit(qc); err != nil {
				t.Fatal(err)
			}
		}
		return e.Run(20)
	}
	for _, w := range []int{1, 4} {
		bare := plain(w)
		observed, _, _ := obsRun(t, w)
		if !reflect.DeepEqual(bare, observed) {
			t.Fatalf("workers=%d: observed run's report differs from unobserved", w)
		}
	}
}

// TestObsCountersMatchReport: the registry's lifecycle and byte counters
// must agree exactly with the Report the run produced — the metrics layer
// is a view over the same accounting, not a second bookkeeper that can
// drift.
func TestObsCountersMatchReport(t *testing.T) {
	rep, reg, tr := obsRun(t, 4)
	snap := reg.Snapshot()
	want := map[string]int64{
		"engine.epochs":           int64(rep.Epochs),
		"engine.results":          int64(rep.Results),
		"engine.queries.admitted": 2,
		"engine.queries.retired":  1, // innet retires at epoch 18; plain runs to the horizon
		"sim.shared.bytes":        rep.SharedBytes,
		"sim.query.bytes":         rep.QueryBytes,
	}
	for name, v := range want {
		got, ok := snap.Value(name)
		if !ok {
			t.Fatalf("snapshot missing %s", name)
		}
		if got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if steps, _ := snap.Value("worker.steps"); steps == 0 {
		t.Error("worker.steps never flushed")
	}
	if v, _ := snap.Value("join.state.tuples"); v < 0 {
		t.Errorf("join.state.tuples = %d", v)
	}
	// Arena gauges: the routing substrate always holds slab-backed state,
	// and the innet/base steppers report their carved join-layer bytes.
	if v, ok := snap.Value("mem.routing.bytes"); !ok || v <= 0 {
		t.Errorf("mem.routing.bytes = %d (ok=%v), want > 0", v, ok)
	}
	if v, ok := snap.Value("mem.join.bytes"); !ok || v <= 0 {
		t.Errorf("mem.join.bytes = %d (ok=%v), want > 0", v, ok)
	}
	// Per-class byte gauges partition the total byte gauges.
	var byKind int64
	for _, k := range []string{"control", "data", "result"} {
		v, ok := snap.Value("sim.bytes." + k)
		if !ok {
			t.Fatalf("snapshot missing sim.bytes.%s", k)
		}
		byKind += v
	}
	if byKind != rep.AggregateBytes {
		t.Errorf("per-class bytes %d != aggregate %d", byKind, rep.AggregateBytes)
	}
	// The trace saw scheduler phases and per-query steps.
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	names := map[string]bool{}
	for _, ev := range evs {
		names[ev.Name] = true
	}
	for _, want := range []string{"epoch", "phase:admit", "phase:step", "phase:merge", "innet"} {
		if !names[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents"`) {
		t.Error("Chrome export missing traceEvents envelope")
	}
}

// TestEpochStatsSumRecoveryTotals is the stats-completeness property: over
// the churn-1k workload, the per-epoch Failed/Repaired/Fallbacks/
// TreesRebuilt stream must sum exactly to the final Report's recovery
// totals — no epoch's outcome may be dropped or double-counted — at
// sequential and parallel worker counts. With a registry attached, the
// churn.* counters must land on the same totals.
func TestEpochStatsSumRecoveryTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node churn run is slow")
	}
	mk, churn := churn1kWorkload(t)
	for _, workers := range []int{1, 4} {
		e := mk(workers, churn)
		reg := obs.NewRegistry()
		e.opts.Obs = reg
		e.inst = newInstruments(reg, e.workers)
		var stream []EpochStats
		e.OnEpoch = captureStats(&stream)
		rep := e.Run(12)
		if rep.FailedNodes == 0 || rep.PathsRepaired == 0 || rep.BaseFallbacks == 0 || rep.TreesRebuilt == 0 {
			t.Fatalf("workers=%d: churn run lost recovery coverage: %+v", workers, rep)
		}
		var failed, repaired, fallbacks, rebuilt int
		for _, s := range stream {
			failed += len(s.Failed)
			repaired += s.Repaired
			fallbacks += s.Fallbacks
			rebuilt += s.TreesRebuilt
		}
		if failed != rep.FailedNodes || repaired != rep.PathsRepaired ||
			fallbacks != rep.BaseFallbacks || rebuilt != rep.TreesRebuilt {
			t.Fatalf("workers=%d: epoch stream sums (failed=%d repaired=%d fallbacks=%d rebuilt=%d) != report totals (%d %d %d %d)",
				workers, failed, repaired, fallbacks, rebuilt,
				rep.FailedNodes, rep.PathsRepaired, rep.BaseFallbacks, rep.TreesRebuilt)
		}
		snap := reg.Snapshot()
		for name, want := range map[string]int{
			"churn.nodes_failed":   rep.FailedNodes,
			"churn.paths_repaired": rep.PathsRepaired,
			"churn.base_fallbacks": rep.BaseFallbacks,
			"churn.trees_rebuilt":  rep.TreesRebuilt,
		} {
			if got, _ := snap.Value(name); got != int64(want) {
				t.Errorf("workers=%d: %s = %d, want %d", workers, name, got, want)
			}
		}
	}
}

// steadyEngine builds a warm engine whose remaining epochs are pure
// steady-state stepping: all queries admitted, no churn, no retirements.
func steadyEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	for i, sql := range []string{q1SQL(t), q2SQL(t)} {
		if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	return e
}

// steadyStateAllocBudget is the engine's pre-obs steady-state allocation
// count per sequential Step (measured before internal/obs existed: two
// small allocations inside stepper internals). The tests below pin the obs
// layer to this budget — compiling it in, and even enabling metrics, may
// not add a single allocation to the hot path.
const steadyStateAllocBudget = 2

// TestObsDisabledAddsNoAllocs pins the disabled path: with Obs and Trace
// nil, the instrumented Step allocates no more than it did before the
// observability layer existed.
func TestObsDisabledAddsNoAllocs(t *testing.T) {
	e := steadyEngine(t, Options{Seed: 7})
	if avg := testing.AllocsPerRun(20, func() { e.Step() }); avg > steadyStateAllocBudget {
		t.Fatalf("disabled-obs Step allocates %.1f/epoch, budget %d", avg, steadyStateAllocBudget)
	}
}

// TestObsEnabledMetricsAllocFree: the metrics-only enabled path (registry
// attached, no tracer) stays within the same steady-state budget — dense
// slices and atomics, no per-observation allocation.
func TestObsEnabledMetricsAllocFree(t *testing.T) {
	e := steadyEngine(t, Options{Seed: 7, Obs: obs.NewRegistry()})
	if avg := testing.AllocsPerRun(20, func() { e.Step() }); avg > steadyStateAllocBudget {
		t.Fatalf("metrics-enabled Step allocates %.1f/epoch, budget %d", avg, steadyStateAllocBudget)
	}
}

// TestHookedStepAllocStable: with an OnEpoch hook attached, the reused
// NewResults map keeps the steady-state hooked path within the same
// budget (it used to allocate a fresh map every epoch).
func TestHookedStepAllocStable(t *testing.T) {
	e := steadyEngine(t, Options{Seed: 7})
	sink := 0
	e.OnEpoch = func(s EpochStats) { sink += s.Live + len(s.NewResults) }
	e.Step() // allocate + grow the reused map once
	if avg := testing.AllocsPerRun(20, func() { e.Step() }); avg > steadyStateAllocBudget {
		t.Fatalf("hooked Step allocates %.1f/epoch, budget %d", avg, steadyStateAllocBudget)
	}
	if sink == 0 {
		t.Fatal("hook never ran")
	}
}

// TestSnapshotMidRunSafe: snapshotting from another goroutine while the
// engine steps (the live-endpoint pattern) is race-free and sees
// monotonically non-decreasing counters.
func TestSnapshotMidRunSafe(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Seed: 7, Workers: 4, Obs: reg})
	for i, sql := range []string{q1SQL(t), q2SQL(t)} {
		if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var last int64
	go func() {
		defer close(done)
		for {
			snap := e.Snapshot()
			v, _ := snap.Value("engine.epochs")
			if v < last {
				t.Errorf("engine.epochs went backwards: %d -> %d", last, v)
				return
			}
			last = v
			if v >= 30 {
				return
			}
		}
	}()
	e.Run(30)
	<-done
	if last != 30 {
		t.Fatalf("observer last saw epoch %d, want 30", last)
	}
}

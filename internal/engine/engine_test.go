package engine

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/join"
	"repro/internal/topology"
	"repro/internal/workload"
)

// q1SQL / q2SQL are Table 2's multi-producer queries, submitted as text the
// way a base station would receive them.
func q1SQL(t *testing.T) string {
	t.Helper()
	src, ok := workload.QueryText("Q1")
	if !ok {
		t.Fatal("no Q1 text")
	}
	return src
}

func q2SQL(t *testing.T) string {
	t.Helper()
	src, ok := workload.QueryText("Q2")
	if !ok {
		t.Fatal("no Q2 text")
	}
	return src
}

func TestLifecycle(t *testing.T) {
	e := New(Options{Seed: 1})
	qa, err := e.Submit(QueryConfig{ID: "a", SQL: q1SQL(t), Cycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := e.Submit(QueryConfig{ID: "b", SQL: q2SQL(t), Cycles: 20, AdmitAt: 5})
	if err != nil {
		t.Fatal(err)
	}
	qc, err := e.Submit(QueryConfig{ID: "c", SQL: q1SQL(t), Algorithm: join.Base{}})
	if err != nil {
		t.Fatal(err)
	}
	if qa.State() != Pending || qb.State() != Pending || qc.State() != Pending {
		t.Fatal("queries must start pending")
	}

	var admitted, retired []string
	e.OnEpoch = func(s EpochStats) {
		admitted = append(admitted, s.Admitted...)
		retired = append(retired, s.Retired...)
	}
	rep := e.Run(30)

	if qa.State() != Retired || qb.State() != Retired || qc.State() != Retired {
		t.Fatalf("states after run: %v %v %v", qa.State(), qb.State(), qc.State())
	}
	if got := rep.Queries[0]; got.AdmitEpoch != 0 || got.RetireEpoch != 20 {
		t.Fatalf("query a interval [%d,%d), want [0,20)", got.AdmitEpoch, got.RetireEpoch)
	}
	if got := rep.Queries[1]; got.AdmitEpoch != 5 || got.RetireEpoch != 25 {
		t.Fatalf("query b interval [%d,%d), want [5,25)", got.AdmitEpoch, got.RetireEpoch)
	}
	// Cycles == 0 runs until the horizon.
	if got := rep.Queries[2]; got.AdmitEpoch != 0 || got.RetireEpoch != 30 {
		t.Fatalf("query c interval [%d,%d), want [0,30)", got.AdmitEpoch, got.RetireEpoch)
	}
	if !reflect.DeepEqual(admitted, []string{"a", "c", "b"}) {
		t.Fatalf("admissions %v", admitted)
	}
	if !reflect.DeepEqual(retired, []string{"a", "b"}) { // c retires at drain
		t.Fatalf("retirements %v", retired)
	}

	// Accounting identities.
	var sum int64
	results := 0
	for _, q := range rep.Queries {
		sum += q.TotalBytes
		results += q.Results
		if q.TotalBytes <= 0 {
			t.Fatalf("query %s charged no traffic", q.ID)
		}
	}
	if rep.QueryBytes != sum || rep.AggregateBytes != rep.SharedBytes+sum {
		t.Fatalf("aggregate %d != shared %d + queries %d", rep.AggregateBytes, rep.SharedBytes, sum)
	}
	if rep.SharedBytes <= 0 {
		t.Fatal("shared infrastructure traffic not charged")
	}
	if rep.Results != results || results == 0 {
		t.Fatalf("results %d (per-query sum %d)", rep.Results, results)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := New(Options{})
	if _, err := e.Submit(QueryConfig{ID: "x"}); err == nil {
		t.Fatal("no SQL and no Spec accepted")
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: "SELECT nonsense"}); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: q1SQL(t)}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

// TestDeterminism: the engine is a pure function of (Options, submission
// sequence) — two identical runs produce identical reports.
func TestDeterminism(t *testing.T) {
	mk := func() *Report {
		e := New(Options{Seed: 7})
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 25}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(QueryConfig{SQL: q2SQL(t), AdmitAt: 3}); err != nil {
			t.Fatal(err)
		}
		spec := workload.Query3(e.Topo, e.Nodes, workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
		if _, err := e.Submit(QueryConfig{
			Spec:    spec,
			Sampler: workload.HumiditySampler{H: workload.NewHumidity(e.Topo, 7)},
			AdmitAt: 10,
		}); err != nil {
			t.Fatal(err)
		}
		return e.Run(40)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ:\n%+v\n%+v", a, b)
	}
}

// TestLateSubmit: a query submitted mid-run with a stale AdmitAt is
// admitted at the next epoch, not in the past.
func TestLateSubmit(t *testing.T) {
	e := New(Options{})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	q, err := e.Submit(QueryConfig{ID: "late", SQL: q2SQL(t), AdmitAt: 2, Cycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if q.State() != Retired {
		t.Fatalf("late query state %v", q.State())
	}
	rep := e.Report()
	if got := rep.Queries[1]; got.AdmitEpoch != 10 || got.RetireEpoch != 15 {
		t.Fatalf("late query interval [%d,%d), want [10,15)", got.AdmitEpoch, got.RetireEpoch)
	}
}

// TestSharedTraffic is the tentpole property: one deployment serving N
// queries transmits strictly less than N single-query deployments, because
// routing-tree construction and index dissemination are charged once and
// queries indexing the same attribute share its summaries.
func TestSharedTraffic(t *testing.T) {
	single := func(sql string) *Report {
		e := New(Options{Seed: 3})
		if _, err := e.Submit(QueryConfig{SQL: sql, Cycles: 30}); err != nil {
			t.Fatal(err)
		}
		return e.Run(30)
	}
	ra := single(q1SQL(t))
	rb := single(q2SQL(t))

	e := New(Options{Seed: 3})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryConfig{SQL: q2SQL(t), Cycles: 30}); err != nil {
		t.Fatal(err)
	}
	both := e.Run(30)

	sumSingles := ra.AggregateBytes + rb.AggregateBytes
	if both.AggregateBytes >= sumSingles {
		t.Fatalf("sharing did not help: together %d >= separate %d", both.AggregateBytes, sumSingles)
	}
	// The shared stream itself must be cheaper than paying infrastructure
	// twice.
	if both.SharedBytes >= ra.SharedBytes+rb.SharedBytes {
		t.Fatalf("shared %d >= %d+%d", both.SharedBytes, ra.SharedBytes, rb.SharedBytes)
	}
}

// TestIndexSharing: two queries indexing the same attribute pay its
// dissemination once — the second admission adds no shared traffic.
func TestIndexSharing(t *testing.T) {
	e := New(Options{Seed: 5})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	afterFirst := e.SharedBytes()
	if _, err := e.Submit(QueryConfig{ID: "twin", SQL: q1SQL(t), Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	if got := e.SharedBytes(); got != afterFirst {
		t.Fatalf("second identical query grew shared traffic: %d -> %d", afterFirst, got)
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	job := func(i int) int { return i * i }
	want := Sweep(100, 1, job)
	for _, workers := range []int{2, 3, runtime.NumCPU(), 200} {
		got := Sweep(100, workers, job)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged", workers)
		}
	}
	if Sweep(0, 4, job) != nil {
		t.Fatal("n=0 should return nil")
	}
}

// TestSweepEngineDeterminism runs a real simulation per job and checks
// worker-count independence on the actual workload.
func TestSweepEngineDeterminism(t *testing.T) {
	job := func(i int) int64 {
		e := New(Options{Seed: uint64(i) + 1, Nodes: 50})
		src, _ := workload.QueryText("Q1")
		if _, err := e.Submit(QueryConfig{SQL: src, Cycles: 10}); err != nil {
			t.Error(err)
			return 0
		}
		return e.Run(10).AggregateBytes
	}
	seq := Sweep(8, 1, job)
	par := Sweep(8, runtime.NumCPU(), job)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

// TestChurnFailureSharedEverywhere is the tentpole acceptance test: a node
// failed via the engine churn schedule is dead in the shared substrate
// network AND in every query's private network simultaneously — correlated
// failure over one deployment, not a per-query fiction.
func TestChurnFailureSharedEverywhere(t *testing.T) {
	victim := topology.NodeID(17)
	e := New(Options{Seed: 1, Churn: []ChurnEvent{{Epoch: 3, Node: victim}}})
	if _, err := e.Submit(QueryConfig{ID: "a", SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryConfig{ID: "b", SQL: q2SQL(t), Algorithm: join.Base{}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	for _, q := range e.queries {
		if !q.net.Alive(victim) {
			t.Fatalf("query %s sees node %d dead before its churn epoch", q.ID, victim)
		}
	}
	e.Step() // epoch 3: the failure applies
	if e.shared.Alive(victim) {
		t.Fatal("shared substrate network still sees the churned node alive")
	}
	if e.Liveness().Alive(victim) {
		t.Fatal("deployment liveness view still sees the churned node alive")
	}
	for _, q := range e.queries {
		if q.net.Alive(victim) {
			t.Fatalf("query %s still sees churned node %d alive", q.ID, victim)
		}
	}
	rep := e.Run(10)
	if rep.FailedNodes != 1 {
		t.Fatalf("FailedNodes = %d, want 1", rep.FailedNodes)
	}
}

// TestChurnRecoveryRepairsAndFallsBack drives the full section 7 recovery
// through the engine: failing an intermediate node of a pair path must
// produce an in-network repair, failing a join node a base fallback, and
// results must keep flowing afterwards.
func TestChurnRecoveryRepairsAndFallsBack(t *testing.T) {
	probe := New(Options{Seed: 1})
	if _, err := probe.Submit(QueryConfig{SQL: q2SQL(t)}); err != nil {
		t.Fatal(err)
	}
	probe.Run(12)
	res := probe.Queries()[0].Result()
	if len(res.PairPaths) == 0 {
		t.Fatal("probe run placed no in-network pairs")
	}
	// Victim 1: an intermediate hop (neither endpoint nor join node) of
	// the longest pair path. Victim 2: a join node of a different pair.
	var mid, joinNode topology.NodeID = -1, -1
	for i, p := range res.PairPaths {
		j := res.PairJoinNodes[i]
		for _, id := range p[1 : len(p)-1] {
			if id != j && mid < 0 {
				mid = id
			}
		}
		if mid >= 0 && j != mid {
			joinNode = j
		}
		if mid >= 0 && joinNode >= 0 && joinNode != mid {
			break
		}
	}
	if mid < 0 || joinNode < 0 {
		t.Fatal("could not pick churn victims from the probe run")
	}
	e := New(Options{Seed: 1, Churn: []ChurnEvent{
		{Epoch: 4, Node: mid},
		{Epoch: 7, Node: joinNode},
	}})
	if _, err := e.Submit(QueryConfig{SQL: q2SQL(t)}); err != nil {
		t.Fatal(err)
	}
	var failedSeen int
	e.OnEpoch = func(s EpochStats) { failedSeen += len(s.Failed) }
	rep := e.Run(25)
	if failedSeen != 2 || rep.FailedNodes != 2 {
		t.Fatalf("failed = (%d stream, %d report), want 2", failedSeen, rep.FailedNodes)
	}
	if rep.PathsRepaired < 1 {
		t.Fatalf("PathsRepaired = %d, want >= 1 (intermediate failure must repair in-network)", rep.PathsRepaired)
	}
	if rep.BaseFallbacks < 1 {
		t.Fatalf("BaseFallbacks = %d, want >= 1 (join-node failure must fall back)", rep.BaseFallbacks)
	}
	if rep.Results == 0 {
		t.Fatal("no results delivered despite recovery")
	}
	// Repair exploration is charged once, to the shared stream: shared
	// traffic must exceed a churn-free run's.
	quiet := New(Options{Seed: 1})
	if _, err := quiet.Submit(QueryConfig{SQL: q2SQL(t)}); err != nil {
		t.Fatal(err)
	}
	if qr := quiet.Run(25); rep.SharedBytes <= qr.SharedBytes {
		t.Fatalf("churn run shared=%d not above churn-free shared=%d (repair/rebuild traffic missing)",
			rep.SharedBytes, qr.SharedBytes)
	}
}

// TestChurnDeterminism: a churned run is still a pure function of
// (Options, submissions).
func TestChurnDeterminism(t *testing.T) {
	churn := SeededChurn(11, 100, 20, 0.01, 6)
	if len(churn) == 0 {
		t.Fatal("seeded schedule empty at rate 0.01 over 20 epochs")
	}
	mk := func() *Report {
		e := New(Options{Seed: 7, Churn: churn})
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 18}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(QueryConfig{SQL: q2SQL(t), AdmitAt: 2}); err != nil {
			t.Fatal(err)
		}
		return e.Run(20)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("churned reports differ:\n%+v\n%+v", a, b)
	}
	// And the schedule generator itself is deterministic.
	if !reflect.DeepEqual(churn, SeededChurn(11, 100, 20, 0.01, 6)) {
		t.Fatal("SeededChurn not deterministic")
	}
}

// TestChurnRevive: a fail/revive pair leaves the node alive again, and the
// revival is visible everywhere at once.
func TestChurnRevive(t *testing.T) {
	victim := topology.NodeID(9)
	e := New(Options{Seed: 1, Churn: []ChurnEvent{
		{Epoch: 2, Node: victim},
		{Epoch: 5, Node: victim, Revive: true},
	}})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e.Step()
	}
	if e.live.Alive(victim) {
		t.Fatal("victim alive mid-outage")
	}
	for i := 0; i < 4; i++ {
		e.Step()
	}
	if !e.live.Alive(victim) || !e.queries[0].net.Alive(victim) {
		t.Fatal("revival not visible in all networks")
	}
	if rep := e.Report(); rep.FailedNodes != 1 {
		t.Fatalf("FailedNodes = %d, want 1", rep.FailedNodes)
	}
}

// TestChurnRejectsBaseStation: the base never churns.
func TestChurnRejectsBaseStation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("churn schedule failing the base station did not panic")
		}
	}()
	New(Options{Churn: []ChurnEvent{{Epoch: 0, Node: topology.Base}}})
}

// TestNoChurnUnchanged: an empty schedule leaves the engine's behavior
// byte-identical to a schedule-free engine (the determinism-checksum
// guarantee for all pre-existing scenarios).
func TestNoChurnUnchanged(t *testing.T) {
	mk := func(churn []ChurnEvent) *Report {
		e := New(Options{Seed: 3, Churn: churn})
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 15}); err != nil {
			t.Fatal(err)
		}
		return e.Run(15)
	}
	if !reflect.DeepEqual(mk(nil), mk([]ChurnEvent{})) {
		t.Fatal("empty churn schedule perturbed the run")
	}
}

// TestAllAlgorithmsContinuous: every algorithm the facade exposes can run
// under the scheduler.
func TestAllAlgorithmsContinuous(t *testing.T) {
	e := New(Options{Seed: 2})
	algs := []join.Continuous{
		join.Naive{}, join.Base{}, join.Yang07{},
		join.Innet{}, join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}},
	}
	for i, alg := range algs {
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Algorithm: alg, Cycles: 5, AdmitAt: i}); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.Run(12)
	for _, q := range rep.Queries {
		if q.State != "retired" {
			t.Fatalf("query %s (%s) not retired", q.ID, q.Algorithm)
		}
	}
}

package engine

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/join"
	"repro/internal/workload"
)

// q1SQL / q2SQL are Table 2's multi-producer queries, submitted as text the
// way a base station would receive them.
func q1SQL(t *testing.T) string {
	t.Helper()
	src, ok := workload.QueryText("Q1")
	if !ok {
		t.Fatal("no Q1 text")
	}
	return src
}

func q2SQL(t *testing.T) string {
	t.Helper()
	src, ok := workload.QueryText("Q2")
	if !ok {
		t.Fatal("no Q2 text")
	}
	return src
}

func TestLifecycle(t *testing.T) {
	e := New(Options{Seed: 1})
	qa, err := e.Submit(QueryConfig{ID: "a", SQL: q1SQL(t), Cycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := e.Submit(QueryConfig{ID: "b", SQL: q2SQL(t), Cycles: 20, AdmitAt: 5})
	if err != nil {
		t.Fatal(err)
	}
	qc, err := e.Submit(QueryConfig{ID: "c", SQL: q1SQL(t), Algorithm: join.Base{}})
	if err != nil {
		t.Fatal(err)
	}
	if qa.State() != Pending || qb.State() != Pending || qc.State() != Pending {
		t.Fatal("queries must start pending")
	}

	var admitted, retired []string
	e.OnEpoch = func(s EpochStats) {
		admitted = append(admitted, s.Admitted...)
		retired = append(retired, s.Retired...)
	}
	rep := e.Run(30)

	if qa.State() != Retired || qb.State() != Retired || qc.State() != Retired {
		t.Fatalf("states after run: %v %v %v", qa.State(), qb.State(), qc.State())
	}
	if got := rep.Queries[0]; got.AdmitEpoch != 0 || got.RetireEpoch != 20 {
		t.Fatalf("query a interval [%d,%d), want [0,20)", got.AdmitEpoch, got.RetireEpoch)
	}
	if got := rep.Queries[1]; got.AdmitEpoch != 5 || got.RetireEpoch != 25 {
		t.Fatalf("query b interval [%d,%d), want [5,25)", got.AdmitEpoch, got.RetireEpoch)
	}
	// Cycles == 0 runs until the horizon.
	if got := rep.Queries[2]; got.AdmitEpoch != 0 || got.RetireEpoch != 30 {
		t.Fatalf("query c interval [%d,%d), want [0,30)", got.AdmitEpoch, got.RetireEpoch)
	}
	if !reflect.DeepEqual(admitted, []string{"a", "c", "b"}) {
		t.Fatalf("admissions %v", admitted)
	}
	if !reflect.DeepEqual(retired, []string{"a", "b"}) { // c retires at drain
		t.Fatalf("retirements %v", retired)
	}

	// Accounting identities.
	var sum int64
	results := 0
	for _, q := range rep.Queries {
		sum += q.TotalBytes
		results += q.Results
		if q.TotalBytes <= 0 {
			t.Fatalf("query %s charged no traffic", q.ID)
		}
	}
	if rep.QueryBytes != sum || rep.AggregateBytes != rep.SharedBytes+sum {
		t.Fatalf("aggregate %d != shared %d + queries %d", rep.AggregateBytes, rep.SharedBytes, sum)
	}
	if rep.SharedBytes <= 0 {
		t.Fatal("shared infrastructure traffic not charged")
	}
	if rep.Results != results || results == 0 {
		t.Fatalf("results %d (per-query sum %d)", rep.Results, results)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := New(Options{})
	if _, err := e.Submit(QueryConfig{ID: "x"}); err == nil {
		t.Fatal("no SQL and no Spec accepted")
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: "SELECT nonsense"}); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryConfig{ID: "x", SQL: q1SQL(t)}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

// TestDeterminism: the engine is a pure function of (Options, submission
// sequence) — two identical runs produce identical reports.
func TestDeterminism(t *testing.T) {
	mk := func() *Report {
		e := New(Options{Seed: 7})
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 25}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(QueryConfig{SQL: q2SQL(t), AdmitAt: 3}); err != nil {
			t.Fatal(err)
		}
		spec := workload.Query3(e.Topo, e.Nodes, workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
		if _, err := e.Submit(QueryConfig{
			Spec:    spec,
			Sampler: workload.HumiditySampler{H: workload.NewHumidity(e.Topo, 7)},
			AdmitAt: 10,
		}); err != nil {
			t.Fatal(err)
		}
		return e.Run(40)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ:\n%+v\n%+v", a, b)
	}
}

// TestLateSubmit: a query submitted mid-run with a stale AdmitAt is
// admitted at the next epoch, not in the past.
func TestLateSubmit(t *testing.T) {
	e := New(Options{})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	q, err := e.Submit(QueryConfig{ID: "late", SQL: q2SQL(t), AdmitAt: 2, Cycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if q.State() != Retired {
		t.Fatalf("late query state %v", q.State())
	}
	rep := e.Report()
	if got := rep.Queries[1]; got.AdmitEpoch != 10 || got.RetireEpoch != 15 {
		t.Fatalf("late query interval [%d,%d), want [10,15)", got.AdmitEpoch, got.RetireEpoch)
	}
}

// TestSharedTraffic is the tentpole property: one deployment serving N
// queries transmits strictly less than N single-query deployments, because
// routing-tree construction and index dissemination are charged once and
// queries indexing the same attribute share its summaries.
func TestSharedTraffic(t *testing.T) {
	single := func(sql string) *Report {
		e := New(Options{Seed: 3})
		if _, err := e.Submit(QueryConfig{SQL: sql, Cycles: 30}); err != nil {
			t.Fatal(err)
		}
		return e.Run(30)
	}
	ra := single(q1SQL(t))
	rb := single(q2SQL(t))

	e := New(Options{Seed: 3})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(QueryConfig{SQL: q2SQL(t), Cycles: 30}); err != nil {
		t.Fatal(err)
	}
	both := e.Run(30)

	sumSingles := ra.AggregateBytes + rb.AggregateBytes
	if both.AggregateBytes >= sumSingles {
		t.Fatalf("sharing did not help: together %d >= separate %d", both.AggregateBytes, sumSingles)
	}
	// The shared stream itself must be cheaper than paying infrastructure
	// twice.
	if both.SharedBytes >= ra.SharedBytes+rb.SharedBytes {
		t.Fatalf("shared %d >= %d+%d", both.SharedBytes, ra.SharedBytes, rb.SharedBytes)
	}
}

// TestIndexSharing: two queries indexing the same attribute pay its
// dissemination once — the second admission adds no shared traffic.
func TestIndexSharing(t *testing.T) {
	e := New(Options{Seed: 5})
	if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	afterFirst := e.SharedBytes()
	if _, err := e.Submit(QueryConfig{ID: "twin", SQL: q1SQL(t), Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	if got := e.SharedBytes(); got != afterFirst {
		t.Fatalf("second identical query grew shared traffic: %d -> %d", afterFirst, got)
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	job := func(i int) int { return i * i }
	want := Sweep(100, 1, job)
	for _, workers := range []int{2, 3, runtime.NumCPU(), 200} {
		got := Sweep(100, workers, job)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged", workers)
		}
	}
	if Sweep(0, 4, job) != nil {
		t.Fatal("n=0 should return nil")
	}
}

// TestSweepEngineDeterminism runs a real simulation per job and checks
// worker-count independence on the actual workload.
func TestSweepEngineDeterminism(t *testing.T) {
	job := func(i int) int64 {
		e := New(Options{Seed: uint64(i) + 1, Nodes: 50})
		src, _ := workload.QueryText("Q1")
		if _, err := e.Submit(QueryConfig{SQL: src, Cycles: 10}); err != nil {
			t.Error(err)
			return 0
		}
		return e.Run(10).AggregateBytes
	}
	seq := Sweep(8, 1, job)
	par := Sweep(8, runtime.NumCPU(), job)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

// TestAllAlgorithmsContinuous: every algorithm the facade exposes can run
// under the scheduler.
func TestAllAlgorithmsContinuous(t *testing.T) {
	e := New(Options{Seed: 2})
	algs := []join.Continuous{
		join.Naive{}, join.Base{}, join.Yang07{},
		join.Innet{}, join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}},
	}
	for i, alg := range algs {
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t), Algorithm: alg, Cycles: 5, AdmitAt: i}); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.Run(12)
	for _, q := range rep.Queries {
		if q.State != "retired" {
			t.Fatalf("query %s (%s) not retired", q.ID, q.Algorithm)
		}
	}
}

// Package engine is the continuous multi-query execution engine: it admits
// many concurrent queries (StreamSQL text or pre-compiled specs) over ONE
// shared deployment, runs them epoch by epoch on a cooperative scheduler,
// and charges shared infrastructure traffic — routing-tree construction
// beacons, summary dissemination, index extension floods — once per
// network instead of once per query.
//
// The single-query path (aspen.Run, internal/experiments) builds a fresh
// substrate per run; a real sensor network serving a workload of
// continuous queries builds its routing substrate once and amortizes it.
// The engine makes that sharing measurable: its Report separates
// SharedBytes (infrastructure, paid once) from per-query traffic
// (initiation, data, results — paid by each query on its own metrics
// stream), so "aggregate < sum of single-query deployments" is a checkable
// inequality rather than a slogan.
//
// Lifecycle: Submit (compile + register, state Pending) → admission at the
// query's AdmitAt epoch (substrate index extension charged shared,
// algorithm initiation charged to the query, state Live) → one Step per
// epoch → retirement after Cycles epochs or at drain (state Retired,
// final join.Result frozen).
//
// Determinism: every per-query rng stream (loss model, sampler) derives
// from the engine seed and the query's submission index, and the scheduler
// iterates queries in submission order, so a run is a pure function of
// (Options, submission sequence).
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ChurnEvent is one scheduled liveness change in a deployment's churn
// schedule (section 7 made a first-class workload axis).
type ChurnEvent struct {
	// Epoch is the scheduler epoch at which the event applies (at the top
	// of that epoch's Step, before any query runs its sampling cycle).
	Epoch int
	// Node is the affected node. The base station (node 0) never churns:
	// the paper assumes a powered, reliable base, and every fallback path
	// ends there. New panics on a base or out-of-range node.
	Node topology.NodeID
	// Revive restores the node instead of failing it.
	Revive bool
}

// SeededChurn derives a deterministic churn schedule from a seed: each
// epoch in [0, epochs), every currently-alive non-base node fails with
// probability rate; when reviveAfter > 0 a failed node revives that many
// epochs later (0 means failures are permanent). The schedule is a pure
// function of the arguments, so churn runs are exactly reproducible.
func SeededChurn(seed uint64, nodes, epochs int, rate float64, reviveAfter int) []ChurnEvent {
	src := rng.New(seed).Split(0xC4E7)
	var events []ChurnEvent
	deadUntil := make([]int, nodes) // 0 = alive; otherwise revival epoch (or maxInt)
	const never = 1 << 30
	for ep := 0; ep < epochs; ep++ {
		for i := 1; i < nodes; i++ {
			if deadUntil[i] != 0 {
				if ep >= deadUntil[i] {
					events = append(events, ChurnEvent{Epoch: ep, Node: topology.NodeID(i), Revive: true})
					deadUntil[i] = 0
				} else {
					continue
				}
			}
			if src.Bool(rate) {
				events = append(events, ChurnEvent{Epoch: ep, Node: topology.NodeID(i)})
				if reviveAfter > 0 {
					deadUntil[i] = ep + reviveAfter
				} else {
					deadUntil[i] = never
				}
			}
		}
	}
	return events
}

// Options configures the shared deployment an Engine schedules over.
type Options struct {
	// Kind selects the topology class (default ModerateRandom).
	Kind topology.Kind
	// Nodes is the deployment size (default 100).
	Nodes int
	// Trees is the routing-substrate tree count (default 3).
	Trees int
	// LossProb is the per-hop loss probability (default 5%); Lossless
	// forces 0 (mesh-style runs).
	LossProb float64
	Lossless bool
	// Seed is the engine seed every per-query stream derives from
	// (default 1).
	Seed uint64
	// Churn is the deployment's fail/revive schedule, applied once per
	// epoch at the top of Step against the SHARED liveness view — a node
	// failed here is dead in the substrate and in every query's network
	// simultaneously. Same-epoch events apply in slice order. Each
	// failure triggers engine-wide recovery: substrate tree rebuilds,
	// per-query path repair (exploration charged once to the shared
	// stream) and memoized-route invalidation.
	Churn []ChurnEvent
	// Faults, when non-nil, builds a seeded fault-injection plan over the
	// deployment (internal/faults): per-link loss boosts, transient link
	// failures, scheduled partitions, duplication and bounded delay. The
	// plan is installed on the shared network and on every per-query
	// network, advanced once per epoch at the top of Step (sequentially,
	// same discipline as SeededChurn), and whenever it holds any cut link
	// the engine runs a link-fault recovery phase after churn recovery:
	// live steppers implementing join.LinkFaultRecoverer reroute severed
	// paths through a link-aware routing.Repairer (probes charged once to
	// the shared stream) or fall back to the base station with window
	// replay. A zero Config leaves every run byte-identical to Faults=nil.
	Faults *faults.Config
	// Retry, when non-nil, replaces the default retry policy (3 retries
	// per hop, no backoff cost) on the shared and every per-query network:
	// per-kind retry overrides and the per-retransmission backoff byte
	// cost. See sim.RetryPolicy.
	Retry *sim.RetryPolicy
	// Adapt enables the engine's sequential adaptivity phase (section 6
	// at deployment scope): each epoch, after churn and recovery and
	// before the parallel stepping section, every live query's stepper
	// implementing join.Adaptive closes the previous epoch's sampling
	// cycle on its selectivity estimators (fed from the stepper's own
	// observations, never from Obs metrics) and executes any triggered
	// window migrations. The phase is sequential and in submission order,
	// and its traffic is charged through the same per-query ledger
	// discipline as parallel stepping, so output stays byte-identical at
	// any worker count. Liveness is consulted at each migration's commit
	// point: a migration whose target died this epoch aborts into the
	// section-7 base-station fallback.
	Adapt bool
	// Workers caps the goroutines Step uses to run live-query sampling
	// cycles concurrently within an epoch: 0 or 1 is fully sequential,
	// <0 means one worker per CPU core. Output is byte-identical at any
	// worker count — the same guarantee experiments.Config.Workers gives
	// sweep fan-out — because every query owns its network, rng streams
	// and join state outright, shared structures (substrate, topology,
	// liveness) are read-only while steppers run, and each worker charges
	// a thread-local sim.ChargeBuffer that Step merges in submission
	// order at the epoch barrier. Admission, churn and recovery stay
	// sequential: they mutate shared state.
	Workers int
	// MemBudgetJoinBytes / MemBudgetRoutingBytes are observational
	// per-layer byte budgets for arena-accounted dense state (zero means
	// unbudgeted). Budgets never gate allocation — runs stay byte-identical
	// with or without them — they are published through the mem.*.budget
	// gauges so dashboards and the bench heap gate can flag overruns.
	MemBudgetJoinBytes    int64
	MemBudgetRoutingBytes int64
	// Obs, when non-nil, collects engine metrics (see internal/obs and
	// DESIGN.md's "Observability model"): lifecycle counters, churn
	// recovery tallies, per-class byte gauges sampled at the epoch
	// barrier, join-state sizes, and wall-time histograms for the epoch
	// and each scheduler phase. Observation never feeds back into
	// execution, so a run's simulated output (and every determinism
	// checksum derived from it) is identical with Obs set or nil.
	Obs *obs.Registry
	// Trace, when non-nil, records wall-clock spans — scheduler phases on
	// lane 0, per-query sampling cycles on worker lanes — for export in
	// JSONL or Chrome trace_event form. Same non-interference guarantee
	// as Obs.
	Trace *obs.Tracer
}

// EffectiveNodes returns the deployment size New builds for a kind/nodes
// pair: the default of 100, and Intel's fixed 54-mote layout (for which
// nodes is ignored). The single place sizing knowledge lives — churn
// validation in the facade and CLI resolve node counts through it.
func EffectiveNodes(kind topology.Kind, nodes int) int {
	if kind == topology.Intel {
		return 54
	}
	if nodes == 0 {
		return 100
	}
	return nodes
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 100
	}
	if o.Trees == 0 {
		o.Trees = 3
	}
	if o.LossProb == 0 && !o.Lossless {
		o.LossProb = 0.05
	}
	if o.Lossless {
		o.LossProb = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// QueryConfig describes one continuous query submitted to an Engine.
// Exactly one of SQL and Spec must be set.
type QueryConfig struct {
	// ID labels the query in reports (default "q<index>"). Must be
	// unique within the engine.
	ID string
	// SQL is StreamSQL text, compiled against the shared deployment via
	// the full Appendix B pipeline.
	SQL string
	// Spec is a pre-compiled query spec (must be built over the engine's
	// Topo/Nodes so node IDs and statics agree).
	Spec *workload.Spec
	// Algorithm is the join strategy (default In-Net + multicast +
	// group optimization, the paper's recommended variant).
	Algorithm join.Continuous
	// Rates are the data-generation ground truth for this query's
	// sampler (default the paper's 1/2:1/2 stage with sigma_st = 10%).
	// Ignored when Spec carries its own rates.
	Rates workload.Rates
	// Opt, when non-nil, feeds the optimizer estimates that differ from
	// the ground truth.
	Opt *costmodel.Params
	// Sampler overrides the default per-query generator (e.g. the
	// humidity process for Query 3).
	Sampler workload.Sampler
	// Cycles is the query's lifetime in epochs; 0 means "until the
	// engine run ends".
	Cycles int
	// AdmitAt is the epoch at which the query enters the network
	// (default 0, i.e. immediately).
	AdmitAt int
}

// State is a query's lifecycle position.
type State int

// Lifecycle states.
const (
	Pending State = iota // submitted, not yet admitted
	Live                 // admitted, stepping every epoch
	Retired              // finished; Result frozen
)

// String returns the report label.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Live:
		return "live"
	default:
		return "retired"
	}
}

// Query is one registered continuous query and its execution state.
type Query struct {
	ID      string
	Spec    *workload.Spec
	Alg     join.Continuous
	Cycles  int
	AdmitAt int

	state       State
	net         *sim.Network
	opt         costmodel.Params
	sampler     workload.Sampler
	stepper     join.Stepper
	admitEpoch  int
	retireEpoch int
	lastResults int
	lastLost    int
	result      *join.Result
	// ledger is the query's per-epoch traffic buffer for parallel
	// stepping (allocated lazily on the first parallel epoch, reused for
	// the query's lifetime).
	ledger *sim.ChargeBuffer
}

// State returns the query's lifecycle state.
func (q *Query) State() State { return q.state }

// Result returns the final result (nil until retirement).
func (q *Query) Result() *join.Result { return q.result }

// EpochStats is what the OnEpoch hook streams after every scheduler epoch.
//
// The value and its NewResults map are only valid for the duration of the
// callback: the engine reuses the map across epochs (hot runs stream
// thousands of epochs; one cleared map beats one allocation each). Hooks
// that retain stats past their return must clone NewResults.
type EpochStats struct {
	// Epoch is the epoch that just ran.
	Epoch int
	// Live is the number of queries that stepped this epoch.
	Live int
	// Admitted / Retired list query IDs that changed state this epoch.
	Admitted, Retired []string
	// NewResults maps query ID to join results delivered during this
	// epoch (only queries with a non-zero delta appear). Valid only
	// during the callback — see the struct comment.
	NewResults map[string]int
	// Failed lists the nodes the churn schedule failed this epoch;
	// Repaired counts query paths rerouted in-network around those
	// failures, Fallbacks the pairs that switched to joining at the base
	// station instead (section 7's two recovery outcomes), and
	// TreesRebuilt the substrate routing trees rebuilt around them.
	Failed                            []topology.NodeID
	Repaired, Fallbacks, TreesRebuilt int
	// Migrations counts window migrations committed by this epoch's
	// adaptivity phase across all live queries; MigrationsAborted counts
	// migrations abandoned at the commit point because the target node
	// was dead (the pair fell back to the base station) or because the
	// window's transfer path was partitioned. Both are zero unless
	// Options.Adapt is set.
	Migrations, MigrationsAborted int
	// LinkRerouted / LinkFallbacks are the link-fault recovery phase's
	// outcomes this epoch (Options.Faults only): paths rerouted around
	// cut links vs pairs that fell back to the base station because a
	// partition isolated their join node. ResultsLost is the epoch's
	// policy-exhausted result losses across all live queries — results
	// computed but dropped in flight to the base (feeds faults.losses).
	LinkRerouted, LinkFallbacks, ResultsLost int
}

// Engine schedules continuous queries over one shared deployment.
type Engine struct {
	Topo  *topology.Topology
	Nodes []workload.NodeInfo
	Sub   *routing.Substrate

	// OnEpoch, when non-nil, streams per-epoch progress.
	OnEpoch func(EpochStats)

	opts    Options
	shared  *sim.Network
	live    *topology.Liveness
	queries []*Query
	byID    map[string]*Query
	epoch   int
	// workers is the resolved Options.Workers (>= 1); stepList is the
	// reused per-epoch scratch listing the queries that step this epoch,
	// in submission order.
	workers  int
	stepList []*Query
	// unretired counts queries not yet Retired, so the scheduler answers
	// "anything left?" without rescanning the registry every epoch.
	unretired int
	// churnAt indexes Options.Churn by epoch (events in slice order).
	churnAt map[int][]ChurnEvent
	// Recovery totals across the run (see Report).
	totalFailed, totalRepaired, totalFallbacks, totalRebuilds int
	// Adaptivity totals across the run (see Report).
	totalMigrations, totalAborted int
	// faults is the built fault plan (nil without Options.Faults); the
	// remaining fields total its outcomes across the run (see Report).
	faults                                           *faults.Plan
	totalLinkRerouted, totalLinkFallbacks, totalLost int
	partitionEpochs                                  int
	// inst is the registered instrument set (nil when Options.Obs is nil)
	// and lane0 the scheduler's trace lane (nil when Options.Trace is
	// nil); epochResults is the reused NewResults map handed to OnEpoch.
	inst         *instruments
	lane0        *obs.Lane
	epochResults map[string]int
}

// New builds the shared deployment: topology, node statics, ONE liveness
// view shared by the infrastructure network and every per-query network,
// and the routing substrate with tree construction charged ONCE to the
// shared metrics stream. Queries extend the substrate's indexes
// incrementally at admission. It panics when the churn schedule names the
// base station or an out-of-range node.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	topo := topology.Generate(opts.Kind, opts.Nodes, 1)
	nodes := workload.BuildNodes(topo, 1)
	live := topology.NewLiveness(topo.N())
	shared := sim.NewSharedNetwork(topo, opts.LossProb, opts.Seed^0xA59E17, live)
	// The fault plan and retry policy install BEFORE substrate
	// construction, so tree-building beacons see per-link loss boosts like
	// any other traffic (no cuts yet: those only appear once BeginEpoch
	// advances the plan).
	var plan *faults.Plan
	if opts.Faults != nil {
		plan = faults.NewPlan(topo, *opts.Faults)
		shared.SetFaults(plan)
	}
	if opts.Retry != nil {
		shared.SetRetryPolicy(*opts.Retry)
	}
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: opts.Trees}, shared)
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		Topo:    topo,
		Nodes:   nodes,
		Sub:     sub,
		opts:    opts,
		shared:  shared,
		live:    live,
		byID:    map[string]*Query{},
		workers: workers,
		faults:  plan,
		inst:    newInstruments(opts.Obs, workers),
		lane0:   opts.Trace.Lane(0),
	}
	if len(opts.Churn) > 0 {
		e.churnAt = make(map[int][]ChurnEvent)
		for _, ev := range opts.Churn {
			if ev.Node == topology.Base {
				panic("engine: churn schedule may not fail the base station")
			}
			if ev.Node < 0 || int(ev.Node) >= topo.N() {
				panic(fmt.Sprintf("engine: churn event names node %d outside the %d-node deployment", ev.Node, topo.N()))
			}
			e.churnAt[ev.Epoch] = append(e.churnAt[ev.Epoch], ev)
		}
	}
	return e
}

// Liveness returns the deployment's shared node-liveness view.
func (e *Engine) Liveness() *topology.Liveness { return e.live }

// Epoch returns the next epoch the scheduler will run.
func (e *Engine) Epoch() int { return e.epoch }

// SharedBytes returns the infrastructure traffic charged once per network.
func (e *Engine) SharedBytes() int64 { return e.shared.Metrics().TotalBytes }

// Queries returns the registry in submission order.
func (e *Engine) Queries() []*Query { return e.queries }

// Submit compiles and registers a query. It may be called before Run or
// between epochs; a query whose AdmitAt has already passed is admitted at
// the next epoch.
func (e *Engine) Submit(qc QueryConfig) (*Query, error) {
	idx := len(e.queries)
	id := qc.ID
	if id == "" {
		id = fmt.Sprintf("q%d", idx)
	}
	if _, dup := e.byID[id]; dup {
		return nil, fmt.Errorf("engine: duplicate query id %q", id)
	}
	if (qc.SQL == "") == (qc.Spec == nil) {
		return nil, fmt.Errorf("engine: query %q must set exactly one of SQL and Spec", id)
	}
	rates := qc.Rates
	if rates == (workload.Rates{}) {
		rates = workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
	}
	spec := qc.Spec
	if spec == nil {
		var err error
		spec, err = workload.SpecFromSQL(qc.SQL, e.Topo, e.Nodes, rates)
		if err != nil {
			return nil, fmt.Errorf("engine: query %q: %w", id, err)
		}
	} else {
		rates = spec.Rates
	}
	alg := qc.Algorithm
	if alg == nil {
		alg = join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}}
	}
	opt := costmodel.Params{
		SigmaS: rates.SigmaS, SigmaT: rates.SigmaT, SigmaST: rates.SigmaST, W: spec.W,
	}
	if qc.Opt != nil {
		opt = *qc.Opt
		opt.W = spec.W
	}
	// Independent per-query streams keyed by submission index: the loss
	// process and the sampler never share draws across queries, so adding
	// a query never perturbs another's run. Metrics and loss are private;
	// the liveness view is the DEPLOYMENT's — a churned node is dead in
	// every query's network at once.
	src := rng.New(e.opts.Seed).Split(uint64(idx) + 0x51)
	net := sim.NewSharedNetwork(e.Topo, e.opts.LossProb, src.Uint64(), e.live)
	if e.faults != nil {
		net.SetFaults(e.faults)
	}
	if e.opts.Retry != nil {
		net.SetRetryPolicy(*e.opts.Retry)
	}
	sampler := qc.Sampler
	if sampler == nil {
		sampler = workload.NewGenerator(rates, src.Uint64())
	}
	admitAt := qc.AdmitAt
	if admitAt < e.epoch {
		admitAt = e.epoch
	}
	q := &Query{
		ID:      id,
		Spec:    spec,
		Alg:     alg,
		Cycles:  qc.Cycles,
		AdmitAt: admitAt,
		net:     net,
		opt:     opt,
		sampler: sampler,
	}
	e.queries = append(e.queries, q)
	e.byID[id] = q
	e.unretired++
	return q, nil
}

// admit moves a pending query into the network: its index needs are
// charged to the shared substrate (incremental — attributes another query
// already indexed are free), and the algorithm's initiation traffic to the
// query's own stream.
func (e *Engine) admit(q *Query, epoch int) {
	e.Sub.ExtendIndexes(q.Spec.Indexes, e.shared)
	if q.Spec.IndexPositions {
		e.Sub.ExtendPositionIndex(e.shared)
	}
	jc := join.NewConfig(e.Topo, q.net, e.Sub, q.Spec, q.sampler, q.opt, q.Cycles)
	jc.ExternalAdapt = e.opts.Adapt
	q.stepper = q.Alg.Start(jc)
	q.state = Live
	q.admitEpoch = epoch
}

// retire freezes a live query's result.
func (e *Engine) retire(q *Query, epoch int) {
	q.result = q.stepper.Finish()
	q.stepper = nil
	q.state = Retired
	q.retireEpoch = epoch
	e.unretired--
}

// applyChurn applies the churn events scheduled for epoch against the
// shared liveness view and, when any node failed, runs the engine-wide
// recovery: the substrate rebuilds the routing trees the failures broke
// (charged to the shared stream), and every live stepper implementing
// join.FailureRecoverer repairs its paths through one shared
// routing.Repairer — so limited-exploration probes for a given broken gap
// are charged once to the shared metrics, no matter how many queries
// route through it. Returns the nodes failed this epoch and the
// repair/fallback/rebuild tallies. pt splits the wall-time observation
// between the churn phase (liveness application) and the recover phase
// (tree rebuilds + per-query repair).
func (e *Engine) applyChurn(epoch int, pt *phaseTimer) (failed []topology.NodeID, repaired, fallbacks, rebuilds int) {
	evs := e.churnAt[epoch]
	if len(evs) == 0 {
		return nil, 0, 0, 0
	}
	for _, ev := range evs {
		if ev.Revive {
			e.live.Revive(ev.Node)
			continue
		}
		if e.live.Alive(ev.Node) {
			e.live.Fail(ev.Node)
			failed = append(failed, ev.Node)
		}
	}
	pt.done(phaseChurn, epoch)
	if len(failed) == 0 {
		return nil, 0, 0, 0
	}
	e.totalFailed += len(failed)
	rebuilds = e.Sub.RepairTrees(e.shared, e.live, failed)
	e.totalRebuilds += rebuilds
	rp := routing.NewRepairer(e.Topo, e.shared, routing.DefaultRepairLimit)
	for _, q := range e.queries {
		if q.state != Live {
			continue
		}
		if fr, ok := q.stepper.(join.FailureRecoverer); ok {
			r, f := fr.HandleNodeFailure(failed, rp)
			repaired += r
			fallbacks += f
		}
	}
	e.totalRepaired += repaired
	e.totalFallbacks += fallbacks
	pt.done(phaseRecover, epoch)
	return failed, repaired, fallbacks, rebuilds
}

// applyLinkFaults runs the link-fault recovery phase: whenever the fault
// plan holds any cut (a down link or an active partition), every live
// stepper implementing join.LinkFaultRecoverer sweeps its paths against
// its network's fault view — rerouting severed paths through one shared
// link-aware Repairer (exploration probes charged once to the SHARED
// stream, like churn recovery) or falling back to the base station with
// window replay when a partition isolates a join node. Runs sequentially
// in submission order, every epoch the cuts persist, so paths severed by
// later link failures are eventually caught too; pairs already recovered
// are skipped by the steppers, so the sweep converges.
func (e *Engine) applyLinkFaults(epoch int, pt *phaseTimer) (rerouted, fallbacks int) {
	rp := routing.NewRepairer(e.Topo, e.shared, routing.DefaultRepairLimit)
	rp.SetLinkCheck(e.faults.LinkUsable)
	for _, q := range e.queries {
		if q.state != Live {
			continue
		}
		if lr, ok := q.stepper.(join.LinkFaultRecoverer); ok {
			r, f := lr.HandleLinkFaults(rp)
			rerouted += r
			fallbacks += f
		}
	}
	e.totalLinkRerouted += rerouted
	e.totalLinkFallbacks += fallbacks
	pt.done(phaseFaults, epoch)
	return rerouted, fallbacks
}

// applyAdapt runs the adaptivity phase (Options.Adapt): sequentially, in
// submission order, each live query's stepper implementing join.Adaptive
// closes the previous epoch's sampling cycle on its selectivity estimators
// and executes any triggered window migrations against the post-recovery
// liveness view. Queries admitted this epoch are skipped — they have no
// completed cycle to close. All adaptivity traffic (window snapshots,
// re-nominations, fallback replays) is charged through the query's
// sim.ChargeBuffer ledger and merged immediately, the same discipline the
// parallel stepping section uses, so the phase's accounting is identical
// at any worker count.
func (e *Engine) applyAdapt(epoch int, pt *phaseTimer) (migrated, aborted int) {
	n := e.Topo.N()
	for _, q := range e.queries {
		if q.state != Live || q.admitEpoch >= epoch {
			continue
		}
		ad, ok := q.stepper.(join.Adaptive)
		if !ok {
			continue
		}
		if q.ledger == nil {
			q.ledger = sim.NewChargeBuffer(n)
		}
		q.net.AttachLedger(q.ledger)
		m, a := ad.AdaptEpoch(epoch-1-q.admitEpoch, e.live)
		q.net.DetachLedger()
		q.net.MergeLedger(q.ledger)
		migrated += m
		aborted += a
	}
	e.totalMigrations += migrated
	e.totalAborted += aborted
	pt.done(phaseAdapt, epoch)
	return migrated, aborted
}

// Step runs one scheduler epoch: admissions due this epoch, then the
// epoch's churn events plus engine-wide failure recovery, then the
// sequential adaptivity phase (when Options.Adapt is set), then one
// sampling cycle of every live query, then the deterministic merge of
// per-query accounting (in submission order) and retirements. It reports
// whether any query is still pending or live.
//
// With Options.Workers > 1 the sampling cycles run concurrently on a
// worker pool (see stepLive); everything before and after the parallel
// section — admission, churn, recovery, ledger merge, result deltas,
// retirement, the OnEpoch hook — is sequential and in submission order,
// so the epoch's observable output is byte-identical at any worker count.
//
// The EpochStats value is only materialized when an OnEpoch hook is
// registered, so headless runs pay no per-epoch allocation for progress
// streaming they never read; the NewResults map is allocated once and
// cleared between epochs (see the EpochStats validity contract).
func (e *Engine) Step() bool {
	epoch := e.epoch
	track := e.OnEpoch != nil
	var stats EpochStats
	if track {
		if e.epochResults == nil {
			e.epochResults = make(map[string]int)
		} else {
			clear(e.epochResults)
		}
		stats = EpochStats{Epoch: epoch, NewResults: e.epochResults}
	}
	// Advance the fault plan first: the epoch's link failures, revivals
	// and partition state must be in force before any traffic — admission
	// initiation included — is charged. Sequential, seeded, same
	// discipline as the churn schedule.
	if e.faults != nil {
		e.faults.BeginEpoch(epoch)
		if e.faults.PartitionActive() {
			e.partitionEpochs++
			if e.inst != nil {
				e.inst.faultPartEpochs.Inc()
			}
		}
	}
	pt := e.startPhases()
	results, admitted, lost := 0, 0, 0
	for _, q := range e.queries {
		if q.state == Pending && q.AdmitAt <= epoch {
			e.admit(q, epoch)
			admitted++
			if track {
				stats.Admitted = append(stats.Admitted, q.ID)
			}
		}
	}
	pt.done(phaseAdmit, epoch)
	if e.churnAt != nil {
		failed, repaired, fallbacks, rebuilds := e.applyChurn(epoch, &pt)
		if track {
			stats.Failed = failed
			stats.Repaired = repaired
			stats.Fallbacks = fallbacks
			stats.TreesRebuilt = rebuilds
		}
		e.observeChurn(len(failed), repaired, fallbacks, rebuilds)
	}
	if e.faults != nil && e.faults.AnyCut() {
		rerouted, fallbacks := e.applyLinkFaults(epoch, &pt)
		if track {
			stats.LinkRerouted = rerouted
			stats.LinkFallbacks = fallbacks
		}
		e.observeFaults(rerouted, fallbacks)
	}
	if e.opts.Adapt {
		migrated, aborted := e.applyAdapt(epoch, &pt)
		if track {
			stats.Migrations = migrated
			stats.MigrationsAborted = aborted
		}
		e.observeAdapt(migrated, aborted)
	}
	e.stepList = e.stepList[:0]
	for _, q := range e.queries {
		if q.state == Live {
			e.stepList = append(e.stepList, q)
		}
	}
	e.stepLive(epoch, e.stepList)
	pt.done(phaseStep, epoch)
	// Epoch barrier: every stepper has finished its cycle. Accounting —
	// ledger merges (done inside stepLive), result deltas, retirements —
	// runs sequentially in submission order.
	retired := 0
	for _, q := range e.stepList {
		r := q.stepper.Results()
		d := r - q.lastResults
		q.lastResults = r
		results += d
		if track && d > 0 {
			stats.NewResults[q.ID] = d
		}
		if lr, ok := q.stepper.(join.LossReporter); ok {
			l := lr.ResultsLost()
			lost += l - q.lastLost
			q.lastLost = l
		}
		if q.Cycles > 0 && epoch-q.admitEpoch+1 >= q.Cycles {
			e.retire(q, epoch+1)
			retired++
			if track {
				stats.Retired = append(stats.Retired, q.ID)
			}
		}
	}
	e.totalLost += lost
	if e.inst != nil {
		e.observeEpoch(len(e.stepList), admitted, retired, results, lost)
	}
	pt.done(phaseMerge, epoch)
	pt.finish(epoch)
	e.epoch++
	if track {
		stats.Live = len(e.stepList)
		stats.ResultsLost = lost
		e.OnEpoch(stats)
	}
	return e.unretired > 0
}

// stepLive runs one sampling cycle of every query in qs. With one worker
// (or one query) it is a plain sequential loop charging each query's
// network directly. With more, the queries fan out over a pool of
// goroutines: each query's cycle runs entirely on one worker, charging a
// per-query sim.ChargeBuffer instead of its network's counters, and the
// buffers merge into the per-query networks in submission order once the
// pool drains. The merge makes the parallel path byte-identical to the
// sequential one: every query owns its rng streams (loss, sampler), its
// join/window state and its network; shared structures — routing
// substrate, topology, parent caches, the deployment liveness view — are
// only read while steppers run (churn and admission mutate them strictly
// outside this section); and shared-substrate traffic is charged on the
// shared stream by the sequential sections exactly once, never through a
// worker's ledger.
func (e *Engine) stepLive(epoch int, qs []*Query) {
	workers := e.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	// Per-step instrumentation: worker w charges shard w of the sharded
	// counters with plain adds (zero-value handles are no-ops) and records
	// a span on lane 1+w; the shards fold into published totals at the
	// barrier, in observeEpoch. The clock is only read when observing.
	var busy, steps obs.ShardedCounter
	if e.inst != nil {
		busy, steps = e.inst.workerBusyUS, e.inst.workerSteps
	}
	if workers <= 1 {
		if !e.observing() {
			e.stepSequential(epoch, qs)
			return
		}
		lane := e.opts.Trace.Lane(1)
		for _, q := range qs {
			t0 := time.Now() //aspen:wallclock obs-only worker timing
			q.stepper.Step(epoch - q.admitEpoch)
			busy.Add(0, time.Since(t0).Microseconds()) //aspen:wallclock obs-only worker timing
			steps.Add(0, 1)
			lane.Span(q.ID, epoch, q.ID, t0)
		}
		return
	}
	n := e.Topo.N()
	for _, q := range qs {
		if q.ledger == nil {
			q.ledger = sim.NewChargeBuffer(n)
		}
		q.net.AttachLedger(q.ledger)
	}
	observing := e.observing()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lane := e.opts.Trace.Lane(1 + w)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				q := qs[i]
				if !observing {
					q.stepper.Step(epoch - q.admitEpoch)
					continue
				}
				t0 := time.Now() //aspen:wallclock obs-only worker timing
				q.stepper.Step(epoch - q.admitEpoch)
				busy.Add(w, time.Since(t0).Microseconds()) //aspen:wallclock obs-only worker timing
				steps.Add(w, 1)
				lane.Span(q.ID, epoch, q.ID, t0)
			}
		}(w)
	}
	wg.Wait()
	for _, q := range qs {
		q.net.DetachLedger()
		q.net.MergeLedger(q.ledger)
	}
}

// stepSequential is the steady-state sequential fast path: one worker,
// observability disabled — every live query steps once, nothing else.
// This is the loop whose allocation budget PR 2 pinned with benchmarks;
// the //aspen:allocfree gate holds it at zero heap allocations per call
// (stepper-internal state is covered by the annotated Step methods).
//
//aspen:allocfree
func (e *Engine) stepSequential(epoch int, qs []*Query) {
	for _, q := range qs {
		q.stepper.Step(epoch - q.admitEpoch)
	}
}

// Run executes `epochs` scheduler epochs, then drains: every query still
// live is retired at the horizon (queries with Cycles == 0 live exactly
// this long), and still-pending queries stay pending. It returns the
// report.
func (e *Engine) Run(epochs int) *Report {
	for i := 0; i < epochs; i++ {
		e.Step()
	}
	for _, q := range e.queries {
		if q.state == Live {
			e.retire(q, e.epoch)
		}
	}
	return e.Report()
}

// QueryReport is the per-query slice of a Report.
type QueryReport struct {
	ID        string
	Algorithm string
	State     string
	// AdmitEpoch / RetireEpoch bound the query's live interval
	// [AdmitEpoch, RetireEpoch).
	AdmitEpoch, RetireEpoch int
	// Traffic charged to this query's own metrics stream (initiation,
	// data, results — never shared infrastructure).
	TotalBytes, TotalMessages int64
	InitBytes                 int64
	BaseBytes                 int64
	MaxNodeBytes              int64
	// BytesPerNode is TotalBytes averaged over the deployment.
	BytesPerNode float64
	Results      int
	// ResultsLost counts results the query computed that exhausted the
	// retry policy in flight to the base station — explicit, observable
	// loss, never silent (see join.Result.ResultsLost).
	ResultsLost int
	MeanDelay   float64
	InNetPairs  int
	AtBasePairs int
}

// Report aggregates the engine's traffic accounting.
type Report struct {
	// Epochs is how many scheduler epochs have run.
	Epochs int
	// Nodes is the deployment size.
	Nodes int
	// SharedBytes / SharedMessages are the infrastructure traffic charged
	// once per network (tree construction, summary dissemination, index
	// extension).
	SharedBytes, SharedMessages int64
	// QueryBytes is the sum of per-query traffic.
	QueryBytes int64
	// AggregateBytes = SharedBytes + QueryBytes: everything this
	// deployment transmitted. N single-query deployments would have paid
	// roughly SharedBytes*N + QueryBytes instead.
	AggregateBytes int64
	// AggregateBytesPerNode averages AggregateBytes over the deployment.
	AggregateBytesPerNode float64
	// Results totals delivered join results across queries.
	Results int
	// FailedNodes counts nodes failed by the churn schedule over the run;
	// PathsRepaired / BaseFallbacks are the section 7 recovery outcomes
	// (in-network reroutes vs pairs switched to the base station) and
	// TreesRebuilt the substrate's tree-rebuild fallbacks.
	FailedNodes, PathsRepaired, BaseFallbacks, TreesRebuilt int
	// TreesPatched counts the subset of TreesRebuilt the substrate served
	// by incremental subtree patching (routing.PatchTreeLive) instead of a
	// full rebuild. Patched repairs charge byte-identical traffic, so this
	// split is a cost diagnostic, not an output difference.
	TreesPatched int
	// Migrations / MigrationsAborted total the adaptivity phase's window
	// migrations over the run: committed moves and moves abandoned at the
	// commit point because the target died or the transfer path was
	// partitioned (zero unless Options.Adapt).
	Migrations, MigrationsAborted int
	// ResultsLost totals policy-exhausted result losses across queries:
	// results computed at join nodes but dropped in flight to the base.
	// LinkRerouted / LinkFallbacks are the link-fault recovery phase's
	// cumulative outcomes and PartitionEpochs counts epochs a scheduled
	// partition was in force (all zero unless Options.Faults).
	ResultsLost, LinkRerouted, LinkFallbacks, PartitionEpochs int
	// Queries reports every submitted query in submission order.
	Queries []QueryReport
}

// Report snapshots the current accounting. Retired queries report their
// frozen results; live queries report their metrics so far.
func (e *Engine) Report() *Report {
	n := e.Topo.N()
	sm := e.shared.Metrics()
	rep := &Report{
		Epochs:            e.epoch,
		Nodes:             n,
		SharedBytes:       sm.TotalBytes,
		SharedMessages:    sm.TotalMessages,
		FailedNodes:       e.totalFailed,
		PathsRepaired:     e.totalRepaired,
		BaseFallbacks:     e.totalFallbacks,
		TreesRebuilt:      e.totalRebuilds,
		TreesPatched:      e.Sub.Stats().Patched,
		Migrations:        e.totalMigrations,
		MigrationsAborted: e.totalAborted,
		LinkRerouted:      e.totalLinkRerouted,
		LinkFallbacks:     e.totalLinkFallbacks,
		PartitionEpochs:   e.partitionEpochs,
	}
	for _, q := range e.queries {
		qr := QueryReport{
			ID:          q.ID,
			Algorithm:   q.Alg.Name(),
			State:       q.state.String(),
			AdmitEpoch:  q.admitEpoch,
			RetireEpoch: q.retireEpoch,
		}
		if q.state == Pending {
			qr.AdmitEpoch, qr.RetireEpoch = -1, -1
		}
		if q.result != nil {
			r := q.result
			qr.TotalBytes, qr.TotalMessages = r.TotalBytes, r.TotalMessages
			qr.InitBytes, qr.BaseBytes = r.InitBytes, r.BaseBytes
			qr.MaxNodeBytes = r.MaxNodeBytes
			qr.Results, qr.MeanDelay = r.Results, r.MeanDelay()
			qr.ResultsLost = r.ResultsLost
			qr.InNetPairs, qr.AtBasePairs = r.InNetPairs, r.AtBasePairs
		} else if q.state == Live {
			m := q.net.Metrics()
			qr.TotalBytes, qr.TotalMessages = m.TotalBytes, m.TotalMessages
			qr.BaseBytes, qr.MaxNodeBytes = m.BaseBytes, m.MaxNodeBytes()
			qr.Results = q.stepper.Results()
			if lr, ok := q.stepper.(join.LossReporter); ok {
				qr.ResultsLost = lr.ResultsLost()
			}
			qr.RetireEpoch = -1
		}
		qr.BytesPerNode = float64(qr.TotalBytes) / float64(n)
		rep.QueryBytes += qr.TotalBytes
		rep.Results += qr.Results
		rep.ResultsLost += qr.ResultsLost
		rep.Queries = append(rep.Queries, qr)
	}
	rep.AggregateBytes = rep.SharedBytes + rep.QueryBytes
	rep.AggregateBytesPerNode = float64(rep.AggregateBytes) / float64(n)
	return rep
}

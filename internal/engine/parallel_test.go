package engine

import (
	"reflect"
	"testing"

	"repro/internal/join"
	"repro/internal/topology"
)

// workerCounts is the property-test grid: sequential, under-, at- and
// over-subscribed pools.
var workerCounts = []int{1, 2, 4, 8}

// captureStats returns an OnEpoch hook appending to *out. EpochStats and
// its NewResults map are only valid during the callback (the engine
// reuses the map), so retaining hooks like these must clone.
func captureStats(out *[]EpochStats) func(EpochStats) {
	return func(s EpochStats) {
		if len(s.NewResults) > 0 {
			m := make(map[string]int, len(s.NewResults))
			for k, v := range s.NewResults {
				m[k] = v
			}
			s.NewResults = m
		}
		*out = append(*out, s)
	}
}

// mixedRun executes a mixed workload — every continuous algorithm family,
// staggered admissions, mid-run retirements — at the given worker count
// and returns the report plus the captured per-epoch stream.
func mixedRun(t *testing.T, workers int, churn []ChurnEvent) (*Report, []EpochStats) {
	t.Helper()
	e := New(Options{Seed: 7, Workers: workers, Churn: churn})
	submissions := []QueryConfig{
		{ID: "innet", SQL: q1SQL(t), Cycles: 18},
		{ID: "plain", SQL: q2SQL(t), Algorithm: join.Innet{}, AdmitAt: 2},
		{ID: "naive", SQL: q1SQL(t), Algorithm: join.Naive{}, Cycles: 10, AdmitAt: 1},
		{ID: "base", SQL: q2SQL(t), Algorithm: join.Base{}, AdmitAt: 4},
		{ID: "yang", SQL: q1SQL(t), Algorithm: join.Yang07{}, Cycles: 12, AdmitAt: 3},
		{ID: "cmpg", SQL: q1SQL(t), Algorithm: join.Innet{Opts: join.InnetOptions{
			Multicast: true, PathCollapse: true, GroupOpt: true}}, AdmitAt: 5},
	}
	for _, qc := range submissions {
		if _, err := e.Submit(qc); err != nil {
			t.Fatal(err)
		}
	}
	var stream []EpochStats
	e.OnEpoch = captureStats(&stream)
	return e.Run(20), stream
}

// TestWorkersByteIdentical is the tentpole's determinism property: the
// same workload stepped at any worker count yields byte-identical reports,
// traffic totals and per-epoch streams.
func TestWorkersByteIdentical(t *testing.T) {
	baseRep, baseStream := mixedRun(t, 1, nil)
	if baseRep.Results == 0 || baseRep.QueryBytes == 0 {
		t.Fatal("baseline run produced no work to compare")
	}
	for _, w := range workerCounts[1:] {
		rep, stream := mixedRun(t, w, nil)
		if !reflect.DeepEqual(baseRep, rep) {
			t.Fatalf("workers=%d report differs from sequential:\n%+v\n%+v", w, baseRep, rep)
		}
		if !reflect.DeepEqual(baseStream, stream) {
			t.Fatalf("workers=%d epoch stream differs from sequential", w)
		}
	}
	// Workers < 0 (all cores) is also on the identity surface.
	rep, _ := mixedRun(t, -1, nil)
	if !reflect.DeepEqual(baseRep, rep) {
		t.Fatal("workers=-1 (NumCPU) report differs from sequential")
	}
}

// churn1kWorkload builds the bench churn-1k workload shape: two queries
// over a 1000-node deployment, a seeded churn schedule, and probe-selected
// victims — one intermediate path hop (repairs in-network) and one join
// node (falls back to the base) — so a 12-epoch run exercises every
// section-7 recovery outcome. Returns the engine factory and the schedule;
// shared by the worker-determinism and stats-completeness properties.
func churn1kWorkload(t *testing.T) (mk func(workers int, churn []ChurnEvent) *Engine, churn []ChurnEvent) {
	t.Helper()
	const nodes = 1000
	sql := []string{q1SQL(t), q2SQL(t)}
	mk = func(workers int, churn []ChurnEvent) *Engine {
		e := New(Options{Seed: 1, Kind: topology.ModerateRandom, Nodes: nodes, Workers: workers, Churn: churn})
		for i, src := range sql {
			if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: src}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	probe := mk(1, nil)
	probe.Run(6)
	var mid, joinNode topology.NodeID = -1, -1
	for _, q := range probe.Queries() {
		res := q.Result()
		for i, p := range res.PairPaths {
			j := res.PairJoinNodes[i]
			if mid < 0 {
				for _, id := range p[1 : len(p)-1] {
					if id != j {
						mid = id
						break
					}
				}
			}
			if mid >= 0 && j != mid {
				joinNode = j
			}
			if mid >= 0 && joinNode >= 0 {
				break
			}
		}
	}
	if mid < 0 || joinNode < 0 {
		t.Fatal("probe found no churn victims")
	}
	churn = append(SeededChurn(7, nodes, 12, 0.0005, 0),
		ChurnEvent{Epoch: 3, Node: mid},
		ChurnEvent{Epoch: 6, Node: joinNode})
	return mk, churn
}

// TestWorkersChurnByteIdentical runs the churn-1k workload at every worker
// count and requires identical recovery accounting. Churn and repair
// mutate shared state, so this is the test that pins them to the
// sequential sections.
func TestWorkersChurnByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node churn grid is slow")
	}
	mk, churn := churn1kWorkload(t)
	base := mk(1, churn).Run(12)
	if base.FailedNodes == 0 || base.PathsRepaired == 0 || base.BaseFallbacks == 0 {
		t.Fatalf("churn run lost its recovery coverage: %+v", base)
	}
	for _, w := range workerCounts[1:] {
		rep := mk(w, churn).Run(12)
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("workers=%d churn report differs from sequential:\nfailed=%d/%d repaired=%d/%d shared=%d/%d aggregate=%d/%d",
				w, rep.FailedNodes, base.FailedNodes, rep.PathsRepaired, base.PathsRepaired,
				rep.SharedBytes, base.SharedBytes, rep.AggregateBytes, base.AggregateBytes)
		}
	}
}

// TestWorkersTrafficExactlyOnce: the ledger merge must neither drop nor
// duplicate charges — per-query totals and the shared stream agree with
// the sequential run, and the aggregate identity holds.
func TestWorkersTrafficExactlyOnce(t *testing.T) {
	seq, _ := mixedRun(t, 1, nil)
	par, _ := mixedRun(t, 4, nil)
	if seq.SharedBytes != par.SharedBytes {
		t.Fatalf("shared-substrate traffic differs: %d vs %d", seq.SharedBytes, par.SharedBytes)
	}
	for i := range seq.Queries {
		a, b := seq.Queries[i], par.Queries[i]
		if a.TotalBytes != b.TotalBytes || a.TotalMessages != b.TotalMessages {
			t.Fatalf("query %s traffic differs: %d/%d vs %d/%d bytes/messages",
				a.ID, a.TotalBytes, a.TotalMessages, b.TotalBytes, b.TotalMessages)
		}
	}
	var sum int64
	for _, q := range par.Queries {
		sum += q.TotalBytes
	}
	if par.AggregateBytes != par.SharedBytes+sum {
		t.Fatalf("aggregate %d != shared %d + queries %d", par.AggregateBytes, par.SharedBytes, sum)
	}
}

// TestOnEpochHookMidRun: an OnEpoch hook registered mid-run sees exactly
// the epochs it was present for — the NewResults delta of its first epoch
// must match a hook-from-the-start run's, not the whole backlog.
func TestOnEpochHookMidRun(t *testing.T) {
	run := func(hookAt int) []EpochStats {
		e := New(Options{Seed: 7})
		if _, err := e.Submit(QueryConfig{SQL: q1SQL(t)}); err != nil {
			t.Fatal(err)
		}
		var stream []EpochStats
		for i := 0; i < 15; i++ {
			if i == hookAt {
				e.OnEpoch = captureStats(&stream)
			}
			e.Step()
		}
		return stream
	}
	full := run(0)
	late := run(8)
	if len(full) != 15 || len(late) != 7 {
		t.Fatalf("stream lengths %d/%d, want 15/7", len(full), len(late))
	}
	if !reflect.DeepEqual(full[8:], late) {
		t.Fatalf("late-registered hook sees different epochs:\nfull[8:] = %+v\nlate     = %+v", full[8:], late)
	}
}

// patchChurnWorkload builds a churn schedule of interior tree-0 victims —
// alive non-root nodes with children and a small subtree — so the
// substrate's incremental patch path (routing.PatchTreeLive) fires instead
// of a full rebuild. Shared by the worker-determinism property below.
func patchChurnWorkload(t *testing.T, e *Engine) []ChurnEvent {
	t.Helper()
	tree := e.Sub.Trees[0]
	roots := make(map[topology.NodeID]bool)
	for _, tr := range e.Sub.Trees {
		roots[tr.Root] = true
	}
	var churn []ChurnEvent
	epoch := 3
	for id := 0; id < e.Topo.N() && len(churn) < 3; id++ {
		v := topology.NodeID(id)
		if roots[v] || len(tree.Children[v]) == 0 {
			continue
		}
		if sub := tree.Subtree(v); len(sub) < 2 || len(sub) > 40 {
			continue
		}
		churn = append(churn, ChurnEvent{Epoch: epoch, Node: v})
		epoch += 2
	}
	if len(churn) == 0 {
		t.Fatal("probe found no interior patch victims")
	}
	return churn
}

// TestWorkersPatchChurnByteIdentical: interior-node failures served by the
// incremental patch path must leave the report byte-identical across
// worker counts, and the patch path must actually have fired
// (TreesPatched > 0) — otherwise the property is vacuous.
func TestWorkersPatchChurnByteIdentical(t *testing.T) {
	const nodes = 300
	mk := func(workers int, churn []ChurnEvent) *Engine {
		e := New(Options{Seed: 11, Kind: topology.ModerateRandom, Nodes: nodes, Workers: workers, Churn: churn})
		for i, src := range []string{q1SQL(t), q2SQL(t)} {
			if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: src}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	churn := patchChurnWorkload(t, mk(1, nil))
	base := mk(1, churn).Run(12)
	if base.TreesPatched == 0 {
		t.Fatalf("no incremental patches fired: %+v", base)
	}
	if base.TreesPatched > base.TreesRebuilt {
		t.Fatalf("patched %d exceeds total repairs %d", base.TreesPatched, base.TreesRebuilt)
	}
	for _, w := range []int{4} {
		rep := mk(w, churn).Run(12)
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("workers=%d patch-churn report differs from sequential:\npatched=%d/%d rebuilt=%d/%d shared=%d/%d",
				w, rep.TreesPatched, base.TreesPatched, rep.TreesRebuilt, base.TreesRebuilt,
				rep.SharedBytes, base.SharedBytes)
		}
	}
}

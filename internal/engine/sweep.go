package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs jobs 0..n-1 on a pool of `workers` goroutines and returns
// their results indexed by job. workers <= 0 means runtime.NumCPU().
//
// Determinism contract: job(i) must derive ALL of its randomness from i
// (per-job rng streams seeded by the job index, as every experiment here
// does) and must not touch shared mutable state. Results land in the slice
// at their job index, so the returned slice is byte-identical for any
// worker count and any scheduling interleaving — which is what lets the
// experiment registry fan figure sweeps across every core while still
// reproducing the paper's numbers exactly.
func Sweep[R any](n, workers int, job func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = job(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Engine-level properties of the fault-injection subsystem: the zero-plan
// identity, worker-count invariance under a full fault plan, loss
// accounting completeness, and the partition/migration interaction.

package engine

import (
	"reflect"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/workload"
)

// faultMix runs the standard two-query workload at the given worker count
// under a fault plan, capturing the per-epoch stream.
func faultMix(t *testing.T, workers int, fc *faults.Config, epochs int) (*Report, []EpochStats, *Engine) {
	t.Helper()
	e := New(Options{Seed: 11, Workers: workers, Faults: fc})
	for i, sql := range []string{q1SQL(t), q2SQL(t)} {
		if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	var stream []EpochStats
	e.OnEpoch = captureStats(&stream)
	return e.Run(epochs), stream, e
}

// TestFaultPlanZeroMatchesFaultFree is the lossy-oracle identity: a fault
// plan with nothing configured must leave the run byte-identical to no
// plan at all — installing the injector adds no draws and no charges.
func TestFaultPlanZeroMatchesFaultFree(t *testing.T) {
	repOff, streamOff, _ := faultMix(t, 1, nil, 25)
	repOn, streamOn, _ := faultMix(t, 1, &faults.Config{Seed: 5}, 25)
	if !reflect.DeepEqual(repOff, repOn) {
		t.Fatalf("zero fault plan perturbed the report:\noff: %+v\non:  %+v", repOff, repOn)
	}
	if !reflect.DeepEqual(streamOff, streamOn) {
		t.Fatal("zero fault plan perturbed the epoch stream")
	}
	if repOn.ResultsLost != 0 || repOn.LinkRerouted != 0 || repOn.LinkFallbacks != 0 || repOn.PartitionEpochs != 0 {
		t.Fatalf("zero plan reported fault activity: %+v", repOn)
	}
}

// fullFaultConfig is the everything-on plan the determinism properties
// exercise: heterogeneous loss, transient link failures with revival, a
// partition window, duplication and delay.
func fullFaultConfig() *faults.Config {
	return &faults.Config{
		Seed: 9, LinkLoss: 0.15, LinkFailRate: 0.01, LinkReviveAfter: 3,
		DupProb: 0.05, DelayMax: 2,
		Partitions: []faults.Partition{{From: 8, Until: 11, Kind: faults.Bisect}},
	}
}

// TestFaultsWorkersByteIdentical: with the full fault plan active, reports
// and per-epoch streams are byte-identical at every worker count — the
// plan draws only in sequential sections, so parallel stepping cannot
// reorder fault decisions.
func TestFaultsWorkersByteIdentical(t *testing.T) {
	baseRep, baseStream, _ := faultMix(t, 1, fullFaultConfig(), 25)
	if baseRep.Results == 0 {
		t.Fatal("fault run delivered nothing to compare")
	}
	if baseRep.LinkRerouted+baseRep.LinkFallbacks == 0 {
		t.Fatal("fault run exercised no link recovery")
	}
	for _, w := range workerCounts[1:] {
		rep, stream, _ := faultMix(t, w, fullFaultConfig(), 25)
		if !reflect.DeepEqual(baseRep, rep) {
			t.Fatalf("workers=%d fault report differs from sequential:\n%+v\n%+v", w, baseRep, rep)
		}
		if !reflect.DeepEqual(baseStream, stream) {
			t.Fatalf("workers=%d fault epoch stream differs from sequential", w)
		}
	}
}

// TestFaultLossesAccounted: every result that goes missing under injected
// loss is accounted — the per-epoch stream totals the report, the report
// totals the per-query slices, and the faults.losses counter agrees with
// all of them. Nothing silently vanishes from Results.
func TestFaultLossesAccounted(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Seed: 11, Obs: reg, Faults: &faults.Config{
		Seed: 9, LinkLoss: 0.4, LinkFailRate: 0.02, LinkReviveAfter: 2,
	}})
	for i, sql := range []string{q1SQL(t), q2SQL(t)} {
		if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	var stream []EpochStats
	e.OnEpoch = captureStats(&stream)
	rep := e.Run(30)
	if rep.ResultsLost == 0 {
		t.Fatal("heavy link loss lost no results; the property run is vacuous")
	}
	var streamLost int
	for _, s := range stream {
		streamLost += s.ResultsLost
	}
	if streamLost != rep.ResultsLost {
		t.Fatalf("epoch stream sums %d lost results, report says %d", streamLost, rep.ResultsLost)
	}
	var queryLost int
	for _, q := range rep.Queries {
		queryLost += q.ResultsLost
	}
	if queryLost != rep.ResultsLost {
		t.Fatalf("per-query slices sum %d lost results, report says %d", queryLost, rep.ResultsLost)
	}
	snap := reg.Snapshot()
	counter := func(name string) int64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %s not registered", name)
		return 0
	}
	if got := counter("faults.losses"); got != int64(rep.ResultsLost) {
		t.Fatalf("faults.losses = %d, report ResultsLost = %d", got, rep.ResultsLost)
	}
	if got := counter("faults.partition_epochs"); got != int64(rep.PartitionEpochs) {
		t.Fatalf("faults.partition_epochs = %d, report PartitionEpochs = %d", got, rep.PartitionEpochs)
	}
	if got := counter("faults.paths_rerouted"); got != int64(rep.LinkRerouted) {
		t.Fatalf("faults.paths_rerouted = %d, report LinkRerouted = %d", got, rep.LinkRerouted)
	}
	if got := counter("faults.base_fallbacks"); got != int64(rep.LinkFallbacks) {
		t.Fatalf("faults.base_fallbacks = %d, report LinkFallbacks = %d", got, rep.LinkFallbacks)
	}
}

// TestFaultStatsSumToReport: the link-fault recovery deltas streamed
// through OnEpoch total the report's counters.
func TestFaultStatsSumToReport(t *testing.T) {
	rep, stream, _ := faultMix(t, 1, fullFaultConfig(), 25)
	var rerouted, fallbacks int
	for _, s := range stream {
		rerouted += s.LinkRerouted
		fallbacks += s.LinkFallbacks
	}
	if rerouted != rep.LinkRerouted || fallbacks != rep.LinkFallbacks {
		t.Fatalf("epoch stream sums %d/%d != report %d/%d",
			rerouted, fallbacks, rep.LinkRerouted, rep.LinkFallbacks)
	}
	if rep.PartitionEpochs != 3 {
		t.Fatalf("partition window [8,11) counted %d epochs, want 3", rep.PartitionEpochs)
	}
}

// TestPartitionAbortsMidEpochMigration is the regression test for the
// migration/partition interaction: a window migration whose charged
// transfer path is severed by a partition that epoch must abort into the
// base-station fallback — counted in MigrationsAborted, pair parked at the
// base — instead of installing a half-transferred window.
func TestPartitionAbortsMidEpochMigration(t *testing.T) {
	// Same shape as TestAdaptMigrationFailureRace: the optimizer believes
	// the join is nearly cross-product (joins at base), the true rate is
	// tiny, so the first estimate interval triggers base-to-in-network
	// migrations — whose transfer paths a partition can sever.
	wrong := &costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.95}
	rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.02}
	run := func(fc *faults.Config, epochs int) (*Report, []EpochStats) {
		e := New(Options{Seed: 11, Lossless: true, Adapt: true, Faults: fc})
		for i, sql := range []string{q1SQL(t), q2SQL(t)} {
			if _, err := e.Submit(QueryConfig{
				ID: []string{"a", "b"}[i], SQL: sql, Rates: rates, Opt: wrong,
			}); err != nil {
				t.Fatal(err)
			}
		}
		var stream []EpochStats
		e.OnEpoch = captureStats(&stream)
		return e.Run(epochs), stream
	}
	// Probe: find the first migrating epoch.
	_, stream := run(nil, 40)
	m := -1
	for _, s := range stream {
		if s.Migrations > 0 {
			m = s.Epoch
			break
		}
	}
	if m < 0 {
		t.Fatal("probe run never migrated")
	}
	// Bisect the deployment for exactly the migration epoch: transfers
	// whose path crosses the median-x line fail with the path reported
	// cut, which must abort those migrations.
	fc := &faults.Config{Seed: 3, Partitions: []faults.Partition{{From: m, Until: m + 1, Kind: faults.Bisect}}}
	rep, pstream := run(fc, m+10)
	if rep.MigrationsAborted < 1 {
		t.Fatalf("partition at migration epoch %d aborted nothing: %+v", m, rep)
	}
	if rep.PartitionEpochs != 1 {
		t.Fatalf("partition active %d epochs, want 1", rep.PartitionEpochs)
	}
	abortEpoch := -1
	for _, s := range pstream {
		if s.MigrationsAborted > 0 {
			aborted := s.Epoch
			if aborted != m {
				t.Fatalf("migration aborted at epoch %d, partition was at %d", aborted, m)
			}
			abortEpoch = aborted
		}
	}
	if abortEpoch != m {
		t.Fatalf("epoch stream never recorded the abort (report says %d)", rep.MigrationsAborted)
	}
	// The aborted pairs stay joined at the base that epoch: the oracle run
	// without the partition has strictly more pairs in-network right after
	// the migration epoch.
	oracle, _ := run(nil, m+1)
	parked, _ := run(fc, m+1)
	var oracleInNet, parkedInNet int
	for _, q := range oracle.Queries {
		oracleInNet += q.InNetPairs
	}
	for _, q := range parked.Queries {
		parkedInNet += q.InNetPairs
	}
	if parkedInNet >= oracleInNet {
		t.Fatalf("aborted migrations did not park pairs at base: %d in-network with partition, %d without",
			parkedInNet, oracleInNet)
	}
	// After the partition heals the engine keeps delivering.
	post := 0
	for _, s := range pstream {
		if s.Epoch > m {
			for _, r := range s.NewResults {
				post += r
			}
		}
	}
	if post == 0 {
		t.Fatal("no results delivered after the partition healed")
	}
}

// Observability wiring: the engine's instrument set over internal/obs,
// the per-epoch phase timing, and the epoch-barrier sampling pass. All of
// it is zero-cost when Options.Obs and Options.Trace are nil — the hot
// path pays one nil check per epoch (see TestObsDisabledAddsNoAllocs) —
// and none of it feeds back into execution, so enabling observability
// never changes simulated output or determinism checksums.

package engine

import (
	"time"

	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Epoch phases, in execution order. Churn and Recover are only observed on
// engines with a churn schedule, Faults only on engines with a fault plan.
const (
	phaseAdmit = iota
	phaseChurn
	phaseRecover
	phaseFaults
	phaseAdapt
	phaseStep
	phaseMerge
	numPhases
)

var phaseNames = [numPhases]string{"admit", "churn", "recover", "faults", "adapt", "step", "merge"}

// phaseSpanNames are precomputed so closing a phase never builds a string
// on the metrics-only path (the concat would allocate even with tracing
// off).
var phaseSpanNames = [numPhases]string{
	"phase:admit", "phase:churn", "phase:recover", "phase:faults", "phase:adapt", "phase:step", "phase:merge",
}

// instruments is the engine's registered instrument set. The taxonomy
// (documented in DESIGN.md, "Observability model"):
//
//	engine.*  scheduler lifecycle counters and the live-query gauge
//	churn.*   section-7 failure/recovery event counters
//	faults.*  fault-injection layer: policy-exhausted result losses,
//	          partition epochs, link-fault recovery outcomes, and gauges
//	          for injected cut drops / duplicate deliveries / delay
//	sim.*     byte accounting sampled from the sim metrics streams
//	join.*    per-query join-state sizes
//	epoch.*   wall-time histograms (whole epoch + per phase, microseconds)
//	worker.*  per-worker sharded hot-path counters, flushed at the barrier
type instruments struct {
	epochs   obs.Counter
	admitted obs.Counter
	retired  obs.Counter
	results  obs.Counter
	live     obs.Gauge

	failed    obs.Counter
	repaired  obs.Counter
	fallbacks obs.Counter
	rebuilds  obs.Counter
	patched   obs.Counter
	// lastPatched is the substrate's cumulative patched-tree count at the
	// previous churn observation; observeChurn publishes the delta.
	lastPatched int

	migrations obs.Counter
	migAborted obs.Counter

	faultLosses     obs.Counter
	faultPartEpochs obs.Counter
	faultRerouted   obs.Counter
	faultFallbacks  obs.Counter
	faultDrops      obs.Gauge
	faultDups       obs.Gauge
	faultDelay      obs.Gauge

	sharedBytes obs.Gauge
	queryBytes  obs.Gauge
	kindBytes   [3]obs.Gauge
	drops       obs.Gauge
	retransmits obs.Gauge

	memJoin          obs.Gauge
	memRouting       obs.Gauge
	memJoinBudget    obs.Gauge
	memRoutingBudget obs.Gauge

	joinTuples   obs.Gauge
	joinPerQuery obs.Histogram

	epochWall obs.Histogram
	phases    [numPhases]obs.Histogram

	workerBusyUS obs.ShardedCounter
	workerSteps  obs.ShardedCounter
}

// newInstruments registers the engine's instrument set on reg (nil reg
// yields all-disabled handles, so callers need not special-case).
func newInstruments(reg *obs.Registry, workers int) *instruments {
	if reg == nil {
		return nil
	}
	in := &instruments{
		epochs:   reg.Counter("engine.epochs"),
		admitted: reg.Counter("engine.queries.admitted"),
		retired:  reg.Counter("engine.queries.retired"),
		results:  reg.Counter("engine.results"),
		live:     reg.Gauge("engine.queries.live"),

		failed:    reg.Counter("churn.nodes_failed"),
		repaired:  reg.Counter("churn.paths_repaired"),
		fallbacks: reg.Counter("churn.base_fallbacks"),
		rebuilds:  reg.Counter("churn.trees_rebuilt"),
		patched:   reg.Counter("churn.trees_patched"),

		migrations: reg.Counter("adapt.migrations"),
		migAborted: reg.Counter("adapt.migrations_aborted"),

		faultLosses:     reg.Counter("faults.losses"),
		faultPartEpochs: reg.Counter("faults.partition_epochs"),
		faultRerouted:   reg.Counter("faults.paths_rerouted"),
		faultFallbacks:  reg.Counter("faults.base_fallbacks"),
		faultDrops:      reg.Gauge("faults.injected_drops"),
		faultDups:       reg.Gauge("faults.duplicates"),
		faultDelay:      reg.Gauge("faults.delay_slots"),

		sharedBytes: reg.Gauge("sim.shared.bytes"),
		queryBytes:  reg.Gauge("sim.query.bytes"),
		drops:       reg.Gauge("sim.drops"),
		retransmits: reg.Gauge("sim.retransmissions"),

		memJoin:          reg.Gauge("mem.join.bytes"),
		memRouting:       reg.Gauge("mem.routing.bytes"),
		memJoinBudget:    reg.Gauge("mem.join.budget_bytes"),
		memRoutingBudget: reg.Gauge("mem.routing.budget_bytes"),

		joinTuples:   reg.Gauge("join.state.tuples"),
		joinPerQuery: reg.Histogram("join.state.tuples_per_query", obs.SizeBounds()),

		epochWall: reg.Histogram("epoch.wall_us", obs.DurationBoundsUS()),

		workerBusyUS: reg.ShardedCounter("worker.busy_us", workers),
		workerSteps:  reg.ShardedCounter("worker.steps", workers),
	}
	for k := sim.Control; k <= sim.Result; k++ {
		in.kindBytes[k] = reg.Gauge("sim.bytes." + k.String())
	}
	for p := 0; p < numPhases; p++ {
		in.phases[p] = reg.Histogram("epoch.phase."+phaseNames[p]+"_us", obs.DurationBoundsUS())
	}
	return in
}

// observing reports whether Step must read the clock at phase boundaries.
func (e *Engine) observing() bool { return e.inst != nil || e.lane0 != nil }

// phaseTimer threads wall-clock phase boundaries through one epoch. The
// zero value (observability disabled) makes every method a no-op without
// touching the clock.
type phaseTimer struct {
	e          *Engine
	epochStart time.Time
	last       time.Time
	on         bool
}

// startPhases begins an epoch's timing (no-op timer when disabled).
// The clock reading flows only into phase histograms and trace spans.
//
//aspen:wallclock
func (e *Engine) startPhases() phaseTimer {
	if !e.observing() {
		return phaseTimer{}
	}
	now := time.Now()
	return phaseTimer{e: e, epochStart: now, last: now, on: true}
}

// done closes the current phase: one histogram observation and one trace
// span, then re-arms for the next phase.
//
//aspen:wallclock
func (p *phaseTimer) done(phase, epoch int) {
	if !p.on {
		return
	}
	if in := p.e.inst; in != nil {
		in.phases[phase].Observe(time.Since(p.last).Microseconds())
	}
	p.e.lane0.Span(phaseSpanNames[phase], epoch, "", p.last)
	p.last = time.Now()
}

// finish closes the whole-epoch span and histogram.
//
//aspen:wallclock
func (p *phaseTimer) finish(epoch int) {
	if !p.on {
		return
	}
	if in := p.e.inst; in != nil {
		in.epochWall.Observe(time.Since(p.epochStart).Microseconds())
	}
	p.e.lane0.Span("epoch", epoch, "", p.epochStart)
}

// observeEpoch is the epoch-barrier sampling pass: byte accounting by
// stream and traffic class, recovery totals, and per-query join-state
// sizes. It runs strictly in the sequential section (after the worker
// pool drains), reading sim metrics the same way Report does — it never
// charges traffic, so the sampled run is byte-identical to an unsampled
// one.
func (e *Engine) observeEpoch(live, admitted, retired, results, lost int) {
	in := e.inst
	if in == nil {
		return
	}
	// Fold the workers' hot-path shards into published totals — the pool
	// has drained, so plain reads of the shard slots are race-free.
	in.workerBusyUS.Flush()
	in.workerSteps.Flush()
	in.epochs.Inc()
	in.live.Set(int64(live))
	in.admitted.Add(int64(admitted))
	in.retired.Add(int64(retired))
	in.results.Add(int64(results))
	in.faultLosses.Add(int64(lost))

	sm := e.shared.Metrics()
	in.sharedBytes.Set(sm.TotalBytes)
	// Migration traffic is control-plane traffic: its ledger class stays
	// distinct for test assertions, but the published gauge folds it into
	// sim.bytes.control.
	var kind [3]int64
	drops, retrans := sm.Drops, sm.Retransmissions
	cutDrops, dups, delay := sm.CutDrops, sm.Duplicates, sm.DelaySlots
	for k := sim.Control; k <= sim.Result; k++ {
		kind[k] = sm.KindBytes(k)
	}
	kind[sim.Control] += sm.KindBytes(sim.Migration)
	var queryBytes int64
	for _, q := range e.queries {
		if q.state == Pending {
			continue
		}
		m := q.net.Metrics()
		queryBytes += m.TotalBytes
		drops += m.Drops
		retrans += m.Retransmissions
		cutDrops += m.CutDrops
		dups += m.Duplicates
		delay += m.DelaySlots
		for k := sim.Control; k <= sim.Result; k++ {
			kind[k] += m.KindBytes(k)
		}
		kind[sim.Control] += m.KindBytes(sim.Migration)
	}
	in.queryBytes.Set(queryBytes)
	in.drops.Set(drops)
	in.retransmits.Set(retrans)
	in.faultDrops.Set(cutDrops)
	in.faultDups.Set(dups)
	in.faultDelay.Set(delay)
	for k := sim.Control; k <= sim.Result; k++ {
		in.kindBytes[k].Set(kind[k])
	}

	var tuples, joinMem int64
	for _, q := range e.stepList {
		if q.stepper == nil {
			continue // retired at this epoch's barrier
		}
		if ss, ok := q.stepper.(join.StateSized); ok {
			n := int64(ss.JoinStateTuples())
			tuples += n
			in.joinPerQuery.Observe(n)
		}
		if mr, ok := q.stepper.(join.MemReporter); ok {
			joinMem += mr.MemBytes()
		}
	}
	in.joinTuples.Set(tuples)

	// Arena accounting: bytes held by each layer's slab-backed dense
	// state, next to the layer's configured (observational) budget.
	in.memJoin.Set(joinMem)
	in.memRouting.Set(e.Sub.MemBytes())
	in.memJoinBudget.Set(e.opts.MemBudgetJoinBytes)
	in.memRoutingBudget.Set(e.opts.MemBudgetRoutingBytes)
}

// observeAdapt folds one epoch's adaptivity outcome into the counters.
func (e *Engine) observeAdapt(migrated, aborted int) {
	in := e.inst
	if in == nil {
		return
	}
	in.migrations.Add(int64(migrated))
	in.migAborted.Add(int64(aborted))
}

// observeFaults folds one epoch's link-fault recovery outcome into the
// counters (the partition-epoch counter is bumped where the plan advances,
// in Step).
func (e *Engine) observeFaults(rerouted, fallbacks int) {
	in := e.inst
	if in == nil {
		return
	}
	in.faultRerouted.Add(int64(rerouted))
	in.faultFallbacks.Add(int64(fallbacks))
}

// observeChurn folds one epoch's recovery outcome into the counters.
func (e *Engine) observeChurn(failed, repaired, fallbacks, rebuilds int) {
	in := e.inst
	if in == nil {
		return
	}
	in.failed.Add(int64(failed))
	in.repaired.Add(int64(repaired))
	in.fallbacks.Add(int64(fallbacks))
	in.rebuilds.Add(int64(rebuilds))
	if p := e.Sub.Stats().Patched; p > in.lastPatched {
		in.patched.Add(int64(p - in.lastPatched))
		in.lastPatched = p
	}
}

// Snapshot returns a point-in-time copy of every registered instrument
// (empty when Options.Obs is nil). Safe to call from another goroutine —
// the live introspection endpoints in cmd/aspen-engine snapshot while the
// scheduler is mid-epoch.
func (e *Engine) Snapshot() obs.Snapshot { return e.opts.Obs.Snapshot() }

// Property battery for the engine-level adaptivity phase (ISSUE 7): the
// section-6 re-optimization pass must migrate exactly when estimates
// diverge past the trigger, never lose or duplicate results across a
// migration, abort cleanly into the base-station fallback when racing a
// failure, and stay byte-identical across worker counts. Lossless runs
// make the oracle comparisons exact: with LossProb=0 the loss process
// never draws, so migration traffic cannot perturb later outcomes.

package engine

import (
	"reflect"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/join"
	"repro/internal/topology"
	"repro/internal/workload"
)

// driftEpoch is the cycle at which the drift workload's true rates flip.
const driftEpoch = 30

// driftConfigs builds the drift workload: two queries whose generators
// start s-heavy and flip to t-heavy at driftEpoch, while the optimizer is
// fed the starting rates — so the initial placement is wrong for the
// second half of the run and only adaptivity can fix it. Both engines in
// an on/off comparison get samplers with identical seeds, making the
// input streams byte-identical regardless of the adapt setting.
func driftConfigs(t *testing.T) []QueryConfig {
	t.Helper()
	start := workload.Rates{SigmaS: 0.9, SigmaT: 0.1, SigmaST: 0.1}
	flip := workload.Rates{SigmaS: 0.1, SigmaT: 0.9, SigmaST: 0.1}
	mk := func(seed uint64) workload.Sampler {
		g := workload.NewGenerator(start, seed)
		g.SetSwitch(driftEpoch, flip)
		return g
	}
	return []QueryConfig{
		{ID: "a", SQL: q1SQL(t), Rates: start, Sampler: mk(11)},
		{ID: "b", SQL: q2SQL(t), Rates: start, Sampler: mk(23)},
	}
}

// driftRun executes the drift workload for epochs epochs.
func driftRun(t *testing.T, adapt bool, workers, epochs int) (*Report, []EpochStats) {
	t.Helper()
	e := New(Options{Seed: 3, Lossless: true, Workers: workers, Adapt: adapt})
	for _, qc := range driftConfigs(t) {
		if _, err := e.Submit(qc); err != nil {
			t.Fatal(err)
		}
	}
	var stream []EpochStats
	e.OnEpoch = captureStats(&stream)
	return e.Run(epochs), stream
}

// resultStream projects an epoch stream down to what the user observes:
// per-epoch delivered results per query. Placement and migration traffic
// are invisible here by design.
func resultStream(stream []EpochStats) []map[string]int {
	out := make([]map[string]int, len(stream))
	for i, s := range stream {
		out[i] = s.NewResults
	}
	return out
}

// TestAdaptDriftMigratesAndCutsTraffic is the headline adaptivity win:
// under rate drift the adaptive run migrates at least once and finishes
// with strictly less total simulated traffic than the frozen-placement
// run — and (property c) delivers the exact same per-epoch result stream,
// since a migration moves window state without losing or duplicating
// matches.
func TestAdaptDriftMigratesAndCutsTraffic(t *testing.T) {
	const epochs = 4 * driftEpoch
	off, offStream := driftRun(t, false, 1, epochs)
	on, onStream := driftRun(t, true, 1, epochs)
	if on.Migrations < 1 {
		t.Fatalf("drift run never migrated: %+v", on)
	}
	if off.Migrations != 0 {
		t.Fatalf("adapt-off run reports %d migrations", off.Migrations)
	}
	if on.AggregateBytes >= off.AggregateBytes {
		t.Fatalf("adaptivity lost its win: on=%d bytes >= off=%d bytes (%d migrations)",
			on.AggregateBytes, off.AggregateBytes, on.Migrations)
	}
	if on.Results == 0 || on.Results != off.Results {
		t.Fatalf("results diverged: on=%d off=%d", on.Results, off.Results)
	}
	if !reflect.DeepEqual(resultStream(onStream), resultStream(offStream)) {
		t.Fatal("per-epoch result streams differ between adapt on and off")
	}
}

// TestAdaptOracleStaticRates is property (b): given static rates, the
// adaptive run's result stream is identical to the migration-free
// oracle's even when estimation noise (or a deliberately wrong optimizer
// hint, as here) fires migrations — moving the join node is invisible in
// the delivered results.
func TestAdaptOracleStaticRates(t *testing.T) {
	wrong := &costmodel.Params{SigmaS: 0.05, SigmaT: 0.9, SigmaST: 0.1}
	run := func(adapt bool) (*Report, []EpochStats) {
		e := New(Options{Seed: 5, Lossless: true, Adapt: adapt})
		for i, sql := range []string{q1SQL(t), q2SQL(t)} {
			_, err := e.Submit(QueryConfig{
				ID:  []string{"a", "b"}[i],
				SQL: sql,
				Opt: wrong,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		var stream []EpochStats
		e.OnEpoch = captureStats(&stream)
		return e.Run(40), stream
	}
	oracle, oracleStream := run(false)
	on, onStream := run(true)
	if on.Migrations < 1 {
		t.Fatalf("wrong optimizer hint never triggered a migration: %+v", on)
	}
	if on.Results != oracle.Results {
		t.Fatalf("results diverged from oracle: %d vs %d", on.Results, oracle.Results)
	}
	if !reflect.DeepEqual(resultStream(onStream), resultStream(oracleStream)) {
		t.Fatal("per-epoch result streams differ from the migration-free oracle")
	}
}

// TestAdaptNoTriggerNoEffect is the engine-level negative of property
// (a): with the estimation clock effectively disabled nothing can
// diverge, so enabling the adapt phase must be free — the full report
// (every byte and counter, under the default lossy network) is identical
// to the adapt-off run.
func TestAdaptNoTriggerNoEffect(t *testing.T) {
	alg := join.Innet{Opts: join.InnetOptions{
		Multicast: true, GroupOpt: true, EstimateInterval: 1 << 30,
	}}
	run := func(adapt bool) *Report {
		e := New(Options{Seed: 9, Adapt: adapt})
		for i, sql := range []string{q1SQL(t), q2SQL(t)} {
			if _, err := e.Submit(QueryConfig{ID: []string{"a", "b"}[i], SQL: sql, Algorithm: alg}); err != nil {
				t.Fatal(err)
			}
		}
		return e.Run(25)
	}
	off := run(false)
	on := run(true)
	if on.Migrations != 0 || on.MigrationsAborted != 0 {
		t.Fatalf("migrations fired without estimate divergence: %+v", on)
	}
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("idle adapt phase perturbed the run:\noff: %+v\non:  %+v", off, on)
	}
}

// TestAdaptStatsSumToReport: the per-epoch Migrations/MigrationsAborted
// deltas streamed through OnEpoch must total the final report's counters,
// so a monitoring hook never under- or over-counts window movement.
func TestAdaptStatsSumToReport(t *testing.T) {
	rep, stream := driftRun(t, true, 1, 4*driftEpoch)
	var migrated, aborted int
	for _, s := range stream {
		migrated += s.Migrations
		aborted += s.MigrationsAborted
	}
	if migrated != rep.Migrations || aborted != rep.MigrationsAborted {
		t.Fatalf("epoch stream sums %d/%d != report %d/%d",
			migrated, aborted, rep.Migrations, rep.MigrationsAborted)
	}
}

// TestAdaptMigrationFailureRace is property (d) at the engine level: a
// migration nominated for a node that the churn schedule kills the same
// epoch must abort into the base-station fallback — counted, with the
// window contents intact, and (under lossless delivery) without
// perturbing a single delivered result relative to the adapt-off oracle
// facing the same failure.
func TestAdaptMigrationFailureRace(t *testing.T) {
	// The optimizer is told the join is nearly cross-product (joins at
	// the base); the true match rate is tiny (in-network optimal). The
	// first estimate interval triggers base-to-in-network migrations —
	// and base-joined pairs keep stale paths across failures, which is
	// exactly the window in which the race can happen.
	wrong := &costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.95}
	rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.02}
	run := func(adapt bool, churn []ChurnEvent, epochs int) (*Report, []EpochStats, *Engine) {
		e := New(Options{Seed: 11, Lossless: true, Adapt: adapt, Churn: churn})
		for i, sql := range []string{q1SQL(t), q2SQL(t)} {
			_, err := e.Submit(QueryConfig{
				ID: []string{"a", "b"}[i], SQL: sql, Rates: rates, Opt: wrong,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		var stream []EpochStats
		e.OnEpoch = captureStats(&stream)
		return e.Run(epochs), stream, e
	}
	// Probe 1: find the first migrating epoch M.
	_, stream, _ := run(true, nil, 40)
	m := -1
	for _, s := range stream {
		if s.Migrations > 0 {
			m = s.Epoch
			break
		}
	}
	if m < 0 {
		t.Fatal("probe run never migrated")
	}
	// Probe 2: stop right after M and read the freshly chosen in-network
	// join nodes — one of them is the node to kill. Prefer a target that
	// is a leaf in every substrate tree: killing it rebuilds nothing, so
	// the churned run's epoch-M optimization sees inputs identical to the
	// probe's and must re-nominate exactly this (now dead) node.
	_, _, probe := run(true, nil, m+1)
	isLeaf := func(id topology.NodeID) bool {
		for _, tree := range probe.Sub.Trees {
			if len(tree.Children[id]) > 0 {
				return false
			}
		}
		return true
	}
	// Killing a producer would mark its pairs dead and change the group
	// aggregation itself; the race under test needs the optimization
	// inputs unchanged, so the victim must be a pure relay join node.
	endpoint := make(map[topology.NodeID]bool)
	for _, q := range probe.Queries() {
		for _, g := range q.Spec.Groups() {
			for _, pr := range g.Pairs {
				endpoint[pr[0]] = true
				endpoint[pr[1]] = true
			}
		}
	}
	var target, fallback topology.NodeID = -1, -1
	for _, q := range probe.Queries() {
		res := q.Result()
		for _, j := range res.PairJoinNodes {
			if endpoint[j] {
				continue
			}
			if isLeaf(j) {
				target = j
				break
			}
			if fallback < 0 {
				fallback = j
			}
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		target = fallback
	}
	if target < 0 {
		t.Fatal("probe migrated but every chosen join node is also a producer")
	}
	churn := []ChurnEvent{{Epoch: m, Node: target}}
	on, onStream, _ := run(true, churn, 40)
	if on.MigrationsAborted < 1 {
		t.Fatalf("killing migration target %d at epoch %d aborted nothing: %+v", target, m, on)
	}
	if on.FailedNodes != 1 {
		t.Fatalf("churn schedule misfired: %d failed nodes", on.FailedNodes)
	}
	// The oracle faces the same failure with adaptivity off. Up to the
	// race epoch the two runs are bit-identical; afterwards the adaptive
	// run's committed migrations may legitimately lose deliveries routed
	// near the dead relay while section 7 recovers, but it must never
	// fabricate results (no double-restored window can match twice) and
	// must keep delivering.
	off, offStream, _ := run(false, churn, 40)
	onRes, offRes := resultStream(onStream), resultStream(offStream)
	if !reflect.DeepEqual(onRes[:m], offRes[:m]) {
		t.Fatal("result streams diverged before the race epoch")
	}
	if on.Results > off.Results {
		t.Fatalf("race fabricated results: adapt-on %d vs oracle %d", on.Results, off.Results)
	}
	var preRace, postRace int
	for _, s := range onStream {
		for _, r := range s.NewResults {
			if s.Epoch <= m {
				preRace += r
			} else {
				postRace += r
			}
		}
	}
	if postRace == 0 {
		t.Fatalf("no results delivered after the race epoch (pre-race %d)", preRace)
	}
}

// adaptChurn1kWorkload is the bench adapt-churn-1k shape: the churn-1k
// deployment and schedule with adaptivity enabled, wrong optimizer
// estimates and a short estimate interval, so the 12-epoch horizon
// exercises migrations and section-7 recovery together.
func adaptChurn1kWorkload(t *testing.T) (mk func(workers int, churn []ChurnEvent) *Engine, churn []ChurnEvent) {
	t.Helper()
	const nodes = 1000
	wrong := &costmodel.Params{SigmaS: 0.9, SigmaT: 0.1, SigmaST: 0.1}
	alg := join.Innet{Opts: join.InnetOptions{
		Multicast: true, GroupOpt: true, EstimateInterval: 4,
	}}
	sql := []string{q1SQL(t), q2SQL(t)}
	mk = func(workers int, churn []ChurnEvent) *Engine {
		e := New(Options{Seed: 1, Kind: topology.ModerateRandom, Nodes: nodes,
			Workers: workers, Churn: churn, Adapt: true})
		for i, src := range sql {
			if _, err := e.Submit(QueryConfig{
				ID: []string{"a", "b"}[i], SQL: src, Opt: wrong, Algorithm: alg,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	probe := mk(1, nil)
	probe.Run(6)
	var mid, joinNode topology.NodeID = -1, -1
	for _, q := range probe.Queries() {
		res := q.Result()
		for i, p := range res.PairPaths {
			j := res.PairJoinNodes[i]
			if mid < 0 {
				for _, id := range p[1 : len(p)-1] {
					if id != j {
						mid = id
						break
					}
				}
			}
			if mid >= 0 && j != mid {
				joinNode = j
			}
			if mid >= 0 && joinNode >= 0 {
				break
			}
		}
	}
	if mid < 0 || joinNode < 0 {
		t.Fatal("probe found no churn victims")
	}
	churn = append(SeededChurn(7, nodes, 12, 0.0005, 0),
		ChurnEvent{Epoch: 3, Node: mid},
		ChurnEvent{Epoch: 6, Node: joinNode})
	return mk, churn
}

// TestWorkersMigrationByteIdentical: adaptivity runs in the sequential
// phase with the same ledger discipline as stepping, so migrations under
// churn must leave every report byte-identical across worker counts.
func TestWorkersMigrationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node adapt churn grid is slow")
	}
	mk, churn := adaptChurn1kWorkload(t)
	base := mk(1, churn).Run(12)
	if base.Migrations < 1 {
		t.Fatalf("adapt churn run never migrated: %+v", base)
	}
	if base.FailedNodes == 0 {
		t.Fatalf("adapt churn run lost its failure coverage: %+v", base)
	}
	for _, w := range workerCounts[1:] {
		rep := mk(w, churn).Run(12)
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("workers=%d adapt churn report differs from sequential:\nmigrations=%d/%d aborted=%d/%d aggregate=%d/%d",
				w, rep.Migrations, base.Migrations, rep.MigrationsAborted, base.MigrationsAborted,
				rep.AggregateBytes, base.AggregateBytes)
		}
	}
}

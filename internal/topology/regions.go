package topology

// RegionGrid partitions the deployment field into the paper's 4x4 grid of
// regions — the same cells the workload's cid/rid static attributes (and
// their routing-table columns) are derived from, computed here directly
// from node positions so the topology layer can offer region structure
// without importing the workload. The grid is the first level of the
// two-level regional substrate: per-region membership lets repair-time
// scans touch region cursors instead of walking every node.
const (
	// RegionsPerAxis is the per-axis cell count of the region grid.
	RegionsPerAxis = 4
	// NumRegions is the total region count.
	NumRegions = RegionsPerAxis * RegionsPerAxis
)

// RegionGrid is the 4x4 spatial partition of one topology's nodes.
type RegionGrid struct {
	// members[r] lists the nodes of region r in ascending node ID.
	members [NumRegions][]NodeID
	// regionOf[id] is the region index of node id.
	regionOf []uint8
}

// NewRegionGrid builds the region partition for topo.
func NewRegionGrid(topo *Topology) *RegionGrid {
	n := topo.N()
	g := &RegionGrid{regionOf: make([]uint8, n)}
	cell := Field / RegionsPerAxis
	for i := 0; i < n; i++ {
		p := topo.Pos(NodeID(i))
		cx := int(p.X / cell)
		if cx > RegionsPerAxis-1 {
			cx = RegionsPerAxis - 1
		}
		cy := int(p.Y / cell)
		if cy > RegionsPerAxis-1 {
			cy = RegionsPerAxis - 1
		}
		r := cy*RegionsPerAxis + cx
		g.regionOf[i] = uint8(r)
		g.members[r] = append(g.members[r], NodeID(i))
	}
	return g
}

// Region returns the region index of id.
func (g *RegionGrid) Region(id NodeID) int { return int(g.regionOf[id]) }

// Members returns region r's nodes in ascending node ID. The slice is
// owned by the grid; treat it as read-only.
func (g *RegionGrid) Members(r int) []NodeID { return g.members[r] }

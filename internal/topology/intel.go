package topology

import "repro/internal/geom"

// intelPositions is a reconstruction of the 54-mote Intel Research-Berkeley
// lab deployment (db.csail.mit.edu/labdata). The original floor plan places
// motes in a ring around the lab perimeter (roughly 40m x 30m) with a few
// interior clusters near the kitchen and server areas. The dataset itself is
// unavailable offline, so these coordinates are a faithful synthetic
// reconstruction of that published floor plan: a perimeter loop plus two
// interior rows, which reproduces the property that matters to the
// experiments — an irregular, elongated multi-hop topology whose node
// adjacency correlates with sensor-value similarity (Query 3 joins nearby
// nodes). See DESIGN.md, "Substitutions".
//
// Coordinates are metres; index i is mote i+1 in the dataset numbering, but
// node 0 here is the base station (placed at the lab's north-west corner
// where the dataset's gateway sat).
var intelPositions = []geom.Point{
	{X: 1.5, Y: 17.0},  // 0: base station / gateway
	{X: 21.5, Y: 23.0}, // 1
	{X: 24.5, Y: 20.0}, // 2
	{X: 19.5, Y: 19.0}, // 3
	{X: 22.5, Y: 15.0}, // 4
	{X: 24.5, Y: 12.0}, // 5
	{X: 19.5, Y: 12.0}, // 6
	{X: 22.5, Y: 8.0},  // 7
	{X: 24.5, Y: 4.0},  // 8
	{X: 21.5, Y: 2.0},  // 9
	{X: 18.5, Y: 1.0},  // 10
	{X: 15.5, Y: 2.0},  // 11
	{X: 12.5, Y: 1.0},  // 12
	{X: 9.5, Y: 2.0},   // 13
	{X: 6.5, Y: 1.0},   // 14
	{X: 3.5, Y: 2.0},   // 15
	{X: 1.0, Y: 4.0},   // 16
	{X: 0.5, Y: 7.0},   // 17
	{X: 1.0, Y: 10.0},  // 18
	{X: 0.5, Y: 13.0},  // 19
	{X: 2.5, Y: 20.0},  // 20
	{X: 4.5, Y: 22.0},  // 21
	{X: 6.5, Y: 24.0},  // 22
	{X: 9.5, Y: 25.0},  // 23
	{X: 12.5, Y: 26.0}, // 24
	{X: 15.5, Y: 26.5}, // 25
	{X: 18.5, Y: 26.0}, // 26
	{X: 21.5, Y: 26.5}, // 27
	{X: 24.5, Y: 26.0}, // 28
	{X: 27.5, Y: 25.0}, // 29
	{X: 30.5, Y: 24.0}, // 30
	{X: 33.5, Y: 23.0}, // 31
	{X: 36.5, Y: 22.0}, // 32
	{X: 38.5, Y: 19.0}, // 33
	{X: 39.5, Y: 16.0}, // 34
	{X: 38.5, Y: 13.0}, // 35
	{X: 39.5, Y: 10.0}, // 36
	{X: 38.5, Y: 7.0},  // 37
	{X: 36.5, Y: 4.0},  // 38
	{X: 33.5, Y: 2.5},  // 39
	{X: 30.5, Y: 1.5},  // 40
	{X: 27.5, Y: 2.5},  // 41
	{X: 27.5, Y: 6.0},  // 42
	{X: 30.5, Y: 8.0},  // 43
	{X: 33.5, Y: 9.5},  // 44
	{X: 30.5, Y: 12.0}, // 45
	{X: 33.5, Y: 14.0}, // 46
	{X: 30.5, Y: 16.5}, // 47
	{X: 27.5, Y: 18.0}, // 48
	{X: 27.5, Y: 13.0}, // 49
	{X: 8.5, Y: 13.0},  // 50
	{X: 11.5, Y: 14.0}, // 51
	{X: 14.5, Y: 14.5}, // 52
	{X: 17.0, Y: 15.5}, // 53
}

// intelRadio is the radio range used for the lab layout. 7 metres yields a
// connected graph with ~6 average neighbours, matching the dataset's
// reported multi-hop character (4-6 hops across the lab).
const intelRadio = 7.0

func intelTopology() *Topology {
	pos := make([]geom.Point, len(intelPositions))
	copy(pos, intelPositions)
	return fromPositions(Intel, pos, intelRadio)
}

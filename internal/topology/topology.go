// Package topology generates the sensor deployments used throughout the
// paper's evaluation (section 4.1 and Appendix C): random layouts tuned to
// an average neighbour count of 6 ("sparse"), 7 ("moderate"), 8 ("medium")
// and 13 ("dense"); a regular grid with an average of 7 neighbours; and the
// 54-mote Intel Research-Berkeley lab layout used for Query 3.
//
// A Topology is an immutable undirected connectivity graph plus node
// positions. Radio links are disk-model: two nodes are neighbours iff their
// Euclidean distance is at most the radio range. Generated layouts are
// always connected (the generator retries placement until the disk graph is
// connected), because every join algorithm in the paper presumes the base
// station is reachable.
package topology

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/rng"
)

// NodeID identifies a node within a Topology. The base station is always
// node 0 (the paper's root r).
type NodeID int

// Base is the NodeID of the base station / routing-tree root.
const Base NodeID = 0

// Kind names one of the paper's evaluated deployment classes.
type Kind int

const (
	// SparseRandom averages ~6 neighbours per node.
	SparseRandom Kind = iota
	// ModerateRandom averages ~7 neighbours per node (the paper's focus).
	ModerateRandom
	// MediumRandom averages ~8 neighbours per node.
	MediumRandom
	// DenseRandom averages ~13 neighbours per node.
	DenseRandom
	// Grid is a regular grid with ~7 neighbours on average.
	Grid
	// Intel is the 54-mote Intel Research-Berkeley lab deployment.
	Intel
)

// String returns the paper's name for the deployment class.
func (k Kind) String() string {
	switch k {
	case SparseRandom:
		return "Sparse Random"
	case ModerateRandom:
		return "Moderate Random"
	case MediumRandom:
		return "Medium Random"
	case DenseRandom:
		return "Dense Random"
	case Grid:
		return "Grid"
	case Intel:
		return "Intel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every deployment class in the order the paper's figures use.
var Kinds = []Kind{DenseRandom, MediumRandom, ModerateRandom, SparseRandom, Grid}

// targetDegree returns the average neighbour count each class aims for.
func (k Kind) targetDegree() float64 {
	switch k {
	case SparseRandom:
		return 6
	case ModerateRandom:
		return 7
	case MediumRandom:
		return 8
	case DenseRandom:
		return 13
	case Grid:
		return 7
	default:
		return 7
	}
}

// Field is the side length, in metres, of the square deployment area
// (Table 1: a 256m-by-256m grid).
const Field = 256.0

// Topology is an immutable deployment: node positions and the undirected
// disk-graph adjacency induced by the radio range.
type Topology struct {
	kind      Kind
	pos       []geom.Point
	neighbors [][]NodeID
	radio     float64
}

// Kind returns the deployment class this topology was generated as.
func (t *Topology) Kind() Kind { return t.kind }

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.pos) }

// Pos returns the position of node id.
func (t *Topology) Pos(id NodeID) geom.Point { return t.pos[id] }

// RadioRange returns the disk-model radio range in metres.
func (t *Topology) RadioRange() float64 { return t.radio }

// Neighbors returns the radio neighbours of id. The returned slice is owned
// by the topology and must not be modified.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }

// IsNeighbor reports whether a and b share a radio link.
func (t *Topology) IsNeighbor(a, b NodeID) bool {
	for _, n := range t.neighbors[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Dist returns the Euclidean distance between two nodes in metres.
func (t *Topology) Dist(a, b NodeID) float64 { return t.pos[a].Dist(t.pos[b]) }

// AvgDegree returns the average neighbour count.
func (t *Topology) AvgDegree() float64 {
	total := 0
	for _, ns := range t.neighbors {
		total += len(ns)
	}
	return float64(total) / float64(len(t.neighbors))
}

// BFS returns, for every node, its hop distance from src (-1 if
// unreachable) and the parent on one shortest path (-1 for src and
// unreachable nodes). Ties are broken toward the lowest parent ID so the
// result is deterministic. Loops issuing many traversals should reuse
// buffers via HopsFrom (depth only) or memoize parent vectors per
// destination via a ParentCache.
func (t *Topology) BFS(src NodeID) (depth []int, parent []NodeID) {
	return t.BFSLive(src, nil)
}

// BFSLive is BFS restricted to the nodes alive in live: failed nodes are
// never visited, so depth/parent describe shortest paths over the surviving
// subgraph (-1 where unreachable, including behind failed cut nodes). A nil
// live (or one with no failures) is exactly BFS; a failed src reaches
// nothing, not even itself.
func (t *Topology) BFSLive(src NodeID, live *Liveness) (depth []int, parent []NodeID) {
	n := t.N()
	depth = make([]int, n)
	parent = make([]NodeID, n)
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	if !live.Alive(src) {
		return depth, parent
	}
	depth[src] = 0
	queue := make([]NodeID, 1, n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range t.neighbors[u] {
			if depth[v] == -1 && live.Alive(v) {
				depth[v] = depth[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return depth, parent
}

// Liveness is a deployment's node-failure view (section 7): one shared
// instance per deployment, read by the simulator, the routing substrate
// and every per-query network, so a node that fails is dead for all of
// them at once — correlated failure, not a per-query fiction. The zero
// node set alive; mutation is not concurrency-safe (engines apply churn
// between epochs, never while steppers run), while concurrent Alive
// reads with no mutation in flight are safe — the engine's parallel
// workers all read this one view.
type Liveness struct {
	dead    []bool
	numDead int
}

// NewLiveness returns an all-alive view over n nodes.
func NewLiveness(n int) *Liveness {
	return &Liveness{dead: make([]bool, n)}
}

// Fail marks id as failed. Idempotent.
func (l *Liveness) Fail(id NodeID) {
	if !l.dead[id] {
		l.dead[id] = true
		l.numDead++
	}
}

// Revive clears the failure mark on id. Idempotent.
func (l *Liveness) Revive(id NodeID) {
	if l.dead[id] {
		l.dead[id] = false
		l.numDead--
	}
}

// Alive reports whether id has not failed. A nil view is all-alive, so
// liveness-optional callers need no guard.
func (l *Liveness) Alive(id NodeID) bool { return l == nil || !l.dead[id] }

// AnyDead reports whether any node is currently failed.
func (l *Liveness) AnyDead() bool { return l != nil && l.numDead > 0 }

// ParentCache memoizes one BFS parent vector per destination over an
// immutable topology, so a loop routing many queries toward the same
// destinations costs one traversal per distinct destination instead of
// one per query. Vectors are identical to a fresh BFS (same lowest-parent
// tie-breaking). Safe for concurrent use: experiment sweeps share router
// state across worker goroutines.
//
// A cache built with NewLiveParentCache skips failed nodes during its
// traversals; memoized vectors reflect liveness at computation time, so
// owners must Invalidate after liveness changes.
type ParentCache struct {
	topo    *Topology
	live    *Liveness
	mu      sync.RWMutex
	parents [][]NodeID
}

// NewParentCache returns an empty cache over topo.
func NewParentCache(topo *Topology) *ParentCache {
	return &ParentCache{topo: topo, parents: make([][]NodeID, topo.N())}
}

// NewLiveParentCache returns an empty cache whose traversals avoid nodes
// dead in live. With live nil it is exactly NewParentCache.
func NewLiveParentCache(topo *Topology, live *Liveness) *ParentCache {
	return &ParentCache{topo: topo, live: live, parents: make([][]NodeID, topo.N())}
}

// Parents returns the BFS parent vector toward dst (each entry is the
// neighbor one hop closer to dst, -1 at dst and at unreachable nodes).
// The returned slice is shared and must be treated as read-only.
func (c *ParentCache) Parents(dst NodeID) []NodeID {
	c.mu.RLock()
	p := c.parents[dst]
	c.mu.RUnlock()
	if p != nil {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p = c.parents[dst]; p == nil {
		_, p = c.topo.BFSLive(dst, c.live)
		c.parents[dst] = p
	}
	return p
}

// Invalidate drops every memoized vector. Owners call it when the
// liveness view changes (a failure or revival), since cached vectors may
// route through nodes that have since died.
func (c *ParentCache) Invalidate() {
	c.mu.Lock()
	c.parents = make([][]NodeID, c.topo.N())
	c.mu.Unlock()
}

// HopsFrom returns the hop distance from src to every node (-1 when
// unreachable), reusing buf when it has sufficient capacity. One HopsFrom
// vector answers n Hops queries from the same source, so all-pairs loops
// cost n traversals instead of n^2.
func (t *Topology) HopsFrom(src NodeID, buf []int) []int {
	n := t.N()
	if cap(buf) < n {
		buf = make([]int, n)
	}
	depth := buf[:n]
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := make([]NodeID, 1, n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range t.neighbors[u] {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// Hops returns the shortest-path hop count between a and b, or -1 when
// disconnected. Generated topologies are always connected. Each call runs
// one BFS; callers looping over many destinations from one source should
// use HopsFrom.
func (t *Topology) Hops(a, b NodeID) int {
	depth, _ := t.BFS(a)
	return depth[b]
}

// Connected reports whether every node can reach node 0.
func (t *Topology) Connected() bool {
	depth := t.HopsFrom(Base, nil)
	for _, d := range depth {
		if d < 0 {
			return false
		}
	}
	return true
}

// Generate builds a connected topology of the given class with n nodes,
// deterministically from seed. For Intel the node count is fixed at 54 and
// n is ignored. It panics when n < 2 for non-Intel classes, mirroring the
// paper's minimum of a base plus one sensor.
func Generate(kind Kind, n int, seed uint64) *Topology {
	if kind == Intel {
		return intelTopology()
	}
	if n < 2 {
		panic("topology: need at least 2 nodes")
	}
	src := rng.New(seed).Split(uint64(kind))
	if kind == Grid {
		return gridTopology(n)
	}
	return randomTopology(kind, n, src)
}

// randomTopology places n nodes uniformly in the field and picks a radio
// range that yields the class's target average degree, retrying until the
// disk graph is connected. Per placement attempt the spatial grid is
// scanned once, at the first (largest) probe radius, collecting every
// candidate pair's squared distance; subsequent probes of the degree-
// calibration binary search and the final adjacency materialization are
// answered from that pair list with plain comparisons. A probe beyond the
// collected radius (possible when the search ascends) re-collects at the
// larger radius. Every probe counts exactly the pairs a materialization at
// that radius would link (same <= r^2 test), so the search trajectory —
// and therefore the final radio range, retry sequence and rng draw count —
// is identical to probing with fully materialized topologies.
func randomTopology(kind Kind, n int, src *rng.Source) *Topology {
	target := kind.targetDegree()
	// For n uniform points in an L x L square, the expected degree at radio
	// range r is ~ (n-1) * pi r^2 / L^2; solve for r as a starting guess,
	// then adjust until the measured average degree brackets the target.
	r := Field * math.Sqrt(target/(float64(n-1)*math.Pi))
	var depth []int
	var pairs pairList
	for attempt := 0; ; attempt++ {
		layout := src.Split(uint64(attempt))
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: layout.Float64() * Field, Y: layout.Float64() * Field}
		}
		// Binary-search the radio range for this placement to hit the
		// target degree within 0.5.
		grid := newCellGrid(pos, r)
		lo, hi := r/4, r*4
		radio, collected := 0.0, -1.0
		for iter := 0; iter < 40; iter++ {
			mid := (lo + hi) / 2
			radio = mid
			var d float64
			if mid <= collected {
				d = pairs.avgDegreeAt(mid, n)
			} else {
				collected = mid
				grid.collectPairs(pos, mid, &pairs)
				d = float64(2*len(pairs.d2)) / float64(n)
			}
			switch {
			case d < target-0.25:
				lo = mid
			case d > target+0.25:
				hi = mid
			default:
				iter = 40
			}
		}
		// radio <= collected always holds here (any probed mid either fit
		// the collected radius or re-collected at itself), so the final
		// adjacency comes straight from the pair list.
		topo := fromPairs(kind, pos, radio, &pairs)
		depth = topo.HopsFrom(Base, depth)
		connected := true
		for _, d := range depth {
			if d < 0 {
				connected = false
				break
			}
		}
		if connected {
			return topo
		}
		// Disconnected placement (possible at sparse densities): retry
		// with fresh positions.
	}
}

// pairList is the per-attempt candidate-pair store: all pairs (i < j)
// within the collected radius, with their squared distances. Buffers are
// reused across placement attempts.
type pairList struct {
	i, j []int32
	d2   []float64
}

// collectPairs fills pairs with every pair within radio of each other,
// scanning g once.
func (g *cellGrid) collectPairs(pos []geom.Point, radio float64, pairs *pairList) {
	pairs.i, pairs.j, pairs.d2 = pairs.i[:0], pairs.j[:0], pairs.d2[:0]
	r2 := radio * radio
	for i := range pos {
		ii := int32(i)
		p := pos[i]
		x0, x1, y0, y1 := g.window(p, radio)
		for y := y0; y <= y1; y++ {
			row := y * g.cols
			lo, hi := g.start[row+x0], g.start[row+x1+1]
			ids := g.items[lo:hi]
			xs, ys := g.px[lo:hi], g.py[lo:hi]
			for k := range ids {
				dx, dy := xs[k]-p.X, ys[k]-p.Y
				if d2 := dx*dx + dy*dy; d2 <= r2 && ids[k] > ii {
					pairs.i = append(pairs.i, ii)
					pairs.j = append(pairs.j, ids[k])
					pairs.d2 = append(pairs.d2, d2)
				}
			}
		}
	}
}

// avgDegreeAt counts the average degree at a radius within the collected
// range: one sequential pass over the squared distances.
func (pl *pairList) avgDegreeAt(radio float64, n int) float64 {
	r2 := radio * radio
	edges := 0
	for _, d2 := range pl.d2 {
		if d2 <= r2 {
			edges++
		}
	}
	return float64(2*edges) / float64(n)
}

// fromPairs materializes the disk graph at radio (which must be within the
// list's collected radius) from the candidate-pair list: counting pass,
// one flat backing array, ascending neighbor lists — byte-identical to
// naiveFromPositions at the same radius.
func fromPairs(kind Kind, pos []geom.Point, radio float64, pairs *pairList) *Topology {
	n := len(pos)
	t := &Topology{kind: kind, pos: pos, radio: radio, neighbors: make([][]NodeID, n)}
	r2 := radio * radio
	deg := make([]int32, n+1)
	total := 0
	for k, d2 := range pairs.d2 {
		if d2 <= r2 {
			deg[pairs.i[k]]++
			deg[pairs.j[k]]++
			total += 2
		}
	}
	backing := make([]NodeID, total)
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	cursor := make([]int32, n)
	for k, d2 := range pairs.d2 {
		if d2 <= r2 {
			i, j := pairs.i[k], pairs.j[k]
			backing[off[i]+cursor[i]] = NodeID(j)
			cursor[i]++
			backing[off[j]+cursor[j]] = NodeID(i)
			cursor[j]++
		}
	}
	for i := 0; i < n; i++ {
		ns := backing[off[i]:off[i+1]:off[i+1]]
		sortNodeIDs(ns)
		t.neighbors[i] = ns
	}
	return t
}

// gridTopology lays out ceil(sqrt(n)) columns on a regular lattice with a
// radio range covering the 8-neighbourhood minus the farthest diagonal
// corner cases, which empirically averages ~7 neighbours in the interior
// (matching the paper's "grid with an average of 7 neighbours").
func gridTopology(n int) *Topology {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	spacing := Field / float64(side)
	pos := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		pos = append(pos, geom.Point{
			X: (float64(col) + 0.5) * spacing,
			Y: (float64(row) + 0.5) * spacing,
		})
	}
	// sqrt(2)*spacing reaches the diagonal neighbours: interior nodes see
	// 8 neighbours, edge nodes fewer, averaging ~7 on a 10x10 grid.
	return fromPositions(Grid, pos, spacing*math.Sqrt2*1.01)
}

// cellGrid buckets node indices into square cells so disk-graph queries
// visit only the few cells within radio range of a point instead of all n
// nodes. The bucket table is CSR-shaped (one flat item array plus offsets)
// and holds node indices in ascending order per cell, so one grid build is
// O(n) with three allocations and a row of adjacent cells is a single
// contiguous slice. One grid serves every radius probed over the same
// positions: the per-query reach is derived from the queried radius.
type cellGrid struct {
	minX, minY float64
	cell       float64 // cell side length
	cols, rows int
	start      []int32 // CSR offsets: cell c's items are items[start[c]:start[c+1]]
	items      []int32 // node indices, cell-major, ascending within a cell
	// px, py mirror items with the bucketed nodes' coordinates, so the
	// distance test inside a candidate scan streams sequentially instead
	// of gathering pos[items[k]] at random (the dominant cache-miss cost
	// at thousands of nodes).
	px, py []float64
}

// newCellGrid builds the bucket index for pos with cells of side cell,
// clamped so the bucket table stays O(n) even when the radio range is tiny
// relative to the spatial extent.
func newCellGrid(pos []geom.Point, cell float64) *cellGrid {
	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	for _, p := range pos[1:] {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	extent := math.Max(maxX-minX, maxY-minY)
	if extent <= 0 {
		extent = 1
	}
	if limit := float64(2*int(math.Sqrt(float64(len(pos)))) + 1); !(cell > extent/limit) {
		cell = extent / limit
	}
	g := &cellGrid{minX: minX, minY: minY, cell: cell}
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1
	nCells := g.cols * g.rows
	g.start = make([]int32, nCells+1)
	g.items = make([]int32, len(pos))
	for _, p := range pos {
		g.start[g.cellOf(p)+1]++
	}
	for c := 0; c < nCells; c++ {
		g.start[c+1] += g.start[c]
	}
	cursor := make([]int32, nCells)
	g.px = make([]float64, len(pos))
	g.py = make([]float64, len(pos))
	for i, p := range pos {
		c := g.cellOf(p)
		at := g.start[c] + cursor[c]
		cursor[c]++
		g.items[at] = int32(i)
		g.px[at], g.py[at] = p.X, p.Y
	}
	return g
}

func (g *cellGrid) cellOf(p geom.Point) int {
	return int((p.Y-g.minY)/g.cell)*g.cols + int((p.X-g.minX)/g.cell)
}

// window returns the cell-coordinate rectangle covering the disk of the
// given radius around p, clamped to the grid. Computed once per queried
// node; each covered row is then one contiguous CSR item range.
func (g *cellGrid) window(p geom.Point, radio float64) (x0, x1, y0, y1 int) {
	x0 = int((p.X - radio - g.minX) / g.cell)
	if x0 < 0 {
		x0 = 0
	}
	x1 = int((p.X + radio - g.minX) / g.cell)
	if x1 >= g.cols {
		x1 = g.cols - 1
	}
	y0 = int((p.Y - radio - g.minY) / g.cell)
	if y0 < 0 {
		y0 = 0
	}
	y1 = int((p.Y + radio - g.minY) / g.cell)
	if y1 >= g.rows {
		y1 = g.rows - 1
	}
	return x0, x1, y0, y1
}

// fromPositions builds the disk graph over fixed positions: one grid
// scan collects the candidate pairs, fromPairs materializes the adjacency
// — the same kernel the calibrating generator uses, so there is exactly
// one implementation of the grid-window distance test to keep
// byte-identical with the naive reference.
func fromPositions(kind Kind, pos []geom.Point, radio float64) *Topology {
	var pairs pairList
	newCellGrid(pos, radio).collectPairs(pos, radio, &pairs)
	return fromPairs(kind, pos, radio, &pairs)
}

// sortNodeIDs is an allocation-free ascending insertion sort; neighbor
// lists are short (average degree 6-13), where insertion sort beats
// sort.Slice and its per-call closure allocation.
func sortNodeIDs(xs []NodeID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// naiveFromPositions is the retained O(n^2) reference implementation of
// disk-graph discovery. It is not called on any production path; the
// topology tests assert grid-bucketed discovery matches it byte for byte,
// and the package benchmarks report the grid path's speedup over it.
func naiveFromPositions(kind Kind, pos []geom.Point, radio float64) *Topology {
	n := len(pos)
	t := &Topology{kind: kind, pos: pos, radio: radio, neighbors: make([][]NodeID, n)}
	r2 := radio * radio
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
				t.neighbors[j] = append(t.neighbors[j], NodeID(i))
			}
		}
	}
	return t
}

// FromPositions builds a topology directly from positions and a radio
// range. Exposed for tests and for callers replaying recorded layouts.
func FromPositions(pos []geom.Point, radio float64) *Topology {
	return fromPositions(ModerateRandom, pos, radio)
}

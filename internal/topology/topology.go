// Package topology generates the sensor deployments used throughout the
// paper's evaluation (section 4.1 and Appendix C): random layouts tuned to
// an average neighbour count of 6 ("sparse"), 7 ("moderate"), 8 ("medium")
// and 13 ("dense"); a regular grid with an average of 7 neighbours; and the
// 54-mote Intel Research-Berkeley lab layout used for Query 3.
//
// A Topology is an immutable undirected connectivity graph plus node
// positions. Radio links are disk-model: two nodes are neighbours iff their
// Euclidean distance is at most the radio range. Generated layouts are
// always connected (the generator retries placement until the disk graph is
// connected), because every join algorithm in the paper presumes the base
// station is reachable.
package topology

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// NodeID identifies a node within a Topology. The base station is always
// node 0 (the paper's root r).
type NodeID int

// Base is the NodeID of the base station / routing-tree root.
const Base NodeID = 0

// Kind names one of the paper's evaluated deployment classes.
type Kind int

const (
	// SparseRandom averages ~6 neighbours per node.
	SparseRandom Kind = iota
	// ModerateRandom averages ~7 neighbours per node (the paper's focus).
	ModerateRandom
	// MediumRandom averages ~8 neighbours per node.
	MediumRandom
	// DenseRandom averages ~13 neighbours per node.
	DenseRandom
	// Grid is a regular grid with ~7 neighbours on average.
	Grid
	// Intel is the 54-mote Intel Research-Berkeley lab deployment.
	Intel
)

// String returns the paper's name for the deployment class.
func (k Kind) String() string {
	switch k {
	case SparseRandom:
		return "Sparse Random"
	case ModerateRandom:
		return "Moderate Random"
	case MediumRandom:
		return "Medium Random"
	case DenseRandom:
		return "Dense Random"
	case Grid:
		return "Grid"
	case Intel:
		return "Intel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every deployment class in the order the paper's figures use.
var Kinds = []Kind{DenseRandom, MediumRandom, ModerateRandom, SparseRandom, Grid}

// targetDegree returns the average neighbour count each class aims for.
func (k Kind) targetDegree() float64 {
	switch k {
	case SparseRandom:
		return 6
	case ModerateRandom:
		return 7
	case MediumRandom:
		return 8
	case DenseRandom:
		return 13
	case Grid:
		return 7
	default:
		return 7
	}
}

// Field is the side length, in metres, of the square deployment area
// (Table 1: a 256m-by-256m grid).
const Field = 256.0

// Topology is an immutable deployment: node positions and the undirected
// disk-graph adjacency induced by the radio range.
type Topology struct {
	kind      Kind
	pos       []geom.Point
	neighbors [][]NodeID
	radio     float64
}

// Kind returns the deployment class this topology was generated as.
func (t *Topology) Kind() Kind { return t.kind }

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.pos) }

// Pos returns the position of node id.
func (t *Topology) Pos(id NodeID) geom.Point { return t.pos[id] }

// RadioRange returns the disk-model radio range in metres.
func (t *Topology) RadioRange() float64 { return t.radio }

// Neighbors returns the radio neighbours of id. The returned slice is owned
// by the topology and must not be modified.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }

// IsNeighbor reports whether a and b share a radio link.
func (t *Topology) IsNeighbor(a, b NodeID) bool {
	for _, n := range t.neighbors[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Dist returns the Euclidean distance between two nodes in metres.
func (t *Topology) Dist(a, b NodeID) float64 { return t.pos[a].Dist(t.pos[b]) }

// AvgDegree returns the average neighbour count.
func (t *Topology) AvgDegree() float64 {
	total := 0
	for _, ns := range t.neighbors {
		total += len(ns)
	}
	return float64(total) / float64(len(t.neighbors))
}

// BFS returns, for every node, its hop distance from src (-1 if
// unreachable) and the parent on one shortest path (-1 for src and
// unreachable nodes). Ties are broken toward the lowest parent ID so the
// result is deterministic.
func (t *Topology) BFS(src NodeID) (depth []int, parent []NodeID) {
	n := t.N()
	depth = make([]int, n)
	parent = make([]NodeID, n)
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	depth[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.neighbors[u] {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return depth, parent
}

// Hops returns the shortest-path hop count between a and b, or -1 when
// disconnected. Generated topologies are always connected.
func (t *Topology) Hops(a, b NodeID) int {
	depth, _ := t.BFS(a)
	return depth[b]
}

// Connected reports whether every node can reach node 0.
func (t *Topology) Connected() bool {
	depth, _ := t.BFS(Base)
	for _, d := range depth {
		if d < 0 {
			return false
		}
	}
	return true
}

// Generate builds a connected topology of the given class with n nodes,
// deterministically from seed. For Intel the node count is fixed at 54 and
// n is ignored. It panics when n < 2 for non-Intel classes, mirroring the
// paper's minimum of a base plus one sensor.
func Generate(kind Kind, n int, seed uint64) *Topology {
	if kind == Intel {
		return intelTopology()
	}
	if n < 2 {
		panic("topology: need at least 2 nodes")
	}
	src := rng.New(seed).Split(uint64(kind))
	if kind == Grid {
		return gridTopology(n)
	}
	return randomTopology(kind, n, src)
}

// randomTopology places n nodes uniformly in the field and picks a radio
// range that yields the class's target average degree, retrying until the
// disk graph is connected.
func randomTopology(kind Kind, n int, src *rng.Source) *Topology {
	target := kind.targetDegree()
	// For n uniform points in an L x L square, the expected degree at radio
	// range r is ~ (n-1) * pi r^2 / L^2; solve for r as a starting guess,
	// then adjust until the measured average degree brackets the target.
	r := Field * math.Sqrt(target/(float64(n-1)*math.Pi))
	for attempt := 0; ; attempt++ {
		layout := src.Split(uint64(attempt))
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: layout.Float64() * Field, Y: layout.Float64() * Field}
		}
		// Binary-search the radio range for this placement to hit the
		// target degree within 0.5.
		lo, hi := r/4, r*4
		var topo *Topology
		for iter := 0; iter < 40; iter++ {
			mid := (lo + hi) / 2
			topo = fromPositions(kind, pos, mid)
			d := topo.AvgDegree()
			switch {
			case d < target-0.25:
				lo = mid
			case d > target+0.25:
				hi = mid
			default:
				iter = 40
			}
		}
		if topo.Connected() {
			return topo
		}
		// Disconnected placement (possible at sparse densities): retry
		// with fresh positions.
	}
}

// gridTopology lays out ceil(sqrt(n)) columns on a regular lattice with a
// radio range covering the 8-neighbourhood minus the farthest diagonal
// corner cases, which empirically averages ~7 neighbours in the interior
// (matching the paper's "grid with an average of 7 neighbours").
func gridTopology(n int) *Topology {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	spacing := Field / float64(side)
	pos := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		pos = append(pos, geom.Point{
			X: (float64(col) + 0.5) * spacing,
			Y: (float64(row) + 0.5) * spacing,
		})
	}
	// sqrt(2)*spacing reaches the diagonal neighbours: interior nodes see
	// 8 neighbours, edge nodes fewer, averaging ~7 on a 10x10 grid.
	return fromPositions(Grid, pos, spacing*math.Sqrt2*1.01)
}

// fromPositions builds the disk graph over fixed positions.
func fromPositions(kind Kind, pos []geom.Point, radio float64) *Topology {
	n := len(pos)
	t := &Topology{kind: kind, pos: pos, radio: radio, neighbors: make([][]NodeID, n)}
	r2 := radio * radio
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
				t.neighbors[j] = append(t.neighbors[j], NodeID(i))
			}
		}
	}
	return t
}

// FromPositions builds a topology directly from positions and a radio
// range. Exposed for tests and for callers replaying recorded layouts.
func FromPositions(pos []geom.Point, radio float64) *Topology {
	return fromPositions(ModerateRandom, pos, radio)
}

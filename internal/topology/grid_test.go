package topology

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// gridSizes are the deployment sizes the grid-vs-naive property tests
// cover: the Intel count, the paper's standard 100, and a scale point.
var gridSizes = []int{54, 100, 500}

// sameAdjacency fails the test unless a and b have byte-identical
// positions, radio ranges and neighbor lists (same order, same contents).
func sameAdjacency(t *testing.T, label string, a, b *Topology) {
	t.Helper()
	if a.N() != b.N() || a.RadioRange() != b.RadioRange() {
		t.Fatalf("%s: shape differs: n %d/%d radio %v/%v", label, a.N(), b.N(), a.RadioRange(), b.RadioRange())
	}
	for i := 0; i < a.N(); i++ {
		id := NodeID(i)
		if a.Pos(id) != b.Pos(id) {
			t.Fatalf("%s: node %d position differs: %v vs %v", label, i, a.Pos(id), b.Pos(id))
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("%s: node %d degree differs: %d vs %d (%v vs %v)", label, i, len(na), len(nb), na, nb)
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("%s: node %d neighbor %d differs: %v vs %v", label, i, k, na, nb)
			}
		}
	}
}

// TestGridDiscoveryMatchesNaive: the spatial-grid disk-graph discovery
// must produce byte-identical adjacency (same neighbors in the same
// ascending order) to the retained O(n^2) reference, for every generated
// deployment class and size.
func TestGridDiscoveryMatchesNaive(t *testing.T) {
	for _, kind := range Kinds {
		for _, n := range gridSizes {
			topo := Generate(kind, n, 1)
			ref := naiveFromPositions(kind, topo.pos, topo.RadioRange())
			sameAdjacency(t, kind.String()+"/generated", topo, ref)
		}
	}
	// The Intel layout exercises fixed, non-uniform positions.
	intel := Generate(Intel, 0, 1)
	sameAdjacency(t, "intel", intel, naiveFromPositions(Intel, intel.pos, intel.RadioRange()))
}

// TestGridDiscoveryMatchesNaiveAtArbitraryRadii sweeps radio ranges over a
// fixed random point cloud, including degenerate extremes (no edges,
// complete graph), where cell sizing takes its clamped branches.
func TestGridDiscoveryMatchesNaiveAtArbitraryRadii(t *testing.T) {
	src := rng.New(7).Split(99)
	for _, n := range gridSizes {
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: src.Float64() * Field, Y: src.Float64() * Field}
		}
		for _, radio := range []float64{0.01, 1, 5, 17.3, 64, Field, 2 * Field} {
			got := fromPositions(ModerateRandom, pos, radio)
			want := naiveFromPositions(ModerateRandom, pos, radio)
			sameAdjacency(t, "radii", got, want)
		}
	}
}

// naiveGenerate replicates the pre-grid generator verbatim: naive O(n^2)
// discovery materialized at every probe of the degree-calibration binary
// search. Generate must reproduce its output exactly — same final
// positions (hence the same placement-attempt index and the same number of
// rng draws consumed), same calibrated radio range, same adjacency.
func naiveGenerate(kind Kind, n int, seed uint64) *Topology {
	src := rng.New(seed).Split(uint64(kind))
	target := kind.targetDegree()
	r := Field * math.Sqrt(target/(float64(n-1)*math.Pi))
	for attempt := 0; ; attempt++ {
		layout := src.Split(uint64(attempt))
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: layout.Float64() * Field, Y: layout.Float64() * Field}
		}
		lo, hi := r/4, r*4
		var topo *Topology
		for iter := 0; iter < 40; iter++ {
			mid := (lo + hi) / 2
			topo = naiveFromPositions(kind, pos, mid)
			d := topo.AvgDegree()
			switch {
			case d < target-0.25:
				lo = mid
			case d > target+0.25:
				hi = mid
			default:
				iter = 40
			}
		}
		if topo.Connected() {
			return topo
		}
	}
}

// TestGenerateMatchesNaiveGenerator holds the whole construction path —
// placement retries, edge-count probes, final materialization — equal to
// the retained naive generator across random classes, sizes and seeds.
func TestGenerateMatchesNaiveGenerator(t *testing.T) {
	for _, kind := range []Kind{SparseRandom, ModerateRandom, MediumRandom, DenseRandom} {
		for _, n := range gridSizes {
			for seed := uint64(1); seed <= 3; seed++ {
				got := Generate(kind, n, seed)
				want := naiveGenerate(kind, n, seed)
				sameAdjacency(t, kind.String(), got, want)
			}
		}
	}
}

// TestHopsFromMatchesBFS: the reusable depth vector and the memoized
// parent cache must agree with the allocating BFS for every source.
func TestHopsFromMatchesBFS(t *testing.T) {
	topo := Generate(ModerateRandom, 100, 1)
	var buf []int
	cache := NewParentCache(topo)
	for s := 0; s < topo.N(); s++ {
		src := NodeID(s)
		want, wantParent := topo.BFS(src)
		buf = topo.HopsFrom(src, buf)
		parent := cache.Parents(src)
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("source %d node %d: HopsFrom %d BFS %d", s, i, buf[i], want[i])
			}
			if parent[i] != wantParent[i] {
				t.Fatalf("source %d node %d: cached parent %d BFS parent %d", s, i, parent[i], wantParent[i])
			}
		}
	}
}

// BenchmarkFromPositionsGrid2k / BenchmarkFromPositionsNaive2k expose the
// construction speedup (ISSUE 3 acceptance: grid >= 10x naive at 2000
// nodes). Run with: go test ./internal/topology -bench FromPositions
func benchmarkPositions(n int) []geom.Point {
	src := rng.New(2).Split(0)
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: src.Float64() * Field, Y: src.Float64() * Field}
	}
	return pos
}

func BenchmarkFromPositionsGrid2k(b *testing.B) {
	pos := benchmarkPositions(2000)
	for i := 0; i < b.N; i++ {
		fromPositions(ModerateRandom, pos, 8.65)
	}
}

func BenchmarkFromPositionsNaive2k(b *testing.B) {
	pos := benchmarkPositions(2000)
	for i := 0; i < b.N; i++ {
		naiveFromPositions(ModerateRandom, pos, 8.65)
	}
}

func BenchmarkGenerate2k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(ModerateRandom, 2000, 1)
	}
}

func BenchmarkGenerateNaive2k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		naiveGenerate2k()
	}
}

// naiveGenerate2k is the benchmark body for the naive reference generator
// at 2000 nodes (kept out of the loop literal so both benchmarks read the
// same shape).
func naiveGenerate2k() *Topology { return naiveGenerate(ModerateRandom, 2000, 1) }

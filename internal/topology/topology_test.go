package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestGenerateConnected(t *testing.T) {
	for _, k := range Kinds {
		topo := Generate(k, 100, 1)
		if !topo.Connected() {
			t.Errorf("%v: generated topology is disconnected", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ModerateRandom, 100, 7)
	b := Generate(ModerateRandom, 100, 7)
	if a.N() != b.N() {
		t.Fatal("node counts differ across identical seeds")
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos(NodeID(i)) != b.Pos(NodeID(i)) {
			t.Fatalf("node %d position differs across identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(ModerateRandom, 100, 1)
	b := Generate(ModerateRandom, 100, 2)
	same := 0
	for i := 0; i < a.N(); i++ {
		if a.Pos(NodeID(i)) == b.Pos(NodeID(i)) {
			same++
		}
	}
	if same == a.N() {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestTargetDegrees(t *testing.T) {
	cases := []struct {
		kind Kind
		want float64
		tol  float64
	}{
		{SparseRandom, 6, 1.0},
		{ModerateRandom, 7, 1.0},
		{MediumRandom, 8, 1.0},
		{DenseRandom, 13, 1.5},
		{Grid, 7, 1.0},
	}
	for _, c := range cases {
		topo := Generate(c.kind, 100, 3)
		got := topo.AvgDegree()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%v: avg degree = %.2f, want %.1f +- %.1f", c.kind, got, c.want, c.tol)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	topo := Generate(ModerateRandom, 100, 11)
	for i := 0; i < topo.N(); i++ {
		for _, j := range topo.Neighbors(NodeID(i)) {
			if !topo.IsNeighbor(j, NodeID(i)) {
				t.Fatalf("link %d->%d not symmetric", i, j)
			}
		}
	}
}

func TestNeighborsWithinRange(t *testing.T) {
	topo := Generate(MediumRandom, 100, 13)
	for i := 0; i < topo.N(); i++ {
		for _, j := range topo.Neighbors(NodeID(i)) {
			if topo.Dist(NodeID(i), j) > topo.RadioRange()+1e-9 {
				t.Fatalf("neighbours %d,%d farther than radio range", i, j)
			}
		}
	}
}

func TestBFSProducesShortestPaths(t *testing.T) {
	topo := Generate(Grid, 100, 1)
	depth, parent := topo.BFS(Base)
	for i := 1; i < topo.N(); i++ {
		id := NodeID(i)
		if depth[id] <= 0 {
			t.Fatalf("node %d unreachable from base in connected topology", i)
		}
		p := parent[id]
		if p < 0 || depth[p] != depth[id]-1 {
			t.Fatalf("node %d parent %d depth mismatch", i, p)
		}
		if !topo.IsNeighbor(id, p) {
			t.Fatalf("node %d parent %d not a radio neighbour", i, p)
		}
	}
}

func TestHopsSymmetricQuick(t *testing.T) {
	topo := Generate(ModerateRandom, 60, 5)
	f := func(aRaw, bRaw uint8) bool {
		a := NodeID(int(aRaw) % topo.N())
		b := NodeID(int(bRaw) % topo.N())
		return topo.Hops(a, b) == topo.Hops(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	topo := Generate(Grid, 64, 1)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := NodeID(int(aRaw) % topo.N())
		b := NodeID(int(bRaw) % topo.N())
		c := NodeID(int(cRaw) % topo.N())
		return topo.Hops(a, c) <= topo.Hops(a, b)+topo.Hops(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIntelTopology(t *testing.T) {
	topo := Generate(Intel, 0, 0)
	if topo.N() != 54 {
		t.Fatalf("Intel topology has %d nodes, want 54", topo.N())
	}
	if !topo.Connected() {
		t.Fatal("Intel topology disconnected")
	}
	if topo.Kind() != Intel {
		t.Fatalf("Kind = %v, want Intel", topo.Kind())
	}
	// The lab is multi-hop: the farthest mote should be several hops out.
	depth, _ := topo.BFS(Base)
	max := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	if max < 3 {
		t.Fatalf("Intel topology max depth = %d, want multi-hop (>=3)", max)
	}
}

func TestGeneratePanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(_, 1, _) did not panic")
		}
	}()
	Generate(Grid, 1, 0)
}

func TestFromPositions(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 10, Y: 0}}
	topo := FromPositions(pos, 1.5)
	if !topo.IsNeighbor(0, 1) || !topo.IsNeighbor(1, 2) {
		t.Fatal("expected chain links missing")
	}
	if topo.IsNeighbor(0, 2) || topo.IsNeighbor(2, 3) {
		t.Fatal("unexpected long links present")
	}
	if topo.Connected() {
		t.Fatal("disconnected layout reported connected")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range append(Kinds, Intel) {
		if k.String() == "" {
			t.Fatalf("Kind %d has empty String()", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind String() malformed")
	}
}

func TestScaleUpSizes(t *testing.T) {
	// Fig 18 needs 50, 100 and 200 node medium topologies.
	for _, n := range []int{50, 100, 200} {
		topo := Generate(MediumRandom, n, 42)
		if topo.N() != n {
			t.Fatalf("want %d nodes, got %d", n, topo.N())
		}
		if !topo.Connected() {
			t.Fatalf("%d-node medium topology disconnected", n)
		}
	}
}

// TestLivenessView pins the shared liveness semantics: idempotent
// fail/revive, nil-view all-alive, AnyDead bookkeeping.
func TestLivenessView(t *testing.T) {
	l := NewLiveness(4)
	if l.AnyDead() || !l.Alive(2) {
		t.Fatal("fresh view not all-alive")
	}
	l.Fail(2)
	l.Fail(2) // idempotent
	if l.Alive(2) || !l.AnyDead() {
		t.Fatal("failure not recorded")
	}
	l.Revive(2)
	l.Revive(2)
	if !l.Alive(2) || l.AnyDead() {
		t.Fatal("revival not recorded")
	}
	var nilView *Liveness
	if !nilView.Alive(0) || nilView.AnyDead() {
		t.Fatal("nil liveness must be all-alive")
	}
}

// TestBFSLiveAvoidsDeadNodes: the filtered traversal matches BFS with no
// failures and routes around (or reports unreachable behind) failed nodes.
func TestBFSLiveAvoidsDeadNodes(t *testing.T) {
	topo := Generate(Grid, 100, 1)
	live := NewLiveness(topo.N())
	d0, p0 := topo.BFS(Base)
	d1, p1 := topo.BFSLive(Base, live)
	for i := range d0 {
		if d0[i] != d1[i] || p0[i] != p1[i] {
			t.Fatal("BFSLive with no failures diverged from BFS")
		}
	}
	// Fail a node adjacent to the base; its neighbours must route around.
	victim := topo.Neighbors(Base)[0]
	live.Fail(victim)
	depth, parent := topo.BFSLive(Base, live)
	if depth[victim] != -1 || parent[victim] != -1 {
		t.Fatal("failed node visited")
	}
	for i := 0; i < topo.N(); i++ {
		if parent[i] == victim {
			t.Fatalf("node %d parented by the failed node", i)
		}
		if depth[i] >= 0 && i != int(Base) {
			if parent[i] < 0 || depth[parent[i]] != depth[i]-1 {
				t.Fatalf("depth inconsistency at %d", i)
			}
		}
	}
	// A dead source reaches nothing.
	dd, _ := topo.BFSLive(victim, live)
	for i, d := range dd {
		if d != -1 {
			t.Fatalf("dead source reached node %d", i)
		}
	}
}

// TestParentCacheInvalidate: a live cache serves stale vectors until
// invalidated, then recomputes around the failure.
func TestParentCacheInvalidate(t *testing.T) {
	topo := Generate(Grid, 100, 1)
	live := NewLiveness(topo.N())
	c := NewLiveParentCache(topo, live)
	far := NodeID(topo.N() - 1)
	before := c.Parents(far)
	// Fail the hop next to far on some chain: pick any node whose parent
	// vector entry is non-trivial.
	var victim NodeID = -1
	for i, p := range before {
		if p >= 0 && p != far && NodeID(i) != far {
			victim = p
			break
		}
	}
	if victim < 0 {
		t.Fatal("no victim found")
	}
	live.Fail(victim)
	if got := c.Parents(far); &got[0] != &before[0] {
		t.Fatal("cache recomputed without Invalidate")
	}
	c.Invalidate()
	after := c.Parents(far)
	for i, p := range after {
		if p == victim && live.Alive(NodeID(i)) {
			t.Fatalf("post-invalidate vector still parents %d to the dead node", i)
		}
	}
	if after[victim] != -1 {
		t.Fatal("dead node still has a parent toward the destination")
	}
}

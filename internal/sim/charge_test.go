package sim

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// chargeScript drives a fixed mixed traffic pattern — multi-hop transfers
// of every kind, a broadcast, a transfer into a dead node — against net.
// Identical scripts on identically-seeded networks charge identical
// draws, which is what lets the tests compare buffered and direct runs.
func chargeScript(net *Network) {
	net.Transfer([]topology.NodeID{3, 2, 1, 0}, 10, Data, Flow{})
	net.Transfer([]topology.NodeID{0, 1, 2}, 4, Control, Flow{})
	net.Broadcast(1, 6, Control)
	net.Transfer([]topology.NodeID{2, 1, 0}, 12, Result, Flow{})
}

func TestChargeBufferMatchesDirectCharging(t *testing.T) {
	topo := chain(t)
	direct := NewNetwork(topo, 0.3, 99)
	buffered := NewNetwork(topo, 0.3, 99)

	chargeScript(direct)

	buf := NewChargeBuffer(topo.N())
	buffered.AttachLedger(buf)
	chargeScript(buffered)
	if got := buffered.Metrics().TotalBytes; got != 0 {
		t.Fatalf("buffered section leaked %d bytes into authoritative metrics", got)
	}
	if buf.TotalBytes() == 0 {
		t.Fatal("ledger accumulated nothing")
	}
	buffered.DetachLedger()
	buffered.MergeLedger(buf)

	if !reflect.DeepEqual(direct.Metrics(), buffered.Metrics()) {
		t.Fatalf("buffered+merged metrics differ from direct charging:\n%+v\n%+v",
			direct.Metrics(), buffered.Metrics())
	}
	if buf.TotalBytes() != 0 {
		t.Fatal("MergeLedger did not reset the ledger")
	}
}

// TestChargeBufferMergeOrderIndependent: partitioning one charge stream
// across ledgers and merging them in any order yields identical totals.
func TestChargeBufferMergeOrderIndependent(t *testing.T) {
	topo := chain(t)
	run := func(mergeBA bool) *Metrics {
		net := NewNetwork(topo, 0, 1)
		a, b := NewChargeBuffer(topo.N()), NewChargeBuffer(topo.N())
		net.AttachLedger(a)
		net.Transfer([]topology.NodeID{3, 2, 1, 0}, 10, Data, Flow{})
		net.DetachLedger()
		net.AttachLedger(b)
		net.Transfer([]topology.NodeID{0, 1}, 20, Result, Flow{})
		net.Broadcast(2, 8, Control)
		net.DetachLedger()
		if mergeBA {
			net.MergeLedger(b)
			net.MergeLedger(a)
		} else {
			net.MergeLedger(a)
			net.MergeLedger(b)
		}
		return net.Metrics()
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("merge order changed the totals")
	}
}

// TestChargeBufferSharedChargedOnce: charges issued OUTSIDE any buffered
// section (the engine's shared-substrate traffic) land on the network
// exactly once, no matter how many ledgers are attached, detached and
// merged around them.
func TestChargeBufferSharedChargedOnce(t *testing.T) {
	topo := chain(t)
	net := NewNetwork(topo, 0, 1)
	shared := []topology.NodeID{0, 1, 2, 3}
	net.Transfer(shared, 10, Control, Flow{}) // shared charge, pre-section
	want := net.Metrics().TotalBytes
	for i := 0; i < 3; i++ {
		buf := NewChargeBuffer(topo.N())
		net.AttachLedger(buf)
		net.Transfer([]topology.NodeID{1, 2}, 5, Data, Flow{})
		net.DetachLedger()
		net.MergeLedger(buf)
	}
	perSection := int64(3 * (HeaderBytes + 5))
	if got := net.Metrics().TotalBytes; got != want+perSection {
		t.Fatalf("TotalBytes = %d, want shared %d charged once + %d buffered", got, want, perSection)
	}
	if got := net.Metrics().ByKind[Control]; got != want {
		t.Fatalf("control bytes = %d, want the pre-section charge %d exactly once", got, want)
	}
}

// TestChargeBufferDeadNodeRetries: a buffered transfer into a failed node
// burns 1+MaxRetries unacked attempts, exactly like direct charging.
func TestChargeBufferDeadNodeRetries(t *testing.T) {
	topo := chain(t)
	direct := NewNetwork(topo, 0, 1)
	buffered := NewNetwork(topo, 0, 1)
	direct.Fail(2)
	buffered.Fail(2)

	direct.Transfer([]topology.NodeID{0, 1, 2, 3}, 10, Data, Flow{})

	buf := NewChargeBuffer(topo.N())
	buffered.AttachLedger(buf)
	ok, hops := buffered.Transfer([]topology.NodeID{0, 1, 2, 3}, 10, Data, Flow{})
	if ok || hops != 1 {
		t.Fatalf("Transfer into dead node = (%v, %d), want (false, 1)", ok, hops)
	}
	buffered.DetachLedger()
	buffered.MergeLedger(buf)

	dm, bm := direct.Metrics(), buffered.Metrics()
	if !reflect.DeepEqual(dm, bm) {
		t.Fatalf("dead-node semantics differ buffered vs direct:\n%+v\n%+v", dm, bm)
	}
	wantAttempts := int64(1 + 1 + direct.MaxRetries) // 0->1 delivered, 1->2 unacked retries
	if bm.TotalMessages != wantAttempts || bm.Retransmissions != int64(direct.MaxRetries) || bm.Drops != 1 {
		t.Fatalf("attempts/retries/drops = %d/%d/%d, want %d/%d/1",
			bm.TotalMessages, bm.Retransmissions, bm.Drops, wantAttempts, direct.MaxRetries)
	}
}

// TestChargeBufferAttachValidation: mis-sized ledgers and double attach
// are programming errors, caught loudly.
func TestChargeBufferAttachValidation(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("mis-sized ledger", func() { net.AttachLedger(NewChargeBuffer(2)) })
	net.AttachLedger(NewChargeBuffer(net.Topo.N()))
	mustPanic("double attach", func() { net.AttachLedger(NewChargeBuffer(net.Topo.N())) })
}

package sim

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// chain returns a 4-node line topology 0-1-2-3.
func chain(t *testing.T) *topology.Topology {
	t.Helper()
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	topo := topology.FromPositions(pos, 1.1)
	if !topo.Connected() {
		t.Fatal("chain not connected")
	}
	return topo
}

func TestTransferLossless(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	ok, hops := net.Transfer([]topology.NodeID{0, 1, 2, 3}, 10, Data, Flow{})
	if !ok || hops != 3 {
		t.Fatalf("Transfer = (%v, %d), want (true, 3)", ok, hops)
	}
	m := net.Metrics()
	wantBytes := int64(3 * (HeaderBytes + 10))
	if m.TotalBytes != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, wantBytes)
	}
	if m.TotalMessages != 3 {
		t.Fatalf("TotalMessages = %d, want 3", m.TotalMessages)
	}
	if m.ByKind[Data] != wantBytes {
		t.Fatalf("ByKind[Data] = %d, want %d", m.ByKind[Data], wantBytes)
	}
}

func TestTransferChargesPerHopSender(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.Transfer([]topology.NodeID{0, 1, 2}, 4, Control, Flow{})
	m := net.Metrics()
	per := int64(HeaderBytes + 4)
	if m.NodeBytes[0] != per || m.NodeBytes[1] != per || m.NodeBytes[2] != 0 {
		t.Fatalf("NodeBytes = %v, want [%d %d 0 0]", m.NodeBytes, per, per)
	}
}

func TestBaseTrafficCountsBothDirections(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	// Hop away from base and hop into base both count.
	net.Transfer([]topology.NodeID{0, 1}, 2, Data, Flow{})
	net.Transfer([]topology.NodeID{1, 0}, 2, Data, Flow{})
	// A hop not touching base does not.
	net.Transfer([]topology.NodeID{2, 3}, 2, Data, Flow{})
	m := net.Metrics()
	if m.BaseBytes != 2*int64(HeaderBytes+2) {
		t.Fatalf("BaseBytes = %d, want %d", m.BaseBytes, 2*(HeaderBytes+2))
	}
	if m.BaseMessages != 2 {
		t.Fatalf("BaseMessages = %d, want 2", m.BaseMessages)
	}
}

func TestTransferTrivialPaths(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	ok, hops := net.Transfer([]topology.NodeID{2}, 100, Data, Flow{})
	if !ok || hops != 0 {
		t.Fatalf("single-node path: (%v,%d), want (true,0)", ok, hops)
	}
	ok, _ = net.Transfer(nil, 100, Data, Flow{})
	if !ok {
		t.Fatal("empty path should deliver vacuously")
	}
	if net.Metrics().TotalBytes != 0 {
		t.Fatal("trivial paths must not charge traffic")
	}
}

func TestLossCausesRetransmissions(t *testing.T) {
	net := NewNetwork(chain(t), 0.5, 7)
	net.MaxRetries = 10 // practically guarantee delivery at 50% loss
	delivered := 0
	for i := 0; i < 200; i++ {
		ok, _ := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{})
		if ok {
			delivered++
		}
	}
	m := net.Metrics()
	if delivered < 195 {
		t.Fatalf("delivered %d/200 at 50%% loss with 10 retries", delivered)
	}
	if m.Retransmissions == 0 {
		t.Fatal("expected retransmissions at 50% loss")
	}
	// ~2 attempts per delivery expected; allow broad margin.
	if m.TotalMessages < 300 || m.TotalMessages > 600 {
		t.Fatalf("TotalMessages = %d, want roughly 400", m.TotalMessages)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int64 {
		net := NewNetwork(chain(t), 0.3, 99)
		for i := 0; i < 100; i++ {
			net.Transfer([]topology.NodeID{0, 1, 2, 3}, 5, Data, Flow{})
		}
		return net.Metrics().TotalBytes
	}
	if run() != run() {
		t.Fatal("identical seeds produced different traffic")
	}
}

func TestDropsAfterMaxRetries(t *testing.T) {
	net := NewNetwork(chain(t), 1.0, 3) // every attempt lost
	net.MaxRetries = 2
	ok, hops := net.Transfer([]topology.NodeID{0, 1, 2}, 1, Data, Flow{})
	if ok {
		t.Fatal("delivery succeeded at 100% loss")
	}
	if hops != 1 {
		t.Fatalf("hops = %d, want 1 (failed on first hop)", hops)
	}
	m := net.Metrics()
	if m.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", m.Drops)
	}
	if m.TotalMessages != 3 { // 1 attempt + 2 retries
		t.Fatalf("TotalMessages = %d, want 3", m.TotalMessages)
	}
}

func TestDeadNextHopAborts(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.Fail(2)
	ok, hops := net.Transfer([]topology.NodeID{0, 1, 2, 3}, 1, Data, Flow{})
	if ok {
		t.Fatal("delivered through dead node")
	}
	if hops != 1 {
		t.Fatalf("hops = %d, want 1", hops)
	}
	m := net.Metrics()
	if m.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", m.Drops)
	}
	// One successful hop 0->1, then the sender keeps trying toward the
	// dead node (1 + MaxRetries attempts), all charged.
	if m.TotalMessages != int64(1+1+net.MaxRetries) {
		t.Fatalf("TotalMessages = %d, want %d", m.TotalMessages, 2+net.MaxRetries)
	}
	net.Revive(2)
	if !net.Alive(2) {
		t.Fatal("Revive did not clear failure")
	}
	ok, _ = net.Transfer([]topology.NodeID{0, 1, 2, 3}, 1, Data, Flow{})
	if !ok {
		t.Fatal("transfer failed after revive")
	}
}

func TestDeadSenderSilent(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.Fail(0)
	ok, hops := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{})
	if ok || hops != 0 {
		t.Fatalf("dead sender: (%v,%d), want (false,0)", ok, hops)
	}
	if net.Metrics().TotalBytes != 0 {
		t.Fatal("dead sender transmitted")
	}
}

func TestObserverSeesHops(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	var seen []topology.NodeID
	net.SetObserver(func(from, to topology.NodeID, kind MsgKind, flow Flow) {
		seen = append(seen, from, to)
		if flow.Src != 0 || flow.Dst != 3 {
			t.Errorf("flow = %+v, want Src=0 Dst=3", flow)
		}
	})
	net.Transfer([]topology.NodeID{0, 1, 2, 3}, 1, Data, Flow{Src: 0, Dst: 3})
	want := []topology.NodeID{0, 1, 1, 2, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", seen, want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.Broadcast(1, 12, Control)
	m := net.Metrics()
	if m.TotalBytes != int64(HeaderBytes+12) {
		t.Fatalf("TotalBytes = %d", m.TotalBytes)
	}
	if m.NodeBytes[1] != int64(HeaderBytes+12) {
		t.Fatalf("NodeBytes[1] = %d", m.NodeBytes[1])
	}
	net.Fail(1)
	net.Broadcast(1, 12, Control)
	if net.Metrics().TotalBytes != m.TotalBytes {
		t.Fatal("dead node broadcast charged traffic")
	}
}

func TestResetMetrics(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.Transfer([]topology.NodeID{0, 1, 2}, 9, Data, Flow{})
	net.ResetMetrics()
	m := net.Metrics()
	if m.TotalBytes != 0 || m.TotalMessages != 0 || m.BaseBytes != 0 {
		t.Fatalf("metrics not zeroed: %+v", m)
	}
	for i, b := range m.NodeBytes {
		if b != 0 {
			t.Fatalf("NodeBytes[%d] = %d after reset", i, b)
		}
	}
}

func TestTopLoads(t *testing.T) {
	m := Metrics{NodeBytes: []int64{5, 9, 1, 7, 3}}
	top := m.TopLoads(3)
	want := []int64{9, 7, 5}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopLoads = %v, want %v", top, want)
		}
	}
	if got := m.TopLoads(10); len(got) != 5 {
		t.Fatalf("TopLoads(10) over 5 nodes returned %d entries", len(got))
	}
	if m.MaxNodeBytes() != 9 {
		t.Fatalf("MaxNodeBytes = %d, want 9", m.MaxNodeBytes())
	}
}

func TestMsgKindString(t *testing.T) {
	if Control.String() != "control" || Data.String() != "data" || Result.String() != "result" {
		t.Fatal("MsgKind labels wrong")
	}
	if MsgKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestQueueLimitDropsExcess(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.QueueLimit = 2
	net.BeginCycle(0)
	// Node 1 relays for paths 0->2; its per-cycle budget is 2 sends.
	okCount := 0
	for i := 0; i < 5; i++ {
		// Each transfer makes node 0 send once (queue 0) and node 1
		// relay once (queue 1).
		if ok, _ := net.Transfer([]topology.NodeID{0, 1, 2}, 1, Data, Flow{}); ok {
			okCount++
		}
	}
	// Node 0 also has a limit of 2: only 2 transfers leave node 0 at all.
	if okCount != 2 {
		t.Fatalf("delivered %d transfers under queue limit 2, want 2", okCount)
	}
	if net.QueueDrops() == 0 {
		t.Fatal("no queue drops recorded")
	}
	// A new cycle resets the budget.
	net.BeginCycle(1)
	if ok, _ := net.Transfer([]topology.NodeID{0, 1, 2}, 1, Data, Flow{}); !ok {
		t.Fatal("queue budget not reset by BeginCycle")
	}
}

// TestBeginCycleIdempotentPerCycle: two steppers sharing one network both
// announce the cycle; the second announcement must not hand every relay a
// fresh queue budget mid-cycle.
func TestBeginCycleIdempotentPerCycle(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.QueueLimit = 2
	net.BeginCycle(0)
	delivered := 0
	for i := 0; i < 4; i++ {
		if ok, _ := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{}); ok {
			delivered++
		}
	}
	if delivered != 2 {
		t.Fatalf("delivered %d before re-announcement, want 2", delivered)
	}
	// Same cycle announced again: budgets must stay consumed.
	net.BeginCycle(0)
	if ok, _ := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{}); ok {
		t.Fatal("repeated BeginCycle within one cycle reset the relay budget")
	}
	// The next cycle resets as usual.
	net.BeginCycle(1)
	if ok, _ := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{}); !ok {
		t.Fatal("next cycle did not reset the relay budget")
	}
}

// TestDeadNodeChargingUniform pins the documented failure semantics: a
// transmission into a failed node is charged exactly like a hop that
// exhausts its retries (1+MaxRetries attempts, all accounted to the live
// sender), while a failed sender transmits nothing at any position.
func TestDeadNodeChargingUniform(t *testing.T) {
	topo := chain(t)
	// Into a failed node: charged, not forwarded.
	into := NewNetwork(topo, 0, 1)
	into.Fail(2)
	ok, hops := into.Transfer([]topology.NodeID{1, 2, 3}, 5, Data, Flow{})
	if ok || hops != 0 {
		t.Fatalf("into dead: (%v,%d), want (false,0)", ok, hops)
	}
	// Exhausted retries on the same hop: identical accounting.
	lost := NewNetwork(topo, 1.0, 1)
	lost.Transfer([]topology.NodeID{1, 2, 3}, 5, Data, Flow{})
	mi, ml := into.Metrics(), lost.Metrics()
	if mi.TotalBytes != ml.TotalBytes || mi.TotalMessages != ml.TotalMessages ||
		mi.NodeBytes[1] != ml.NodeBytes[1] || mi.Retransmissions != ml.Retransmissions || mi.Drops != ml.Drops {
		t.Fatalf("dead-hop charge %+v != retry-exhausted charge %+v", mi, ml)
	}
	// A failed sender is silent: no charge at all.
	from := NewNetwork(topo, 0, 1)
	from.Fail(1)
	ok, hops = from.Transfer([]topology.NodeID{1, 2, 3}, 5, Data, Flow{})
	if ok || hops != 0 || from.Metrics().TotalBytes != 0 {
		t.Fatalf("dead sender: (%v,%d,%dB), want (false,0,0B)", ok, hops, from.Metrics().TotalBytes)
	}
}

// TestSharedLiveness: networks built over one liveness view agree on
// failures — the correlated-failure property the multi-query engine needs.
func TestSharedLiveness(t *testing.T) {
	topo := chain(t)
	live := topology.NewLiveness(topo.N())
	a := NewSharedNetwork(topo, 0, 1, live)
	b := NewSharedNetwork(topo, 0, 2, live)
	a.Fail(2)
	if b.Alive(2) {
		t.Fatal("failure in network a invisible to network b")
	}
	if ok, _ := b.Transfer([]topology.NodeID{0, 1, 2}, 1, Data, Flow{}); ok {
		t.Fatal("network b delivered through the node failed via network a")
	}
	if !live.AnyDead() {
		t.Fatal("liveness view did not record the failure")
	}
	b.Revive(2)
	if !a.Alive(2) || live.AnyDead() {
		t.Fatal("revival in network b invisible to network a")
	}
	// Private networks stay isolated.
	c := NewNetwork(topo, 0, 3)
	c.Fail(1)
	if !a.Alive(1) {
		t.Fatal("private network failure leaked into the shared view")
	}
}

func TestQueueLimitDisabledByDefault(t *testing.T) {
	net := NewNetwork(chain(t), 0, 1)
	net.BeginCycle(0)
	for i := 0; i < 100; i++ {
		if ok, _ := net.Transfer([]topology.NodeID{0, 1}, 1, Data, Flow{}); !ok {
			t.Fatal("transfer dropped with queues disabled")
		}
	}
	if net.QueueDrops() != 0 {
		t.Fatal("queue drops recorded while disabled")
	}
}

package sim

import (
	"testing"

	"repro/internal/topology"
)

// BenchmarkTransfer measures the per-hop accounting hot path: one 10-hop
// transfer per op on a lossy line, retransmissions included. The hop loop
// must stay allocation-free — per-node metrics are dense slices and the
// loss process draws without boxing.
func BenchmarkTransfer(b *testing.B) {
	topo := topology.Generate(topology.Grid, 100, 1)
	net := NewNetwork(topo, 0.05, 1)
	// Longest parent chain in a BFS tree from the base.
	depth, parent := topo.BFS(topology.Base)
	deepest := topology.NodeID(0)
	for i := 1; i < topo.N(); i++ {
		if depth[i] > depth[deepest] {
			deepest = topology.NodeID(i)
		}
	}
	var path []topology.NodeID
	for at := deepest; at >= 0; at = parent[at] {
		path = append(path, at)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Transfer(path, TupleBytes, Data, Flow{})
	}
}

// BenchmarkBroadcast measures the one-hop accounting path.
func BenchmarkBroadcast(b *testing.B) {
	topo := topology.Generate(topology.Grid, 100, 1)
	net := NewNetwork(topo, 0.05, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Broadcast(5, TupleBytes, Control)
	}
}

package sim

// ChargeBuffer is a detached traffic ledger: a full Metrics accumulator a
// Network can be pointed at for the duration of a bounded section, so the
// section's charges land in the buffer instead of the network's
// authoritative counters. internal/engine uses one buffer per live query to
// step queries on parallel workers — each worker charges its thread-local
// buffer race-free — and merges the buffers into the per-query networks in
// submission order at the epoch barrier. Merging is pure addition, so the
// final counters are byte-identical to direct charging regardless of worker
// count or merge order, and anything charged OUTSIDE a buffered section
// (the engine's shared-substrate traffic: tree construction, index
// dissemination, churn repair) is charged exactly once on the network it
// was issued against, never duplicated into a ledger.
//
// A ChargeBuffer buffers accounting only. Transfer's loss draws, liveness
// checks and relay-queue state still run against the owning network, so a
// buffered section observes exactly the semantics of direct charging —
// including the dead-node retry rule (a transfer into a failed node charges
// 1+MaxRetries attempts) and per-cycle queue overflow.
type ChargeBuffer struct {
	m Metrics
}

// NewChargeBuffer returns an empty ledger over a deployment of n nodes.
func NewChargeBuffer(n int) *ChargeBuffer {
	return &ChargeBuffer{m: Metrics{
		NodeBytes:    make([]int64, n),
		NodeMessages: make([]int64, n),
	}}
}

// Reset zeroes the ledger for reuse (merges reset implicitly; an explicit
// Reset discards a section's charges instead of applying them).
func (b *ChargeBuffer) Reset() {
	for i := range b.m.NodeBytes {
		b.m.NodeBytes[i] = 0
		b.m.NodeMessages[i] = 0
	}
	b.m = Metrics{NodeBytes: b.m.NodeBytes, NodeMessages: b.m.NodeMessages}
}

// TotalBytes returns the bytes accumulated since the last reset/merge.
func (b *ChargeBuffer) TotalBytes() int64 { return b.m.TotalBytes }

// Add folds o's counters into m — the ledger-merge primitive. Addition is
// commutative and associative, so merging any partition of a charge stream
// in any order yields identical totals.
func (m *Metrics) Add(o *Metrics) {
	m.TotalBytes += o.TotalBytes
	m.TotalMessages += o.TotalMessages
	m.BaseBytes += o.BaseBytes
	m.BaseMessages += o.BaseMessages
	for i, b := range o.NodeBytes {
		m.NodeBytes[i] += b
	}
	for i, c := range o.NodeMessages {
		m.NodeMessages[i] += c
	}
	for k, b := range o.ByKind {
		m.ByKind[k] += b
	}
	m.Drops += o.Drops
	m.Retransmissions += o.Retransmissions
	m.QueueDrops += o.QueueDrops
	m.Attempted += o.Attempted
	m.Delivered += o.Delivered
	m.CutDrops += o.CutDrops
	m.Duplicates += o.Duplicates
	m.DelaySlots += o.DelaySlots
}

// AttachLedger redirects the network's accounting into b until
// DetachLedger. While attached, the caller owns the network exclusively
// (one goroutine): Transfer/Broadcast charge b, and the authoritative
// Metrics must not be read or reset. Panics when b is sized for a
// different deployment or a ledger is already attached.
func (n *Network) AttachLedger(b *ChargeBuffer) {
	if len(b.m.NodeBytes) != len(n.metrics.NodeBytes) {
		panic("sim: ChargeBuffer sized for a different deployment")
	}
	if n.acct != &n.metrics {
		panic("sim: a ledger is already attached")
	}
	n.acct = &b.m
}

// DetachLedger restores direct charging. The buffered charges stay in the
// ledger until MergeLedger applies them.
func (n *Network) DetachLedger() {
	n.acct = &n.metrics
}

// MergeLedger folds b into the network's authoritative metrics and resets
// b for reuse. Callers sequence merges (the engine merges per-query
// ledgers in submission order at the epoch barrier); the totals are
// merge-order independent, the sequencing is what makes the accounting
// auditable.
func (n *Network) MergeLedger(b *ChargeBuffer) {
	n.metrics.Add(&b.m)
	b.Reset()
}

package sim

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// TestDefaultRetryPolicyMatchesLegacy: installing the default policy on a
// network leaves its accounting byte-identical to an untouched network —
// the contract that keeps every pre-policy checksum stable.
func TestDefaultRetryPolicyMatchesLegacy(t *testing.T) {
	topo := chain(t)
	run := func(install bool) Metrics {
		net := NewNetwork(topo, 0.3, 7)
		if install {
			net.SetRetryPolicy(DefaultRetryPolicy())
		}
		for i := 0; i < 200; i++ {
			net.Transfer([]topology.NodeID{0, 1, 2, 3}, 10, Data, Flow{})
		}
		m := *net.Metrics()
		m.NodeBytes, m.NodeMessages = nil, nil
		return m
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("default policy changed accounting:\nlegacy %+v\npolicy %+v", a, b)
	}
}

// TestPerKindRetryOverride: a per-class override changes only that class's
// retry budget. With certain loss, attempts per hop are exactly 1+retries.
func TestPerKindRetryOverride(t *testing.T) {
	topo := chain(t)
	net := NewNetwork(topo, 1, 1) // every attempt lost
	p := DefaultRetryPolicy()
	p.PerKind[Data] = 0 // data gives up immediately
	p.PerKind[Control] = 5
	net.SetRetryPolicy(p)

	net.Transfer([]topology.NodeID{0, 1}, 10, Data, Flow{})
	m := net.Metrics()
	if m.TotalMessages != 1 || m.Retransmissions != 0 {
		t.Fatalf("data with 0 retries: %d messages, %d retransmissions, want 1, 0",
			m.TotalMessages, m.Retransmissions)
	}
	net.Transfer([]topology.NodeID{0, 1}, 10, Control, Flow{})
	if got := m.TotalMessages - 1; got != 6 {
		t.Fatalf("control with 5 retries: %d attempts, want 6", got)
	}
	// Result inherits MaxRetries (3): 4 attempts.
	net.Transfer([]topology.NodeID{0, 1}, 10, Result, Flow{})
	if got := m.TotalMessages - 7; got != 4 {
		t.Fatalf("result inheriting MaxRetries: %d attempts, want 4", got)
	}
	if m.Drops != 3 || m.Delivered != 0 || m.Attempted != 3 {
		t.Fatalf("accounting identity broken: %+v", m)
	}
}

// TestBackoffBytesCharged: the backoff cost model charges bytes only — no
// extra messages — per retransmission, including on hops into dead nodes.
func TestBackoffBytesCharged(t *testing.T) {
	topo := chain(t)
	const backoff = 16
	net := NewNetwork(topo, 1, 1) // every attempt lost: always 3 retries
	p := DefaultRetryPolicy()
	p.BackoffBytes = backoff
	net.SetRetryPolicy(p)

	net.Transfer([]topology.NodeID{0, 1}, 10, Data, Flow{})
	m := net.Metrics()
	frame := int64(HeaderBytes + 10)
	wantBytes := 4*frame + 3*backoff
	if m.TotalBytes != wantBytes || m.TotalMessages != 4 {
		t.Fatalf("lossy hop: %d bytes / %d messages, want %d / 4", m.TotalBytes, m.TotalMessages, wantBytes)
	}
	if m.NodeBytes[0] != wantBytes {
		t.Fatalf("backoff not charged to the transmitting node: %d, want %d", m.NodeBytes[0], wantBytes)
	}

	// Into a dead node: 1+MaxRetries charged attempts plus backoff.
	net.ResetMetrics()
	net.Fail(1)
	net.Transfer([]topology.NodeID{0, 1}, 10, Data, Flow{})
	if m.TotalBytes != wantBytes || m.TotalMessages != 4 {
		t.Fatalf("dead hop: %d bytes / %d messages, want %d / 4", m.TotalBytes, m.TotalMessages, wantBytes)
	}
}

// TestSetRetryPolicyClampsNegative: a negative MaxRetries reads as zero.
func TestSetRetryPolicyClampsNegative(t *testing.T) {
	net := NewNetwork(chain(t), 1, 1)
	net.SetRetryPolicy(RetryPolicy{MaxRetries: -5, PerKind: [4]int{-1, -1, -1, -1}})
	if net.MaxRetries != 0 {
		t.Fatalf("MaxRetries = %d, want 0", net.MaxRetries)
	}
	net.Transfer([]topology.NodeID{0, 1}, 10, Data, Flow{})
	if m := net.Metrics(); m.TotalMessages != 1 {
		t.Fatalf("clamped policy still retried: %d messages", m.TotalMessages)
	}
}

// hopState is the per-hop fault verdict the oracle below draws with.
type hopState struct {
	cut       bool
	extraLoss float64
	dupProb   float64
	delay     int
}

// scriptedFaults is a deterministic FaultInjector for the property test.
type scriptedFaults struct {
	states map[[2]topology.NodeID]hopState
}

func (s *scriptedFaults) Link(from, to topology.NodeID) LinkState {
	k := [2]topology.NodeID{from, to}
	if to < from {
		k = [2]topology.NodeID{to, from}
	}
	st := s.states[k]
	return LinkState{Cut: st.cut, ExtraLoss: st.extraLoss, DupProb: st.dupProb, DelaySlots: st.delay}
}

// TestAccountingInvariantUnderInjectedLoss is the fault-accounting property
// test: a network with an injector installed is replayed against an
// independent oracle that simulates Transfer's documented draw/charge
// discipline from its own copy of the loss stream. Every attempt must be
// charged exactly once (no double-charge on retry success), the
// retransmission counter must equal per-hop attempts minus first attempts,
// and the end-to-end identity Attempted == Delivered + Drops + QueueDrops
// must hold throughout.
func TestAccountingInvariantUnderInjectedLoss(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 60, 1)
	const lossSeed = 99
	const ambient = 0.1
	const payload = 10

	// Build a varied scripted fault layer from a seeded stream.
	f := &scriptedFaults{states: map[[2]topology.NodeID]hopState{}}
	fr := rng.New(5).Split(1)
	for id := 0; id < topo.N(); id++ {
		from := topology.NodeID(id)
		for _, nb := range topo.Neighbors(from) {
			if nb <= from {
				continue
			}
			st := hopState{}
			switch fr.Intn(4) {
			case 0:
				st.cut = true
			case 1:
				st.extraLoss = 0.2 + 0.2*fr.Float64()
			case 2:
				st.dupProb = 0.3
				st.delay = fr.Intn(3)
			}
			f.states[[2]topology.NodeID{from, nb}] = st
		}
	}

	net := NewNetwork(topo, ambient, lossSeed)
	net.SetFaults(f)
	p := DefaultRetryPolicy()
	p.PerKind[Control] = 5
	p.BackoffBytes = 4
	net.SetRetryPolicy(p)
	net.Fail(topology.NodeID(17))
	net.Fail(topology.NodeID(42))

	// The oracle owns an identical copy of the loss stream: Transfer's
	// draws must line up one-for-one or every subsequent expectation
	// derails, so agreement pins the draw discipline exactly.
	oracleLoss := rng.New(lossSeed).Split(0xC0FFEE)
	var want Metrics
	want.NodeBytes = make([]int64, topo.N())
	want.NodeMessages = make([]int64, topo.N())
	oracle := func(path []topology.NodeID, kind MsgKind) {
		if !net.Alive(path[0]) {
			return
		}
		retries := 3
		if kind == Control {
			retries = 5
		}
		want.Attempted++
		size := int64(HeaderBytes + payload)
		charge := func(from, to topology.NodeID, attempts int, backoffs int) {
			b := size*int64(attempts) + 4*int64(backoffs)
			want.TotalBytes += b
			want.TotalMessages += int64(attempts)
			want.NodeBytes[from] += b
			want.NodeMessages[from] += int64(attempts)
			want.ByKind[kind] += b
			if from == topology.Base || to == topology.Base {
				want.BaseBytes += b
				want.BaseMessages += int64(attempts)
			}
		}
		for i := 0; i+1 < len(path); i++ {
			from, to := path[i], path[i+1]
			fs := f.Link(from, to)
			if !net.Alive(to) || fs.Cut {
				charge(from, to, 1+retries, retries)
				want.Retransmissions += int64(retries)
				want.Drops++
				if net.Alive(to) {
					want.CutDrops++
				}
				return
			}
			prob := ambient + fs.ExtraLoss*(1-ambient)
			ok, attempts := false, 0
			for a := 0; a <= retries; a++ {
				attempts++
				if !oracleLoss.Bool(prob) {
					ok = true
					break
				}
			}
			charge(from, to, attempts, attempts-1)
			want.Retransmissions += int64(attempts - 1)
			if !ok {
				want.Drops++
				return
			}
			if fs.DupProb > 0 && oracleLoss.Bool(fs.DupProb) {
				charge(from, to, 1, 0)
				want.Duplicates++
			}
			want.DelaySlots += int64(fs.DelaySlots)
		}
		want.Delivered++
	}

	// Drive random-walk paths (valid radio links by construction) from a
	// separate stream; kinds cycle so the per-kind override is exercised.
	walk := rng.New(11).Split(2)
	for msg := 0; msg < 3000; msg++ {
		at := topology.NodeID(walk.Intn(topo.N()))
		path := []topology.NodeID{at}
		for len(path) < 2+walk.Intn(5) {
			nbs := topo.Neighbors(at)
			at = nbs[walk.Intn(len(nbs))]
			path = append(path, at)
		}
		kind := MsgKind(msg % 3)
		oracle(path, kind)
		net.Transfer(path, payload, kind, Flow{})

		if msg%500 == 0 {
			m := net.Metrics()
			if m.Attempted != m.Delivered+m.Drops+m.QueueDrops {
				t.Fatalf("msg %d: identity broken: Attempted %d != Delivered %d + Drops %d + QueueDrops %d",
					msg, m.Attempted, m.Delivered, m.Drops, m.QueueDrops)
			}
		}
	}

	m := net.Metrics()
	if m.Attempted != m.Delivered+m.Drops+m.QueueDrops {
		t.Fatalf("identity broken: Attempted %d != Delivered %d + Drops %d + QueueDrops %d",
			m.Attempted, m.Delivered, m.Drops, m.QueueDrops)
	}
	got := *m
	got.NodeBytes, got.NodeMessages = nil, nil
	wantFlat := want
	wantFlat.NodeBytes, wantFlat.NodeMessages = nil, nil
	if !reflect.DeepEqual(got, wantFlat) {
		t.Fatalf("oracle mismatch:\ngot  %+v\nwant %+v", got, wantFlat)
	}
	for i := range want.NodeBytes {
		if m.NodeBytes[i] != want.NodeBytes[i] || m.NodeMessages[i] != want.NodeMessages[i] {
			t.Fatalf("node %d load mismatch: got %d/%d, want %d/%d",
				i, m.NodeBytes[i], m.NodeMessages[i], want.NodeBytes[i], want.NodeMessages[i])
		}
	}
	if m.Drops == 0 || m.Delivered == 0 || m.CutDrops == 0 || m.Duplicates == 0 || m.Retransmissions == 0 {
		t.Fatalf("property run did not exercise all outcomes: %+v", got)
	}
}

// TestPathCutPredicate: PathCut reports partition-severed paths and is
// false without an injector.
func TestPathCutPredicate(t *testing.T) {
	topo := chain(t)
	net := NewNetwork(topo, 0, 1)
	path := []topology.NodeID{0, 1, 2, 3}
	if net.PathCut(path) {
		t.Fatal("PathCut true without an injector")
	}
	f := &scriptedFaults{states: map[[2]topology.NodeID]hopState{
		{1, 2}: {cut: true},
	}}
	net.SetFaults(f)
	if !net.PathCut(path) {
		t.Fatal("PathCut missed the cut hop")
	}
	if net.PathCut([]topology.NodeID{0, 1}) {
		t.Fatal("PathCut true for a healthy prefix")
	}
}

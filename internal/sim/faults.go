package sim

import "repro/internal/topology"

// LinkState is a fault injector's verdict for one directed hop, consulted
// by Transfer before the loss process runs. The zero value means "healthy
// link": Transfer must behave — charge for charge, rng draw for rng draw —
// exactly as if no injector were installed, which is what keeps a zeroed
// fault plan byte-identical to the fault-free engine.
type LinkState struct {
	// Cut severs the link: a transfer reaching this hop burns the full
	// retry budget (the sender cannot distinguish a dead link from a dead
	// receiver) and is dropped, counted in both Drops and CutDrops.
	Cut bool
	// ExtraLoss is an additional per-attempt loss probability composed
	// with the network's ambient LossProb as independent loss events:
	// p = LossProb + ExtraLoss*(1-LossProb).
	ExtraLoss float64
	// DupProb is the probability that a successfully delivered hop is
	// followed by one charged duplicate transmission (a lost ack).
	DupProb float64
	// DelaySlots is bounded extra latency in transmission slots,
	// accumulated into Metrics.DelaySlots on successful hops. Purely
	// observational.
	DelaySlots int
}

// FaultInjector is the per-hop fault oracle a Network consults on every
// hop of every Transfer. Implementations must be cheap, pure reads: all
// randomness behind the returned state has to be drawn when the plan is
// built or advanced in a sequential section (internal/faults does both),
// never inside Link, because Link is called concurrently from parallel
// workers stepping disjoint per-query networks.
type FaultInjector interface {
	Link(from, to topology.NodeID) LinkState
}

// SetFaults installs the fault injector (nil disables injection).
func (n *Network) SetFaults(f FaultInjector) { n.faults = f }

// Faults returns the installed injector, nil when fault-free.
func (n *Network) Faults() FaultInjector { return n.faults }

// PathCut reports whether any hop of path is currently severed by the
// installed fault injector. It is the pre-flight check steppers use to
// distinguish "transfer failed because the path is partitioned" (abort,
// fall back) from "transfer failed to random loss" (legacy semantics).
// Always false without an injector.
func (n *Network) PathCut(path []topology.NodeID) bool {
	if n.faults == nil {
		return false
	}
	for i := 0; i+1 < len(path); i++ {
		if n.faults.Link(path[i], path[i+1]).Cut {
			return true
		}
	}
	return false
}

// Package sim is the network simulator substrate that replaces TOSSIM in
// this reproduction. Every figure in the paper measures bytes (or, for mesh
// networks, messages) transmitted per node and end-to-end delay in sampling
// cycles, so the simulator is a hop-accurate byte-accounting engine rather
// than a radio-bit-level one: a message sent along a multi-hop path charges
// each traversed link, per-hop losses trigger bounded retransmissions (each
// attempt charged), and all traffic is attributed to the transmitting node,
// with the base station's send+receive load tracked separately.
//
// Determinism: the loss process draws from a dedicated rng stream, and all
// iteration is in node-ID order, so a run is a pure function of
// (topology, workload seed, loss seed).
package sim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Wire-format modelling constants. TOSSIM's TinyOS packets carry an ~8-byte
// active-message header; attribute values are 16-bit integers (section 4);
// path-vector entries are delta-encoded to about a byte per hop (section
// 3.1). These constants are the only place byte sizes are defined.
const (
	// HeaderBytes is charged per transmission attempt on every hop.
	HeaderBytes = 8
	// ValueBytes is the size of one 16-bit attribute value.
	ValueBytes = 2
	// PathEntryBytes is the delta-encoded size of one path-vector hop.
	PathEntryBytes = 1
	// TupleBytes is a minimal data tuple: node id + one value + sequence.
	TupleBytes = 3 * ValueBytes
	// ResultBytes is a join result: both producer ids and both values.
	ResultBytes = 2 * TupleBytes
	// TransmissionsPerCycle is how many transmission cycles make up one
	// sampling cycle (section 4.1: "Each sampling cycle itself consists
	// of 100 transmission cycles").
	TransmissionsPerCycle = 100
)

// MsgKind classifies traffic so metrics can be broken down by phase.
type MsgKind uint8

const (
	// Control covers initiation/optimization traffic (exploration,
	// nominations, group coordination, multicast-tree updates).
	Control MsgKind = iota
	// Data covers producer tuples flowing to join nodes.
	Data
	// Result covers join outputs flowing to the base station.
	Result
	// Migration covers section-6 adaptivity traffic: window snapshots in
	// flight to a re-placed join node plus the accompanying nomination
	// handoffs. Observability folds this class into the control gauge
	// (sim.bytes.control) — it is control-plane traffic — but keeping a
	// distinct ledger class lets tests assert migrations are charged
	// exactly once.
	Migration
)

// String returns the metric label for the kind.
func (k MsgKind) String() string {
	switch k {
	case Control:
		return "control"
	case Data:
		return "data"
	case Result:
		return "result"
	case Migration:
		return "migration"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Metrics accumulates everything the paper's figures report.
type Metrics struct {
	// TotalBytes is the sum of bytes transmitted over all links, including
	// retransmissions (the "Total traffic" axis of Figs 2, 3, 9-13).
	TotalBytes int64
	// TotalMessages counts transmission attempts (the mesh-network metric
	// of Figs 19-20, where header overhead dominates byte size).
	TotalMessages int64
	// BaseBytes is bytes sent or received by the base station ("Traffic at
	// the Base station", Figs 2b, 3b, 6a, 13).
	BaseBytes int64
	// BaseMessages is the message-count analogue of BaseBytes.
	BaseMessages int64
	// NodeBytes[i] is bytes transmitted by node i (Fig 5's load
	// distribution and Fig 13's "max traffic by any node").
	NodeBytes []int64
	// NodeMessages[i] is transmission attempts by node i.
	NodeMessages []int64
	// ByKind breaks TotalBytes down by traffic class.
	ByKind [4]int64
	// Drops counts messages abandoned after exhausting retransmissions.
	Drops int64
	// Retransmissions counts extra attempts beyond the first, per hop.
	Retransmissions int64
	// QueueDrops counts messages lost to per-cycle relay-queue overflow
	// (only with Network.QueueLimit set).
	QueueDrops int64
	// Attempted counts Transfer calls that entered the charging loop (a
	// live sender with a multi-hop path). Together with Delivered it pins
	// the end-to-end accounting identity
	//   Attempted == Delivered + Drops + QueueDrops
	// which the fault-injection property tests assert under every plan.
	Attempted int64
	// Delivered counts Transfer calls that reached the end of the path.
	Delivered int64
	// CutDrops counts transfers abandoned at a fault-injected cut link (a
	// link taken down by the fault plan or severed by a partition). Every
	// CutDrop is also a Drop; the separate counter is what feeds the
	// faults.injected_drops gauge.
	CutDrops int64
	// Duplicates counts fault-injected duplicate deliveries: the receiver
	// acked but the ack was lost, so the sender transmitted one extra
	// (charged) copy the receiver must deduplicate.
	Duplicates int64
	// DelaySlots accumulates fault-injected bounded delay, in transmission
	// slots, over all delivered hops. Delay is observational: it charges
	// nothing and reorders nothing, it measures how late traffic would be.
	DelaySlots int64
}

// KindBytes returns the bytes charged to one traffic class — the
// per-class accessor the engine's observability sampling reads at the
// epoch barrier (out-of-range kinds read as 0).
func (m *Metrics) KindBytes(k MsgKind) int64 {
	if int(k) >= len(m.ByKind) {
		return 0
	}
	return m.ByKind[k]
}

// MaxNodeBytes returns the heaviest per-node transmit load.
func (m *Metrics) MaxNodeBytes() int64 {
	var max int64
	for _, b := range m.NodeBytes {
		if b > max {
			max = b
		}
	}
	return max
}

// TopLoads returns the k largest per-node byte loads in descending order
// (Fig 5 plots the 15 most-loaded nodes).
func (m *Metrics) TopLoads(k int) []int64 {
	loads := make([]int64, len(m.NodeBytes))
	copy(loads, m.NodeBytes)
	// Insertion-select the top k; node counts are small (<= a few hundred).
	if k > len(loads) {
		k = len(loads)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(loads); j++ {
			if loads[j] > loads[best] {
				best = j
			}
		}
		loads[i], loads[best] = loads[best], loads[i]
	}
	return loads[:k]
}

// HopObserver is invoked for every successful hop transmission. The MPO
// path-collapse detector uses it to model radio snooping: neighbours of the
// transmitting node overhear the packet for free (broadcast medium), so
// observing costs nothing; only explicit notifications are charged.
type HopObserver func(from, to topology.NodeID, kind MsgKind, flow Flow)

// Flow identifies a data stream for snooping purposes: the producer it
// originates at, the join node it targets, and the path vector in use.
type Flow struct {
	Src  topology.NodeID
	Dst  topology.NodeID
	Path []topology.NodeID
}

// Network is the simulation substrate: a topology plus loss model, failure
// state and traffic metrics.
type Network struct {
	Topo *topology.Topology
	// LossProb is the per-hop packet loss probability. Mote experiments
	// use 5% (TOSSIM's lossy radio); mesh experiments use 0 and count
	// messages instead.
	LossProb float64
	// MaxRetries bounds retransmission attempts per hop after the first.
	MaxRetries int

	// QueueLimit, when positive, bounds how many messages a node can
	// relay per sampling cycle (its radio/forwarding queue). Messages
	// beyond the limit are dropped at that hop — the failure mode that
	// prevented Yang+07 from completing runs in the paper ("its routing
	// queues overflow almost immediately"). Zero disables the model.
	QueueLimit int

	metrics Metrics
	// acct is the accounting sink every charge lands in: &metrics
	// normally, an attached ChargeBuffer's metrics during a buffered
	// section (see AttachLedger).
	acct      *Metrics
	loss      *rng.Source
	live      *topology.Liveness
	observer  HopObserver
	cycleLoad []int
	// faults is the installed fault injector (nil = fault-free). Transfer
	// consults it once per hop; a zero LinkState must leave the hop's
	// charge and loss-draw sequence byte-identical to no injector at all.
	faults FaultInjector
	// retry carries the per-kind retry overrides and backoff cost model;
	// the public MaxRetries field stays the default bound so existing
	// callers that set it directly keep working.
	retry RetryPolicy
	// begunCycle is the last cycle BeginCycle reset the relay queues for,
	// so steppers sharing one network cannot double-reset within a cycle.
	begunCycle int
}

// NewNetwork returns a network over topo with the given loss model and a
// private liveness view. lossSeed feeds the loss process only, keeping it
// independent of workload randomness.
func NewNetwork(topo *topology.Topology, lossProb float64, lossSeed uint64) *Network {
	return NewSharedNetwork(topo, lossProb, lossSeed, topology.NewLiveness(topo.N()))
}

// NewSharedNetwork returns a network whose failure state is the given
// liveness view. Several networks over one deployment (the engine's shared
// infrastructure stream plus every per-query stream) share one view, so a
// node failing is dead for all of them simultaneously; each network keeps
// its own metrics and loss stream.
func NewSharedNetwork(topo *topology.Topology, lossProb float64, lossSeed uint64, live *topology.Liveness) *Network {
	n := topo.N()
	nw := &Network{
		Topo:       topo,
		LossProb:   lossProb,
		MaxRetries: 3,
		retry:      DefaultRetryPolicy(),
		loss:       rng.New(lossSeed).Split(0xC0FFEE),
		live:       live,
		cycleLoad:  make([]int, n),
		begunCycle: -1,
		metrics: Metrics{
			NodeBytes:    make([]int64, n),
			NodeMessages: make([]int64, n),
		},
	}
	nw.acct = &nw.metrics
	return nw
}

// Liveness returns the network's failure view (shared when the network
// was built with NewSharedNetwork).
func (n *Network) Liveness() *topology.Liveness { return n.live }

// BeginCycle resets the per-cycle relay queues for the given sampling
// cycle. Engines call it at the start of every cycle; it is a no-op when
// QueueLimit is off, and idempotent within a cycle — repeated calls with
// the same cycle number (steppers sharing one network each announcing the
// cycle) reset nothing, so mid-cycle relay budgets survive.
func (n *Network) BeginCycle(cycle int) {
	if n.QueueLimit <= 0 || cycle == n.begunCycle {
		return
	}
	n.begunCycle = cycle
	for i := range n.cycleLoad {
		n.cycleLoad[i] = 0
	}
}

// QueueDrops counts messages lost to relay-queue overflow.
func (n *Network) QueueDrops() int64 { return n.metrics.QueueDrops }

// Metrics returns the accumulated metrics. The pointer stays valid for the
// network's lifetime; callers snapshot by dereferencing.
func (n *Network) Metrics() *Metrics { return &n.metrics }

// ResetMetrics zeroes all counters, e.g. to separate initiation cost from
// computation cost within one run.
func (n *Network) ResetMetrics() {
	for i := range n.metrics.NodeBytes {
		n.metrics.NodeBytes[i] = 0
		n.metrics.NodeMessages[i] = 0
	}
	n.metrics = Metrics{NodeBytes: n.metrics.NodeBytes, NodeMessages: n.metrics.NodeMessages}
}

// SetObserver registers the snooping hook (nil disables).
func (n *Network) SetObserver(o HopObserver) { n.observer = o }

// Fail marks a node as failed (section 7) in the network's liveness view:
// with a shared view the failure is visible to every network over the
// deployment. Transfers through or to it abort at the hop preceding it.
func (n *Network) Fail(id topology.NodeID) { n.live.Fail(id) }

// Revive clears the failure mark.
func (n *Network) Revive(id topology.NodeID) { n.live.Revive(id) }

// Alive reports whether id has not failed.
func (n *Network) Alive(id topology.NodeID) bool { return n.live.Alive(id) }

// chargeHop accounts one transmission attempt of size bytes from node
// `from` to node `to`.
func (n *Network) chargeHop(from, to topology.NodeID, bytes int, kind MsgKind) {
	n.chargeHopN(from, to, bytes, kind, 1)
}

// chargeHopN accounts `attempts` transmission attempts of size bytes on the
// hop from -> to in one batched metrics update. The counters end up
// byte-identical to attempts successive chargeHop calls; batching exists so
// the retransmission loop in Transfer touches each metric once per hop
// instead of once per attempt.
func (n *Network) chargeHopN(from, to topology.NodeID, bytes int, kind MsgKind, attempts int) {
	acct := n.acct
	total := int64(bytes) * int64(attempts)
	acct.TotalBytes += total
	acct.TotalMessages += int64(attempts)
	acct.NodeBytes[from] += total
	acct.NodeMessages[from] += int64(attempts)
	acct.ByKind[kind] += total
	if from == topology.Base || to == topology.Base {
		acct.BaseBytes += total
		acct.BaseMessages += int64(attempts)
	}
}

// Transfer sends payloadBytes along path (path[0] is the sender; each
// consecutive pair must be a radio link). Every hop is charged
// HeaderBytes+payloadBytes per attempt; a lost attempt is retried up to
// MaxRetries times. It returns whether the message reached the end of the
// path and the number of hops traversed (delivered or not).
//
// Failure semantics (section 7) are uniform at every hop: a failed node
// never transmits, so a path whose sender has already failed aborts before
// any charge; a transmission INTO a failed node is charged in full — the
// live sender burns 1+MaxRetries attempts waiting for an ack that never
// comes — but the message is not forwarded, so no hop beyond a failed node
// is ever reached (which is why only path[0] needs the sender check).
//
// flow is optional metadata handed to the snooping observer; pass Flow{}
// when irrelevant.
//
//aspen:allocfree
func (n *Network) Transfer(path []topology.NodeID, payloadBytes int, kind MsgKind, flow Flow) (delivered bool, hops int) {
	if len(path) < 2 {
		return true, 0
	}
	if !n.live.Alive(path[0]) {
		return false, 0
	}
	retries := n.retriesFor(kind)
	n.acct.Attempted++
	size := HeaderBytes + payloadBytes
	for i := 0; i+1 < len(path); i++ {
		from, to := path[i], path[i+1]
		if n.QueueLimit > 0 {
			// The sender must enqueue the message for forwarding; a full
			// queue silently drops it (no transmission happens).
			n.cycleLoad[from]++
			if n.cycleLoad[from] > n.QueueLimit {
				n.acct.QueueDrops++
				return false, i
			}
		}
		if !n.live.Alive(to) {
			// Charged but not forwarded: the sender transmits, gets no
			// ack after all retries, and aborts.
			n.chargeHopN(from, to, size, kind, 1+retries)
			n.acct.Retransmissions += int64(retries)
			n.chargeBackoff(from, to, retries, kind)
			n.acct.Drops++
			return false, i
		}
		var fs LinkState
		if n.faults != nil {
			fs = n.faults.Link(from, to)
		}
		if fs.Cut {
			// A cut link behaves like a dead receiver: the sender cannot
			// know the link (rather than the node) is gone, so it burns
			// the full retry budget before giving up.
			n.chargeHopN(from, to, size, kind, 1+retries)
			n.acct.Retransmissions += int64(retries)
			n.chargeBackoff(from, to, retries, kind)
			n.acct.Drops++
			n.acct.CutDrops++
			return false, i
		}
		// Draw the loss process exactly as before (one draw per attempt,
		// stopping at the first success), then account all attempts in one
		// batched update. A fault-injected per-link loss boost composes
		// with the ambient loss as independent loss events.
		p := n.LossProb
		if fs.ExtraLoss > 0 {
			p += fs.ExtraLoss * (1 - p)
		}
		ok := false
		attempts := 0
		for attempt := 0; attempt <= retries; attempt++ {
			attempts++
			if !n.loss.Bool(p) {
				ok = true
				break
			}
		}
		n.chargeHopN(from, to, size, kind, attempts)
		n.acct.Retransmissions += int64(attempts - 1)
		n.chargeBackoff(from, to, attempts-1, kind)
		if !ok {
			n.acct.Drops++
			return false, i + 1
		}
		if fs.DupProb > 0 && n.loss.Bool(fs.DupProb) {
			// Duplicate delivery: the data arrived but the ack was lost,
			// so the sender transmits one extra charged copy the receiver
			// must deduplicate.
			n.chargeHopN(from, to, size, kind, 1)
			n.acct.Duplicates++
		}
		n.acct.DelaySlots += int64(fs.DelaySlots)
		if n.observer != nil {
			n.observer(from, to, kind, flow)
		}
	}
	n.acct.Delivered++
	return true, len(path) - 1
}

// Broadcast charges one local broadcast of payloadBytes from id (tree
// construction beacons, query dissemination floods).
func (n *Network) Broadcast(id topology.NodeID, payloadBytes int, kind MsgKind) {
	if !n.live.Alive(id) {
		return
	}
	n.chargeHop(id, id, HeaderBytes+payloadBytes, kind)
}

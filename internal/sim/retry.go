package sim

import "repro/internal/topology"

// RetryPolicy is the configurable replacement for the historical hardcoded
// retry constant. MaxRetries is the default per-hop bound (the paper's mote
// experiments use 3); PerKind lets one traffic class retry harder or softer
// than the rest — control and migration traffic is small and load-bearing,
// so deployments typically retry it harder than bulk data; BackoffBytes is
// a linear backoff cost model: every retransmission beyond the first attempt
// charges this many extra bytes to the transmitting node (modelling the
// listen/backoff energy the radio spends between attempts) without counting
// as an extra message.
//
// Build policies from DefaultRetryPolicy and override fields: the zero
// value means "0 retries for every kind", which is expressible but almost
// never what a caller wants.
type RetryPolicy struct {
	// MaxRetries bounds retransmission attempts per hop after the first
	// for kinds without a PerKind override.
	MaxRetries int
	// PerKind overrides MaxRetries for one MsgKind; entries < 0 inherit
	// MaxRetries. Indexed by MsgKind (Control, Data, Result, Migration).
	PerKind [4]int
	// BackoffBytes is charged per retransmission (attempts beyond the
	// first) on top of the retransmitted frame itself.
	BackoffBytes int
}

// DefaultRetryPolicy returns the paper's policy: 3 retries for every kind,
// no backoff cost.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, PerKind: [4]int{-1, -1, -1, -1}}
}

// SetRetryPolicy installs p. The policy's MaxRetries replaces the network's
// public MaxRetries field, so the two stay one knob; PerKind overrides and
// the backoff cost only ever come from the policy.
func (n *Network) SetRetryPolicy(p RetryPolicy) {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	n.MaxRetries = p.MaxRetries
	n.retry = p
}

// Retry returns the installed policy with MaxRetries reflecting the
// network's current public field (which direct writers may have changed
// since SetRetryPolicy).
func (n *Network) Retry() RetryPolicy {
	p := n.retry
	p.MaxRetries = n.MaxRetries
	return p
}

// retriesFor resolves the per-hop retry bound for one traffic class: the
// PerKind override when set, the network's MaxRetries otherwise.
func (n *Network) retriesFor(kind MsgKind) int {
	if int(kind) < len(n.retry.PerKind) {
		if r := n.retry.PerKind[kind]; r >= 0 {
			return r
		}
	}
	return n.MaxRetries
}

// chargeBackoff accounts the backoff cost of `retries` retransmissions on
// the hop from -> to: bytes only, no message count — backoff is radio time,
// not frames. A no-op under the default policy, so accounting stays
// byte-identical to the pre-policy engine unless a backoff cost is set.
func (n *Network) chargeBackoff(from, to topology.NodeID, retries int, kind MsgKind) {
	if n.retry.BackoffBytes <= 0 || retries <= 0 {
		return
	}
	acct := n.acct
	b := int64(n.retry.BackoffBytes) * int64(retries)
	acct.TotalBytes += b
	acct.NodeBytes[from] += b
	acct.ByKind[kind] += b
	if from == topology.Base || to == topology.Base {
		acct.BaseBytes += b
	}
}

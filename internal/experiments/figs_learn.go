package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/ght"
	"repro/internal/join"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:      "fig10",
		Title:   "Learning gain/loss: traffic with wrong initial estimates, with and without learning (Queries 0-2, 200 cycles)",
		Columns: []string{"query", "actual", "optimized-for", "learning", "traffic KB"},
		Run:     learningMatrix,
	})
	register(&Experiment{
		ID:      "fig11",
		Title:   "Learning vs duration: Query 0 (sigma_st=20%, w=3) with learning at 200/400/800 sampling cycles — wrong estimates converge toward correct ones",
		Columns: []string{"cycles", "actual", "optimized-for", "traffic KB"},
		Run:     learningDurations,
	})
	register(&Experiment{
		ID:      "fig12",
		Title:   "Spatial and temporal skew: initial Sel1/Sel2 estimates vs full knowledge vs learning (Queries 1-2, 800 cycles)",
		Columns: []string{"mode", "query", "scheme", "traffic MB"},
		Run:     skewLearning,
	})
	register(&Experiment{
		ID:      "fig13",
		Title:   "Intel dataset, Query 3: base/max/total traffic for Yang+07, GHT, Naive-Base, In-Net and In-Net learn (log-scale in the paper)",
		Columns: []string{"algorithm", "metric", "traffic KB"},
		Run:     intelLearning,
	})
}

// learnVariant returns Innet-cmpg with or without learning (Fig 10/11 run
// the full MPO stack, per the paper's captions).
func learnVariant(learn bool) join.Algorithm {
	return join.Innet{Opts: join.InnetOptions{
		Multicast: true, PathCollapse: true, GroupOpt: true, Learn: learn,
	}}
}

// learningMatrix reproduces Figure 10: for each query, each actual stage
// and each assumed stage, traffic with learning off and on.
func learningMatrix(cfg Config) []Row {
	queries := []struct {
		name string
		sst  float64
	}{{"Q0", 0.20}, {"Q1", 0.05}, {"Q2", 0.10}}
	if cfg.Quick {
		queries = queries[:1]
	}
	var rows []Row
	stages := ratioStages(cfg)
	for _, q := range queries {
		for _, actual := range stages {
			for _, assumed := range stages {
				s := setup{
					topoKind: topology.ModerateRandom,
					query:    q.name,
					rates:    workload.Rates{SigmaS: actual.S, SigmaT: actual.T, SigmaST: q.sst},
					cycles:   learningCycles(cfg, 200),
					optOverride: &costmodel.Params{
						SigmaS: assumed.S, SigmaT: assumed.T, SigmaST: q.sst,
					},
				}
				c := runsFor(cfg, 3)
				rows = append(rows,
					Row{Labels: []string{q.name, actual.Name, assumed.Name, "off"}, Value: averaged(c, s, learnVariant(false), totalKB)},
					Row{Labels: []string{q.name, actual.Name, assumed.Name, "on"}, Value: averaged(c, s, learnVariant(true), totalKB)},
				)
			}
		}
	}
	return rows
}

// learningDurations reproduces Figure 11: the same matrix diagonal band at
// increasing run lengths, learning always on — longer runs wash out wrong
// initial estimates.
func learningDurations(cfg Config) []Row {
	durations := []int{200, 400, 800}
	if cfg.Quick {
		durations = []int{100, 200}
	}
	var rows []Row
	stages := ratioStages(cfg)
	for _, d := range durations {
		for _, actual := range stages {
			for _, assumed := range stages {
				s := setup{
					topoKind: topology.ModerateRandom,
					query:    "Q0",
					rates:    workload.Rates{SigmaS: actual.S, SigmaT: actual.T, SigmaST: 0.20},
					cycles:   d,
					optOverride: &costmodel.Params{
						SigmaS: assumed.S, SigmaT: assumed.T, SigmaST: 0.20,
					},
				}
				rows = append(rows, Row{
					Labels: []string{fmt.Sprintf("%d", d), actual.Name, assumed.Name},
					Value:  averaged(runsFor(cfg, 3), s, learnVariant(true), totalKB),
				})
			}
		}
	}
	return rows
}

// Sel1 and Sel2 are the Figure 12 per-node selectivity profiles.
var (
	sel1 = workload.Rates{SigmaS: 0.10, SigmaT: 1.00, SigmaST: 0.05}
	sel2 = workload.Rates{SigmaS: 1.00, SigmaT: 0.10, SigmaST: 0.20}
)

// skewLearning reproduces Figure 12: (a) spatial skew — half the nodes
// generate under Sel1, half under Sel2; (b) temporal change — all nodes
// switch from Sel1 to Sel2 mid-run. Five schemes per query: optimize for
// Sel1, for Sel2, full knowledge (oracle), and the two learning runs.
func skewLearning(cfg Config) []Row {
	var rows []Row
	cycles := learningCycles(cfg, 800)
	toMB := func(r *join.Result) float64 { return float64(r.TotalBytes) / (1024 * 1024) }
	for _, mode := range []string{"spatial", "temporal"} {
		for _, q := range []string{"Q1", "Q2"} {
			base := setup{
				topoKind: topology.ModerateRandom,
				query:    q,
				cycles:   cycles,
			}
			if mode == "spatial" {
				base.rates = sel1 // defaults; skew overrides half
				base.skew = &skewSpec{sel1: sel1, sel2: sel2}
			} else {
				base.rates = sel1
				base.temporalSwitch = &switchSpec{at: cycles / 2, rates: sel2}
			}
			mid := workload.Rates{
				SigmaS:  (sel1.SigmaS + sel2.SigmaS) / 2,
				SigmaT:  (sel1.SigmaT + sel2.SigmaT) / 2,
				SigmaST: (sel1.SigmaST + sel2.SigmaST) / 2,
			}
			schemes := []struct {
				name  string
				opt   workload.Rates
				learn bool
			}{
				{"Sel1", sel1, false},
				{"Sel2", sel2, false},
				{"Full knowledge", mid, false},
				{"Sel1 learn", sel1, true},
				{"Sel2 learn", sel2, true},
			}
			for _, sc := range schemes {
				s := base
				s.optOverride = &costmodel.Params{
					SigmaS: sc.opt.SigmaS, SigmaT: sc.opt.SigmaT, SigmaST: sc.opt.SigmaST,
				}
				rows = append(rows, Row{
					Labels: []string{mode, q, sc.name},
					Value:  averaged(runsFor(cfg, 3), s, learnVariant(sc.learn), toMB),
				})
			}
		}
	}
	return rows
}

// intelLearning reproduces Figure 13: Query 3 on the Intel topology,
// initially optimized for sigma = 100% everywhere (which places all joins
// at the base), with learning migrating join nodes into the network.
func intelLearning(cfg Config) []Row {
	s := setup{
		topoKind: topology.Intel,
		query:    "Q3",
		rates:    workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.20},
		cycles:   learningCycles(cfg, 200),
	}
	wrong := &costmodel.Params{SigmaS: 1, SigmaT: 1, SigmaST: 1}
	b := build(s, cfg.Seed)
	algs := []struct {
		name string
		alg  join.Algorithm
		opt  *costmodel.Params
	}{
		{"Yang+07", join.Yang07{}, nil},
		{"GHT/GPSR", join.Hashed{Label: "GHT", Router: ght.NewRouter(b.topo)}, nil},
		{"Naive/Base", join.Base{}, nil},
		{"In-net", join.Innet{}, nil}, // full knowledge
		{"In-net learn", join.Innet{Opts: join.InnetOptions{Learn: true}}, wrong},
	}
	var rows []Row
	for _, a := range algs {
		ss := s
		ss.optOverride = a.opt
		sums := averagedMulti(runsFor(cfg, 3), ss, a.alg, baseKB, maxNodeKB, totalKB)
		rows = append(rows,
			Row{Labels: []string{a.name, "base"}, Value: sums[0]},
			Row{Labels: []string{a.name, "max-node"}, Value: sums[1]},
			Row{Labels: []string{a.name, "total"}, Value: sums[2]},
		)
	}
	return rows
}

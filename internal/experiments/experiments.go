// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Experiment produces the rows/series the corresponding
// figure plots; the aspen-exp CLI prints them, and bench_test.go wraps
// each as a benchmark. Absolute byte counts differ from the paper (our
// substrate is a simulator with its own wire constants; see DESIGN.md),
// but the shapes — who wins, by roughly what factor, where crossovers
// fall — are the reproduction target, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config controls how an experiment runs.
type Config struct {
	// Runs is the number of seeds averaged per data point (the paper uses
	// 9). Quick mode reduces it.
	Runs int
	// Quick trims sweeps (fewer cycles, fewer stages) so the whole suite
	// can run in CI and in benchmarks; full mode reproduces the paper's
	// parameters.
	Quick bool
	// Seed is the base seed; run i uses Seed+i.
	Seed uint64
	// Workers sizes the engine.Sweep worker pool that fans per-seed runs
	// across CPU cores (0 = runtime.NumCPU()). Results are byte-identical
	// for any worker count: every run derives all randomness from its
	// seed index and results are collected in seed order.
	Workers int
}

// DefaultConfig is the paper-faithful configuration.
func DefaultConfig() Config { return Config{Runs: 9, Seed: 1} }

// QuickConfig is the CI/bench configuration.
func QuickConfig() Config { return Config{Runs: 3, Quick: true, Seed: 1} }

// Row is one data point of a figure: a label path (e.g. stage, join
// selectivity, algorithm, metric) and the summarized value.
type Row struct {
	Labels []string
	Value  stats.Summary
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the registry key ("fig2", "tab3", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Columns names the label columns followed by the value column.
	Columns []string
	// Run produces the data points.
	Run func(cfg Config) []Row
}

var registry = map[string]*Experiment{}
var order []string

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Lookup returns the experiment with the given ID, or nil.
func Lookup(id string) *Experiment { return registry[id] }

// IDs returns all registered experiment IDs in registration order.
func IDs() []string {
	out := append([]string{}, order...)
	return out
}

// All returns every experiment sorted by ID for deterministic listings.
func All() []*Experiment {
	ids := IDs()
	sort.Strings(ids)
	out := make([]*Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

// Render formats an experiment's rows as an aligned table.
func Render(e *Experiment, rows []Row) string {
	tb := stats.NewTable(e.Columns...)
	for _, r := range rows {
		tb.AddRow(r.Labels, r.Value)
	}
	return fmt.Sprintf("%s — %s\n%s", e.ID, e.Title, tb.String())
}

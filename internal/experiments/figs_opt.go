package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/join"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:      "fig6",
		Title:   "Centralized vs distributed initiation: traffic at the base station and initiation latency (10 random 1:1 pairs)",
		Columns: []string{"scheme", "metric", "value"},
		Run:     centralizedVsDistributed,
	})
	register(&Experiment{
		ID:      "fig7",
		Title:   "Optimal (O) vs distributed (D) join computation traffic across topologies (10 random 1:1 pairs, sigma_s=1, sigma_t=sigma_st=0)",
		Columns: []string{"topology", "scheme", "traffic KB"},
		Run:     optimalVsDistributed,
	})
	register(&Experiment{
		ID:      "fig8",
		Title:   "MPO cost-model validation: Innet-cmpg optimized for each assumed ratio under each actual ratio (a: Query 1, sigma_st=5%, w=3; b: Query 2, sigma_st=10%, w=1)",
		Columns: []string{"query", "actual", "optimized-for", "traffic KB"},
		Run: func(cfg Config) []Row {
			var rows []Row
			for _, r := range matrixRun(cfg, "Q1", 0.05, true) {
				rows = append(rows, Row{Labels: append([]string{"Q1"}, r.Labels...), Value: r.Value})
			}
			for _, r := range matrixRun(cfg, "Q2", 0.10, true) {
				rows = append(rows, Row{Labels: append([]string{"Q2"}, r.Labels...), Value: r.Value})
			}
			return rows
		},
	})
	register(&Experiment{
		ID:      "fig9",
		Title:   "MPO breakdown: (a) traffic vs run duration for every method; (b) traffic at 1000 cycles vs join selectivity for the Innet variants (Query 2, w=1)",
		Columns: []string{"part", "x", "algorithm", "traffic KB"},
		Run:     mpoBreakdown,
	})
}

// innetVariant returns plain Innet or Innet-cmpg.
func innetVariant(cmpg bool) join.Algorithm {
	if cmpg {
		return join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}}
	}
	return join.Innet{}
}

// fig6Setup is the shared workload: a query of 1:1 joins between 10 random
// pairs.
func fig6Setup(cycles int) setup {
	return setup{
		topoKind: topology.ModerateRandom,
		query:    "Q0",
		nPairs:   10,
		rates:    workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2},
		cycles:   cycles,
	}
}

// centralizedVsDistributed reproduces Figure 6. The centralized scheme
// collects, at the base station, every node's connectivity and static
// attribute information, computes the plan, and floods decisions back;
// its initiation latency is dominated by the serialization of all those
// messages through the base's single radio. The distributed scheme is the
// In-Net initiation, whose searches proceed in parallel.
func centralizedVsDistributed(cfg Config) []Row {
	type fig6Run struct {
		cBase, dBase, cLat, dLat float64
	}
	runs := engine.Sweep(cfg.Runs, cfg.Workers, func(i int) fig6Run {
		var out fig6Run
		seed := cfg.Seed + uint64(i)*7919
		// Distributed: run In-Net and measure its initiation-phase base
		// traffic.
		b := build(fig6Setup(1), seed)
		res := join.Innet{}.Run(b.cfg)
		out.dBase = float64(res.InitBaseBytes) / 1024
		// Latency: parallel searches; bounded by the deepest exploration
		// chain, ~2x the network diameter in transmission cycles.
		depth := 0
		for n := 0; n < b.topo.N(); n++ {
			if d := b.cfg.Sub.DepthToBase(topology.NodeID(n)); d > depth {
				depth = d
			}
		}
		out.dLat = float64(2 * depth)
		_ = res

		// Centralized: every node ships its neighbour list and static
		// attributes to the base, then the base distributes per-pair
		// decisions back down.
		b2 := build(fig6Setup(1), seed)
		net := b2.cfg.Net
		msgsThroughBase := 0
		for n := 0; n < b2.topo.N(); n++ {
			id := topology.NodeID(n)
			payload := 4*sim.ValueBytes + len(b2.topo.Neighbors(id))*sim.ValueBytes
			net.Transfer(b2.cfg.Sub.PathToBase(id), payload, sim.Control, sim.Flow{})
			msgsThroughBase++
		}
		for _, g := range b2.spec.Groups() {
			for _, pr := range g.Pairs {
				for _, end := range pr {
					net.Transfer(b2.cfg.Sub.PathToBase(end).Reverse(), 3*sim.ValueBytes, sim.Control, sim.Flow{})
					msgsThroughBase++
				}
			}
		}
		out.cBase = float64(net.Metrics().BaseBytes) / 1024
		// Latency: the base's radio serializes one message per
		// transmission cycle, so collection takes ~#messages cycles plus
		// the depth of the deepest sender.
		depth2 := 0
		for n := 0; n < b2.topo.N(); n++ {
			if d := b2.cfg.Sub.DepthToBase(topology.NodeID(n)); d > depth2 {
				depth2 = d
			}
		}
		out.cLat = float64(msgsThroughBase + 2*depth2)
		return out
	})
	var cBase, dBase, cLat, dLat []float64
	for _, r := range runs {
		cBase = append(cBase, r.cBase)
		dBase = append(dBase, r.dBase)
		cLat = append(cLat, r.cLat)
		dLat = append(dLat, r.dLat)
	}
	return []Row{
		{Labels: []string{"centralized", "base traffic KB"}, Value: stats.Summarize(cBase)},
		{Labels: []string{"distributed", "base traffic KB"}, Value: stats.Summarize(dBase)},
		{Labels: []string{"centralized", "latency (txn cycles)"}, Value: stats.Summarize(cLat)},
		{Labels: []string{"distributed", "latency (txn cycles)"}, Value: stats.Summarize(dLat)},
	}
}

// optimalVsDistributed reproduces Figure 7: the decentralized placement's
// computation traffic versus a centralized oracle that places each join
// node optimally on the true shortest path, across all five topologies.
func optimalVsDistributed(cfg Config) []Row {
	var rows []Row
	for _, kind := range topology.Kinds {
		s := fig6Setup(cyclesFor(cfg, 100))
		s.topoKind = kind
		// sigma_s=1, sigma_t=sigma_st=0 per the paper describes the DATA;
		// the optimizer runs with symmetric default estimates (otherwise
		// the model would place every join at s itself and both schemes
		// would be trivially free — the figure compares placement/path
		// quality, not selectivity knowledge).
		s.rates = workload.Rates{SigmaS: 1, SigmaT: 0, SigmaST: 0}
		s.optOverride = &costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}

		pairsPerRun := engine.Sweep(cfg.Runs, cfg.Workers, func(i int) [2]float64 {
			seed := cfg.Seed + uint64(i)*7919
			b := build(s, seed)
			res := join.Innet{}.Run(b.cfg)
			// Oracle: each s sends along the true shortest path to the
			// optimal join node; with sigma_t=sigma_st=0 the optimum is
			// simply min over j on the shortest path of sigma_s*D_sj —
			// i.e. joining at s itself, costing 0 transmissions... except
			// results still need to reach the base only when produced
			// (never, sigma_st=0). The meaningful oracle cost is the
			// shortest-path data delivery from s to the optimal join
			// node chosen by the full expression on the true path.
			b2 := build(s, seed)
			return [2]float64{float64(res.TotalBytes-res.InitBytes) / 1024, oracleRun(b2)}
		})
		var dVals, oVals []float64
		for _, p := range pairsPerRun {
			dVals = append(dVals, p[0])
			oVals = append(oVals, p[1])
		}
		rows = append(rows,
			Row{Labels: []string{kind.String(), "O"}, Value: stats.Summarize(oVals)},
			Row{Labels: []string{kind.String(), "D"}, Value: stats.Summarize(dVals)},
		)
	}
	return rows
}

// oracleRun computes the centralized-optimal computation traffic for the
// Figure 7 workload: for each pair, place the join node by minimizing the
// section 3.1 expression over the TRUE shortest s-t path, then charge the
// per-cycle deliveries along those paths.
func oracleRun(b *built) float64 {
	var total float64
	opt := b.cfg.Opt
	paths := newPathCache(b.topo)
	for _, g := range b.spec.Groups() {
		for _, pr := range g.Pairs {
			s, t := pr[0], pr[1]
			path := paths.shortestPath(s, t)
			depths := make([]int, len(path))
			for i, n := range path {
				depths[i] = b.cfg.Sub.DepthToBase(n)
			}
			pl := costmodel.BestPlacement(opt, depths)
			for cycle := 0; cycle < b.cfg.Cycles; cycle++ {
				sv, sSend := b.cfg.Sampler.Sample(s, 0, cycle)
				tv, tSend := b.cfg.Sampler.Sample(t, 1, cycle)
				_ = sv
				_ = tv
				if pl.AtBase {
					if sSend {
						total += float64(b.cfg.Sub.DepthToBase(s) * (sim.HeaderBytes + sim.TupleBytes))
					}
					if tSend {
						total += float64(b.cfg.Sub.DepthToBase(t) * (sim.HeaderBytes + sim.TupleBytes))
					}
					continue
				}
				if sSend {
					total += float64(pl.Index * (sim.HeaderBytes + sim.TupleBytes))
				}
				if tSend {
					total += float64((len(path) - 1 - pl.Index) * (sim.HeaderBytes + sim.TupleBytes))
				}
			}
		}
	}
	return total / 1024
}

// pathCache answers true-shortest-path queries over one topology through
// a topology.ParentCache: a pair loop costs one BFS per distinct
// destination instead of one per pair, and paths are identical to a fresh
// BFS per query (same lowest-parent tie-breaking).
type pathCache struct {
	parents *topology.ParentCache
}

func newPathCache(topo *topology.Topology) *pathCache {
	return &pathCache{parents: topology.NewParentCache(topo)}
}

// shortestPath returns a true shortest hop path between a and b, walking
// the memoized parent vector toward b.
func (c *pathCache) shortestPath(a, b topology.NodeID) routing.Path {
	parent := c.parents.Parents(b)
	p := routing.Path{a}
	for at := a; at != b; {
		at = parent[at]
		p = append(p, at)
	}
	return p
}

// mpoBreakdown reproduces Figure 9.
func mpoBreakdown(cfg Config) []Row {
	var rows []Row
	variants := []join.Algorithm{
		join.Naive{},
		join.Base{},
		join.Innet{},
		join.Innet{Opts: join.InnetOptions{Multicast: true}},
		join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}},
		join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}},
	}
	// (a) traffic vs duration.
	durations := []int{30, 60, 120, 240, 300}
	if cfg.Quick {
		durations = []int{30, 60}
	}
	for _, d := range durations {
		s := setup{
			topoKind: topology.ModerateRandom,
			query:    "Q2",
			rates:    workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1},
			cycles:   d,
		}
		for _, alg := range variants {
			rows = append(rows, Row{
				Labels: []string{"a", fmt.Sprintf("%d cycles", d), alg.Name()},
				Value:  averaged(runsFor(cfg, 3), s, alg, totalKB),
			})
		}
	}
	// (b) traffic at long duration vs join selectivity, Innet variants.
	longRun := cyclesFor(cfg, 1000)
	if cfg.Quick {
		longRun = 100
	}
	for _, sst := range joinSels(cfg) {
		s := setup{
			topoKind: topology.ModerateRandom,
			query:    "Q2",
			rates:    workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: sst},
			cycles:   longRun,
		}
		for _, alg := range variants[2:] {
			rows = append(rows, Row{
				Labels: []string{"b", fmt.Sprintf("%.0f%%", sst*100), alg.Name()},
				Value:  averaged(runsFor(cfg, 3), s, alg, totalKB),
			})
		}
	}
	return rows
}

package experiments

import (
	"reflect"
	"testing"
)

// TestWorkerCountInvariance: every experiment's output must be
// byte-identical whether per-seed runs execute on one worker or on a
// concurrent pool — the determinism contract of the engine.Sweep fan-out.
// A pool of 4 interleaves goroutines even on a single-CPU machine, which
// is exactly the scheduling nondeterminism the contract must survive. A
// sample of experiments exercising all three parallelized paths
// (averagedMulti, loadDistribution, the fig6/fig7 custom sweeps) keeps the
// test fast.
func TestWorkerCountInvariance(t *testing.T) {
	for _, id := range []string{"fig2", "fig5", "fig6", "fig7"} {
		e := Lookup(id)
		if e == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		seq := Config{Runs: 3, Quick: true, Seed: 1, Workers: 1}
		par := Config{Runs: 3, Quick: true, Seed: 1, Workers: 4}
		a := e.Run(seq)
		b := e.Run(par)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: results differ between 1 and 4 workers", id)
		}
	}
}

package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:      "fig2",
		Title:   "Query 1, w=3, 100 sampling cycles, 100 nodes: total traffic and base-station load per algorithm across selectivity stages",
		Columns: []string{"ratio", "sigma_st", "algorithm", "metric", "traffic KB"},
		Run:     func(cfg Config) []Row { return algorithmSweep(cfg, "Q1") },
	})
	register(&Experiment{
		ID:      "fig3",
		Title:   "Query 2, w=1, 100 sampling cycles, 100 nodes: total traffic and base-station load per algorithm across selectivity stages",
		Columns: []string{"ratio", "sigma_st", "algorithm", "metric", "traffic KB"},
		Run:     func(cfg Config) []Row { return algorithmSweep(cfg, "Q2") },
	})
	register(&Experiment{
		ID:      "fig4",
		Title:   "Cost-model validation on Query 0 (sigma_st=20%, w=3): traffic when optimizing for each assumed ratio while data follows each actual ratio — the diagonal should win",
		Columns: []string{"actual", "optimized-for", "traffic KB"},
		Run: func(cfg Config) []Row {
			return matrixRun(cfg, "Q0", 0.20, false)
		},
	})
	register(&Experiment{
		ID:      "fig5",
		Title:   "Load distribution: traffic at the 15 most-loaded nodes per algorithm (Query 1 workload)",
		Columns: []string{"algorithm", "rank", "traffic KB"},
		Run:     loadDistribution,
	})
}

// algorithmSweep reproduces the Figure 2/3 bar groups: stages x join
// selectivities x algorithms, reporting total traffic and base load.
func algorithmSweep(cfg Config, query string) []Row {
	cfg = runsFor(cfg, cfg.Runs)
	var rows []Row
	for _, stage := range ratioStages(cfg) {
		for _, sst := range joinSels(cfg) {
			s := setup{
				topoKind: topology.ModerateRandom,
				query:    query,
				rates:    workload.Rates{SigmaS: stage.S, SigmaT: stage.T, SigmaST: sst},
				cycles:   cyclesFor(cfg, 100),
			}
			b := build(s, cfg.Seed)
			for _, alg := range moteAlgorithms(b.topo) {
				sstLabel := fmt.Sprintf("%.0f%%", sst*100)
				sums := averagedMulti(cfg, s, alg, totalKB, baseKB)
				rows = append(rows,
					Row{Labels: []string{stage.Name, sstLabel, alg.Name(), "total"}, Value: sums[0]},
					Row{Labels: []string{stage.Name, sstLabel, alg.Name(), "base"}, Value: sums[1]},
				)
			}
		}
	}
	return rows
}

// matrixRun reproduces the Figure 4 / Figure 8 matrices: run with every
// actual stage while the optimizer assumes every stage. cmpg selects the
// Innet-cmpg variant (Fig 8) instead of plain Innet (Fig 4).
func matrixRun(cfg Config, query string, sst float64, cmpg bool) []Row {
	var rows []Row
	stages := ratioStages(cfg)
	for _, actual := range stages {
		for _, assumed := range stages {
			s := setup{
				topoKind: topology.ModerateRandom,
				query:    query,
				rates:    workload.Rates{SigmaS: actual.S, SigmaT: actual.T, SigmaST: sst},
				cycles:   cyclesFor(cfg, 100),
				optOverride: &costmodel.Params{
					SigmaS: assumed.S, SigmaT: assumed.T, SigmaST: sst,
				},
			}
			alg := innetVariant(cmpg)
			rows = append(rows, Row{
				Labels: []string{actual.Name, assumed.Name},
				Value:  averaged(cfg, s, alg, totalKB),
			})
		}
	}
	return rows
}

// loadDistribution reproduces Figure 5: per-algorithm traffic at the 15
// most-loaded nodes.
func loadDistribution(cfg Config) []Row {
	s := setup{
		topoKind: topology.ModerateRandom,
		query:    "Q1",
		rates:    workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1},
		cycles:   cyclesFor(cfg, 100),
	}
	b := build(s, cfg.Seed)
	algs := moteAlgorithms(b.topo)
	// Figure 5 also includes Innet-cm and Innet-cmp; add -cm to cover the
	// multicast-only point.
	var rows []Row
	for _, alg := range algs {
		// Average the rank-k loads across runs (seeds fanned across the
		// worker pool; collected in seed order).
		const ranks = 15
		tops := engine.Sweep(cfg.Runs, cfg.Workers, func(i int) []int64 {
			bb := build(s, cfg.Seed+uint64(i)*7919)
			alg.Run(bb.cfg)
			return bb.cfg.Net.Metrics().TopLoads(ranks)
		})
		sums := make([][]float64, ranks)
		for _, top := range tops {
			for k := 0; k < ranks && k < len(top); k++ {
				sums[k] = append(sums[k], float64(top[k])/1024)
			}
		}
		for k := 0; k < ranks; k++ {
			rows = append(rows, Row{
				Labels: []string{alg.Name(), fmt.Sprintf("%d", k+1)},
				Value:  summarizeOrZero(sums[k]),
			})
		}
	}
	return rows
}

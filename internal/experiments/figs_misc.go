package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/dht"
	"repro/internal/ght"
	"repro/internal/join"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	register(&Experiment{
		ID:      "fig14",
		Title:   "Join-node failure (single pair): result delay and total traffic with and without a mid-run permanent failure, sigma_st in {10%, 20%}",
		Columns: []string{"sigma_st", "condition", "metric", "value"},
		Run:     failureExperiment,
	})
	register(&Experiment{
		ID:      "fig16",
		Title:   "Path quality on 100-node mote networks: average path length and max node load for 1/2/3 trees, GPSR, and the full graph",
		Columns: []string{"topology", "scheme", "metric", "value"},
		Run:     func(cfg Config) []Row { return pathQuality(cfg, false) },
	})
	register(&Experiment{
		ID:      "fig17",
		Title:   "Path quality on 100-node mesh networks: 1/2/3 trees and DHT",
		Columns: []string{"topology", "scheme", "metric", "value"},
		Run:     func(cfg Config) []Row { return pathQuality(cfg, true) },
	})
	register(&Experiment{
		ID:      "fig18",
		Title:   "Mesh scale-up: path length and normalized max node load at 50/100/200 nodes (medium density)",
		Columns: []string{"size", "scheme", "metric", "value"},
		Run:     meshScaleUp,
	})
	register(&Experiment{
		ID:      "fig19",
		Title:   "Query 1, w=3 on 100-node mesh networks (message counts): Naive, Base, DHT, Innet-cmg",
		Columns: []string{"ratio", "sigma_st", "algorithm", "metric", "1000s msgs"},
		Run:     func(cfg Config) []Row { return meshSweep(cfg, "Q1") },
	})
	register(&Experiment{
		ID:      "fig20",
		Title:   "Query 2, w=1 on 100-node mesh networks (message counts): Naive, Base, DHT, Innet-cmg",
		Columns: []string{"ratio", "sigma_st", "algorithm", "metric", "1000s msgs"},
		Run:     func(cfg Config) []Row { return meshSweep(cfg, "Q2") },
	})
	register(&Experiment{
		ID:      "tab3",
		Title:   "Table 3 cross-check: analytic computation cost (tuple-hops/cycle) vs measured data traffic for Naive and Base",
		Columns: []string{"algorithm", "source", "tuple-hops/cycle"},
		Run:     table3Check,
	})
	register(&Experiment{
		ID:      "mobility",
		Title:   "Appendix G: mobile leaf node — routing-table update traffic and propagation delay after a re-parent",
		Columns: []string{"metric", "value"},
		Run:     mobility,
	})
	register(&Experiment{
		ID:      "ablation",
		Title:   "Design ablations: join-node placement policy and adaptivity trigger ratio",
		Columns: []string{"part", "variant", "traffic KB"},
		Run:     ablations,
	})
}

// failureExperiment reproduces Figure 14: a single join pair; fail the
// join node at 45%/50%/55% into the run and average; compare against the
// failure-free baseline.
func failureExperiment(cfg Config) []Row {
	var rows []Row
	for _, sst := range []float64{0.10, 0.20} {
		s := setup{
			topoKind: topology.ModerateRandom,
			query:    "Q0",
			nPairs:   1,
			rates:    workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: sst},
			cycles:   cyclesFor(cfg, 100),
		}
		var dNo, dYes, tNo, tYes []float64
		// Search seeds until cfg.Runs of them place the pair's join node
		// at an interior node (failing a producer itself would be a
		// different experiment).
		for i := 0; len(dYes) < cfg.Runs && i < cfg.Runs*8; i++ {
			seed := cfg.Seed + uint64(i)*7919
			b := build(s, seed)
			baseRes := join.Innet{}.Run(b.cfg)
			if len(baseRes.PairJoinNodes) == 0 {
				continue // pair joined at base; nothing to fail
			}
			victim := baseRes.PairJoinNodes[0]
			if b.spec.EligibleS(victim) || b.spec.EligibleT(victim) {
				continue
			}
			dNo = append(dNo, baseRes.MeanDelay())
			tNo = append(tNo, float64(baseRes.TotalBytes)/1024)
			// Fail at 45%, 50% and 55% of the run and average, as the
			// paper does.
			var dSum, tSum float64
			points := 0
			for _, frac := range []float64{0.45, 0.50, 0.55} {
				fb := build(s, seed)
				fb.cfg.FailNode = victim
				fb.cfg.FailCycle = int(frac * float64(s.cycles))
				res := join.Innet{}.Run(fb.cfg)
				dSum += res.MeanDelay()
				tSum += float64(res.TotalBytes) / 1024
				points++
			}
			dYes = append(dYes, dSum/float64(points))
			tYes = append(tYes, tSum/float64(points))
		}
		label := fmt.Sprintf("%.0f%%", sst*100)
		rows = append(rows,
			Row{Labels: []string{label, "no failure", "delay (cycles)"}, Value: stats.Summarize(dNo)},
			Row{Labels: []string{label, "with failure", "delay (cycles)"}, Value: stats.Summarize(dYes)},
			Row{Labels: []string{label, "no failure", "traffic KB"}, Value: stats.Summarize(tNo)},
			Row{Labels: []string{label, "with failure", "traffic KB"}, Value: stats.Summarize(tYes)},
		)
	}
	return rows
}

// pathQuality reproduces Figures 16 (mote: GPSR + full graph) and 17
// (mesh: DHT): average path length and maximum node load over sampled node
// pairs for each substrate scheme.
func pathQuality(cfg Config, mesh bool) []Row {
	var rows []Row
	kinds := topology.Kinds
	if cfg.Quick {
		kinds = kinds[1:3]
	}
	for _, kind := range kinds {
		topo := topology.Generate(kind, 100, 1)
		schemes := []string{"1 Tree", "2 Trees", "3 Trees"}
		if mesh {
			schemes = append(schemes, "DHT")
		} else {
			schemes = append(schemes, "GPSR", "Full graph")
		}
		for _, scheme := range schemes {
			avg, maxLoad := pathStats(topo, scheme, cfg)
			rows = append(rows,
				Row{Labels: []string{kind.String(), scheme, "avg path (hops)"}, Value: stats.Summarize([]float64{avg})},
				Row{Labels: []string{kind.String(), scheme, "max load (1000s paths)"}, Value: stats.Summarize([]float64{maxLoad / 1000})},
			)
		}
	}
	return rows
}

// pathStats computes average path length and max per-node path load for
// one routing scheme over all ordered node pairs.
func pathStats(topo *topology.Topology, scheme string, cfg Config) (avgHops, maxLoad float64) {
	var pathOf func(a, b topology.NodeID) routing.Path
	switch scheme {
	case "1 Tree", "2 Trees", "3 Trees":
		trees := int(scheme[0] - '0')
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: trees}, nil)
		pathOf = sub.BestTreePath
	case "GPSR":
		r := ght.NewRouter(topo)
		pathOf = r.Route
	case "DHT":
		ring := dht.NewRing(topo)
		// A DHT lookup rendezvouses through the hashed home node: the
		// underlay path is src -> home(dst) -> dst.
		pathOf = func(a, b topology.NodeID) routing.Path {
			home := ring.HomeNode(int32(b))
			p1 := ring.Route(a, home)
			p2 := ring.Route(home, b)
			return p1.Concat(p2)
		}
	case "Full graph":
		// One memoized BFS parent vector per destination: the all-pairs
		// loop below costs n traversals instead of n^2.
		paths := newPathCache(topo)
		pathOf = paths.shortestPath
	default:
		panic("unknown scheme " + scheme)
	}
	load := make([]int, topo.N())
	total, count := 0, 0
	step := 1
	if cfg.Quick {
		step = 3
	}
	for a := 0; a < topo.N(); a += step {
		for b := 0; b < topo.N(); b++ {
			if a == b {
				continue
			}
			p := pathOf(topology.NodeID(a), topology.NodeID(b))
			total += p.Hops()
			count++
			for _, n := range p {
				load[n]++
			}
		}
	}
	maxL := 0
	for _, l := range load {
		if l > maxL {
			maxL = l
		}
	}
	return float64(total) / float64(count), float64(maxL)
}

// meshScaleUp reproduces Figure 18: 50/100/200-node medium topologies,
// 1/2/3 trees, path length and max load normalized per path.
func meshScaleUp(cfg Config) []Row {
	var rows []Row
	sizes := []int{50, 100, 200}
	if cfg.Quick {
		sizes = []int{50, 100}
	}
	for _, n := range sizes {
		topo := topology.Generate(topology.MediumRandom, n, 1)
		for trees := 1; trees <= 3; trees++ {
			scheme := fmt.Sprintf("%d Tree", trees)
			if trees > 1 {
				scheme += "s"
			}
			avg, maxLoad := pathStats(topo, scheme, cfg)
			// Normalized load: fraction of all paths crossing the most
			// loaded node.
			pairs := float64(n) * float64(n-1)
			if cfg.Quick {
				pairs = float64(n) / 3 * float64(n-1)
			}
			rows = append(rows,
				Row{Labels: []string{fmt.Sprintf("%d-node", n), scheme, "avg path (hops)"}, Value: stats.Summarize([]float64{avg})},
				Row{Labels: []string{fmt.Sprintf("%d-node", n), scheme, "max load (per path)"}, Value: stats.Summarize([]float64{maxLoad * 1000 / pairs / 1000})},
			)
		}
	}
	return rows
}

// meshSweep reproduces Figures 19-20: the Appendix F mesh runs, counting
// messages instead of bytes, without path collapsing.
func meshSweep(cfg Config, query string) []Row {
	var rows []Row
	for _, stage := range ratioStages(cfg) {
		for _, sst := range joinSels(cfg) {
			s := setup{
				topoKind: topology.ModerateRandom,
				query:    query,
				rates:    workload.Rates{SigmaS: stage.S, SigmaT: stage.T, SigmaST: sst},
				cycles:   cyclesFor(cfg, 100),
				mesh:     true,
			}
			b := build(s, cfg.Seed)
			for _, alg := range meshAlgorithms(b.topo) {
				sstLabel := fmt.Sprintf("%.0f%%", sst*100)
				sums := averagedMulti(runsFor(cfg, 3), s, alg, totalKMsgs, baseKMsgs)
				rows = append(rows,
					Row{Labels: []string{stage.Name, sstLabel, alg.Name(), "total"}, Value: sums[0]},
					Row{Labels: []string{stage.Name, sstLabel, alg.Name(), "base"}, Value: sums[1]},
				)
			}
		}
	}
	return rows
}

// table3Check validates the Table 3 formulas: analytic per-cycle
// computation cost (in expected tuple-hops) against the measured data
// traffic divided by the per-hop message size.
func table3Check(cfg Config) []Row {
	s := setup{
		topoKind: topology.ModerateRandom,
		query:    "Q1",
		rates:    workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1},
		cycles:   cyclesFor(cfg, 100),
	}
	b := build(s, cfg.Seed)
	// Analytic inputs from the workload's ground truth.
	var in costmodel.Inputs
	in.Params = b.cfg.Opt
	participantsS := map[topology.NodeID]bool{}
	participantsT := map[topology.NodeID]bool{}
	allS, allT := 0, 0
	for i := 0; i < b.topo.N(); i++ {
		id := topology.NodeID(i)
		if b.spec.EligibleS(id) {
			allS++
			in.DSR = append(in.DSR, b.cfg.Sub.DepthToBase(id))
		}
		if b.spec.EligibleT(id) {
			allT++
			in.DTR = append(in.DTR, b.cfg.Sub.DepthToBase(id))
		}
	}
	for _, g := range b.spec.Groups() {
		for _, pr := range g.Pairs {
			participantsS[pr[0]] = true
			participantsT[pr[1]] = true
		}
	}
	in.SizeS, in.SizeT = allS, allT
	in.PhiS = float64(len(participantsS)) / float64(allS)
	in.PhiT = float64(len(participantsT)) / float64(allT)

	perHop := float64(sim.HeaderBytes + sim.TupleBytes)
	measure := func(alg join.Algorithm) float64 {
		bb := build(s, cfg.Seed)
		res := alg.Run(bb.cfg)
		data := float64(bb.cfg.Net.Metrics().ByKind[sim.Data])
		_ = res
		return data / perHop / float64(s.cycles)
	}
	return []Row{
		{Labels: []string{"Naive", "analytic"}, Value: stats.Summarize([]float64{costmodel.NaiveCost(in)})},
		{Labels: []string{"Naive", "measured"}, Value: stats.Summarize([]float64{measure(join.Naive{})})},
		{Labels: []string{"Base", "analytic"}, Value: stats.Summarize([]float64{costmodel.BaseCost(in)})},
		{Labels: []string{"Base", "measured"}, Value: stats.Summarize([]float64{measure(join.Base{})})},
	}
}

// mobility reproduces Appendix G: a leaf node picks a new parent; measure
// the traffic and propagation delay of updating every affected routing
// table summary up each tree.
func mobility(cfg Config) []Row {
	topo := topology.Generate(topology.MediumRandom, 100, 1)
	ids := make([]int32, topo.N())
	for i := range ids {
		ids[i] = int32(i)
	}
	sub := routing.NewSubstrate(topo, routing.Options{
		NumTrees: 3,
		Indexes:  []routing.IndexSpec{{Attr: "id", Kind: routing.BloomSummary, Values: ids}},
	}, nil)
	// Pick a node that is a leaf in tree 0 (mobile nodes are constrained
	// to be topology leaves).
	var leaf topology.NodeID = -1
	for i := topo.N() - 1; i > 0; i-- {
		if len(sub.Trees[0].Children[topology.NodeID(i)]) == 0 {
			leaf = topology.NodeID(i)
			break
		}
	}
	net := sim.NewNetwork(topo, 0, cfg.Seed)
	// The move: the leaf re-attaches under a new parent in every tree;
	// each ancestor's summary on both the old and new parent chains must
	// be refreshed (one summary message per hop).
	maxChain := 0
	for _, tree := range sub.Trees {
		up := tree.PathToRoot(leaf)
		// Old chain invalidation + new chain installation ~ 2x the
		// ancestor chain, each hop shipping the indexed summaries.
		size := sub.Entry(0, leaf).ScalarSizeBytes()
		for i := 0; i+1 < len(up); i++ {
			net.Transfer(routing.Path{up[i], up[i+1]}, size, sim.Control, sim.Flow{})
			net.Transfer(routing.Path{up[i], up[i+1]}, size, sim.Control, sim.Flow{})
		}
		if 2*up.Hops() > maxChain {
			maxChain = 2 * up.Hops()
		}
	}
	m := net.Metrics()
	return []Row{
		{Labels: []string{"update traffic (bytes)"}, Value: stats.Summarize([]float64{float64(m.TotalBytes)})},
		{Labels: []string{"propagation delay (cycles)"}, Value: stats.Summarize([]float64{float64(maxChain)})},
	}
}

// ablations benches the DESIGN.md design choices: placement policy and
// learning trigger ratio.
func ablations(cfg Config) []Row {
	var rows []Row
	// Placement policy on a skewed 1:1 workload (cost model should win).
	s := setup{
		topoKind: topology.ModerateRandom,
		query:    "Q0",
		rates:    workload.Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2},
		cycles:   cyclesFor(cfg, 100),
	}
	policies := []struct {
		name string
		f    func(p costmodel.Params, depths []int) costmodel.Placement
	}{
		{"cost-model", nil},
		{"midpoint", func(p costmodel.Params, depths []int) costmodel.Placement {
			return costmodel.Placement{Index: len(depths) / 2}
		}},
		{"at-s", func(p costmodel.Params, depths []int) costmodel.Placement {
			return costmodel.Placement{Index: 0}
		}},
		{"at-t", func(p costmodel.Params, depths []int) costmodel.Placement {
			return costmodel.Placement{Index: len(depths) - 1}
		}},
	}
	for _, pol := range policies {
		alg := join.Innet{Opts: join.InnetOptions{PlacementOverride: pol.f}}
		rows = append(rows, Row{
			Labels: []string{"placement", pol.name},
			Value:  averaged(runsFor(cfg, 3), s, alg, totalKB),
		})
	}
	// Trigger ratio with wrong initial estimates.
	s2 := s
	s2.optOverride = &costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2}
	s2.cycles = cyclesFor(cfg, 200)
	for _, trig := range []struct {
		name  string
		ratio float64
		learn bool
	}{
		{"never", 0, false},
		{"10%", 0.10, true},
		{"33%", 0.33, true},
		{"66%", 0.66, true},
	} {
		alg := join.Innet{Opts: join.InnetOptions{Learn: trig.learn, Trigger: trig.ratio}}
		rows = append(rows, Row{
			Labels: []string{"trigger", trig.name},
			Value:  averaged(runsFor(cfg, 3), s2, alg, totalKB),
		})
	}
	return rows
}

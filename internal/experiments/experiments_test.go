package experiments

import (
	"strings"
	"testing"
)

func quick() Config { return Config{Runs: 2, Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every evaluation artifact of the paper must be registered.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig16", "fig17", "fig18", "fig19", "fig20",
		"tab3", "mobility", "ablation",
	}
	for _, id := range want {
		if Lookup(id) == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if Lookup("nope") != nil {
		t.Fatal("Lookup of unknown id returned an experiment")
	}
}

// runExperiment executes an experiment in quick mode and sanity-checks the
// row structure against the declared columns.
func runExperiment(t *testing.T, id string) []Row {
	t.Helper()
	e := Lookup(id)
	if e == nil {
		t.Fatalf("experiment %s missing", id)
	}
	rows := e.Run(quick())
	if len(rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, r := range rows {
		if len(r.Labels) != len(e.Columns)-1 {
			t.Fatalf("%s row has %d labels for %d columns: %v", id, len(r.Labels), len(e.Columns), r.Labels)
		}
	}
	return rows
}

func value(rows []Row, labels ...string) (float64, bool) {
outer:
	for _, r := range rows {
		if len(r.Labels) != len(labels) {
			continue
		}
		for i := range labels {
			if r.Labels[i] != labels[i] {
				continue outer
			}
		}
		return r.Value.Mean, true
	}
	return 0, false
}

func TestFig2Shapes(t *testing.T) {
	rows := runExperiment(t, "fig2")
	// GHT must be worse than Innet-cmg on total traffic in every cell.
	bad := 0
	cells := 0
	for _, r := range rows {
		if r.Labels[2] == "GHT" && r.Labels[3] == "total" {
			cells++
			cmg, ok := value(rows, r.Labels[0], r.Labels[1], "Innet-cmg", "total")
			if !ok {
				t.Fatal("missing Innet-cmg cell")
			}
			if cmg >= r.Value.Mean {
				bad++
			}
		}
	}
	if cells == 0 {
		t.Fatal("no GHT cells")
	}
	if bad > cells/3 {
		t.Fatalf("Innet-cmg lost to GHT in %d/%d cells", bad, cells)
	}
}

func TestFig4DiagonalDominance(t *testing.T) {
	rows := runExperiment(t, "fig4")
	// For each actual stage, the run optimized for the true ratios should
	// be at least near-best in its group ("the dark bar will be the
	// lowest in each group").
	stages := ratioStages(quick())
	wins := 0
	for _, actual := range stages {
		diag, ok := value(rows, actual.Name, actual.Name)
		if !ok {
			t.Fatalf("missing diagonal cell %s", actual.Name)
		}
		best := diag
		for _, assumed := range stages {
			if v, ok := value(rows, actual.Name, assumed.Name); ok && v < best {
				best = v
			}
		}
		if diag <= best*1.10 { // within 10% of the group's best
			wins++
		}
	}
	if wins < len(stages)-1 {
		t.Fatalf("diagonal near-best in only %d/%d groups", wins, len(stages))
	}
}

func TestFig5RanksDescend(t *testing.T) {
	rows := runExperiment(t, "fig5")
	// Within one algorithm, rank-k load must not increase with k.
	prev := map[string]float64{}
	for _, r := range rows {
		alg := r.Labels[0]
		if last, ok := prev[alg]; ok && r.Value.Mean > last+1e-9 {
			t.Fatalf("%s load increases along ranks", alg)
		}
		prev[alg] = r.Value.Mean
	}
}

func TestFig6CentralizedCostlier(t *testing.T) {
	rows := runExperiment(t, "fig6")
	cb, _ := value(rows, "centralized", "base traffic KB")
	db, _ := value(rows, "distributed", "base traffic KB")
	cl, _ := value(rows, "centralized", "latency (txn cycles)")
	dl, _ := value(rows, "distributed", "latency (txn cycles)")
	if db >= cb {
		t.Fatalf("distributed base traffic (%v) not below centralized (%v)", db, cb)
	}
	if dl >= cl {
		t.Fatalf("distributed latency (%v) not below centralized (%v)", dl, cl)
	}
}

func TestFig7DistributedNearOptimal(t *testing.T) {
	rows := runExperiment(t, "fig7")
	for i := 0; i+1 < len(rows); i += 2 {
		o := rows[i].Value.Mean
		d := rows[i+1].Value.Mean
		if o == 0 {
			continue
		}
		// Paper: within 3% of optimal; allow slack for our byte model
		// (the distributed paths may differ from true shortest paths).
		if d > 1.5*o {
			t.Fatalf("%v: distributed %.1f vs optimal %.1f — too far", rows[i].Labels, d, o)
		}
	}
}

func TestFig14FailureAddsDelay(t *testing.T) {
	rows := runExperiment(t, "fig14")
	for _, sst := range []string{"10%", "20%"} {
		no, ok1 := value(rows, sst, "no failure", "delay (cycles)")
		yes, ok2 := value(rows, sst, "with failure", "delay (cycles)")
		if !ok1 || !ok2 {
			t.Fatalf("missing delay rows for %s", sst)
		}
		if yes < no {
			t.Fatalf("%s: failure decreased delay (%v -> %v)", sst, no, yes)
		}
	}
}

func TestFig16MoreTreesBetter(t *testing.T) {
	rows := runExperiment(t, "fig16")
	for _, r := range rows {
		if r.Labels[1] != "1 Tree" || r.Labels[2] != "avg path (hops)" {
			continue
		}
		three, ok := value(rows, r.Labels[0], "3 Trees", "avg path (hops)")
		if !ok {
			t.Fatal("missing 3 Trees row")
		}
		if three > r.Value.Mean {
			t.Fatalf("%s: 3 trees (%v) longer than 1 tree (%v)", r.Labels[0], three, r.Value.Mean)
		}
		full, ok := value(rows, r.Labels[0], "Full graph", "avg path (hops)")
		if !ok {
			t.Fatal("missing full graph row")
		}
		if full > three {
			t.Fatalf("%s: full graph (%v) longer than 3 trees (%v)", r.Labels[0], full, three)
		}
		gpsr, ok := value(rows, r.Labels[0], "GPSR", "avg path (hops)")
		if !ok {
			t.Fatal("missing GPSR row")
		}
		if gpsr < full {
			t.Fatalf("%s: GPSR (%v) beat the full graph (%v)", r.Labels[0], gpsr, full)
		}
	}
}

func TestTab3AnalyticMatchesMeasured(t *testing.T) {
	rows := runExperiment(t, "tab3")
	for _, alg := range []string{"Naive", "Base"} {
		a, _ := value(rows, alg, "analytic")
		m, _ := value(rows, alg, "measured")
		if a == 0 || m == 0 {
			t.Fatalf("%s: zero cost", alg)
		}
		ratio := m / a
		// Retransmissions and same-cycle effects push measured slightly
		// above analytic; they must stay within 25%.
		if ratio < 0.8 || ratio > 1.35 {
			t.Fatalf("%s: measured/analytic = %.2f, want ~1", alg, ratio)
		}
	}
}

func TestMobilityMagnitudes(t *testing.T) {
	rows := runExperiment(t, "mobility")
	traffic, _ := value(rows, "update traffic (bytes)")
	delay, _ := value(rows, "propagation delay (cycles)")
	if traffic <= 0 || delay <= 0 {
		t.Fatal("mobility produced zero costs")
	}
	// Paper: ~1195 bytes, ~19.4 cycles. Same order of magnitude expected.
	if traffic > 20000 || delay > 200 {
		t.Fatalf("mobility costs out of range: %v bytes, %v cycles", traffic, delay)
	}
}

func TestAblationPlacement(t *testing.T) {
	rows := runExperiment(t, "ablation")
	cm, _ := value(rows, "placement", "cost-model")
	mid, _ := value(rows, "placement", "midpoint")
	atT, _ := value(rows, "placement", "at-t")
	if cm == 0 {
		t.Fatal("missing cost-model row")
	}
	// With sigma_s=0.1, sigma_t=1 the cost model should sit near t and
	// beat (or match) the midpoint and never lose to it meaningfully.
	if cm > 1.05*mid {
		t.Fatalf("cost-model placement (%v) worse than midpoint (%v)", cm, mid)
	}
	if cm > 1.05*atT {
		t.Fatalf("cost-model placement (%v) worse than at-t (%v)", cm, atT)
	}
}

func TestRenderOutput(t *testing.T) {
	e := Lookup("mobility")
	rows := e.Run(quick())
	out := Render(e, rows)
	if !strings.Contains(out, "mobility") || !strings.Contains(out, "update traffic") {
		t.Fatalf("Render output malformed:\n%s", out)
	}
}

// The remaining experiments are exercised for structure only (their
// qualitative shapes are recorded in EXPERIMENTS.md from full runs, which
// are too slow for unit tests).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep still costs a few seconds")
	}
	for _, id := range []string{"fig3", "fig8", "fig9", "fig11", "fig13", "fig17", "fig18", "fig19", "fig20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runExperiment(t, id)
		})
	}
}

func TestFig10LearningGains(t *testing.T) {
	rows := runExperiment(t, "fig10")
	// Averaged over all off-diagonal cells, learning must not hurt.
	var offSum, onSum float64
	n := 0
	for _, r := range rows {
		if r.Labels[3] != "off" || r.Labels[1] == r.Labels[2] {
			continue
		}
		on, ok := value(rows, r.Labels[0], r.Labels[1], r.Labels[2], "on")
		if !ok {
			t.Fatal("missing learning-on cell")
		}
		offSum += r.Value.Mean
		onSum += on
		n++
	}
	if n == 0 {
		t.Fatal("no off-diagonal cells")
	}
	if onSum > offSum*1.02 {
		t.Fatalf("learning increased average off-diagonal traffic: %.1f -> %.1f", offSum/float64(n), onSum/float64(n))
	}
}

func TestFig12LearningApproachesOracle(t *testing.T) {
	rows := runExperiment(t, "fig12")
	for _, mode := range []string{"spatial", "temporal"} {
		for _, q := range []string{"Q1", "Q2"} {
			oracle, ok := value(rows, mode, q, "Full knowledge")
			if !ok {
				t.Fatalf("missing oracle row %s/%s", mode, q)
			}
			learn1, _ := value(rows, mode, q, "Sel1 learn")
			wrong1, _ := value(rows, mode, q, "Sel1")
			// Learning should move from the wrong-static cost toward the
			// oracle: no worse than the static run (with small slack).
			if learn1 > wrong1*1.10 {
				t.Fatalf("%s/%s: learning (%v) worse than static wrong estimates (%v), oracle %v",
					mode, q, learn1, wrong1, oracle)
			}
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	rows := runExperiment(t, "fig13")
	yang, _ := value(rows, "Yang+07", "total")
	ghtv, _ := value(rows, "GHT/GPSR", "total")
	naive, _ := value(rows, "Naive/Base", "total")
	innet, _ := value(rows, "In-net", "total")
	learn, _ := value(rows, "In-net learn", "total")
	// The paper's log-scale ordering: Yang+07 and GHT an order worse than
	// the base-centric and in-network strategies; learning within ~25% of
	// full-knowledge In-Net.
	if yang < 1.5*naive || ghtv < 1.5*naive {
		t.Fatalf("Yang+07 (%v) / GHT (%v) not clearly worse than Naive/Base (%v)", yang, ghtv, naive)
	}
	if learn > 1.6*innet {
		t.Fatalf("learning (%v) too far from full-knowledge In-Net (%v)", learn, innet)
	}
}

func TestFig19MeshOrdering(t *testing.T) {
	rows := runExperiment(t, "fig19")
	// Appendix F: Innet-cmg outperforms all, with Base next (vs DHT and
	// Naive), on message counts. Check the symmetric stage.
	cmg, ok1 := value(rows, "1/2:1/2", "20%", "Innet-cmg", "total")
	naive, ok2 := value(rows, "1/2:1/2", "20%", "Naive", "total")
	base, ok3 := value(rows, "1/2:1/2", "20%", "Base", "total")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing mesh cells")
	}
	if cmg >= naive {
		t.Fatalf("Innet-cmg (%v kmsgs) not below Naive (%v)", cmg, naive)
	}
	if base >= naive {
		t.Fatalf("Base (%v kmsgs) not below Naive (%v)", base, naive)
	}
}

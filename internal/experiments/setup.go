package experiments

import (
	"repro/internal/costmodel"
	"repro/internal/dht"
	"repro/internal/engine"
	"repro/internal/ght"
	"repro/internal/join"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// moteLoss is the per-hop loss probability for mote (TOSSIM-like) runs.
const moteLoss = 0.05

// setup describes one simulated run. Zero values take paper defaults.
type setup struct {
	topoKind topology.Kind
	n        int
	query    string // "Q0".."Q3"
	nPairs   int    // Q0 pair count
	rates    workload.Rates
	// optOverride, when non-nil, replaces the optimizer's assumed
	// selectivities (the cost-model validation experiments feed wrong
	// estimates on purpose).
	optOverride *costmodel.Params
	cycles      int
	trees       int
	mesh        bool // mesh mode: lossless, message-counting
	// skew configures per-node Sel1/Sel2 halves; temporalSwitch switches
	// all nodes' rates mid-run.
	skew           *skewSpec
	temporalSwitch *switchSpec
	failNode       topology.NodeID
	failCycle      int
}

type skewSpec struct {
	sel1, sel2 workload.Rates
}

type switchSpec struct {
	at    int
	rates workload.Rates
}

// built is a fully wired run environment.
type built struct {
	topo  *topology.Topology
	nodes []workload.NodeInfo
	spec  *workload.Spec
	cfg   *join.Config
}

// build wires a Config for one run seed. The topology layout is fixed per
// setup (the paper fixes layouts and varies runs); data and loss seeds
// derive from the run seed.
func build(s setup, seed uint64) *built {
	if s.n == 0 {
		s.n = 100
	}
	if s.cycles == 0 {
		s.cycles = 100
	}
	if s.trees == 0 {
		s.trees = 3
	}
	topo := topology.Generate(s.topoKind, s.n, 1)
	nodes := workload.BuildNodes(topo, 1)
	var spec *workload.Spec
	switch s.query {
	case "Q0":
		np := s.nPairs
		if np == 0 {
			np = 10
		}
		// Query 0's endpoints are "random": redraw them per run seed so
		// averaging across runs also averages over endpoint placement,
		// as the paper's repeated runs do.
		spec = workload.Query0(topo, nodes, np, s.rates, 7^(seed*0x9E37))
	case "Q1":
		spec = workload.Query1(topo, nodes, s.rates)
	case "Q2":
		spec = workload.Query2(topo, nodes, s.rates)
	case "Q3":
		spec = workload.Query3(topo, nodes, s.rates)
	default:
		panic("experiments: unknown query " + s.query)
	}
	loss := moteLoss
	if s.mesh {
		loss = 0
	}
	net := sim.NewNetwork(topo, loss, seed^0x105E)
	sub := routing.NewSubstrate(topo, routing.Options{
		NumTrees:       s.trees,
		Indexes:        spec.Indexes,
		IndexPositions: spec.IndexPositions,
	}, nil)
	var sampler workload.Sampler
	if s.query == "Q3" {
		sampler = workload.HumiditySampler{H: workload.NewHumidity(topo, seed)}
	} else {
		gen := workload.NewGenerator(s.rates, seed)
		if s.skew != nil {
			for i := 0; i < topo.N(); i++ {
				if i%2 == 0 {
					gen.SetNodeRates(topology.NodeID(i), s.skew.sel1)
				} else {
					gen.SetNodeRates(topology.NodeID(i), s.skew.sel2)
				}
			}
		}
		if s.temporalSwitch != nil {
			gen.SetSwitch(s.temporalSwitch.at, s.temporalSwitch.rates)
		}
		sampler = gen
	}
	opt := costmodel.Params{
		SigmaS:  s.rates.SigmaS,
		SigmaT:  s.rates.SigmaT,
		SigmaST: s.rates.SigmaST,
		W:       spec.W,
	}
	if s.optOverride != nil {
		opt = *s.optOverride
		opt.W = spec.W
	}
	cfg := join.NewConfig(topo, net, sub, spec, sampler, opt, s.cycles)
	if s.failNode > 0 {
		cfg.FailNode = s.failNode
		cfg.FailCycle = s.failCycle
	}
	return &built{topo: topo, nodes: nodes, spec: spec, cfg: cfg}
}

// metric extracts one scalar from a run result.
type metric func(*join.Result) float64

var (
	totalKB    metric = func(r *join.Result) float64 { return float64(r.TotalBytes) / 1024 }
	baseKB     metric = func(r *join.Result) float64 { return float64(r.BaseBytes) / 1024 }
	maxNodeKB  metric = func(r *join.Result) float64 { return float64(r.MaxNodeBytes) / 1024 }
	totalKMsgs metric = func(r *join.Result) float64 { return float64(r.TotalMessages) / 1000 }
	baseKMsgs  metric = func(r *join.Result) float64 { return float64(r.BaseMessages) / 1000 }
	meanDelay  metric = func(r *join.Result) float64 { return r.MeanDelay() }
)

// averaged runs alg over cfg.Runs seeds of s and summarizes m.
func averaged(cfg Config, s setup, alg join.Algorithm, m metric) stats.Summary {
	return averagedMulti(cfg, s, alg, m)[0]
}

// averagedMulti runs alg once per seed — fanned across the worker pool —
// and summarizes several metrics from the same runs (a figure's "total"
// and "base" bars share simulations). Each seed's run is self-contained
// (own topology, network, substrate, sampler), so parallel seeds never
// share mutable state, and collecting in seed order keeps the summaries
// byte-identical at any worker count.
func averagedMulti(cfg Config, s setup, alg join.Algorithm, ms ...metric) []stats.Summary {
	perRun := engine.Sweep(cfg.Runs, cfg.Workers, func(i int) []float64 {
		b := build(s, cfg.Seed+uint64(i)*7919)
		res := alg.Run(b.cfg)
		row := make([]float64, len(ms))
		for k, m := range ms {
			row[k] = m(res)
		}
		return row
	})
	out := make([]stats.Summary, len(ms))
	for k := range ms {
		vals := make([]float64, cfg.Runs)
		for i, row := range perRun {
			vals[i] = row[k]
		}
		out[k] = stats.Summarize(vals)
	}
	return out
}

// moteAlgorithms returns the paper's Figure 2/3 algorithm set.
func moteAlgorithms(topo *topology.Topology) []join.Algorithm {
	return []join.Algorithm{
		join.Naive{},
		join.Base{},
		join.Hashed{Label: "GHT", Router: ght.NewRouter(topo)},
		join.Innet{},
		join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}},
		join.Innet{Opts: join.InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}},
	}
}

// meshAlgorithms returns the Appendix F set (Figures 19-20).
func meshAlgorithms(topo *topology.Topology) []join.Algorithm {
	return []join.Algorithm{
		join.Naive{},
		join.Base{},
		join.Hashed{Label: "DHT", Router: dht.NewRing(topo)},
		join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}},
	}
}

// ratioStages returns the sweep stages; quick mode keeps the two extremes
// and the symmetric middle so skew effects remain visible.
func ratioStages(cfg Config) []struct {
	Name string
	S, T float64
} {
	if cfg.Quick {
		all := workload.RatioStages
		return []struct {
			Name string
			S, T float64
		}{all[0], all[2], all[4]}
	}
	return workload.RatioStages
}

// joinSels returns the sigma_st sweep, trimmed in quick mode.
func joinSels(cfg Config) []float64 {
	if cfg.Quick {
		return workload.JoinSelectivities[:2:2]
	}
	return workload.JoinSelectivities
}

// cyclesFor trims run length in quick mode.
func cyclesFor(cfg Config, full int) int {
	if cfg.Quick && full > 40 {
		return 40
	}
	return full
}

// learningCycles trims less aggressively: adaptivity needs enough cycles
// to estimate (interval 10), migrate and amortize the migration cost, so
// quick mode keeps 120 cycles.
func learningCycles(cfg Config, full int) int {
	if cfg.Quick && full > 120 {
		return 120
	}
	return full
}

// runsFor allows an experiment to force fewer runs for very slow sweeps.
func runsFor(cfg Config, most int) Config {
	if cfg.Runs > most {
		cfg.Runs = most
	}
	return cfg
}

// summarizeOrZero summarizes xs, returning a zero summary for no samples.
func summarizeOrZero(xs []float64) stats.Summary {
	if len(xs) == 0 {
		return stats.Summary{}
	}
	return stats.Summarize(xs)
}

// Package bench is the reproducible performance-measurement subsystem:
// a registry of named end-to-end scenarios (engine concurrency levels,
// experiment sweeps, algorithm head-to-heads, the adaptivity loop, the
// raw Transfer hot path), each driven from fixed seeds so its simulated
// traffic is byte-identical on every machine, measured for wall time and
// allocator pressure, and serialized to a stable JSON schema
// (BENCH_engine.json) so successive PRs record a performance trajectory
// instead of anecdotes. cmd/aspen-bench is the CLI; Compare diffs two
// reports and flags determinism drift via per-scenario checksums.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// SchemaVersion identifies the BENCH_engine.json layout. Bump it only on
// incompatible changes; comparison across versions is refused.
const SchemaVersion = 1

// Scenario is one named, seeded, repeatable measurement unit.
type Scenario struct {
	Name string
	Desc string
	// Workers is the engine worker count the scenario steps with (0 and 1
	// both mean sequential). It is recorded per result so reports made at
	// different parallelism are never silently compared as equals; the
	// determinism checksum is worker-invariant by construction.
	Workers int
	// Run executes one measured iteration from fixed seeds and returns
	// the simulated traffic in bytes plus a deterministic checksum
	// (result counts, row sums); the checksum lets Compare detect
	// semantic drift between runs recorded on different commits.
	Run func() (traffic int64, check float64)
	// RunHeap, when non-nil, replaces Run for scenarios that also commit
	// to a live-heap bound: the third return is the post-GC live heap in
	// bytes measured inside the scenario while its state is still
	// referenced. Heap is machine-stable but not bit-stable, so it is
	// recorded beside the checksum, never folded into it.
	RunHeap func() (traffic int64, check float64, heapBytes int64)
	// HeapCeiling is the committed live-heap bound in bytes for RunHeap
	// scenarios (0 = unbounded). aspen-bench -max-heap-bytes fails the
	// run when a measured heap exceeds its scenario's ceiling.
	HeapCeiling int64
}

// engineSQL is the fixed query pool the engine scenarios draw from
// round-robin — the same pool bench_test.go uses, so `go test -bench
// Engine` and `aspen-bench` measure the same workload.
var engineSQL = []string{
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND T.id > 50 AND S.x = T.y + 5 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=1 sampleinterval=100]
WHERE S.rid = 0 AND T.rid = 3 AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 10 AND T.id > 80 AND S.x = T.y + 5 AND S.u = T.u`,
	`SELECT S.id, T.id
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 40 AND T.id > 60 AND S.x = T.y + 5 AND S.u = T.u`,
}

// engineScenario measures nq concurrent queries over one shared deployment
// for 30 epochs — the multi-query scheduler plus the In-Net hot path —
// stepped with the given engine worker count. The checksum (and the
// simulated traffic) is byte-identical at every worker count, so a -wN
// variant drifting from its sequential twin is a determinism bug, not
// noise.
func engineScenario(nq, pin, workers int, tr *obs.Tracer) Scenario {
	name := fmt.Sprintf("engine-%d", nq)
	desc := fmt.Sprintf("%d concurrent quer%s over one shared 100-node deployment, 30 epochs", nq, plural(nq))
	if pin > 1 {
		name += fmt.Sprintf("-w%d", pin)
		desc += fmt.Sprintf(", %d workers", pin)
		workers = pin
	}
	return Scenario{
		Name:    name,
		Desc:    desc,
		Workers: workers,
		Run: func() (int64, float64) {
			e := engine.New(engine.Options{Seed: 1, Workers: workers, Trace: tr})
			for q := 0; q < nq; q++ {
				if _, err := e.Submit(engine.QueryConfig{SQL: engineSQL[q%len(engineSQL)]}); err != nil {
					panic("bench: engine scenario submit: " + err.Error())
				}
			}
			rep := e.Run(30)
			return rep.AggregateBytes, float64(rep.Results)
		},
	}
}

// engine1kScenario is the 1000-node engine workload (2 concurrent queries,
// 10 epochs) at the given worker count. With only 2 live queries the
// effective parallelism caps at 2 however many workers are requested; the
// requested count is still what the report records.
func engine1kScenario(pin, workers int, tr *obs.Tracer) Scenario {
	name := "engine-1k"
	desc := "2 concurrent queries over one shared 1000-node Moderate Random deployment, 10 epochs"
	if pin > 1 {
		name += fmt.Sprintf("-w%d", pin)
		desc += fmt.Sprintf(", %d workers (2 live queries bound the effective parallelism)", pin)
		workers = pin
	}
	return Scenario{
		Name:    name,
		Desc:    desc,
		Workers: workers,
		Run: func() (int64, float64) {
			e := engine.New(engine.Options{Seed: 1, Kind: topology.ModerateRandom, Nodes: 1000, Workers: workers, Trace: tr})
			for q := 0; q < 2; q++ {
				if _, err := e.Submit(engine.QueryConfig{SQL: engineSQL[q%len(engineSQL)]}); err != nil {
					panic("bench: engine-1k scenario submit: " + err.Error())
				}
			}
			rep := e.Run(10)
			return rep.AggregateBytes, float64(rep.Results)
		},
	}
}

// Committed live-heap ceilings (bytes) for the RunHeap scenarios: the
// measured post-GC live heap at the recording commit plus roughly 50%
// headroom (see DESIGN.md, "Scale model"). A run drifting past its
// ceiling fails the `aspen-bench -max-heap-bytes` gate.
const (
	churn10kHeapCeiling   = 32 << 20  // measured ~19 MB live
	engine100kHeapCeiling = 192 << 20 // measured ~107 MB live
)

// engine100kScenario is the deployment-scale ceiling: one bounded 4-pair
// query (built directly over the deployment — SQL placement would scan
// the full node set) on a 100000-node Dense Random deployment, 5 epochs.
// The live heap is measured post-GC while the engine is still referenced
// and gated against the committed ceiling.
func engine100kScenario(workers int, tr *obs.Tracer) Scenario {
	return Scenario{
		Name:        "engine-100k",
		Desc:        "1 bounded 4-pair query over one shared 100000-node Dense Random deployment, 5 epochs, gated live-heap ceiling",
		Workers:     workers,
		HeapCeiling: engine100kHeapCeiling,
		RunHeap: func() (int64, float64, int64) {
			e := engine.New(engine.Options{Seed: 1, Kind: topology.DenseRandom, Nodes: 100000,
				Trees: 1, Workers: workers, Trace: tr,
				MemBudgetRoutingBytes: engine100kHeapCeiling / 2,
				MemBudgetJoinBytes:    engine100kHeapCeiling / 8})
			rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
			spec := workload.Query0(e.Topo, e.Nodes, 4, rates, 17)
			if _, err := e.Submit(engine.QueryConfig{ID: "q0", Spec: spec}); err != nil {
				panic("bench: engine-100k scenario submit: " + err.Error())
			}
			rep := e.Run(5)
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			heap := int64(m.HeapAlloc)
			runtime.KeepAlive(e)
			return rep.AggregateBytes, float64(rep.Results), heap
		},
	}
}

// churn10kScenario exercises incremental tree maintenance at deployment
// scale: a 10k-node routing substrate under 8 rounds of interior-node
// failure, each round killing the alive non-root node owning the largest
// tree-0 subtree that fits the patch budget, so every round cuts a real
// subtree and must be repairable by routing.PatchTreeLive. The checksum
// folds the patched/rebuilt split and a tree-shape fingerprint, so a
// round silently degrading to a full rebuild shows as drift.
func churn10kScenario() Scenario {
	return Scenario{
		Name:        "churn-10k",
		Desc:        "10000-node routing substrate (2 trees + Bloom/Histogram index columns) under 8 interior-node failures repaired by incremental subtree patching",
		HeapCeiling: churn10kHeapCeiling,
		RunHeap: func() (int64, float64, int64) {
			const n = 10000
			topo := topology.Generate(topology.DenseRandom, n, 1)
			live := topology.NewLiveness(n)
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(i % 37)
			}
			specs := []routing.IndexSpec{
				{Attr: "id", Kind: routing.BloomSummary, Values: vals},
				{Attr: "band", Kind: routing.HistogramSummary, Values: vals, Lo: 0, Hi: 37},
			}
			net := sim.NewSharedNetwork(topo, 0.05, 7, live)
			sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 2, Indexes: specs, IndexPositions: true}, net)
			roots := map[topology.NodeID]bool{}
			for _, t := range sub.Trees {
				roots[t.Root] = true
			}
			size := make([]int, n)
			for round := 0; round < 8; round++ {
				tree := sub.Trees[0]
				// Subtree sizes in one pass: DeepFirst orders children
				// before parents, so each node's total is complete before
				// it is folded into its parent's.
				for i := range size {
					size[i] = 1
				}
				for _, v := range tree.DeepFirst() {
					if p := tree.Parent[v]; p >= 0 && v != tree.Root {
						size[p] += size[v]
					}
				}
				victim := topology.NodeID(-1)
				best := 0
				for i := 1; i < n; i++ {
					id := topology.NodeID(i)
					if roots[id] || !live.Alive(id) || tree.Stale(id) || len(tree.Children[id]) == 0 {
						continue
					}
					if size[id] > best && size[id] <= 128 {
						victim, best = id, size[id]
					}
				}
				if victim < 0 {
					panic("bench: churn-10k found no interior victim")
				}
				live.Fail(victim)
				sub.RepairTrees(net, live, []topology.NodeID{victim})
			}
			st := sub.Stats()
			if st.Patched == 0 {
				panic("bench: churn-10k never exercised the incremental patch path")
			}
			fp := 0
			for _, t := range sub.Trees {
				for i := range t.Parent {
					fp += int(t.Parent[i]) + t.Depth[i]
				}
			}
			check := float64(fp) + 1e9*float64(st.Patched) + 1e12*float64(st.Rebuilt)
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			heap := int64(m.HeapAlloc)
			runtime.KeepAlive(sub)
			return net.Metrics().TotalBytes, check, heap
		},
	}
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

// singleRunConfig builds one seeded Query 1 run for the head-to-head and
// adaptivity scenarios.
func singleRunConfig(rates workload.Rates, opt *costmodel.Params, cycles int) *join.Config {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := workload.BuildNodes(topo, 1)
	spec := workload.Query1(topo, nodes, rates)
	net := sim.NewNetwork(topo, 0.05, 1)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3, Indexes: spec.Indexes}, nil)
	gen := workload.NewGenerator(rates, 42)
	p := costmodel.Params{SigmaS: rates.SigmaS, SigmaT: rates.SigmaT, SigmaST: rates.SigmaST, W: spec.W}
	if opt != nil {
		p = *opt
		p.W = spec.W
	}
	return join.NewConfig(topo, net, sub, spec, gen, p, cycles)
}

// Scenarios returns the fixed registry in stable order, with every
// scenario at its committed worker count (the counts BENCH_engine.json is
// recorded at). engine-16/engine-16-w4 and engine-1k/engine-1k-w4 are
// same-workload twins: their wall-clock ratio is the measured parallel
// speedup of the epoch hot path, and their checksums must be equal.
func Scenarios() []Scenario { return scenariosAt(0) }

// scenariosAt builds the registry with the unpinned engine scenarios
// stepped at `override` workers (<= 1 keeps their committed sequential
// default). Names never change with the override — the per-result Workers
// field records what actually ran, and Compare warns when two reports'
// counts differ.
func scenariosAt(override int) []Scenario { return scenariosWith(override, nil) }

// scenariosWith additionally threads a tracer into the engine-backed
// scenarios, so a traced bench run records their per-query worker spans
// alongside the scenario-level spans measure emits. Tracing never touches
// the checksums: observation reads engine state, it never steers it.
func scenariosWith(override int, tr *obs.Tracer) []Scenario {
	w := override
	if w < 1 {
		w = 1
	}
	return []Scenario{
		engineScenario(1, 0, w, tr),
		engineScenario(4, 0, w, tr),
		engineScenario(16, 0, w, tr),
		engineScenario(16, 4, 0, tr),
		engineScenario(64, 0, w, tr),
		engineScenario(256, 0, w, tr),
		engine1kScenario(0, w, tr),
		engine1kScenario(4, 0, tr),
		engine100kScenario(w, tr),
		churn10kScenario(),
		{
			Name: "topo-2k",
			Desc: "2000-node Moderate Random topology construction + base routing tree (grid-bucketed neighbor discovery)",
			Run: func() (int64, float64) {
				topo := topology.Generate(topology.ModerateRandom, 2000, 1)
				tree := routing.BuildTree(topo, topology.Base, nil)
				depthSum := 0
				for _, d := range tree.Depth {
					depthSum += d
				}
				// Construction is traffic-free; the checksum fingerprints
				// the layout (calibrated radio, exact edge count) and the
				// tree shape, so any drift in the construction path shows.
				check := topo.RadioRange()*1e6 + topo.AvgDegree()*float64(topo.N()) + float64(depthSum)
				return 0, check
			},
		},
		{
			Name: "churn-1k",
			Desc: "2 concurrent queries over a shared 1000-node deployment under node churn (seeded schedule + targeted join-node/path failures), 12 epochs",
			Run: func() (int64, float64) {
				const nodes = 1000
				mk := func(churn []engine.ChurnEvent) *engine.Engine {
					e := engine.New(engine.Options{Seed: 1, Kind: topology.ModerateRandom, Nodes: nodes, Churn: churn})
					for q := 0; q < 2; q++ {
						if _, err := e.Submit(engine.QueryConfig{SQL: engineSQL[q%len(engineSQL)]}); err != nil {
							panic("bench: churn-1k scenario submit: " + err.Error())
						}
					}
					return e
				}
				// Probe run: pick one intermediate path hop and one join
				// node from the placed pairs, so the schedule provably
				// exercises both recovery outcomes (in-network repair and
				// base-station fallback). Deterministic: the probe is a
				// fixed-seed run.
				probe := mk(nil)
				probe.Run(6)
				var mid, joinNode topology.NodeID = -1, -1
				for _, q := range probe.Queries() {
					res := q.Result()
					for i, p := range res.PairPaths {
						j := res.PairJoinNodes[i]
						if mid < 0 {
							for _, id := range p[1 : len(p)-1] {
								if id != j {
									mid = id
									break
								}
							}
						}
						if mid >= 0 && j != mid {
							joinNode = j
						}
						if mid >= 0 && joinNode >= 0 {
							break
						}
					}
				}
				if mid < 0 || joinNode < 0 {
					panic("bench: churn-1k probe found no victims")
				}
				churn := append(engine.SeededChurn(7, nodes, 12, 0.0005, 0),
					engine.ChurnEvent{Epoch: 3, Node: mid},
					engine.ChurnEvent{Epoch: 6, Node: joinNode})
				rep := mk(churn).Run(12)
				if rep.PathsRepaired < 1 || rep.BaseFallbacks < 1 {
					panic("bench: churn-1k scenario lost its repair/fallback coverage")
				}
				// The checksum folds every recovery counter in, so any
				// drift in churn handling — not just traffic — shows.
				check := float64(rep.Results) +
					1e3*float64(rep.PathsRepaired) +
					1e6*float64(rep.BaseFallbacks) +
					1e9*float64(rep.FailedNodes) +
					1e12*float64(rep.TreesRebuilt)
				return rep.AggregateBytes, check
			},
		},
		{
			Name: "lossy-1k",
			Desc: "2 concurrent queries over a shared 1000-node deployment with a seeded link-fault plan (5% heterogeneous link loss, transient link failures reviving after 3 epochs), 10 epochs",
			Run: func() (int64, float64) {
				e := engine.New(engine.Options{Seed: 1, Kind: topology.ModerateRandom, Nodes: 1000,
					Faults: &faults.Config{Seed: 9, LinkLoss: 0.05, LinkFailRate: 0.002, LinkReviveAfter: 3}})
				for q := 0; q < 2; q++ {
					if _, err := e.Submit(engine.QueryConfig{SQL: engineSQL[q%len(engineSQL)]}); err != nil {
						panic("bench: lossy-1k scenario submit: " + err.Error())
					}
				}
				rep := e.Run(10)
				if rep.LinkRerouted+rep.LinkFallbacks == 0 {
					panic("bench: lossy-1k scenario lost its link-fault coverage")
				}
				// The checksum folds the fault-layer counters in, so drift in
				// loss accounting or link recovery — not just traffic — shows.
				check := float64(rep.Results) +
					1e3*float64(rep.ResultsLost) +
					1e6*float64(rep.LinkRerouted) +
					1e9*float64(rep.LinkFallbacks)
				return rep.AggregateBytes, check
			},
		},
		{
			Name: "partition-16",
			Desc: "16 concurrent queries over one shared 100-node deployment bisected by a scheduled partition for epochs 10..14, 30 epochs",
			Run: func() (int64, float64) {
				e := engine.New(engine.Options{Seed: 1,
					Faults: &faults.Config{Seed: 5, Partitions: []faults.Partition{
						{From: 10, Until: 14, Kind: faults.Bisect}}}})
				for q := 0; q < 16; q++ {
					if _, err := e.Submit(engine.QueryConfig{SQL: engineSQL[q%len(engineSQL)]}); err != nil {
						panic("bench: partition-16 scenario submit: " + err.Error())
					}
				}
				rep := e.Run(30)
				if rep.PartitionEpochs != 4 {
					panic(fmt.Sprintf("bench: partition-16 scenario saw %d partition epochs, want 4", rep.PartitionEpochs))
				}
				if rep.LinkRerouted+rep.LinkFallbacks == 0 {
					panic("bench: partition-16 scenario cut no query paths")
				}
				check := float64(rep.Results) +
					1e3*float64(rep.ResultsLost) +
					1e6*float64(rep.LinkRerouted) +
					1e9*float64(rep.LinkFallbacks) +
					1e12*float64(rep.PartitionEpochs)
				return rep.AggregateBytes, check
			},
		},
		{
			Name: "adapt-drift",
			Desc: "section-6 adaptivity win: 2 queries whose true rates flip mid-run (epoch 30 of 120); engine-phase migration versus a frozen placement on identical seeds",
			Run: func() (int64, float64) {
				start := workload.Rates{SigmaS: 0.9, SigmaT: 0.1, SigmaST: 0.1}
				flip := workload.Rates{SigmaS: 0.1, SigmaT: 0.9, SigmaST: 0.1}
				run := func(adapt bool) *engine.Report {
					e := engine.New(engine.Options{Seed: 3, Adapt: adapt})
					for q, seed := range []uint64{11, 23} {
						g := workload.NewGenerator(start, seed)
						g.SetSwitch(30, flip)
						if _, err := e.Submit(engine.QueryConfig{
							SQL: engineSQL[q%len(engineSQL)], Rates: start, Sampler: g,
						}); err != nil {
							panic("bench: adapt-drift scenario submit: " + err.Error())
						}
					}
					return e.Run(120)
				}
				off := run(false)
				on := run(true)
				if on.Migrations < 1 {
					panic("bench: adapt-drift scenario never migrated")
				}
				if on.AggregateBytes >= off.AggregateBytes {
					panic(fmt.Sprintf("bench: adapt-drift lost its adaptivity win: on=%d >= off=%d bytes",
						on.AggregateBytes, off.AggregateBytes))
				}
				check := float64(on.Results) +
					1e3*float64(on.Migrations) +
					1e6*float64(on.MigrationsAborted) +
					1e9*float64(off.Results)
				return on.AggregateBytes, check
			},
		},
		{
			Name: "adapt-churn-1k",
			Desc: "adaptivity under churn: the churn-1k deployment and schedule with engine-phase migration enabled (wrong initial estimates, 4-cycle estimate interval), 12 epochs",
			Run: func() (int64, float64) {
				const nodes = 1000
				wrong := &costmodel.Params{SigmaS: 0.9, SigmaT: 0.1, SigmaST: 0.1}
				alg := join.Innet{Opts: join.InnetOptions{
					Multicast: true, GroupOpt: true, EstimateInterval: 4,
				}}
				mk := func(churn []engine.ChurnEvent) *engine.Engine {
					e := engine.New(engine.Options{Seed: 1, Kind: topology.ModerateRandom,
						Nodes: nodes, Churn: churn, Adapt: true})
					for q := 0; q < 2; q++ {
						if _, err := e.Submit(engine.QueryConfig{
							SQL: engineSQL[q%len(engineSQL)], Opt: wrong, Algorithm: alg,
						}); err != nil {
							panic("bench: adapt-churn-1k scenario submit: " + err.Error())
						}
					}
					return e
				}
				probe := mk(nil)
				probe.Run(6)
				var mid, joinNode topology.NodeID = -1, -1
				for _, q := range probe.Queries() {
					res := q.Result()
					for i, p := range res.PairPaths {
						j := res.PairJoinNodes[i]
						if mid < 0 {
							for _, id := range p[1 : len(p)-1] {
								if id != j {
									mid = id
									break
								}
							}
						}
						if mid >= 0 && j != mid {
							joinNode = j
						}
						if mid >= 0 && joinNode >= 0 {
							break
						}
					}
				}
				if mid < 0 || joinNode < 0 {
					panic("bench: adapt-churn-1k probe found no victims")
				}
				churn := append(engine.SeededChurn(7, nodes, 12, 0.0005, 0),
					engine.ChurnEvent{Epoch: 3, Node: mid},
					engine.ChurnEvent{Epoch: 6, Node: joinNode})
				rep := mk(churn).Run(12)
				if rep.Migrations < 1 {
					panic("bench: adapt-churn-1k scenario never migrated")
				}
				if rep.FailedNodes < 1 {
					panic("bench: adapt-churn-1k scenario lost its churn coverage")
				}
				check := float64(rep.Results) +
					1e3*float64(rep.Migrations) +
					1e6*float64(rep.MigrationsAborted) +
					1e9*float64(rep.FailedNodes) +
					1e12*float64(rep.PathsRepaired+rep.BaseFallbacks)
				return rep.AggregateBytes, check
			},
		},
		{
			Name: "repair",
			Desc: "section-7 limited-exploration repair: 100-node grid, every root path through a failed hot interior node repaired via a memoized Repairer",
			Run: func() (int64, float64) {
				topo := topology.Generate(topology.Grid, 100, 1)
				tree := routing.BuildTree(topo, topology.Base, nil)
				// Victim: the interior node relaying the most root paths.
				counts := make([]int, topo.N())
				for i := 1; i < topo.N(); i++ {
					p := tree.PathToRoot(topology.NodeID(i))
					for _, id := range p[1 : len(p)-1] {
						counts[id]++
					}
				}
				victim := topology.NodeID(0)
				for i := 1; i < topo.N(); i++ {
					if counts[i] > counts[victim] {
						victim = topology.NodeID(i)
					}
				}
				net := sim.NewNetwork(topo, 0, 1)
				net.Fail(victim)
				rp := routing.NewRepairer(topo, net, routing.DefaultRepairLimit)
				repaired, hops := 0, 0
				for i := 1; i < topo.N(); i++ {
					p := tree.PathToRoot(topology.NodeID(i))
					if p[0] == victim || !p.Contains(victim) {
						continue
					}
					if fixed, ok := rp.Repair(p); ok {
						repaired++
						hops += fixed.Hops()
					}
				}
				return net.Metrics().TotalBytes, 1e3*float64(repaired) + float64(hops)
			},
		},
		{
			Name: "sweep",
			Desc: "parallel experiment sweep (fig2+fig4+fig7, quick config, all cores)",
			Run: func() (int64, float64) {
				cfg := experiments.QuickConfig()
				check := 0.0
				for _, id := range []string{"fig2", "fig4", "fig7"} {
					e := experiments.Lookup(id)
					if e == nil {
						panic("bench: sweep scenario: experiment not registered: " + id)
					}
					for _, row := range e.Run(cfg) {
						check += row.Value.Mean
					}
				}
				// The sweep aggregates many runs whose traffic the rows
				// summarize; traffic-per-op is not meaningful here.
				return 0, check
			},
		},
		{
			Name: "innet-vs-base",
			Desc: "In-Net (cmg) vs join-at-base head-to-head on Query 1, 50 cycles",
			Run: func() (int64, float64) {
				rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
				in := join.Innet{Opts: join.InnetOptions{Multicast: true, GroupOpt: true}}.Run(singleRunConfig(rates, nil, 50))
				base := join.Base{}.Run(singleRunConfig(rates, nil, 50))
				return in.TotalBytes + base.TotalBytes, float64(in.Results + base.Results)
			},
		},
		{
			Name: "adaptivity",
			Desc: "learning In-Net under wrong initial estimates (33% trigger), 150 cycles",
			Run: func() (int64, float64) {
				rates := workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}
				wrong := &costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2}
				res := join.Innet{Opts: join.InnetOptions{Learn: true, Trigger: 0.33}}.Run(singleRunConfig(rates, wrong, 150))
				return res.TotalBytes, float64(res.Results + res.Migrations)
			},
		},
		{
			Name: "transfer",
			Desc: "raw sim.Network.Transfer along the deepest grid tree path, 10k messages",
			Run: func() (int64, float64) {
				topo := topology.Generate(topology.Grid, 100, 1)
				net := sim.NewNetwork(topo, 0.05, 1)
				tree := routing.BuildTree(topo, topology.Base, nil)
				deepest := topology.NodeID(0)
				for i := 1; i < topo.N(); i++ {
					if tree.Depth[i] > tree.Depth[deepest] {
						deepest = topology.NodeID(i)
					}
				}
				path := tree.PathToRoot(deepest)
				delivered := 0
				for i := 0; i < 10000; i++ {
					if ok, _ := net.Transfer(path, sim.TupleBytes, sim.Data, sim.Flow{}); ok {
						delivered++
					}
				}
				return net.Metrics().TotalBytes, float64(delivered)
			},
		},
	}
}

// Result is one scenario's measurement.
type Result struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Workers is the engine worker count the scenario was stepped with.
	// Wall-clock numbers recorded at different worker counts (or on
	// machines with different num_cpu) are not comparable; Compare warns
	// on the mismatch instead of treating the timing delta as meaningful.
	Workers     int   `json:"workers"`
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// TrafficBytesPerOp is the simulated traffic of one iteration —
	// byte-identical across machines and runs (0 where not meaningful).
	TrafficBytesPerOp int64 `json:"traffic_bytes_per_op"`
	// SimBytesPerWallSecond is simulated traffic divided by wall time:
	// how many modeled network bytes one wall-clock second pushes through
	// the simulator.
	SimBytesPerWallSecond float64 `json:"sim_bytes_per_wall_second"`
	// Checksum is the scenario's deterministic output fingerprint; a
	// change between two reports means behavior drifted, not just speed.
	Checksum float64 `json:"checksum"`
	// HeapBytes is the post-GC live heap measured inside the scenario
	// (RunHeap scenarios only; omitted otherwise). Machine-stable but not
	// bit-stable, so it never participates in checksum drift detection.
	HeapBytes int64 `json:"heap_bytes,omitempty"`
	// HeapCeilingBytes is the scenario's committed live-heap bound; the
	// aspen-bench -max-heap-bytes gate fails when HeapBytes exceeds it.
	HeapCeilingBytes int64 `json:"heap_ceiling_bytes,omitempty"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	NumCPU        int      `json:"num_cpu"`
	Quick         bool     `json:"quick"`
	Results       []Result `json:"results"`
}

// Options controls measurement effort.
type Options struct {
	// MinIters is the minimum iterations per scenario (default 3; quick
	// mode uses 1).
	MinIters int
	// MinTime is the minimum wall time per scenario; iterations continue
	// until both minima are met.
	MinTime time.Duration
	// Quick is recorded in the report so comparisons know the effort.
	Quick bool
	// Workers, when > 1, overrides the engine worker count of the
	// default-sequential engine scenarios (aspen-bench -workers). The
	// pinned -wN variants keep their declared counts — their names
	// promise one. Checksums are worker-invariant, so an override can
	// shift wall clock but never the determinism gate.
	Workers int
	// Trace, when non-nil, records a scenario-level span per measured
	// iteration and threads the tracer into the engine-backed scenarios
	// (per-query worker spans). Meant for quick mode — a full run repeats
	// each scenario for a second and the span count grows with every
	// iteration. Tracing never alters checksums.
	Trace *obs.Tracer
}

// QuickOptions is the CI configuration: one iteration per scenario.
func QuickOptions() Options { return Options{MinIters: 1, Quick: true} }

// DefaultOptions measures each scenario at least 3 times and 1 second.
func DefaultOptions() Options { return Options{MinIters: 3, MinTime: time.Second} }

// measure runs one scenario to the configured effort and derives per-op
// figures from aggregate wall time and allocator deltas.
func measure(s Scenario, opts Options) Result {
	minIters := opts.MinIters
	if minIters < 1 {
		minIters = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var traffic int64
	var check float64
	iters := 0
	// The span name is built once and the per-iteration calls are gated, so
	// an untraced run's AllocsPerOp is exactly what it was before tracing
	// existed.
	lane := opts.Trace.Lane(0)
	spanName := ""
	if opts.Trace != nil {
		spanName = "bench:" + s.Name
	}
	var heap int64
	for iters < minIters || time.Since(start) < opts.MinTime {
		t0 := time.Now()
		if s.RunHeap != nil {
			traffic, check, heap = s.RunHeap()
		} else {
			traffic, check = s.Run()
		}
		if spanName != "" {
			lane.Span(spanName, -1, "", t0)
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	r := Result{
		Name:              s.Name,
		Description:       s.Desc,
		Workers:           workers,
		Iterations:        iters,
		NsPerOp:           elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp:       int64(m1.Mallocs-m0.Mallocs) / int64(iters),
		BytesPerOp:        int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iters),
		TrafficBytesPerOp: traffic,
		Checksum:          check,
		HeapBytes:         heap,
		HeapCeilingBytes:  s.HeapCeiling,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.SimBytesPerWallSecond = float64(traffic) * float64(iters) / sec
	}
	return r
}

// Run measures the named scenarios (all when names is empty) and returns
// the report. Unknown names are an error.
func Run(names []string, opts Options) (*Report, error) {
	all := scenariosWith(opts.Workers, opts.Trace)
	var picked []Scenario
	if len(names) == 0 {
		picked = all
	} else {
		byName := map[string]Scenario{}
		for _, s := range all {
			byName[s.Name] = s
		}
		for _, n := range names {
			s, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("bench: unknown scenario %q", n)
			}
			picked = append(picked, s)
		}
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         opts.Quick,
	}
	for _, s := range picked {
		rep.Results = append(rep.Results, measure(s, opts))
	}
	return rep, nil
}

// WriteFile serializes the report to path as indented JSON with a trailing
// newline (stable field order — struct order — so diffs are reviewable).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a previously written report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Delta is one scenario's old-to-new comparison.
type Delta struct {
	Name string
	// Old / New are nil when the scenario is missing on that side.
	Old, New *Result
	// NsRatio / AllocsRatio are new/old (1.0 = unchanged, <1 = faster or
	// leaner); 0 when either side is missing.
	NsRatio, AllocsRatio float64
	// ChecksumDrift reports a determinism change: same scenario, same
	// seeds, different simulated outcome. Checksums are worker-invariant,
	// so drift is drift even across a worker-count mismatch.
	ChecksumDrift bool
	// WorkersMismatch reports the two results ran at different engine
	// worker counts: their wall-clock ratio measures the parallelism
	// change, not a code change, so callers warn instead of reading
	// NsRatio as a regression.
	WorkersMismatch bool
}

// EnvMismatch describes why two reports' wall-clock numbers are not
// comparable ("" when they are): recorded on Compare's environment check
// so single-core CI numbers are never read against multi-core local runs.
func EnvMismatch(old, new *Report) string {
	if old.NumCPU != new.NumCPU {
		return fmt.Sprintf("recorded on different machines: %d CPUs vs %d CPUs — timing ratios reflect hardware, not code", old.NumCPU, new.NumCPU)
	}
	if old.Quick != new.Quick {
		return fmt.Sprintf("different effort: quick=%v vs quick=%v — timing ratios are noisy", old.Quick, new.Quick)
	}
	return ""
}

// Compare matches scenarios by name and computes ratios. It refuses
// cross-schema comparisons.
func Compare(old, new *Report) ([]Delta, error) {
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("bench: schema mismatch: old v%d vs new v%d", old.SchemaVersion, new.SchemaVersion)
	}
	oldBy := map[string]*Result{}
	for i := range old.Results {
		oldBy[old.Results[i].Name] = &old.Results[i]
	}
	seen := map[string]bool{}
	var out []Delta
	for i := range new.Results {
		nr := &new.Results[i]
		seen[nr.Name] = true
		d := Delta{Name: nr.Name, New: nr}
		if or, ok := oldBy[nr.Name]; ok {
			d.Old = or
			if or.NsPerOp > 0 {
				d.NsRatio = float64(nr.NsPerOp) / float64(or.NsPerOp)
			}
			if or.AllocsPerOp > 0 {
				d.AllocsRatio = float64(nr.AllocsPerOp) / float64(or.AllocsPerOp)
			}
			d.ChecksumDrift = or.Checksum != nr.Checksum
			ow, nw := or.Workers, nr.Workers
			if ow < 1 {
				ow = 1 // reports older than the workers field read as sequential
			}
			if nw < 1 {
				nw = 1
			}
			d.WorkersMismatch = ow != nw
		}
		out = append(out, d)
	}
	for i := range old.Results {
		if !seen[old.Results[i].Name] {
			out = append(out, Delta{Name: old.Results[i].Name, Old: &old.Results[i]})
		}
	}
	return out, nil
}

package bench

import (
	"path/filepath"
	"testing"
)

// TestScenarioRegistry pins the registry: names are unique, non-empty and
// stable-ordered, so BENCH_engine.json comparisons across PRs line up.
func TestScenarioRegistry(t *testing.T) {
	ss := Scenarios()
	if len(ss) < 6 {
		t.Fatalf("expected at least 6 scenarios, got %d", len(ss))
	}
	seen := map[string]bool{}
	for _, s := range ss {
		if s.Name == "" || s.Desc == "" || s.Run == nil {
			t.Fatalf("scenario %+v incomplete", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"engine-1", "engine-4", "engine-16", "engine-1k", "topo-2k", "churn-1k", "repair", "sweep", "innet-vs-base", "adaptivity", "transfer"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from registry", want)
		}
	}
}

// TestRepairScenarioDeterminism runs the new section-7 scenario twice: the
// churn-recovery path must be as reproducible as everything else in the
// trajectory file (the churn-1k equivalent is covered by the committed
// checksum via the CI drift gate; it is too heavy for a unit test).
func TestRepairScenarioDeterminism(t *testing.T) {
	var s Scenario
	for _, sc := range Scenarios() {
		if sc.Name == "repair" {
			s = sc
		}
	}
	t1, c1 := s.Run()
	t2, c2 := s.Run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("repair scenario not deterministic: (%d,%f) vs (%d,%f)", t1, c1, t2, c2)
	}
	if t1 <= 0 || c1 < 1e3 {
		t.Fatalf("repair scenario repaired nothing: traffic=%d check=%f", t1, c1)
	}
}

// TestTransferScenarioDeterminism runs the cheapest scenario twice and
// checks traffic and checksum are identical — the property the whole
// trajectory file depends on.
func TestTransferScenarioDeterminism(t *testing.T) {
	var s Scenario
	for _, sc := range Scenarios() {
		if sc.Name == "transfer" {
			s = sc
		}
	}
	t1, c1 := s.Run()
	t2, c2 := s.Run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("transfer scenario not deterministic: (%d,%f) vs (%d,%f)", t1, c1, t2, c2)
	}
	if t1 <= 0 || c1 <= 0 {
		t.Fatalf("transfer scenario produced no traffic/deliveries: %d, %f", t1, c1)
	}
}

// TestReportRoundTripAndCompare measures one scenario in quick mode,
// writes the JSON report, reads it back and compares it to itself.
func TestReportRoundTripAndCompare(t *testing.T) {
	rep, err := Run([]string{"transfer"}, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || len(rep.Results) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	r := rep.Results[0]
	if r.Iterations < 1 || r.NsPerOp <= 0 || r.TrafficBytesPerOp <= 0 {
		t.Fatalf("implausible measurement: %+v", r)
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(back, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].ChecksumDrift {
		t.Fatalf("self-comparison should be drift-free: %+v", deltas)
	}
	if deltas[0].NsRatio != 1 {
		t.Fatalf("self-comparison ns ratio should be 1, got %f", deltas[0].NsRatio)
	}
}

// TestRunUnknownScenario checks the error path.
func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run([]string{"nope"}, QuickOptions()); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

// TestCompareSchemaMismatch checks cross-version comparisons are refused.
func TestCompareSchemaMismatch(t *testing.T) {
	a := &Report{SchemaVersion: SchemaVersion}
	b := &Report{SchemaVersion: SchemaVersion + 1}
	if _, err := Compare(a, b); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

package bench

import (
	"path/filepath"
	"testing"
)

// TestScenarioRegistry pins the registry: names are unique, non-empty and
// stable-ordered, so BENCH_engine.json comparisons across PRs line up.
func TestScenarioRegistry(t *testing.T) {
	ss := Scenarios()
	if len(ss) < 6 {
		t.Fatalf("expected at least 6 scenarios, got %d", len(ss))
	}
	seen := map[string]bool{}
	for _, s := range ss {
		if s.Name == "" || s.Desc == "" || (s.Run == nil && s.RunHeap == nil) {
			t.Fatalf("scenario %+v incomplete", s.Name)
		}
		if s.Run != nil && s.RunHeap != nil {
			t.Fatalf("scenario %q declares both Run and RunHeap", s.Name)
		}
		if s.HeapCeiling > 0 && s.RunHeap == nil {
			t.Fatalf("scenario %q commits a heap ceiling without measuring heap", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"engine-1", "engine-4", "engine-16", "engine-16-w4", "engine-64", "engine-256", "engine-1k", "engine-1k-w4", "engine-100k", "churn-10k", "topo-2k", "churn-1k", "repair", "sweep", "innet-vs-base", "adaptivity", "transfer"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from registry", want)
		}
	}
}

// TestWorkersOverride: -workers retunes the unpinned engine scenarios
// without renaming them, and never touches the pinned -wN twins.
func TestWorkersOverride(t *testing.T) {
	byName := map[string]Scenario{}
	for _, s := range scenariosAt(8) {
		byName[s.Name] = s
	}
	if got := byName["engine-16"].Workers; got != 8 {
		t.Fatalf("engine-16 workers = %d under override 8", got)
	}
	if got := byName["engine-16-w4"].Workers; got != 4 {
		t.Fatalf("pinned engine-16-w4 workers = %d, want 4", got)
	}
	if _, renamed := byName["engine-16-w8"]; renamed {
		t.Fatal("override renamed a scenario")
	}
}

// TestParallelTwinChecksums: the -w4 scenarios must produce the same
// simulated traffic and checksum as their sequential twins — the
// worker-invariance guarantee at the trajectory-file level.
func TestParallelTwinChecksums(t *testing.T) {
	byName := map[string]Scenario{}
	for _, s := range Scenarios() {
		byName[s.Name] = s
	}
	seqTraffic, seqCheck := byName["engine-16"].Run()
	parTraffic, parCheck := byName["engine-16-w4"].Run()
	if seqTraffic != parTraffic || seqCheck != parCheck {
		t.Fatalf("engine-16 twins disagree: (%d,%f) vs (%d,%f)", seqTraffic, seqCheck, parTraffic, parCheck)
	}
}

// TestCompareMismatchWarnings: differing num_cpu or worker counts are
// surfaced as warnings, never as determinism drift.
func TestCompareMismatchWarnings(t *testing.T) {
	old := &Report{SchemaVersion: SchemaVersion, NumCPU: 1, Results: []Result{
		{Name: "engine-16", Workers: 0, NsPerOp: 100, Checksum: 7}, // pre-field report: Workers 0 reads as 1
	}}
	new := &Report{SchemaVersion: SchemaVersion, NumCPU: 8, Results: []Result{
		{Name: "engine-16", Workers: 4, NsPerOp: 25, Checksum: 7},
	}}
	if msg := EnvMismatch(old, new); msg == "" {
		t.Fatal("cpu mismatch not reported")
	}
	if msg := EnvMismatch(old, old); msg != "" {
		t.Fatalf("spurious env mismatch: %s", msg)
	}
	deltas, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || !deltas[0].WorkersMismatch {
		t.Fatalf("workers mismatch not flagged: %+v", deltas)
	}
	if deltas[0].ChecksumDrift {
		t.Fatal("equal checksums reported as drift across a worker mismatch")
	}
}

// TestRepairScenarioDeterminism runs the new section-7 scenario twice: the
// churn-recovery path must be as reproducible as everything else in the
// trajectory file (the churn-1k equivalent is covered by the committed
// checksum via the CI drift gate; it is too heavy for a unit test).
func TestRepairScenarioDeterminism(t *testing.T) {
	var s Scenario
	for _, sc := range Scenarios() {
		if sc.Name == "repair" {
			s = sc
		}
	}
	t1, c1 := s.Run()
	t2, c2 := s.Run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("repair scenario not deterministic: (%d,%f) vs (%d,%f)", t1, c1, t2, c2)
	}
	if t1 <= 0 || c1 < 1e3 {
		t.Fatalf("repair scenario repaired nothing: traffic=%d check=%f", t1, c1)
	}
}

// TestTransferScenarioDeterminism runs the cheapest scenario twice and
// checks traffic and checksum are identical — the property the whole
// trajectory file depends on.
func TestTransferScenarioDeterminism(t *testing.T) {
	var s Scenario
	for _, sc := range Scenarios() {
		if sc.Name == "transfer" {
			s = sc
		}
	}
	t1, c1 := s.Run()
	t2, c2 := s.Run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("transfer scenario not deterministic: (%d,%f) vs (%d,%f)", t1, c1, t2, c2)
	}
	if t1 <= 0 || c1 <= 0 {
		t.Fatalf("transfer scenario produced no traffic/deliveries: %d, %f", t1, c1)
	}
}

// TestReportRoundTripAndCompare measures one scenario in quick mode,
// writes the JSON report, reads it back and compares it to itself.
func TestReportRoundTripAndCompare(t *testing.T) {
	rep, err := Run([]string{"transfer"}, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || len(rep.Results) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	r := rep.Results[0]
	if r.Iterations < 1 || r.NsPerOp <= 0 || r.TrafficBytesPerOp <= 0 {
		t.Fatalf("implausible measurement: %+v", r)
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(back, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].ChecksumDrift {
		t.Fatalf("self-comparison should be drift-free: %+v", deltas)
	}
	if deltas[0].NsRatio != 1 {
		t.Fatalf("self-comparison ns ratio should be 1, got %f", deltas[0].NsRatio)
	}
}

// TestRunUnknownScenario checks the error path.
func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run([]string{"nope"}, QuickOptions()); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

// TestCompareSchemaMismatch checks cross-version comparisons are refused.
func TestCompareSchemaMismatch(t *testing.T) {
	a := &Report{SchemaVersion: SchemaVersion}
	b := &Report{SchemaVersion: SchemaVersion + 1}
	if _, err := Compare(a, b); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/routing"
	"repro/internal/topology"
)

// lineDepth models a path whose node i sits depth[i] hops from the base.
func lineDepth(depths map[topology.NodeID]int) func(topology.NodeID) int {
	return func(id topology.NodeID) int { return depths[id] }
}

func TestPlacePairSkew(t *testing.T) {
	path := routing.Path{10, 11, 12, 13, 14}
	depth := lineDepth(map[topology.NodeID]int{10: 5, 11: 5, 12: 5, 13: 5, 14: 5})
	loud := PlacePair(costmodel.Params{SigmaS: 1, SigmaT: 0.1, W: 3}, path, depth, nil)
	quiet := PlacePair(costmodel.Params{SigmaS: 0.1, SigmaT: 1, W: 3}, path, depth, nil)
	if loud.AtBase || quiet.AtBase {
		t.Fatal("flat-depth skewed pair should stay in-network")
	}
	if loud.JoinNode(path) != 10 || quiet.JoinNode(path) != 14 {
		t.Fatalf("skew placement: loud at %d, quiet at %d", loud.JoinNode(path), quiet.JoinNode(path))
	}
}

func TestPlacePairNormalizesBaseNode(t *testing.T) {
	// A path running through the base station: a placement landing on
	// node 0 must become a base join.
	path := routing.Path{10, 0, 14}
	depth := lineDepth(map[topology.NodeID]int{10: 1, 0: 0, 14: 1})
	pl := PlacePair(costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 1, W: 5}, path, depth, nil)
	if !pl.AtBase {
		t.Fatalf("placement on the root not normalized: %+v", pl)
	}
	if pl.JoinNode(path) != topology.Base {
		t.Fatal("JoinNode of a base placement must be the base")
	}
}

func TestPlacePairPolicyOverride(t *testing.T) {
	path := routing.Path{10, 11, 12}
	depth := lineDepth(map[topology.NodeID]int{10: 3, 11: 3, 12: 3})
	mid := func(p costmodel.Params, depths []int) costmodel.Placement {
		return costmodel.Placement{Index: len(depths) / 2}
	}
	pl := PlacePair(costmodel.Params{SigmaS: 1, SigmaT: 0}, path, depth, mid)
	if pl.AtBase || pl.JoinNode(path) != 11 {
		t.Fatalf("override ignored: %+v", pl)
	}
}

func TestPlacePairNeverWorseThanBaseQuick(t *testing.T) {
	// The section 3.2 guarantee, end to end through the core API.
	f := func(ss, st, sst uint8, d0, d1, d2 uint8) bool {
		p := costmodel.Params{
			SigmaS:  float64(ss%100) / 100,
			SigmaT:  float64(st%100) / 100,
			SigmaST: float64(sst%100) / 100,
			W:       2,
		}
		path := routing.Path{20, 21, 22}
		depths := map[topology.NodeID]int{
			20: int(d0%10) + 1, 21: int(d1%10) + 1, 22: int(d2%10) + 1,
		}
		pl := PlacePair(p, path, lineDepth(depths), nil)
		baseCost := costmodel.PairAtBase(p, depths[20], depths[22])
		return pl.Cost <= baseCost+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplannerMigratesOnDivergence(t *testing.T) {
	path := routing.Path{10, 11, 12, 13, 14}
	depth := lineDepth(map[topology.NodeID]int{10: 5, 11: 5, 12: 5, 13: 5, 14: 5})
	// Initial belief: s loud, t quiet -> join at s side.
	r := NewReplanner(costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0, W: 3}, path, depth, nil)
	if r.Current.JoinNode(path) != 10 {
		t.Fatalf("initial placement at %d, want 10", r.Current.JoinNode(path))
	}
	// Reality: s quiet, t loud.
	moved := false
	for c := 0; c < 3*r.Estimator().Interval; c++ {
		if c%10 == 0 {
			r.ObserveS()
		}
		r.ObserveT()
		if _, m := r.EndCycle(c); m {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("replanner never migrated despite inverted reality")
	}
	if got := r.Current.JoinNode(path); got == 10 {
		t.Fatalf("migration did not move off the wrong endpoint (still %d)", got)
	}
}

func TestReplannerStableWhenAccurate(t *testing.T) {
	path := routing.Path{10, 11, 12}
	depth := lineDepth(map[topology.NodeID]int{10: 4, 11: 4, 12: 4})
	r := NewReplanner(costmodel.Params{SigmaS: 1, SigmaT: 1, SigmaST: 0.5, W: 1}, path, depth, nil)
	for c := 0; c < 100; c++ {
		r.ObserveS()
		r.ObserveT()
		r.ObserveResults(1) // 1/(1*2) = 0.5 exactly
		if _, moved := r.EndCycle(c); moved {
			t.Fatalf("spurious migration at cycle %d", c)
		}
	}
}

func TestReplannerSetPath(t *testing.T) {
	path := routing.Path{10, 11, 12, 13, 14}
	depth := lineDepth(map[topology.NodeID]int{10: 5, 11: 5, 12: 5, 13: 5, 14: 5, 99: 5})
	r := NewReplanner(costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0, W: 3}, path, depth, nil)
	j := r.Current.JoinNode(path)
	// Repair reroutes around node 13.
	repaired := routing.Path{10, 11, 12, 99, 14}
	if !r.SetPath(repaired, j) {
		t.Fatal("join node lost although still on the repaired path")
	}
	if r.Current.JoinNode(repaired) != j {
		t.Fatal("SetPath changed the effective join node")
	}
	// A reroute that drops the join node must report failure.
	if r.SetPath(routing.Path{10, 99, 14}, 12) {
		t.Fatal("SetPath claimed success for a vanished join node")
	}
}

func TestPlacementJoinNodeBase(t *testing.T) {
	pl := Placement{AtBase: true}
	if pl.JoinNode(routing.Path{5, 6}) != topology.Base {
		t.Fatal("AtBase placement must resolve to the base")
	}
}

// Package core is the paper's primary contribution distilled into one
// place: the dynamic join optimization decision procedure. Everything else
// in this repository is substrate (simulator, routing, windows) or
// packaging (engines, experiments); the decisions the paper is about —
// where to place each pair's join node (section 3.1), whether that beats
// the base station (section 3.2), and when learned selectivities justify
// moving it (section 6) — live here as pure, engine-independent logic.
//
// The In-Net execution engine (internal/join) calls into this package; the
// GROUPOPT group-level decision is in internal/mpo (it needs coordination
// traffic), built on the same cost expressions (internal/costmodel).
package core

import (
	"repro/internal/adapt"
	"repro/internal/costmodel"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Placement is the optimizer's decision for one producer pair.
type Placement struct {
	// AtBase means the pair joins at the base station.
	AtBase bool
	// PathIndex is the join node's index on the pair's discovered path
	// (meaningful only when !AtBase).
	PathIndex int
	// Cost is the winning expected per-cycle cost.
	Cost float64
}

// JoinNode resolves the placement to a node ID given the pair's path.
func (pl Placement) JoinNode(path routing.Path) topology.NodeID {
	if pl.AtBase {
		return topology.Base
	}
	return path[pl.PathIndex]
}

// PlacePolicy computes a placement from cost parameters and the per-node
// base distances along the path. The default is the paper's cost model;
// ablations substitute naive policies.
type PlacePolicy func(p costmodel.Params, depths []int) costmodel.Placement

// PlacePair runs the section 3.1/3.2 decision for one pair: minimize the
// placement expression over every node of the discovered path, compare
// against joining at the base, and normalize — a winning "in-network"
// node that IS the base station is a base join (the path may run through
// the root). depthToBase supplies each path node's hop distance to the
// base; policy nil selects the cost model.
func PlacePair(p costmodel.Params, path routing.Path, depthToBase func(topology.NodeID) int, policy PlacePolicy) Placement {
	depths := make([]int, len(path))
	for i, n := range path {
		depths[i] = depthToBase(n)
	}
	if policy == nil {
		policy = costmodel.BestPlacement
	}
	pl := policy(p, depths)
	if pl.AtBase {
		return Placement{AtBase: true, Cost: pl.Cost}
	}
	idx := pl.Index
	if idx < 0 {
		idx = 0
	}
	if path[idx] == topology.Base {
		return Placement{AtBase: true, Cost: pl.Cost}
	}
	return Placement{PathIndex: idx, Cost: pl.Cost}
}

// Replanner couples a pair's selectivity estimator with its placement: it
// observes traffic at the join node and, when estimates diverge beyond the
// trigger, produces the new placement (section 6's continuous query
// optimization).
type Replanner struct {
	est    *adapt.Estimator
	path   routing.Path
	depth  func(topology.NodeID) int
	policy PlacePolicy
	// Current is the placement in force.
	Current Placement
}

// NewReplanner starts adaptive optimization for a pair placed with params.
func NewReplanner(params costmodel.Params, path routing.Path, depthToBase func(topology.NodeID) int, policy PlacePolicy) *Replanner {
	r := &Replanner{
		est:    adapt.New(params),
		path:   path,
		depth:  depthToBase,
		policy: policy,
	}
	r.Current = PlacePair(params, path, depthToBase, policy)
	return r
}

// Estimator exposes the underlying estimator for tuning (trigger ratio,
// estimation and reset intervals).
func (r *Replanner) Estimator() *adapt.Estimator { return r.est }

// ObserveS records an arriving s tuple at the join node.
func (r *Replanner) ObserveS() { r.est.ObserveS() }

// ObserveT records an arriving t tuple at the join node.
func (r *Replanner) ObserveT() { r.est.ObserveT() }

// ObserveResults records produced join results.
func (r *Replanner) ObserveResults(n int) { r.est.ObserveResults(n) }

// EndCycle closes the given cycle on the estimator clock (idempotently,
// per the adapt.Estimator contract). When the learned selectivities
// diverge beyond the trigger it recomputes the placement; moved reports
// whether the join node changed (the caller then migrates the window).
func (r *Replanner) EndCycle(cycle int) (pl Placement, moved bool) {
	fresh, triggered := r.est.EndCycle(cycle)
	if !triggered {
		return r.Current, false
	}
	next := PlacePair(fresh, r.path, r.depth, r.policy)
	if next.JoinNode(r.path) == r.Current.JoinNode(r.path) {
		return r.Current, false
	}
	r.Current = next
	return next, true
}

// SetPath updates the pair's path after a repair or collapse reroute,
// re-deriving the current placement's index on the new path. keepNode is
// the join node that must remain in force; ok is false if it is no longer
// on the path (the caller must re-place from scratch).
func (r *Replanner) SetPath(path routing.Path, keepNode topology.NodeID) (ok bool) {
	r.path = path
	if r.Current.AtBase {
		return true
	}
	for i, n := range path {
		if n == keepNode {
			r.Current.PathIndex = i
			return true
		}
	}
	return false
}

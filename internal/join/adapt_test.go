// White-box tests for the engine-phase adaptivity entry point (AdaptEpoch):
// cycle idempotence, single-charged migration traffic, and the
// migration-versus-failure race — a nominated target that died this epoch
// must abort into the section-7 base fallback with the pair's window
// intact and no state installed at the dead node.

package join

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// adaptHarness starts an In-Net stepper under external adaptivity with
// deliberately wrong optimizer estimates, so learning will trigger a
// migration within a few estimate intervals.
func adaptHarness(t *testing.T, opts InnetOptions) (*harness, *engine) {
	t.Helper()
	h := newHarness(t, "Q0", workload.Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2})
	cfg := h.config(100, 0)
	cfg.Opt = costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2, W: h.spec.W}
	cfg.ExternalAdapt = true
	return h, Innet{Opts: opts}.Start(cfg).(*engine)
}

// placements snapshots every pair's current join node, keyed by pair index.
func placements(e *engine) []topology.NodeID {
	out := make([]topology.NodeID, len(e.pairs))
	for i, p := range e.pairs {
		out[i] = p.joinNode()
	}
	return out
}

// TestAdaptEpochIdempotentAndSingleCharged: closing the same cycle twice
// must not re-trigger (the adapt.Estimator idempotence contract carried
// through the stepper), and migration traffic — window snapshots plus
// re-nominations — lands exactly once, in the sim.Migration ledger class.
func TestAdaptEpochIdempotentAndSingleCharged(t *testing.T) {
	_, e := adaptHarness(t, InnetOptions{})
	migrated := 0
	cycle := 0
	for ; cycle < 60; cycle++ {
		e.Step(cycle)
		m, a := e.AdaptEpoch(cycle, nil)
		if a != 0 {
			t.Fatalf("cycle %d: aborted %d migrations with every node alive", cycle, a)
		}
		if m > 0 {
			migrated = m
			break
		}
	}
	if migrated == 0 {
		t.Fatal("wrong estimates never triggered a migration")
	}
	migBytes := e.cfg.Net.Metrics().KindBytes(sim.Migration)
	if migBytes == 0 {
		t.Fatal("committed migration charged no sim.Migration traffic")
	}
	if ctl := e.cfg.Net.Metrics().KindBytes(sim.Control); ctl == 0 {
		t.Fatal("initiation control traffic missing — ledger classes conflated?")
	}
	before := e.cfg.Net.Metrics().TotalBytes
	m, a := e.AdaptEpoch(cycle, nil)
	if m != 0 || a != 0 {
		t.Fatalf("re-closing cycle %d re-triggered: migrated=%d aborted=%d", cycle, m, a)
	}
	if after := e.cfg.Net.Metrics().TotalBytes; after != before {
		t.Fatalf("idempotent re-close charged %d bytes", after-before)
	}
}

// TestAdaptEpochAbortsOnDeadTarget is property (d) at the join layer: a
// twin run discovers which node the first triggered migration nominates;
// the real run then presents a deployment view in which exactly that node
// died this epoch. The commit must abort — pair at the base station,
// window preserved, nothing registered at the dead target.
func TestAdaptEpochAbortsOnDeadTarget(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts InnetOptions
	}{
		{"individual", InnetOptions{}},
		{"groupopt", InnetOptions{Multicast: true, GroupOpt: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, twin := adaptHarness(t, tc.opts)
			_, real := adaptHarness(t, tc.opts)
			for cycle := 0; cycle < 60; cycle++ {
				twin.Step(cycle)
				real.Step(cycle)
				before := placements(twin)
				m, _ := twin.AdaptEpoch(cycle, nil)
				if m == 0 {
					real.AdaptEpoch(cycle, nil)
					continue
				}
				// The twin migrated. Find the first moved pair and its
				// in-network target, then replay the same epoch in the
				// real engine with that target dead.
				moved := -1
				for i := range twin.pairs {
					if twin.pairs[i].joinNode() != before[i] && twin.pairs[i].jIdx >= 0 {
						moved = i
						break
					}
				}
				if moved < 0 {
					t.Skip("every migration this epoch landed at the base; no target to kill")
				}
				target := twin.pairs[moved].joinNode()
				live := topology.NewLiveness(h.topo.N())
				live.Fail(target)
				_, aborted := real.AdaptEpoch(cycle, live)
				if aborted < 1 {
					t.Fatalf("dead target %d did not abort any migration", target)
				}
				p := real.pairs[moved]
				if p.joinNode() == target {
					t.Fatalf("pair %d committed onto dead node %d", moved, target)
				}
				if p.jIdx >= 0 {
					t.Fatalf("aborted pair %d not at the base station (join node %d)", moved, p.joinNode())
				}
				if real.res.MigrationsAborted != aborted {
					t.Fatalf("result counter %d != returned aborts %d", real.res.MigrationsAborted, aborted)
				}
				// Window intact: the producers' retained tuples must be
				// queryable at the base, not stranded at the dead node.
				base := real.stateAt(topology.Base)
				if ps := real.prodS[p.s]; ps != nil && len(ps.recent) > 0 && base.WindowLen(p.s) == 0 {
					t.Fatalf("producer %d window lost in the abort", p.s)
				}
				// The pair must keep producing after the abort.
				resultsAt := real.Results()
				for c := cycle + 1; c < cycle+30; c++ {
					real.Step(c)
					real.AdaptEpoch(c, live)
				}
				if real.Results() <= resultsAt {
					t.Fatal("no results delivered after the aborted migration")
				}
				return
			}
			t.Fatal("wrong estimates never triggered a migration")
		})
	}
}

package join

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/dht"
	"repro/internal/ght"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// harness bundles one reproducible experimental setup.
type harness struct {
	topo  *topology.Topology
	nodes []workload.NodeInfo
	spec  *workload.Spec
	rates workload.Rates
}

func newHarness(t *testing.T, queryName string, rates workload.Rates) *harness {
	t.Helper()
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := workload.BuildNodes(topo, 1)
	var spec *workload.Spec
	switch queryName {
	case "Q0":
		spec = workload.Query0(topo, nodes, 10, rates, 7)
	case "Q1":
		spec = workload.Query1(topo, nodes, rates)
	case "Q2":
		spec = workload.Query2(topo, nodes, rates)
	default:
		t.Fatalf("unknown query %s", queryName)
	}
	return &harness{topo: topo, nodes: nodes, spec: spec, rates: rates}
}

// config builds a fresh Config with independent network metrics but shared
// data seeds, so algorithms compare on identical inputs.
func (h *harness) config(cycles int, lossProb float64) *Config {
	net := sim.NewNetwork(h.topo, lossProb, 99)
	sub := routing.NewSubstrate(h.topo, routing.Options{
		NumTrees:       3,
		Indexes:        h.spec.Indexes,
		IndexPositions: h.spec.IndexPositions,
	}, nil)
	gen := workload.NewGenerator(h.rates, 42)
	opt := costmodel.Params{
		SigmaS:  h.rates.SigmaS,
		SigmaT:  h.rates.SigmaT,
		SigmaST: h.rates.SigmaST,
		W:       h.spec.W,
	}
	return NewConfig(h.topo, net, sub, h.spec, gen, opt, cycles)
}

func allAlgorithms(h *harness) []Algorithm {
	return []Algorithm{
		Naive{},
		Base{},
		Yang07{},
		Hashed{Label: "GHT", Router: ght.NewRouter(h.topo)},
		Hashed{Label: "DHT", Router: dht.NewRing(h.topo)},
		Innet{},
		Innet{Opts: InnetOptions{Multicast: true}},
		Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}},
		Innet{Opts: InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}},
	}
}

func TestAllAlgorithmsDeliverIdenticalResults(t *testing.T) {
	// On a lossless network every algorithm computes the same windowed
	// join over the same data. Algorithms that process producers in the
	// same intra-cycle order (Naive, Base, and all In-Net variants) must
	// agree EXACTLY. Yang+07 (targets before sources) and the hashed
	// substrates (group order) interleave same-cycle arrivals differently,
	// which legitimately shifts a few matches across the window-eviction
	// boundary — those must agree within 5%.
	for _, q := range []string{"Q0", "Q1", "Q2"} {
		h := newHarness(t, q, workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.2})
		var want int
		for i, alg := range allAlgorithms(h) {
			res := alg.Run(h.config(60, 0))
			if i == 0 {
				want = res.Results
				if want == 0 {
					t.Fatalf("%s: Naive produced no results — workload degenerate", q)
				}
				continue
			}
			name := alg.Name()
			exact := name == "Base" || name == "Innet" || len(name) > 5 && name[:6] == "Innet-"
			if exact {
				if res.Results != want {
					t.Errorf("%s: %s delivered %d results, Naive delivered %d", q, name, res.Results, want)
				}
				continue
			}
			lo, hi := int(float64(want)*0.95), int(float64(want)*1.05)+1
			if res.Results < lo || res.Results > hi {
				t.Errorf("%s: %s delivered %d results, outside 5%% of Naive's %d", q, name, res.Results, want)
			}
		}
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	for _, alg := range allAlgorithms(h) {
		a := alg.Run(h.config(30, 0.05))
		b := alg.Run(h.config(30, 0.05))
		if a.TotalBytes != b.TotalBytes || a.Results != b.Results {
			t.Errorf("%s not deterministic: (%d,%d) vs (%d,%d)",
				alg.Name(), a.TotalBytes, a.Results, b.TotalBytes, b.Results)
		}
	}
}

func TestNaiveHasNoInitiationCost(t *testing.T) {
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	res := Naive{}.Run(h.config(10, 0))
	if res.InitBytes != 0 {
		t.Fatalf("Naive InitBytes = %d, want 0", res.InitBytes)
	}
	res2 := Base{}.Run(h.config(10, 0))
	if res2.InitBytes == 0 {
		t.Fatal("Base must pay initiation")
	}
}

func TestBaseCheaperThanNaiveForLongRuns(t *testing.T) {
	// Base eliminates non-joining producers; over enough cycles its total
	// traffic drops below Naive's despite the initiation cost.
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	naive := Naive{}.Run(h.config(100, 0))
	base := Base{}.Run(h.config(100, 0))
	if base.TotalBytes >= naive.TotalBytes {
		t.Fatalf("Base (%d B) not cheaper than Naive (%d B) over 100 cycles",
			base.TotalBytes, naive.TotalBytes)
	}
}

func TestInnetBeatsGHT(t *testing.T) {
	// "GHT always does poorly due to its long routing paths."
	h := newHarness(t, "Q2", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	innet := Innet{}.Run(h.config(100, 0))
	ghtRes := (Hashed{Label: "GHT", Router: ght.NewRouter(h.topo)}).Run(h.config(100, 0))
	if innet.TotalBytes >= ghtRes.TotalBytes {
		t.Fatalf("Innet (%d B) not cheaper than GHT (%d B) on Query 2",
			innet.TotalBytes, ghtRes.TotalBytes)
	}
}

func TestInnetBestOnPerimeterQuery(t *testing.T) {
	// "Innet provides the best performance in all cases of Query 2."
	h := newHarness(t, "Q2", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	innet := Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}.Run(h.config(100, 0))
	for _, alg := range []Algorithm{Naive{}, Base{}, Hashed{Label: "GHT", Router: ght.NewRouter(h.topo)}} {
		other := alg.Run(h.config(100, 0))
		if innet.TotalBytes >= other.TotalBytes {
			t.Errorf("Innet-cmg (%d B) not cheaper than %s (%d B) on Query 2",
				innet.TotalBytes, alg.Name(), other.TotalBytes)
		}
	}
}

func TestMulticastReducesTraffic(t *testing.T) {
	// A producer joining multiple partners should benefit from shared
	// multicast prefixes and dropped path vectors.
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.05})
	plain := Innet{}.Run(h.config(100, 0))
	cm := Innet{Opts: InnetOptions{Multicast: true}}.Run(h.config(100, 0))
	if cm.TotalBytes >= plain.TotalBytes {
		t.Fatalf("Innet-cm (%d B) not cheaper than Innet (%d B)", cm.TotalBytes, plain.TotalBytes)
	}
}

func TestGroupOptNeverWorseAtHighSharing(t *testing.T) {
	// With high sigma_s the pairwise model overpays for shared
	// computation; GROUPOPT should move groups to the base and win
	// (Fig 2's right-hand stages).
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2})
	plain := Innet{Opts: InnetOptions{Multicast: true}}.Run(h.config(100, 0))
	cmg := Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}.Run(h.config(100, 0))
	if float64(cmg.TotalBytes) > 1.05*float64(plain.TotalBytes) {
		t.Fatalf("Innet-cmg (%d B) worse than Innet-cm (%d B) at high sharing",
			cmg.TotalBytes, plain.TotalBytes)
	}
}

func TestGroupOptMovesGroupsToBase(t *testing.T) {
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	plain := Innet{}.Run(h.config(20, 0))
	cmg := Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}.Run(h.config(20, 0))
	if cmg.AtBasePairs <= plain.AtBasePairs {
		t.Skipf("group opt found no base-favouring groups (plain=%d cmg=%d)",
			plain.AtBasePairs, cmg.AtBasePairs)
	}
}

func TestLearningRecoversFromWrongEstimates(t *testing.T) {
	// Initiate with badly wrong selectivities; learning must close most
	// of the gap to the oracle (Fig 10's '+' bars).
	h := newHarness(t, "Q0", workload.Rates{SigmaS: 0.1, SigmaT: 1, SigmaST: 0.2})
	wrongOpt := costmodel.Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0.2, W: h.spec.W}

	oracleCfg := h.config(200, 0)
	oracle := Innet{}.Run(oracleCfg)

	wrongCfg := h.config(200, 0)
	wrongCfg.Opt = wrongOpt
	wrong := Innet{}.Run(wrongCfg)

	learnCfg := h.config(200, 0)
	learnCfg.Opt = wrongOpt
	learned := Innet{Opts: InnetOptions{Learn: true}}.Run(learnCfg)

	if wrong.TotalBytes <= oracle.TotalBytes {
		t.Skipf("wrong estimates happened to be harmless here (wrong=%d oracle=%d)",
			wrong.TotalBytes, oracle.TotalBytes)
	}
	if learned.Migrations == 0 {
		t.Fatal("learning never migrated a join node despite wrong estimates")
	}
	if learned.TotalBytes >= wrong.TotalBytes {
		t.Fatalf("learning (%d B) did not improve on wrong estimates (%d B); oracle %d B",
			learned.TotalBytes, wrong.TotalBytes, oracle.TotalBytes)
	}
}

func TestFailureSwitchesPairToBase(t *testing.T) {
	// Section 7: fail the join node mid-run; the pair must fail over to
	// the base station and keep producing results.
	h := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	// Find one pair's join node by running initiation only.
	probeCfg := h.config(1, 0)
	probe := Innet{}.Run(probeCfg)
	if probe.InNetPairs == 0 {
		t.Skip("no in-network pairs to fail")
	}
	// Re-run and fail a join node at mid-run. Identify a join node by
	// re-deriving placement deterministically: run again with the same
	// seeds and inspect pair locations via a custom placement override
	// that records them.
	var joinNodes []topology.NodeID
	recordCfg := h.config(1, 0)
	rec := Innet{Opts: InnetOptions{PlacementOverride: func(p costmodel.Params, depths []int) costmodel.Placement {
		pl := costmodel.BestPlacement(p, depths)
		return pl
	}}}
	_ = rec.Run(recordCfg)
	// Instead, find the join node from a fresh engine run through the
	// exported surface: use failure injection on the node observed to
	// carry join traffic. Simplest robust choice: fail the node with the
	// highest non-base load in the no-failure run.
	noFail := Innet{}.Run(h.config(100, 0))
	var victim topology.NodeID = -1
	var best int64
	for i, b := range noFail.NodeBytes {
		id := topology.NodeID(i)
		if id == topology.Base || h.spec.EligibleS(id) || h.spec.EligibleT(id) {
			continue
		}
		if b > best {
			victim, best = id, b
		}
	}
	if victim < 0 {
		t.Skip("no interior join node found")
	}
	joinNodes = append(joinNodes, victim)

	failCfg := h.config(100, 0)
	failCfg.FailNode = joinNodes[0]
	failCfg.FailCycle = 50
	withFail := Innet{}.Run(failCfg)
	if withFail.Results == 0 {
		t.Fatal("no results delivered despite failover")
	}
	// Results keep flowing after the failure: the run must deliver a
	// reasonable fraction of the no-failure count.
	if withFail.Results < noFail.Results/2 {
		t.Fatalf("failover lost too many results: %d vs %d", withFail.Results, noFail.Results)
	}
}

func TestMeanDelayReflectsJoinSelectivity(t *testing.T) {
	// Results arrive more rarely at lower sigma_st, so the inter-result
	// delay grows (the Fig 14a baseline effect).
	h20 := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	h05 := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.05})
	d20 := Innet{}.Run(h20.config(200, 0))
	d05 := Innet{}.Run(h05.config(200, 0))
	if len(d20.Delays) == 0 || len(d05.Delays) == 0 {
		t.Skip("not enough results for delay comparison")
	}
	if d05.MeanDelay() <= d20.MeanDelay() {
		t.Fatalf("delay at sigma_st=5%% (%.2f) not above 20%% (%.2f)",
			d05.MeanDelay(), d20.MeanDelay())
	}
}

func TestResultMergingBatchesPerCycle(t *testing.T) {
	// sendResults merges matches from one join node in one cycle into a
	// single transfer: message count at a 1-hop join node must be 1.
	h := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 1})
	cfg := h.config(0, 0)
	res := &Result{}
	r := newRecorder(res)
	before := cfg.Net.Metrics().TotalMessages
	j := cfg.Sub.Trees[0].Children[topology.Base][0]
	sendResults(cfg, r, j, 5, 3)
	msgs := cfg.Net.Metrics().TotalMessages - before
	if msgs != 1 {
		t.Fatalf("5 results sent as %d messages, want 1 merged packet", msgs)
	}
	if res.Results != 5 {
		t.Fatalf("recorded %d results, want 5", res.Results)
	}
}

func TestRecorderDelays(t *testing.T) {
	res := &Result{}
	r := newRecorder(res)
	r.record(1, 5)
	r.record(1, 9)
	r.record(2, 12)
	if res.Results != 4 {
		t.Fatalf("Results = %d", res.Results)
	}
	// Gaps: 9-5=4, 12-9=3, 12-12=0.
	want := []int{4, 3, 0}
	if len(res.Delays) != len(want) {
		t.Fatalf("Delays = %v", res.Delays)
	}
	for i := range want {
		if res.Delays[i] != want[i] {
			t.Fatalf("Delays = %v, want %v", res.Delays, want)
		}
	}
	if res.MeanDelay() < 2.3 || res.MeanDelay() > 2.4 {
		t.Fatalf("MeanDelay = %v", res.MeanDelay())
	}
}

func TestVariantNames(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		want string
	}{
		{Innet{}, "Innet"},
		{Innet{Opts: InnetOptions{Multicast: true}}, "Innet-cm"},
		{Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}, "Innet-cmg"},
		{Innet{Opts: InnetOptions{Multicast: true, PathCollapse: true, GroupOpt: true}}, "Innet-cmpg"},
		{Innet{Opts: InnetOptions{Learn: true}}, "Innet learn"},
		{Naive{}, "Naive"},
		{Base{}, "Base"},
		{Yang07{}, "Yang+07"},
	}
	for _, c := range cases {
		if got := c.alg.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestLossyNetworkStillWorks(t *testing.T) {
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.2})
	cfg := h.config(50, 0.05)
	res := Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}.Run(cfg)
	if res.Results == 0 {
		t.Fatal("no results under 5% loss")
	}
	if cfg.Net.Metrics().Retransmissions == 0 {
		t.Fatal("no retransmissions recorded under loss")
	}
}

func TestYang07OverflowsBoundedQueues(t *testing.T) {
	// The paper could not run Yang+07 on its synthetic topologies: "its
	// routing queues overflow almost immediately". With the simulator's
	// per-cycle relay queue bound enabled, Yang+07's through-the-base
	// relaying must lose far more results than Base does.
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	run := func(alg Algorithm) (*Result, int64) {
		cfg := h.config(50, 0)
		cfg.Net.QueueLimit = 8 // a small TinyOS-style forwarding queue
		res := alg.Run(cfg)
		return res, cfg.Net.QueueDrops()
	}
	baseRes, baseDrops := run(Base{})
	yangRes, yangDrops := run(Yang07{})
	if yangDrops <= baseDrops {
		t.Fatalf("Yang+07 drops (%d) not above Base drops (%d)", yangDrops, baseDrops)
	}
	if yangRes.Results >= baseRes.Results {
		t.Fatalf("Yang+07 delivered %d results vs Base %d under bounded queues — expected heavy loss",
			yangRes.Results, baseRes.Results)
	}
}

func TestMeshModeCountsMessages(t *testing.T) {
	// Appendix F: mesh runs compare message counts; verify the metric is
	// populated and no losses occur at LossProb 0.
	h := newHarness(t, "Q2", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	cfg := h.config(30, 0)
	res := Innet{Opts: InnetOptions{Multicast: true, GroupOpt: true}}.Run(cfg)
	if res.TotalMessages == 0 || res.BaseMessages == 0 {
		t.Fatal("message metrics unpopulated")
	}
	if cfg.Net.Metrics().Retransmissions != 0 {
		t.Fatal("retransmissions at zero loss")
	}
}

func TestEmptyQueryProducesNothing(t *testing.T) {
	// A query whose selections admit no producers must run cleanly and
	// cost (almost) nothing during computation.
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	nodes := workload.BuildNodes(topo, 1)
	spec := workload.Query1(topo, nodes, workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	// Cripple eligibility.
	spec.EligibleS = func(topology.NodeID) bool { return false }
	net := sim.NewNetwork(topo, 0, 1)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 2, Indexes: spec.Indexes}, nil)
	gen := workload.NewGenerator(workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1}, 1)
	cfg := NewConfig(topo, net, sub, spec, gen, costmodel.Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1, W: 3}, 20)
	res := Innet{}.Run(cfg)
	if res.Results != 0 {
		t.Fatal("results from an empty producer set")
	}
	if res.InNetPairs+res.AtBasePairs != 0 {
		t.Fatal("pairs discovered despite no eligible sources")
	}
}

func TestWindowSizeOneVsThree(t *testing.T) {
	// Larger windows keep more tuples joinable: w=3 must deliver at
	// least as many results as w=1 on the same data.
	h := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	r3 := Innet{}.Run(h.config(60, 0))
	// Rebuild the spec with w=1 by cloning and overriding.
	h1 := newHarness(t, "Q0", workload.Rates{SigmaS: 1, SigmaT: 1, SigmaST: 0.2})
	h1.spec.W = 1
	r1 := Innet{}.Run(h1.config(60, 0))
	if r3.Results < r1.Results {
		t.Fatalf("w=3 delivered %d results < w=1's %d", r3.Results, r1.Results)
	}
}

func TestOpportunisticMergePreservesResults(t *testing.T) {
	// Appendix E: merging changes packet accounting, never semantics. On
	// a lossless network the merged Base run must deliver exactly the
	// unmerged results with strictly fewer messages.
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.2})
	plain := Base{}.Run(h.config(60, 0))
	mergedCfg := h.config(60, 0)
	mergedCfg.Merge = true
	merged := Base{}.Run(mergedCfg)
	if merged.Results != plain.Results {
		t.Fatalf("merging changed results: %d vs %d", merged.Results, plain.Results)
	}
	if merged.TotalMessages >= plain.TotalMessages {
		t.Fatalf("merging did not reduce messages: %d vs %d", merged.TotalMessages, plain.TotalMessages)
	}
	if merged.TotalBytes >= plain.TotalBytes {
		t.Fatalf("merging did not reduce bytes: %d vs %d", merged.TotalBytes, plain.TotalBytes)
	}
}

func TestOpportunisticMergeUnderLoss(t *testing.T) {
	// With loss, a dropped merged packet loses a whole subtree's tuples;
	// the run must still deliver a sane fraction of results.
	h := newHarness(t, "Q1", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.2})
	cfg := h.config(60, 0.05)
	cfg.Merge = true
	res := Naive{}.Run(cfg)
	if res.Results == 0 {
		t.Fatal("merged delivery lost everything under 5% loss")
	}
}

// TestHashedStartAvoidsPreexistingFailures: a hashed query admitted into a
// deployment that has ALREADY lost nodes must not compute member routes
// through them (the engine admits queries at any epoch, possibly after
// churn).
func TestHashedStartAvoidsPreexistingFailures(t *testing.T) {
	h := newHarness(t, "Q2", workload.Rates{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 0.1})
	cfg := h.config(10, 0)
	ring := dht.NewRing(h.topo)
	// Find a victim on some member route of a fresh start.
	fresh := Hashed{Label: "DHT", Router: ring}.Start(cfg).(*hashedStepper)
	var victim topology.NodeID = -1
	for _, gg := range fresh.gs {
		for _, m := range gg.members {
			if len(m.path) >= 3 {
				victim = m.path[1]
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no multi-hop member route on this seed")
	}
	cfg2 := h.config(10, 0)
	cfg2.Net.Fail(victim)
	late := Hashed{Label: "DHT", Router: dht.NewRing(h.topo)}.Start(cfg2).(*hashedStepper)
	for _, gg := range late.gs {
		if !cfg2.Net.Alive(gg.home) {
			continue
		}
		for _, m := range gg.members {
			if cfg2.Net.Alive(m.id) && m.path.Contains(victim) {
				t.Fatalf("member %d routed through pre-failed node %d: %v", m.id, victim, m.path)
			}
		}
	}
}

// Package join implements the paper's join execution algorithms over the
// simulator substrate: the grouped baselines Naive and Base (join at the
// base station), the through-the-base algorithm of Yang+07, the GHT
// grouped join, and the pairwise In-Net algorithm with cost-model join
// node placement (section 3), including its MPO variants (multicast,
// group optimization, path collapsing — section 5), adaptive selectivity
// learning (section 6), and join-node failure recovery (section 7).
package join

import (
	"repro/internal/costmodel"
	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config is everything one run needs. The same Config (and the same seeds
// inside Net and Sampler) handed to different algorithms yields an
// apples-to-apples comparison on identical data.
type Config struct {
	Topo    *topology.Topology
	Net     *sim.Network
	Sub     *routing.Substrate
	Spec    *workload.Spec
	Sampler workload.Sampler
	// Opt carries the selectivity estimates the optimizer is given at
	// initiation. They may be wrong; learning variants converge away from
	// them.
	Opt costmodel.Params
	// Cycles is the number of sampling cycles to execute.
	Cycles int

	// FailNode/FailCycle inject a permanent node failure (section 7).
	// FailNode < 0 disables injection.
	FailNode  topology.NodeID
	FailCycle int

	// Merge enables Appendix E's opportunistic packet merging on the
	// join-at-base data path: tuples sharing tree links ride one packet.
	Merge bool

	// ExternalAdapt tells the stepper that section-6 adaptivity is driven
	// externally: the stepper keeps its selectivity estimators fed during
	// Step but leaves re-placement to an engine-level Adaptive pass, even
	// when its own Learn option is off. Steppers without learning support
	// ignore it.
	ExternalAdapt bool
}

// NewConfig fills the failure fields with their disabled defaults.
func NewConfig(topo *topology.Topology, net *sim.Network, sub *routing.Substrate, spec *workload.Spec, sampler workload.Sampler, opt costmodel.Params, cycles int) *Config {
	return &Config{
		Topo: topo, Net: net, Sub: sub, Spec: spec, Sampler: sampler,
		Opt: opt, Cycles: cycles, FailNode: -1, FailCycle: -1,
	}
}

// Result aggregates everything the paper's figures report about one run.
type Result struct {
	// Algorithm is the display name ("Naive", "Innet-cmg", ...).
	Algorithm string
	// InitBytes/InitMessages are the initiation-phase costs; the totals
	// below include them. InitBaseBytes is the initiation traffic at the
	// base station (Figure 6's comparison quantity).
	InitBytes     int64
	InitMessages  int64
	InitBaseBytes int64
	// TotalBytes etc. snapshot the network metrics at the end of the run.
	TotalBytes    int64
	TotalMessages int64
	BaseBytes     int64
	BaseMessages  int64
	MaxNodeBytes  int64
	NodeBytes     []int64
	Drops         int64
	// Results counts join results delivered to the base station.
	Results int
	// ResultsLost counts join results computed at a join node whose
	// delivery to the base station exhausted the retry policy. Every
	// result is in exactly one of Results or ResultsLost — a dropped
	// result never silently vanishes (the fault-injection layer's
	// end-to-end delivery guarantee; feeds the faults.losses counter).
	ResultsLost int
	// Delays records, per delivered result, the gap in sampling cycles
	// since the previous delivered result (the paper's Fig 14 "result
	// delay": how long the base waits between events).
	Delays []int
	// Migrations counts adaptive join-node moves (learning variants).
	Migrations int
	// MigrationsAborted counts adaptive moves abandoned at the commit
	// point because the target node had died; the pair fell back to the
	// base station instead (engine-driven adaptivity only).
	MigrationsAborted int
	// AtBasePairs / InNetPairs report where pairs ended up.
	AtBasePairs, InNetPairs int
	// PairJoinNodes lists the final in-network join node of each pair
	// (In-Net algorithms only), in pair-discovery order. Used by the
	// failure experiments to pick a victim.
	PairJoinNodes []topology.NodeID
	// PairPaths lists, aligned with PairJoinNodes, each in-network pair's
	// final s..t path. The churn benches pick intermediate-node victims
	// from it.
	PairPaths []routing.Path
}

// MeanDelay returns the average inter-result delay in cycles.
func (r *Result) MeanDelay() float64 {
	if len(r.Delays) == 0 {
		return float64(0)
	}
	s := 0
	for _, d := range r.Delays {
		s += d
	}
	return float64(s) / float64(len(r.Delays))
}

// Algorithm is one join strategy.
type Algorithm interface {
	Name() string
	Run(cfg *Config) *Result
}

// Stepper is an in-flight continuous execution of one query. Start has
// already run initiation; the caller drives sampling cycles one at a time,
// which lets an external scheduler (internal/engine) interleave many
// queries over one deployment epoch by epoch.
//
// Concurrency contract (audited for every stepper in this package, and
// what lets internal/engine step independent queries on parallel workers):
// Step confines writes to state the query owns — its Config.Net (metrics,
// loss stream, relay queues), its sampler, its window/join state, its pair
// and multicast bookkeeping, dense per-cycle scratch — and performs only
// reads of shared structures (routing.Substrate tables and cached root
// paths, topology adjacency, the deployment Liveness view). Anything that
// mutates shared state is confined to Start (e.g. dht.Ring route
// memoization, filled while admission is sequential) or to the
// FailureRecoverer hook, which the engine invokes only from its sequential
// churn phase. The Config.FailNode injection is the one exception: it
// mutates the network's liveness view from inside Step, so it is a
// single-query facility — schedulers stepping queries concurrently must
// use engine-level churn instead (internal/engine always leaves it
// disabled).
type Stepper interface {
	// Step executes one sampling cycle. cycle counts from 0 at the
	// query's admission and must increase by 1 per call.
	Step(cycle int)
	// Results reports join results delivered to the base station so far.
	Results() int
	// Finish ends the execution and returns the final result. Step must
	// not be called after Finish.
	Finish() *Result
}

// Continuous is an Algorithm whose execution can be driven by an external
// epoch scheduler. Every algorithm in this package implements it; Run is
// the single-query convenience built on top of Start.
type Continuous interface {
	Algorithm
	Start(cfg *Config) Stepper
}

// FailureRecoverer is implemented by steppers that can repair their
// routing state after the shared deployment loses nodes — section 7's
// recovery run at deployment scope by internal/engine. failed lists the
// nodes that failed this epoch; rp charges limited-exploration probes to
// the caller's network (the engine points it at the SHARED metrics
// stream, so repair exploration is paid once, not once per query).
// It returns how many paths were repaired in-network and how many pairs
// fell back to joining at the base station. Steppers that route only
// through the substrate's trees (which the engine rebuilds separately)
// need not implement it.
type FailureRecoverer interface {
	HandleNodeFailure(failed []topology.NodeID, rp *routing.Repairer) (repaired, fallbacks int)
}

// LinkFaultRecoverer is implemented by steppers that can recover from
// persistently-lossy or severed paths injected by the fault layer — cut
// links and partitions, which node liveness cannot see. The engine invokes
// it from its sequential recovery phase whenever the fault plan holds any
// cut; rp must be link-aware (routing.Repairer.SetLinkCheck with the
// plan's predicate) and charges exploration probes to the SHARED stream,
// while the stepper detects severed paths through its own network's
// PathCut. Returns how many paths were rerouted in-network and how many
// pairs fell back to joining at the base station.
type LinkFaultRecoverer interface {
	HandleLinkFaults(rp *routing.Repairer) (rerouted, fallbacks int)
}

// MemReporter is implemented by steppers that account their dense
// per-node state on arena slabs. The engine sums the reports into its
// per-layer mem.join.bytes gauge and checks them against the configured
// byte budget at each epoch barrier.
type MemReporter interface {
	MemBytes() int64
}

// Adaptive is implemented by steppers whose join-node placement can be
// re-optimized by an external scheduler — section 6's adaptivity run at
// deployment scope by internal/engine. AdaptEpoch closes the given sampling
// cycle on every pair's selectivity estimator (idempotently, per the
// adapt.Estimator contract, so it composes with stepper-side learning),
// applies the divergence trigger, and executes any resulting window
// migrations. The placement decision is the nomination point; live is
// consulted at the commit point, and a migration whose target node is no
// longer alive aborts into the section-7 base-station fallback instead of
// installing window state on a dead node. It returns the number of
// committed migrations and of aborted ones. The engine invokes it only
// from its sequential adaptivity phase, never inside the parallel section.
type Adaptive interface {
	AdaptEpoch(cycle int, live *topology.Liveness) (migrated, aborted int)
}

// StateSized is implemented by steppers that can report how many tuples
// their join windows currently buffer, summed across every join state the
// query maintains. internal/engine samples it at the epoch barrier (never
// inside the parallel section) to feed the observability layer's
// join-state gauges and histograms; steppers without meaningful window
// state need not implement it.
type StateSized interface {
	JoinStateTuples() int
}

// LossReporter is implemented by steppers that detect result loss: results
// computed but dropped on the path to the base station after exhausting the
// retry policy. internal/engine samples it at the epoch barrier, alongside
// Results, to make every missing result observable (faults.losses). Every
// stepper built on this package's shared result recorder implements it.
type LossReporter interface {
	ResultsLost() int
}

// LivenessObserver is implemented by routers (grouped.HomeRouter
// implementations) that memoize routing state which must be recomputed
// around failed nodes — dht.Ring's per-destination parent vectors.
type LivenessObserver interface {
	ObserveFailures(live *topology.Liveness)
}

// runSteps drives a stepper through cfg.Cycles — the single-query path
// behind every Algorithm.Run.
func runSteps(cfg *Config, st Stepper) *Result {
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		st.Step(cycle)
	}
	return st.Finish()
}

// snapshotInit records initiation-phase costs into res.
func snapshotInit(cfg *Config, res *Result) {
	m := cfg.Net.Metrics()
	res.InitBytes = m.TotalBytes
	res.InitMessages = m.TotalMessages
	res.InitBaseBytes = m.BaseBytes
}

// finish copies final metrics into res.
func finish(cfg *Config, res *Result) *Result {
	m := cfg.Net.Metrics()
	res.TotalBytes = m.TotalBytes
	res.TotalMessages = m.TotalMessages
	res.BaseBytes = m.BaseBytes
	res.BaseMessages = m.BaseMessages
	res.MaxNodeBytes = m.MaxNodeBytes()
	res.NodeBytes = append([]int64(nil), m.NodeBytes...)
	res.Drops = m.Drops
	return res
}

// recorder tracks result arrivals at the base and the inter-result delay.
type recorder struct {
	res       *Result
	lastCycle int
	any       bool
}

func newRecorder(res *Result) *recorder { return &recorder{res: res} }

// record notes n results delivered at the given cycle.
func (r *recorder) record(n, cycle int) {
	for i := 0; i < n; i++ {
		if r.any {
			r.res.Delays = append(r.res.Delays, cycle-r.lastCycle)
		}
		r.any = true
		r.lastCycle = cycle
	}
	r.res.Results += n
}

// drop notes n results lost in flight to the base: computed, transmitted,
// abandoned after exhausting the retry policy. Delays are not recorded —
// nothing arrived — but the loss is, so Results+ResultsLost always equals
// the results computed.
func (r *recorder) drop(n int) {
	r.res.ResultsLost += n
}

// sendResults forwards matches from join node j to the base station,
// opportunistically merged into one physical packet per (join node, cycle)
// — the Appendix E merging technique. Matches computed at the base itself
// are recorded without traffic.
func sendResults(cfg *Config, rec *recorder, j topology.NodeID, matches int, cycle int) {
	if matches == 0 {
		return
	}
	if j == topology.Base {
		rec.record(matches, cycle)
		return
	}
	path := cfg.Sub.PathToBase(j)
	ok, _ := cfg.Net.Transfer(path, matches*sim.ResultBytes, sim.Result, sim.Flow{Src: j, Dst: topology.Base})
	if ok {
		rec.record(matches, cycle)
	} else {
		rec.drop(matches)
	}
}

// maybeFail starts a sampling cycle: it resets the per-cycle relay queues
// and applies the configured failure injection at the right cycle. Every
// engine calls it at the top of its cycle loop.
func maybeFail(cfg *Config, cycle int) {
	cfg.Net.BeginCycle(cycle)
	if cfg.FailNode >= 0 && cycle == cfg.FailCycle {
		cfg.Net.Fail(cfg.FailNode)
	}
}

// eligibleProducers enumerates (node, role) producer slots in node order.
type producerSlot struct {
	id   topology.NodeID
	role query.Rel
}

func eligibleProducers(spec *workload.Spec, n int) []producerSlot {
	var out []producerSlot
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if spec.EligibleS(id) {
			out = append(out, producerSlot{id, query.S})
		}
		if spec.EligibleT(id) {
			out = append(out, producerSlot{id, query.T})
		}
	}
	return out
}

// bothRoles reports whether the node fills both producer roles (Query 3's
// symmetric join), in which case one physical reading serves both.
func bothRoles(spec *workload.Spec, id topology.NodeID) bool {
	return spec.EligibleS(id) && spec.EligibleT(id)
}

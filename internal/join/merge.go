package join

import (
	"sort"

	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/window"
)

// Opportunistic merging (Appendix E, "Other opportunistic techniques"):
// data values originating from different nodes but traveling to the same
// destination through a common intermediate node are merged into one
// physical packet, paying one header per link instead of one per tuple.
// The paper applies it to producer-to-join-node flows and result flows
// and notes it is "a generalization of a technique used in TinyDB". The
// engines expose it through Config.Merge; it is off by default so the
// headline figures use the same per-message accounting as the paper's
// main algorithms, and BenchmarkAblationMerge quantifies the saving.

// mergedSender is one producer's contribution to a merged up-tree flow.
type mergedSender struct {
	id    topology.NodeID
	value int32
	role  senderRole
}

type senderRole uint8

const (
	roleS senderRole = iota
	roleT
	roleBoth
)

// deliverMergedToBase ships all senders' tuples to the base station along
// the base-rooted tree, merging packets at every shared link: the edge
// from node n to its parent carries one packet with all tuples originating
// in n's subtree. A lost edge transmission drops that subtree's tuples.
// It returns the senders whose tuples reached the base, in node-ID order
// (the same arrival order as unmerged delivery, so join results are
// identical on a lossless network).
func deliverMergedToBase(cfg *Config, senders []mergedSender) []mergedSender {
	if len(senders) == 0 {
		return nil
	}
	tree := cfg.Sub.Trees[0]
	// Count tuples per subtree: carried[n] is how many tuples cross the
	// edge n -> parent(n).
	carried := map[topology.NodeID]int{}
	for _, s := range senders {
		for at := s.id; at != tree.Root; at = tree.Parent[at] {
			carried[at]++
		}
	}
	// Transmit deepest-first so a parent edge fires after its children's
	// (one merged packet per edge per cycle).
	nodes := make([]topology.NodeID, 0, len(carried))
	//aspen:orderinvariant keys collected then sorted (deepest-first) before use
	for n := range carried {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(a, b int) bool {
		da, db := tree.Depth[nodes[a]], tree.Depth[nodes[b]]
		if da != db {
			return da > db
		}
		return nodes[a] < nodes[b]
	})
	lostBelow := map[topology.NodeID]bool{}
	for _, n := range nodes {
		parent := tree.Parent[n]
		if lostBelow[n] {
			// The subtree's packet never arrived at n... n itself may
			// still originate tuples; to keep the model simple a lost
			// edge loses everything routed through it, so n's own tuple
			// is only lost if the loss happened at or below n itself —
			// handled by marking descendants below.
			continue
		}
		ok, _ := cfg.Net.Transfer(routing.Path{n, parent}, carried[n]*sim.TupleBytes, sim.Data,
			sim.Flow{Src: n, Dst: topology.Base})
		if !ok {
			lostBelow[n] = true
		}
	}
	var delivered []mergedSender
	for _, s := range senders {
		lost := false
		for at := s.id; at != tree.Root; at = tree.Parent[at] {
			if lostBelow[at] {
				lost = true
				break
			}
		}
		if !lost {
			delivered = append(delivered, s)
		}
	}
	sort.Slice(delivered, func(a, b int) bool { return delivered[a].id < delivered[b].id })
	return delivered
}

// runBaseCycleMerged is runBaseCycle with opportunistic merging: the cycle
// collects every admitted tuple, ships them in merged packets, and feeds
// the base join state in node-ID order.
func runBaseCycleMerged(cfg *Config, st *window.State, rec *recorder, producers []producerSlot, filter *participantFilter, cycle int) {
	var senders []mergedSender
	done := make([]bool, cfg.Topo.N())
	for _, p := range producers {
		if filter != nil && !filter.has(p) {
			continue
		}
		if bothRoles(cfg.Spec, p.id) {
			if done[p.id] {
				continue
			}
			done[p.id] = true
			if v, send := cfg.Sampler.Sample(p.id, query.S, cycle); send {
				senders = append(senders, mergedSender{id: p.id, value: v, role: roleBoth})
			}
			continue
		}
		role := roleS
		if p.role == query.T {
			role = roleT
		}
		if v, send := cfg.Sampler.Sample(p.id, p.role, cycle); send {
			senders = append(senders, mergedSender{id: p.id, value: v, role: role})
		}
	}
	for _, s := range deliverMergedToBase(cfg, senders) {
		switch s.role {
		case roleBoth:
			rec.record(len(st.ArriveBoth(s.id, s.value, cycle)), cycle)
		case roleS:
			rec.record(len(st.Arrive(s.id, query.S, s.value, cycle)), cycle)
		default:
			rec.record(len(st.Arrive(s.id, query.T, s.value, cycle)), cycle)
		}
	}
}

package join

import (
	"repro/internal/arena"
	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/window"
	"repro/internal/workload"
)

// registrationBytes is the initiation payload carrying a producer's static
// join attributes; ackBytes is the participate/skip response.
const (
	registrationBytes = 4 * sim.ValueBytes
	ackBytes          = sim.ValueBytes
)

// Naive joins everything at the base station with no per-query setup:
// selection conditions are pushed down, then every satisfying source tuple
// is sent to the base (section 2.2, "Grouped Join: At the Base").
type Naive struct{}

// Name implements Algorithm.
func (Naive) Name() string { return "Naive" }

// Run implements Algorithm.
func (Naive) Run(cfg *Config) *Result { return runSteps(cfg, Naive{}.Start(cfg)) }

// Start implements Continuous.
func (Naive) Start(cfg *Config) Stepper {
	res := &Result{Algorithm: "Naive"}
	// No initiation (beyond initial routing-tree construction, which is
	// shared by every algorithm and excluded per Table 3).
	snapshotInit(cfg, res)
	mem := arena.New("join")
	return &baseStepper{
		cfg:       cfg,
		res:       res,
		rec:       newRecorder(res),
		st:        baseState(cfg),
		producers: eligibleProducers(cfg.Spec, cfg.Topo.N()),
		mem:       mem,
		done:      arena.Slice[bool](mem, cfg.Topo.N()),
	}
}

// baseStepper is the shared continuous execution of the join-at-base
// algorithms; filter is nil for Naive and Base's participant set.
type baseStepper struct {
	cfg       *Config
	res       *Result
	rec       *recorder
	st        *window.State
	producers []producerSlot
	filter    *participantFilter
	// mem accounts the stepper's dense per-node state for the engine's
	// per-layer budget gauges.
	mem *arena.Arena
	// done and matchBuf are per-cycle scratch (dual-role dedup marks and
	// the reusable Arrive buffer) so Step calls never allocate; done is
	// sized at Start and cleared after every cycle.
	done     []bool
	matchBuf []window.Match
}

// MemBytes implements MemReporter.
func (b *baseStepper) MemBytes() int64 { return b.mem.Bytes() }

// Step implements Stepper.
//
//aspen:allocfree
func (b *baseStepper) Step(cycle int) {
	maybeFail(b.cfg, cycle)
	if b.cfg.Merge {
		runBaseCycleMerged(b.cfg, b.st, b.rec, b.producers, b.filter, cycle)
	} else {
		b.runCycle(cycle)
	}
}

// runCycle executes one sampling cycle of a join-at-base algorithm:
// producers sample, admitted tuples travel up the base tree, and the base
// joins them. b.filter, when non-nil, drops producer slots not in the set
// (Base's pre-filtering).
//
//aspen:allocfree
func (b *baseStepper) runCycle(cycle int) {
	cfg := b.cfg
	for _, p := range b.producers {
		if b.filter != nil && !b.filter.has(p) {
			continue
		}
		if bothRoles(cfg.Spec, p.id) {
			// One physical reading serves both roles; handle on the S
			// visit and skip the T slot.
			if b.done[p.id] {
				continue
			}
			b.done[p.id] = true
			v, send := cfg.Sampler.Sample(p.id, query.S, cycle)
			if !send {
				continue
			}
			if ok, _ := cfg.Net.Transfer(cfg.Sub.PathToBase(p.id), sim.TupleBytes, sim.Data, sim.Flow{Src: p.id, Dst: topology.Base}); ok {
				b.matchBuf = b.st.ArriveBothAppend(b.matchBuf[:0], p.id, v, cycle)
				b.rec.record(len(b.matchBuf), cycle)
			}
			continue
		}
		v, send := cfg.Sampler.Sample(p.id, p.role, cycle)
		if !send {
			continue
		}
		if ok, _ := cfg.Net.Transfer(cfg.Sub.PathToBase(p.id), sim.TupleBytes, sim.Data, sim.Flow{Src: p.id, Dst: topology.Base}); ok {
			b.matchBuf = b.st.ArriveAppend(b.matchBuf[:0], p.id, p.role, v, cycle)
			b.rec.record(len(b.matchBuf), cycle)
		}
	}
	for _, p := range b.producers {
		b.done[p.id] = false
	}
}

// Results implements Stepper.
func (b *baseStepper) Results() int { return b.res.Results }

// ResultsLost is always 0: base-side joins compute results at the base.
func (b *baseStepper) ResultsLost() int { return b.res.ResultsLost }

// JoinStateTuples implements StateSized: everything buffered at the base.
func (b *baseStepper) JoinStateTuples() int { return b.st.Tuples() }

// Finish implements Stepper.
func (b *baseStepper) Finish() *Result {
	b.res.AtBasePairs = b.st.Pairs()
	return finish(b.cfg, b.res)
}

// Base refines Naive with a pre-computation step for static join clauses,
// eliminating source nodes that cannot participate in any join: costlier
// initiation for cheaper computation.
type Base struct{}

// Name implements Algorithm.
func (Base) Name() string { return "Base" }

// Run implements Algorithm.
func (Base) Run(cfg *Config) *Result { return runSteps(cfg, Base{}.Start(cfg)) }

// Start implements Continuous.
func (Base) Start(cfg *Config) Stepper {
	res := &Result{Algorithm: "Base"}
	st := baseState(cfg)
	// Initiation: every statically eligible producer ships its static
	// join attributes to the base, which answers with participate/skip.
	producers := eligibleProducers(cfg.Spec, cfg.Topo.N())
	for _, p := range producers {
		up := cfg.Sub.PathToBase(p.id)
		cfg.Net.Transfer(up, registrationBytes, sim.Control, sim.Flow{})
		cfg.Net.Transfer(up.Reverse(), ackBytes, sim.Control, sim.Flow{})
	}
	snapshotInit(cfg, res)
	// Computation: only producers participating in at least one pair send.
	mem := arena.New("join")
	return &baseStepper{
		cfg:       cfg,
		res:       res,
		rec:       newRecorder(res),
		st:        st,
		producers: producers,
		filter:    participantSet(cfg.Spec, cfg.Topo.N()),
		mem:       mem,
		done:      arena.Slice[bool](mem, cfg.Topo.N()),
	}
}

// baseState builds the base station's join state over the query's ground
// truth pairs (the base holds the full query and all static attributes, so
// it evaluates static join clauses exactly).
func baseState(cfg *Config) *window.State {
	st := window.NewState(cfg.Spec.W, cfg.Spec.DynJoin)
	for _, g := range cfg.Spec.Groups() {
		for _, p := range g.Pairs {
			st.AddPair(p[0], p[1])
		}
	}
	return st
}

// participantFilter marks (node, role) slots that appear in at least one
// pair — dense per-role bitmaps so the per-producer admission test in the
// cycle loop is a slice index instead of a hash of a struct key.
type participantFilter struct {
	s, t []bool
}

func (f *participantFilter) has(p producerSlot) bool {
	if p.role == query.S {
		return f.s[p.id]
	}
	return f.t[p.id]
}

// participantSet builds the participation filter over a deployment of n
// nodes.
func participantSet(spec *workload.Spec, n int) *participantFilter {
	out := &participantFilter{s: make([]bool, n), t: make([]bool, n)}
	for _, g := range spec.Groups() {
		for _, p := range g.Pairs {
			out.s[p[0]] = true
			out.t[p[1]] = true
		}
	}
	return out
}

// Yang07 is the through-the-base algorithm of [16]: source tuples flow to
// the base station, which relays them down to the matching target nodes;
// targets join locally and return results to the base. It trades base
// storage for extra downstream traffic.
type Yang07 struct{}

// Name implements Algorithm.
func (Yang07) Name() string { return "Yang+07" }

// Run implements Algorithm.
func (Yang07) Run(cfg *Config) *Result { return runSteps(cfg, Yang07{}.Start(cfg)) }

// Start implements Continuous.
func (Yang07) Start(cfg *Config) Stepper {
	res := &Result{Algorithm: "Yang+07"}
	mem := arena.New("join")
	y := &yangStepper{
		cfg:         cfg,
		res:         res,
		rec:         newRecorder(res),
		mem:         mem,
		states:      arena.Slice[*window.State](mem, cfg.Topo.N()),
		partnersOfS: arena.Slice[[]topology.NodeID](mem, cfg.Topo.N()),
	}
	// Per-target local join state.
	for _, g := range cfg.Spec.Groups() {
		for _, pr := range g.Pairs {
			s, t := pr[0], pr[1]
			st := y.states[t]
			if st == nil {
				st = window.NewState(cfg.Spec.W, cfg.Spec.DynJoin)
				y.states[t] = st
			}
			st.AddPair(s, t)
			y.partnersOfS[s] = append(y.partnersOfS[s], t)
		}
	}
	snapshotInit(cfg, res) // no initiation beyond tree construction
	return y
}

// yangStepper is the continuous execution of the through-the-base
// algorithm.
type yangStepper struct {
	cfg *Config
	res *Result
	rec *recorder
	// states[t] is target t's local join state; partnersOfS[s] lists s's
	// matching targets. Dense NodeID-indexed slices (nil/empty when the
	// node plays no part).
	mem         *arena.Arena
	states      []*window.State
	partnersOfS [][]topology.NodeID
	matchBuf    []window.Match // reusable Arrive buffer
	downBuf     routing.Path   // reusable reversed-path scratch
}

// MemBytes implements MemReporter.
func (y *yangStepper) MemBytes() int64 { return y.mem.Bytes() }

// Step implements Stepper.
//
//aspen:allocfree
func (y *yangStepper) Step(cycle int) {
	cfg, rec := y.cfg, y.rec
	maybeFail(cfg, cycle)
	n := cfg.Topo.N()
	// Targets first: a target's own reading joins locally for free.
	for i := 0; i < n; i++ {
		t := topology.NodeID(i)
		st := y.states[t]
		if st == nil {
			continue
		}
		v, send := cfg.Sampler.Sample(t, query.T, cycle)
		if !send {
			continue
		}
		y.matchBuf = st.ArriveAppend(y.matchBuf[:0], t, query.T, v, cycle)
		sendResults(cfg, rec, t, len(y.matchBuf), cycle)
	}
	// Sources: up to the base, then relayed down to each target.
	for i := 0; i < n; i++ {
		s := topology.NodeID(i)
		targets := y.partnersOfS[s]
		if len(targets) == 0 {
			continue
		}
		v, send := cfg.Sampler.Sample(s, query.S, cycle)
		if !send {
			continue
		}
		up := cfg.Sub.PathToBase(s)
		if ok, _ := cfg.Net.Transfer(up, sim.TupleBytes, sim.Data, sim.Flow{Src: s, Dst: topology.Base}); !ok {
			continue
		}
		for _, t := range targets {
			down := y.downBuf.ReverseOf(cfg.Sub.PathToBase(t))
			y.downBuf = down
			if ok, _ := cfg.Net.Transfer(down, sim.TupleBytes, sim.Data, sim.Flow{Src: s, Dst: t}); ok {
				y.matchBuf = y.states[t].ArriveAppend(y.matchBuf[:0], s, query.S, v, cycle)
				sendResults(cfg, rec, t, len(y.matchBuf), cycle)
			}
		}
	}
}

// Results implements Stepper.
func (y *yangStepper) Results() int { return y.res.Results }

// ResultsLost reports results dropped in flight to the base station.
func (y *yangStepper) ResultsLost() int { return y.res.ResultsLost }

// JoinStateTuples implements StateSized: tuples buffered across the
// per-target join states.
func (y *yangStepper) JoinStateTuples() int {
	n := 0
	for _, st := range y.states {
		if st != nil {
			n += st.Tuples()
		}
	}
	return n
}

// Finish implements Stepper.
func (y *yangStepper) Finish() *Result {
	y.res.InNetPairs = countPairs(y.cfg.Spec)
	return finish(y.cfg, y.res)
}

func countPairs(spec *workload.Spec) int {
	n := 0
	for _, g := range spec.Groups() {
		n += len(g.Pairs)
	}
	return n
}

// HomeRouter abstracts the hash-addressed substrates: GHT over motes
// (geographic hashing + GPSR) and a DHT over mesh networks. Both map a
// join key to a home node and route to it.
type HomeRouter interface {
	HomeNode(key int32) topology.NodeID
	Route(from, to topology.NodeID) routing.Path
}

// Hashed is the grouped join over a hash-addressed substrate: every
// producer with a given join key sends to the key's home node, which
// performs the join and forwards results to the base. Its placement is
// unpredictable — the home node may be arbitrarily far from every
// producer, which is exactly why the paper finds GHT uncompetitive.
type Hashed struct {
	// Label distinguishes "GHT" (motes) from "DHT" (mesh).
	Label  string
	Router HomeRouter
}

// Name implements Algorithm.
func (h Hashed) Name() string { return h.Label }

// Run implements Algorithm.
func (h Hashed) Run(cfg *Config) *Result { return runSteps(cfg, h.Start(cfg)) }

// member is one producer slot of a hash group and its route to the home
// node.
type member struct {
	id   topology.NodeID
	role query.Rel
	path routing.Path
}

// ghtGroup is one join group's home node, state and membership.
type ghtGroup struct {
	home    topology.NodeID
	state   *window.State
	members []member
}

// Start implements Continuous.
func (h Hashed) Start(cfg *Config) Stepper {
	// A query admitted into a deployment that has already lost nodes must
	// not compute member routes through them: bind the router to the
	// network's liveness view up front (the failure hook rebinds on later
	// failures). A no-op on fresh deployments.
	if lo, ok := h.Router.(LivenessObserver); ok && cfg.Net.Liveness().AnyDead() {
		lo.ObserveFailures(cfg.Net.Liveness())
	}
	res := &Result{Algorithm: h.Label}
	rec := newRecorder(res)
	groups := cfg.Spec.Groups()
	gs := make([]ghtGroup, 0, len(groups))
	for _, g := range groups {
		key := int32(g.Key ^ (g.Key >> 31))
		home := h.Router.HomeNode(key)
		gg := ghtGroup{home: home, state: window.NewState(cfg.Spec.W, cfg.Spec.DynJoin)}
		for _, pr := range g.Pairs {
			gg.state.AddPair(pr[0], pr[1])
		}
		seen := map[producerSlot]bool{}
		for _, s := range g.S {
			if !seen[producerSlot{s, query.S}] {
				seen[producerSlot{s, query.S}] = true
				gg.members = append(gg.members, member{s, query.S, h.Router.Route(s, home)})
			}
		}
		for _, t := range g.T {
			if !seen[producerSlot{t, query.T}] {
				seen[producerSlot{t, query.T}] = true
				gg.members = append(gg.members, member{t, query.T, h.Router.Route(t, home)})
			}
		}
		gs = append(gs, gg)
	}
	// Initiation: one registration round trip per member along the hash
	// route (Table 3: initiation >= sigma_s*sum D_sj + sigma_t*sum D_tj).
	for _, gg := range gs {
		for _, m := range gg.members {
			cfg.Net.Transfer(m.path, registrationBytes, sim.Control, sim.Flow{})
			cfg.Net.Transfer(m.path.Reverse(), ackBytes, sim.Control, sim.Flow{})
		}
	}
	snapshotInit(cfg, res)
	return &hashedStepper{cfg: cfg, res: res, rec: rec, gs: gs, router: h.Router}
}

// hashedStepper is the continuous execution of a hash-addressed join.
type hashedStepper struct {
	cfg      *Config
	res      *Result
	rec      *recorder
	gs       []ghtGroup
	router   HomeRouter
	matchBuf []window.Match // reusable Arrive buffer
}

// HandleNodeFailure implements FailureRecoverer for the hash-addressed
// substrates: the router's memoized routing state (dht.Ring's parent
// vectors) is invalidated against the deployment liveness, then every
// member route crossing a failed node is recomputed. A reroute that now
// avoids the failure counts as a repair; members the substrate can no
// longer route (home node dead, or the member cut off) keep their stale
// path, whose transmissions are charged and dropped at the dead hop —
// hash substrates have no base-station fallback (the home node IS the
// rendezvous), which is part of why the paper finds them fragile.
func (h *hashedStepper) HandleNodeFailure(failed []topology.NodeID, rp *routing.Repairer) (repaired, fallbacks int) {
	if lo, ok := h.router.(LivenessObserver); ok {
		lo.ObserveFailures(h.cfg.Net.Liveness())
	}
	for gi := range h.gs {
		gg := &h.gs[gi]
		if !h.cfg.Net.Alive(gg.home) {
			continue // rendezvous gone: the group stalls
		}
		for mi := range gg.members {
			m := &gg.members[mi]
			if !h.cfg.Net.Alive(m.id) || !m.path.ContainsAny(failed) {
				continue
			}
			if np := h.router.Route(m.id, gg.home); np != nil && !np.ContainsAny(failed) {
				m.path = np
				repaired++
			}
		}
	}
	return repaired, 0
}

// Step implements Stepper.
//
//aspen:allocfree
func (h *hashedStepper) Step(cycle int) {
	cfg := h.cfg
	maybeFail(cfg, cycle)
	for gi := range h.gs {
		gg := &h.gs[gi]
		matches := 0
		for _, m := range gg.members {
			if m.path == nil {
				// The substrate could not route this member to the home
				// node (cut off by failures at admission); a nil path
				// must not count as a vacuous delivery.
				continue
			}
			v, send := cfg.Sampler.Sample(m.id, m.role, cycle)
			if !send {
				continue
			}
			if ok, _ := cfg.Net.Transfer(m.path, sim.TupleBytes, sim.Data, sim.Flow{Src: m.id, Dst: gg.home}); ok {
				h.matchBuf = gg.state.ArriveAppend(h.matchBuf[:0], m.id, m.role, v, cycle)
				matches += len(h.matchBuf)
			}
		}
		sendResults(cfg, h.rec, gg.home, matches, cycle)
	}
}

// Results implements Stepper.
func (h *hashedStepper) Results() int { return h.res.Results }

// ResultsLost reports results dropped in flight to the base station.
func (h *hashedStepper) ResultsLost() int { return h.res.ResultsLost }

// JoinStateTuples implements StateSized: tuples buffered at the home
// nodes.
func (h *hashedStepper) JoinStateTuples() int {
	n := 0
	for i := range h.gs {
		if st := h.gs[i].state; st != nil {
			n += st.Tuples()
		}
	}
	return n
}

// Finish implements Stepper.
func (h *hashedStepper) Finish() *Result {
	h.res.InNetPairs = countPairs(h.cfg.Spec)
	return finish(h.cfg, h.res)
}

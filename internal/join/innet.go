package join

import (
	"sort"

	"repro/internal/adapt"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/mpo"
	"repro/internal/query"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/window"
)

// nominationBytes is the (sourceID, targetID, sequence) triple of the
// section 3.2 nomination protocol.
const nominationBytes = 3 * sim.ValueBytes

// InnetOptions selects the In-Net variant. The paper's names compose as
// Innet-c m p g: cached multicast trees (cm), path collapsing (p), group
// optimization (g); learning is orthogonal (section 6).
type InnetOptions struct {
	// Multicast enables producer-rooted multicast trees with cached
	// interior state (section 5.1).
	Multicast bool
	// PathCollapse enables the snooping path-collapse optimization
	// (Algorithms 2-3); requires Multicast.
	PathCollapse bool
	// GroupOpt enables GROUPOPT (Algorithm 1) group-level decisions.
	GroupOpt bool
	// Learn enables adaptive selectivity learning and join-node
	// migration (section 6).
	Learn bool
	// Trigger overrides the 33% divergence trigger when positive.
	Trigger float64
	// EstimateInterval / ResetInterval override the adaptivity periods
	// when positive.
	EstimateInterval, ResetInterval int
	// PlacementOverride, when non-nil, replaces the cost-model placement
	// (used by the ablation benches: midpoint, endpoint, ...).
	PlacementOverride func(p costmodel.Params, depths []int) costmodel.Placement
}

// Innet is the pairwise in-network join with cost-based join-node
// placement (section 3) and the section 5/6 extensions.
type Innet struct {
	Opts InnetOptions
}

// Name implements Algorithm, matching the paper's variant naming.
func (in Innet) Name() string {
	name := "Innet"
	suffix := ""
	if in.Opts.Multicast {
		suffix += "cm"
	}
	if in.Opts.PathCollapse {
		suffix += "p"
	}
	if in.Opts.GroupOpt {
		suffix += "g"
	}
	if suffix != "" {
		name += "-" + suffix
	}
	if in.Opts.Learn {
		name += " learn"
	}
	return name
}

// pairState tracks one (s,t) pair's placement and learning state.
type pairState struct {
	s, t topology.NodeID
	// path runs s..t; jIdx indexes the join node on it, or -1 when the
	// pair joins at the base station.
	path routing.Path
	jIdx int
	est  *adapt.Estimator
	// group indexes the engine's group table (-1 when ungrouped).
	group int
	dead  bool // endpoint failed; pair abandoned
	// recoverAt is the cycle at which failure recovery completes (the
	// producers spend a few cycles detecting the silent join node and
	// attempting repair before switching to the base); 0 = healthy.
	recoverAt int
}

func (p *pairState) joinNode() topology.NodeID {
	if p.jIdx < 0 {
		return topology.Base
	}
	return p.path[p.jIdx]
}

// sSegment returns the s -> join node path (nil for base joins).
func (p *pairState) sSegment() routing.Path {
	if p.jIdx < 0 {
		return nil
	}
	return p.path[:p.jIdx+1]
}

// tSegment returns the t -> join node path (nil for base joins).
func (p *pairState) tSegment() routing.Path {
	if p.jIdx < 0 {
		return nil
	}
	return routing.Path(p.path[p.jIdx:]).Reverse()
}

// producerKey identifies a producer slot.
type producerKey struct {
	id   topology.NodeID
	role query.Rel
}

// producerState tracks one producer slot's pairs, multicast tree and
// retained recent tuples (for failover window reconstruction).
type producerState struct {
	key    producerKey
	pairs  []*pairState
	tree   *mpo.MulticastTree
	recent []window.Tuple
}

// engine is the mutable run state of one In-Net execution. All per-node
// lookup tables are dense NodeID-indexed slices rather than maps: at
// thousands of nodes the per-cycle map hashing dominated the hot path, and
// NodeIDs are already a compact [0, n) key space.
type engine struct {
	cfg  *Config
	opts InnetOptions
	res  *Result
	rec  *recorder
	// mem accounts the query's dense per-node state: the NodeID-indexed
	// slices below are carved from it in one slab per element type, and
	// MemBytes answers the engine's per-layer budget gauges.
	mem   *arena.Arena
	pairs []*pairState
	// pairsOfS[s] lists the pairs whose source endpoint is s; a (s,t)
	// match resolves to its pairState by scanning this (short) bucket.
	pairsOfS [][]*pairState
	// prodS[id] / prodT[id] are the producer slots by role (nil when the
	// node does not fill that role).
	prodS, prodT []*producerState
	order        []producerKey // deterministic iteration order
	// states[j] is the join state hosted at node j (nil until created).
	states []*window.State
	groups [][]*pairState

	// Per-cycle scratch, sized to the topology at Start, so steady-state
	// Step calls do not allocate: dense NodeID-indexed marks replace the
	// per-cycle maps, touched lists bound the reset work, and the match /
	// hop buffers are reused across cycles. Every buffer is reset before
	// (or immediately after) use, so no state leaks between cycles.
	matchCount  []int             // per-join-node matches this cycle
	matchOrder  []topology.NodeID // join nodes with matches, first-touch order
	matchBuf    []window.Match    // reusable Arrive result buffer
	reached     []bool            // multicast: nodes reached this dissemination
	reachedIDs  []topology.NodeID // touched entries of reached
	isJoin      []bool            // multicast: join-node membership marks
	joinList    []topology.NodeID // touched entries of isJoin
	delivered   []bool            // unicast: join nodes already served
	deliveredTo []topology.NodeID // touched entries of delivered
	hop         [2]topology.NodeID
}

// Run implements Algorithm.
func (in Innet) Run(cfg *Config) *Result { return runSteps(cfg, in.Start(cfg)) }

// Start implements Continuous: it runs initiation (exploration, placement,
// group optimization, multicast trees, path collapsing) and returns the
// cycle-steppable execution.
func (in Innet) Start(cfg *Config) Stepper {
	n := cfg.Topo.N()
	mem := arena.New("join")
	marks := arena.Carve[bool](mem, n, n, n)
	prods := arena.Carve[*producerState](mem, n, n)
	e := &engine{
		cfg:        cfg,
		opts:       in.Opts,
		res:        &Result{Algorithm: in.Name()},
		mem:        mem,
		pairsOfS:   arena.Slice[[]*pairState](mem, n),
		prodS:      prods[0],
		prodT:      prods[1],
		states:     arena.Slice[*window.State](mem, n),
		matchCount: arena.Slice[int](mem, n),
		reached:    marks[0],
		isJoin:     marks[1],
		delivered:  marks[2],
	}
	e.rec = newRecorder(e.res)
	e.initiate()
	snapshotInit(cfg, e.res)
	return e
}

// Step implements Stepper.
//
//aspen:allocfree
func (e *engine) Step(cycle int) {
	maybeFail(e.cfg, cycle)
	e.runCycle(cycle)
	// With external adaptivity the engine's sequential phase closes the
	// cycle on the estimators and owns migration; running the stepper-side
	// pass too would migrate from inside the parallel section.
	if e.opts.Learn && !e.cfg.ExternalAdapt {
		e.endCycleLearning(cycle)
	}
}

// Results implements Stepper.
func (e *engine) Results() int { return e.res.Results }

// ResultsLost reports results dropped in flight to the base station.
func (e *engine) ResultsLost() int { return e.res.ResultsLost }

// MemBytes implements MemReporter: the arena-accounted dense per-node
// state this query holds.
func (e *engine) MemBytes() int64 { return e.mem.Bytes() }

// JoinStateTuples implements StateSized: the tuples buffered across every
// join node's window state.
func (e *engine) JoinStateTuples() int {
	n := 0
	for _, st := range e.states {
		if st != nil {
			n += st.Tuples()
		}
	}
	return n
}

// Finish implements Stepper.
func (e *engine) Finish() *Result {
	for _, p := range e.pairs {
		if p.dead {
			continue
		}
		if p.jIdx < 0 {
			e.res.AtBasePairs++
		} else {
			e.res.InNetPairs++
			e.res.PairJoinNodes = append(e.res.PairJoinNodes, p.joinNode())
			e.res.PairPaths = append(e.res.PairPaths, p.path.Clone())
		}
	}
	return finish(e.cfg, e.res)
}

// --- Initiation (section 3) -------------------------------------------------

func (e *engine) initiate() {
	cfg := e.cfg
	// Exploration: every eligible s searches the substrate for matching
	// targets; traffic charged inside FindTargets.
	for i := 0; i < cfg.Topo.N(); i++ {
		s := topology.NodeID(i)
		if !cfg.Spec.EligibleS(s) {
			continue
		}
		found := cfg.Sub.FindTargets(s, cfg.Spec.SearchMatcher(s, cfg.Sub), cfg.Net)
		targets := make([]topology.NodeID, 0, len(found))
		//aspen:orderinvariant keys collected then sorted before use
		for t := range found {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })
		for _, t := range targets {
			// Compress the discovered path: the response path vector is
			// shortcut through known one-hop neighbourhoods ([11]).
			path := routing.Shortcut(cfg.Topo, found[t])
			p := &pairState{s: s, t: t, path: path, group: -1}
			e.placePair(p, cfg.Opt, true)
			e.pairs = append(e.pairs, p)
			e.pairsOfS[s] = append(e.pairsOfS[s], p)
			if e.opts.Learn || cfg.ExternalAdapt {
				p.est = adapt.New(e.placementParams(cfg.Opt))
				if e.opts.Trigger > 0 {
					p.est.Trigger = e.opts.Trigger
				}
				if e.opts.EstimateInterval > 0 {
					p.est.Interval = e.opts.EstimateInterval
				}
				if e.opts.ResetInterval > 0 {
					p.est.Reset = e.opts.ResetInterval
				}
			}
		}
	}
	// Producer bookkeeping.
	for _, p := range e.pairs {
		e.addProducerPair(producerKey{p.s, query.S}, p)
		e.addProducerPair(producerKey{p.t, query.T}, p)
	}
	sort.Slice(e.order, func(a, b int) bool {
		if e.order[a].id != e.order[b].id {
			return e.order[a].id < e.order[b].id
		}
		return e.order[a].role < e.order[b].role
	})
	if e.opts.GroupOpt {
		e.buildGroups()
		e.runGroupOpt(e.cfg.Opt, true)
	}
	for _, p := range e.pairs {
		e.registerPair(p)
	}
	if e.opts.Multicast {
		e.rebuildTrees(true)
	}
	if e.opts.PathCollapse {
		e.collapsePaths()
	}
}

// placementParams returns the per-pair parameter view of opt.
func (e *engine) placementParams(opt costmodel.Params) costmodel.Params {
	opt.W = e.cfg.Spec.W
	return opt
}

// placePair runs the section 3.1 cost minimization for p (via the core
// decision procedure), charging the nomination protocol when charge is
// set.
func (e *engine) placePair(p *pairState, opt costmodel.Params, charge bool) {
	pl := core.PlacePair(e.placementParams(opt), p.path, e.cfg.Sub.DepthToBase, core.PlacePolicy(e.opts.PlacementOverride))
	if pl.AtBase {
		p.jIdx = -1
	} else {
		p.jIdx = pl.PathIndex
	}
	if charge && e.cfg.Net != nil && p.jIdx >= 0 {
		// t nominates j; j notifies s (section 3.2).
		e.cfg.Net.Transfer(p.tSegment(), nominationBytes, sim.Control, sim.Flow{})
		e.cfg.Net.Transfer(routing.Path(p.path[:p.jIdx+1]).Reverse(), nominationBytes, sim.Control, sim.Flow{})
	}
}

// prodFor returns the producer slot for key, or nil when absent.
func (e *engine) prodFor(key producerKey) *producerState {
	if key.role == query.S {
		return e.prodS[key.id]
	}
	return e.prodT[key.id]
}

func (e *engine) addProducerPair(key producerKey, p *pairState) {
	ps := e.prodFor(key)
	if ps == nil {
		ps = &producerState{key: key}
		if key.role == query.S {
			e.prodS[key.id] = ps
		} else {
			e.prodT[key.id] = ps
		}
		e.order = append(e.order, key)
	}
	ps.pairs = append(ps.pairs, p)
}

// pairFor resolves a (s, t) match back to its pairState (nil when absent).
func (e *engine) pairFor(s, t topology.NodeID) *pairState {
	for _, p := range e.pairsOfS[s] {
		if p.t == t {
			return p
		}
	}
	return nil
}

// stateAt returns (creating on demand) the join state at node j.
func (e *engine) stateAt(j topology.NodeID) *window.State {
	st := e.states[j]
	if st == nil {
		st = window.NewState(e.cfg.Spec.W, e.cfg.Spec.DynJoin)
		e.states[j] = st
	}
	return st
}

func (e *engine) registerPair(p *pairState) {
	e.stateAt(p.joinNode()).AddPair(p.s, p.t)
}

func (e *engine) unregisterPair(p *pairState) {
	j := p.joinNode()
	st := e.stateAt(j)
	st.RemovePair(p.s, p.t)
	if st.PairsFor(p.s, query.S) == 0 && st.PairsFor(p.s, query.T) == 0 {
		st.DropProducer(p.s)
	}
	if st.PairsFor(p.t, query.T) == 0 && st.PairsFor(p.t, query.S) == 0 {
		st.DropProducer(p.t)
	}
}

// --- Group optimization (section 5.2) ----------------------------------------

func (e *engine) buildGroups() {
	byKey := map[int64][]*pairState{}
	var keys []int64
	for _, p := range e.pairs {
		key, ok := e.cfg.Spec.GroupKeyS(p.s)
		if !ok {
			// Non-transitive predicate: each pair is its own group.
			key = int64(p.s)<<20 | int64(p.t)
		}
		if _, seen := byKey[key]; !seen {
			keys = append(keys, key)
		}
		byKey[key] = append(byKey[key], p)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for gi, key := range keys {
		group := byKey[key]
		for _, p := range group {
			p.group = gi
		}
		e.groups = append(e.groups, group)
	}
}

// runGroupOpt executes GROUPOPT for every group, moving whole groups to
// the base when the summed deltas favour it.
func (e *engine) runGroupOpt(opt costmodel.Params, charge bool) {
	for _, group := range e.groups {
		e.groupDecision(group, opt, charge)
	}
}

func (e *engine) groupDecision(group []*pairState, opt costmodel.Params, charge bool) {
	// Collect per-producer join-node facts over the group's in-network
	// assignments.
	type agg struct {
		key   producerKey
		nodes map[topology.NodeID]*costmodel.GroupJoinNode
		dists map[topology.NodeID]int
	}
	perProducer := map[producerKey]*agg{}
	var orderKeys []producerKey
	note := func(key producerKey, j topology.NodeID, dPJ int) {
		a, ok := perProducer[key]
		if !ok {
			a = &agg{key: key, nodes: map[topology.NodeID]*costmodel.GroupJoinNode{}, dists: map[topology.NodeID]int{}}
			perProducer[key] = a
			orderKeys = append(orderKeys, key)
		}
		n, ok := a.nodes[j]
		if !ok {
			n = &costmodel.GroupJoinNode{DPJ: dPJ, DJR: e.cfg.Sub.DepthToBase(j)}
			a.nodes[j] = n
		}
		n.NPJ++
	}
	for _, p := range group {
		if p.dead {
			continue
		}
		jIdx := p.jIdx
		if jIdx < 0 {
			// Evaluate the in-network alternative: pretend the pair sits
			// at its cost-model placement for delta purposes.
			depths := make([]int, len(p.path))
			for i, n := range p.path {
				depths[i] = e.cfg.Sub.DepthToBase(n)
			}
			pl := costmodel.BestPlacement(e.placementParams(opt), depths)
			if pl.AtBase {
				// In-network is never chosen for this pair; treat its
				// hypothetical join node as the path midpoint.
				jIdx = len(p.path) / 2
			} else {
				jIdx = pl.Index
			}
		}
		j := p.path[jIdx]
		note(producerKey{p.s, query.S}, j, jIdx)
		note(producerKey{p.t, query.T}, j, len(p.path)-1-jIdx)
	}
	sort.Slice(orderKeys, func(a, b int) bool {
		if orderKeys[a].id != orderKeys[b].id {
			return orderKeys[a].id < orderKeys[b].id
		}
		return orderKeys[a].role < orderKeys[b].role
	})
	var costs []mpo.ProducerCost
	for _, key := range orderKeys {
		a := perProducer[key]
		sigma := opt.SigmaS
		if key.role == query.T {
			sigma = opt.SigmaT
		}
		pc := mpo.ProducerCost{
			Producer: key.id,
			SigmaP:   sigma,
			DPR:      e.cfg.Sub.DepthToBase(key.id),
		}
		js := make([]topology.NodeID, 0, len(a.nodes))
		//aspen:orderinvariant keys collected then sorted before use
		for j := range a.nodes {
			js = append(js, j)
		}
		sort.Slice(js, func(x, y int) bool { return js[x] < js[y] })
		for _, j := range js {
			pc.JoinNodes = append(pc.JoinNodes, *a.nodes[j])
		}
		costs = append(costs, pc)
	}
	var net *sim.Network
	if charge {
		net = e.cfg.Net
	}
	decision := mpo.GroupOpt(e.cfg.Sub, net, costs, opt.SigmaST, e.cfg.Spec.W)
	for _, p := range group {
		if p.dead {
			continue
		}
		if decision == mpo.DecideBase {
			p.jIdx = -1
		} else if p.jIdx < 0 {
			e.placePair(p, opt, charge)
		}
	}
}

// --- Multicast and path collapsing (section 5.1, Appendix E) ----------------

// rebuildTrees reconstructs every producer's multicast tree from its
// current in-network segments, charging interior state pushes when charge
// is set.
func (e *engine) rebuildTrees(charge bool) {
	for _, key := range e.order {
		e.rebuildTree(e.prodFor(key), charge)
	}
}

func (e *engine) rebuildTree(ps *producerState, charge bool) {
	var paths []routing.Path
	for _, p := range ps.pairs {
		if p.dead || p.jIdx < 0 {
			continue
		}
		if ps.key.role == query.S {
			paths = append(paths, p.sSegment())
		} else {
			paths = append(paths, p.tSegment())
		}
	}
	if len(paths) == 0 {
		ps.tree = nil
		return
	}
	ps.tree = mpo.BuildMulticast(ps.key.id, paths)
	if charge && e.cfg.Net != nil {
		if bytes := ps.tree.InteriorStateBytes(sim.PathEntryBytes); bytes > 0 {
			// The producer pushes cached subtree state one hop at a time
			// along the tree; modelled as one charge at the producer.
			e.cfg.Net.Broadcast(ps.key.id, bytes, sim.Control)
		}
	}
}

// collapsePaths runs the Appendix E path-collapse optimization for every
// producer with at least two node-disjoint in-network paths.
func (e *engine) collapsePaths() {
	for _, key := range e.order {
		ps := e.prodFor(key)
		var segs []routing.Path
		var segPairs []*pairState
		for _, p := range ps.pairs {
			if p.dead || p.jIdx < 0 {
				continue
			}
			if key.role == query.S {
				segs = append(segs, p.sSegment())
			} else {
				segs = append(segs, p.tSegment())
			}
			segPairs = append(segPairs, p)
		}
		if len(segs) < 2 {
			continue
		}
		opps := mpo.FindCollapses(e.cfg.Topo, segs)
		if len(opps) == 0 {
			continue
		}
		// Each discovered opportunity costs one notification from the
		// snooping node to the producer (Algorithm 2, line 8).
		for _, o := range opps {
			e.cfg.Net.Transfer(e.cfg.Sub.BestTreePath(o.N1, key.id), nominationBytes, sim.Control, sim.Flow{})
		}
		newSegs, _, applied := mpo.ApplyCollapses(e.cfg.Topo, key.id, segs, opps)
		if applied == 0 {
			continue
		}
		// Adopt the rerouted segments: splice each back into its pair's
		// full path (producer..j stays rerouted; j..other-end unchanged).
		for i, p := range segPairs {
			seg := newSegs[i]
			if key.role == query.S {
				rest := routing.Path(p.path[p.jIdx:])
				p.path = seg.Concat(rest)
				p.jIdx = len(seg) - 1
			} else {
				// seg is t..j reversed orientation: rebuild path as
				// s..j + reverse(seg)[1:].
				sPart := routing.Path(p.path[:p.jIdx+1])
				p.path = sPart.Concat(seg.Reverse())
				// jIdx unchanged: join node index still at len(sPart)-1.
				p.jIdx = len(sPart) - 1
			}
		}
		e.rebuildTree(ps, true)
	}
}

// --- Per-cycle execution ------------------------------------------------------

func (e *engine) runCycle(cycle int) {
	cfg := e.cfg
	// Per cycle, deliveries from a producer are deduplicated per join
	// node, and results are merged per join node (dense counts in
	// e.matchCount, first-touch order in e.matchOrder).
	e.matchOrder = e.matchOrder[:0]
	for _, key := range e.order {
		ps := e.prodFor(key)
		if !cfg.Net.Alive(key.id) {
			continue
		}
		v, send := cfg.Sampler.Sample(key.id, key.role, cycle)
		if !send {
			continue
		}
		t := window.Tuple{Producer: key.id, Value: v, Cycle: cycle}
		if len(ps.recent) >= cfg.Spec.W {
			// Slide the retained-tuple window in place instead of
			// re-slicing off the front, which would regrow the backing
			// array on every future append.
			copy(ps.recent, ps.recent[1:])
			ps.recent[len(ps.recent)-1] = t
		} else {
			ps.recent = append(ps.recent, t)
		}
		e.deliver(ps, v, cycle)
	}
	for _, j := range e.matchOrder {
		sendResults(cfg, e.rec, j, e.matchCount[j], cycle)
		e.matchCount[j] = 0
	}
}

// noteMatches merges ms into the per-cycle result accounting and feeds the
// learning estimators; it replaces the per-cycle addMatches closure.
func (e *engine) noteMatches(j topology.NodeID, ms []window.Match) {
	if len(ms) > 0 {
		if e.matchCount[j] == 0 {
			e.matchOrder = append(e.matchOrder, j)
		}
		e.matchCount[j] += len(ms)
	}
	for i := range ms {
		if p := e.pairFor(ms[i].S, ms[i].T); p != nil && p.est != nil {
			p.est.ObserveResults(1)
		}
	}
}

// deliver sends producer ps's tuple to all its join nodes (multicast or
// pairwise) and to the base for its base-joined pairs.
func (e *engine) deliver(ps *producerState, v int32, cycle int) {
	cfg := e.cfg
	// Base-side pairs: one tree-routed send serves all of them.
	hasBase := false
	for _, p := range ps.pairs {
		if !p.dead && p.jIdx < 0 {
			hasBase = true
			break
		}
	}
	if hasBase {
		if ok, _ := cfg.Net.Transfer(cfg.Sub.PathToBase(ps.key.id), sim.TupleBytes, sim.Data, sim.Flow{Src: ps.key.id, Dst: topology.Base}); ok {
			e.arriveAt(topology.Base, ps, v, cycle)
		}
		// Base-station failure is outside the model (Appendix C assumes a
		// powered, reliable base).
	}
	if e.opts.Multicast && ps.tree != nil {
		e.deliverMulticast(ps, v, cycle)
		return
	}
	// Pairwise unicast with explicit path vectors.
	e.deliveredTo = e.deliveredTo[:0]
	for _, p := range ps.pairs {
		if p.dead || p.jIdx < 0 {
			continue
		}
		j := p.joinNode()
		if e.delivered[j] {
			continue
		}
		e.delivered[j] = true
		e.deliveredTo = append(e.deliveredTo, j)
		seg := p.sSegment()
		if ps.key.role == query.T {
			seg = p.tSegment()
		}
		// Data tuples carry no path vector: the nomination protocol left
		// soft flow state (src, dst, next-hop) at intermediate nodes
		// (Appendix E's data flow buffer), so steady-state payloads are
		// just the tuple.
		ok, _ := cfg.Net.Transfer(seg, sim.TupleBytes, sim.Data, sim.Flow{Src: ps.key.id, Dst: j, Path: seg})
		if ok {
			e.arriveAt(j, ps, v, cycle)
			continue
		}
		e.handleDeliveryFailure(ps, p, cycle)
	}
	for _, j := range e.deliveredTo {
		e.delivered[j] = false
	}
}

// deliverMulticast walks the producer's tree edge by edge; a failed edge
// prunes its subtree for this cycle. Cached interior state means the
// payload is just the tuple.
func (e *engine) deliverMulticast(ps *producerState, v int32, cycle int) {
	cfg := e.cfg
	tree := ps.tree
	e.reachedIDs = e.reachedIDs[:0]
	e.reached[ps.key.id] = true
	e.reachedIDs = append(e.reachedIDs, ps.key.id)
	e.joinList = e.joinList[:0]
	for _, p := range ps.pairs {
		if !p.dead && p.jIdx >= 0 {
			if j := p.joinNode(); !e.isJoin[j] {
				e.isJoin[j] = true
				e.joinList = append(e.joinList, j)
			}
		}
	}
	anyFailure := false
	for _, edge := range tree.EdgeList() {
		parent, child := edge[0], edge[1]
		if !e.reached[parent] {
			continue
		}
		e.hop[0], e.hop[1] = parent, child
		ok, _ := cfg.Net.Transfer(e.hop[:], sim.TupleBytes, sim.Data, sim.Flow{Src: ps.key.id, Dst: child})
		if !ok {
			if !cfg.Net.Alive(child) {
				anyFailure = true
			}
			continue
		}
		e.reached[child] = true
		e.reachedIDs = append(e.reachedIDs, child)
	}
	// Insertion sort: join-node fan-out is small and sort.Slice allocates
	// (closure + reflect-based swapper) on every call.
	routing.SortNodeIDs(e.joinList)
	for _, j := range e.joinList {
		e.isJoin[j] = false
		if e.reached[j] {
			e.arriveAt(j, ps, v, cycle)
		}
	}
	for _, id := range e.reachedIDs {
		e.reached[id] = false
	}
	if anyFailure {
		for _, p := range ps.pairs {
			if !p.dead && p.jIdx >= 0 && !cfg.Net.Alive(p.joinNode()) {
				e.handleDeliveryFailure(ps, p, cycle)
			}
		}
	}
}

// arriveAt feeds the tuple into the join state at j for every of ps's
// pairs joined there, observing learning counters.
func (e *engine) arriveAt(j topology.NodeID, ps *producerState, v int32, cycle int) {
	st := e.stateAt(j)
	relevant := false
	for _, p := range ps.pairs {
		if p.dead || p.joinNode() != j {
			continue
		}
		relevant = true
		if p.est != nil {
			if ps.key.role == query.S {
				p.est.ObserveS()
			} else {
				p.est.ObserveT()
			}
		}
	}
	if !relevant {
		return
	}
	e.matchBuf = st.ArriveAppend(e.matchBuf[:0], ps.key.id, ps.key.role, v, cycle)
	e.noteMatches(j, e.matchBuf)
}

// --- Failure handling (section 7) --------------------------------------------

// failureRecoveryCycles is how many sampling cycles a producer spends
// detecting a silent join node (retransmission timeouts) and running the
// limited-exploration repair before giving up and switching to the base
// station. Section 7 observes the resulting result delay is about 6
// cycles.
const failureRecoveryCycles = 5

// fallbackToBase switches p to joining at the base station — section 7's
// last resort, shared by the per-cycle delivery-failure path and the
// engine-driven recovery pass. Window registrations move to the base's
// state; callers replay retained windows separately.
func (e *engine) fallbackToBase(p *pairState) {
	e.unregisterPair(p)
	p.jIdx = -1
	p.recoverAt = 0
	e.stateAt(topology.Base).AddPair(p.s, p.t)
}

// replayWindowToBase ships ps's retained tuples up the base tree so the
// base can reconstruct the join window of a pair that just fell back —
// data traffic, charged to the query's own stream.
func (e *engine) replayWindowToBase(ps *producerState) {
	if ps == nil || len(ps.recent) == 0 || !e.cfg.Net.Alive(ps.key.id) {
		return
	}
	path := e.cfg.Sub.PathToBase(ps.key.id)
	if ok, _ := e.cfg.Net.Transfer(path, len(ps.recent)*sim.TupleBytes, sim.Data, sim.Flow{Src: ps.key.id, Dst: topology.Base}); ok {
		e.stateAt(topology.Base).Restore(ps.recent)
	}
}

// handleDeliveryFailure reacts to a failed transfer toward a pair's join
// node: repair the path around an intermediate failure, or — when the join
// node itself is gone — switch the pair to the base station, replaying the
// producer's last w tuples so the base can reconstruct the join window.
func (e *engine) handleDeliveryFailure(ps *producerState, p *pairState, cycle int) {
	cfg := e.cfg
	if !cfg.Net.Alive(p.s) || !cfg.Net.Alive(p.t) {
		e.unregisterPair(p)
		p.dead = true
		return
	}
	j := p.joinNode()
	if cfg.Net.Alive(j) {
		// Intermediate node failed: limited-exploration repair of the
		// full pair path (section 7, via [11]).
		repaired, ok := routing.RepairPath(cfg.Topo, cfg.Net, p.path, routing.DefaultRepairLimit)
		if ok {
			// Re-locate the join node on the repaired path.
			for i, n := range repaired {
				if n == j {
					p.path = repaired
					p.jIdx = i
					if e.opts.Multicast {
						e.rebuildTree(ps, true)
					}
					return
				}
			}
		}
		// Repair failed or lost the join node: fall through to base.
	}
	// The join node is gone. Detection and repair attempts take several
	// cycles before the producers switch strategies; tuples sent in the
	// interim are lost (the paper's ~6-cycle result-delay bump).
	if p.recoverAt == 0 {
		p.recoverAt = cycle + failureRecoveryCycles
		return
	}
	if cycle < p.recoverAt {
		return
	}
	// Join node unreachable: switch to joining at the base, forwarding the
	// last w tuples to rebuild the window.
	e.fallbackToBase(p)
	e.replayWindowToBase(ps)
	if e.opts.Multicast {
		e.rebuildTree(ps, true)
	}
}

// HandleNodeFailure implements FailureRecoverer: the engine-driven,
// epoch-boundary analogue of handleDeliveryFailure. Where the per-cycle
// path reacts to one producer's failed transfer, this pass sweeps every
// pair whose path crosses a freshly failed node at once: pairs with a dead
// endpoint are abandoned; pairs whose join node survives get the section 7
// limited-exploration repair (probes charged once to the SHARED stream via
// rp); pairs whose join node died — or whose gap is unbridgeable — switch
// to the base station immediately (the deployment-wide view needs no
// multi-cycle silent-node detection), replaying each affected producer's
// retained window so the base can rebuild join state (charged to the
// query's own stream, like any data). Multicast trees of affected
// producers are rebuilt afterwards.
func (e *engine) HandleNodeFailure(failed []topology.NodeID, rp *routing.Repairer) (repaired, fallbacks int) {
	cfg := e.cfg
	n := cfg.Topo.N()
	// rebuild[role][id] marks producers needing a multicast-tree rebuild;
	// replay[role][id] marks producers whose retained window must reach
	// the base. Dense marks + the ordered e.order pass keep everything
	// deterministic.
	var rebuildS, rebuildT, replayS, replayT []bool
	mark := func(set *[]bool, id topology.NodeID) {
		if *set == nil {
			*set = make([]bool, n)
		}
		(*set)[id] = true
	}
	for _, p := range e.pairs {
		if p.dead {
			continue
		}
		if !cfg.Net.Alive(p.s) || !cfg.Net.Alive(p.t) {
			e.unregisterPair(p)
			p.dead = true
			continue
		}
		if p.jIdx < 0 || !p.path.ContainsAny(failed) {
			// Base-joined pairs route over the substrate's base tree,
			// which the engine rebuilds separately.
			continue
		}
		j := p.joinNode()
		if cfg.Net.Alive(j) {
			if rep, ok := rp.Repair(p.path); ok {
				at := -1
				for i, id := range rep {
					if id == j {
						at = i
						break
					}
				}
				if at >= 0 {
					p.path = rep
					p.jIdx = at
					repaired++
					mark(&rebuildS, p.s)
					mark(&rebuildT, p.t)
					continue
				}
				// The detour spliced the join node out; fall back.
			}
		}
		// Join node gone or gap unbridgeable: coordinated base fallback.
		e.fallbackToBase(p)
		fallbacks++
		mark(&replayS, p.s)
		mark(&replayT, p.t)
		mark(&rebuildS, p.s)
		mark(&rebuildT, p.t)
	}
	for _, key := range e.order {
		marked := func(set []bool) bool { return set != nil && set[key.id] }
		ps := e.prodFor(key)
		if (key.role == query.S && marked(replayS)) || (key.role == query.T && marked(replayT)) {
			e.replayWindowToBase(ps)
		}
		if e.opts.Multicast &&
			((key.role == query.S && marked(rebuildS)) || (key.role == query.T && marked(rebuildT))) {
			e.rebuildTree(ps, true)
		}
	}
	return repaired, fallbacks
}

// HandleLinkFaults implements LinkFaultRecoverer: the link-layer analogue
// of HandleNodeFailure, run by the engine whenever the fault plan has cut
// links or an active partition. Every node is alive, so liveness sees
// nothing — the sweep instead asks the query's own network (which consults
// the installed fault plan) whether each in-network pair's s..t path or its
// join node's result path to the base crosses a cut hop. A cut pair path
// gets the limited-exploration repair through the link-aware Repairer
// (probes charged once to the shared stream); a pair whose join node is
// severed from the base station — or whose gap no detour bridges, e.g.
// across a partition — falls back to joining at the base with its
// producers' retained windows replayed, exactly the section-7 response to
// a dead join node. Pairs already at the base route over the substrate
// tree and are left alone: their delivery failures surface as observable
// drops and losses, not silent stalls.
func (e *engine) HandleLinkFaults(rp *routing.Repairer) (rerouted, fallbacks int) {
	cfg := e.cfg
	n := cfg.Topo.N()
	var rebuildS, rebuildT, replayS, replayT []bool
	mark := func(set *[]bool, id topology.NodeID) {
		if *set == nil {
			*set = make([]bool, n)
		}
		(*set)[id] = true
	}
	for _, p := range e.pairs {
		if p.dead || p.jIdx < 0 {
			continue
		}
		j := p.joinNode()
		pathCut := cfg.Net.PathCut(p.path)
		baseCut := cfg.Net.PathCut(cfg.Sub.PathToBase(j))
		if !pathCut && !baseCut {
			continue
		}
		if pathCut && !baseCut {
			if rep, ok := rp.Repair(p.path); ok {
				at := -1
				for i, id := range rep {
					if id == j {
						at = i
						break
					}
				}
				if at >= 0 {
					p.path = rep
					p.jIdx = at
					rerouted++
					mark(&rebuildS, p.s)
					mark(&rebuildT, p.t)
					continue
				}
				// The detour spliced the join node out; fall back.
			}
		}
		// The join node is unreachable within policy — severed from the
		// base or from its producers with no bridgeable detour. Fall back
		// to the base station, replaying retained windows (section 7).
		e.fallbackToBase(p)
		fallbacks++
		mark(&replayS, p.s)
		mark(&replayT, p.t)
		mark(&rebuildS, p.s)
		mark(&rebuildT, p.t)
	}
	for _, key := range e.order {
		marked := func(set []bool) bool { return set != nil && set[key.id] }
		ps := e.prodFor(key)
		if (key.role == query.S && marked(replayS)) || (key.role == query.T && marked(replayT)) {
			e.replayWindowToBase(ps)
		}
		if e.opts.Multicast &&
			((key.role == query.S && marked(rebuildS)) || (key.role == query.T && marked(rebuildT))) {
			e.rebuildTree(ps, true)
		}
	}
	return rerouted, fallbacks
}

// --- Adaptive re-optimization (section 6) -------------------------------------

func (e *engine) endCycleLearning(cycle int) {
	migratedGroups := map[int]bool{}
	for _, p := range e.pairs {
		if p.dead || p.est == nil {
			continue
		}
		fresh, triggered := p.est.EndCycle(cycle)
		if !triggered {
			continue
		}
		e.migratePair(p, fresh)
		if e.opts.GroupOpt && p.group >= 0 && !migratedGroups[p.group] {
			migratedGroups[p.group] = true
			e.groupDecision(e.groups[p.group], fresh, true)
			e.syncRegistrations(e.groups[p.group])
		}
	}
}

// migratePair re-runs placement with learned parameters and, when the join
// node moves, transfers the pair's windows to the new node (charged along
// the path between old and new location).
func (e *engine) migratePair(p *pairState, learned costmodel.Params) {
	oldIdx := p.jIdx
	oldNode := p.joinNode()
	e.placePairQuiet(p, learned)
	e.commitMigration(p, oldIdx, oldNode)
}

// migratePairChecked is the engine-phase variant of migratePair: the
// re-placement decision is the nomination point, and live — the shared
// deployment view — is consulted again at the commit point. A migration
// whose target node died between optimization and commit aborts into the
// section-7 base-station fallback: the pair re-joins at the base with its
// producers' retained windows replayed once, and no window state is
// installed at (or left registered to) the dead target. Returns
// (1,0) for a committed move, (0,1) for an abort, (0,0) when the
// placement did not change.
func (e *engine) migratePairChecked(p *pairState, learned costmodel.Params, live *topology.Liveness) (migrated, aborted int) {
	oldIdx := p.jIdx
	oldNode := p.joinNode()
	e.placePairQuiet(p, learned)
	if p.jIdx == oldIdx || p.joinNode() == oldNode {
		p.jIdx = oldIdx
		return 0, 0
	}
	if p.jIdx >= 0 && live != nil && !live.Alive(p.joinNode()) {
		// Commit-point check failed: the nominated target is dead. Restore
		// the old placement first so the fallback unregisters the correct
		// (live) node, then take the shared section-7 path.
		p.jIdx = oldIdx
		e.res.MigrationsAborted++
		if oldIdx >= 0 {
			e.fallbackToBase(p)
			e.replayWindowToBase(e.prodS[p.s])
			e.replayWindowToBase(e.prodT[p.t])
			if e.opts.Multicast {
				e.rebuildTree(e.prodS[p.s], true)
				e.rebuildTree(e.prodT[p.t], true)
			}
		}
		// oldIdx < 0: the pair was already joining at the base; nothing
		// moved, nothing to replay — the base still holds the window.
		return 0, 1
	}
	if !e.commitMigration(p, oldIdx, oldNode) {
		return 0, 1
	}
	return 1, 0
}

// commitMigration finalizes a re-placement already written to p.jIdx:
// the producers are re-nominated toward the new join node and the pair's
// window ships over, all charged as sim.Migration traffic. No-op when the
// placement did not actually move. Returns whether the move committed —
// false when the window transfer aborted on a partitioned path (see
// transferWindow).
func (e *engine) commitMigration(p *pairState, oldIdx int, oldNode topology.NodeID) bool {
	if p.jIdx == oldIdx || p.joinNode() == oldNode {
		p.jIdx = oldIdx
		return true
	}
	if p.jIdx >= 0 {
		e.nominateMigration(p)
	}
	return e.transferWindow(p, oldIdx, oldNode)
}

// nominateMigration notifies the producers about an in-network join node
// chosen by a migration (the section 3.2 nomination exchange, charged to
// the migration traffic class).
func (e *engine) nominateMigration(p *pairState) {
	e.cfg.Net.Transfer(p.tSegment(), nominationBytes, sim.Migration, sim.Flow{})
	e.cfg.Net.Transfer(routing.Path(p.path[:p.jIdx+1]).Reverse(), nominationBytes, sim.Migration, sim.Flow{})
}

// transferWindow moves the pair's join window from oldNode to the
// placement already written to p.jIdx: snapshot at the old node, ship
// along the connecting path (charged as sim.Migration), restore at the new
// node. Producer windows are physically shared by every pair colocated at
// a node, so the restore skips producers the target already buffers — the
// live window there is current, and pushing the snapshot on top would
// duplicate tuples and hence join results. Registration moves through
// unregisterPair so a producer with no remaining pairs at the old node
// drops its window rather than leaving stale tuples behind.
// It returns whether the move committed: a transfer whose path is severed
// by a fault-injected partition aborts into the base-station fallback and
// returns false.
func (e *engine) transferWindow(p *pairState, oldIdx int, oldNode topology.NodeID) bool {
	newNode := p.joinNode()
	tuples, bytes := e.stateAt(oldNode).Snapshot(p.s, p.t)
	var path routing.Path
	switch {
	case oldIdx < 0: // base -> in-network
		path = e.cfg.Sub.PathToBase(newNode).Reverse()
	case p.jIdx < 0: // in-network -> base
		path = e.cfg.Sub.PathToBase(oldNode)
	default: // along the pair path
		lo, hi := oldIdx, p.jIdx
		if lo > hi {
			path = routing.Path(p.path[hi : lo+1]).Reverse()
		} else {
			path = routing.Path(p.path[lo : hi+1])
		}
	}
	delivered := true
	if bytes > 0 {
		delivered, _ = e.cfg.Net.Transfer(path, bytes, sim.Migration, sim.Flow{})
		if !delivered && e.cfg.Net.PathCut(path) {
			// The charged transfer path is partitioned mid-epoch: the
			// snapshot cannot reach the target, and installing the pair
			// there would leave a half-transferred window. Abort into the
			// section-7 base fallback instead — the same discipline as the
			// dead-target commit-point check — replaying the producers'
			// retained windows so the base can rebuild join state.
			p.jIdx = oldIdx
			e.res.MigrationsAborted++
			if oldIdx >= 0 {
				e.fallbackToBase(p)
				e.replayWindowToBase(e.prodS[p.s])
				e.replayWindowToBase(e.prodT[p.t])
				if e.opts.Multicast {
					e.rebuildTree(e.prodS[p.s], true)
					e.rebuildTree(e.prodT[p.t], true)
				}
			}
			// oldIdx < 0: the pair was joining at the base and stays there;
			// the base still holds the authoritative window.
			return false
		}
	}
	newIdx := p.jIdx
	p.jIdx = oldIdx
	e.unregisterPair(p)
	p.jIdx = newIdx
	newState := e.stateAt(newNode)
	skipS := newState.WindowLen(p.s) > 0
	skipT := newState.WindowLen(p.t) > 0
	newState.AddPair(p.s, p.t)
	if delivered {
		keep := tuples[:0]
		for _, tp := range tuples {
			if (tp.Producer == p.s && skipS) || (tp.Producer == p.t && skipT) {
				continue
			}
			keep = append(keep, tp)
		}
		newState.Restore(keep)
	}
	e.res.Migrations++
	if e.opts.Multicast {
		e.rebuildTree(e.prodS[p.s], true)
		e.rebuildTree(e.prodT[p.t], true)
	}
	return true
}

// AdaptEpoch implements Adaptive: the engine-driven, epoch-boundary
// analogue of endCycleLearning. It closes the given cycle on every live
// pair's estimator — a no-op for cycles the stepper already closed, per the
// adapt.Estimator idempotence contract — and re-optimizes on every
// trigger. Ungrouped pairs run the individual checked migration; grouped
// pairs are re-decided once per group per epoch with the triggering
// pair's fresh estimates as the authority, so the individual and group
// optima never fight each other across epochs (the stepper-era
// migrate-then-sync sequence ping-ponged placements and discarded window
// contents on every group move).
func (e *engine) AdaptEpoch(cycle int, live *topology.Liveness) (migrated, aborted int) {
	adaptedGroups := map[int]bool{}
	for _, p := range e.pairs {
		if p.dead || p.est == nil {
			continue
		}
		fresh, triggered := p.est.EndCycle(cycle)
		if !triggered {
			continue
		}
		if e.opts.GroupOpt && p.group >= 0 {
			if !adaptedGroups[p.group] {
				adaptedGroups[p.group] = true
				m, a := e.adaptGroup(e.groups[p.group], fresh, live)
				migrated += m
				aborted += a
			}
			continue
		}
		m, a := e.migratePairChecked(p, fresh, live)
		migrated += m
		aborted += a
	}
	return migrated, aborted
}

// adaptGroup re-optimizes one GROUPOPT group with fresh estimates: every
// in-network pair is individually re-placed (quietly — the nomination
// point), then the group-level base-versus-in-network decision runs with
// its usual coordination and nomination charging, and finally each move is
// committed. The commit loop is where liveness is consulted: a pair whose
// new join node died this epoch aborts into the section-7 base fallback,
// every other move transfers its window so no results are lost or
// duplicated across the migration.
func (e *engine) adaptGroup(group []*pairState, fresh costmodel.Params, live *topology.Liveness) (migrated, aborted int) {
	oldIdx := make([]int, len(group))
	oldNode := make([]topology.NodeID, len(group))
	for i, p := range group {
		oldIdx[i], oldNode[i] = p.jIdx, p.joinNode()
		if !p.dead && p.jIdx >= 0 {
			e.placePairQuiet(p, fresh)
		}
	}
	e.groupDecision(group, fresh, true)
	for i, p := range group {
		if p.dead || p.jIdx == oldIdx[i] {
			continue
		}
		if p.joinNode() == oldNode[i] {
			p.jIdx = oldIdx[i]
			continue
		}
		if p.jIdx >= 0 && live != nil && !live.Alive(p.joinNode()) {
			// Commit-point check failed: the group decision nominated a
			// node that died this epoch. Fall back to the base station
			// with the windows replayed (section 7), never installing
			// state at the dead target.
			p.jIdx = oldIdx[i]
			e.res.MigrationsAborted++
			aborted++
			if oldIdx[i] >= 0 {
				e.fallbackToBase(p)
				e.replayWindowToBase(e.prodS[p.s])
				e.replayWindowToBase(e.prodT[p.t])
				if e.opts.Multicast {
					e.rebuildTree(e.prodS[p.s], true)
					e.rebuildTree(e.prodT[p.t], true)
				}
			}
			continue
		}
		if oldIdx[i] >= 0 && p.jIdx >= 0 {
			// In-network repositioning came from the quiet individual
			// pass; base-to-in-network moves were already nominated by
			// the group decision's charged placement.
			e.nominateMigration(p)
		}
		if e.transferWindow(p, oldIdx[i], oldNode[i]) {
			migrated++
		} else {
			aborted++
		}
	}
	return migrated, aborted
}

// placePairQuiet re-places without nomination charges (migration charges
// its own messages).
func (e *engine) placePairQuiet(p *pairState, opt costmodel.Params) {
	pl := core.PlacePair(e.placementParams(opt), p.path, e.cfg.Sub.DepthToBase, core.PlacePolicy(e.opts.PlacementOverride))
	if pl.AtBase {
		p.jIdx = -1
	} else {
		p.jIdx = pl.PathIndex
	}
}

// syncRegistrations reconciles window registrations after a group-level
// decision moved pairs without individual migration bookkeeping.
func (e *engine) syncRegistrations(group []*pairState) {
	for _, p := range group {
		if p.dead {
			continue
		}
		want := p.joinNode()
		// Drop stale registrations elsewhere.
		for j, st := range e.states {
			if st != nil && topology.NodeID(j) != want {
				st.RemovePair(p.s, p.t)
			}
		}
		e.stateAt(want).AddPair(p.s, p.t)
		if e.opts.Multicast {
			e.rebuildTree(e.prodS[p.s], false)
			e.rebuildTree(e.prodT[p.t], false)
		}
	}
}

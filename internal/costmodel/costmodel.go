// Package costmodel implements the paper's join cost model: the pairwise
// placement expression of section 3.1, the group-relative expression
// delta-C_p of section 5.2, and the full per-algorithm analytic cost
// formulas of Table 3 (Appendix D). Costs are expected tuple
// transmissions per sampling cycle; the optimizer only ever compares
// costs, so units cancel.
package costmodel

// Params are the selectivity estimates the optimizer runs with. They may
// be wrong — the adaptivity experiments (section 6) deliberately feed
// incorrect values and learn the truth online.
type Params struct {
	// SigmaS, SigmaT are producer send rates per cycle.
	SigmaS, SigmaT float64
	// SigmaST is the pairwise join selectivity.
	SigmaST float64
	// W is the join window size.
	W int
}

// PairPlacement evaluates the section 3.1 expression for a join node j on
// the path between s and t:
//
//	sigma_s*D_sj + sigma_t*D_tj + (sigma_s+sigma_t)*w*sigma_st*D_jr
//
// dSJ and dTJ are j's hop distances to s and t along the path; dJR is j's
// hop distance to the base station.
func PairPlacement(p Params, dSJ, dTJ, dJR int) float64 {
	return p.SigmaS*float64(dSJ) +
		p.SigmaT*float64(dTJ) +
		(p.SigmaS+p.SigmaT)*float64(p.W)*p.SigmaST*float64(dJR)
}

// PairAtBase evaluates joining the (s,t) pair at the base station:
// sigma_s*D_sr + sigma_t*D_tr. (Result forwarding is free — results are
// already at the base.)
func PairAtBase(p Params, dSR, dTR int) float64 {
	return p.SigmaS*float64(dSR) + p.SigmaT*float64(dTR)
}

// ThroughBase evaluates the Yang+07 strategy for a pair (section 3.1):
// messages flow from s through the root to t, and results return:
//
//	sigma_s*D_sr + (sigma_s + (sigma_s+sigma_t)*w*sigma_st)*D_tr
func ThroughBase(p Params, dSR, dTR int) float64 {
	return p.SigmaS*float64(dSR) +
		(p.SigmaS+(p.SigmaS+p.SigmaT)*float64(p.W)*p.SigmaST)*float64(dTR)
}

// Placement is the outcome of pairwise optimization for one (s,t) pair.
type Placement struct {
	// Index is the chosen join node's position on the path (0 = s itself,
	// len(path)-1 = t). AtBase overrides Index.
	Index int
	// AtBase is set when joining at the base station is cheapest.
	AtBase bool
	// Cost is the winning expected cost.
	Cost float64
}

// BestPlacement minimizes the section 3.1 expression over every candidate
// join node on the path (given each node's distance to the base in
// depthToBase) and the join-at-base alternative. pathLen is the number of
// nodes on the path; depthToBase[i] is node i's hop count to the root.
// Ties prefer the in-network placement closest to t (the nominating node),
// matching the paper's t-side nomination protocol.
func BestPlacement(p Params, depthToBase []int) Placement {
	n := len(depthToBase)
	if n == 0 {
		return Placement{AtBase: true}
	}
	best := Placement{Index: -1, Cost: 0}
	for i := 0; i < n; i++ {
		c := PairPlacement(p, i, n-1-i, depthToBase[i])
		if best.Index == -1 || c < best.Cost || (c == best.Cost && i > best.Index) {
			best = Placement{Index: i, Cost: c}
		}
	}
	baseCost := PairAtBase(p, depthToBase[0], depthToBase[n-1])
	if baseCost < best.Cost {
		return Placement{AtBase: true, Cost: baseCost}
	}
	return best
}

// GroupDelta evaluates delta-C_p of section 5.2 for one producer p in a
// join group: the cost difference between fully in-network computation and
// computation at the base,
//
//	delta-C_p = sigma_p * sum_j (D_pj + w*sigma_st*N_pj*D_jr) - sigma_p*D_pr
//
// joinNodes lists, per join node j handling p, the producer-to-j distance
// D_pj, j's pair count N_pj for this producer, and j's distance to the
// root D_jr.
type GroupJoinNode struct {
	DPJ, NPJ, DJR int
}

// GroupDelta returns delta-C_p. sigmaP is the producer's send rate; dPR its
// distance to the root.
func GroupDelta(sigmaP, sigmaST float64, w int, joinNodes []GroupJoinNode, dPR int) float64 {
	var sum float64
	for _, j := range joinNodes {
		sum += float64(j.DPJ) + float64(w)*sigmaST*float64(j.NPJ)*float64(j.DJR)
	}
	return sigmaP*sum - sigmaP*float64(dPR)
}

// --- Table 3: full-algorithm analytic costs --------------------------------

// Inputs aggregates the per-node quantities Table 3's formulas need.
type Inputs struct {
	Params
	// DSR[i] is the i-th S producer's hop distance to the root; likewise
	// DTR for T producers.
	DSR, DTR []int
	// PhiS is phi_{s->t}: the fraction of S producers surviving static
	// pre-filtering (Base's initiation step); likewise PhiT.
	PhiS, PhiT float64
	// CS, CT are the per-key producer counts c_s, c_t.
	CS, CT int
	// DSJ[i] / DTJ[i] are producer-to-join-node distances and DJR[j] the
	// join-node-to-root distances for the grouped/pairwise algorithms.
	DSJ, DTJ, DJR []int
	// SizeS, SizeT are |S| and |T|.
	SizeS, SizeT int
}

func sumInts(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s)
}

// NaiveCost is Table 3's Naive computation cost per cycle:
// sigma_s*sum_s D_sr + sigma_t*sum_t D_tr.
func NaiveCost(in Inputs) float64 {
	return in.SigmaS*sumInts(in.DSR) + in.SigmaT*sumInts(in.DTR)
}

// BaseCost is Table 3's Base computation cost per cycle: only producers
// surviving static pre-filtering send.
func BaseCost(in Inputs) float64 {
	return in.SigmaS*in.PhiS*sumInts(in.DSR) + in.SigmaT*in.PhiT*sumInts(in.DTR)
}

// BaseInitiation is Base's initiation cost: 2*(sigma_s*sum D_sr +
// sigma_t*sum D_tr) — one round up to announce, one response down.
func BaseInitiation(in Inputs) float64 {
	return 2 * (in.SigmaS*sumInts(in.DSR) + in.SigmaT*sumInts(in.DTR))
}

// YangCost is Table 3's through-the-root computation cost per cycle:
// sigma_s*sum_s D_sr + (sigma_s*|S|/|T| + (sigma_s+sigma_t)*w*sigma_st) * sum_t D_tr.
func YangCost(in Inputs) float64 {
	down := in.SigmaS*float64(in.SizeS)/float64(in.SizeT) +
		(in.SigmaS+in.SigmaT)*float64(in.W)*in.SigmaST
	return in.SigmaS*sumInts(in.DSR) + down*sumInts(in.DTR)
}

// GroupedCost is Table 3's GHT / In-Net computation cost per cycle:
// sigma_s*sum_s D_sj + sigma_t*sum_t D_tj +
// (sigma_s+sigma_t)*c_s*c_t*w*sigma_st*sum_j D_jr.
// GHT and In-Net share the formula; they differ in which join nodes j the
// substrate makes available (hashing vs cost-based placement).
func GroupedCost(in Inputs) float64 {
	return in.SigmaS*sumInts(in.DSJ) + in.SigmaT*sumInts(in.DTJ) +
		(in.SigmaS+in.SigmaT)*float64(in.CS*in.CT)*float64(in.W)*in.SigmaST*sumInts(in.DJR)
}

// NaiveStorage is Table 3's Naive storage cost at the base, in buffered
// values: w*(sigma_s*|S| + sigma_t*|T|).
func NaiveStorage(in Inputs) float64 {
	return float64(in.W) * (in.SigmaS*float64(in.SizeS) + in.SigmaT*float64(in.SizeT))
}

// BaseStorage is Table 3's Base storage cost:
// w*(sigma_s*phi_s*|S| + sigma_t*phi_t*|T|).
func BaseStorage(in Inputs) float64 {
	return float64(in.W) * (in.SigmaS*in.PhiS*float64(in.SizeS) + in.SigmaT*in.PhiT*float64(in.SizeT))
}

// GroupedStorage is Table 3's per-join-node storage for GHT/In-Net:
// c_s*c_t*w values.
func GroupedStorage(in Inputs) float64 { return float64(in.CS*in.CT) * float64(in.W) }

// Diverged reports whether a fresh estimate differs from the previous one
// by more than the adaptivity trigger ratio (section 6 uses 33%; the
// ablation bench varies it). A previous value of zero triggers whenever
// the new value is non-zero.
func Diverged(prev, now, ratio float64) bool {
	if prev == 0 {
		return now != 0
	}
	d := (now - prev) / prev
	if d < 0 {
		d = -d
	}
	return d > ratio
}

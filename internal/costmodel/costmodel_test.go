package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairPlacementFormula(t *testing.T) {
	p := Params{SigmaS: 0.5, SigmaT: 0.1, SigmaST: 0.2, W: 3}
	// sigma_s*2 + sigma_t*3 + (sigma_s+sigma_t)*3*0.2*4
	want := 0.5*2 + 0.1*3 + (0.6)*3*0.2*4
	if got := PairPlacement(p, 2, 3, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PairPlacement = %v, want %v", got, want)
	}
}

func TestPairAtBaseFormula(t *testing.T) {
	p := Params{SigmaS: 0.5, SigmaT: 0.25}
	if got := PairAtBase(p, 4, 8); got != 0.5*4+0.25*8 {
		t.Fatalf("PairAtBase = %v", got)
	}
}

func TestThroughBaseFormula(t *testing.T) {
	p := Params{SigmaS: 0.5, SigmaT: 0.1, SigmaST: 0.2, W: 1}
	want := 0.5*3 + (0.5+0.6*1*0.2)*4
	if got := ThroughBase(p, 3, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ThroughBase = %v, want %v", got, want)
	}
}

func TestBestPlacementSkewTowardQuietSide(t *testing.T) {
	// When sigma_s >> sigma_t, data flows mostly from s: the join node
	// should sit near s (index 0 side); and vice versa.
	depth := []int{5, 5, 5, 5, 5, 5, 5} // flat distance to base isolates the skew
	loud := BestPlacement(Params{SigmaS: 1, SigmaT: 0.1, SigmaST: 0, W: 3}, depth)
	quiet := BestPlacement(Params{SigmaS: 0.1, SigmaT: 1, SigmaST: 0, W: 3}, depth)
	if loud.AtBase || quiet.AtBase {
		t.Fatal("zero join selectivity should keep the join in-network")
	}
	if loud.Index >= quiet.Index {
		t.Fatalf("placement ignores selectivity skew: loud=%d quiet=%d", loud.Index, quiet.Index)
	}
	if loud.Index != 0 || quiet.Index != len(depth)-1 {
		t.Fatalf("extreme skew should pin to endpoints: %d, %d", loud.Index, quiet.Index)
	}
}

func TestBestPlacementPrefersBaseWhenResultsDominate(t *testing.T) {
	// High sigma_st and a path far from the base: forwarding results
	// dwarfs producer traffic, so join at the base.
	depth := []int{10, 11, 12, 11, 10}
	got := BestPlacement(Params{SigmaS: 0.5, SigmaT: 0.5, SigmaST: 1, W: 5}, depth)
	if !got.AtBase {
		t.Fatalf("expected base join, got index %d", got.Index)
	}
}

func TestBestPlacementNeverWorseThanBase(t *testing.T) {
	// The paper's claim in section 3.2: explicit minimization is never
	// more expensive than joining at the base.
	f := func(sS, sT, sST uint8, d0, d1, d2, d3 uint8) bool {
		p := Params{
			SigmaS:  float64(sS%100) / 100,
			SigmaT:  float64(sT%100) / 100,
			SigmaST: float64(sST%100) / 100,
			W:       3,
		}
		depth := []int{int(d0%15) + 1, int(d1%15) + 1, int(d2%15) + 1, int(d3%15) + 1}
		got := BestPlacement(p, depth)
		baseCost := PairAtBase(p, depth[0], depth[len(depth)-1])
		return got.Cost <= baseCost+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestPlacementEmptyPath(t *testing.T) {
	if !BestPlacement(Params{}, nil).AtBase {
		t.Fatal("empty path must fall back to base")
	}
}

func TestGroupDeltaSign(t *testing.T) {
	// A producer adjacent to its join node, join node adjacent to root,
	// producer far from root: in-network wins (negative delta).
	d := GroupDelta(1, 0.1, 3, []GroupJoinNode{{DPJ: 1, NPJ: 1, DJR: 1}}, 10)
	if d >= 0 {
		t.Fatalf("delta = %v, want negative (in-network cheaper)", d)
	}
	// Producer next to the root but join node far away: base wins.
	d2 := GroupDelta(1, 0.1, 3, []GroupJoinNode{{DPJ: 9, NPJ: 1, DJR: 9}}, 1)
	if d2 <= 0 {
		t.Fatalf("delta = %v, want positive (base cheaper)", d2)
	}
}

func TestGroupDeltaFormula(t *testing.T) {
	// sigma_p * sum(D_pj + w*sigma_st*N_pj*D_jr) - sigma_p*D_pr
	got := GroupDelta(0.5, 0.2, 3, []GroupJoinNode{
		{DPJ: 2, NPJ: 4, DJR: 5},
		{DPJ: 1, NPJ: 1, DJR: 2},
	}, 7)
	want := 0.5*((2+3*0.2*4*5)+(1+3*0.2*1*2)) - 0.5*7
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("GroupDelta = %v, want %v", got, want)
	}
}

func TestTable3Formulas(t *testing.T) {
	in := Inputs{
		Params: Params{SigmaS: 0.5, SigmaT: 0.25, SigmaST: 0.1, W: 2},
		DSR:    []int{3, 4}, DTR: []int{5},
		PhiS: 0.5, PhiT: 1,
		CS: 2, CT: 1,
		DSJ: []int{1, 2}, DTJ: []int{1}, DJR: []int{4},
		SizeS: 2, SizeT: 1,
	}
	if got, want := NaiveCost(in), 0.5*7+0.25*5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Naive = %v, want %v", got, want)
	}
	if got, want := BaseCost(in), 0.5*0.5*7+0.25*1*5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Base = %v, want %v", got, want)
	}
	if got, want := BaseInitiation(in), 2*(0.5*7+0.25*5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BaseInit = %v, want %v", got, want)
	}
	wantYang := 0.5*7 + (0.5*2/1+(0.75)*2*0.1)*5
	if got := YangCost(in); math.Abs(got-wantYang) > 1e-12 {
		t.Fatalf("Yang = %v, want %v", got, wantYang)
	}
	wantGrouped := 0.5*3 + 0.25*1 + 0.75*2*1*2*0.1*4
	if got := GroupedCost(in); math.Abs(got-wantGrouped) > 1e-12 {
		t.Fatalf("Grouped = %v, want %v", got, wantGrouped)
	}
	if got, want := NaiveStorage(in), 2*(0.5*2+0.25*1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NaiveStorage = %v", got)
	}
	if got, want := BaseStorage(in), 2*(0.5*0.5*2+0.25*1*1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BaseStorage = %v", got)
	}
	if got := GroupedStorage(in); got != 4 {
		t.Fatalf("GroupedStorage = %v, want 4", got)
	}
}

func TestBaseNeverCostlierThanNaive(t *testing.T) {
	// Pre-filtering can only reduce computation traffic (phi <= 1).
	f := func(sS, sT, phiS, phiT uint8) bool {
		in := Inputs{
			Params: Params{SigmaS: float64(sS%100) / 100, SigmaT: float64(sT%100) / 100, W: 3},
			DSR:    []int{2, 5, 7}, DTR: []int{1, 9},
			PhiS: float64(phiS%101) / 100, PhiT: float64(phiT%101) / 100,
		}
		return BaseCost(in) <= NaiveCost(in)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiverged(t *testing.T) {
	cases := []struct {
		prev, now, ratio float64
		want             bool
	}{
		{1, 1.2, 0.33, false},
		{1, 1.34, 0.33, true},
		{1, 0.66, 0.33, true},
		{1, 0.7, 0.33, false},
		{0, 0, 0.33, false},
		{0, 0.1, 0.33, true},
	}
	for _, c := range cases {
		if got := Diverged(c.prev, c.now, c.ratio); got != c.want {
			t.Errorf("Diverged(%v,%v,%v) = %v, want %v", c.prev, c.now, c.ratio, got, c.want)
		}
	}
}

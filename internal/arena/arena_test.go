package arena

import "testing"

func TestSliceAccounting(t *testing.T) {
	a := New("test")
	_ = Slice[int64](a, 100)
	if a.Bytes() != 800 {
		t.Fatalf("Bytes = %d, want 800", a.Bytes())
	}
	_ = Slice[bool](a, 10)
	if a.Bytes() != 810 {
		t.Fatalf("Bytes = %d, want 810", a.Bytes())
	}
}

func TestCarveIndependence(t *testing.T) {
	a := New("test")
	parts := Carve[int](a, 3, 2, 4)
	if len(parts) != 3 || len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 4 {
		t.Fatalf("bad carve shape: %v", parts)
	}
	if a.Bytes() != 9*8 {
		t.Fatalf("Bytes = %d, want 72", a.Bytes())
	}
	// A full carve must spill on append, never write into its neighbour.
	parts[1] = append(parts[1], 99)
	if parts[2][0] != 0 {
		t.Fatalf("append past carve clobbered neighbour: %v", parts[2])
	}
	parts[0][0], parts[1][0], parts[2][3] = 1, 2, 3
	if parts[0][0] != 1 || parts[1][0] != 2 || parts[2][3] != 3 {
		t.Fatalf("carves do not hold writes")
	}
}

func TestBudget(t *testing.T) {
	a := New("join")
	if a.OverBudget() {
		t.Fatalf("empty arena over budget")
	}
	a.SetBudget(16)
	_ = Slice[byte](a, 16)
	if a.OverBudget() {
		t.Fatalf("at-budget arena reported over")
	}
	a.Grow(1)
	if !a.OverBudget() {
		t.Fatalf("over-budget arena not reported")
	}
	if a.Name() != "join" || a.Budget() != 16 || a.Bytes() != 17 {
		t.Fatalf("accessors wrong: %s %d %d", a.Name(), a.Budget(), a.Bytes())
	}
	a.Grow(-5)
	if a.Bytes() != 17 {
		t.Fatalf("negative Grow applied")
	}
}

// Package arena provides byte-accounted slab allocation for the engine's
// per-query and per-layer dense state: many same-lifetime dense slices are
// carved out of single backing allocations, and every carve is charged to
// a named arena with an explicit byte budget. The arenas do not own
// deallocation (slabs die with their owner, as Go slices do); what they
// add at 100k-node scale is (1) one backing allocation where a layer used
// to make dozens, and (2) a live answer to "how many bytes does this layer
// hold", surfaced through the engine's mem.* observability gauges and
// checked against per-layer budgets by the bench heap gate.
package arena

import "unsafe"

// Arena is one named byte account with an optional budget. It is not
// goroutine-safe; each layer owns its arena and allocates from its own
// sequential phases.
type Arena struct {
	name   string
	bytes  int64
	budget int64
}

// New returns an empty arena named for the layer it accounts.
func New(name string) *Arena { return &Arena{name: name} }

// Name returns the layer name the arena was created with.
func (a *Arena) Name() string { return a.name }

// Bytes returns the bytes carved from the arena so far.
func (a *Arena) Bytes() int64 { return a.bytes }

// SetBudget sets the arena's byte budget; zero means unbudgeted.
func (a *Arena) SetBudget(n int64) { a.budget = n }

// Budget returns the configured byte budget (zero when unbudgeted).
func (a *Arena) Budget() int64 { return a.budget }

// OverBudget reports whether the carved bytes exceed a non-zero budget.
// The budget is observational — allocation never fails — so layers stay
// deterministic while the gauges and the bench heap gate expose overruns.
func (a *Arena) OverBudget() bool { return a.budget > 0 && a.bytes > a.budget }

// Grow accounts n extra bytes allocated outside the typed helpers (spill
// slices, map growth estimates). Negative n is ignored.
func (a *Arena) Grow(n int64) {
	if n > 0 {
		a.bytes += n
	}
}

// Slice allocates one dense length-n []T charged to the arena.
func Slice[T any](a *Arena, n int) []T {
	var z T
	a.bytes += int64(n) * int64(unsafe.Sizeof(z))
	return make([]T, n)
}

// Carve allocates one slab holding sum(counts) T values and cuts it into
// len(counts) independent slices, each capacity-clamped so appends past a
// cut spill to the heap instead of clobbering a neighbour.
func Carve[T any](a *Arena, counts ...int) [][]T {
	total := 0
	for _, c := range counts {
		total += c
	}
	var z T
	a.bytes += int64(total) * int64(unsafe.Sizeof(z))
	slab := make([]T, total)
	out := make([][]T, len(counts))
	off := 0
	for i, c := range counts {
		out[i] = slab[off : off+c : off+c]
		off += c
	}
	return out
}

package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsDisabled: nil tracers and nil lanes are safe no-ops.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	lane := tr.Lane(3)
	if lane != nil {
		t.Fatal("nil tracer returned a lane")
	}
	lane.Span("x", 0, "", time.Now()) // nil lane: no-op
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer has events: %v", evs)
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil tracer JSONL not empty")
	}
}

// TestSpansAndLanes: spans land on their lane with relative microsecond
// timestamps and the right logical coordinates.
func TestSpansAndLanes(t *testing.T) {
	tr := NewTracer()
	l0 := tr.Lane(0)
	l1 := tr.Lane(1)
	if tr.Lane(0) != l0 {
		t.Fatal("Lane not stable per tid")
	}
	start := time.Now()
	l0.Span("epoch", 4, "", start)
	l1.Span("step", 4, "q1", start)
	l1.Span("init", -1, "", start)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].TID != 0 || evs[1].TID != 1 || evs[2].TID != 1 {
		t.Fatalf("lane order wrong: %+v", evs)
	}
	if evs[0].Ph != "X" || evs[0].TS < 0 || evs[0].Dur < 0 {
		t.Fatalf("bad span envelope: %+v", evs[0])
	}
	if evs[0].Args == nil || evs[0].Args.Epoch != 4 {
		t.Fatalf("epoch arg lost: %+v", evs[0].Args)
	}
	if evs[1].Args == nil || evs[1].Args.Query != "q1" {
		t.Fatalf("query arg lost: %+v", evs[1].Args)
	}
	if evs[2].Args != nil {
		t.Fatalf("coordinate-free span grew args: %+v", evs[2].Args)
	}
}

// TestConcurrentLaneCreation: workers grabbing their lanes simultaneously
// (the pool spin-up pattern) is safe and yields distinct single-writer
// lanes.
func TestConcurrentLaneCreation(t *testing.T) {
	tr := NewTracer()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := tr.Lane(1 + w)
			for i := 0; i < 100; i++ {
				lane.Span("step", i, "q", time.Now())
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != workers*100 {
		t.Fatalf("events = %d, want %d", got, workers*100)
	}
}

// TestWriteJSONL: one valid JSON object per line.
func TestWriteJSONL(t *testing.T) {
	tr := NewTracer()
	tr.Lane(0).Span("epoch", 1, "", time.Now())
	tr.Lane(1).Span("step", 1, "q0", time.Now())
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

// TestWriteChrome: the export is a trace_event JSON document whose
// traceEvents array is never null (chrome://tracing rejects null), with
// complete ("ph":"X") events carrying ts/dur.
func TestWriteChrome(t *testing.T) {
	empty := NewTracer()
	var sb strings.Builder
	if err := empty.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil && !strings.Contains(sb.String(), "[]") {
		t.Fatal("empty trace serialized traceEvents as null")
	}

	tr := NewTracer()
	st := time.Now()
	time.Sleep(time.Millisecond)
	tr.Lane(0).Span("epoch", 0, "", st)
	sb.Reset()
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("traceEvents = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.Name != "epoch" || ev.Dur < 1000 {
		t.Fatalf("bad event: %+v (dur should cover the 1ms sleep)", ev)
	}
}

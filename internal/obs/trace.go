// Epoch trace recorder: spans (named, timed intervals) collected per lane
// — lane 0 is the scheduler, lanes 1..W the worker pool — and emitted as
// JSONL or as Chrome trace_event JSON loadable in chrome://tracing /
// ui.perfetto.dev. Wall-clock timestamps live only here: they are never
// folded into determinism checksums, so a traced run's committed
// BENCH_engine.json fingerprints stay byte-identical to an untraced one.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one completed span in Chrome trace_event form ("ph":"X"):
// timestamps and durations are microseconds relative to the trace start,
// lanes map to Chrome's thread rows, and logical coordinates (epoch,
// query) ride in Args so a span is attributable without wall clocks.
type Event struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Args *Args  `json:"args,omitempty"`
}

// Args carries the logical coordinates of a span.
type Args struct {
	// Epoch is the scheduler epoch the span belongs to (-1 when the span
	// is not epoch-scoped, e.g. engine construction).
	Epoch int `json:"epoch"`
	// Query labels per-query spans ("" otherwise).
	Query string `json:"query,omitempty"`
}

// Tracer records spans across lanes. A nil *Tracer is the disabled
// recorder: Lane returns nil and nil-Lane spans are no-ops, so traced code
// pays one pointer compare when tracing is off.
//
// Lanes are single-writer: the scheduler owns lane 0, worker w owns lane
// 1+w while the pool runs. Lane creation locks; span appends do not.
type Tracer struct {
	start time.Time
	mu    sync.Mutex
	lanes []*Lane
}

// NewTracer starts an empty trace; spans are timestamped relative to now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Lane returns the lane for thread id tid, creating lanes up to tid as
// needed. Returns nil on a nil tracer. Callers cache the result: Lane
// locks, Lane.Span does not.
func (t *Tracer) Lane(tid int) *Lane {
	if t == nil || tid < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.lanes) <= tid {
		t.lanes = append(t.lanes, &Lane{tracer: t, tid: len(t.lanes)})
	}
	return t.lanes[tid]
}

// Lane is one single-writer span stream (one Chrome thread row).
type Lane struct {
	tracer *Tracer
	tid    int
	events []Event
}

// Span records a completed interval that began at start and ends now.
// Epoch and query are the span's logical coordinates (epoch -1 and ""
// when not applicable). No-op on a nil lane.
func (l *Lane) Span(name string, epoch int, query string, start time.Time) {
	if l == nil {
		return
	}
	ts := start.Sub(l.tracer.start).Microseconds()
	dur := time.Since(start).Microseconds()
	ev := Event{Name: name, Ph: "X", TS: ts, Dur: dur, TID: l.tid}
	if epoch >= 0 || query != "" {
		ev.Args = &Args{Epoch: epoch, Query: query}
	}
	l.events = append(l.events, ev)
}

// Events returns every recorded span, lane by lane (lane order, then
// record order within a lane). Call only while no lane is being written
// (after a run, or between epochs).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, l := range t.lanes {
		out = append(out, l.events...)
	}
	return out
}

// WriteJSONL emits one JSON event object per line — the grep/jq-friendly
// form.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome emits the Chrome trace_event JSON object
// ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
// directly.
func (t *Tracer) WriteChrome(w io.Writer) error {
	doc := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: t.Events()}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Package obs is the engine-wide observability layer: a typed metrics
// registry (counters, gauges, histograms, per-worker sharded counters)
// plus an epoch trace recorder (trace.go), built so that instrumentation
// is ZERO-COST WHEN DISABLED and lock-free on the hot path when enabled.
//
// Disabled means a nil *Registry (or nil *Tracer): every constructor and
// every instrument operation is nil-safe, so instrumented code calls
// instruments unconditionally and a disabled run pays exactly one pointer
// compare per call site — no allocations, no atomics, no branches beyond
// the nil check. internal/engine pins this with an allocation test: the
// steady-state epoch hot path allocates no more with the obs layer
// compiled in than it did before it existed.
//
// Enabled instruments use dense-slice storage: all counter values live in
// one []int64 on the registry (likewise gauges and histogram buckets), and
// an instrument handle is a value type holding the registry pointer plus a
// slot index — creating or passing handles never allocates. Counter, Gauge
// and Histogram writes are single atomic operations, so a live
// introspection endpoint (expvar, /metricz) can Snapshot the registry
// while the engine is mid-epoch without locks or races. ShardedCounter is
// the hot-path variant for parallel sections: each worker owns a
// cache-line-padded shard it bumps with plain stores (no atomics, no
// sharing), and the scheduler folds the shards into the published total at
// the epoch barrier — exactly the merge discipline sim.ChargeBuffer uses
// for traffic accounting.
//
// Determinism: the registry observes execution (byte counters sampled from
// sim metrics, wall-clock phase timings); it never feeds randomness or
// scheduling decisions back into a run, so enabling or disabling
// observability cannot change simulated output, and wall-clock readings
// stay out of every determinism checksum.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// shardStride spaces shard slots a cache line apart (8 int64s = 64 bytes)
// so workers bumping adjacent shards never contend on one line.
const shardStride = 8

// Registry holds every registered instrument and its current value.
// Instruments are registered up front (before any concurrent use) and live
// for the registry's lifetime; values are written with atomic operations
// so Snapshot is safe from any goroutine at any time.
//
// A nil *Registry is the disabled layer: constructors return zero handles
// whose operations are no-ops.
type Registry struct {
	mu sync.Mutex
	// byName maps an instrument name to its kind+slot, for idempotent
	// registration and Snapshot lookups.
	byName map[string]slot

	counterNames []string
	counterVals  []int64 // atomic

	gaugeNames []string
	gaugeVals  []int64 // atomic

	histNames  []string
	histBounds [][]int64
	hists      []*histData

	shardedNames []string
	shardedVals  [][]int64 // per instrument: shards*shardStride plain slots
	shardedTotal []int64   // atomic; published by ShardedCounter.Flush
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindSharded
)

type slot struct {
	kind kind
	idx  int32
}

// histData is one histogram's storage: bucket counts for values <=
// bounds[i] (last bucket is the overflow), plus count/sum/min/max. All
// fields are atomics.
type histData struct {
	buckets []int64
	count   int64
	sum     int64
	min     int64 // initialized to MaxInt64
	max     int64 // initialized to MinInt64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]slot{}}
}

// Enabled reports whether the registry collects (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// register resolves name to a slot, creating it with mk when new. It
// panics when the name is already registered with a different kind.
func (r *Registry) register(name string, k kind, mk func() int32) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: instrument %q re-registered with a different kind", name))
		}
		return s.idx
	}
	idx := mk()
	r.byName[name] = slot{kind: k, idx: idx}
	return idx
}

// Counter registers (or finds) a monotonically increasing counter.
// Registration on a nil registry returns a disabled handle.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	idx := r.register(name, kindCounter, func() int32 {
		r.counterNames = append(r.counterNames, name)
		r.counterVals = append(r.counterVals, 0)
		return int32(len(r.counterVals) - 1)
	})
	return Counter{r: r, i: idx}
}

// Gauge registers (or finds) a last-value-wins gauge.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	idx := r.register(name, kindGauge, func() int32 {
		r.gaugeNames = append(r.gaugeNames, name)
		r.gaugeVals = append(r.gaugeVals, 0)
		return int32(len(r.gaugeVals) - 1)
	})
	return Gauge{r: r, i: idx}
}

// Histogram registers (or finds) a histogram with the given ascending
// bucket bounds (values land in the first bucket whose bound is >= value;
// one extra overflow bucket catches the rest). Bounds are fixed at first
// registration.
func (r *Registry) Histogram(name string, bounds []int64) Histogram {
	if r == nil {
		return Histogram{}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	idx := r.register(name, kindHistogram, func() int32 {
		b := append([]int64(nil), bounds...)
		r.histNames = append(r.histNames, name)
		r.histBounds = append(r.histBounds, b)
		r.hists = append(r.hists, &histData{
			buckets: make([]int64, len(b)+1),
			min:     math.MaxInt64,
			max:     math.MinInt64,
		})
		return int32(len(r.hists) - 1)
	})
	return Histogram{r: r, i: idx}
}

// ShardedCounter registers (or finds) a counter with `shards` independent
// hot-path accumulation slots. Workers bump their own shard with plain
// (non-atomic) adds — safe because each shard is owned by exactly one
// goroutine between flushes — and a sequential section publishes the sum
// with Flush. Snapshot reads only the published total.
func (r *Registry) ShardedCounter(name string, shards int) ShardedCounter {
	if r == nil {
		return ShardedCounter{}
	}
	if shards < 1 {
		shards = 1
	}
	idx := r.register(name, kindSharded, func() int32 {
		r.shardedNames = append(r.shardedNames, name)
		r.shardedVals = append(r.shardedVals, make([]int64, shards*shardStride))
		r.shardedTotal = append(r.shardedTotal, 0)
		return int32(len(r.shardedTotal) - 1)
	})
	sc := ShardedCounter{r: r, i: idx}
	if got := len(r.shardedVals[idx]) / shardStride; got < shards {
		// Re-registration with more shards grows the slot array (holding
		// the lock; no hot path runs during registration).
		r.mu.Lock()
		r.shardedVals[idx] = append(r.shardedVals[idx], make([]int64, (shards-got)*shardStride)...)
		r.mu.Unlock()
	}
	return sc
}

// Counter is a monotonically increasing instrument. The zero value is
// disabled. Add is one atomic add: safe from any goroutine.
type Counter struct {
	r *Registry
	i int32
}

// Add increments the counter by n (no-op when disabled).
func (c Counter) Add(n int64) {
	if c.r == nil {
		return
	}
	atomic.AddInt64(&c.r.counterVals[c.i], n)
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count (0 when disabled).
func (c Counter) Value() int64 {
	if c.r == nil {
		return 0
	}
	return atomic.LoadInt64(&c.r.counterVals[c.i])
}

// Gauge is a last-value-wins instrument. The zero value is disabled.
type Gauge struct {
	r *Registry
	i int32
}

// Set records the current value (no-op when disabled).
func (g Gauge) Set(v int64) {
	if g.r == nil {
		return
	}
	atomic.StoreInt64(&g.r.gaugeVals[g.i], v)
}

// Value returns the last set value (0 when disabled).
func (g Gauge) Value() int64 {
	if g.r == nil {
		return 0
	}
	return atomic.LoadInt64(&g.r.gaugeVals[g.i])
}

// Histogram is a fixed-bucket distribution instrument. The zero value is
// disabled. Observe is a handful of atomic operations — no allocation.
type Histogram struct {
	r *Registry
	i int32
}

// Observe records one value (no-op when disabled).
func (h Histogram) Observe(v int64) {
	if h.r == nil {
		return
	}
	d := h.r.hists[h.i]
	bounds := h.r.histBounds[h.i]
	// Binary search the bucket: first bound >= v, overflow past the end.
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	atomic.AddInt64(&d.buckets[lo], 1)
	atomic.AddInt64(&d.count, 1)
	atomic.AddInt64(&d.sum, v)
	for {
		cur := atomic.LoadInt64(&d.min)
		if v >= cur || atomic.CompareAndSwapInt64(&d.min, cur, v) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&d.max)
		if v <= cur || atomic.CompareAndSwapInt64(&d.max, cur, v) {
			break
		}
	}
}

// ShardedCounter is the hot-path counter: per-worker shards written with
// plain stores, folded into the published total at a barrier. The zero
// value is disabled.
type ShardedCounter struct {
	r *Registry
	i int32
}

// Add accumulates n into the given shard with a plain add. The caller
// guarantees each shard is owned by one goroutine between flushes (the
// engine hands worker w shard w). No-op when disabled; out-of-range
// shards fold into shard 0 rather than racing.
func (s ShardedCounter) Add(shard int, n int64) {
	if s.r == nil {
		return
	}
	vals := s.r.shardedVals[s.i]
	off := shard * shardStride
	if off < 0 || off >= len(vals) {
		off = 0
	}
	vals[off] += n
}

// Flush folds every shard into the published total and zeroes the shards.
// Call from a sequential section (the epoch barrier) — it reads shard
// slots with plain loads, exactly like sim.ChargeBuffer's merge.
func (s ShardedCounter) Flush() {
	if s.r == nil {
		return
	}
	vals := s.r.shardedVals[s.i]
	var sum int64
	for off := 0; off < len(vals); off += shardStride {
		sum += vals[off]
		vals[off] = 0
	}
	if sum != 0 {
		atomic.AddInt64(&s.r.shardedTotal[s.i], sum)
	}
}

// Value returns the published (flushed) total.
func (s ShardedCounter) Value() int64 {
	if s.r == nil {
		return 0
	}
	return atomic.LoadInt64(&s.r.shardedTotal[s.i])
}

// DurationBoundsUS is the default histogram bucketing for wall-clock
// durations in microseconds: a 1-2-5 series from 1µs to 10s.
func DurationBoundsUS() []int64 {
	return series125(1, 10_000_000)
}

// SizeBounds is the default histogram bucketing for sizes (tuples, bytes):
// a 1-2-5 series from 1 to 10M.
func SizeBounds() []int64 {
	return series125(1, 10_000_000)
}

// series125 builds the ascending 1-2-5 decade series in [lo, hi].
func series125(lo, hi int64) []int64 {
	var out []int64
	for base := lo; base <= hi; base *= 10 {
		for _, m := range []int64{1, 2, 5} {
			if v := base * m; v <= hi {
				out = append(out, v)
			}
		}
	}
	return out
}

// Metric is one counter or gauge reading in a Snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramMetric is one histogram's state in a Snapshot.
type HistogramMetric struct {
	Name string `json:"name"`
	// Bounds are the ascending bucket upper bounds; Counts has one entry
	// per bound plus a final overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	// Min/Max are 0 when the histogram has no observations.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramMetric) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of every instrument, sorted by name —
// the unit the live endpoints (expvar JSON, /metricz text) serialize.
type Snapshot struct {
	Counters   []Metric          `json:"counters"`
	Gauges     []Metric          `json:"gauges"`
	Histograms []HistogramMetric `json:"histograms"`
}

// Snapshot copies the registry's current values. Safe concurrently with
// instrument writes (atomic loads; a snapshot mid-epoch sees a consistent
// prefix of each instrument, not a torn value). Returns an empty snapshot
// on a nil registry. Sharded counters appear among Counters at their last
// flushed total.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, name := range r.counterNames {
		s.Counters = append(s.Counters, Metric{Name: name, Value: atomic.LoadInt64(&r.counterVals[i])})
	}
	for i, name := range r.shardedNames {
		s.Counters = append(s.Counters, Metric{Name: name, Value: atomic.LoadInt64(&r.shardedTotal[i])})
	}
	for i, name := range r.gaugeNames {
		s.Gauges = append(s.Gauges, Metric{Name: name, Value: atomic.LoadInt64(&r.gaugeVals[i])})
	}
	for i, name := range r.histNames {
		d := r.hists[i]
		hm := HistogramMetric{
			Name:   name,
			Bounds: append([]int64(nil), r.histBounds[i]...),
			Counts: make([]int64, len(d.buckets)),
			Count:  atomic.LoadInt64(&d.count),
			Sum:    atomic.LoadInt64(&d.sum),
		}
		for b := range d.buckets {
			hm.Counts[b] = atomic.LoadInt64(&d.buckets[b])
		}
		if hm.Count > 0 {
			hm.Min = atomic.LoadInt64(&d.min)
			hm.Max = atomic.LoadInt64(&d.max)
		}
		s.Histograms = append(s.Histograms, hm)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Value looks a counter or gauge up by name.
func (s Snapshot) Value(name string) (int64, bool) {
	for _, m := range s.Counters {
		if m.Name == name {
			return m.Value, true
		}
	}
	for _, m := range s.Gauges {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot as a /metricz-style text dump: one
// "name value" line per counter and gauge, one summary line per histogram.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, m := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-40s %d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	for _, m := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-40s %d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist    %-40s count=%d sum=%d min=%d max=%d mean=%.1f\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}

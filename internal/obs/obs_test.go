package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsDisabled: every operation on the nil registry and on
// zero-value handles is a safe no-op — the contract that lets instrumented
// code skip conditional wiring entirely.
func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", SizeBounds())
	s := r.ShardedCounter("s", 4)
	c.Add(5)
	c.Inc()
	g.Set(7)
	h.Observe(3)
	s.Add(0, 9)
	s.Flush()
	if c.Value() != 0 || g.Value() != 0 || s.Value() != 0 {
		t.Fatal("disabled handles returned non-zero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var zero Counter
	zero.Add(1) // zero-value handle, no registry at all
	var zh Histogram
	zh.Observe(1)
	var zs ShardedCounter
	zs.Add(2, 3)
	zs.Flush()
}

// TestCounterGauge covers the basic instruments and idempotent
// re-registration (same name returns the same slot).
func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.epochs")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	again := r.Counter("engine.epochs")
	again.Inc()
	if c.Value() != 5 {
		t.Fatal("re-registration did not alias the same counter")
	}
	g := r.Gauge("engine.live")
	g.Set(10)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want last-write 7", g.Value())
	}
}

// TestKindMismatchPanics: one name, two kinds is a programming error.
func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestHistogramBuckets pins bucket placement: value v lands in the first
// bucket whose bound >= v, and values beyond the last bound land in the
// overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 999, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hm := snap.Histograms[0]
	wantCounts := []int64{2, 2, 1, 1} // <=10: {1,10}; <=100: {11,100}; <=1000: {999}; overflow: {5000}
	for i, w := range wantCounts {
		if hm.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hm.Counts[i], w, hm.Counts)
		}
	}
	if hm.Count != 6 || hm.Sum != 1+10+11+100+999+5000 {
		t.Fatalf("count=%d sum=%d", hm.Count, hm.Sum)
	}
	if hm.Min != 1 || hm.Max != 5000 {
		t.Fatalf("min=%d max=%d, want 1/5000", hm.Min, hm.Max)
	}
	if got := hm.Mean(); got != float64(hm.Sum)/6 {
		t.Fatalf("mean=%v", got)
	}
}

// TestHistogramEmptyMinMax: an empty histogram reports 0 min/max, not the
// sentinel extremes.
func TestHistogramEmptyMinMax(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", SizeBounds())
	hm := r.Snapshot().Histograms[0]
	if hm.Min != 0 || hm.Max != 0 || hm.Count != 0 {
		t.Fatalf("empty histogram min=%d max=%d count=%d", hm.Min, hm.Max, hm.Count)
	}
}

// TestHistogramBoundsNotAscendingPanics validates the bounds contract.
func TestHistogramBoundsNotAscendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

// TestShardedCounterMerge: concurrent workers writing distinct shards with
// plain adds, folded at a barrier, equal the sequential sum; the published
// total is only visible after Flush.
func TestShardedCounterMerge(t *testing.T) {
	r := NewRegistry()
	const shards = 8
	s := r.ShardedCounter("worker.steps", shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if s.Value() != 0 {
		t.Fatalf("pre-flush total = %d, want 0", s.Value())
	}
	s.Flush()
	if s.Value() != shards*1000 {
		t.Fatalf("flushed total = %d, want %d", s.Value(), shards*1000)
	}
	s.Flush() // idempotent on zeroed shards
	if s.Value() != shards*1000 {
		t.Fatal("second flush changed the total")
	}
	// Out-of-range shards fold into shard 0 instead of racing or panicking.
	s.Add(shards+3, 5)
	s.Add(-1, 5)
	s.Flush()
	if s.Value() != shards*1000+10 {
		t.Fatalf("out-of-range adds lost: %d", s.Value())
	}
}

// TestSnapshotSortedAndComplete: snapshots list every instrument sorted by
// name, sharded counters included among the counters.
func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(2)
	r.Counter("a.counter").Add(1)
	sc := r.ShardedCounter("c.sharded", 2)
	sc.Add(1, 9)
	sc.Flush()
	r.Gauge("z.gauge").Set(3)
	r.Gauge("a.gauge").Set(4)
	r.Histogram("m.hist", []int64{10}).Observe(7)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap.Counters {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "a.counter,b.counter,c.sharded" {
		t.Fatalf("counters = %v", names)
	}
	if snap.Gauges[0].Name != "a.gauge" || snap.Gauges[1].Name != "z.gauge" {
		t.Fatalf("gauges unsorted: %v", snap.Gauges)
	}
	if v, ok := snap.Value("c.sharded"); !ok || v != 9 {
		t.Fatalf("Value(c.sharded) = %d,%v", v, ok)
	}
	if _, ok := snap.Value("missing"); ok {
		t.Fatal("Value found a missing instrument")
	}
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"counter a.counter", "gauge   a.gauge", "hist    m.hist", "count=1", "mean=7.0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}
}

// TestSeries125 pins the default bucket series shape.
func TestSeries125(t *testing.T) {
	b := series125(1, 100)
	want := []int64{1, 2, 5, 10, 20, 50, 100}
	if len(b) != len(want) {
		t.Fatalf("series = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("series = %v, want %v", b, want)
		}
	}
	for i := 1; i < len(DurationBoundsUS()); i++ {
		if DurationBoundsUS()[i] <= DurationBoundsUS()[i-1] {
			t.Fatal("duration bounds not ascending")
		}
	}
}

// TestConcurrentWritesAndSnapshots: atomic instruments under concurrent
// writers with a snapshotting reader — the live-endpoint access pattern —
// must total exactly and trip the race detector never.
func TestConcurrentWritesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("lat", DurationBoundsUS())
	const workers, perWorker = 4, 2500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	close(stop)
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	hm := r.Snapshot().Histograms[0]
	if hm.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hm.Count, workers*perWorker)
	}
}

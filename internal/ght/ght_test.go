package ght

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/topology"
)

func TestHomeNodeDeterministic(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRouter(topo)
	for key := int32(0); key < 50; key++ {
		if r.HomeNode(key) != r.HomeNode(key) {
			t.Fatal("HomeNode not deterministic")
		}
	}
}

func TestHomeNodeIsClosest(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRouter(topo)
	for key := int32(0); key < 20; key++ {
		home := r.HomeNode(key)
		p := hashPoint(key)
		for i := 0; i < topo.N(); i++ {
			if topo.Pos(topology.NodeID(i)).Dist2(p) < topo.Pos(home).Dist2(p) {
				t.Fatalf("key %d: node %d closer than home %d", key, i, home)
			}
		}
	}
}

func TestHomeNodesSpread(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRouter(topo)
	homes := map[topology.NodeID]bool{}
	for key := int32(0); key < 200; key++ {
		homes[r.HomeNode(key)] = true
	}
	if len(homes) < 20 {
		t.Fatalf("200 keys mapped to only %d home nodes — hashing not spreading", len(homes))
	}
}

func TestRouteValidity(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 3)
	r := NewRouter(topo)
	f := func(aRaw, bRaw uint8) bool {
		a := topology.NodeID(int(aRaw) % topo.N())
		b := topology.NodeID(int(bRaw) % topo.N())
		p := r.Route(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		// Perimeter walks may revisit nodes (real GPSR face traversal),
		// but every hop must be a radio link and the walk bounded.
		if p.Hops() > 8*topo.N() {
			return false
		}
		for i := 1; i < len(p); i++ {
			if !topo.IsNeighbor(p[i-1], p[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteSelf(t *testing.T) {
	topo := topology.Generate(topology.Grid, 16, 1)
	r := NewRouter(topo)
	p := r.Route(3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self route = %v", p)
	}
}

func TestRouteToPointEndsAtClosest(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 5)
	r := NewRouter(topo)
	for key := int32(0); key < 20; key++ {
		target := hashPoint(key)
		p := r.RouteToPoint(5, target)
		end := p[len(p)-1]
		if end != r.HomeNode(key) {
			t.Fatalf("key %d: RouteToPoint ended at %d, home is %d", key, end, r.HomeNode(key))
		}
		for i := 1; i < len(p); i++ {
			if !topo.IsNeighbor(p[i-1], p[i]) {
				t.Fatalf("path not link-valid: %v", p)
			}
		}
	}
	// Also from a different source the same home must be reached.
	if r.RouteToPoint(99, hashPoint(7))[len(r.RouteToPoint(99, hashPoint(7)))-1] != r.HomeNode(7) {
		t.Fatal("home node depends on source")
	}
}

func TestGPSRLongerThanShortestPath(t *testing.T) {
	// The property the paper's comparisons rest on: GPSR paths average at
	// least as long as true shortest paths, and strictly longer overall.
	topo := topology.Generate(topology.ModerateRandom, 100, 7)
	r := NewRouter(topo)
	totalG, totalS := 0, 0
	for a := 0; a < topo.N(); a += 5 {
		for b := 2; b < topo.N(); b += 9 {
			if a == b {
				continue
			}
			g := r.Route(topology.NodeID(a), topology.NodeID(b)).Hops()
			s := topo.Hops(topology.NodeID(a), topology.NodeID(b))
			if g < s {
				t.Fatalf("GPSR beat shortest path %d->%d: %d < %d", a, b, g, s)
			}
			totalG += g
			totalS += s
		}
	}
	if totalG <= totalS {
		t.Fatalf("GPSR total %d not longer than shortest-path total %d", totalG, totalS)
	}
}

func TestHashPointInField(t *testing.T) {
	for key := int32(-100); key < 100; key++ {
		p := hashPoint(key)
		if p.X < 0 || p.X >= topology.Field || p.Y < 0 || p.Y >= topology.Field {
			t.Fatalf("hashPoint(%d) = %v outside field", key, p)
		}
	}
}

func TestEscapeFindsCloserNode(t *testing.T) {
	// A concave chain: greedy from one arm toward the other gets stuck.
	pos := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0},
		{X: 3, Y: 1}, {X: 3, Y: 2}, {X: 0, Y: 2},
	}
	topo := topology.FromPositions(pos, 1.1)
	r := NewRouter(topo)
	// From node 6 (0,2) to node 0 (0,0): euclidean straight down, but the
	// only physical route goes 6 is isolated? ensure connectivity first.
	if !topo.Connected() {
		t.Skip("layout not connected under this radio range")
	}
	p := r.Route(6, 0)
	if p[len(p)-1] != 0 {
		t.Fatalf("route did not reach target: %v", p)
	}
}

func TestGPSRDeliveryAcrossTopologies(t *testing.T) {
	// Delivery property: GPSR (greedy + perimeter + BFS fallback) reaches
	// every destination on every connected deployment class.
	for _, kind := range topology.Kinds {
		topo := topology.Generate(kind, 80, 3)
		r := NewRouter(topo)
		for a := 0; a < topo.N(); a += 11 {
			for b := 4; b < topo.N(); b += 13 {
				if a == b {
					continue
				}
				p := r.Route(topology.NodeID(a), topology.NodeID(b))
				if p[len(p)-1] != topology.NodeID(b) {
					t.Fatalf("%v: GPSR failed to deliver %d->%d", kind, a, b)
				}
			}
		}
	}
}

func TestPlanarGraphIsSubgraphAndConnectedEnough(t *testing.T) {
	topo := topology.Generate(topology.ModerateRandom, 100, 1)
	r := NewRouter(topo)
	for i := 0; i < topo.N(); i++ {
		for _, nb := range r.planar[i] {
			if !topo.IsNeighbor(topology.NodeID(i), nb) {
				t.Fatalf("planar edge %d-%d not a radio link", i, nb)
			}
		}
		// Gabriel graphs of connected disk graphs keep every node attached.
		if len(r.planar[i]) == 0 && len(topo.Neighbors(topology.NodeID(i))) > 0 {
			t.Fatalf("node %d isolated in the planarization", i)
		}
	}
}

// Package ght implements the geographic hash table substrate the paper
// compares against (section 2.2): GPSR-style geographic routing plus GHT
// key hashing [13]. A join key hashes to a location in the deployment
// field; the node closest to that location is the key's home node, and all
// tuples with that key route to it.
//
// GPSR modelling: greedy geographic forwarding plus perimeter-mode
// recovery — at a local minimum the packet switches to a right-hand-rule
// walk over the Gabriel-graph planarization of the radio graph, as in the
// real protocol, until it reaches a node strictly closer to the
// destination than where it got stuck. This reproduces GPSR's
// characteristic behaviour that the paper's figures depend on: perimeter
// walks around voids make paths substantially longer than tree or
// full-graph paths (Fig 16a, and the GHT rows of Figs 2-3).
package ght

import (
	"math"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Router performs geographic routing and GHT key placement over a topology.
type Router struct {
	topo *topology.Topology
	// planar[n] are n's neighbours in the Gabriel-graph planarization,
	// used by perimeter mode.
	planar [][]topology.NodeID
}

// NewRouter returns a geographic router for topo.
func NewRouter(topo *topology.Topology) *Router {
	r := &Router{topo: topo}
	r.planarize()
	return r
}

// planarize computes the Gabriel graph: the radio link (u,v) survives iff
// no third node lies inside the circle with diameter uv. GPSR runs its
// right-hand rule on this planar subgraph so face walks cannot cross.
func (r *Router) planarize() {
	n := r.topo.N()
	r.planar = make([][]topology.NodeID, n)
	for i := 0; i < n; i++ {
		u := topology.NodeID(i)
		pu := r.topo.Pos(u)
		for _, v := range r.topo.Neighbors(u) {
			if v < u {
				continue // handle each link once
			}
			pv := r.topo.Pos(v)
			mid := geom.Point{X: (pu.X + pv.X) / 2, Y: (pu.Y + pv.Y) / 2}
			radius2 := pu.Dist2(pv) / 4
			keep := true
			for _, w := range r.topo.Neighbors(u) {
				if w == v {
					continue
				}
				if r.topo.Pos(w).Dist2(mid) < radius2 {
					keep = false
					break
				}
			}
			if keep {
				for _, w := range r.topo.Neighbors(v) {
					if w == u {
						continue
					}
					if r.topo.Pos(w).Dist2(mid) < radius2 {
						keep = false
						break
					}
				}
			}
			if keep {
				r.planar[u] = append(r.planar[u], v)
				r.planar[v] = append(r.planar[v], u)
			}
		}
	}
}

// hashPoint maps a join key to a location in the deployment field,
// SplitMix-style, matching GHT's uniform random placement.
func hashPoint(key int32) geom.Point {
	z := uint64(uint32(key)) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	x := float64(uint32(z)) / float64(1<<32) * topology.Field
	y := float64(uint32(z>>32)) / float64(1<<32) * topology.Field
	return geom.Point{X: x, Y: y}
}

// HomeNode returns the node responsible for key: the node whose position is
// closest to the key's hashed location (ties to the lower ID). This is the
// node GPSR's perimeter mode would deliver to.
func (r *Router) HomeNode(key int32) topology.NodeID {
	p := hashPoint(key)
	best := topology.NodeID(0)
	bestD := r.topo.Pos(0).Dist2(p)
	for i := 1; i < r.topo.N(); i++ {
		if d := r.topo.Pos(topology.NodeID(i)).Dist2(p); d < bestD {
			best, bestD = topology.NodeID(i), d
		}
	}
	return best
}

// Route returns the GPSR path from src to dst: greedy geographic
// forwarding toward dst's position, switching to perimeter mode at local
// minima. Perimeter walks may revisit nodes — those hops are real
// transmissions and stay on the path, so traffic accounting reflects
// GPSR's face-walking overhead.
func (r *Router) Route(src, dst topology.NodeID) routing.Path {
	if src == dst {
		return routing.Path{src}
	}
	target := r.topo.Pos(dst)
	path := routing.Path{src}
	cur := src
	for cur != dst {
		next, ok := r.greedyStep(cur, target)
		if ok {
			path = append(path, next)
			cur = next
			continue
		}
		walk := r.perimeter(cur, target)
		if walk == nil {
			// Face walk found no closer node (a face-local minimum when
			// routing to a node): fall back to the shortest escape so a
			// reachable destination is always reached.
			walk = r.bfsEscape(cur, target)
		}
		if walk == nil {
			break // cur is globally closest; cannot happen for a node dst
		}
		path = append(path, walk[1:]...)
		cur = path[len(path)-1]
	}
	return path
}

// RouteToPoint returns the GPSR path from src to the node closest to p
// (GHT delivery): the home node is the global closest node (where GPSR's
// perimeter probing converges), and the path is the GPSR route to it.
func (r *Router) RouteToPoint(src topology.NodeID, p geom.Point) routing.Path {
	best := topology.NodeID(0)
	bestD := r.topo.Pos(0).Dist2(p)
	for i := 1; i < r.topo.N(); i++ {
		if d := r.topo.Pos(topology.NodeID(i)).Dist2(p); d < bestD {
			best, bestD = topology.NodeID(i), d
		}
	}
	return r.Route(src, best)
}

// greedyStep picks the neighbour of cur strictly closer to target than cur
// (the closest such neighbour; ties toward lower ID). ok is false at a
// local minimum.
func (r *Router) greedyStep(cur topology.NodeID, target geom.Point) (topology.NodeID, bool) {
	curD := r.topo.Pos(cur).Dist2(target)
	best := topology.NodeID(-1)
	bestD := curD
	for _, nb := range r.topo.Neighbors(cur) {
		if d := r.topo.Pos(nb).Dist2(target); d < bestD {
			best, bestD = nb, d
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// perimeter is GPSR's recovery mode: a right-hand-rule walk on the
// Gabriel-planarized graph, starting counterclockwise from the line toward
// the destination, until reaching a node strictly closer to the target
// than the local minimum (greedy then resumes). Returns nil when no closer
// node exists (cur is the home node). A bounded walk that fails to escape
// (numerically degenerate faces) falls back to a shortest-path escape so
// delivery remains guaranteed on connected graphs.
func (r *Router) perimeter(cur topology.NodeID, target geom.Point) routing.Path {
	stuckD := r.topo.Pos(cur).Dist2(target)
	path := routing.Path{cur}
	prev := topology.NodeID(-1)
	at := cur
	limit := 4 * r.topo.N()
	for step := 0; step < limit; step++ {
		next, ok := r.nextRightHand(at, prev, target)
		if !ok {
			break
		}
		path = append(path, next)
		prev, at = at, next
		if r.topo.Pos(at).Dist2(target) < stuckD {
			return path
		}
		if at == cur && step > 0 {
			// Completed the face without finding a closer node: the
			// destination region is unreachable-closer; cur is home.
			return nil
		}
	}
	// Degenerate face walk: fall back to the shortest escape to preserve
	// the delivery guarantee.
	return r.bfsEscape(cur, target)
}

// nextRightHand picks the planar neighbour next counterclockwise from the
// reference direction (the incoming edge, or the destination bearing when
// entering perimeter mode), implementing GPSR's right-hand rule.
func (r *Router) nextRightHand(at, from topology.NodeID, target geom.Point) (topology.NodeID, bool) {
	nbrs := r.planar[at]
	if len(nbrs) == 0 {
		return 0, false
	}
	p := r.topo.Pos(at)
	var ref float64
	if from >= 0 {
		q := r.topo.Pos(from)
		ref = math.Atan2(q.Y-p.Y, q.X-p.X)
	} else {
		ref = math.Atan2(target.Y-p.Y, target.X-p.X)
	}
	best := topology.NodeID(-1)
	bestDelta := math.Inf(1)
	for _, nb := range nbrs {
		if nb == from && len(nbrs) > 1 {
			continue // take the incoming edge only as a dead-end bounce
		}
		q := r.topo.Pos(nb)
		a := math.Atan2(q.Y-p.Y, q.X-p.X)
		delta := a - ref
		for delta <= 0 {
			delta += 2 * math.Pi
		}
		if delta < bestDelta || (delta == bestDelta && nb < best) {
			best, bestDelta = nb, delta
		}
	}
	if best < 0 {
		return nbrs[0], true // dead end: bounce back
	}
	return best, true
}

// bfsEscape is the fallback recovery: the shortest hop-path from cur to
// the nearest node strictly closer (Euclidean) to target than cur, or nil
// if none exists (cur is globally closest).
func (r *Router) bfsEscape(cur topology.NodeID, target geom.Point) routing.Path {
	curD := r.topo.Pos(cur).Dist2(target)
	parent := make([]topology.NodeID, r.topo.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[cur] = -1
	queue := []topology.NodeID{cur}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range r.topo.Neighbors(u) {
			if parent[v] != -2 {
				continue
			}
			parent[v] = u
			if r.topo.Pos(v).Dist2(target) < curD {
				var p routing.Path
				for at := v; at != -1; at = parent[at] {
					p = append(p, at)
				}
				return p.Reverse()
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// Package analysis is the repo's invariant-enforcing static-analysis
// framework: a stdlib-only loader (go list + go/parser + go/types, no
// external dependencies) plus a small analyzer API in the shape of
// golang.org/x/tools/go/analysis, scoped to exactly what this codebase
// needs. It exists because the engine's correctness invariants — byte-
// identical output at any worker count, all randomness through
// internal/rng, observation never feeding back into execution, the
// allocation-free steady-state hot path — live in doc comments and
// property tests, which only catch violations on exercised paths. A
// static pass catches them at the diff.
//
// Shipped analyzers (run via cmd/aspen-vet):
//
//   - detrand: forbids wall-clock reads (time.Now/time.Since) and any use
//     of math/rand (global or local — all randomness is drawn through
//     internal/rng) inside the deterministic package set. Escape hatch
//     //aspen:wallclock for audited observability timing paths.
//   - maporder: flags `range` over a map in deterministic packages unless
//     the loop body is provably order-invariant (commutative integer
//     accumulation, distinct-key map writes, deletes) or the site carries
//     //aspen:orderinvariant. Map-iteration order leaking into output is
//     the classic way worker-count byte-identity dies.
//   - obsfeedback: forbids reading a value out of an internal/obs handle
//     (Counter.Value, Registry.Snapshot, ...) inside deterministic
//     packages — observation must never feed back into execution. Escape
//     hatch //aspen:obsread for deliberate introspection surfaces.
//   - steplock: inside join stepper Step methods, forbids calls to the
//     substrate/repairer/shared-memoization APIs documented sequential-
//     only by the PR-5 concurrency contract. Escape hatch //aspen:stepsafe.
//
// Alongside the AST analyzers, escape.go implements the allocfree gate:
// functions annotated //aspen:allocfree are checked against the
// compiler's own escape analysis (go build -gcflags=-m) and any heap
// allocation inside an annotated body fails the build.
//
// Annotations are ordinary line comments of the form //aspen:<tag>. A tag
// applies to a statement when it appears on the same line, on the line
// directly above, or in the doc comment of the enclosing function
// declaration. The file-scope marker //aspen:deterministic opts a package
// into the deterministic set regardless of its import path (used by the
// golden-test packages under testdata).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	// Position is the resolved file:line:col of the finding.
	Position token.Position `json:"position"`
	// Analyzer names the analyzer that reported it.
	Analyzer string `json:"analyzer"`
	// Message describes the violated invariant at this site.
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzer is one invariant check. Run inspects a typechecked package
// through its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the identifier used by -run and in diagnostics.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	ann   *annotations
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether the aspen:<tag> escape hatch covers the node:
// a //aspen:<tag> comment on the node's line, on the line directly above
// it, or in the doc comment of the function declaration enclosing it.
func (p *Pass) Annotated(tag string, n ast.Node) bool {
	pos := p.Pkg.Fset.Position(n.Pos())
	lines, ok := p.ann.byFile[pos.Filename]
	if !ok {
		return false
	}
	if lines[pos.Line][tag] || lines[pos.Line-1][tag] {
		return true
	}
	for _, fr := range p.ann.funcs[pos.Filename] {
		if fr.tags[tag] && fr.from <= pos.Line && pos.Line <= fr.to {
			return true
		}
	}
	return false
}

// Deterministic reports whether this package is in the deterministic set:
// either its import path is one of the engine packages whose output feeds
// determinism checksums, or a file carries the //aspen:deterministic
// marker (how testdata packages opt in).
func (p *Pass) Deterministic() bool {
	if deterministicPkgs[p.Pkg.PkgPath] {
		return true
	}
	return p.ann.markers["deterministic"]
}

// deterministicPkgs is the package set whose execution must be bit-
// reproducible from the seed: everything between the workload generator
// and the simulator's byte accounting. internal/obs and internal/bench
// are deliberately outside it — they observe runs (wall clocks allowed)
// without feeding back in, which obsfeedback enforces from the other side.
var deterministicPkgs = map[string]bool{
	"repro/internal/sim":      true,
	"repro/internal/join":     true,
	"repro/internal/engine":   true,
	"repro/internal/faults":   true,
	"repro/internal/routing":  true,
	"repro/internal/adapt":    true,
	"repro/internal/window":   true,
	"repro/internal/dht":      true,
	"repro/internal/topology": true,
	"repro/internal/workload": true,
}

// annotations indexes every //aspen:<tag> comment of one package.
type annotations struct {
	// byFile maps filename -> line -> set of tags on that line.
	byFile map[string]map[int]map[string]bool
	// funcs maps filename -> function declarations whose doc comment
	// carries tags, with their body line ranges.
	funcs map[string][]funcRange
	// markers holds file-scope tags (currently only "deterministic").
	markers map[string]bool
}

type funcRange struct {
	from, to int
	tags     map[string]bool
}

const annPrefix = "//aspen:"

// parseTags extracts aspen tags from one comment's text.
func parseTags(text string) []string {
	var tags []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, annPrefix); ok {
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[:i]
			}
			if rest != "" {
				tags = append(tags, rest)
			}
		}
	}
	return tags
}

// buildAnnotations scans the package's comments once; every Pass over the
// package shares the result.
func buildAnnotations(pkg *Package) *annotations {
	a := &annotations{
		byFile:  map[string]map[int]map[string]bool{},
		funcs:   map[string][]funcRange{},
		markers: map[string]bool{},
	}
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		lines := map[int]map[string]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, tag := range parseTags(c.Text) {
					line := pkg.Fset.Position(c.Pos()).Line
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					lines[line][tag] = true
					if tag == "deterministic" {
						a.markers[tag] = true
					}
				}
			}
		}
		if len(lines) > 0 {
			a.byFile[fname] = lines
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			tags := map[string]bool{}
			for _, tag := range parseTags(fd.Doc.Text()) {
				tags[tag] = true
			}
			// Doc.Text strips the comment markers, so re-scan raw lines
			// too (Text normalizes away leading slashes only; keep both
			// paths cheap and idempotent).
			for _, c := range fd.Doc.List {
				for _, tag := range parseTags(c.Text) {
					tags[tag] = true
				}
			}
			if len(tags) == 0 {
				continue
			}
			a.funcs[fname] = append(a.funcs[fname], funcRange{
				from: pkg.Fset.Position(fd.Pos()).Line,
				to:   pkg.Fset.Position(fd.End()).Line,
				tags: tags,
			})
		}
	}
	return a
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, ObsFeedback, StepLock}
}

// ByName resolves a comma-separated -run list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// Run executes the given analyzers over the given packages and returns
// all diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ann := buildAnnotations(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, ann: ann}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// pkgPathOf returns the import path of the package an object belongs to,
// or "" for universe-scope and builtin objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (possibly behind pointers) is a named
// type declared in the package with the given import path, and returns
// its name.
func typeFromPkg(t types.Type, pkgPath string) (string, bool) {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	if n.Obj().Pkg().Path() != pkgPath {
		return "", false
	}
	return n.Obj().Name(), true
}

package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden-test expectation comment form:
//
//	expr // want "regex"
//	expr // want `regex`
//
// The regex must match the diagnostic message reported on that line.
var wantRe = regexp.MustCompile("^// want (\"([^\"]*)\"|`([^`]*)`)$")

// wantKey locates one expectation: a diagnostic must land on this exact
// file and line.
type wantKey struct {
	file string
	line int
}

// collectWants scans a fixture package's comments for want expectations.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[2]
				if pat == "" {
					pat = m[3]
				}
				if _, err := regexp.Compile(pat); err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{file: pos.Filename, line: pos.Line}
				wants[k] = append(wants[k], pat)
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<name>, runs one analyzer, and diffs its
// diagnostics against the fixture's want comments in both directions:
// every diagnostic must satisfy a want on its line, and every want must
// be consumed by exactly one diagnostic.
func runGolden(t *testing.T, fixture string, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	wants := collectWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		k := wantKey{file: d.Position.Filename, line: d.Position.Line}
		matched := -1
		for i, pat := range wants[k] {
			if regexp.MustCompile(pat).MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, pat)
		}
	}
}

func TestGoldenDetRand(t *testing.T)     { runGolden(t, "detrand", DetRand) }
func TestGoldenMapOrder(t *testing.T)    { runGolden(t, "maporder", MapOrder) }
func TestGoldenObsFeedback(t *testing.T) { runGolden(t, "obsfeedback", ObsFeedback) }
func TestGoldenStepLock(t *testing.T)    { runGolden(t, "steplock", StepLock) }

// TestByName pins -run resolution: known names, the empty default, and
// the unknown-name error callers turn into exit status 2.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 4, nil", len(all), err)
	}
	picked, err := ByName("steplock, detrand")
	if err != nil || len(picked) != 2 || picked[0].Name != "steplock" || picked[1].Name != "detrand" {
		t.Fatalf("ByName(\"steplock, detrand\") = %v, %v", picked, err)
	}
	if _, err := ByName("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("ByName(\"nosuch\") err = %v, want unknown analyzer", err)
	}
}

// TestDiagnosticString pins the human-readable rendering the CLI prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "detrand", Message: "m"}
	d.Position.Filename = "f.go"
	d.Position.Line = 3
	d.Position.Column = 7
	if got, want := d.String(), "f.go:3:7: detrand: m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRepoClean pins the acceptance criterion that the analyzer suite
// exits clean on the repo's own tree: every true positive is fixed, every
// audited exception annotated. A regression in either direction — new
// violation or analyzer false positive — fails here first.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo")
	}
	pkgs, err := Load(".", "repro/...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern repro/... broken?", len(pkgs))
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not clean: %s", d)
	}
}

// TestDeterministicSetLoaded pins that the deterministic package set and
// the loader agree: each listed package actually exists in the tree, so
// a rename cannot silently drop a package out of enforcement.
func TestDeterministicSetLoaded(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo")
	}
	pkgs, err := Load(".", "repro/internal/...")
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, p := range pkgs {
		have[p.PkgPath] = true
	}
	for path := range deterministicPkgs {
		if !have[path] {
			t.Errorf("deterministic set names %s but the loader did not find it", path)
		}
	}
}

// TestLoadErrors pins loader failure modes surfaced as exit status 2.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./does/not/exist"); err == nil {
		t.Error("Load of a nonexistent pattern succeeded")
	}
	if _, err := Load(".", "repro/nosuchpkg"); err == nil {
		t.Error("Load of a nonexistent import path succeeded")
	}
}

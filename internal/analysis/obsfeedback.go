package analysis

import (
	"go/ast"
	"go/types"
)

// obsPkgPath is the observability layer whose values must never flow
// back into execution.
const obsPkgPath = "repro/internal/obs"

// ObsFeedback mechanizes PR 6's one-way-mirror invariant: internal/obs
// observes execution, execution never reads internal/obs. Inside the
// deterministic package set, calling any obs method that returns an
// observed value (Counter.Value, Gauge.Value, Registry.Snapshot,
// Tracer.Events, ...) is flagged — if execution branched on a metric,
// enabling observability could change simulated output and every
// byte-identity checksum with it.
//
// Exemptions: handle constructors (methods whose results are themselves
// obs types, e.g. Registry.Counter), Enabled (a configuration predicate —
// it reveals whether observation is on, which instrumented code may gate
// on, never an observed value), and error-only results (Write* emitters).
// Escape hatch //aspen:obsread marks deliberate introspection surfaces
// (engine.Snapshot) that exist to EXPORT observed state, audited to feed
// nothing back in.
var ObsFeedback = &Analyzer{
	Name: "obsfeedback",
	Doc:  "forbid reading values out of internal/obs handles inside deterministic packages (observation must not feed back into execution)",
	Run:  runObsFeedback,
}

func runObsFeedback(p *Pass) error {
	if !p.Deterministic() || p.Pkg.PkgPath == obsPkgPath {
		return nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkObsCall(p, call)
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkObsFieldRead(p, sel)
			}
			return true
		})
	}
	return nil
}

// checkObsCall flags method calls on obs handles that return observed
// values. Package-level obs functions are not checked: with no handle
// receiver they cannot read observed state (they are constructors and
// bucket-bounds builders).
func checkObsCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := p.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	recvName, fromObs := typeFromPkg(s.Recv(), obsPkgPath)
	if !fromObs {
		return
	}
	sig, _ := s.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return
	}
	if sel.Sel.Name == "Enabled" {
		return
	}
	if allResultsHarmless(sig) {
		return
	}
	if p.Annotated("obsread", call) {
		return
	}
	p.Reportf(call.Pos(), "%s.%s reads a value out of internal/obs inside deterministic package %s: observation must never feed back into execution (annotate //aspen:obsread only on audited export surfaces)", recvName, sel.Sel.Name, p.Pkg.Name)
}

// checkObsFieldRead flags direct field access on obs-declared structs
// (Snapshot.Counters, Event.Name, ...) — the other way observed values
// could leak into execution, bypassing the getter methods.
func checkObsFieldRead(p *Pass, sel *ast.SelectorExpr) {
	s := p.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	recvName, fromObs := typeFromPkg(s.Recv(), obsPkgPath)
	if !fromObs {
		return
	}
	if p.Annotated("obsread", sel) {
		return
	}
	p.Reportf(sel.Pos(), "%s.%s field read on an internal/obs value inside deterministic package %s: observation must never feed back into execution (annotate //aspen:obsread only on audited export surfaces)", recvName, sel.Sel.Name, p.Pkg.Name)
}

// allResultsHarmless reports whether every result is an obs-declared type
// (a handle, not an observed value) or error (emitter status).
func allResultsHarmless(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if _, fromObs := typeFromPkg(t, obsPkgPath); fromObs {
			continue
		}
		if named := namedOf(t); named != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			continue
		}
		return false
	}
	return true
}

package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The allocfree gate turns PR 2's benchmark-pinned allocation budget into
// a compile-time check. A function annotated //aspen:allocfree in its doc
// comment declares its body steady-state allocation-free; the gate runs
// the compiler's own escape analysis (go build -gcflags=-m) and fails if
// any heap allocation ("escapes to heap" / "moved to heap") lands inside
// an annotated body. Benchmarks catch an alloc regression when someone
// runs them; the gate catches it on every CI build.
//
// Attribution is by source range: a diagnostic belongs to the annotated
// function whose body span contains its line. Allocations inside callees
// are attributed to the callee's own source position even when inlined,
// so annotating a function covers exactly the code written in it — the
// deliberate shape for hot paths whose cold helpers (lazy ring growth,
// recovery) may allocate.
//
// Escape hatch: //aspen:alloc on the allocation's line (or the line
// above) waives one audited cold-path allocation inside an annotated
// function.

// allocFreeFunc is one annotated function's body span.
type allocFreeFunc struct {
	name     string
	from, to int // line range, inclusive
}

// escapeLine matches `file.go:12:6: make([]byte, n) escapes to heap`.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// CheckAllocFree runs the escape-analysis gate over the packages matched
// by patterns (resolved by `go list` in dir). It returns one Diagnostic
// per heap allocation inside an //aspen:allocfree function.
func CheckAllocFree(dir string, patterns ...string) ([]Diagnostic, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	// The compiler reports source paths relative to the module root, not
	// the invocation directory.
	root := absDir
	modCmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	modCmd.Dir = dir
	if out, err := modCmd.Output(); err == nil {
		if d := strings.TrimSpace(string(out)); d != "" {
			root = d
		}
	}
	listed, err := goList(dir, append([]string{"list", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	byFile := map[string][]allocFreeFunc{} // absolute path -> annotated spans
	waived := map[string]map[int]bool{}    // file -> lines carrying //aspen:alloc
	var buildPkgs []string
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		found := false
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			fns, waives, err := annotatedFuncs(path)
			if err != nil {
				return nil, err
			}
			if len(fns) > 0 {
				byFile[path] = fns
				found = true
			}
			if len(waives) > 0 {
				waived[path] = waives
			}
		}
		if found {
			buildPkgs = append(buildPkgs, p.ImportPath)
		}
	}
	if len(buildPkgs) == 0 {
		return nil, nil
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, buildPkgs...)...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	var diags []Diagnostic
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			// Module-root relative is the usual shape; fall back to the
			// invocation directory for paths outside the module.
			if cand := filepath.Join(root, file); len(byFile[cand]) > 0 || waived[cand] != nil {
				file = cand
			} else {
				file = filepath.Join(absDir, file)
			}
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		if waived[file][ln] || waived[file][ln-1] {
			continue
		}
		for _, fn := range byFile[file] {
			if fn.from <= ln && ln <= fn.to {
				diags = append(diags, Diagnostic{
					Position: token.Position{Filename: file, Line: ln, Column: col},
					Analyzer: "allocfree",
					Message:  fmt.Sprintf("%s is //aspen:allocfree but %s", fn.name, m[4]),
				})
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		return a.Position.Line < b.Position.Line
	})
	return diags, nil
}

// annotatedFuncs parses one file and returns its //aspen:allocfree
// function spans plus the lines waived with //aspen:alloc.
func annotatedFuncs(path string) ([]allocFreeFunc, map[int]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	var funcs []allocFreeFunc
	waives := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, tag := range parseTags(c.Text) {
				if tag == "alloc" {
					waives[fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		annotated := false
		for _, c := range fd.Doc.List {
			for _, tag := range parseTags(c.Text) {
				if tag == "allocfree" {
					annotated = true
				}
			}
		}
		if !annotated {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if recv := recvString(fd.Recv.List[0].Type); recv != "" {
				name = recv + "." + name
			}
		}
		funcs = append(funcs, allocFreeFunc{
			name: name,
			from: fset.Position(fd.Body.Pos()).Line,
			to:   fset.Position(fd.Body.End()).Line,
		})
	}
	return funcs, waives, nil
}

// recvString renders a receiver type expression ("*Network" -> "Network").
func recvString(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

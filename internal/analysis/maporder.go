package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder enforces the byte-identity invariant against its classic
// killer: Go's randomized map-iteration order leaking into execution. In
// a deterministic package, any `for ... range m` where m is a map is
// flagged unless the loop body is provably order-invariant — every
// statement is a commutative integer accumulation, a write to a distinct
// per-key slot, or a delete — or the site carries //aspen:orderinvariant
// (the auditor's assertion that ordering cannot reach output, e.g. the
// iteration feeds a sort).
//
// The body check is deliberately conservative: float accumulation is NOT
// order-invariant (rounding), appends are NOT (element order), branches
// are NOT (min/max tie-breaks). Anything the checker cannot prove needs
// either a fix (iterate a sorted key slice / a dense index) or the
// annotation with an audit trail.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages unless the body is order-invariant or //aspen:orderinvariant",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) error {
	if !p.Deterministic() {
		return nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.Annotated("orderinvariant", rs) {
				return true
			}
			if orderInvariantBody(p, rs) {
				return true
			}
			p.Reportf(rs.Pos(), "range over map in deterministic package %s: iteration order is randomized; iterate a sorted key slice, or annotate //aspen:orderinvariant after auditing that order cannot reach output", p.Pkg.Name)
			return true
		})
	}
	return nil
}

// orderInvariantBody reports whether every statement of the range body is
// one of the recognized commutative forms, so executing iterations in any
// order yields identical state.
func orderInvariantBody(p *Pass, rs *ast.RangeStmt) bool {
	keyName := ""
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	for _, stmt := range rs.Body.List {
		if !orderInvariantStmt(p, stmt, keyName, rs.X) {
			return false
		}
	}
	return true
}

// commutativeAssignOps can be reordered freely over integer operands.
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.AND_ASSIGN: true,
	token.XOR_ASSIGN: true,
}

func orderInvariantStmt(p *Pass, stmt ast.Stmt, keyName string, ranged ast.Expr) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// counter++ / counter-- on an integer accumulator.
		return isIntegral(p, s.X) && pureExpr(p, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		if !pureExpr(p, rhs) {
			return false
		}
		// m2[k] = v / m2[k] op= v: writes land on distinct keys, so
		// iterations touch disjoint state.
		if ix, ok := lhs.(*ast.IndexExpr); ok && keyName != "" {
			if id, ok := ix.Index.(*ast.Ident); ok && id.Name == keyName && pureExpr(p, ix.X) {
				if s.Tok == token.ASSIGN || commutativeAssignOps[s.Tok] {
					return true
				}
			}
			return false
		}
		// acc += v and friends on integer accumulators commute; float
		// accumulation does not (rounding is order-dependent).
		return commutativeAssignOps[s.Tok] && isIntegral(p, lhs) && pureExpr(p, lhs)
	case *ast.ExprStmt:
		// delete(m, k): each iteration removes its own key.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		if obj := p.Pkg.Info.Uses[id]; obj == nil || obj.Pkg() != nil {
			return false // shadowed delete
		}
		k, ok := call.Args[1].(*ast.Ident)
		return ok && keyName != "" && k.Name == keyName
	default:
		return false
	}
}

// isIntegral reports whether e has integer type (no floats: float
// addition is not associative, so reduction order changes the result).
func isIntegral(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether evaluating e cannot have side effects: only
// identifiers, field/index reads, literals, operators, conversions and
// len/cap. Any other call is assumed impure.
func pureExpr(p *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[id]; obj != nil && obj.Pkg() == nil {
				switch id.Name {
				case "len", "cap", "min", "max":
					return true // pure builtins; recurse into args
				}
			}
		}
		// Type conversions are pure.
		if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		pure = false
		return false
	})
	return pure
}

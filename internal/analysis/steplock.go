package analysis

import (
	"go/ast"
	"go/types"
)

// StepLock mechanizes the join.Stepper concurrency contract (audited in
// PR 5, documented on the Stepper interface): internal/engine steps
// independent queries on parallel workers, so a Step method may write
// only query-owned state and read shared structures — every API that
// mutates shared state (routing repair and substrate extension, dht.Ring
// route memoization, liveness mutation, parent-cache invalidation) is
// confined to Start or to the engine's sequential recovery/adaptivity
// phases. A Step body that calls one of those APIs is a data race and a
// determinism hole the -race battery only catches when schedules collide.
//
// rng.Source methods are forbidden wholesale inside Step: query-owned
// randomness is drawn through the sampler, so a direct source draw in
// Step is either shared (a race) or a new side channel. The check is
// syntactic over the Step body including its closures; it does not chase
// same-package helper calls (maybeFail is the documented single-query
// exception). Escape hatch //aspen:stepsafe records an audited exception.
var StepLock = &Analyzer{
	Name: "steplock",
	Doc:  "forbid sequential-only substrate/repairer/shared-memoization APIs inside join stepper Step methods",
	Run:  runStepLock,
}

// stepLockPkgs is the package set whose Step methods the analyzer audits:
// the join steppers (parallel workers) and the engine package itself —
// Engine.Step is the scheduler, whose shared-state mutation must route
// through the named sequential-phase helpers (applyChurn, admit, …), not
// sit inline in Step where a refactor could drift it past the barrier.
var stepLockPkgs = map[string]bool{"join": true, "engine": true}

// stepForbiddenFuncs maps package path -> package-level functions
// forbidden inside Step: the tree-maintenance entry points mutate (or
// replace) routing trees every worker reads, so they are barrier-only.
var stepForbiddenFuncs = map[string]map[string]bool{
	"repro/internal/routing": {
		"PatchTreeLive":   true, // patches Parent/Depth/Children/paths in place
		"RebuildTreeLive": true, // reads the liveness view mid-mutation
	},
}

// stepForbidden maps package path -> receiver type -> forbidden methods.
// A nil method set forbids every method of the type.
var stepForbidden = map[string]map[string]map[string]bool{
	"repro/internal/routing": {
		"Repairer": nil, // repair/exploration is the engine's sequential recovery phase
		"Substrate": {
			"ExtendIndexes":       true,
			"ExtendPositionIndex": true,
			"RepairTrees":         true,
			"UpdateAttribute":     true,
		},
	},
	"repro/internal/dht": {
		"Ring": {
			"Route":           true, // memoizes per-destination parent vectors (filled during sequential admission)
			"ObserveFailures": true,
		},
	},
	"repro/internal/topology": {
		"Liveness":    {"Fail": true, "Revive": true},
		"ParentCache": {"Invalidate": true},
	},
	"repro/internal/rng": {
		"Source": nil,
	},
}

func runStepLock(p *Pass) error {
	if !stepLockPkgs[p.Pkg.Name] {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Step" || fd.Body == nil {
				continue
			}
			checkStepBody(p, fd)
		}
	}
	return nil
}

func checkStepBody(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Pkg.Info.Selections[sel]
		if s == nil {
			// Not a method value: a qualified identifier (pkg.Func) lands
			// here. Check the package-level forbidden set.
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if !stepForbiddenFuncs[path][sel.Sel.Name] || p.Annotated("stepsafe", call) {
				return true
			}
			p.Reportf(call.Pos(), "%s.%s called inside %s.Step: barrier-only tree maintenance — trees are shared read-only while workers step, so patching or rebuilding belongs in the engine's sequential recovery phase (annotate //aspen:stepsafe only with an audit trail)", path, sel.Sel.Name, recvTypeName(p, fd))
			return true
		}
		if s.Kind() != types.MethodVal {
			return true
		}
		for pkgPath, typeSet := range stepForbidden {
			typeName, fromPkg := typeFromPkg(s.Recv(), pkgPath)
			if !fromPkg {
				continue
			}
			methods, forbiddenType := typeSet[typeName]
			if !forbiddenType || (methods != nil && !methods[sel.Sel.Name]) {
				continue
			}
			if p.Annotated("stepsafe", call) {
				continue
			}
			p.Reportf(call.Pos(), "%s.%s.%s called inside %s.Step: sequential-only per the Stepper concurrency contract — shared-state mutation belongs in Start or the engine's sequential recovery/adaptivity phases (annotate //aspen:stepsafe only with an audit trail)", pkgPath, typeName, sel.Sel.Name, recvTypeName(p, fd))
		}
		return true
	})
}

// recvTypeName names the receiver type of a method declaration for
// diagnostics ("hashedStepper" from func (h *hashedStepper) Step).
func recvTypeName(p *Pass, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

package analysis

import (
	"go/ast"
)

// DetRand enforces the determinism-of-randomness invariant: inside the
// deterministic package set, every random draw goes through internal/rng
// (splittable, seeded at plan construction) and nothing reads the wall
// clock. A time.Now in a join stepper or a math/rand draw in the fault
// planner silently breaks seed-reproducibility and the byte-identity
// checksums pinned in BENCH_engine.json.
//
// Escape hatch: //aspen:wallclock on the line (or the enclosing function's
// doc comment) permits time.Now/time.Since on audited observability
// timing paths — readings that flow only into metrics and traces, never
// into execution (the obsfeedback analyzer guards the other direction).
// There is deliberately no escape hatch for math/rand: deterministic code
// has internal/rng.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads and math/rand in deterministic packages (all randomness through internal/rng)",
	Run:  runDetRand,
}

// wallclockFuncs are the time-package functions that read the clock.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDetRand(p *Pass) error {
	if !p.Deterministic() {
		return nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			switch pkgPathOf(obj) {
			case "time":
				if wallclockFuncs[obj.Name()] && !p.Annotated("wallclock", sel) {
					p.Reportf(sel.Pos(), "time.%s in deterministic package %s: wall-clock reads break seed-reproducibility (annotate //aspen:wallclock only for audited observability timing)", obj.Name(), p.Pkg.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "math/rand.%s in deterministic package %s: all randomness must be drawn through internal/rng", obj.Name(), p.Pkg.Name)
			}
			return true
		})
	}
	return nil
}

package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllocFreeFixtureClean runs the gate over the allocfree fixture:
// Accum allocates nothing, Push's one growth allocation carries the
// //aspen:alloc waiver, Fresh is unannotated — zero findings.
func TestAllocFreeFixtureClean(t *testing.T) {
	diags, err := CheckAllocFree(".", "./testdata/src/allocfree")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// writeScratchModule lays out a one-package throwaway module and returns
// its directory.
func writeScratchModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestAllocFreeCatchesInjectedAllocation is the acceptance drill for the
// gate: inject a deliberate make([]byte, n) into an //aspen:allocfree
// function and the gate must fail with a finding naming the function and
// the escaping allocation.
func TestAllocFreeCatchesInjectedAllocation(t *testing.T) {
	dir := writeScratchModule(t, `// Package p is an escape-gate scratch fixture.
package p

var sink []byte

// Hot is pinned allocation-free, then betrayed below.
//
//aspen:allocfree
func Hot(n int) {
	sink = make([]byte, n)
}
`)
	diags, err := CheckAllocFree(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allocfree" {
		t.Errorf("analyzer = %q, want allocfree", d.Analyzer)
	}
	if !strings.Contains(d.Message, "Hot is //aspen:allocfree but") {
		t.Errorf("message does not name the annotated function: %q", d.Message)
	}
	if !strings.Contains(d.Message, "escapes to heap") {
		t.Errorf("message does not carry the escape diagnostic: %q", d.Message)
	}
	if filepath.Base(d.Position.Filename) != "p.go" || d.Position.Line == 0 {
		t.Errorf("finding not resolved to a source position: %s", d.Position)
	}
}

// TestAllocFreeWaiver pins the //aspen:alloc per-line waiver: the same
// injected allocation passes once audited.
func TestAllocFreeWaiver(t *testing.T) {
	dir := writeScratchModule(t, `// Package p is an escape-gate scratch fixture.
package p

var sink []byte

// Hot carries one audited allocation.
//
//aspen:allocfree
func Hot(n int) {
	sink = make([]byte, n) //aspen:alloc audited in the waiver test
}
`)
	diags, err := CheckAllocFree(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("waived allocation still reported: %s", d)
	}
}

// TestAllocFreeReceiverNaming pins that method findings name the
// receiver type (Network.Transfer style), not just the method.
func TestAllocFreeReceiverNaming(t *testing.T) {
	dir := writeScratchModule(t, `// Package p is an escape-gate scratch fixture.
package p

// T is a receiver for the naming check.
type T struct{ sink []int }

// Hot leaks through its receiver.
//
//aspen:allocfree
func (t *T) Hot(n int) {
	t.sink = make([]int, n)
}
`)
	diags, err := CheckAllocFree(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "T.Hot is //aspen:allocfree but") {
		t.Fatalf("got %v, want one finding naming T.Hot", diags)
	}
}

// TestAllocFreeRepoClean pins the repo's own annotated hot paths —
// sim.Transfer, the join Step methods, engine.stepSequential, the window
// arrival path — at zero steady-state heap allocations, as a test
// mirroring the CI gate.
func TestAllocFreeRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the repo with -gcflags=-m")
	}
	diags, err := CheckAllocFree(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("annotated hot path allocates: %s", d)
	}
}

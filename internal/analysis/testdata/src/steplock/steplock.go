// Package join is a golden-test fixture for the steplock analyzer: a
// stepper whose Step method calls the sequential-only APIs the Stepper
// concurrency contract confines to Start and the engine's sequential
// phases, next to the reads that ARE safe, a closure (the check walks
// into function literals), the //aspen:stepsafe escape hatch, and a
// Start method where the same calls are legal.
package join

import (
	"repro/internal/dht"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// badStepper violates the contract from inside Step.
type badStepper struct {
	rep  *routing.Repairer
	ring *dht.Ring
	live *topology.Liveness
	pc   *topology.ParentCache
	src  *rng.Source
}

// Start may mutate shared state: it runs sequentially before stepping.
func (b *badStepper) Start() {
	b.rep.Reset()
	b.ring.ObserveFailures(b.live)
	b.pc.Invalidate()
}

// Step runs on parallel workers; every shared mutation below is a race.
func (b *badStepper) Step(cycle int) {
	b.rep.Reset()                   // want `routing.Repairer.Reset called inside badStepper.Step`
	b.ring.Route(0, 1)              // want `dht.Ring.Route called inside badStepper.Step`
	b.live.Fail(topology.NodeID(0)) // want `topology.Liveness.Fail called inside badStepper.Step`
	b.pc.Invalidate()               // want `topology.ParentCache.Invalidate called inside badStepper.Step`
	_ = b.src.Uint64()              // want `rng.Source.Uint64 called inside badStepper.Step`

	// Shared reads are fine: the contract forbids mutation, not lookup.
	_ = b.live.Alive(topology.NodeID(cycle))
	_ = b.ring.HomeNode(int32(cycle))

	// The check walks into closures declared inside Step.
	defer func() {
		b.live.Revive(topology.NodeID(0)) // want `topology.Liveness.Revive called inside badStepper.Step`
	}()

	// Package-level tree maintenance is barrier-only too.
	routing.PatchTreeLive(nil, nil, nil, nil, nil) // want `routing.PatchTreeLive called inside badStepper.Step`
	routing.RebuildTreeLive(nil, nil, 0, nil, nil) // want `routing.RebuildTreeLive called inside badStepper.Step`
	routing.BuildTree(nil, 0, nil)                 // no-liveness build is not in the forbidden set
	routing.RebuildTreeLive(nil, nil, 0, nil, nil) //aspen:stepsafe fixture-only audit trail

	// Audited exception, recorded with the hatch.
	b.ring.ObserveFailures(b.live) //aspen:stepsafe fixture-only audit trail
}

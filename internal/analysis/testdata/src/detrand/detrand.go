// Package detrand is a golden-test fixture for the detrand analyzer:
// wall-clock reads and math/rand draws in a package opted into the
// deterministic set, plus the //aspen:wallclock escape hatch in both of
// its placements (same line, enclosing doc comment).
//
//aspen:deterministic
package detrand

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice, unannotated: both flagged.
func Elapsed() time.Duration {
	start := time.Now()      // want "time.Now in deterministic package detrand"
	return time.Since(start) // want "time.Since in deterministic package detrand"
}

// Deadline uses the third clock reader.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in deterministic package detrand"
}

// Stamp is an audited observability timing path: the doc-comment hatch
// covers every clock read in the body.
//
//aspen:wallclock
func Stamp() time.Time {
	return time.Now()
}

// InlineHatch demonstrates the same-line escape hatch.
func InlineHatch() time.Time {
	return time.Now() //aspen:wallclock audited trace timestamp
}

// Draw uses math/rand, which has no escape hatch: deterministic code
// draws through internal/rng.
func Draw() int {
	return rand.Intn(10) // want `math/rand.Intn in deterministic package detrand`
}

// Epoch is allowed: time.Unix converts, it does not read the clock.
func Epoch() time.Time {
	return time.Unix(0, 0)
}

// Package maporder is a golden-test fixture for the maporder analyzer:
// range-over-map loops whose bodies the checker proves order-invariant
// (commutative integer accumulation, distinct-key writes, deletes),
// loops it must flag (element order, float rounding), and the
// //aspen:orderinvariant escape hatch.
//
//aspen:deterministic
package maporder

import "sort"

// SumCounts is auto-proved: integer += commutes over any iteration order.
func SumCounts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MarkAll is auto-proved: each iteration writes a distinct key's slot.
func MarkAll(m map[string]int, seen map[string]bool) {
	for k := range m {
		seen[k] = true
	}
}

// Drain is auto-proved: each iteration deletes its own key.
func Drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Keys appends in randomized order but sorts before returning; the
// checker cannot see the post-loop sort, so the site carries the hatch.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//aspen:orderinvariant keys collected then sorted before use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Invert writes keyed by the VALUE, so colliding values land on the
// same slot and the last iteration wins: order reaches output.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // want "range over map in deterministic package maporder"
		out[v] = k
	}
	return out
}

// SumWeights accumulates floats: rounding makes += order-dependent.
func SumWeights(m map[string]float64) float64 {
	var total float64
	for _, w := range m { // want "range over map in deterministic package maporder"
		total += w
	}
	return total
}

// FirstKey branches on a comparison: a min-reduction tie-break the
// checker rightly refuses to prove.
func FirstKey(m map[int]string) int {
	best := -1
	for k := range m { // want "range over map in deterministic package maporder"
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// Package obsfeedback is a golden-test fixture for the obsfeedback
// analyzer: reads of observed values (getter methods and struct field
// access) inside a package opted into the deterministic set, next to the
// exempt shapes — handle constructors, emitters, the Enabled predicate —
// and the //aspen:obsread escape hatch.
//
//aspen:deterministic
package obsfeedback

import "repro/internal/obs"

// BranchOnMetric is the invariant violation in its purest form: a
// control-flow decision fed by an observed counter.
func BranchOnMetric(r *obs.Registry) bool {
	c := r.Counter("drops") // constructor: result is an obs handle, exempt
	c.Inc()                 // emitter: no results, exempt
	return c.Value() > 0    // want "Counter.Value reads a value out of internal/obs"
}

// FieldLeak bypasses the getters by reading an exported snapshot field.
func FieldLeak(r *obs.Registry) int {
	snap := r.Snapshot()      // result is an obs value type, exempt as a call
	return len(snap.Counters) // want "Snapshot.Counters field read on an internal/obs value"
}

// LookupLeak reads a named metric back out of a snapshot.
func LookupLeak(snap obs.Snapshot) int64 {
	v, _ := snap.Value("drops") // want "Snapshot.Value reads a value out of internal/obs"
	return v
}

// GateOnEnabled is exempt: Enabled is a configuration predicate, not an
// observed value — instrumented code may gate emission on it.
func GateOnEnabled(r *obs.Registry) bool {
	return r.Enabled()
}

// Export is an audited export surface: the observed value flows out to
// the caller, never back into execution.
//
//aspen:obsread
func Export(g obs.Gauge) int64 {
	return g.Value()
}

// Package allocfree is the fixture for the //aspen:allocfree escape
// gate: an annotated function with zero heap allocations, an annotated
// function whose one cold-path allocation carries the //aspen:alloc
// waiver, and an unannotated function free to allocate. The gate's tests
// run CheckAllocFree over this package (clean) and over a temp-module
// copy with a deliberate make([]byte, n) injected (one finding).
package allocfree

// Accum folds src into dst in place.
//
//aspen:allocfree
func Accum(dst, src []int64) {
	for i, v := range src {
		dst[i%len(dst)] += v
	}
}

// Push appends one value, growing through a single audited cold-path
// allocation when capacity runs out.
//
//aspen:allocfree
func Push(dst []int64, v int64) []int64 {
	if len(dst) == cap(dst) {
		grown := make([]int64, len(dst), 2*cap(dst)+1) //aspen:alloc audited cold-path growth
		copy(grown, dst)
		dst = grown
	}
	return append(dst, v)
}

// Fresh is unannotated: it may allocate freely.
func Fresh(n int) []int64 {
	return make([]int64, n)
}

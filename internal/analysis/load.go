package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package: parsed syntax plus type
// information, positioned in a FileSet shared across the whole Load.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs the go tool in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return pkgs, nil
}

// Load resolves the patterns with `go list` run in dir, then parses and
// typechecks every matched package from source in dependency order. The
// type information for packages outside the match set (the standard
// library, and unmatched module packages) comes from the compiler's
// export data (`go list -export`), so the loader needs nothing beyond
// the standard library and the go tool itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listPkg
	byPath := map[string]*listPkg{}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	// Dependency order among the targets: postorder DFS over the Imports
	// graph restricted to the target set, so a package is always checked
	// after every target it imports (go list guarantees acyclicity).
	targetSet := map[string]bool{}
	for _, p := range targets {
		targetSet[p.ImportPath] = true
	}
	var order []*listPkg
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if targetSet[imp] {
				visit(byPath[imp])
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, p := range targets {
		visit(p)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	imp := &loadImporter{
		checked: checked,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			exp, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(exp)
		}),
	}

	var out []*Package
	for _, p := range order {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		checked[p.ImportPath] = tpkg
		out = append(out, &Package{
			PkgPath: p.ImportPath,
			Name:    p.Name,
			Dir:     p.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// loadImporter serves already-source-checked target packages from the
// cache and everything else from compiler export data.
type loadImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (li *loadImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := li.checked[path]; ok {
		return p, nil
	}
	return li.gc.Import(path)
}

package summary

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

// --- Bloom ---

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(vals []int32) bool {
		b := DefaultBloom()
		for _, v := range vals {
			b.AddValue(v)
		}
		for _, v := range vals {
			if !b.MayContain(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := DefaultBloom()
	src := rng.New(1)
	for i := 0; i < 20; i++ { // ~ per-subtree cardinality at 100 nodes
		b.AddValue(int32(src.Intn(1 << 16)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		v := int32(src.Intn(1<<16)) + (1 << 20) // disjoint from inserted domain
		if b.MayContain(v) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.15 {
		t.Fatalf("false positive rate %.3f too high for 20 inserts in 32 bytes", rate)
	}
}

func TestBloomMergeIsUnion(t *testing.T) {
	a, b := DefaultBloom(), DefaultBloom()
	a.AddValue(1)
	a.AddValue(2)
	b.AddValue(3)
	a.Merge(b)
	for _, v := range []int32{1, 2, 3} {
		if !a.MayContain(v) {
			t.Fatalf("merged bloom lost value %d", v)
		}
	}
}

func TestBloomMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched blooms did not panic")
		}
	}()
	DefaultBloom().Merge(NewBloom(16, 3))
}

func TestBloomEmpty(t *testing.T) {
	b := DefaultBloom()
	hits := 0
	for v := int32(0); v < 1000; v++ {
		if b.MayContain(v) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty bloom claimed %d values", hits)
	}
}

func TestNewBloomValidates(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 3}, {8, 0}, {-1, 1}} {
		func() {
			defer func() { recover() }()
			NewBloom(c.n, c.k)
			t.Fatalf("NewBloom(%d,%d) did not panic", c.n, c.k)
		}()
	}
}

// --- Interval ---

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval()
	if iv.MayContain(0) {
		t.Fatal("empty interval contains 0")
	}
	if _, _, ok := iv.Bounds(); ok {
		t.Fatal("empty interval has bounds")
	}
	iv.AddValue(5)
	iv.AddValue(-3)
	min, max, ok := iv.Bounds()
	if !ok || min != -3 || max != 5 {
		t.Fatalf("Bounds = (%d,%d,%v)", min, max, ok)
	}
	if !iv.MayContain(0) || !iv.MayContain(-3) || !iv.MayContain(5) {
		t.Fatal("interval misses covered values")
	}
	if iv.MayContain(6) || iv.MayContain(-4) {
		t.Fatal("interval claims uncovered values")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	iv := NewInterval()
	if iv.Overlaps(0, 10) {
		t.Fatal("empty interval overlaps")
	}
	iv.AddValue(5)
	iv.AddValue(8)
	cases := []struct {
		lo, hi int32
		want   bool
	}{
		{0, 4, false}, {0, 5, true}, {6, 7, true}, {8, 20, true}, {9, 20, false},
	}
	for _, c := range cases {
		if got := iv.Overlaps(c.lo, c.hi); got != c.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestIntervalNoFalseNegativesQuick(t *testing.T) {
	f := func(vals []int32, probe int32) bool {
		iv := NewInterval()
		for _, v := range vals {
			iv.AddValue(v)
		}
		for _, v := range vals {
			if !iv.MayContain(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalMerge(t *testing.T) {
	a, b := NewInterval(), NewInterval()
	a.AddValue(10)
	b.AddValue(-5)
	b.AddValue(3)
	a.Merge(b)
	min, max, _ := a.Bounds()
	if min != -5 || max != 10 {
		t.Fatalf("merged bounds (%d,%d)", min, max)
	}
	// Merging an empty interval is a no-op.
	a.Merge(NewInterval())
	if min2, max2, _ := a.Bounds(); min2 != -5 || max2 != 10 {
		t.Fatal("merging empty interval changed bounds")
	}
}

// --- Histogram ---

func TestHistogramNoFalseNegatives(t *testing.T) {
	f := func(vals []int32) bool {
		h := NewHistogram(-1000, 1000, 16)
		for _, v := range vals {
			h.AddValue(v)
		}
		for _, v := range vals {
			if !h.MayContain(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSelectivity(t *testing.T) {
	h := NewHistogram(0, 159, 16)
	h.AddValue(5) // bucket 0
	if h.MayContain(50) {
		t.Fatal("histogram claims value in empty bucket")
	}
	if !h.MayContain(9) { // same bucket as 5
		t.Fatal("histogram misses same-bucket value")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 99, 10)
	b := NewHistogram(0, 99, 10)
	a.AddValue(5)
	b.AddValue(95)
	a.Merge(b)
	if !a.MayContain(5) || !a.MayContain(95) {
		t.Fatal("merge lost buckets")
	}
}

func TestHistogramMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched merge")
		}
	}()
	NewHistogram(0, 99, 10).Merge(NewHistogram(0, 99, 20))
}

// --- Region ---

func TestRegionNoFalseNegatives(t *testing.T) {
	src := rng.New(42)
	r := NewRegion()
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64() * 256, Y: src.Float64() * 256}
		r.AddPoint(pts[i])
	}
	for _, p := range pts {
		if !r.MayContainWithin(p, 0.001) {
			t.Fatalf("region lost point %v", p)
		}
		if !r.MayIntersect(geom.RectFromPoint(p).Expand(0.001)) {
			t.Fatalf("region MBR pruning lost point %v", p)
		}
	}
}

func TestRegionPrunes(t *testing.T) {
	r := NewRegion()
	r.AddPoint(geom.Point{X: 10, Y: 10})
	r.AddPoint(geom.Point{X: 12, Y: 11})
	if r.MayContainWithin(geom.Point{X: 200, Y: 200}, 5) {
		t.Fatal("region failed to prune a far query")
	}
	if r.MayIntersect(geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 110, Y: 110}}) {
		t.Fatal("region failed to prune a disjoint rect")
	}
}

func TestRegionEmpty(t *testing.T) {
	r := NewRegion()
	if r.MayContainWithin(geom.Point{}, 1e9) {
		t.Fatal("empty region claims containment")
	}
	if _, ok := r.Bounds(); ok {
		t.Fatal("empty region has bounds")
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestRegionMerge(t *testing.T) {
	a, b := NewRegion(), NewRegion()
	a.AddPoint(geom.Point{X: 1, Y: 1})
	b.AddPoint(geom.Point{X: 100, Y: 100})
	a.Merge(b)
	if !a.MayContainWithin(geom.Point{X: 100, Y: 100}, 1) {
		t.Fatal("merge lost the other region")
	}
	bounds, ok := a.Bounds()
	if !ok || !bounds.Contains(geom.Point{X: 100, Y: 100}) || !bounds.Contains(geom.Point{X: 1, Y: 1}) {
		t.Fatal("merged bounds wrong")
	}
}

func TestRegionManyInsertsStayConsistent(t *testing.T) {
	// Stress the overflow/split path well past the fanout.
	src := rng.New(7)
	r := NewRegion()
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		p := geom.Point{X: src.Float64() * 256, Y: src.Float64() * 256}
		pts = append(pts, p)
		r.AddPoint(p)
	}
	for _, p := range pts {
		if !r.MayContainWithin(p, 0.01) {
			t.Fatalf("lost point %v after splits", p)
		}
	}
}

func TestSummarySizes(t *testing.T) {
	if DefaultBloom().SizeBytes() != 32 {
		t.Fatal("bloom size")
	}
	if NewInterval().SizeBytes() != 4 {
		t.Fatal("interval size")
	}
	if NewHistogram(0, 15, 16).SizeBytes() != 2 {
		t.Fatal("histogram size")
	}
}

func TestSummaryInterfaceCompliance(t *testing.T) {
	for _, s := range []Summary{DefaultBloom(), NewInterval(), NewHistogram(0, 100, 8)} {
		s.AddValue(42)
		if !s.MayContain(42) {
			t.Fatalf("%T lost a value through the interface", s)
		}
	}
}

// Package summary implements the attribute-summary structures the routing
// substrate indexes in its per-tree routing tables (section 2.2 and
// Appendix C): Bloom filters over discrete static attributes, 1-D integer
// intervals (as in TinyDB's semantic routing trees), equi-width histograms,
// and 2-D rectangles backed by a small R-tree (for the pos attribute).
//
// All summaries answer one question during path search: "might the subtree
// below this routing-table entry contain a node whose attribute satisfies
// the predicate?" False positives cost extra exploration traffic; false
// negatives are forbidden (they would silently drop join pairs), and the
// tests enforce that invariant property-style.
package summary

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Summary is the interface routing tables store per indexed attribute.
// Implementations are value-mergeable: a parent's summary is the Merge of
// its children's plus its own.
type Summary interface {
	// AddValue folds one node's attribute value into the summary.
	AddValue(v int32)
	// MayContain reports whether the summarized set might contain v.
	// It must never return false when v was added (no false negatives).
	MayContain(v int32) bool
	// Merge folds other (same concrete type) into the receiver.
	Merge(other Summary)
	// SizeBytes is the wire size when shipped up the tree during
	// construction; charged as control traffic.
	SizeBytes() int
}

// --- Bloom filter ---------------------------------------------------------

// Bloom is a fixed-size Bloom filter over int32 attribute values. The paper
// builds Bloom summaries for x, y, cid, rid and id (section 4.1). Motes
// have tens of KB of RAM, so filters are small: the default is 32 bytes
// with 3 hash functions, which keeps the false-positive rate ~5% for the
// per-subtree cardinalities seen at 100 nodes.
type Bloom struct {
	bits   []byte
	hashes int
}

// NewBloom returns a Bloom filter of nBytes with k hash functions.
func NewBloom(nBytes, k int) *Bloom {
	if nBytes <= 0 || k <= 0 {
		panic("summary: bloom size and hash count must be positive")
	}
	return &Bloom{bits: make([]byte, nBytes), hashes: k}
}

// DefaultBloom returns the 32-byte, 3-hash filter used by the substrate.
func DefaultBloom() *Bloom { return NewBloom(32, 3) }

// hash derives the i-th bit index for v (double hashing over splitmix-style
// mixes, standard Kirsch-Mitzenmacher construction).
func (b *Bloom) hash(v int32, i int) int {
	z := uint64(uint32(v)) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	h1 := z ^ (z >> 31)
	z2 := h1 * 0x94D049BB133111EB
	h2 := z2 ^ (z2 >> 29)
	return int((h1 + uint64(i)*h2) % uint64(len(b.bits)*8))
}

// AddValue implements Summary.
func (b *Bloom) AddValue(v int32) {
	for i := 0; i < b.hashes; i++ {
		idx := b.hash(v, i)
		b.bits[idx/8] |= 1 << (idx % 8)
	}
}

// MayContain implements Summary.
func (b *Bloom) MayContain(v int32) bool {
	for i := 0; i < b.hashes; i++ {
		idx := b.hash(v, i)
		if b.bits[idx/8]&(1<<(idx%8)) == 0 {
			return false
		}
	}
	return true
}

// Merge implements Summary; other must be a *Bloom of identical geometry.
func (b *Bloom) Merge(other Summary) {
	o, ok := other.(*Bloom)
	if !ok || len(o.bits) != len(b.bits) || o.hashes != b.hashes {
		panic(fmt.Sprintf("summary: cannot merge %T into *Bloom with different geometry", other))
	}
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
}

// SizeBytes implements Summary.
func (b *Bloom) SizeBytes() int { return len(b.bits) }

// --- Interval -------------------------------------------------------------

// Interval tracks [min, max] of the values added — the TinyDB semantic
// routing tree structure for ordered attributes.
type Interval struct {
	min, max int32
	empty    bool
}

// NewInterval returns an empty interval.
func NewInterval() *Interval { return &Interval{empty: true} }

// AddValue implements Summary.
func (iv *Interval) AddValue(v int32) {
	if iv.empty {
		iv.min, iv.max, iv.empty = v, v, false
		return
	}
	if v < iv.min {
		iv.min = v
	}
	if v > iv.max {
		iv.max = v
	}
}

// MayContain implements Summary.
func (iv *Interval) MayContain(v int32) bool {
	return !iv.empty && v >= iv.min && v <= iv.max
}

// Overlaps reports whether the summarized range intersects [lo, hi] —
// the primitive for range-predicate routing.
func (iv *Interval) Overlaps(lo, hi int32) bool {
	return !iv.empty && lo <= iv.max && iv.min <= hi
}

// Bounds returns the tracked range; ok is false for an empty interval.
func (iv *Interval) Bounds() (min, max int32, ok bool) {
	return iv.min, iv.max, !iv.empty
}

// Merge implements Summary.
func (iv *Interval) Merge(other Summary) {
	o, ok := other.(*Interval)
	if !ok {
		panic(fmt.Sprintf("summary: cannot merge %T into *Interval", other))
	}
	if o.empty {
		return
	}
	iv.AddValue(o.min)
	iv.AddValue(o.max)
}

// SizeBytes implements Summary: two 16-bit bounds.
func (iv *Interval) SizeBytes() int { return 4 }

// --- Histogram ------------------------------------------------------------

// Histogram is an equi-width bucket-occupancy bitmap over a fixed domain,
// a denser alternative to Bloom filters for low-cardinality attributes.
type Histogram struct {
	lo, hi  int32
	buckets []bool
}

// NewHistogram returns a histogram over [lo, hi] with n buckets.
func NewHistogram(lo, hi int32, n int) *Histogram {
	if n <= 0 || hi < lo {
		panic("summary: invalid histogram domain")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]bool, n)}
}

func (h *Histogram) bucket(v int32) int {
	if v < h.lo {
		return 0
	}
	if v > h.hi {
		return len(h.buckets) - 1
	}
	span := int64(h.hi) - int64(h.lo) + 1
	return int(int64(len(h.buckets)) * (int64(v) - int64(h.lo)) / span)
}

// AddValue implements Summary.
func (h *Histogram) AddValue(v int32) { h.buckets[h.bucket(v)] = true }

// MayContain implements Summary. Values outside the domain clamp to the
// edge buckets, preserving the no-false-negative contract.
func (h *Histogram) MayContain(v int32) bool { return h.buckets[h.bucket(v)] }

// Merge implements Summary.
func (h *Histogram) Merge(other Summary) {
	o, ok := other.(*Histogram)
	if !ok || len(o.buckets) != len(h.buckets) || o.lo != h.lo || o.hi != h.hi {
		panic(fmt.Sprintf("summary: cannot merge %T into *Histogram with different geometry", other))
	}
	for i, b := range o.buckets {
		if b {
			h.buckets[i] = true
		}
	}
}

// SizeBytes implements Summary: one bit per bucket, rounded up.
func (h *Histogram) SizeBytes() int { return (len(h.buckets) + 7) / 8 }

// --- Region (R-tree) ------------------------------------------------------

// Region summarizes a set of positions with a small R-tree so region
// predicates (Query 3's Dst < 5m) can prune subtrees. It is not a Summary
// over int32 values; routing tables hold it alongside scalar summaries.
type Region struct {
	root *rnode
}

const rtreeFanout = 4

type rnode struct {
	mbr      geom.Rect
	children []*rnode // nil for leaves
	leaf     bool
}

// NewRegion returns an empty region summary.
func NewRegion() *Region { return &Region{} }

// AddPoint inserts one node position.
func (r *Region) AddPoint(p geom.Point) { r.insert(geom.RectFromPoint(p)) }

// AddRect inserts a bounding rectangle (merging a child subtree's region).
func (r *Region) AddRect(rect geom.Rect) { r.insert(rect) }

func (r *Region) insert(rect geom.Rect) {
	entry := &rnode{mbr: rect, leaf: true}
	if r.root == nil {
		r.root = &rnode{mbr: rect, children: []*rnode{entry}}
		return
	}
	r.root.mbr = r.root.mbr.Union(rect)
	n := r.root
	for {
		if len(n.children) == 0 || n.children[0].leaf {
			n.children = append(n.children, entry)
			if len(n.children) > rtreeFanout {
				r.splitOverflow(n)
			}
			return
		}
		best := n.children[0]
		for _, c := range n.children[1:] {
			if c.mbr.Enlargement(rect) < best.mbr.Enlargement(rect) {
				best = c
			}
		}
		best.mbr = best.mbr.Union(rect)
		n = best
	}
}

// splitOverflow performs a simple quadratic-ish split: the node keeps the
// fanout/2 entries closest to its first entry; the rest move to a sibling.
// If the node is the root, grow a new root. For small sensor networks this
// cheap heuristic suffices; search correctness never depends on split
// quality, only pruning efficiency does.
func (r *Region) splitOverflow(n *rnode) {
	half := len(n.children) / 2
	// Copy the moved entries: re-slicing would alias the parent's backing
	// array, so a later append to n.children would clobber the sibling.
	moved := make([]*rnode, len(n.children)-half)
	copy(moved, n.children[half:])
	sibling := &rnode{children: moved}
	n.children = n.children[:half]
	n.mbr = n.children[0].mbr
	for _, c := range n.children[1:] {
		n.mbr = n.mbr.Union(c.mbr)
	}
	sibling.mbr = sibling.children[0].mbr
	for _, c := range sibling.children[1:] {
		sibling.mbr = sibling.mbr.Union(c.mbr)
	}
	if n == r.root {
		r.root = &rnode{mbr: n.mbr.Union(sibling.mbr), children: []*rnode{n, sibling}}
		return
	}
	// Non-root overflow: attach sibling to the root (shallow trees are
	// fine at mote scale).
	r.root.children = append(r.root.children, sibling)
	r.root.mbr = r.root.mbr.Union(sibling.mbr)
}

// MayIntersect reports whether any summarized position might lie within
// rect. No false negatives: every added point inside rect forces true.
func (r *Region) MayIntersect(rect geom.Rect) bool {
	if r.root == nil {
		return false
	}
	return intersects(r.root, rect)
}

func intersects(n *rnode, rect geom.Rect) bool {
	if !n.mbr.Intersects(rect) {
		return false
	}
	if len(n.children) == 0 {
		return true
	}
	for _, c := range n.children {
		if c.leaf {
			if c.mbr.Intersects(rect) {
				return true
			}
		} else if intersects(c, rect) {
			return true
		}
	}
	return false
}

// MayContainWithin reports whether any summarized position might be within
// distance d of p (the Query 3 primary predicate).
func (r *Region) MayContainWithin(p geom.Point, d float64) bool {
	if r.root == nil {
		return false
	}
	return within(r.root, p, d)
}

func within(n *rnode, p geom.Point, d float64) bool {
	if n.mbr.MinDist(p) > d {
		return false
	}
	if len(n.children) == 0 {
		return true
	}
	for _, c := range n.children {
		if c.leaf {
			if c.mbr.MinDist(p) <= d {
				return true
			}
		} else if within(c, p, d) {
			return true
		}
	}
	return false
}

// Bounds returns the overall minimum bounding rectangle; ok is false when
// empty.
func (r *Region) Bounds() (geom.Rect, bool) {
	if r.root == nil {
		return geom.Rect{}, false
	}
	return r.root.mbr, true
}

// Merge folds another region in by inserting its MBR. This loses precision
// (as shipping a whole R-tree up a mote network would be too expensive —
// the paper ships summaries, not full structures).
func (r *Region) Merge(o *Region) {
	if b, ok := o.Bounds(); ok {
		r.AddRect(b)
	}
}

// SizeBytes is the wire size: 4 coordinates at 2 bytes, per rectangle up to
// the fanout (the substrate ships only the top level).
func (r *Region) SizeBytes() int {
	if r.root == nil {
		return 2
	}
	n := len(r.root.children)
	if n > rtreeFanout {
		n = rtreeFanout
	}
	return 8 * int(math.Max(1, float64(n)))
}

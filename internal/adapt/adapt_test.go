package adapt

import (
	"math"
	"testing"

	"repro/internal/costmodel"
)

func params(ss, st, sst float64, w int) costmodel.Params {
	return costmodel.Params{SigmaS: ss, SigmaT: st, SigmaST: sst, W: w}
}

func TestEstimatesFormula(t *testing.T) {
	e := New(params(0.5, 0.5, 0.1, 3))
	// 10 cycles: 5 s tuples, 10 t tuples, 9 results.
	for i := 0; i < 5; i++ {
		e.ObserveS()
	}
	for i := 0; i < 10; i++ {
		e.ObserveT()
	}
	e.ObserveResults(9)
	e.cycles = 10
	p, ok := e.Estimates()
	if !ok {
		t.Fatal("estimates unavailable")
	}
	if math.Abs(p.SigmaS-0.5) > 1e-12 || math.Abs(p.SigmaT-1.0) > 1e-12 {
		t.Fatalf("producer estimates (%v, %v)", p.SigmaS, p.SigmaT)
	}
	// sigma_st = 9 / (3 * 15) = 0.2
	if math.Abs(p.SigmaST-0.2) > 1e-12 {
		t.Fatalf("sigma_st = %v, want 0.2", p.SigmaST)
	}
}

func TestNoEstimateBeforeObservation(t *testing.T) {
	e := New(params(0.5, 0.5, 0.1, 3))
	if _, ok := e.Estimates(); ok {
		t.Fatal("estimates claimed before any cycle")
	}
}

func TestTriggerOnDivergence(t *testing.T) {
	e := New(params(1.0, 1.0, 0.2, 3))
	// Feed 10 cycles in which sigma_s is actually ~0.1: divergence > 33%.
	triggered := false
	for c := 0; c < DefaultInterval; c++ {
		if c == 0 {
			e.ObserveS()
		}
		for i := 0; i < 1; i++ {
			e.ObserveT()
		}
		if _, trig := e.EndCycle(c); trig {
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("estimator did not trigger on gross divergence")
	}
	// Applied must have adopted the learned value (~0.1), replacing 1.0.
	if e.Applied.SigmaS > 0.5 {
		t.Fatalf("Applied.SigmaS = %v not updated toward 0.1", e.Applied.SigmaS)
	}
}

func TestNoTriggerWhenAccurate(t *testing.T) {
	e := New(params(1.0, 1.0, 0.2, 1))
	for c := 0; c < 50; c++ {
		e.ObserveS()
		e.ObserveT()
		// 0.2 of tuple arrivals produce results: Nst = 0.2*W*(Ns+Nt).
		if c%5 == 0 {
			e.ObserveResults(2)
		}
		if _, trig := e.EndCycle(c); trig {
			t.Fatalf("spurious trigger at cycle %d", c)
		}
	}
}

func TestCounterReset(t *testing.T) {
	e := New(params(1, 1, 0.2, 1))
	e.Reset = 5
	e.Interval = 100 // never estimate in this test
	for c := 0; c < 5; c++ {
		e.ObserveS()
		e.EndCycle(c)
	}
	if e.ns != 0 || e.cycles != 0 {
		t.Fatalf("counters not reset: ns=%d cycles=%d", e.ns, e.cycles)
	}
}

func TestTriggerOnlyOnIntervalBoundary(t *testing.T) {
	e := New(params(1, 1, 0.2, 1))
	e.Interval = 10
	// Gross divergence from cycle 0, but no trigger before cycle 10.
	for c := 0; c < 9; c++ {
		if _, trig := e.EndCycle(c); trig {
			t.Fatalf("triggered mid-interval at cycle %d", c)
		}
	}
	if _, trig := e.EndCycle(9); !trig {
		t.Fatal("no trigger at interval boundary despite divergence")
	}
}

func TestAdoptedParamsStopRetriggering(t *testing.T) {
	e := New(params(1, 1, 0.5, 1))
	// A stable workload with sigma_s = sigma_t = 1, sigma_st = 0.5.
	trigs := 0
	for c := 0; c < 200; c++ {
		e.ObserveS()
		e.ObserveT()
		e.ObserveResults(1) // 1/(1*2) = 0.5
		if _, trig := e.EndCycle(c); trig {
			trigs++
		}
	}
	if trigs > 1 {
		t.Fatalf("stable workload retriggered %d times", trigs)
	}
}

// TestEndCycleIdempotentPerCycle is the regression test for the PR-4
// BeginCycle contract: the stepper's own learning pass and the engine's
// adaptivity phase may both close the same cycle, and the estimation clock
// must advance exactly once.
func TestEndCycleIdempotentPerCycle(t *testing.T) {
	e := New(params(1, 1, 0.2, 1))
	e.Interval = 10
	// Close every cycle twice (stepper pass + engine pass). Divergence is
	// gross (no observations against applied sigma=1), so with a correctly
	// advancing clock the first trigger lands exactly when cycle 9 closes.
	for c := 0; c < 9; c++ {
		if _, trig := e.EndCycle(c); trig {
			t.Fatalf("triggered mid-interval at cycle %d", c)
		}
		if _, trig := e.EndCycle(c); trig {
			t.Fatalf("duplicate close of cycle %d advanced the clock", c)
		}
	}
	if got := e.cycles; got != 9 {
		t.Fatalf("clock advanced %d times for 9 distinct cycles", got)
	}
	if _, trig := e.EndCycle(9); !trig {
		t.Fatal("no trigger at interval boundary despite divergence")
	}
	// A stale close (earlier cycle number) must also be a no-op.
	if _, trig := e.EndCycle(3); trig {
		t.Fatal("stale cycle close triggered")
	}
	if got := e.cycles; got != 10 {
		t.Fatalf("stale close advanced the clock: cycles=%d", got)
	}
}

// TestTriggerBoundary pins the strict-inequality semantics of the 33%
// trigger at the boundary. Applied sigma_s is 1.0 and the estimator observes
// an s tuple in the first ns of 1000 cycles, so the estimate is ns/1000 and
// the divergence is (1000-ns)/1000 exactly. sigma_t is kept accurate (one t
// tuple per cycle) and sigma_st is 0 on both sides so only sigma_s decides.
func TestTriggerBoundary(t *testing.T) {
	cases := []struct {
		name string
		ns   int // s observations over the 1000-cycle interval
		want bool
	}{
		{"divergence 32.9% stays", 671, false},
		{"divergence 33.0% stays (strict >)", 670, false},
		{"divergence 33.1% triggers", 669, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(params(1.0, 1.0, 0, 1))
			e.Interval = 1000
			e.Reset = 1 << 30 // keep counters across the long interval
			triggered := false
			for c := 0; c < 1000; c++ {
				if c < tc.ns {
					e.ObserveS()
				}
				e.ObserveT()
				if _, trig := e.EndCycle(c); trig {
					triggered = true
				}
			}
			if triggered != tc.want {
				t.Fatalf("ns=%d: triggered=%v, want %v", tc.ns, triggered, tc.want)
			}
		})
	}
}

// TestTriggerRateEdges covers the degenerate rate edges around the trigger:
// a producer rate collapsing to zero, a zero applied rate seeing traffic (a
// burst from a silent producer), and zero on both sides.
func TestTriggerRateEdges(t *testing.T) {
	cases := []struct {
		name    string
		applied float64 // Applied.SigmaS
		observe bool    // one s tuple every cycle vs none
		want    bool
	}{
		{"rate collapses to zero", 0.8, false, true},
		{"burst on zero applied rate", 0, true, true},
		{"zero rate stays zero", 0, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(params(tc.applied, 1.0, 0, 1))
			triggered := false
			for c := 0; c < DefaultInterval; c++ {
				if tc.observe {
					e.ObserveS()
				}
				e.ObserveT()
				if _, trig := e.EndCycle(c); trig {
					triggered = true
				}
			}
			if triggered != tc.want {
				t.Fatalf("applied=%v observe=%v: triggered=%v, want %v",
					tc.applied, tc.observe, triggered, tc.want)
			}
		})
	}
}

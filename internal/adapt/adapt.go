// Package adapt implements the paper's adaptive re-optimization (section
// 6): a join node tracks, per producer pair, the number of tuples received
// from each producer and the number of join results produced, re-estimates
// the selectivities on a fixed interval, and signals when the estimates
// diverge from the values the current placement was optimized for by more
// than the trigger ratio (33% in the paper), prompting a join-node
// migration. Counters reset periodically so learning tracks a local time
// span rather than the whole history.
package adapt

import "repro/internal/costmodel"

// Defaults for the paper's adaptivity machinery.
const (
	// DefaultTrigger is the divergence ratio that triggers re-placement
	// ("estimates diverge by more than 33% from their previous values").
	DefaultTrigger = 0.33
	// DefaultInterval is the re-estimation period in sampling cycles
	// ("according to a pre-specified time interval").
	DefaultInterval = 10
	// DefaultReset is the counter reset period ("Ns, Nt, Nst and T are
	// periodically reset to 0 to allow learning within a local time
	// span").
	DefaultReset = 100
)

// Estimator learns one producer pair's selectivities at its join node.
type Estimator struct {
	// Applied are the parameter values the pair's current placement was
	// optimized with; a trigger updates them.
	Applied costmodel.Params
	// Trigger is the divergence ratio; Interval and Reset the periods.
	Trigger  float64
	Interval int
	Reset    int

	ns, nt, nst int
	cycles      int
	// haveEstimate delays triggering until at least one full interval has
	// been observed.
	sinceEstimate int
	// lastCycle is the highest cycle number EndCycle has accounted; repeat
	// calls for the same (or an earlier) cycle are no-ops, so a stepper-side
	// learning pass and an engine-level adaptivity phase can both close the
	// same cycle without double-advancing the estimation clock.
	lastCycle int
}

// New returns an estimator for a pair currently optimized with applied.
func New(applied costmodel.Params) *Estimator {
	return &Estimator{
		Applied:   applied,
		Trigger:   DefaultTrigger,
		Interval:  DefaultInterval,
		Reset:     DefaultReset,
		lastCycle: -1,
	}
}

// ObserveS records an arriving s tuple.
func (e *Estimator) ObserveS() { e.ns++ }

// ObserveT records an arriving t tuple.
func (e *Estimator) ObserveT() { e.nt++ }

// ObserveResults records n join results produced for the pair.
func (e *Estimator) ObserveResults(n int) { e.nst += n }

// Estimates returns the current selectivity estimates:
// sigma_st = Nst / (w*(Ns+Nt)) and sigma_p = Np / T (section 6). ok is
// false until at least one cycle has been observed.
func (e *Estimator) Estimates() (p costmodel.Params, ok bool) {
	if e.cycles == 0 {
		return e.Applied, false
	}
	p = e.Applied
	p.SigmaS = float64(e.ns) / float64(e.cycles)
	p.SigmaT = float64(e.nt) / float64(e.cycles)
	if tot := e.ns + e.nt; tot > 0 && e.Applied.W > 0 {
		p.SigmaST = float64(e.nst) / (float64(e.Applied.W) * float64(tot))
	}
	return p, true
}

// EndCycle closes the given cycle, advancing the estimation clock by one,
// and on estimation boundaries checks for divergence. When the estimates
// diverge beyond Trigger it returns the fresh parameters and triggered=true;
// the caller re-places the join node and the estimator adopts the new
// parameters as Applied. Counters reset on the Reset period.
//
// EndCycle is idempotent per cycle number: closing a cycle that has already
// been closed (or any earlier one) returns (Applied, false) without touching
// any counter. Cycle numbers follow the Stepper BeginCycle contract — they
// are per-query and monotonically non-decreasing, not globally unique — so
// an estimator shared between the stepper's own learning pass and the
// engine's adaptivity phase still advances exactly once per cycle.
func (e *Estimator) EndCycle(cycle int) (fresh costmodel.Params, triggered bool) {
	if cycle <= e.lastCycle {
		return e.Applied, false
	}
	e.lastCycle = cycle
	e.cycles++
	e.sinceEstimate++
	if e.sinceEstimate >= e.Interval {
		e.sinceEstimate = 0
		if p, ok := e.Estimates(); ok {
			if costmodel.Diverged(e.Applied.SigmaS, p.SigmaS, e.Trigger) ||
				costmodel.Diverged(e.Applied.SigmaT, p.SigmaT, e.Trigger) ||
				costmodel.Diverged(e.Applied.SigmaST, p.SigmaST, e.Trigger) {
				e.Applied = p
				triggered = true
				fresh = p
			}
		}
	}
	if e.cycles >= e.Reset {
		e.ns, e.nt, e.nst, e.cycles = 0, 0, 0, 0
	}
	if !triggered {
		fresh = e.Applied
	}
	return fresh, triggered
}

package faults

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Generate(topology.ModerateRandom, 100, 1)
}

// allLinks enumerates every undirected radio link of topo in canonical
// order.
func allLinks(topo *topology.Topology) [][2]topology.NodeID {
	var out [][2]topology.NodeID
	for id := 0; id < topo.N(); id++ {
		from := topology.NodeID(id)
		for _, nb := range topo.Neighbors(from) {
			if nb > from {
				out = append(out, [2]topology.NodeID{from, nb})
			}
		}
	}
	return out
}

// TestZeroConfigInjectsNothing: the zero Config is disabled and its plan
// returns the zero LinkState for every hop at every epoch — the contract
// that keeps a plan-free run byte-identical.
func TestZeroConfigInjectsNothing(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	topo := testTopo(t)
	p := NewPlan(topo, Config{Seed: 1})
	for e := 0; e < 5; e++ {
		p.BeginEpoch(e)
		if p.AnyCut() || p.PartitionActive() || p.DownLinks() != 0 {
			t.Fatalf("epoch %d: zero plan reports faults", e)
		}
		for _, l := range allLinks(topo) {
			if st := p.Link(l[0], l[1]); st != (sim.LinkState{}) {
				t.Fatalf("epoch %d: link %v-%v has non-zero state %+v", e, l[0], l[1], st)
			}
		}
	}
}

// TestPlanDeterministic: two plans from the same seed and topology agree
// on every link state at every epoch — the property worker-count
// invariance rests on.
func TestPlanDeterministic(t *testing.T) {
	topo := testTopo(t)
	cfg := Config{
		Seed: 7, LinkLoss: 0.1, LinkFailRate: 0.05, LinkReviveAfter: 2,
		DupProb: 0.02, DelayMax: 3,
		Partitions: []Partition{{From: 3, Until: 6, Kind: Bisect}},
	}
	a, b := NewPlan(topo, cfg), NewPlan(topo, cfg)
	links := allLinks(topo)
	for e := 0; e < 10; e++ {
		a.BeginEpoch(e)
		b.BeginEpoch(e)
		if a.DownLinks() != b.DownLinks() || a.AnyCut() != b.AnyCut() {
			t.Fatalf("epoch %d: plan summaries diverge: %d/%v vs %d/%v",
				e, a.DownLinks(), a.AnyCut(), b.DownLinks(), b.AnyCut())
		}
		for _, l := range links {
			sa, sb := a.Link(l[0], l[1]), b.Link(l[0], l[1])
			if sa != sb {
				t.Fatalf("epoch %d: link %v-%v diverges: %+v vs %+v", e, l[0], l[1], sa, sb)
			}
			// Link state is direction-symmetric: one undirected fault entry.
			if rev := a.Link(l[1], l[0]); rev != sa {
				t.Fatalf("epoch %d: link %v-%v asymmetric: %+v vs %+v", e, l[0], l[1], sa, rev)
			}
		}
	}
}

// TestLinkLossHeterogeneous: per-link loss boosts land in the documented
// [0.5, 1.5) x LinkLoss band and differ across links.
func TestLinkLossHeterogeneous(t *testing.T) {
	topo := testTopo(t)
	const mean = 0.1
	p := NewPlan(topo, Config{Seed: 3, LinkLoss: mean})
	p.BeginEpoch(0)
	seen := map[float64]bool{}
	for _, l := range allLinks(topo) {
		st := p.Link(l[0], l[1])
		if st.ExtraLoss < 0.5*mean || st.ExtraLoss >= 1.5*mean {
			t.Fatalf("link %v-%v loss %.4f outside [%.4f, %.4f)", l[0], l[1], st.ExtraLoss, 0.5*mean, 1.5*mean)
		}
		seen[st.ExtraLoss] = true
	}
	if len(seen) < 2 {
		t.Fatalf("loss boosts are not heterogeneous: %d distinct values", len(seen))
	}
}

// TestLinkFailureAndRevive: with LinkFailRate 1 every link fails at epoch
// 0 and, with LinkReviveAfter 2, every link is back up at epoch 2 (revive
// and re-fail never happen in the same epoch).
func TestLinkFailureAndRevive(t *testing.T) {
	topo := testTopo(t)
	p := NewPlan(topo, Config{Seed: 1, LinkFailRate: 1, LinkReviveAfter: 2})
	links := allLinks(topo)

	p.BeginEpoch(0)
	if p.DownLinks() != len(links) {
		t.Fatalf("epoch 0: %d links down, want all %d", p.DownLinks(), len(links))
	}
	for _, l := range links {
		if !p.Link(l[0], l[1]).Cut {
			t.Fatalf("epoch 0: link %v-%v not cut", l[0], l[1])
		}
	}
	p.BeginEpoch(1)
	if p.DownLinks() != len(links) {
		t.Fatalf("epoch 1: %d links down, want all %d", p.DownLinks(), len(links))
	}
	p.BeginEpoch(2)
	if p.DownLinks() != 0 || p.AnyCut() {
		t.Fatalf("epoch 2: %d links still down after revive window", p.DownLinks())
	}
	for _, l := range links {
		if p.Link(l[0], l[1]).Cut {
			t.Fatalf("epoch 2: link %v-%v still cut", l[0], l[1])
		}
	}
	// Permanent failures (LinkReviveAfter 0) never come back.
	perm := NewPlan(topo, Config{Seed: 1, LinkFailRate: 1})
	perm.BeginEpoch(0)
	for e := 1; e < 5; e++ {
		perm.BeginEpoch(e)
		if perm.DownLinks() != len(links) {
			t.Fatalf("epoch %d: permanent failure revived (%d down)", e, perm.DownLinks())
		}
	}
}

// TestBisectPartition: the scheduled window cuts exactly the links whose
// endpoints straddle the median-x split, for exactly [From, Until).
func TestBisectPartition(t *testing.T) {
	topo := testTopo(t)
	p := NewPlan(topo, Config{Seed: 1, Partitions: []Partition{{From: 2, Until: 4, Kind: Bisect}}})

	// Recompute the expected sides the way the plan documents them.
	n := topo.N()
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = topo.Pos(topology.NodeID(i)).X
	}
	sorted := append([]float64(nil), xs...)
	for i := range sorted { // insertion sort; n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := sorted[n/2]

	for e, want := range map[int]bool{0: false, 1: false, 2: true, 3: true, 4: false, 5: false} {
		p.BeginEpoch(e)
		if p.PartitionActive() != want {
			t.Fatalf("epoch %d: PartitionActive=%v, want %v", e, p.PartitionActive(), want)
		}
		cut := 0
		for _, l := range allLinks(topo) {
			straddles := (xs[l[0]] < median) != (xs[l[1]] < median)
			if got := p.Link(l[0], l[1]).Cut; got != (want && straddles) {
				t.Fatalf("epoch %d: link %v-%v cut=%v, want %v", e, l[0], l[1], got, want && straddles)
			}
			if want && straddles {
				cut++
			}
		}
		if want && cut == 0 {
			t.Fatal("bisect partition cut no links")
		}
	}
}

// TestRegionPartitionMatchesWorkloadRid: a Region partition isolates
// exactly the nodes the workload generator assigns that rid, so a
// partition directive and a rid predicate name the same node set.
func TestRegionPartitionMatchesWorkloadRid(t *testing.T) {
	topo := testTopo(t)
	nodes := workload.BuildNodes(topo, 1)
	const band = 3
	p := NewPlan(topo, Config{Seed: 1, Partitions: []Partition{{From: 0, Until: 1, Kind: Region, Region: band}}})
	p.BeginEpoch(0)
	cut := 0
	for _, l := range allLinks(topo) {
		inA, inB := nodes[l[0]].Rid == band, nodes[l[1]].Rid == band
		if got := p.Link(l[0], l[1]).Cut; got != (inA != inB) {
			t.Fatalf("link %v-%v (rid %d,%d): cut=%v, want %v",
				l[0], l[1], nodes[l[0]].Rid, nodes[l[1]].Rid, got, inA != inB)
		}
		if inA != inB {
			cut++
		}
	}
	if cut == 0 {
		t.Fatal("region partition cut no links")
	}
}

// TestLinkUsableMirrorsLink: the routing predicate is exactly !Cut.
func TestLinkUsableMirrorsLink(t *testing.T) {
	topo := testTopo(t)
	p := NewPlan(topo, Config{Seed: 5, LinkFailRate: 0.3})
	p.BeginEpoch(0)
	for _, l := range allLinks(topo) {
		if p.LinkUsable(l[0], l[1]) != !p.Link(l[0], l[1]).Cut {
			t.Fatalf("LinkUsable disagrees with Link for %v-%v", l[0], l[1])
		}
	}
}

// TestDelayAndDupPropagate: build-time delay draws stay within [0,
// DelayMax] and DupProb reaches every link verbatim.
func TestDelayAndDupPropagate(t *testing.T) {
	topo := testTopo(t)
	p := NewPlan(topo, Config{Seed: 2, DelayMax: 3, DupProb: 0.25})
	p.BeginEpoch(0)
	varied := false
	first := -1
	for _, l := range allLinks(topo) {
		st := p.Link(l[0], l[1])
		if st.DelaySlots < 0 || st.DelaySlots > 3 {
			t.Fatalf("link %v-%v delay %d outside [0, 3]", l[0], l[1], st.DelaySlots)
		}
		if st.DupProb != 0.25 {
			t.Fatalf("link %v-%v DupProb %v, want 0.25", l[0], l[1], st.DupProb)
		}
		if first == -1 {
			first = st.DelaySlots
		} else if st.DelaySlots != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("every link drew the same delay")
	}
}

// Package faults is the deterministic fault-injection layer for the
// simulator: a seeded plan of per-link loss boosts, transient link failures
// with revive epochs, scheduled bisecting/regional partitions, duplicate
// deliveries and bounded delay. A Plan implements sim.FaultInjector, so a
// sim.Network consults it on every hop; everything random about the plan is
// drawn from its own seeded rng streams when the plan is built (static
// per-link draws) or advanced (per-epoch link churn in BeginEpoch, called
// from the engine's sequential section) — the same discipline as the
// engine's SeededChurn — so Link is a pure read and a run is byte-identical
// for a fixed seed at any worker count.
//
// The layer composes with, and deliberately mirrors, the paper's section-7
// whole-node fault model: a cut link behaves at the hop like a dead
// receiver (the sender burns its full retry budget before giving up), but
// is invisible to liveness, so recovery has to be link-aware — the engine
// reroutes around cut links with the link-aware routing.Repairer and falls
// back to the base station when a partition isolates a join node.
package faults

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PartitionKind selects how a scheduled partition splits the deployment.
type PartitionKind uint8

const (
	// Bisect splits the deployment at the median x coordinate: every
	// radio link between the low-x half and the high-x half is cut while
	// the partition is active.
	Bisect PartitionKind = iota
	// Region isolates one row band of the deployment — the same 4x4-grid
	// row the workload generator assigns as rid — from the rest of the
	// network.
	Region
)

// Partition schedules one network partition: links crossing the split are
// cut for epochs From <= e < Until. Overlapping windows resolve to the
// first matching entry.
type Partition struct {
	From, Until int
	Kind        PartitionKind
	// Region is the row band (0-3) isolated when Kind == Region.
	Region int
}

// Config parameterizes a fault plan. The zero value injects nothing, and a
// plan built from it leaves every run byte-identical to a plan-free engine.
type Config struct {
	// Seed feeds the plan's private rng streams; independent of the
	// workload and loss seeds.
	Seed uint64
	// LinkLoss is the mean extra per-hop loss probability. Each link
	// draws its own boost in [0.5, 1.5) x LinkLoss at build time, so loss
	// is heterogeneous per link but fixed for the run.
	LinkLoss float64
	// LinkFailRate is the per-epoch probability that a healthy link goes
	// down (drawn in BeginEpoch, link order deterministic).
	LinkFailRate float64
	// LinkReviveAfter revives a failed link after this many epochs;
	// 0 means failed links stay down for the rest of the run.
	LinkReviveAfter int
	// DupProb is the per-hop duplicate-delivery probability.
	DupProb float64
	// DelayMax bounds per-link injected delay: each link draws a fixed
	// delay in [0, DelayMax] transmission slots at build time.
	DelayMax int
	// Partitions schedules network partitions.
	Partitions []Partition
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.LinkLoss > 0 || c.LinkFailRate > 0 || c.DupProb > 0 ||
		c.DelayMax > 0 || len(c.Partitions) > 0
}

// linkKey identifies an undirected radio link, endpoints ordered a < b.
type linkKey struct{ a, b topology.NodeID }

func keyOf(from, to topology.NodeID) linkKey {
	if from < to {
		return linkKey{from, to}
	}
	return linkKey{to, from}
}

// linkFault is the mutable per-link fault state.
type linkFault struct {
	extraLoss float64
	delay     int
	down      bool
	// reviveAt is the epoch the link comes back up; 0 means permanent.
	reviveAt int
}

// Plan is a built fault plan over one deployment. BeginEpoch advances it
// (sequential sections only); Link is the concurrent-safe pure read the
// networks consult per hop.
type Plan struct {
	topo  *topology.Topology
	cfg   Config
	churn *rng.Source

	links map[linkKey]*linkFault
	order []linkKey // canonical build order, for deterministic epoch sweeps

	// loX[i] reports node i on the low-x side of the bisect split.
	loX []bool
	// rid[i] is node i's 4x4-grid row band, for Region partitions.
	rid []int8

	// side is the active partition membership (hop cut iff sides differ);
	// nil when no partition is active.
	side []int8

	epoch     int
	downLinks int
	partIdx   int // index+1 of the active Partitions entry, 0 = none
}

// NewPlan builds the plan for topo: all static per-link draws (loss boosts,
// delays) happen here, in canonical link order, from the config seed.
func NewPlan(topo *topology.Topology, cfg Config) *Plan {
	root := rng.New(cfg.Seed).Split(0xFA017)
	static := root.Split(1)
	p := &Plan{
		topo:  topo,
		cfg:   cfg,
		churn: root.Split(2),
		epoch: -1,
	}
	n := topo.N()
	if cfg.LinkLoss > 0 || cfg.LinkFailRate > 0 || cfg.DupProb > 0 || cfg.DelayMax > 0 {
		p.links = make(map[linkKey]*linkFault)
		for id := 0; id < n; id++ {
			from := topology.NodeID(id)
			for _, nb := range topo.Neighbors(from) {
				if nb <= from {
					continue
				}
				lf := &linkFault{}
				if cfg.LinkLoss > 0 {
					lf.extraLoss = cfg.LinkLoss * (0.5 + static.Float64())
					if lf.extraLoss > 1 {
						lf.extraLoss = 1
					}
				}
				if cfg.DelayMax > 0 {
					lf.delay = static.Intn(cfg.DelayMax + 1)
				}
				k := linkKey{from, nb}
				p.links[k] = lf
				p.order = append(p.order, k)
			}
		}
	}
	for _, pt := range cfg.Partitions {
		switch pt.Kind {
		case Bisect:
			if p.loX == nil {
				p.loX = bisectSides(topo)
			}
		case Region:
			if p.rid == nil {
				p.rid = rowBands(topo)
			}
		}
	}
	return p
}

// bisectSides splits the deployment at the median x coordinate.
func bisectSides(topo *topology.Topology) []bool {
	n := topo.N()
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = topo.Pos(topology.NodeID(i)).X
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	lo := make([]bool, n)
	for i := 0; i < n; i++ {
		lo[i] = xs[i] < median
	}
	return lo
}

// rowBands assigns each node its 4x4-grid row, mirroring the workload
// generator's rid attribute so a Region partition isolates the same nodes
// a rid predicate selects.
func rowBands(topo *topology.Topology) []int8 {
	n := topo.N()
	cell := topology.Field / 4
	rid := make([]int8, n)
	for i := 0; i < n; i++ {
		r := int(topo.Pos(topology.NodeID(i)).Y / cell)
		if r > 3 {
			r = 3
		}
		rid[i] = int8(r)
	}
	return rid
}

// BeginEpoch advances the plan to the given epoch: links revive and fail
// (seeded draws in canonical link order) and scheduled partitions activate
// or heal. Sequential sections only — the engine calls it once at the top
// of every epoch, before any worker steps.
func (p *Plan) BeginEpoch(epoch int) {
	p.epoch = epoch
	if p.cfg.LinkFailRate > 0 {
		for _, k := range p.order {
			lf := p.links[k]
			if lf.down {
				if lf.reviveAt > 0 && epoch >= lf.reviveAt {
					lf.down = false
					lf.reviveAt = 0
					p.downLinks--
				}
				continue
			}
			if p.churn.Bool(p.cfg.LinkFailRate) {
				lf.down = true
				p.downLinks++
				if p.cfg.LinkReviveAfter > 0 {
					lf.reviveAt = epoch + p.cfg.LinkReviveAfter
				}
			}
		}
	}
	p.partIdx = 0
	p.side = nil
	for i := range p.cfg.Partitions {
		pt := &p.cfg.Partitions[i]
		if epoch < pt.From || epoch >= pt.Until {
			continue
		}
		p.partIdx = i + 1
		p.side = make([]int8, p.topo.N())
		switch pt.Kind {
		case Bisect:
			for id, lo := range p.loX {
				if lo {
					p.side[id] = 1
				}
			}
		case Region:
			for id, r := range p.rid {
				if int(r) == pt.Region {
					p.side[id] = 1
				}
			}
		}
		break
	}
}

// Link implements sim.FaultInjector: the current fault verdict for one
// directed hop. Pure read, safe for concurrent use between BeginEpoch
// calls.
func (p *Plan) Link(from, to topology.NodeID) sim.LinkState {
	var st sim.LinkState
	if p.side != nil && p.side[from] != p.side[to] {
		st.Cut = true
		return st
	}
	if p.links != nil {
		if lf, ok := p.links[keyOf(from, to)]; ok {
			if lf.down {
				st.Cut = true
				return st
			}
			st.ExtraLoss = lf.extraLoss
			st.DupProb = p.cfg.DupProb
			st.DelaySlots = lf.delay
		}
	}
	return st
}

// LinkUsable is the routing predicate form of Link: true when the hop is
// not cut. Handed to routing.Repairer so detours avoid down links and
// partition-crossing edges.
func (p *Plan) LinkUsable(from, to topology.NodeID) bool {
	return !p.Link(from, to).Cut
}

// AnyCut reports whether any link is currently cut — down by link churn or
// severed by an active partition. The engine runs its link-fault recovery
// sweep whenever this holds.
func (p *Plan) AnyCut() bool { return p.downLinks > 0 || p.side != nil }

// PartitionActive reports whether a scheduled partition is in force this
// epoch (feeds the faults.partition_epochs counter).
func (p *Plan) PartitionActive() bool { return p.side != nil }

// DownLinks returns the number of links currently down from link churn
// (partition cuts not included).
func (p *Plan) DownLinks() int { return p.downLinks }

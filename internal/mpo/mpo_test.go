package mpo

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestBuildMulticastSharesPrefix(t *testing.T) {
	// Paths 0-1-2-3 and 0-1-4: shared prefix 0-1 transmitted once.
	tree := BuildMulticast(0, []routing.Path{{0, 1, 2, 3}, {0, 1, 4}})
	if tree.Edges() != 4 {
		t.Fatalf("Edges = %d, want 4 (5 nodes)", tree.Edges())
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 || leaves[0] != 3 || leaves[1] != 4 {
		t.Fatalf("Leaves = %v", leaves)
	}
	// Separate unicast would cost 3+2=5 edges; the tree costs 4.
	p := tree.PathTo(3)
	if p.Hops() != 3 || p[0] != 0 {
		t.Fatalf("PathTo(3) = %v", p)
	}
	if tree.PathTo(99) != nil {
		t.Fatal("PathTo unknown node should be nil")
	}
}

func TestBuildMulticastDivergentRemeet(t *testing.T) {
	// Two paths that remeet at node 5 must still form a tree.
	tree := BuildMulticast(0, []routing.Path{{0, 1, 5, 7}, {0, 2, 5, 8}})
	if tree.Edges() != len(tree.Nodes())-1 {
		t.Fatalf("not a tree: %d edges for %d nodes", tree.Edges(), len(tree.Nodes()))
	}
	// Node 5 keeps its first parent (1), so 8 is reachable via 1-5.
	p := tree.PathTo(8)
	if p == nil || p[len(p)-1] != 8 {
		t.Fatalf("PathTo(8) = %v", p)
	}
}

func TestBuildMulticastPanicsOnForeignPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for path not rooted at producer")
		}
	}()
	BuildMulticast(0, []routing.Path{{1, 2}})
}

func TestEdgeListMatchesEdges(t *testing.T) {
	tree := BuildMulticast(0, []routing.Path{{0, 1, 2}, {0, 1, 3}, {0, 4}})
	el := tree.EdgeList()
	if len(el) != tree.Edges() {
		t.Fatalf("EdgeList has %d entries, Edges() = %d", len(el), tree.Edges())
	}
	for _, e := range el {
		if e[0] == e[1] {
			t.Fatalf("self edge %v", e)
		}
	}
}

func TestInteriorStateBytes(t *testing.T) {
	// Node 1 has two children (2 and 3): it caches state for its subtree
	// {1,2,3} = 3 entries. Root fan-out is excluded (the producer itself
	// holds the tree).
	tree := BuildMulticast(0, []routing.Path{{0, 1, 2}, {0, 1, 3}})
	if got := tree.InteriorStateBytes(1); got != 3 {
		t.Fatalf("InteriorStateBytes = %d, want 3", got)
	}
	// A pure chain has no branching interior nodes.
	chain := BuildMulticast(0, []routing.Path{{0, 1, 2, 3}})
	if got := chain.InteriorStateBytes(1); got != 0 {
		t.Fatalf("chain InteriorStateBytes = %d, want 0", got)
	}
}

// ladder builds two parallel 5-hop chains from node 0 with rungs between
// them:
//
//	0 - 1 - 2 - 3 - 4   (to join node 4)
//	 \  5 - 6 - 7 - 8   (to join node 8)
//
// with links 1-5, 2-6, 3-7 making collapses possible.
func ladder() *topology.Topology {
	pos := []geom.Point{
		{X: 0, Y: 0.5},
		{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0},
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}, {X: 4, Y: 1},
	}
	return topology.FromPositions(pos, 1.2)
}

func TestFindCollapses(t *testing.T) {
	topo := ladder()
	paths := []routing.Path{{0, 1, 2, 3, 4}, {0, 5, 6, 7, 8}}
	opps := FindCollapses(topo, paths)
	if len(opps) == 0 {
		t.Fatal("no collapse opportunities found on the ladder")
	}
	for _, o := range opps {
		if !topo.IsNeighbor(o.N1, o.N2) {
			t.Fatalf("opportunity nodes %d,%d not adjacent", o.N1, o.N2)
		}
	}
}

func TestFindCollapsesRequiresDisjointPaths(t *testing.T) {
	topo := ladder()
	// Paths sharing node 1 are not node-disjoint: no opportunities.
	paths := []routing.Path{{0, 1, 2, 3}, {0, 1, 5, 6}}
	if opps := FindCollapses(topo, paths); len(opps) != 0 {
		t.Fatalf("found %d opportunities on overlapping paths", len(opps))
	}
}

func TestApplyCollapsesReducesTreeCost(t *testing.T) {
	topo := ladder()
	paths := []routing.Path{{0, 1, 2, 3, 4}, {0, 5, 6, 7, 8}}
	before := BuildMulticast(0, paths).Edges()
	opps := FindCollapses(topo, paths)
	newPaths, send, applied := ApplyCollapses(topo, 0, paths, opps)
	if applied == 0 {
		t.Fatal("no collapse applied on the ladder")
	}
	after := BuildMulticast(0, newPaths).Edges()
	if after >= before {
		t.Fatalf("collapse did not reduce cost: %d -> %d", before, after)
	}
	if send.Edges() > before {
		t.Fatal("send tree worse than original")
	}
	// Rerouted paths must stay link-valid and still reach both join nodes.
	dests := map[topology.NodeID]bool{}
	for _, p := range newPaths {
		for i := 1; i < len(p); i++ {
			if !topo.IsNeighbor(p[i-1], p[i]) {
				t.Fatalf("collapsed path not link-valid: %v", p)
			}
		}
		dests[p[len(p)-1]] = true
	}
	if !dests[4] || !dests[8] {
		t.Fatalf("collapse lost a join node: %v", newPaths)
	}
}

func TestApplyCollapsesNoOpportunities(t *testing.T) {
	topo := ladder()
	paths := []routing.Path{{0, 1, 2, 3, 4}}
	out, send, applied := ApplyCollapses(topo, 0, paths, nil)
	if applied != 0 || send.Edges() != 4 || len(out) != 1 {
		t.Fatal("no-op collapse changed state")
	}
}

func TestGroupOptDecision(t *testing.T) {
	topo := topology.Generate(topology.Grid, 25, 1)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 1}, nil)
	// Strongly in-network-favouring: join nodes adjacent to producers and
	// to the root, producers far from the root.
	inNet := []ProducerCost{
		{Producer: 10, SigmaP: 1, DPR: 8, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 1, NPJ: 1, DJR: 1}}},
		{Producer: 11, SigmaP: 1, DPR: 8, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 1, NPJ: 1, DJR: 1}}},
	}
	if d := GroupOpt(sub, nil, inNet, 0.05, 1); d != DecideInNet {
		t.Fatalf("decision = %v, want in-network", d)
	}
	// Base-favouring: producers next to the root, join nodes far away.
	atBase := []ProducerCost{
		{Producer: 10, SigmaP: 1, DPR: 1, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 6, NPJ: 3, DJR: 7}}},
	}
	if d := GroupOpt(sub, nil, atBase, 0.2, 3); d != DecideBase {
		t.Fatalf("decision = %v, want base", d)
	}
	if GroupOpt(sub, nil, nil, 0.2, 3) != DecideInNet {
		t.Fatal("empty group should default to in-network")
	}
}

func TestGroupOptChargesCoordination(t *testing.T) {
	topo := topology.Generate(topology.Grid, 25, 1)
	sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 1}, nil)
	net := sim.NewNetwork(topo, 0, 1)
	producers := []ProducerCost{
		{Producer: 3, SigmaP: 1, DPR: 2, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 1, NPJ: 1, DJR: 2}}},
		{Producer: 7, SigmaP: 1, DPR: 3, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 1, NPJ: 1, DJR: 2}}},
		{Producer: 12, SigmaP: 1, DPR: 4, JoinNodes: []costmodel.GroupJoinNode{{DPJ: 2, NPJ: 1, DJR: 3}}},
	}
	GroupOpt(sub, net, producers, 0.1, 3)
	m := net.Metrics()
	if m.TotalBytes == 0 {
		t.Fatal("GROUPOPT coordination was free")
	}
	// Coordinator is node 3: it neither sends deltas nor receives its own
	// decision; members 7 and 12 each send one delta and receive one
	// decision = 4 transfers.
	if m.TotalMessages < 4 {
		t.Fatalf("TotalMessages = %d, want >= 4", m.TotalMessages)
	}
}

func TestGroupDecisionString(t *testing.T) {
	if DecideBase.String() != "base" || DecideInNet.String() != "in-network" {
		t.Fatal("GroupDecision labels wrong")
	}
}

func TestApplyCollapsesPropertyRandomTopologies(t *testing.T) {
	// Property: on arbitrary topologies and path sets, collapsing never
	// loses a destination, never produces a link-invalid path, and never
	// increases the multicast tree cost.
	for seed := uint64(1); seed <= 8; seed++ {
		topo := topology.Generate(topology.ModerateRandom, 60, seed)
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 2}, nil)
		root := topology.NodeID(1)
		var paths []routing.Path
		for _, dst := range []topology.NodeID{11, 23, 37, 51} {
			paths = append(paths, sub.BestTreePath(root, dst))
		}
		before := BuildMulticast(root, paths).Edges()
		opps := FindCollapses(topo, paths)
		newPaths, send, _ := ApplyCollapses(topo, root, paths, opps)
		after := BuildMulticast(root, newPaths).Edges()
		if after > before {
			t.Fatalf("seed %d: collapse increased cost %d -> %d", seed, before, after)
		}
		if send.Edges() > before {
			t.Fatalf("seed %d: send tree worse than original", seed)
		}
		wantDst := map[topology.NodeID]bool{11: true, 23: true, 37: true, 51: true}
		for _, p := range newPaths {
			if !wantDst[p[len(p)-1]] {
				t.Fatalf("seed %d: destination changed: %v", seed, p)
			}
			if p[0] != root {
				t.Fatalf("seed %d: root changed: %v", seed, p)
			}
			for i := 1; i < len(p); i++ {
				if !topo.IsNeighbor(p[i-1], p[i]) {
					t.Fatalf("seed %d: invalid link in %v", seed, p)
				}
			}
		}
	}
}

func TestMulticastTreeReachesAllLeavesProperty(t *testing.T) {
	// Property: every path endpoint is reachable from the root through
	// tree edges, regardless of how paths overlap.
	for seed := uint64(1); seed <= 10; seed++ {
		topo := topology.Generate(topology.MediumRandom, 50, seed)
		sub := routing.NewSubstrate(topo, routing.Options{NumTrees: 3}, nil)
		root := topology.NodeID(2)
		dsts := []topology.NodeID{7, 19, 31, 43, 49}
		var paths []routing.Path
		for _, d := range dsts {
			paths = append(paths, sub.BestTreePath(root, d))
		}
		tree := BuildMulticast(root, paths)
		reached := map[topology.NodeID]bool{root: true}
		for _, e := range tree.EdgeList() {
			if !reached[e[0]] {
				t.Fatalf("seed %d: edge list not topological at %v", seed, e)
			}
			reached[e[1]] = true
		}
		for _, d := range dsts {
			if !reached[d] {
				t.Fatalf("seed %d: leaf %d unreachable", seed, d)
			}
		}
	}
}

// Package mpo implements the paper's multi-pair optimization machinery
// (section 5 and Appendix E): producer-rooted multicast trees with cached
// interior state, the opportunistic path-collapsing optimization
// (Algorithms 2 and 3), and the decentralized group optimization GROUPOPT
// (Algorithm 1) that chooses, per join group, between pairwise in-network
// joins and a grouped join at the base station.
package mpo

import (
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// MulticastTree is a tree rooted at a producer, spanning the producer's
// join nodes, built from the union of its established point-to-point
// paths. Interior nodes cache the subtree state, so data messages carry no
// path vectors (the transmission-compression feature of section 5.1).
type MulticastTree struct {
	Root topology.NodeID
	// parent[n] is n's predecessor toward the root for every node on the
	// tree; the root maps to -1.
	parent map[topology.NodeID]topology.NodeID
	// leaves are the join nodes the tree must reach.
	leaves map[topology.NodeID]bool
	// edges caches EdgeList's topological edge order. A tree is immutable
	// once built (reconfiguration builds a new tree), and multicast
	// delivery walks the edge list every sampling cycle, so it is computed
	// once on first use and shared. Callers must not mutate it.
	edges [][2]topology.NodeID
}

// BuildMulticast unions the given root-originated paths into a tree. Each
// path must start at root. Later paths reuse earlier paths' prefixes: a
// node already on the tree keeps its existing parent, so the result is a
// tree even when paths diverge and remeet (the first-established route
// wins, as in the implementation's soft-state flow tables).
func BuildMulticast(root topology.NodeID, paths []routing.Path) *MulticastTree {
	t := &MulticastTree{
		Root:   root,
		parent: map[topology.NodeID]topology.NodeID{root: -1},
		leaves: map[topology.NodeID]bool{},
	}
	for _, p := range paths {
		if len(p) == 0 {
			continue
		}
		if p[0] != root {
			panic("mpo: multicast path does not start at the root producer")
		}
		for i := 1; i < len(p); i++ {
			if _, on := t.parent[p[i]]; !on {
				// The previous hop is always on the tree (p[0] is the
				// root and earlier hops were just added), so attaching to
				// it keeps the structure a connected tree.
				t.parent[p[i]] = p[i-1]
			}
		}
		t.leaves[p[len(p)-1]] = true
	}
	return t
}

// Edges returns the number of tree edges — the per-tuple transmission cost
// of one multicast dissemination.
func (t *MulticastTree) Edges() int { return len(t.parent) - 1 }

// Nodes returns all tree nodes in ascending order.
func (t *MulticastTree) Nodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.parent))
	for n := range t.parent {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns the join nodes reached, in ascending order.
func (t *MulticastTree) Leaves() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.leaves))
	for n := range t.leaves {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathTo returns the tree path from the root to node n, or nil when n is
// not on the tree.
func (t *MulticastTree) PathTo(n topology.NodeID) routing.Path {
	if _, ok := t.parent[n]; !ok {
		return nil
	}
	var rev routing.Path
	for at := n; at != -1; at = t.parent[at] {
		rev = append(rev, at)
	}
	return rev.Reverse()
}

// EdgeList returns (parent, child) pairs in root-to-leaf (topological)
// order: an edge never appears before the edge delivering to its parent,
// so walking the list transmission by transmission models one multicast
// dissemination correctly even when an edge fails and prunes its subtree.
// Sibling order is ascending child ID for determinism. The returned slice
// is cached on the tree and shared across calls; treat it as read-only.
func (t *MulticastTree) EdgeList() [][2]topology.NodeID {
	if t.edges != nil {
		return t.edges
	}
	kids := map[topology.NodeID][]topology.NodeID{}
	for n, p := range t.parent {
		if p != -1 {
			kids[p] = append(kids[p], n)
		}
	}
	for _, cs := range kids {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	out := make([][2]topology.NodeID, 0, t.Edges())
	queue := []topology.NodeID{t.Root}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, c := range kids[p] {
			out = append(out, [2]topology.NodeID{p, c})
			queue = append(queue, c)
		}
	}
	t.edges = out
	return out
}

// InteriorStateBytes is the one-time cost of pushing cached subtree state
// to interior nodes with more than one child (section 5.1: the producer
// "needs to address only a few i nodes" afterwards). It is charged when
// the tree is installed or updated.
func (t *MulticastTree) InteriorStateBytes(perNodeBytes int) int {
	kids := map[topology.NodeID]int{}
	for n, p := range t.parent {
		if p != -1 {
			kids[p]++
		}
		_ = n
	}
	total := 0
	for n, k := range kids {
		if k > 1 && n != t.Root {
			// State encodes the subtree below n: one entry per descendant.
			total += perNodeBytes * t.subtreeSize(n)
		}
	}
	return total
}

func (t *MulticastTree) subtreeSize(root topology.NodeID) int {
	n := 0
	for node := range t.parent {
		at := node
		for at != -1 {
			if at == root {
				n++
				break
			}
			at = t.parent[at]
		}
	}
	return n
}

package mpo

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// CollapseThreshold is Algorithm 3's hysteresis: a new multicast tree
// replaces the one in active use only when its cost is at least 10% lower
// (Cnew*1.1 <= Csend), because pushing an updated tree into the network
// has its own communication cost.
const CollapseThreshold = 1.1

// CollapseOpportunity is the tuple T of Algorithm 2: snooping node This
// overheard neighbour Nbr forwarding a flow and discovered a link that
// lets two of the producer's paths merge.
type CollapseOpportunity struct {
	// N1 and N2 are the adjacent nodes on two node-disjoint paths.
	N1, N2 topology.NodeID
	// Dest1, Dest2 are the join nodes the two paths serve.
	Dest1, Dest2 topology.NodeID
}

// FindCollapses scans a producer's established paths for collapse
// opportunities, modelling the snooping of PathCollapseDetect: for every
// pair of node-disjoint paths (P1, P2) from the same producer, any radio
// link (n1 in P1, n2 in P2) between interior nodes is an opportunity.
// Deterministic order: opportunities sorted by (N1, N2).
func FindCollapses(topo *topology.Topology, paths []routing.Path) []CollapseOpportunity {
	var out []CollapseOpportunity
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			p1, p2 := paths[i], paths[j]
			if len(p1) < 3 || len(p2) < 3 {
				continue
			}
			if !nodeDisjointExceptRoot(p1, p2) {
				continue
			}
			for a := 1; a < len(p1)-1; a++ {
				for b := 1; b < len(p2)-1; b++ {
					if topo.IsNeighbor(p1[a], p2[b]) {
						out = append(out, CollapseOpportunity{
							N1:    p1[a],
							N2:    p2[b],
							Dest1: p1[len(p1)-1],
							Dest2: p2[len(p2)-1],
						})
					}
				}
			}
		}
	}
	return out
}

func nodeDisjointExceptRoot(p1, p2 routing.Path) bool {
	seen := map[topology.NodeID]bool{}
	for _, n := range p1[1:] {
		seen[n] = true
	}
	for _, n := range p2[1:] {
		if seen[n] {
			return false
		}
	}
	return true
}

// ApplyCollapses is the producer side (Algorithm 3): for each opportunity
// it tries rerouting the path to Dest1 through the newly discovered link
// (root..N2 along P2, the link N2-N1, then N1..Dest1 along P1), keeps the
// change when the rebuilt multicast tree is cheaper, and — mirroring lines
// 30-33 — also tries the swapped orientation. It returns the possibly
// updated paths, the tree actually used for sending (subject to the 10%
// hysteresis), and how many collapses were applied.
func ApplyCollapses(topo *topology.Topology, root topology.NodeID, paths []routing.Path, opps []CollapseOpportunity) (out []routing.Path, send *MulticastTree, applied int) {
	out = make([]routing.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	best := BuildMulticast(root, out)
	send = best
	bestCost, sendCost := best.Edges(), best.Edges()
	for _, opp := range opps {
		for _, o := range []CollapseOpportunity{opp, {N1: opp.N2, N2: opp.N1, Dest1: opp.Dest2, Dest2: opp.Dest1}} {
			i1 := pathIndexVia(out, o.N1, o.Dest1)
			i2 := pathIndexVia(out, o.N2, o.Dest2)
			if i1 < 0 || i2 < 0 || i1 == i2 {
				continue
			}
			candidate := reroute(out[i2], out[i1], o.N2, o.N1)
			if candidate == nil {
				continue
			}
			trial := make([]routing.Path, len(out))
			copy(trial, out)
			trial[i1] = candidate
			tree := BuildMulticast(root, trial)
			if tree.Edges() < bestCost {
				out = trial
				best, bestCost = tree, tree.Edges()
				applied++
				if float64(tree.Edges())*CollapseThreshold < float64(sendCost) {
					send, sendCost = tree, tree.Edges()
				}
			}
		}
	}
	// If the final best tree cleared the hysteresis at any point use it;
	// otherwise the original send tree remains in effect.
	return out, send, applied
}

// pathIndexVia finds the path ending at dest that passes through n.
func pathIndexVia(paths []routing.Path, n, dest topology.NodeID) int {
	for i, p := range paths {
		if len(p) == 0 || p[len(p)-1] != dest {
			continue
		}
		if p.Contains(n) {
			return i
		}
	}
	return -1
}

// reroute builds root..n2 (along pVia) + [n2,n1] + n1..dest (along pOld).
// Returns nil when the splice would repeat a node.
func reroute(pVia, pOld routing.Path, n2, n1 topology.NodeID) routing.Path {
	prefix := truncateAt(pVia, n2)
	suffix := suffixFrom(pOld, n1)
	if prefix == nil || suffix == nil {
		return nil
	}
	candidate := append(prefix.Clone(), suffix...)
	seen := map[topology.NodeID]bool{}
	for _, x := range candidate {
		if seen[x] {
			return nil
		}
		seen[x] = true
	}
	return candidate
}

func truncateAt(p routing.Path, n topology.NodeID) routing.Path {
	for i, x := range p {
		if x == n {
			return p[:i+1]
		}
	}
	return nil
}

func suffixFrom(p routing.Path, n topology.NodeID) routing.Path {
	for i, x := range p {
		if x == n {
			return p[i:]
		}
	}
	return nil
}

package mpo

import (
	"sort"

	"repro/internal/costmodel"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// GroupDecision is the coordinator's choice for one join group.
type GroupDecision int

const (
	// DecideInNet keeps the group's pairwise in-network join nodes.
	DecideInNet GroupDecision = iota
	// DecideBase moves the whole group's computation to the base station.
	DecideBase
)

// String labels the decision.
func (d GroupDecision) String() string {
	if d == DecideBase {
		return "base"
	}
	return "in-network"
}

// ProducerCost carries one producer's inputs to GROUPOPT: its send rate,
// distance to the root, and per-join-node assignment facts.
type ProducerCost struct {
	Producer  topology.NodeID
	SigmaP    float64
	DPR       int
	JoinNodes []costmodel.GroupJoinNode
}

// Delta returns this producer's delta-C_p (section 5.2).
func (p ProducerCost) Delta(sigmaST float64, w int) float64 {
	return costmodel.GroupDelta(p.SigmaP, sigmaST, w, p.JoinNodes, p.DPR)
}

// GroupOpt executes Algorithm 1 (GROUPOPT) for one group, charging the
// coordination traffic: every producer sends its delta-C_p to the group
// coordinator (the member with the smallest ID), which sums them, decides,
// and multicasts the decision back. Message routes follow the substrate's
// best tree paths. net may be nil for analysis-only calls.
func GroupOpt(sub *routing.Substrate, net *sim.Network, producers []ProducerCost, sigmaST float64, w int) GroupDecision {
	if len(producers) == 0 {
		return DecideInNet
	}
	// Elect the coordinator: smallest member ID (Algorithm 1's Gc).
	sorted := make([]ProducerCost, len(producers))
	copy(sorted, producers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Producer < sorted[j].Producer })
	gc := sorted[0].Producer

	const deltaBytes = 2 * sim.ValueBytes // fixed-point delta + sequence number
	var sum float64
	for _, p := range sorted {
		sum += p.Delta(sigmaST, w)
		if net != nil && p.Producer != gc {
			net.Transfer(sub.BestTreePath(p.Producer, gc), deltaBytes, sim.Control, sim.Flow{})
		}
	}
	decision := DecideInNet
	if sum >= 0 {
		decision = DecideBase
	}
	if net != nil {
		for _, p := range sorted {
			if p.Producer != gc {
				net.Transfer(sub.BestTreePath(gc, p.Producer), deltaBytes, sim.Control, sim.Flow{})
			}
		}
	}
	return decision
}
